package pipeline

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/corelet"
	"github.com/neurogo/neurogo/internal/dataset"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/remote"
	"github.com/neurogo/neurogo/internal/system"
	"github.com/neurogo/neurogo/internal/train"
)

// remoteRig is the digit rig compiled for a 1x1-core chip tile, so the
// same mapping serves WithSystem and WithRemoteSystem pipelines.
func remoteRig(t *testing.T) *rig {
	t.Helper()
	gen := dataset.NewDigits(8, 0.02, 0, 3)
	xtr, ytr := gen.Batch(300)
	m, err := train.TrainLinear(xtr, ytr, dataset.NumClasses, train.Options{Epochs: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nw := model.New()
	cls := corelet.BuildClassifier(nw, m.Ternarize(1.3), "d", corelet.ClassifierParams{Threshold: 4, Decay: 1})
	// A 2x2 grid of single-core chips: the flat classifier occupies one
	// chip, the rest are empty — the smallest mapping a 2-shard
	// partition can serve.
	mp, err := compile.Compile(nw, compile.Options{Width: 2, Height: 2, ChipCoresX: 1, ChipCoresY: 1})
	if err != nil {
		t.Fatal(err)
	}
	x, y := gen.Batch(16)
	return &rig{cls: cls, mapping: mp, x: x, y: y}
}

// startShardServers hosts the rig's shards in-process on unix sockets
// and returns their addresses (partition order).
func startShardServers(t *testing.T, mp *compile.Mapping, shards int) ([]*remote.Server, []string) {
	t.Helper()
	cfg := system.Config{ChipCoresX: mp.Stats.ChipCoresX, ChipCoresY: mp.Stats.ChipCoresY}
	srvs := make([]*remote.Server, shards)
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		srv, err := remote.NewServer(mp, cfg, shards, i, chip.Options{})
		if err != nil {
			t.Fatal(err)
		}
		addr := filepath.Join(t.TempDir(), fmt.Sprintf("s%d.sock", i))
		ln, err := net.Listen("unix", addr)
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		srvs[i], addrs[i] = srv, addr
	}
	return srvs, addrs
}

// TestRemoteClassifyBitIdentical is the serving-layer acceptance: a
// pipeline over remote shard processes classifies exactly as the
// in-process system pipeline, with identical boundary-traffic
// accounting.
func TestRemoteClassifyBitIdentical(t *testing.T) {
	rg := remoteRig(t)
	ctx := context.Background()

	sysP := rg.pipeline(t, WithSystem(1, 1))
	want, err := sysP.ClassifyBatch(ctx, rg.x)
	if err != nil {
		t.Fatal(err)
	}
	wantTraffic := sysP.Traffic()

	_, addrs := startShardServers(t, rg.mapping, 2)
	remP := rg.pipeline(t, WithRemoteSystem(addrs...))
	defer remP.Close()
	got, err := remP.ClassifyBatch(ctx, rg.x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image %d: remote %d, system %d", i, got[i], want[i])
		}
	}
	gotTraffic := remP.Traffic()
	if gotTraffic.IntraChip != wantTraffic.IntraChip ||
		gotTraffic.InterChip != wantTraffic.InterChip ||
		gotTraffic.InterChipFraction != wantTraffic.InterChipFraction ||
		gotTraffic.BusiestLink != wantTraffic.BusiestLink {
		t.Fatalf("remote traffic %+v, system %+v", gotTraffic, wantTraffic)
	}

	// A session Classify on the shared lane reproduces the batch.
	s := remP.NewSession()
	for i, img := range rg.x[:4] {
		c, err := s.Classify(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		if c != want[i] {
			t.Fatalf("image %d: remote session %d, system %d", i, c, want[i])
		}
	}
}

// TestRemoteStreamTrafficMatchesSystem drives the routed relay chain
// (real core-to-core edges, so crossings are non-zero) through the
// stream API on both backends: the remote label stream and every
// boundary-traffic figure must equal the in-process system's exactly.
func TestRemoteStreamTrafficMatchesSystem(t *testing.T) {
	mp, err := compile.Compile(chainNet(), compile.Options{Width: 4, Height: 2,
		ChipCoresX: 2, ChipCoresY: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantTraffic, wantLabels := chainTraffic(t, mp)
	if wantTraffic.InterChip == 0 {
		t.Fatal("chain rig crossed no boundary; test is vacuous")
	}

	_, addrs := startShardServers(t, mp, 2)
	p, err := New(mp, WithRemoteSystem(addrs...), WithDrain(4))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	st := p.NewSession().Stream(context.Background())
	var labels []Label
	for tick := 0; tick < 6; tick++ {
		for line := int32(0); line < 4; line++ {
			if err := st.Inject(line); err != nil {
				t.Fatal(err)
			}
		}
		ls, err := st.Tick()
		if err != nil {
			t.Fatal(err)
		}
		labels = append(labels, ls...)
	}
	ls, err := st.Drain()
	if err != nil {
		t.Fatal(err)
	}
	labels = append(labels, ls...)

	if len(labels) != len(wantLabels) {
		t.Fatalf("remote stream: %d labels, system %d", len(labels), len(wantLabels))
	}
	for i := range wantLabels {
		if labels[i] != wantLabels[i] {
			t.Fatalf("label %d: remote %+v, system %+v", i, labels[i], wantLabels[i])
		}
	}
	got := p.Traffic()
	if got.IntraChip != wantTraffic.IntraChip || got.InterChip != wantTraffic.InterChip ||
		got.InterChipFraction != wantTraffic.InterChipFraction ||
		got.BusiestLink != wantTraffic.BusiestLink || got.Chips != wantTraffic.Chips {
		t.Fatalf("remote traffic %+v, system %+v", got, wantTraffic)
	}
}

// TestRemoteSingleLane pins the one-model-state invariant: every
// session of a remote pipeline shares the single shard lane, workers
// are clamped to one, and concurrent use still serializes to the
// sequential results.
func TestRemoteSingleLane(t *testing.T) {
	rg := remoteRig(t)
	_, addrs := startShardServers(t, rg.mapping, 2)
	p := rg.pipeline(t, WithRemoteSystem(addrs...), WithWorkers(8))
	defer p.Close()
	if p.cfg.workers != 1 {
		t.Fatalf("remote pipeline kept %d workers", p.cfg.workers)
	}
	s1, s2 := p.NewSession(), p.NewSession()
	if s1 != s2 {
		t.Fatal("remote pipeline handed out two lanes")
	}
	ctx := context.Background()
	want, err := p.ClassifyBatch(ctx, rg.x[:6])
	if err != nil {
		t.Fatal(err)
	}
	// The async front-end must also collapse to the single lane and
	// still produce the sequential results.
	ap := mustAsync(t, p, WithAsyncWorkers(4))
	chans := make([]<-chan Result, 6)
	for i, img := range rg.x[:6] {
		chans[i] = ap.Submit(ctx, img)
	}
	for i, ch := range chans {
		r := <-ch
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Class != want[i] {
			t.Fatalf("async image %d: %d, sequential %d", i, r.Class, want[i])
		}
	}
	ap.Close()
}

// TestRemoteKillMidPresentation is the disconnect satellite at the
// serving layer: killing a shard process mid-presentation surfaces
// ErrShardDown from Classify within bounded time — never a hang — and
// the pipeline stays down.
func TestRemoteKillMidPresentation(t *testing.T) {
	rg := remoteRig(t)
	srvs, addrs := startShardServers(t, rg.mapping, 2)
	p := rg.pipeline(t, WithRemoteSystem(addrs...), WithRemoteTimeout(5*time.Second))
	defer p.Close()
	ctx := context.Background()
	if _, err := p.Classify(ctx, rg.x[0]); err != nil {
		t.Fatal(err)
	}

	// Classify in a loop and sever shard 1 while presentations run, so
	// the kill lands mid-presentation with high probability; either way
	// the error must be typed and prompt.
	errc := make(chan error, 1)
	go func() {
		for {
			if _, err := p.Classify(ctx, rg.x[0]); err != nil {
				errc <- err
				return
			}
		}
	}()
	srvs[1].Close()
	select {
	case err := <-errc:
		if !errors.Is(err, system.ErrShardDown) {
			t.Fatalf("Classify after kill = %v, want ErrShardDown match", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Classify hung after shard kill")
	}
	// Sticky: the next presentation fails immediately with the same
	// typed error.
	if _, err := p.Classify(ctx, rg.x[0]); !errors.Is(err, system.ErrShardDown) {
		t.Fatalf("second Classify = %v", err)
	}
}

// TestRemoteClassifyDeadline pins the context path end to end: a
// Classify deadline bounds the RPC waits of a stalled shard.
func TestRemoteClassifyDeadline(t *testing.T) {
	rg := remoteRig(t)
	_, addrs := startShardServers(t, rg.mapping, 1)
	p := rg.pipeline(t, WithRemoteSystem(addrs...))
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := p.Classify(ctx, rg.x[0]); err == nil {
		t.Fatal("cancelled Classify succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled Classify took %v", elapsed)
	}
}

func TestWithRemoteSystemValidation(t *testing.T) {
	rg := remoteRig(t)
	if _, err := New(rg.mapping, WithRemoteSystem("/tmp/a.sock"), WithSystem(1, 1)); err == nil {
		t.Error("WithRemoteSystem + WithSystem accepted")
	}
	untiled := buildRig(t)
	if _, err := New(untiled.mapping, WithRemoteSystem("/tmp/a.sock")); err == nil {
		t.Error("untiled mapping accepted")
	}
	// No server behind the address: New must fail eagerly, not at the
	// first Classify.
	if _, err := New(rg.mapping, WithRemoteSystem(filepath.Join(t.TempDir(), "none.sock"))); err == nil {
		t.Error("unreachable shard address accepted")
	}
}
