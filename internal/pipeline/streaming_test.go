package pipeline

// Streaming-serving tests: continuous decisions from open-ended
// streams, bit-identity across engines and under the async front-end,
// and the windowed-decoder/bounded-presentation equivalence.

import (
	"context"
	"testing"
	"time"

	"github.com/neurogo/neurogo/internal/codec"
	"github.com/neurogo/neurogo/internal/dataset"
	"github.com/neurogo/neurogo/internal/sim"
)

// slidingDecoder builds the gated windowed decoder the streaming tests
// share: enough evidence pressure that only confident ticks emit.
func slidingDecoder() *codec.SlidingCounter {
	sc := codec.NewSlidingCounter(dataset.NumClasses, 12)
	sc.MinCount, sc.MinMargin = 4, 2
	return sc
}

// collectStream feeds every frame for ticksPer ticks on one open
// stream (persistent chip state — no reset between frames), drains,
// and returns the full decision sequence.
func collectStream(t *testing.T, st *Stream, frames [][]float64, ticksPer int) []Decision {
	t.Helper()
	dch := st.Decisions()
	for i, f := range frames {
		if _, err := st.Present(f, ticksPer); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if _, err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	var ds []Decision
	for d := range dch {
		ds = append(ds, d)
	}
	return ds
}

// TestStreamingBitIdentical is the streaming acceptance criterion: the
// same frame sequence streamed through a windowed decoder yields the
// exact same decision sequence — tick, class and margin — on every
// engine, and again when the stream is served under the async
// front-end. Decisions are integer-derived, so the comparison is ==.
func TestStreamingBitIdentical(t *testing.T) {
	rg := buildRig(t)
	frames := rg.x[:6]
	const ticksPer = 8

	run := func(opts ...Option) []Decision {
		opts = append([]Option{WithDecoder(slidingDecoder())}, opts...)
		p := rg.pipeline(t, opts...)
		defer p.Close()
		return collectStream(t, p.NewSession().Stream(context.Background()), frames, ticksPer)
	}

	want := run(WithEngine(sim.EngineEvent))
	if len(want) == 0 {
		t.Fatal("no decisions emitted — gate never fired, test is vacuous")
	}
	for i := 1; i < len(want); i++ {
		if want[i].Tick <= want[i-1].Tick {
			t.Fatalf("decision ticks not strictly increasing: %+v", want)
		}
	}
	engines := []struct {
		name string
		opts []Option
	}{
		{"dense", []Option{WithEngine(sim.EngineDense)}},
		{"parallel", []Option{WithEngine(sim.EngineParallel), WithEngineWorkers(4)}},
	}
	for _, e := range engines {
		got := run(e.opts...)
		if len(got) != len(want) {
			t.Fatalf("%s: %d decisions, event engine %d", e.name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: decision %d = %+v, event engine %+v", e.name, i, got[i], want[i])
			}
		}
	}

	// The async front-end serves the same stream bit-identically, and
	// meters it.
	p := rg.pipeline(t, WithDecoder(slidingDecoder()))
	defer p.Close()
	ap := mustAsync(t, p, WithAsyncWorkers(2))
	as, err := ap.OpenStream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	dch := as.Decisions()
	for i, f := range frames {
		if _, err := as.Present(f, ticksPer); err != nil {
			t.Fatalf("async frame %d: %v", i, err)
		}
	}
	if _, err := as.Drain(); err != nil {
		t.Fatal(err)
	}
	var got []Decision
	for d := range dch {
		got = append(got, d)
	}
	if len(got) != len(want) {
		t.Fatalf("async: %d decisions, direct %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("async: decision %d = %+v, direct %+v", i, got[i], want[i])
		}
	}
	ap.Close()
	m := ap.Metrics()
	if m.StreamsOpened != 1 || m.StreamsClosed != 1 || m.StreamsOpen != 0 {
		t.Fatalf("stream gauges: %+v", m)
	}
	if wantFrames := uint64(len(frames) * ticksPer); m.StreamFrames != wantFrames {
		t.Fatalf("StreamFrames = %d, want %d", m.StreamFrames, wantFrames)
	}
	if m.StreamDecisions != uint64(len(want)) {
		t.Fatalf("StreamDecisions = %d, want %d", m.StreamDecisions, len(want))
	}
	if m.StreamLatency.Count == 0 {
		t.Fatal("StreamLatency recorded no operations")
	}
}

// TestSlidingClassifyMatchesCounter is the equivalence half of the
// acceptance criterion at the pipeline level: with the window equal to
// the presentation length and no gate, a SlidingCounter-decoded
// pipeline classifies every image exactly like the Counter-decoded
// one — the bounded presentation is the window = presentation special
// case of streaming.
func TestSlidingClassifyMatchesCounter(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()
	counterP := rg.pipeline(t)
	slidingP := rg.pipeline(t, WithDecoder(codec.NewSlidingCounter(dataset.NumClasses, 16)))
	defer counterP.Close()
	defer slidingP.Close()
	cs, ss := counterP.NewSession(), slidingP.NewSession()
	for i, img := range rg.x {
		want, err := cs.Classify(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ss.Classify(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("image %d: sliding decided %d, counter %d", i, got, want)
		}
	}
}

// TestStreamDecisionsLifecycle pins the channel contract: it closes
// after Drain (empty when nothing fired), and closes on context
// cancellation without Drain.
func TestStreamDecisionsLifecycle(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t, WithDecoder(slidingDecoder()))
	defer p.Close()

	// Drain with no input: channel closes, zero decisions.
	st := p.NewSession().Stream(context.Background())
	dch := st.Decisions()
	if _, err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	for d := range dch {
		t.Fatalf("decision %+v from an empty stream", d)
	}

	// Cancellation ends the channel without Drain.
	ctx, cancel := context.WithCancel(context.Background())
	st2 := p.NewSession().Stream(ctx)
	dch2 := st2.Decisions()
	cancel()
	select {
	case _, ok := <-dch2:
		if ok {
			t.Fatal("decision from a cancelled stream")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Decisions channel did not close on cancellation")
	}

	// A decoder-less (or non-windowed) stream still closes the channel.
	plain := rg.pipeline(t)
	defer plain.Close()
	st3 := plain.NewSession().Stream(context.Background())
	dch3 := st3.Decisions()
	if _, err := st3.Present(rg.x[0], 4); err != nil {
		t.Fatal(err)
	}
	if _, err := st3.Drain(); err != nil {
		t.Fatal(err)
	}
	for d := range dch3 {
		t.Fatalf("decision %+v from a non-windowed decoder", d)
	}
}

// TestOpenStreamClosed: OpenStream on a closed front-end (and stream
// operations after Close) report ErrClosed.
func TestOpenStreamClosed(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t, WithDecoder(slidingDecoder()))
	ap := mustAsync(t, p, WithAsyncWorkers(1))
	as, err := ap.OpenStream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ap.Close()
	if _, err := as.Present(rg.x[0], 4); err != ErrClosed {
		t.Fatalf("Present after Close: err = %v, want ErrClosed", err)
	}
	if _, err := as.Drain(); err != ErrClosed {
		t.Fatalf("Drain after Close: err = %v, want ErrClosed", err)
	}
	if _, err := ap.OpenStream(context.Background()); err != ErrClosed {
		t.Fatalf("OpenStream after Close: err = %v, want ErrClosed", err)
	}
}
