package pipeline

// SLO-layer tests: option validation, adaptive micro-batch
// bit-identity, priority ordering, admission control (shed paths),
// backpressure semantics and the metrics snapshot.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/neurogo/neurogo/internal/codec"
)

// stepEncoder blocks every Tick on a token from the test, so the test
// controls exactly how many encode ticks (and with WithWindow(1), how
// many presentations) may complete. Clone returns the shared instance
// so pooled sessions share the token stream.
type stepEncoder struct {
	step    chan struct{}
	started chan struct{}
	once    *sync.Once
}

func newStepEncoder() *stepEncoder {
	return &stepEncoder{
		step:    make(chan struct{}),
		started: make(chan struct{}),
		once:    new(sync.Once),
	}
}

func (e *stepEncoder) Tick(values []float64, emit codec.EmitFunc) {
	e.once.Do(func() { close(e.started) })
	<-e.step
}
func (e *stepEncoder) Reset()               {}
func (e *stepEncoder) Clone() codec.Encoder { return e }

// stepPipeline builds a one-tick-per-presentation pipeline around a
// stepEncoder: each presentation consumes exactly one token.
func stepPipeline(t *testing.T, rg *rig, enc *stepEncoder) *Pipeline {
	t.Helper()
	p, err := New(rg.mapping,
		WithEncoder(enc),
		WithDecoder(codec.NewCounter(10)),
		WithWindow(1))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAsyncOptionValidation: zero option values mean "default", negative
// values (and a batch window without batching) fail Async() with a
// descriptive error instead of being silently clamped.
func TestAsyncOptionValidation(t *testing.T) {
	rg := buildRig(t)
	cases := []struct {
		name    string
		opts    []AsyncOption
		wantErr string // empty: must succeed
	}{
		{"defaults", nil, ""},
		{"zero-workers", []AsyncOption{WithAsyncWorkers(0)}, ""},
		{"zero-queue", []AsyncOption{WithQueueDepth(0)}, ""},
		{"zero-batch", []AsyncOption{WithMaxBatch(0)}, ""},
		{"batched", []AsyncOption{WithMaxBatch(8), WithBatchWindow(time.Millisecond)}, ""},
		{"budget", []AsyncOption{WithSLOBudget(time.Millisecond)}, ""},
		{"negative-workers", []AsyncOption{WithAsyncWorkers(-1)}, "WithAsyncWorkers(-1)"},
		{"negative-queue", []AsyncOption{WithQueueDepth(-4)}, "WithQueueDepth(-4)"},
		{"negative-batch", []AsyncOption{WithMaxBatch(-2)}, "WithMaxBatch(-2)"},
		{"negative-window", []AsyncOption{WithMaxBatch(4), WithBatchWindow(-time.Second)}, "WithBatchWindow"},
		{"negative-budget", []AsyncOption{WithSLOBudget(-time.Second)}, "WithSLOBudget"},
		{"window-without-batching", []AsyncOption{WithBatchWindow(time.Millisecond)}, "WithMaxBatch"},
		{"window-batch-1", []AsyncOption{WithMaxBatch(1), WithBatchWindow(time.Millisecond)}, "WithMaxBatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := rg.pipeline(t)
			defer p.Close()
			ap, err := p.Async(tc.opts...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Async() = %v, want success", err)
				}
				ap.Close()
				return
			}
			if err == nil {
				ap.Close()
				t.Fatalf("Async() succeeded, want error containing %q", tc.wantErr)
			}
			if ap != nil {
				t.Fatal("failed Async() returned a non-nil front-end")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Async() = %q, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestAdaptiveBatchBitIdentical is the batching acceptance criterion:
// micro-batched dispatch — greedy and windowed, under mixed priority
// classes — produces predictions byte-identical to sequential serving
// on one session.
func TestAdaptiveBatchBitIdentical(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()

	s := rg.pipeline(t).NewSession()
	want := make([]int, len(rg.x))
	for i, img := range rg.x {
		c, err := s.Classify(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = c
	}

	variants := []struct {
		name string
		opts []AsyncOption
	}{
		{"greedy", []AsyncOption{WithAsyncWorkers(4), WithMaxBatch(8), WithQueueDepth(len(rg.x))}},
		{"windowed", []AsyncOption{WithAsyncWorkers(4), WithMaxBatch(8), WithBatchWindow(200 * time.Microsecond), WithQueueDepth(len(rg.x))}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			ap := mustAsync(t, rg.pipeline(t), v.opts...)
			chans := make([]<-chan Result, len(rg.x))
			for i, img := range rg.x {
				// Mixed classes: scheduling may reorder, results may not.
				chans[i] = ap.SubmitPriority(ctx, Priority(i%int(numPriorities)), img)
			}
			ap.Close()
			for i, ch := range chans {
				r := <-ch
				if r.Err != nil {
					t.Fatalf("input %d: %v", i, r.Err)
				}
				if r.Class != want[i] {
					t.Fatalf("input %d: batched %d, sequential %d", i, r.Class, want[i])
				}
			}
			if m := ap.Metrics(); m.BatchedRequests != uint64(len(rg.x)) {
				t.Fatalf("batcher carried %d requests, want %d", m.BatchedRequests, len(rg.x))
			}
		})
	}
}

// TestPriorityOrdering wedges the single worker, queues one request of
// each class, and checks completion order follows class rank, not
// submission order.
func TestPriorityOrdering(t *testing.T) {
	rg := buildRig(t)
	gate := newGateEncoder()
	p, err := New(rg.mapping,
		WithEncoder(gate),
		WithDecoder(codec.NewCounter(10)),
		WithWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	ap := mustAsync(t, p, WithAsyncWorkers(1), WithQueueDepth(8))
	results := ap.Results()
	ctx := context.Background()

	ap.Submit(ctx, rg.x[0]) // seq 0 wedges the worker
	<-gate.started
	ap.SubmitPriority(ctx, PriorityLow, rg.x[1])    // seq 1
	ap.SubmitPriority(ctx, PriorityNormal, rg.x[2]) // seq 2
	ap.SubmitPriority(ctx, PriorityHigh, rg.x[3])   // seq 3

	close(gate.release)
	ap.Close()
	var order []uint64
	for r := range results {
		if r.Err != nil {
			t.Fatalf("seq %d: %v", r.Seq, r.Err)
		}
		order = append(order, r.Seq)
	}
	want := []uint64{0, 3, 2, 1} // wedged first, then high > normal > low
	if len(order) != len(want) {
		t.Fatalf("completion order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order %v, want %v", order, want)
		}
	}
}

// TestShedQueueFull pins queue-full shedding: with the worker wedged
// and the queue at capacity, a PriorityLow submission comes back with
// ErrShed immediately — no blocking, no worker consumed — while
// already-accepted work is untouched.
func TestShedQueueFull(t *testing.T) {
	rg := buildRig(t)
	gate := newGateEncoder()
	p, err := New(rg.mapping,
		WithEncoder(gate),
		WithDecoder(codec.NewCounter(10)),
		WithWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	ap := mustAsync(t, p, WithAsyncWorkers(1), WithQueueDepth(1))
	ctx := context.Background()

	first := ap.Submit(ctx, rg.x[0])
	<-gate.started // worker wedged inside presentation 0
	second := ap.Submit(ctx, rg.x[1])

	var shedRes Result
	select {
	case shedRes = <-ap.SubmitPriority(ctx, PriorityLow, rg.x[2]):
	case <-time.After(5 * time.Second):
		t.Fatal("low-priority Submit blocked at full queue instead of shedding")
	}
	if !errors.Is(shedRes.Err, ErrShed) {
		t.Fatalf("shed err = %v, want ErrShed", shedRes.Err)
	}
	if shedRes.Class != -1 {
		t.Fatalf("shed result carries class %d, want -1", shedRes.Class)
	}
	m := ap.Metrics()
	if m.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", m.Shed)
	}
	if m.Completed != 0 {
		t.Fatalf("shed consumed a worker: %d completions before release", m.Completed)
	}

	close(gate.release)
	ap.Close()
	for i, ch := range []<-chan Result{first, second} {
		if r := <-ch; r.Err != nil {
			t.Fatalf("accepted submission %d failed: %v", i, r.Err)
		}
	}
}

// TestShedEstimatedWait pins budget shedding: once the service-time
// EWMA is seeded above the SLO budget and a backlog exists, a
// PriorityLow submission is shed because the estimated wait exceeds
// the budget — even though the queue still has room.
func TestShedEstimatedWait(t *testing.T) {
	const budget = 100 * time.Millisecond
	rg := buildRig(t)
	enc := newStepEncoder()
	p := stepPipeline(t, rg, enc)
	ap := mustAsync(t, p,
		WithAsyncWorkers(1), WithQueueDepth(4), WithSLOBudget(budget))
	ctx := context.Background()

	// Seed the EWMA above the budget: hold the first presentation's
	// encode tick well past it before releasing. The request itself is
	// dequeued immediately (idle worker), so its own deadline holds.
	first := ap.Submit(ctx, rg.x[0])
	<-enc.started
	time.Sleep(4 * budget)
	enc.step <- struct{}{}
	if r := <-first; r.Err != nil {
		t.Fatal(r.Err)
	}
	if ewma := ap.Metrics().ServiceEWMA; ewma <= budget {
		t.Fatalf("service EWMA %v not above the %v budget", ewma, budget)
	}

	// Wedge the worker on presentation 1 and park 2 behind it.
	second := ap.Submit(ctx, rg.x[1])
	third := ap.Submit(ctx, rg.x[2])
	if m := ap.Metrics(); m.QueueDepth < 1 {
		t.Fatalf("no backlog built: queue depth %d", m.QueueDepth)
	}

	r := <-ap.SubmitPriority(ctx, PriorityLow, rg.x[3])
	if !errors.Is(r.Err, ErrShed) {
		t.Fatalf("budget shed err = %v, want ErrShed", r.Err)
	}
	if !strings.Contains(r.Err.Error(), "SLO budget") {
		t.Fatalf("budget shed err %q does not name the budget", r.Err)
	}
	if m := ap.Metrics(); m.Shed != 1 || m.EstimatedWait <= 0 {
		t.Fatalf("metrics after budget shed: %+v", m)
	}

	close(enc.step) // release everything
	ap.Close()
	// The parked requests drain; on a heavily loaded machine their queue
	// wait can legitimately exceed the budget, in which case deadline-
	// aware dequeue fails them with ErrDeadline instead of serving them.
	for i, ch := range []<-chan Result{second, third} {
		if r := <-ch; r.Err != nil && !errors.Is(r.Err, ErrDeadline) {
			t.Fatalf("accepted submission %d failed: %v", i, r.Err)
		}
	}
}

// TestDeadlineExpiry pins deadline-aware scheduling: a request whose
// WithSLOBudget lapses while it sits in the queue fails at dequeue
// with ErrDeadline — no worker time is spent presenting an answer that
// is already too late — and is counted in Metrics.Expired.
func TestDeadlineExpiry(t *testing.T) {
	const budget = 30 * time.Millisecond
	rg := buildRig(t)
	gate := newGateEncoder()
	p, err := New(rg.mapping,
		WithEncoder(gate),
		WithDecoder(codec.NewCounter(10)),
		WithWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	ap := mustAsync(t, p, WithAsyncWorkers(1), WithQueueDepth(4), WithSLOBudget(budget))
	ctx := context.Background()

	first := ap.Submit(ctx, rg.x[0])
	<-gate.started // worker wedged inside presentation 0, within budget
	second := ap.Submit(ctx, rg.x[1])
	time.Sleep(3 * budget) // the queued request's budget lapses
	close(gate.release)
	ap.Close()

	// The first request was dequeued instantly; wedging happened in
	// service, which the deadline check does not cover.
	if r := <-first; r.Err != nil {
		t.Fatalf("first request failed: %v", r.Err)
	}
	r := <-second
	if !errors.Is(r.Err, ErrDeadline) {
		t.Fatalf("expired err = %v, want ErrDeadline", r.Err)
	}
	if r.Class != -1 {
		t.Fatalf("expired result carries class %d, want -1", r.Class)
	}
	if !strings.Contains(r.Err.Error(), "SLO budget") {
		t.Fatalf("expired err %q does not name the budget", r.Err)
	}
	m := ap.Metrics()
	if m.Expired != 1 || m.Failed != 1 || m.Completed != 2 {
		t.Fatalf("metrics after expiry: Expired %d Failed %d Completed %d, want 1 1 2",
			m.Expired, m.Failed, m.Completed)
	}
}

// TestSubmitBlocksAtFullQueue is the backpressure contract: a normal
// Submit parks at a full queue and completes once workers drain it.
func TestSubmitBlocksAtFullQueue(t *testing.T) {
	rg := buildRig(t)
	gate := newGateEncoder()
	p, err := New(rg.mapping,
		WithEncoder(gate),
		WithDecoder(codec.NewCounter(10)),
		WithWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	ap := mustAsync(t, p, WithAsyncWorkers(1), WithQueueDepth(1))
	ctx := context.Background()

	ap.Submit(ctx, rg.x[0])
	<-gate.started          // worker wedged
	ap.Submit(ctx, rg.x[1]) // fills the queue

	unparked := make(chan (<-chan Result), 1)
	go func() { unparked <- ap.Submit(ctx, rg.x[2]) }()
	select {
	case <-unparked:
		t.Fatal("Submit returned at a full queue — backpressure lost")
	case <-time.After(50 * time.Millisecond):
	}

	close(gate.release) // workers drain; the parked Submit must unblock
	var third <-chan Result
	select {
	case third = <-unparked:
	case <-time.After(5 * time.Second):
		t.Fatal("Submit still parked after workers drained the queue")
	}
	ap.Close()
	if r := <-third; r.Err != nil {
		t.Fatalf("unparked submission failed: %v", r.Err)
	}
}

// TestSubmitPriorityInvalidClass: an out-of-range class is rejected on
// the spot with a descriptive error.
func TestSubmitPriorityInvalidClass(t *testing.T) {
	rg := buildRig(t)
	ap := mustAsync(t, rg.pipeline(t), WithAsyncWorkers(1))
	defer ap.Close()
	r := <-ap.SubmitPriority(context.Background(), Priority(9), rg.x[0])
	if r.Err == nil || !strings.Contains(r.Err.Error(), "invalid priority class") {
		t.Fatalf("invalid class err = %v", r.Err)
	}
	if m := ap.Metrics(); m.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", m.Rejected)
	}
}

// TestBatchedCloseDrains: the graceful-close contract holds through the
// micro-batcher — every accepted submission completes with a real
// result, and post-Close submissions report ErrClosed.
func TestBatchedCloseDrains(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()
	ap := mustAsync(t, rg.pipeline(t),
		WithAsyncWorkers(2), WithMaxBatch(8), WithQueueDepth(len(rg.x)))
	chans := make([]<-chan Result, len(rg.x))
	for i, img := range rg.x {
		chans[i] = ap.Submit(ctx, img)
	}
	ap.Close() // returns only after queued + in-flight work retired
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Err != nil {
				t.Fatalf("input %d: %v", i, r.Err)
			}
		default:
			t.Fatalf("input %d: no result after Close", i)
		}
	}
	if r := <-ap.Submit(ctx, rg.x[0]); !errors.Is(r.Err, ErrClosed) {
		t.Fatalf("post-Close Submit err = %v, want ErrClosed", r.Err)
	}
}

// TestMetricsSnapshot drives the batched front-end end to end and
// checks the snapshot: config echo, counters, batch causes and latency
// histogram counts.
func TestMetricsSnapshot(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()

	t.Run("greedy-causes", func(t *testing.T) {
		ap := mustAsync(t, rg.pipeline(t),
			WithAsyncWorkers(2), WithMaxBatch(64), WithQueueDepth(64))
		n := len(rg.x)
		for _, img := range rg.x {
			<-ap.Submit(ctx, img) // closed-loop: queue never fills
		}
		ap.Close()
		m := ap.Metrics()
		if m.Workers != 2 || m.QueueCap != 64 || m.MaxBatch != 64 {
			t.Fatalf("config echo wrong: %+v", m)
		}
		if m.Submitted != uint64(n) || m.Completed != uint64(n) || m.Failed != 0 {
			t.Fatalf("counters: %+v", m)
		}
		if m.BatchedRequests != uint64(n) || m.Batches == 0 || m.DrainBatches == 0 {
			t.Fatalf("greedy batcher never dispatched on drain: %+v", m)
		}
		if m.QueueWait.Count != uint64(n) || m.EndToEnd.Count != uint64(n) {
			t.Fatalf("histogram counts: queue-wait %d, e2e %d, want %d",
				m.QueueWait.Count, m.EndToEnd.Count, n)
		}
		if m.EndToEnd.P99 <= 0 || m.EndToEnd.Max < m.EndToEnd.P50 {
			t.Fatalf("end-to-end stats degenerate: %+v", m.EndToEnd)
		}
		if m.QueueDepth != 0 || m.InFlight != 0 {
			t.Fatalf("gauges nonzero after Close: %+v", m)
		}
	})

	t.Run("full-batches", func(t *testing.T) {
		ap := mustAsync(t, rg.pipeline(t),
			WithAsyncWorkers(2), WithMaxBatch(2), WithBatchWindow(500*time.Millisecond), WithQueueDepth(16))
		chans := make([]<-chan Result, 4)
		for i := 0; i < 4; i++ {
			chans[i] = ap.Submit(ctx, rg.x[i])
		}
		for _, ch := range chans {
			if r := <-ch; r.Err != nil {
				t.Fatal(r.Err)
			}
		}
		ap.Close()
		m := ap.Metrics()
		if m.FullBatches != 2 || m.BatchedRequests != 4 {
			t.Fatalf("want 2 full batches of 2, got %+v", m)
		}
		if m.MeanBatch != 2 {
			t.Fatalf("MeanBatch = %v, want 2", m.MeanBatch)
		}
	})

	t.Run("deadline-batches", func(t *testing.T) {
		ap := mustAsync(t, rg.pipeline(t),
			WithAsyncWorkers(2), WithMaxBatch(64), WithBatchWindow(20*time.Millisecond), WithQueueDepth(64))
		a, b := ap.Submit(ctx, rg.x[0]), ap.Submit(ctx, rg.x[1])
		if r := <-a; r.Err != nil {
			t.Fatal(r.Err)
		}
		if r := <-b; r.Err != nil {
			t.Fatal(r.Err)
		}
		ap.Close()
		if m := ap.Metrics(); m.DeadlineBatches == 0 {
			t.Fatalf("no deadline dispatch despite short batches: %+v", m)
		}
	})
}
