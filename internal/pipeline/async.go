// Async serving backend: a non-blocking, channel-based front-end over a
// pool of Sessions, so one slow presentation never head-of-line blocks
// the submit path — the software analogue of the chip's time-multiplexed,
// event-driven serving discipline.
//
// Requests enter through a bounded queue (backpressure: Submit blocks
// while the queue is full), workers pull them as they free up, and each
// completion is delivered twice: once on the per-request channel Submit
// returned, and once on the shared Results stream. Completions arrive
// out of submission order; the Seq number stamped on every Result lets
// callers re-order them. Because every presentation is self-contained
// (see Session.Classify), the re-ordered results are bit-identical to
// classifying the same inputs sequentially.

package pipeline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrClosed is the error a Result carries for a submission made after
// Close.
var ErrClosed = errors.New("pipeline: async pipeline closed")

// Result is one asynchronous classification outcome. Exactly one
// Result is delivered on every channel Submit returns, even when the
// request was rejected (queue-full cancellation or a closed pipeline);
// Err is non-nil and Class is -1 in those cases.
type Result struct {
	// Seq is the submission sequence number: the i-th Submit call is
	// stamped i (from 0). Submissions from a single goroutine are
	// numbered in call order, so Seq re-orders out-of-order completions
	// back into input order. A rejected submission burns its number, so
	// index by Seq only when every Submit was accepted (check Err);
	// when rejections are possible, correlate through the per-request
	// channels instead.
	Seq uint64
	// Class is the decoded class, -1 on error.
	Class int
	// Err is the classification or submission error, if any.
	Err error
}

type asyncConfig struct {
	workers int
	queue   int
}

// AsyncOption configures an AsyncPipeline.
type AsyncOption func(*asyncConfig)

// WithAsyncWorkers sets the number of pool sessions serving submissions
// (default: the pipeline's WithWorkers value).
func WithAsyncWorkers(n int) AsyncOption { return func(c *asyncConfig) { c.workers = n } }

// WithQueueDepth bounds the submit queue (default 2x workers). A full
// queue is the backpressure signal: Submit blocks until a worker frees
// a slot or the submission context is cancelled.
func WithQueueDepth(n int) AsyncOption { return func(c *asyncConfig) { c.queue = n } }

// asyncRequest is one queued submission.
type asyncRequest struct {
	ctx    context.Context
	seq    uint64
	values []float64
	done   chan<- Result // cap 1: the worker's send never blocks
}

// AsyncPipeline is the non-blocking serving front-end of a Pipeline: a
// worker pool of Sessions behind a bounded submit queue.
//
//	ap := p.Async(pipeline.WithAsyncWorkers(8))
//	results := ap.Results() // subscribe before submitting
//	go func() {
//		for _, img := range images {
//			ap.Submit(ctx, img) // or keep the returned channel per request
//		}
//		ap.Close() // drains queued + in-flight work, then results closes
//	}()
//	for r := range results { // drain obligation: read until closed
//		handle(r.Seq, r.Class, r.Err)
//	}
//
// Submit and Close may be called from any goroutine.
type AsyncPipeline struct {
	p        *Pipeline
	requests chan asyncRequest
	seq      atomic.Uint64
	workers  sync.WaitGroup

	// submitMu makes Submit vs Close safe: submitters hold the read
	// lock across the enqueue, so Close cannot close(requests) under a
	// blocked send (workers keep draining, so pending submitters always
	// finish and release it).
	submitMu sync.RWMutex
	closed   bool

	// The Results stream is pumped through an unbounded buffer so
	// workers never block on a slow stream consumer: publish appends
	// under streamMu, a forwarder goroutine delivers in completion
	// order. The stream only buffers once Results has been called.
	streamMu    sync.Mutex
	streamBuf   []Result
	streamCh    chan Result
	notify      chan struct{}
	workersDone chan struct{}
	closeOnce   sync.Once
}

// Async builds the asynchronous serving front-end over the pipeline.
// Worker sessions are registered with the pipeline, so their activity
// is part of Pipeline.Usage like any other session's — including
// boundary traffic when the pipeline runs WithSystem: each async
// worker owns its own multi-chip tile, and Pipeline.Traffic aggregates
// the pool's crossings race-free while workers serve.
//
// The front-end is registered with the pipeline: Pipeline.Close closes
// it (draining queued and in-flight submissions) before releasing the
// session pool. Async on an already-closed pipeline returns a
// front-end that is born closed — every Submit reports ErrClosed.
func (p *Pipeline) Async(opts ...AsyncOption) *AsyncPipeline {
	cfg := asyncConfig{workers: p.cfg.workers}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	// A remote pipeline has exactly one lane (the shard processes hold
	// one model state); extra workers would serialize on it anyway.
	if len(p.cfg.remoteAddrs) > 0 {
		cfg.workers = 1
	}
	if cfg.queue < 1 {
		cfg.queue = 2 * cfg.workers
	}
	a := &AsyncPipeline{
		p:           p,
		requests:    make(chan asyncRequest, cfg.queue),
		notify:      make(chan struct{}, 1),
		workersDone: make(chan struct{}),
	}
	// Session creation, registration and the closed check share one
	// critical section with Close's finalization, so a front-end either
	// gets live sessions and a Close-time drain, or is born closed —
	// never a worker pool on a released pipeline.
	p.mu.Lock()
	if p.finalized || p.closed.Load() {
		p.mu.Unlock()
		_ = a.Close() // born closed: zero workers, Submit reports ErrClosed
		return a
	}
	for i := 0; i < cfg.workers; i++ {
		s := p.newSessionLocked()
		a.workers.Add(1)
		go a.worker(s)
	}
	p.asyncs = append(p.asyncs, a)
	p.mu.Unlock()
	return a
}

// Submit enqueues one classification and returns its result channel,
// which receives exactly one Result (it is buffered, so the caller may
// drop it and collect from Results instead). Submit blocks while the
// queue is full — the backpressure contract — until ctx is cancelled or
// the pipeline is closed, in which case the Result carries the error.
func (a *AsyncPipeline) Submit(ctx context.Context, values []float64) <-chan Result {
	done := make(chan Result, 1)
	res := Result{Seq: a.seq.Add(1) - 1, Class: -1}
	a.submitMu.RLock()
	if a.closed {
		a.submitMu.RUnlock()
		res.Err = ErrClosed
		done <- res
		return done
	}
	select {
	case a.requests <- asyncRequest{ctx: ctx, seq: res.Seq, values: values, done: done}:
		a.submitMu.RUnlock()
	case <-ctx.Done():
		a.submitMu.RUnlock()
		res.Err = ctx.Err()
		done <- res
	}
	return done
}

// Results returns the shared completion stream: every Result the worker
// pool produces, in completion order, across all submitters. Subscribe
// before submitting — completions that precede the first Results call
// are not replayed. The stream closes after Close once the final
// completion has been delivered. Rejected submissions (closed pipeline,
// cancelled enqueue) are reported only on their own Submit channel.
//
// Subscribing obliges you to drain: keep receiving until the stream
// closes (`for r := range results`). The forwarder parks on a stream
// nobody reads, holding the undelivered backlog; a subscriber bailing
// out early should hand the tail to a sink (`go func() { for range
// results {} }()`) — every Result is still delivered on its own Submit
// channel, so nothing is lost by discarding the stream.
func (a *AsyncPipeline) Results() <-chan Result {
	a.streamMu.Lock()
	defer a.streamMu.Unlock()
	if a.streamCh == nil {
		a.streamCh = make(chan Result, 16)
		go a.forward()
	}
	return a.streamCh
}

// Close stops accepting submissions, drains every queued and in-flight
// request to completion, and returns once the worker pool has retired.
// Results (if subscribed) closes after its tail is delivered — Close
// does not wait for that delivery, so it never blocks on a slow stream
// consumer; the subscriber's drain obligation (see Results) still
// stands. Close is idempotent; later Submits receive ErrClosed.
func (a *AsyncPipeline) Close() error {
	a.closeOnce.Do(func() {
		a.submitMu.Lock()
		a.closed = true
		close(a.requests)
		a.submitMu.Unlock()
		a.workers.Wait()
		close(a.workersDone)
	})
	return nil
}

// worker serves submissions on its own session until the queue closes.
func (a *AsyncPipeline) worker(s *Session) {
	defer a.workers.Done()
	for req := range a.requests {
		res := Result{Seq: req.seq}
		if err := req.ctx.Err(); err != nil {
			// Cancelled while queued: report without running.
			res.Class, res.Err = -1, err
		} else {
			res.Class, res.Err = s.Classify(req.ctx, req.values)
		}
		req.done <- res
		a.publish(res)
	}
}

// publish appends a completion for the Results forwarder (a no-op until
// someone subscribes) and nudges it.
func (a *AsyncPipeline) publish(r Result) {
	a.streamMu.Lock()
	if a.streamCh != nil {
		a.streamBuf = append(a.streamBuf, r)
		select {
		case a.notify <- struct{}{}:
		default:
		}
	}
	a.streamMu.Unlock()
}

// forward pumps buffered completions to the stream channel and closes
// it once the workers have retired and the tail is delivered. Workers
// publish before exiting, so everything they produced is visible by the
// time workersDone fires.
func (a *AsyncPipeline) forward() {
	defer close(a.streamCh)
	for {
		a.streamMu.Lock()
		batch := a.streamBuf
		a.streamBuf = nil
		a.streamMu.Unlock()
		for _, r := range batch {
			a.streamCh <- r
		}
		select {
		case <-a.notify:
		case <-a.workersDone:
			a.streamMu.Lock()
			batch = a.streamBuf
			a.streamBuf = nil
			a.streamMu.Unlock()
			for _, r := range batch {
				a.streamCh <- r
			}
			return
		}
	}
}
