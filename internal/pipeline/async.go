// Async serving backend: a non-blocking, channel-based front-end over a
// pool of Sessions, so one slow presentation never head-of-line blocks
// the submit path — the software analogue of the chip's time-multiplexed,
// event-driven serving discipline.
//
// Requests enter through a bounded, priority-classed queue (backpressure:
// Submit blocks while the queue is full; low-priority work is shed with
// ErrShed instead of blocking), workers pull them as they free up, and
// each completion is delivered twice: once on the per-request channel
// Submit returned, and once on the shared Results stream. Completions
// arrive out of submission order; the Seq number stamped on every Result
// lets callers re-order them.
//
// With WithMaxBatch(n > 1) an adaptive micro-batcher sits between the
// queue and the pool: a dispatcher coalesces queued requests into one
// batch — dispatching early the moment the batch fills, at the
// WithBatchWindow deadline otherwise (window zero: greedy, it takes
// whatever is queued and never waits) — and fans the batch out to the
// workers in contiguous chunks, amortising per-request handoffs the way
// ClassifyBatch does. Because every presentation is self-contained (see
// Session.Classify), any such scheduling is bit-identical to classifying
// the same inputs sequentially.

package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is the error a Result carries for a submission made after
// Close.
var ErrClosed = errors.New("pipeline: async pipeline closed")

// ErrShed is the error a Result carries when admission control refuses
// low-priority work: the queue is full, or the estimated queue wait
// exceeds the WithSLOBudget. Shed requests never consume a worker; test
// with errors.Is(err, ErrShed) and retry later or degrade.
var ErrShed = errors.New("pipeline: request shed")

// ErrDeadline is the error a Result carries when a request's SLO budget
// (WithSLOBudget) lapsed while it sat in the queue: the worker checks
// the queue wait at dequeue and fails the request without running it —
// serving a presentation whose answer is already too late only delays
// the requests behind it. Expired requests count in Metrics.Expired;
// test with errors.Is(err, ErrDeadline).
var ErrDeadline = errors.New("pipeline: request deadline lapsed in queue")

// Priority is the admission class of a submission. Higher classes are
// dequeued first whenever a backlog exists; only PriorityLow is ever
// shed by admission control — PriorityHigh and PriorityNormal keep the
// blocking backpressure contract of Submit.
type Priority int

const (
	PriorityHigh Priority = iota
	PriorityNormal
	PriorityLow
	numPriorities // sentinel: number of classes
)

// String names the class for logs and metrics.
func (c Priority) String() string {
	switch c {
	case PriorityHigh:
		return "high"
	case PriorityNormal:
		return "normal"
	case PriorityLow:
		return "low"
	}
	return fmt.Sprintf("priority(%d)", int(c))
}

// Result is one asynchronous classification outcome. Exactly one
// Result is delivered on every channel Submit returns, even when the
// request was rejected (queue-full cancellation, shed, or a closed
// pipeline); Err is non-nil and Class is -1 in those cases.
type Result struct {
	// Seq is the submission sequence number: the i-th Submit call is
	// stamped i (from 0). Submissions from a single goroutine are
	// numbered in call order, so Seq re-orders out-of-order completions
	// back into input order. A rejected submission burns its number, so
	// index by Seq only when every Submit was accepted (check Err);
	// when rejections are possible, correlate through the per-request
	// channels instead.
	Seq uint64
	// Class is the decoded class, -1 on error.
	Class int
	// Err is the classification or submission error, if any.
	Err error
}

type asyncConfig struct {
	workers   int
	queue     int
	maxBatch  int
	window    time.Duration
	sloBudget time.Duration
}

// validate rejects malformed option values. Zero always means "use the
// default"; negatives (and a batch window without batching) are caller
// bugs reported at Async() time rather than silently clamped.
func (c *asyncConfig) validate() error {
	switch {
	case c.workers < 0:
		return fmt.Errorf("pipeline: WithAsyncWorkers(%d): worker count cannot be negative", c.workers)
	case c.queue < 0:
		return fmt.Errorf("pipeline: WithQueueDepth(%d): queue depth cannot be negative", c.queue)
	case c.maxBatch < 0:
		return fmt.Errorf("pipeline: WithMaxBatch(%d): batch size cannot be negative", c.maxBatch)
	case c.window < 0:
		return fmt.Errorf("pipeline: WithBatchWindow(%v): batch window cannot be negative", c.window)
	case c.sloBudget < 0:
		return fmt.Errorf("pipeline: WithSLOBudget(%v): SLO budget cannot be negative", c.sloBudget)
	case c.window > 0 && c.maxBatch <= 1:
		return fmt.Errorf("pipeline: WithBatchWindow(%v) requires WithMaxBatch(n) with n >= 2", c.window)
	}
	return nil
}

// AsyncOption configures an AsyncPipeline. Option values are validated
// when Async builds the front-end: zero means "default", negative values
// are an error.
type AsyncOption func(*asyncConfig)

// WithAsyncWorkers sets the number of pool sessions serving submissions
// (default: the pipeline's WithWorkers value).
func WithAsyncWorkers(n int) AsyncOption { return func(c *asyncConfig) { c.workers = n } }

// WithQueueDepth bounds the submit queue (default 2x workers, or 2x
// MaxBatch if that is larger). A full queue is the backpressure signal:
// Submit blocks until a worker frees a slot or the submission context is
// cancelled — except for PriorityLow, which is shed instead.
func WithQueueDepth(n int) AsyncOption { return func(c *asyncConfig) { c.queue = n } }

// WithMaxBatch caps the adaptive micro-batch (default 1: batching off).
// With n >= 2 a dispatcher coalesces queued submissions into batches of
// up to n and fans each batch out to the worker pool in contiguous
// chunks; results are bit-identical to unbatched serving.
func WithMaxBatch(n int) AsyncOption { return func(c *asyncConfig) { c.maxBatch = n } }

// WithBatchWindow sets how long an open micro-batch may wait for more
// requests before dispatching short (default 0: dispatch immediately
// with whatever is queued — coalescing still happens under backlog, but
// no request ever waits on an idle pool). The window runs from the
// moment the batch opens; a batch that fills dispatches early. Requires
// WithMaxBatch(n >= 2).
func WithBatchWindow(d time.Duration) AsyncOption { return func(c *asyncConfig) { c.window = d } }

// WithSLOBudget sets the tail-latency budget admission control defends
// (default 0: disabled). When the estimated queue wait — queued requests
// times the smoothed service time over the pool width — exceeds the
// budget, new PriorityLow submissions are shed with ErrShed instead of
// joining a queue they would only make later.
func WithSLOBudget(d time.Duration) AsyncOption { return func(c *asyncConfig) { c.sloBudget = d } }

// asyncRequest is one queued submission.
type asyncRequest struct {
	ctx      context.Context
	seq      uint64
	class    Priority
	values   []float64
	done     chan<- Result // cap 1: the worker's send never blocks
	accepted time.Time     // admission time, for queue-wait accounting
}

// AsyncPipeline is the non-blocking serving front-end of a Pipeline: a
// worker pool of Sessions behind a bounded, priority-classed submit
// queue, with an optional adaptive micro-batcher between them.
//
//	ap, err := p.Async(pipeline.WithAsyncWorkers(8), pipeline.WithMaxBatch(64))
//	if err != nil { ... }
//	results := ap.Results() // subscribe before submitting
//	go func() {
//		for _, img := range images {
//			ap.Submit(ctx, img) // or keep the returned channel per request
//		}
//		ap.Close() // drains queued + in-flight work, then results closes
//	}()
//	for r := range results { // drain obligation: read until closed
//		handle(r.Seq, r.Class, r.Err)
//	}
//
// Submit, SubmitPriority, Metrics and Close may be called from any
// goroutine.
type AsyncPipeline struct {
	p   *Pipeline
	cfg asyncConfig

	// queues hold admitted requests, one bounded channel per priority
	// class; slots is the counting semaphore bounding total occupancy
	// across the classes to cfg.queue (a token is acquired at admission
	// and released at dequeue, so len(slots) is the queue-depth gauge
	// and each class channel — sized cfg.queue — can never block an
	// admitted send).
	queues [numPriorities]chan asyncRequest
	slots  chan struct{}
	// work carries batch chunks from the dispatcher to the workers when
	// micro-batching is on (cfg.maxBatch > 1); nil otherwise.
	work chan []asyncRequest

	seq     atomic.Uint64
	workers sync.WaitGroup // worker pool + dispatcher, when batching

	met asyncMetrics

	// submitMu makes Submit vs Close safe: submitters hold the read
	// lock across the enqueue, so Close cannot close the queues under a
	// blocked send (workers keep draining, so pending submitters always
	// finish and release it).
	submitMu sync.RWMutex
	closed   bool

	// The Results stream is pumped through an unbounded buffer so
	// workers never block on a slow stream consumer: publish appends
	// under streamMu, a forwarder goroutine delivers in completion
	// order. The stream only buffers once Results has been called.
	streamMu    sync.Mutex
	streamBuf   []Result
	streamCh    chan Result
	notify      chan struct{}
	workersDone chan struct{}
	closeOnce   sync.Once
}

// Async builds the asynchronous serving front-end over the pipeline and
// validates its options: zero values mean "default", negative values
// (or a batch window without batching) return an error. Worker sessions
// are registered with the pipeline, so their activity is part of
// Pipeline.Usage like any other session's — including boundary traffic
// when the pipeline runs WithSystem: each async worker owns its own
// multi-chip tile, and Pipeline.Traffic aggregates the pool's crossings
// race-free while workers serve.
//
// The front-end is registered with the pipeline: Pipeline.Close closes
// it (draining queued and in-flight submissions) before releasing the
// session pool. Async on an already-closed pipeline returns a
// front-end that is born closed — every Submit reports ErrClosed.
func (p *Pipeline) Async(opts ...AsyncOption) (*AsyncPipeline, error) {
	var cfg asyncConfig
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.workers == 0 {
		cfg.workers = p.cfg.workers
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	// A remote pipeline has exactly one lane (the shard processes hold
	// one model state); extra workers would serialize on it anyway.
	if len(p.cfg.remoteAddrs) > 0 {
		cfg.workers = 1
	}
	if cfg.maxBatch == 0 {
		cfg.maxBatch = 1
	}
	if cfg.queue == 0 {
		cfg.queue = 2 * cfg.workers
		if cfg.maxBatch > 1 && cfg.queue < 2*cfg.maxBatch {
			cfg.queue = 2 * cfg.maxBatch
		}
	}
	a := &AsyncPipeline{
		p:           p,
		cfg:         cfg,
		slots:       make(chan struct{}, cfg.queue),
		notify:      make(chan struct{}, 1),
		workersDone: make(chan struct{}),
	}
	for i := range a.queues {
		a.queues[i] = make(chan asyncRequest, cfg.queue)
	}
	// Session creation, registration and the closed check share one
	// critical section with Close's finalization, so a front-end either
	// gets live sessions and a Close-time drain, or is born closed —
	// never a worker pool on a released pipeline.
	p.mu.Lock()
	if p.finalized || p.closed.Load() {
		p.mu.Unlock()
		_ = a.Close() // born closed: zero workers, Submit reports ErrClosed
		return a, nil
	}
	batched := cfg.maxBatch > 1
	if batched {
		a.work = make(chan []asyncRequest, 2*cfg.workers)
		a.workers.Add(1)
		go a.dispatch()
	}
	for i := 0; i < cfg.workers; i++ {
		s := p.newSessionLocked()
		a.workers.Add(1)
		if batched {
			go a.batchWorker(s)
		} else {
			go a.worker(s)
		}
	}
	p.asyncs = append(p.asyncs, a)
	p.mu.Unlock()
	return a, nil
}

// Submit enqueues one PriorityNormal classification and returns its
// result channel, which receives exactly one Result (it is buffered, so
// the caller may drop it and collect from Results instead). Submit
// blocks while the queue is full — the backpressure contract — until
// ctx is cancelled or the pipeline is closed, in which case the Result
// carries the error.
func (a *AsyncPipeline) Submit(ctx context.Context, values []float64) <-chan Result {
	return a.SubmitPriority(ctx, PriorityNormal, values)
}

// SubmitPriority enqueues one classification under an admission class.
// PriorityHigh and PriorityNormal block at a full queue exactly like
// Submit; PriorityLow never blocks — admission control sheds it with
// ErrShed when the queue is full or (under WithSLOBudget) when the
// estimated queue wait exceeds the budget. Within the queue, higher
// classes are always dequeued first whenever a backlog exists.
func (a *AsyncPipeline) SubmitPriority(ctx context.Context, class Priority, values []float64) <-chan Result {
	done := make(chan Result, 1)
	res := Result{Seq: a.seq.Add(1) - 1, Class: -1}
	if class < PriorityHigh || class >= numPriorities {
		a.met.rejected.Add(1)
		res.Err = fmt.Errorf("pipeline: invalid priority class %d", int(class))
		done <- res
		return done
	}
	a.submitMu.RLock()
	if a.closed {
		a.submitMu.RUnlock()
		a.met.rejected.Add(1)
		res.Err = ErrClosed
		done <- res
		return done
	}
	if class == PriorityLow {
		if err := a.admitLow(); err != nil {
			a.submitMu.RUnlock()
			a.met.shed.Add(1)
			res.Err = err
			done <- res
			return done
		}
	} else {
		select {
		case a.slots <- struct{}{}:
		case <-ctx.Done():
			a.submitMu.RUnlock()
			a.met.rejected.Add(1)
			res.Err = ctx.Err()
			done <- res
			return done
		}
	}
	// Never blocks: the slot token bounds total occupancy to cfg.queue,
	// and each class channel holds cfg.queue.
	a.queues[class] <- asyncRequest{ctx: ctx, seq: res.Seq, class: class, values: values, done: done, accepted: time.Now()}
	a.met.submitted.Add(1)
	a.submitMu.RUnlock()
	return done
}

// admitLow is the load-shedding admission check for PriorityLow: refuse
// rather than block. The estimated-wait check runs first (no token
// held), then a non-blocking slot acquire covers the queue-full case.
func (a *AsyncPipeline) admitLow() error {
	if b := a.cfg.sloBudget; b > 0 {
		if wait := a.estimatedWait(); wait > b {
			return fmt.Errorf("%w: estimated queue wait %v exceeds SLO budget %v", ErrShed, wait, b)
		}
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
		return fmt.Errorf("%w: queue full (depth %d)", ErrShed, a.cfg.queue)
	}
}

// estimatedWait predicts how long a request admitted now would sit in
// the queue: the current backlog, spread over the pool, at the smoothed
// per-request service time. Zero until the first service completes.
func (a *AsyncPipeline) estimatedWait() time.Duration {
	ewma := a.met.serviceEWMA.Load()
	if ewma == 0 {
		return 0
	}
	return time.Duration(uint64(len(a.slots)) * ewma / uint64(a.cfg.workers))
}

// Metrics returns a point-in-time snapshot of the front-end's serving
// state: gauges, counters and latency histograms. It is safe to call
// concurrently with serving and costs one pass over the histogram
// buckets — cheap enough to poll from a scrape endpoint.
func (a *AsyncPipeline) Metrics() Metrics {
	m := Metrics{
		Workers:         a.cfg.workers,
		QueueCap:        a.cfg.queue,
		MaxBatch:        a.cfg.maxBatch,
		BatchWindow:     a.cfg.window,
		SLOBudget:       a.cfg.sloBudget,
		QueueDepth:      len(a.slots),
		InFlight:        int(a.met.inFlight.Load()),
		ServiceEWMA:     time.Duration(a.met.serviceEWMA.Load()),
		Submitted:       a.met.submitted.Load(),
		Completed:       a.met.completed.Load(),
		Failed:          a.met.failed.Load(),
		Rejected:        a.met.rejected.Load(),
		Shed:            a.met.shed.Load(),
		Expired:         a.met.expired.Load(),
		Batches:         a.met.batches.Load(),
		BatchedRequests: a.met.batchedRequests.Load(),
		FullBatches:     a.met.fullBatches.Load(),
		DeadlineBatches: a.met.deadlineBatches.Load(),
		DrainBatches:    a.met.drainBatches.Load(),
		StreamsOpened:   a.met.streamsOpened.Load(),
		StreamsClosed:   a.met.streamsClosed.Load(),
		StreamFrames:    a.met.streamFrames.Load(),
		StreamDecisions: a.met.streamDecisions.Load(),
		QueueWait:       a.met.queueWait.Snapshot(),
		EndToEnd:        a.met.endToEnd.Snapshot(),
		StreamLatency:   a.met.streamLatency.Snapshot(),
	}
	m.StreamsOpen = int(m.StreamsOpened - m.StreamsClosed)
	m.EstimatedWait = a.estimatedWait()
	if m.Batches > 0 {
		m.MeanBatch = float64(m.BatchedRequests) / float64(m.Batches)
	}
	m.PerPriority = make([]PriorityLatency, numPriorities)
	for c := PriorityHigh; c < numPriorities; c++ {
		m.PerPriority[c] = PriorityLatency{
			Class:     c.String(),
			QueueWait: a.met.classQueueWait[c].Snapshot(),
			EndToEnd:  a.met.classEndToEnd[c].Snapshot(),
		}
	}
	return m
}

// Results returns the shared completion stream: every Result the worker
// pool produces, in completion order, across all submitters. Subscribe
// before submitting — completions that precede the first Results call
// are not replayed. The stream closes after Close once the final
// completion has been delivered. Rejected submissions (closed pipeline,
// cancelled enqueue, shed) are reported only on their own Submit
// channel.
//
// Subscribing obliges you to drain: keep receiving until the stream
// closes (`for r := range results`). The forwarder parks on a stream
// nobody reads, holding the undelivered backlog; a subscriber bailing
// out early should hand the tail to a sink (`go func() { for range
// results {} }()`) — every Result is still delivered on its own Submit
// channel, so nothing is lost by discarding the stream.
func (a *AsyncPipeline) Results() <-chan Result {
	a.streamMu.Lock()
	defer a.streamMu.Unlock()
	if a.streamCh == nil {
		a.streamCh = make(chan Result, 16)
		go a.forward()
	}
	return a.streamCh
}

// Close stops accepting submissions, drains every queued and in-flight
// request to completion, and returns once the worker pool has retired.
// Results (if subscribed) closes after its tail is delivered — Close
// does not wait for that delivery, so it never blocks on a slow stream
// consumer; the subscriber's drain obligation (see Results) still
// stands. Close is idempotent; later Submits receive ErrClosed.
func (a *AsyncPipeline) Close() error {
	a.closeOnce.Do(func() {
		a.submitMu.Lock()
		a.closed = true
		for _, q := range a.queues {
			close(q)
		}
		a.submitMu.Unlock()
		a.workers.Wait()
		close(a.workersDone)
	})
	return nil
}

// tryNext polls the class queues in strict priority order without
// blocking. Closed queues are nilled out in the caller's local set; ok
// is false when every queue is momentarily empty (or closed and
// drained).
func (a *AsyncPipeline) tryNext(qs *[numPriorities]chan asyncRequest) (asyncRequest, bool) {
	for c := range qs {
		if qs[c] == nil {
			continue
		}
		select {
		case req, ok := <-qs[c]:
			if !ok {
				qs[c] = nil
				continue
			}
			<-a.slots
			return req, true
		default:
		}
	}
	return asyncRequest{}, false
}

// next dequeues the highest-priority queued request, blocking while all
// queues are empty. ok is false once every queue is closed and drained.
// Selection among simultaneously-ready queues in the blocking select is
// random, but the non-blocking priority pass re-asserts strict ordering
// whenever a backlog exists.
func (a *AsyncPipeline) next(qs *[numPriorities]chan asyncRequest) (asyncRequest, bool) {
	for {
		if req, ok := a.tryNext(qs); ok {
			return req, true
		}
		if qs[PriorityHigh] == nil && qs[PriorityNormal] == nil && qs[PriorityLow] == nil {
			return asyncRequest{}, false
		}
		select {
		case req, ok := <-qs[PriorityHigh]:
			if !ok {
				qs[PriorityHigh] = nil
				continue
			}
			<-a.slots
			return req, true
		case req, ok := <-qs[PriorityNormal]:
			if !ok {
				qs[PriorityNormal] = nil
				continue
			}
			<-a.slots
			return req, true
		case req, ok := <-qs[PriorityLow]:
			if !ok {
				qs[PriorityLow] = nil
				continue
			}
			<-a.slots
			return req, true
		}
	}
}

// worker serves submissions on its own session until the queues close —
// the unbatched scheduler (MaxBatch <= 1): every worker pulls straight
// from the classed queues.
func (a *AsyncPipeline) worker(s *Session) {
	defer a.workers.Done()
	qs := a.queues
	for {
		req, ok := a.next(&qs)
		if !ok {
			return
		}
		a.serve(s, req)
	}
}

// dispatch is the adaptive micro-batcher (MaxBatch > 1): one goroutine
// that opens a batch on the first dequeued request, fills it from the
// classed queues, and fans it out to the pool. A batch closes the
// moment it reaches MaxBatch (early dispatch), when the batch window
// expires, or when the queue runs dry with a zero window.
func (a *AsyncPipeline) dispatch() {
	defer a.workers.Done()
	defer close(a.work)
	qs := a.queues
	var timer *time.Timer
	if a.cfg.window > 0 {
		timer = time.NewTimer(time.Hour)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
	}
	for {
		first, ok := a.next(&qs)
		if !ok {
			return
		}
		batch := make([]asyncRequest, 1, a.cfg.maxBatch)
		batch[0] = first
		batch, cause := a.fill(&qs, batch, timer)
		a.met.recordBatch(len(batch), cause)
		a.fanOut(batch)
	}
}

// fill grows an open batch until it is full, the window expires, or the
// queues run dry. With a zero window it is greedy: it coalesces
// whatever is already queued and never waits — coalescing still happens
// under backlog, but no request ever waits on an idle pool.
func (a *AsyncPipeline) fill(qs *[numPriorities]chan asyncRequest, batch []asyncRequest, timer *time.Timer) ([]asyncRequest, dispatchCause) {
	if a.cfg.window <= 0 {
		for len(batch) < a.cfg.maxBatch {
			req, ok := a.tryNext(qs)
			if !ok {
				return batch, causeDrain
			}
			batch = append(batch, req)
		}
		return batch, causeFull
	}
	// The window runs from batch open. Stop-and-drain before Reset keeps
	// the pattern correct under both pre- and post-1.23 timer semantics.
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	timer.Reset(a.cfg.window)
	for len(batch) < a.cfg.maxBatch {
		if req, ok := a.tryNext(qs); ok {
			batch = append(batch, req)
			continue
		}
		if qs[PriorityHigh] == nil && qs[PriorityNormal] == nil && qs[PriorityLow] == nil {
			return batch, causeDrain
		}
		select {
		case <-timer.C:
			return batch, causeDeadline
		case req, ok := <-qs[PriorityHigh]:
			if !ok {
				qs[PriorityHigh] = nil
				continue
			}
			<-a.slots
			batch = append(batch, req)
		case req, ok := <-qs[PriorityNormal]:
			if !ok {
				qs[PriorityNormal] = nil
				continue
			}
			<-a.slots
			batch = append(batch, req)
		case req, ok := <-qs[PriorityLow]:
			if !ok {
				qs[PriorityLow] = nil
				continue
			}
			<-a.slots
			batch = append(batch, req)
		}
	}
	return batch, causeFull
}

// fanOut splits a batch into up to `workers` contiguous chunks and
// hands them to the pool — the ClassifyBatch fan-out shape, without a
// barrier: chunks land on the shared work channel and whichever workers
// are free pick them up, so a slow chunk never stalls the rest of the
// batch or the next one.
func (a *AsyncPipeline) fanOut(batch []asyncRequest) {
	n := len(batch)
	chunks := a.cfg.workers
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	for lo := 0; lo < n; lo += size {
		hi := min(lo+size, n)
		a.work <- batch[lo:hi:hi]
	}
}

// batchWorker serves dispatcher chunks on its own session until the
// dispatcher retires and the work channel drains.
func (a *AsyncPipeline) batchWorker(s *Session) {
	defer a.workers.Done()
	for chunk := range a.work {
		for _, req := range chunk {
			a.serve(s, req)
		}
	}
}

// serve runs one request on a session and delivers its Result, keeping
// the latency accounting: queue wait ends here, service feeds the EWMA,
// end-to-end covers admission to delivery.
func (a *AsyncPipeline) serve(s *Session, req asyncRequest) {
	start := time.Now()
	a.met.queueWait.Observe(start.Sub(req.accepted))
	a.met.classQueueWait[req.class].Observe(start.Sub(req.accepted))
	a.met.inFlight.Add(1)
	res := Result{Seq: req.seq}
	if err := req.ctx.Err(); err != nil {
		// Cancelled while queued: report without running.
		res.Class, res.Err = -1, err
	} else if wait := start.Sub(req.accepted); a.cfg.sloBudget > 0 && wait > a.cfg.sloBudget {
		// Deadline-aware scheduling: the SLO budget lapsed in the queue,
		// so the answer is already late — fail fast instead of burning a
		// worker on it. Skips the service EWMA (nothing was served).
		a.met.expired.Add(1)
		res.Class = -1
		res.Err = fmt.Errorf("%w: queued %v exceeds SLO budget %v", ErrDeadline, wait, a.cfg.sloBudget)
	} else {
		res.Class, res.Err = s.Classify(req.ctx, req.values)
		a.met.observeService(time.Since(start))
	}
	a.met.inFlight.Add(-1)
	a.met.completed.Add(1)
	if res.Err != nil {
		a.met.failed.Add(1)
	}
	a.met.endToEnd.Observe(time.Since(req.accepted))
	a.met.classEndToEnd[req.class].Observe(time.Since(req.accepted))
	req.done <- res
	a.publish(res)
}

// publish appends a completion for the Results forwarder (a no-op until
// someone subscribes) and nudges it.
func (a *AsyncPipeline) publish(r Result) {
	a.streamMu.Lock()
	if a.streamCh != nil {
		a.streamBuf = append(a.streamBuf, r)
		select {
		case a.notify <- struct{}{}:
		default:
		}
	}
	a.streamMu.Unlock()
}

// forward pumps buffered completions to the stream channel and closes
// it once the workers have retired and the tail is delivered. Workers
// publish before exiting, so everything they produced is visible by the
// time workersDone fires.
func (a *AsyncPipeline) forward() {
	defer close(a.streamCh)
	for {
		a.streamMu.Lock()
		batch := a.streamBuf
		a.streamBuf = nil
		a.streamMu.Unlock()
		for _, r := range batch {
			a.streamCh <- r
		}
		select {
		case <-a.notify:
		case <-a.workersDone:
			a.streamMu.Lock()
			batch = a.streamBuf
			a.streamBuf = nil
			a.streamMu.Unlock()
			for _, r := range batch {
				a.streamCh <- r
			}
			return
		}
	}
}

// AsyncStream is an open-ended stream served under the async
// front-end: a Stream on its own dedicated session whose operations
// are metered into the front-end's ServingMetrics — stream gauges and
// counters, the per-operation StreamLatency histogram, and the
// continuous decisions counted as they are delivered. A stream owns
// its session, so a long-lived stream never occupies a worker and
// coexists with Submit traffic; like Stream, a single AsyncStream is
// owned by one goroutine at a time.
type AsyncStream struct {
	a  *AsyncPipeline
	st *Stream

	decOnce sync.Once
	decCh   chan Decision
	drained atomic.Bool
}

// OpenStream opens a metered stream on a fresh session of the
// underlying pipeline. The stream ends when Drain is called or ctx is
// cancelled. Closing the front-end does not interrupt an open stream
// mid-operation, but every operation after Close reports ErrClosed.
func (a *AsyncPipeline) OpenStream(ctx context.Context) (*AsyncStream, error) {
	a.submitMu.RLock()
	defer a.submitMu.RUnlock()
	if a.closed {
		return nil, ErrClosed
	}
	s := a.p.NewSession()
	if s == nil {
		return nil, ErrPipelineClosed
	}
	a.met.streamsOpened.Add(1)
	return &AsyncStream{a: a, st: s.Stream(ctx)}, nil
}

// isClosed reports whether the front-end has been closed.
func (a *AsyncPipeline) isClosed() bool {
	a.submitMu.RLock()
	defer a.submitMu.RUnlock()
	return a.closed
}

// observeOp meters one stream operation: ticks frames advanced, one
// latency sample.
func (as *AsyncStream) observeOp(start time.Time, ticks int) {
	as.a.met.streamFrames.Add(uint64(ticks))
	as.a.met.streamLatency.Observe(time.Since(start))
}

// Now returns the next tick the stream will execute.
func (as *AsyncStream) Now() int64 { return as.st.Now() }

// Decide returns the decoder's current decision (see Stream.Decide).
func (as *AsyncStream) Decide() int { return as.st.Decide() }

// Inject emits a raw spike on a physical input line at the current
// tick. Like Stream.Inject it is the per-line hot path, so it is not
// individually metered; the tick that delivers it is.
func (as *AsyncStream) Inject(line int32) error {
	if as.a.isClosed() {
		return ErrClosed
	}
	return as.st.Inject(line)
}

// Tick advances one tick without new input.
func (as *AsyncStream) Tick() ([]Label, error) {
	if as.a.isClosed() {
		return nil, ErrClosed
	}
	defer as.observeOp(time.Now(), 1)
	return as.st.Tick()
}

// Push encodes one value frame and advances one tick.
func (as *AsyncStream) Push(values []float64) ([]Label, error) {
	if as.a.isClosed() {
		return nil, ErrClosed
	}
	defer as.observeOp(time.Now(), 1)
	return as.st.Push(values)
}

// Present restarts the encoder and pushes the same frame for ticks
// consecutive ticks (see Stream.Present).
func (as *AsyncStream) Present(values []float64, ticks int) ([]Label, error) {
	if as.a.isClosed() {
		return nil, ErrClosed
	}
	defer as.observeOp(time.Now(), ticks)
	return as.st.Present(values, ticks)
}

// Decisions returns the stream's continuous-decision channel (see
// Stream.Decisions), with each delivered decision counted in
// Metrics.StreamDecisions. Subscribe before feeding.
func (as *AsyncStream) Decisions() <-chan Decision {
	as.decOnce.Do(func() {
		inner := as.st.Decisions()
		ch := make(chan Decision, 16)
		as.decCh = ch
		go func() {
			defer close(ch)
			for d := range inner {
				as.a.met.streamDecisions.Add(1)
				ch <- d
			}
		}()
	})
	return as.decCh
}

// Drain flushes lagged events, emits the final decisions, and closes
// the stream (see Stream.Drain).
func (as *AsyncStream) Drain() ([]Label, error) {
	if as.a.isClosed() {
		// Still end the stream so a subscribed Decisions channel closes.
		as.st.finish()
		return nil, ErrClosed
	}
	start := time.Now()
	labels, err := as.st.Drain()
	as.a.met.streamLatency.Observe(time.Since(start))
	if as.drained.CompareAndSwap(false, true) {
		as.a.met.streamsClosed.Add(1)
	}
	return labels, err
}
