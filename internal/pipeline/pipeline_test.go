package pipeline

import (
	"context"
	"fmt"
	"testing"

	"github.com/neurogo/neurogo/internal/codec"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/corelet"
	"github.com/neurogo/neurogo/internal/dataset"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/train"
)

// rig is a small compiled digit classifier plus test images.
type rig struct {
	cls     *corelet.Classifier
	mapping *compile.Mapping
	x       [][]float64
	y       []int
}

func buildRig(t *testing.T) *rig {
	t.Helper()
	gen := dataset.NewDigits(8, 0.02, 0, 3)
	xtr, ytr := gen.Batch(300)
	m, err := train.TrainLinear(xtr, ytr, dataset.NumClasses, train.Options{Epochs: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	net := model.New()
	cls := corelet.BuildClassifier(net, m.Ternarize(1.3), "d", corelet.ClassifierParams{Threshold: 4, Decay: 1})
	mp, err := compile.Compile(net, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x, y := gen.Batch(24)
	return &rig{cls: cls, mapping: mp, x: x, y: y}
}

func (rg *rig) pipeline(t *testing.T, opts ...Option) *Pipeline {
	t.Helper()
	base := []Option{
		WithEncoder(codec.NewBernoulli(0.5, 7)),
		WithDecoder(codec.NewCounter(dataset.NumClasses)),
		WithLineMapper(TwinLines(rg.cls.LinesFor)),
		WithClassMapper(rg.cls.ClassOf),
		WithWindow(16),
		WithDrain(10),
	}
	p, err := New(rg.mapping, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil mapping accepted")
	}
	rg := buildRig(t)
	if _, err := New(rg.mapping, WithWindow(0)); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := New(rg.mapping, WithDrain(-1)); err == nil {
		t.Error("negative drain accepted")
	}
}

func TestClassifyRequiresCodecs(t *testing.T) {
	rg := buildRig(t)
	p, err := New(rg.mapping)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Classify(context.Background(), rg.x[0]); err == nil {
		t.Error("Classify without codecs accepted")
	}
}

func TestSessionReuseBitIdentical(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t)
	s := p.NewSession()
	ctx := context.Background()
	var first []int
	for _, img := range rg.x {
		c, err := s.Classify(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, c)
	}
	// Second pass on the same (now well-used) session must reproduce
	// the first exactly: every presentation is self-contained.
	for i, img := range rg.x {
		c, err := s.Classify(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		if c != first[i] {
			t.Fatalf("image %d: reused session decided %d, first pass %d", i, c, first[i])
		}
	}
}

func TestClassifyBatchMatchesSequential(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()
	seq := rg.pipeline(t, WithWorkers(1))
	want, err := seq.ClassifyBatch(ctx, rg.x)
	if err != nil {
		t.Fatal(err)
	}
	par := rg.pipeline(t, WithWorkers(8))
	got, err := par.ClassifyBatch(ctx, rg.x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image %d: pooled %d, sequential %d", i, got[i], want[i])
		}
	}
}

func TestClassifyCancellation(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Classify(ctx, rg.x[0]); err == nil {
		t.Error("cancelled Classify succeeded")
	}
	if _, err := p.ClassifyBatch(ctx, rg.x); err == nil {
		t.Error("cancelled ClassifyBatch succeeded")
	}
}

func TestStreamLifecycle(t *testing.T) {
	// 1 input -> 1 neuron relay; raw injection through a stream.
	net := model.New()
	in := net.AddInputBank("in", 1, model.SourceProps{Type: 0, Delay: 1})
	pop := net.AddPopulation("p", 1, neuron.Default())
	net.Connect(in.Line(0), pop.ID(0))
	net.MarkOutput(pop.ID(0))
	mp, err := compile.Compile(net, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(mp, WithDrain(3))
	if err != nil {
		t.Fatal(err)
	}
	st := p.NewSession().Stream(context.Background())
	if err := st.Inject(5); err == nil {
		t.Error("unknown line accepted")
	}
	if err := st.Inject(0); err != nil {
		t.Fatal(err)
	}
	var labels []Label
	for i := 0; i < 4; i++ {
		ls, err := st.Tick()
		if err != nil {
			t.Fatal(err)
		}
		labels = append(labels, ls...)
	}
	ls, err := st.Drain()
	if err != nil {
		t.Fatal(err)
	}
	labels = append(labels, ls...)
	if len(labels) != 1 || labels[0].Tick != 1 || labels[0].Neuron != pop.ID(0) {
		t.Fatalf("labels = %+v, want one fire at tick 1", labels)
	}
	// Default class mapper: the neuron ID itself.
	if labels[0].Class != int(pop.ID(0)) {
		t.Fatalf("default class = %d, want %d", labels[0].Class, pop.ID(0))
	}
	if _, err := st.Tick(); err == nil {
		t.Error("tick after Drain accepted")
	}

	cctx, cancel := context.WithCancel(context.Background())
	st2 := p.NewSession().Stream(cctx)
	cancel()
	if _, err := st2.Tick(); err == nil {
		t.Error("tick after cancellation accepted")
	}
}

// TestUsageNotBlockedByBatch pins the batch-lock fix: a running
// ClassifyBatch must not block Usage, NewSession or Classify on the
// pipeline mutex. Before the fix this test deadlocked — the batch held
// p.mu for its whole duration while the gate encoder wedged it.
func TestUsageNotBlockedByBatch(t *testing.T) {
	rg := buildRig(t)
	gate := newGateEncoder()
	p, err := New(rg.mapping,
		WithEncoder(gate),
		WithDecoder(codec.NewCounter(10)),
		WithWindow(4),
		WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.ClassifyBatch(context.Background(), rg.x[:4])
		done <- err
	}()
	<-gate.started // the batch is mid-presentation, wedged on the gate
	p.Usage(true)  // must return, not wait for the batch
	p.NewSession() // likewise
	close(gate.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestUsageNotBlockedByClassify is the shared-session analogue: a
// presentation running through Pipeline.Classify must not pin p.mu
// either.
func TestUsageNotBlockedByClassify(t *testing.T) {
	rg := buildRig(t)
	gate := newGateEncoder()
	p, err := New(rg.mapping,
		WithEncoder(gate),
		WithDecoder(codec.NewCounter(10)),
		WithWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.Classify(context.Background(), rg.x[0])
		done <- err
	}()
	<-gate.started // the shared session is mid-presentation, wedged
	p.Usage(true)
	p.NewSession()
	close(gate.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestUsageCountsAbandonedStream pins the accounting fix: a stream
// whose context is cancelled before Drain still contributes its pushed
// activity to Pipeline.Usage through the per-operation snapshots.
func TestUsageCountsAbandonedStream(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	st := p.NewSession().Stream(ctx)
	for i := 0; i < 8; i++ {
		if _, err := st.Push(rg.x[0]); err != nil {
			t.Fatal(err)
		}
	}
	cancel() // abandon: Drain can no longer run
	if _, err := st.Drain(); err == nil {
		t.Fatal("Drain on a cancelled stream succeeded")
	}
	if u := p.Usage(true); u.Ticks != 8 {
		t.Fatalf("abandoned stream accounted %d ticks, want 8", u.Ticks)
	}
}

// TestClassifyBatchErrorReturnsNilResults pins the error contract:
// class 0 is a valid label, so a failed batch must return nil results,
// never a zero-filled slice a caller could mistake for labels.
func TestClassifyBatchErrorReturnsNilResults(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := p.ClassifyBatch(ctx, rg.x)
	if err == nil {
		t.Fatal("cancelled batch reported no error")
	}
	if results != nil {
		t.Fatalf("cancelled batch returned results %v, want nil", results)
	}
}

// TestOutOfRangeClassDropped pins the serving-path robustness fix: a
// ClassMapper emitting a class beyond the decoder's range must be
// dropped by ObserveAt, not crash the presentation.
func TestOutOfRangeClassDropped(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t, WithClassMapper(func(id model.NeuronID) int {
		return 1 << 20 // far beyond the 10-class counter
	}))
	if _, err := p.Classify(context.Background(), rg.x[0]); err != nil {
		t.Fatal(err)
	}
}

// resetCountingEncoder wraps an encoder and counts Reset calls.
type resetCountingEncoder struct {
	codec.Encoder
	resets int
}

func (r *resetCountingEncoder) Reset() { r.resets++; r.Encoder.Reset() }
func (r *resetCountingEncoder) Clone() codec.Encoder {
	return r // shared so the test can observe the session's clone
}

// TestPresentOnDeadStream pins the Present ordering fix: a closed or
// cancelled stream must be rejected before the encoder is touched, so
// stale callers cannot clobber encoder phase.
func TestPresentOnDeadStream(t *testing.T) {
	rg := buildRig(t)
	enc := &resetCountingEncoder{Encoder: codec.NewBernoulli(0.5, 7)}
	p, err := New(rg.mapping,
		WithEncoder(enc),
		WithDecoder(codec.NewCounter(10)),
		WithLineMapper(TwinLines(rg.cls.LinesFor)),
		WithClassMapper(rg.cls.ClassOf),
		WithWindow(4),
		WithDrain(2))
	if err != nil {
		t.Fatal(err)
	}
	st := p.NewSession().Stream(context.Background())
	if _, err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	before := enc.resets
	if _, err := st.Present(rg.x[0], 4); err == nil {
		t.Fatal("Present on a drained stream succeeded")
	}
	if enc.resets != before {
		t.Fatalf("Present on a dead stream reset the encoder (%d -> %d)", before, enc.resets)
	}

	cctx, cancel := context.WithCancel(context.Background())
	st2 := p.NewSession().Stream(cctx)
	cancel()
	before = enc.resets
	if _, err := st2.Present(rg.x[0], 4); err == nil {
		t.Fatal("Present on a cancelled stream succeeded")
	}
	if enc.resets != before {
		t.Fatalf("Present on a cancelled stream reset the encoder (%d -> %d)", before, enc.resets)
	}
}

func TestUsageAccumulatesAcrossResets(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t)
	s := p.NewSession()
	ctx := context.Background()
	if _, err := s.Classify(ctx, rg.x[0]); err != nil {
		t.Fatal(err)
	}
	u1 := s.Usage(true)
	if _, err := s.Classify(ctx, rg.x[1]); err != nil {
		t.Fatal(err)
	}
	u2 := s.Usage(true)
	if u2.Ticks != 2*u1.Ticks {
		t.Fatalf("ticks = %d after two presentations, want %d", u2.Ticks, 2*u1.Ticks)
	}
	if u2.SynapticEvents <= u1.SynapticEvents {
		t.Fatal("activity did not accumulate across Reset")
	}
	pu := p.Usage(true)
	if pu.Ticks != u2.Ticks || pu.Cores != rg.mapping.Stats.UsedCores {
		t.Fatalf("pipeline usage = %+v, session usage = %+v", pu, u2)
	}
}

// trafficMapping compiles a deterministic multi-core network (input ->
// a spanning two cores -> b on a third) so core-to-core routed spikes —
// and hence, on 1x1-core chips, boundary crossings — are guaranteed.
func trafficMapping(t *testing.T) *compile.Mapping {
	t.Helper()
	m := model.New()
	in := m.AddInputBank("in", 4, model.SourceProps{Type: 0, Delay: 1})
	proto := neuron.Default()
	a := m.AddPopulation("a", 300, proto)
	b := m.AddPopulation("b", 64, proto)
	for i := 0; i < 300; i++ {
		m.Connect(in.Line(i%4), a.ID(i))
		m.SourceProps(a.ID(i)).Delay = 2
		m.Connect(model.NeuronNode(a.ID(i)), b.ID(i%64))
	}
	for i := 0; i < 64; i++ {
		m.MarkOutput(b.ID(i))
	}
	mp, err := compile.Compile(m, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

func TestWithSystemValidation(t *testing.T) {
	rg := buildRig(t)
	if _, err := New(rg.mapping, WithSystem(0, 1)); err == nil {
		t.Error("zero chip dims accepted")
	}
	w := rg.mapping.Chip.Width
	if _, err := New(rg.mapping, WithSystem(2*w, 1)); err == nil {
		t.Error("non-tiling chip dims accepted")
	}
	if _, err := New(rg.mapping, WithSystem(w, rg.mapping.Chip.Height)); err != nil {
		t.Errorf("1x1 tile rejected: %v", err)
	}
}

// TestSystemBackedClassifyBitIdentical asserts the backend-abstraction
// contract at the pipeline layer: Classify and ClassifyBatch over a
// multi-chip tile return exactly the single-chip results.
func TestSystemBackedClassifyBitIdentical(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()
	want, err := rg.pipeline(t).ClassifyBatch(ctx, rg.x)
	if err != nil {
		t.Fatal(err)
	}
	sysP := rg.pipeline(t, WithSystem(1, 1))
	got, err := sysP.ClassifyBatch(ctx, rg.x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image %d: system %d, chip %d", i, got[i], want[i])
		}
	}
	s := sysP.NewSession()
	for i, img := range rg.x[:4] {
		c, err := s.Classify(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		if c != want[i] {
			t.Fatalf("image %d: system session %d, chip %d", i, c, want[i])
		}
	}
}

// TestSystemTrafficAccumulates pins the session-level boundary-traffic
// accounting: identical presentations double every counter (the
// backend's Reset-zeroed live counters are folded at each presentation
// boundary), the pipeline aggregate matches, and the inter-chip spike
// counts flow into Usage.
func TestSystemTrafficAccumulates(t *testing.T) {
	mp := trafficMapping(t)
	p, err := New(mp, WithSystem(1, 1), WithDrain(2))
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewSession()
	ctx := context.Background()
	present := func() {
		st := s.Stream(ctx)
		for _, line := range []int32{0, 1, 2, 3} {
			if err := st.Inject(line); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 6; i++ {
			if _, err := st.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := st.Drain(); err != nil {
			t.Fatal(err)
		}
	}

	present()
	t1 := s.Traffic()
	if t1.InterChip == 0 {
		t.Fatal("multi-core rig crossed no 1x1-core chip boundary")
	}
	if t1.Chips != mp.Chip.Width*mp.Chip.Height {
		t.Fatalf("Chips = %d, want %d", t1.Chips, mp.Chip.Width*mp.Chip.Height)
	}
	present()
	t2 := s.Traffic()
	if t2.IntraChip != 2*t1.IntraChip || t2.InterChip != 2*t1.InterChip {
		t.Fatalf("identical presentations: %+v then %+v (want doubled)", t1, t2)
	}
	if t2.BusiestLink != 2*t1.BusiestLink {
		t.Fatalf("busiest link %d after two presentations, want %d", t2.BusiestLink, 2*t1.BusiestLink)
	}
	if t2.InterChipFraction != t1.InterChipFraction {
		t.Fatalf("fraction changed across identical presentations: %g -> %g",
			t1.InterChipFraction, t2.InterChipFraction)
	}

	pt := p.Traffic()
	if pt.IntraChip != t2.IntraChip || pt.InterChip != t2.InterChip || pt.BusiestLink != t2.BusiestLink {
		t.Fatalf("pipeline traffic %+v, session traffic %+v", pt, t2)
	}
	u := p.Usage(false)
	if u.IntraChipSpikes != t2.IntraChip || u.InterChipSpikes != t2.InterChip {
		t.Fatalf("usage traffic (%d,%d), session traffic %+v",
			u.IntraChipSpikes, u.InterChipSpikes, t2)
	}
	if u.InterChipFraction() != t2.InterChipFraction {
		t.Fatalf("usage fraction %g, traffic fraction %g", u.InterChipFraction(), t2.InterChipFraction)
	}
}

func TestSingleChipTrafficIsZero(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t)
	if _, err := p.Classify(context.Background(), rg.x[0]); err != nil {
		t.Fatal(err)
	}
	for _, bt := range []BoundaryTraffic{p.Traffic(), p.NewSession().Traffic()} {
		if bt.Chips != 1 || bt.InterChip != 0 || bt.InterChipFraction != 0 || bt.BusiestSrc != -1 {
			t.Fatalf("single-chip traffic = %+v", bt)
		}
	}
	if u := p.Usage(false); u.IntraChipSpikes != 0 || u.InterChipSpikes != 0 {
		t.Fatalf("single-chip usage carries traffic: %+v", u)
	}
}

// TestTrafficNotBlockedByBatch is the race-safety contract: Traffic and
// Usage may be called while a system-backed batch is mid-flight on
// other goroutines (the -race CI run keeps this honest).
func TestTrafficNotBlockedByBatch(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t, WithSystem(1, 1), WithWorkers(4))
	ctx := context.Background()
	done := make(chan error, 1)
	go func() {
		_, err := p.ClassifyBatch(ctx, rg.x)
		done <- err
	}()
	for i := 0; i < 100; i++ {
		_ = p.Traffic()
		_ = p.Usage(true)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	bt := p.Traffic()
	if bt.IntraChip+bt.InterChip == 0 && rg.mapping.Stats.UsedCores > 1 {
		t.Fatal("no traffic recorded after batch")
	}
}

// chainNet builds four exactly-core-sized populations in a relay chain
// (in -> p0 -> p1 -> p2 -> p3 -> out, 1:1 wiring), so the group-level
// traffic graph is a 4-chain with equal edge weights — the instance
// where boundary-blind placement straddles a chip edge that
// boundary-aware placement can avoid at zero hop cost.
func chainNet() *model.Network {
	m := model.New()
	in := m.AddInputBank("in", 4, model.SourceProps{Type: 0, Delay: 1})
	proto := neuron.Default()
	var pops [4]*model.Population
	for pi := range pops {
		pops[pi] = m.AddPopulation(fmt.Sprintf("p%d", pi), 256, proto)
	}
	for i := 0; i < 256; i++ {
		m.Connect(in.Line(i%4), pops[0].ID(i))
		for pi := 0; pi+1 < len(pops); pi++ {
			m.Connect(model.NeuronNode(pops[pi].ID(i)), pops[pi+1].ID(i))
		}
		m.MarkOutput(pops[3].ID(i))
	}
	return m
}

// chainTraffic serves mp across a 2-chip tile (2x2 cores each), drives
// one deterministic presentation, and returns the measured boundary
// traffic plus the label stream.
func chainTraffic(t *testing.T, mp *compile.Mapping) (BoundaryTraffic, []Label) {
	t.Helper()
	p, err := New(mp, WithSystem(2, 2), WithDrain(4))
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewSession()
	st := s.Stream(context.Background())
	var labels []Label
	for tick := 0; tick < 6; tick++ {
		for line := int32(0); line < 4; line++ {
			if err := st.Inject(line); err != nil {
				t.Fatal(err)
			}
		}
		ls, err := st.Tick()
		if err != nil {
			t.Fatal(err)
		}
		labels = append(labels, ls...)
	}
	ls, err := st.Drain()
	if err != nil {
		t.Fatal(err)
	}
	labels = append(labels, ls...)
	return p.Traffic(), labels
}

// TestBoundaryAwarePlacementLowersMeasuredFraction is the end-to-end
// acceptance test for boundary-aware placement: on a 2-chip tile the
// λ>0 compile must measure a strictly lower
// Pipeline.Traffic.InterChipFraction than the λ=0 compile of the same
// network under the same workload, with bit-identical predictions, and
// the compile-time predicted fraction must agree with the measurement.
func TestBoundaryAwarePlacementLowersMeasuredFraction(t *testing.T) {
	base := compile.Options{Placer: compile.PlacerGreedy, Width: 4, Height: 2,
		ChipCoresX: 2, ChipCoresY: 2}
	blindMp, err := compile.Compile(chainNet(), base)
	if err != nil {
		t.Fatal(err)
	}
	aware := base
	aware.BoundaryWeight = 4
	awareMp, err := compile.Compile(chainNet(), aware)
	if err != nil {
		t.Fatal(err)
	}

	blind, blindLabels := chainTraffic(t, blindMp)
	opt, optLabels := chainTraffic(t, awareMp)

	if blind.InterChipFraction == 0 {
		t.Fatal("λ=0 placement crossed no boundary; instance no longer discriminates")
	}
	if opt.InterChipFraction >= blind.InterChipFraction {
		t.Fatalf("λ=4 measured fraction %g not below λ=0's %g",
			opt.InterChipFraction, blind.InterChipFraction)
	}
	// Placement never changes spike semantics: the label streams match.
	if len(blindLabels) == 0 || len(blindLabels) != len(optLabels) {
		t.Fatalf("label streams differ in length: %d vs %d", len(blindLabels), len(optLabels))
	}
	for i := range blindLabels {
		if blindLabels[i] != optLabels[i] {
			t.Fatalf("label %d differs: %+v vs %+v", i, blindLabels[i], optLabels[i])
		}
	}
	// The compiled prediction is carried into the traffic summary and
	// agrees with the measurement (equal edge weights make it exact).
	for name, pair := range map[string][2]float64{
		"blind": {blind.PredictedInterChipFraction, blind.InterChipFraction},
		"aware": {opt.PredictedInterChipFraction, opt.InterChipFraction},
	} {
		if d := pair[0] - pair[1]; d > 1e-9 || d < -1e-9 {
			t.Errorf("%s: predicted %g vs measured %g", name, pair[0], pair[1])
		}
	}
}

// TestTilingMismatchRejected pins the compile/serve tiling contract: a
// mapping compiled for one tiling must not silently serve another.
func TestTilingMismatchRejected(t *testing.T) {
	mp, err := compile.Compile(chainNet(), compile.Options{Width: 4, Height: 2,
		ChipCoresX: 2, ChipCoresY: 2, BoundaryWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(mp, WithSystem(4, 2)); err == nil {
		t.Error("serving a 2x2-compiled mapping on 4x2-core chips accepted")
	}
	if _, err := New(mp, WithSystem(2, 2)); err != nil {
		t.Errorf("matching tile rejected: %v", err)
	}
	// Untiled mappings keep serving any tile.
	plain, err := compile.Compile(chainNet(), compile.Options{Width: 4, Height: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(plain, WithSystem(4, 2)); err != nil {
		t.Errorf("untiled mapping rejected on 1x1 tile: %v", err)
	}
}

// TestWithoutPlanBitIdentical pins the serving-layer A/B escape hatch:
// predictions over the scalar core path must be bit-identical to the
// plan-backed default, and the pipeline must report plan coverage via
// the mapping stats.
func TestWithoutPlanBitIdentical(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()
	plan, err := rg.pipeline(t).ClassifyBatch(ctx, rg.x)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := rg.pipeline(t, WithoutPlan()).ClassifyBatch(ctx, rg.x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan {
		if plan[i] != scalar[i] {
			t.Fatalf("image %d: plan path decided %d, scalar path %d", i, plan[i], scalar[i])
		}
	}
	st := rg.mapping.Stats
	if st.MappedNeurons <= 0 || st.DeterministicNeurons <= 0 {
		t.Fatalf("mapping missing fast-path coverage stats: %+v", st)
	}
	if st.DeterministicFraction <= 0 || st.DeterministicFraction > 1 {
		t.Fatalf("DeterministicFraction = %v out of range", st.DeterministicFraction)
	}
}
