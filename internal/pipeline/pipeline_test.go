package pipeline

import (
	"context"
	"testing"

	"github.com/neurogo/neurogo/internal/codec"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/corelet"
	"github.com/neurogo/neurogo/internal/dataset"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/train"
)

// rig is a small compiled digit classifier plus test images.
type rig struct {
	cls     *corelet.Classifier
	mapping *compile.Mapping
	x       [][]float64
	y       []int
}

func buildRig(t *testing.T) *rig {
	t.Helper()
	gen := dataset.NewDigits(8, 0.02, 0, 3)
	xtr, ytr := gen.Batch(300)
	m, err := train.TrainLinear(xtr, ytr, dataset.NumClasses, train.Options{Epochs: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	net := model.New()
	cls := corelet.BuildClassifier(net, m.Ternarize(1.3), "d", corelet.ClassifierParams{Threshold: 4, Decay: 1})
	mp, err := compile.Compile(net, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x, y := gen.Batch(24)
	return &rig{cls: cls, mapping: mp, x: x, y: y}
}

func (rg *rig) pipeline(t *testing.T, opts ...Option) *Pipeline {
	t.Helper()
	base := []Option{
		WithEncoder(codec.NewBernoulli(0.5, 7)),
		WithDecoder(codec.NewCounter(dataset.NumClasses)),
		WithLineMapper(TwinLines(rg.cls.LinesFor)),
		WithClassMapper(rg.cls.ClassOf),
		WithWindow(16),
		WithDrain(10),
	}
	p, err := New(rg.mapping, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil mapping accepted")
	}
	rg := buildRig(t)
	if _, err := New(rg.mapping, WithWindow(0)); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := New(rg.mapping, WithDrain(-1)); err == nil {
		t.Error("negative drain accepted")
	}
}

func TestClassifyRequiresCodecs(t *testing.T) {
	rg := buildRig(t)
	p, err := New(rg.mapping)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Classify(context.Background(), rg.x[0]); err == nil {
		t.Error("Classify without codecs accepted")
	}
}

func TestSessionReuseBitIdentical(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t)
	s := p.NewSession()
	ctx := context.Background()
	var first []int
	for _, img := range rg.x {
		c, err := s.Classify(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, c)
	}
	// Second pass on the same (now well-used) session must reproduce
	// the first exactly: every presentation is self-contained.
	for i, img := range rg.x {
		c, err := s.Classify(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		if c != first[i] {
			t.Fatalf("image %d: reused session decided %d, first pass %d", i, c, first[i])
		}
	}
}

func TestClassifyBatchMatchesSequential(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()
	seq := rg.pipeline(t, WithWorkers(1))
	want, err := seq.ClassifyBatch(ctx, rg.x)
	if err != nil {
		t.Fatal(err)
	}
	par := rg.pipeline(t, WithWorkers(8))
	got, err := par.ClassifyBatch(ctx, rg.x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image %d: pooled %d, sequential %d", i, got[i], want[i])
		}
	}
}

func TestClassifyCancellation(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Classify(ctx, rg.x[0]); err == nil {
		t.Error("cancelled Classify succeeded")
	}
	if _, err := p.ClassifyBatch(ctx, rg.x); err == nil {
		t.Error("cancelled ClassifyBatch succeeded")
	}
}

func TestStreamLifecycle(t *testing.T) {
	// 1 input -> 1 neuron relay; raw injection through a stream.
	net := model.New()
	in := net.AddInputBank("in", 1, model.SourceProps{Type: 0, Delay: 1})
	pop := net.AddPopulation("p", 1, neuron.Default())
	net.Connect(in.Line(0), pop.ID(0))
	net.MarkOutput(pop.ID(0))
	mp, err := compile.Compile(net, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(mp, WithDrain(3))
	if err != nil {
		t.Fatal(err)
	}
	st := p.NewSession().Stream(context.Background())
	if err := st.Inject(5); err == nil {
		t.Error("unknown line accepted")
	}
	if err := st.Inject(0); err != nil {
		t.Fatal(err)
	}
	var labels []Label
	for i := 0; i < 4; i++ {
		ls, err := st.Tick()
		if err != nil {
			t.Fatal(err)
		}
		labels = append(labels, ls...)
	}
	ls, err := st.Drain()
	if err != nil {
		t.Fatal(err)
	}
	labels = append(labels, ls...)
	if len(labels) != 1 || labels[0].Tick != 1 || labels[0].Neuron != pop.ID(0) {
		t.Fatalf("labels = %+v, want one fire at tick 1", labels)
	}
	// Default class mapper: the neuron ID itself.
	if labels[0].Class != int(pop.ID(0)) {
		t.Fatalf("default class = %d, want %d", labels[0].Class, pop.ID(0))
	}
	if _, err := st.Tick(); err == nil {
		t.Error("tick after Drain accepted")
	}

	cctx, cancel := context.WithCancel(context.Background())
	st2 := p.NewSession().Stream(cctx)
	cancel()
	if _, err := st2.Tick(); err == nil {
		t.Error("tick after cancellation accepted")
	}
}

func TestUsageAccumulatesAcrossResets(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t)
	s := p.NewSession()
	ctx := context.Background()
	if _, err := s.Classify(ctx, rg.x[0]); err != nil {
		t.Fatal(err)
	}
	u1 := s.Usage(true)
	if _, err := s.Classify(ctx, rg.x[1]); err != nil {
		t.Fatal(err)
	}
	u2 := s.Usage(true)
	if u2.Ticks != 2*u1.Ticks {
		t.Fatalf("ticks = %d after two presentations, want %d", u2.Ticks, 2*u1.Ticks)
	}
	if u2.SynapticEvents <= u1.SynapticEvents {
		t.Fatal("activity did not accumulate across Reset")
	}
	pu := p.Usage(true)
	if pu.Ticks != u2.Ticks || pu.Cores != rg.mapping.Stats.UsedCores {
		t.Fatalf("pipeline usage = %+v, session usage = %+v", pu, u2)
	}
}
