// Package pipeline is the serving layer over compiled mappings: it
// turns a *compile.Mapping into a reusable inference Pipeline that
// encodes value vectors into spikes, drives a simulation engine, and
// decodes output events into labels — replacing the hand-wired
// encoder → InjectLine → Step → decoder loops of early examples.
//
// A Pipeline is built once per compiled mapping with functional
// options (engine, codecs, presentation window). It hands out Session
// objects; each session owns an independent chip instance over the
// shared immutable mapping, so any number of sessions can run
// concurrently. Sessions are reusable: Reset returns the chip to its
// power-on state without re-allocating it, and every Classify call is
// one self-contained presentation (reset, encode for Window ticks,
// drain, decide). Because a presentation depends only on its input and
// the codec seeds, ClassifyBatch fanned across a session pool is
// bit-identical to classifying the same inputs sequentially on one
// session.
//
// For open-ended spatio-temporal workloads a Session also opens a
// Stream: an incremental mode that accepts per-tick value frames or
// raw line injections and yields decoded labels as they emerge, with
// context cancellation.
//
// Sessions are backend-agnostic (see sim.Backend): by default each
// owns a single chip instance, while WithSystem gives each its own
// multi-chip system tile over the same shared mapping, with chip-to-
// chip boundary traffic accounted per session and aggregated race-free
// by Pipeline.Traffic and Pipeline.Usage. Predictions are bit-identical
// across backends — tiling changes accounting, not routing semantics —
// so Classify, ClassifyBatch, Stream and Async all run unchanged over
// either.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/codec"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/energy"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/remote"
	"github.com/neurogo/neurogo/internal/sim"
	"github.com/neurogo/neurogo/internal/system"
)

// LineMapper maps an encoder emission index (one per value-vector
// entry) to the physical input lines to inject. The default maps index
// i to line i; classifier corelets split each pixel into a
// (positive, negative) twin pair — see TwinLines.
type LineMapper func(index int) []int32

// ClassMapper maps an output neuron back to a class index; return -1
// to drop the event from decoding. The default uses the neuron ID
// itself as the class.
type ClassMapper func(id model.NeuronID) int

// TwinLines adapts a corelet-style LinesFor function (pixel ->
// positive, negative line pair) into a LineMapper.
func TwinLines(linesFor func(int) (int32, int32)) LineMapper {
	return func(i int) []int32 {
		pos, neg := linesFor(i)
		return []int32{pos, neg}
	}
}

// Option configures a Pipeline.
type Option func(*config)

type config struct {
	engine        sim.Engine
	engineWorkers int
	workers       int
	encoder       codec.Encoder
	decoder       codec.Decoder
	window        int
	drain         int
	exchange      int
	lines         LineMapper
	classes       ClassMapper
	system        *system.Config // nil = single-chip backend
	remoteAddrs   []string       // non-empty = distributed backend
	remoteTimeout time.Duration
	noPlan        bool
}

// WithEngine selects the core evaluation engine (default EngineEvent).
func WithEngine(e sim.Engine) Option { return func(c *config) { c.engine = e } }

// WithEngineWorkers sets the goroutines each session's EngineParallel
// runner uses (default 1; clamped by sim.NewRunner). Distinct from
// WithWorkers, which sizes the session pool.
func WithEngineWorkers(n int) Option { return func(c *config) { c.engineWorkers = n } }

// WithWorkers sets the session-pool size ClassifyBatch fans inputs
// across (default runtime.NumCPU()).
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithEncoder sets the prototype encoder; every session runs an
// independent Clone of it, restarted from the same seed, so pooled and
// sequential classification see identical spike trains.
func WithEncoder(e codec.Encoder) Option { return func(c *config) { c.encoder = e } }

// WithDecoder sets the prototype decoder; sessions clone it.
func WithDecoder(d codec.Decoder) Option { return func(c *config) { c.decoder = d } }

// WithWindow sets the presentation length in ticks (default 16).
func WithWindow(n int) Option { return func(c *config) { c.window = n } }

// WithDrain sets how many extra ticks run after the window to flush
// lagged events and let potentials decay (default 2, the splitter-lag
// minimum).
func WithDrain(n int) Option { return func(c *config) { c.drain = n } }

// WithExchangeWindow sets the multi-tick exchange window sessions
// drive their backends in: Classify pre-injects n encoded frames and
// steps n ticks per exchange, which on a sharded backend is one
// boundary exchange — and, distributed, one RPC round-trip per shard —
// instead of n. Output bits never change: windows are clamped to the
// mapping's exact bound (sim.MaxExchangeWindow — the minimum boundary-
// crossing delay and the injection horizon), and a windowed run is
// tick-for-tick identical to the lockstep one. n == 1 (the default) is
// today's per-tick driving; n <= 0 selects the widest exact window.
// Single-chip and in-process tiled backends accept any window (they
// have no exchange to amortize; the clamp still applies).
func WithExchangeWindow(n int) Option { return func(c *config) { c.exchange = n } }

// WithLineMapper sets the emission-index -> input-line mapping.
func WithLineMapper(f LineMapper) Option { return func(c *config) { c.lines = f } }

// WithClassMapper sets the output-neuron -> class mapping.
func WithClassMapper(f ClassMapper) Option { return func(c *config) { c.classes = f } }

// WithSystem runs every session over a multi-chip system backend: the
// compiled core grid partitioned onto a tile of physical chips of
// chipCoresX x chipCoresY cores each, with chip-to-chip boundary
// traffic accounted per session (see Pipeline.Traffic and the
// InterChipSpikes fields of Usage). Each session owns an independent
// system instance over the shared mapping, exactly as single-chip
// sessions own independent chips. Predictions are bit-identical to the
// single-chip backend — tiling only changes accounting, not routing
// semantics. New errors if the mapping's core grid does not tile
// exactly into chips of these dimensions.
func WithSystem(chipCoresX, chipCoresY int) Option {
	return func(c *config) {
		c.system = &system.Config{ChipCoresX: chipCoresX, ChipCoresY: chipCoresY}
	}
}

// WithRemoteSystem serves the model over a distributed system: the
// tile's physical chips partitioned across the shard processes at
// addrs (addrs[i] must host shard i of len(addrs) — see cmd/nshard),
// driven in exchange windows of one RPC round-trip each (one per tick
// by default; WithExchangeWindow amortizes the round-trip over the
// mapping's legal multi-tick window — the distributed throughput
// lever). The mapping
// must be tiled-compiled (compile.Options.ChipCoresX/Y), because the
// serving tile geometry is taken from its Stats and verified against
// every shard in the connection handshake.
//
// A remote pipeline is single-lane: the shard processes hold exactly
// one model state, so there is exactly one session, shared by
// Classify, ClassifyBatch and Async (whose worker counts clamp to 1),
// with presentations serialized. Predictions are bit-identical to the
// in-process backends. Shard failures surface as errors matching
// system.ErrShardDown from Classify and stream operations — bounded
// by the Classify context's deadline and WithRemoteTimeout, never a
// hang.
func WithRemoteSystem(addrs ...string) Option {
	return func(c *config) { c.remoteAddrs = append([]string(nil), addrs...) }
}

// WithRemoteTimeout bounds each shard RPC round-trip of a
// WithRemoteSystem pipeline (default remote.DefaultTimeout).
func WithRemoteTimeout(d time.Duration) Option {
	return func(c *config) { c.remoteTimeout = d }
}

// WithoutPlan pins every session's cores to the legacy scalar
// integration path, disabling the precompiled per-core plans (the
// cmd/nsim -noplan escape hatch). Predictions are bit-identical either
// way — the plan only changes throughput — so this exists purely for
// A/B debugging and performance comparison.
func WithoutPlan() Option { return func(c *config) { c.noPlan = true } }

// ErrPipelineClosed is the sentinel error every serving entry point
// returns after Pipeline.Close.
var ErrPipelineClosed = errors.New("pipeline: pipeline closed")

// Pipeline serves inference over one compiled mapping. The mapping is
// shared read-only across all sessions; see compile.Mapping.
type Pipeline struct {
	mapping *compile.Mapping
	cfg     config

	mu       sync.Mutex
	shared   *Session   // lazy session backing Pipeline.Classify
	pool     []*Session // lazy pool backing ClassifyBatch
	sessions []*Session // every session ever created, for Usage
	asyncs   []*AsyncPipeline

	// batchMu serializes ClassifyBatch executions and sharedMu the
	// shared-session Classify calls. Both are separate from p.mu so a
	// running presentation never blocks Usage or NewSession.
	batchMu  sync.Mutex
	sharedMu sync.Mutex

	// closed flips once in Close. The load-bearing checks sit behind
	// batchMu/sharedMu: work that slipped past the flag before Close
	// drains to completion (Close waits on both locks), work arriving
	// after is rejected with ErrPipelineClosed.
	// remoteSess/remoteSys are set for WithRemoteSystem pipelines: the
	// single session over the distributed backend (every lane request
	// returns it) and the backend itself, closed with the pipeline. The
	// remoteExcl mutex serializes presentations on the shared lane.
	remoteSess *Session
	remoteSys  *system.Sharded
	remoteExcl sync.Mutex

	closed    atomic.Bool
	closeOnce sync.Once
	closeDone chan struct{}
	finalized bool // under mu: final accounting captured, sessions released

	finalUsageHW, finalUsageSW energy.Usage
	finalTraffic               BoundaryTraffic
}

// New builds a pipeline over a compiled mapping.
func New(m *compile.Mapping, opts ...Option) (*Pipeline, error) {
	if m == nil {
		return nil, errors.New("pipeline: nil mapping")
	}
	cfg := config{
		engine:        sim.EngineEvent,
		engineWorkers: 1,
		workers:       runtime.NumCPU(),
		window:        16,
		drain:         2,
		exchange:      1,
		lines:         func(i int) []int32 { return []int32{int32(i)} },
		classes:       func(id model.NeuronID) int { return int(id) },
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.window < 1 {
		return nil, fmt.Errorf("pipeline: window %d must be positive", cfg.window)
	}
	if cfg.drain < 0 {
		return nil, fmt.Errorf("pipeline: drain %d must be non-negative", cfg.drain)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if len(cfg.remoteAddrs) > 0 {
		if cfg.system != nil {
			return nil, errors.New("pipeline: WithRemoteSystem and WithSystem are mutually exclusive")
		}
		st := m.Stats
		if st.ChipCoresX <= 0 || st.ChipCoresY <= 0 {
			return nil, errors.New("pipeline: WithRemoteSystem needs a tiled-compiled mapping (compile.Options.ChipCoresX/Y); the serving tile geometry comes from its Stats")
		}
		cfg.system = &system.Config{ChipCoresX: st.ChipCoresX, ChipCoresY: st.ChipCoresY}
		// One shard-process set holds one model state: the pipeline is
		// single-lane regardless of the requested pool size.
		cfg.workers = 1
	}
	if cfg.system != nil {
		if err := cfg.system.Validate(m.Chip); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		// A boundary-aware mapping is optimised for one specific tiling;
		// serving it across a different one silently voids the placement
		// (and its predicted fraction), so mismatches are errors. Untiled
		// mappings (ChipCoresX == 0) serve any tile, as before.
		if st := m.Stats; st.ChipCoresX > 0 &&
			(st.ChipCoresX != cfg.system.ChipCoresX || st.ChipCoresY != cfg.system.ChipCoresY) {
			return nil, fmt.Errorf(
				"pipeline: mapping compiled for %dx%d-core chips cannot serve a %dx%d-core tile; recompile with the serving tiling",
				st.ChipCoresX, st.ChipCoresY, cfg.system.ChipCoresX, cfg.system.ChipCoresY)
		}
	}
	p := &Pipeline{mapping: m, cfg: cfg, closeDone: make(chan struct{})}
	if len(cfg.remoteAddrs) > 0 {
		// Eager dial: connection and handshake failures (bad address,
		// mapping-hash mismatch, wrong partition) surface here, not on
		// the first Classify.
		sys, err := remote.DialSharded(m, *cfg.system, cfg.remoteAddrs, remote.ClientOptions{Timeout: cfg.remoteTimeout})
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		p.remoteSys = sys
		p.mu.Lock()
		p.remoteSess = p.newSessionLocked()
		p.mu.Unlock()
	}
	return p, nil
}

// Mapping returns the shared compiled mapping.
func (p *Pipeline) Mapping() *compile.Mapping { return p.mapping }

// newSessionLocked builds and registers a session; p.mu must be held.
// On a remote pipeline every call after the first returns the one
// distributed session — the shard processes hold exactly one model
// state, so there is exactly one lane to hand out.
func (p *Pipeline) newSessionLocked() *Session {
	if p.remoteSess != nil {
		return p.remoteSess
	}
	s := &Session{p: p}
	ropt := sim.RunnerOptions{NoPlan: p.cfg.noPlan}
	if p.remoteSys != nil {
		s.runner = sim.NewTiledRunner(p.mapping, p.remoteSys, p.cfg.engine, p.cfg.engineWorkers)
		s.sys = p.remoteSys
		s.excl = &p.remoteExcl
	} else if p.cfg.system != nil {
		r, err := sim.NewSystemRunnerWith(p.mapping, *p.cfg.system, p.cfg.engine, p.cfg.engineWorkers, ropt)
		if err != nil {
			panic(err) // New validated the tiling; unreachable
		}
		s.runner = r
		s.sys = r.System()
	} else {
		s.runner = sim.NewRunnerWith(p.mapping, p.cfg.engine, p.cfg.engineWorkers, ropt)
	}
	s.runner.SetExchangeWindow(p.cfg.exchange)
	if p.cfg.encoder != nil {
		s.enc = p.cfg.encoder.Clone()
	}
	if p.cfg.decoder != nil {
		s.dec = p.cfg.decoder.Clone()
	}
	p.sessions = append(p.sessions, s)
	return s
}

// NewSession creates an independent session: its own chip instance and
// codec clones over the shared mapping. Sessions are not themselves
// safe for concurrent use; create one per goroutine. Returns nil after
// Close — the pool is released and no new lanes are handed out.
func (p *Pipeline) NewSession() *Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.finalized || p.closed.Load() {
		return nil
	}
	return p.newSessionLocked()
}

// SessionCount reports how many live sessions the pipeline has created
// (shared, batch pool and async workers alike); zero after Close. It is
// the capacity figure registry-style front-ends budget against.
func (p *Pipeline) SessionCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.sessions)
}

// Closed reports whether Close has been called.
func (p *Pipeline) Closed() bool { return p.closed.Load() }

// Classify runs one presentation of values on the pipeline's shared
// session. Calls are serialized against each other, but a running
// presentation does not block Usage, NewSession or batches; for
// concurrency use ClassifyBatch, Async or per-goroutine sessions.
// After Close it returns ErrPipelineClosed.
func (p *Pipeline) Classify(ctx context.Context, values []float64) (int, error) {
	if p.closed.Load() {
		return -1, ErrPipelineClosed
	}
	p.mu.Lock()
	if p.finalized {
		p.mu.Unlock()
		return -1, ErrPipelineClosed
	}
	if p.shared == nil {
		p.shared = p.newSessionLocked()
	}
	s := p.shared
	p.mu.Unlock()
	p.sharedMu.Lock()
	defer p.sharedMu.Unlock()
	// Re-check behind the serving lock: Close drains under sharedMu, so
	// a call that acquires it after Close returned must not touch the
	// released session.
	if p.closed.Load() {
		return -1, ErrPipelineClosed
	}
	return s.Classify(ctx, values)
}

// ClassifyBatch classifies every input, fanning them across the
// session pool (WithWorkers). Each input is one independent
// presentation, so the results are bit-identical to classifying the
// same inputs sequentially on a single session. The first error (or
// context cancellation) stops the batch; on any error the returned
// results are nil — class 0 is a valid label, so partial results are
// never handed back. Calls are serialized against each other, but a
// running batch does not block Usage, NewSession or Classify.
func (p *Pipeline) ClassifyBatch(ctx context.Context, inputs [][]float64) ([]int, error) {
	if len(inputs) == 0 {
		return nil, nil
	}
	if p.closed.Load() {
		return nil, ErrPipelineClosed
	}
	p.batchMu.Lock()
	defer p.batchMu.Unlock()
	// Re-check behind the serving lock (see Classify): a batch that was
	// queued behind Close must not rebuild the released pool.
	if p.closed.Load() {
		return nil, ErrPipelineClosed
	}
	p.mu.Lock()
	for len(p.pool) < p.cfg.workers {
		p.pool = append(p.pool, p.newSessionLocked())
	}
	pool := p.pool
	p.mu.Unlock()

	n := len(pool)
	if n > len(inputs) {
		n = len(inputs)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]int, len(inputs))
	var next int64
	var firstErr error
	var errMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(inputs) || ctx.Err() != nil {
					return
				}
				class, err := s.Classify(ctx, inputs[i])
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					cancel()
					return
				}
				results[i] = class
			}
		}(pool[w])
	}
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// Usage aggregates activity across every session the pipeline created,
// priced as one chip running the summed tick count — i.e. the energy a
// single time-multiplexed chip would spend serving the same stream, so
// per-classification figures are independent of the pool size.
//
// Sessions may be mid-presentation on other goroutines when Usage is
// called, so it reads each session's last accounting snapshot (updated
// at every Reset, completed Classify, and stream operation) rather
// than its live counters: the figures are exact up to the last
// completed operation and never block on running work.
func (p *Pipeline) Usage(hardware bool) energy.Usage {
	p.mu.Lock()
	if p.finalized {
		defer p.mu.Unlock()
		if hardware {
			return p.finalUsageHW
		}
		return p.finalUsageSW
	}
	sessions := append([]*Session(nil), p.sessions...)
	p.mu.Unlock()
	return p.usageOf(sessions, hardware)
}

// usageOf aggregates the accounting snapshots of sessions (the body of
// Usage, shared with Close's finalization; takes no pipeline locks).
func (p *Pipeline) usageOf(sessions []*Session, hardware bool) energy.Usage {
	var total energy.Usage
	for _, s := range sessions {
		u := s.snapshotUsage(hardware)
		total.SynapticEvents += u.SynapticEvents
		total.AxonEvents += u.AxonEvents
		total.NeuronUpdates += u.NeuronUpdates
		total.Spikes += u.Spikes
		total.Hops += u.Hops
		total.IntraChipSpikes += u.IntraChipSpikes
		total.InterChipSpikes += u.InterChipSpikes
		total.Ticks += u.Ticks
	}
	total.Cores = p.mapping.Stats.UsedCores
	return total
}

// BoundaryTraffic summarises multi-chip boundary traffic: how the
// routed spikes of a tiled deployment split between on-chip mesh hops
// and scarce chip-to-chip links. All counters are zero (and Chips is 1)
// for single-chip pipelines.
type BoundaryTraffic struct {
	// Chips is the number of physical chips in the tile; ChipsX and
	// ChipsY are its dimensions.
	Chips, ChipsX, ChipsY int
	// IntraChip counts routed spikes that stayed on one physical chip.
	IntraChip uint64
	// InterChip counts routed spikes that crossed a chip-to-chip link.
	InterChip uint64
	// InterChipFraction is InterChip over all routed spikes (0 when
	// nothing has been routed).
	InterChipFraction float64
	// BusiestLink is the highest single (src chip, dst chip) crossing
	// count; BusiestSrc/BusiestDst identify that link (-1 when no spike
	// has crossed any link).
	BusiestLink            uint64
	BusiestSrc, BusiestDst int
	// PredictedInterChipFraction is the compile-time prediction of
	// InterChipFraction recorded by a boundary-aware mapping (see
	// compile.Stats); zero when the mapping was compiled untiled.
	// Comparing it against the measured fraction is how placement
	// quality is judged per deployment.
	PredictedInterChipFraction float64
}

func singleChipTraffic() BoundaryTraffic {
	return BoundaryTraffic{Chips: 1, ChipsX: 1, ChipsY: 1, BusiestSrc: -1, BusiestDst: -1}
}

// summarizeTraffic folds totals and a link matrix into the summary.
func summarizeTraffic(chipsX, chipsY int, intra, inter uint64, link [][]uint64) BoundaryTraffic {
	bt := BoundaryTraffic{
		Chips: chipsX * chipsY, ChipsX: chipsX, ChipsY: chipsY,
		IntraChip: intra, InterChip: inter,
		BusiestSrc: -1, BusiestDst: -1,
	}
	if total := intra + inter; total > 0 {
		bt.InterChipFraction = float64(inter) / float64(total)
	}
	for i, row := range link {
		for j, v := range row {
			if v > bt.BusiestLink {
				bt.BusiestLink, bt.BusiestSrc, bt.BusiestDst = v, i, j
			}
		}
	}
	return bt
}

// Traffic aggregates boundary traffic across every session the
// pipeline created — the multi-chip observability counterpart of
// Usage. Like Usage it reads each session's accounting snapshot rather
// than live counters, so it is race-safe against sessions
// mid-presentation on other goroutines. The intra/inter totals are
// exact up to each session's last completed operation; the busiest
// link is computed over the sessions' summed link matrices (every
// session tiles the same grid the same way), which refresh at
// presentation boundaries — per-tick stream operations skip the
// O(chips^2) matrix snapshot. Single-chip pipelines report the zero
// summary with Chips == 1.
func (p *Pipeline) Traffic() BoundaryTraffic {
	if p.cfg.system == nil {
		// A tiled-compiled mapping served single-chip still reports its
		// compiled prediction (the field is zero only for untiled
		// compiles, per the BoundaryTraffic doc).
		bt := singleChipTraffic()
		bt.PredictedInterChipFraction = p.mapping.Stats.PredictedInterChipFraction
		return bt
	}
	p.mu.Lock()
	if p.finalized {
		defer p.mu.Unlock()
		return p.finalTraffic
	}
	sessions := append([]*Session(nil), p.sessions...)
	p.mu.Unlock()
	return p.trafficOf(sessions)
}

// trafficOf aggregates the traffic snapshots of sessions (the body of
// Traffic, shared with Close's finalization; takes no pipeline locks).
// Only called on system-backed pipelines.
func (p *Pipeline) trafficOf(sessions []*Session) BoundaryTraffic {
	chipsX := p.mapping.Chip.Width / p.cfg.system.ChipCoresX
	chipsY := p.mapping.Chip.Height / p.cfg.system.ChipCoresY
	n := chipsX * chipsY
	sum := make([][]uint64, n)
	for i := range sum {
		sum[i] = make([]uint64, n)
	}
	var intra, inter uint64
	for _, s := range sessions {
		bt, link := s.snapshotTraffic()
		intra += bt.IntraChip
		inter += bt.InterChip
		for i, row := range link {
			for j, v := range row {
				sum[i][j] += v
			}
		}
	}
	out := summarizeTraffic(chipsX, chipsY, intra, inter, sum)
	out.PredictedInterChipFraction = p.mapping.Stats.PredictedInterChipFraction
	return out
}

// Close retires the pipeline: it stops accepting new work (Classify,
// ClassifyBatch, NewSession and Async submissions return
// ErrPipelineClosed), drains everything already in flight — running
// batches and shared-session presentations finish, and every
// AsyncPipeline built from this pipeline is Closed, which drains its
// queued and in-flight submissions — then captures the final
// Usage/Traffic aggregates and releases every session, so the chip
// instances (the memory a warm model pool holds) can be collected.
// Usage and Traffic keep reporting the final figures after Close.
//
// Close is idempotent and safe to call concurrently with serving.
// Sessions handed out by NewSession keep working mechanically (they own
// their runners), but their activity after Close is not part of the
// final accounting; callers who need it priced should finish session
// work first.
func (p *Pipeline) Close() error {
	p.closeOnce.Do(func() {
		p.closed.Store(true)
		// Async front-ends first: their workers serve caller-owned
		// sessions outside batchMu/sharedMu, so each is drained through
		// its own Close (idempotent; a front-end the caller already
		// closed is a no-op).
		p.mu.Lock()
		asyncs := p.asyncs
		p.asyncs = nil
		p.mu.Unlock()
		for _, a := range asyncs {
			_ = a.Close()
		}
		// Drain the serving paths: a presentation that slipped past the
		// closed flag holds one of these locks until it completes.
		p.batchMu.Lock()
		defer p.batchMu.Unlock()
		p.sharedMu.Lock()
		defer p.sharedMu.Unlock()
		p.mu.Lock()
		defer p.mu.Unlock()
		p.finalUsageHW = p.usageOf(p.sessions, true)
		p.finalUsageSW = p.usageOf(p.sessions, false)
		if p.cfg.system != nil {
			p.finalTraffic = p.trafficOf(p.sessions)
		}
		p.finalized = true
		p.shared = nil
		p.pool = nil
		p.sessions = nil
		p.remoteSess = nil
		if p.remoteSys != nil {
			_ = p.remoteSys.Close() // sever the shard connections
		}
		close(p.closeDone)
	})
	// Late and concurrent callers return only once the first Close has
	// fully drained and finalized.
	<-p.closeDone
	return nil
}

// Session is one independent inference lane: a private backend (chip
// or multi-chip system) plus codec clones over the pipeline's shared
// mapping. Not safe for concurrent use; a pipeline hands out as many
// sessions as needed.
type Session struct {
	p      *Pipeline
	runner *sim.Runner
	sys    sim.TiledBackend // non-nil when the pipeline runs WithSystem/WithRemoteSystem
	excl   *sync.Mutex      // non-nil on the shared remote lane: serializes presentations
	enc    codec.Encoder
	dec    codec.Decoder

	// snapMu guards the activity snapshot that Pipeline.Usage and
	// Pipeline.Traffic read; the live counters belong to the owning
	// goroutine alone (all cumulative traffic state lives on the
	// runner, which folds it across Resets). Traffic totals refresh at
	// every store (O(1)); the link matrix and busiest-link figures
	// refresh only at full stores (completed Classify, stream Drain) —
	// per-tick stream operations skip the O(chips^2) matrix work.
	// snapLink is freshly allocated at every full store and never
	// written afterwards, so readers may hold it past the lock.
	snapMu      sync.Mutex
	snapCtr     chip.Counters
	snapTicks   uint64
	snapTraffic BoundaryTraffic
	snapLink    [][]uint64
}

// Runner exposes the session's runner (for probes and counters).
// Prefer Session.Reset over resetting it directly — the runner folds
// its own cumulative records, but only Session.Reset also restarts the
// codecs and refreshes the accounting snapshot.
func (s *Session) Runner() *sim.Runner { return s.runner }

// Now returns the session's next tick.
func (s *Session) Now() int64 { return s.runner.Now() }

// Ticks returns the cumulative ticks executed across all resets, the
// wall-time basis for energy accounting.
func (s *Session) Ticks() uint64 { return s.runner.LifetimeTicks() }

// Reset returns the session to a pristine presentation boundary: chip
// state to power-on, codecs restarted. Activity counters and the
// cumulative tick count are preserved. A reset session behaves
// bit-identically to a brand-new one.
func (s *Session) Reset() {
	s.runner.Reset()
	if s.enc != nil {
		s.enc.Reset()
	}
	if s.dec != nil {
		s.dec.Reset()
	}
	// Totals-only store: after a completed presentation the link-matrix
	// snapshot is already current (Classify and Drain store in full),
	// so recomputing it per request would be pure churn. An abandoned
	// stream's links refresh at the next full store, like any other
	// per-tick work the light store defers.
	s.storeUsage()
}

// Usage extracts the session's activity record for energy pricing,
// including cumulative boundary traffic on system-backed sessions.
// It reads the live counters, so only the goroutine running the
// session may call it mid-presentation; Pipeline.Usage aggregates the
// boundary snapshots instead.
func (s *Session) Usage(hardware bool) energy.Usage {
	u := energy.FromChip(s.runner.Counters(), s.p.mapping.Stats.UsedCores, s.Ticks(), hardware)
	u.IntraChipSpikes, u.InterChipSpikes = s.runner.BoundarySpikes()
	return u
}

// Traffic returns the session's cumulative boundary traffic across
// all presentations since the session was created. For single-chip
// pipelines it returns the zero summary with Chips == 1. Like Usage it
// reads live counters, so only the owning goroutine may call it
// mid-presentation; Pipeline.Traffic aggregates race-safe snapshots.
func (s *Session) Traffic() BoundaryTraffic {
	var bt BoundaryTraffic
	if s.sys == nil {
		bt = singleChipTraffic()
	} else {
		bt, _ = s.liveTraffic()
	}
	bt.PredictedInterChipFraction = s.p.mapping.Stats.PredictedInterChipFraction
	return bt
}

// liveTraffic computes the cumulative boundary traffic from the
// runner's Reset-spanning records, returning the summary and the
// cumulative link matrix (freshly allocated; the caller owns it).
func (s *Session) liveTraffic() (BoundaryTraffic, [][]uint64) {
	intra, inter := s.runner.BoundarySpikes()
	link := s.runner.BoundaryLinks()
	bt := summarizeTraffic(s.sys.ChipsX(), s.sys.ChipsY(), intra, inter, link)
	return bt, link
}

// storeUsage records the current activity (and, on system backends,
// the O(1) boundary-traffic totals) as the session's accounting
// snapshot. Called after every stream operation and within every full
// store, so abandoned streams stay fully accounted. The link matrix
// and busiest-link figures are carried over from the last full store —
// refreshing them costs O(chips^2), too much for the per-tick paths.
func (s *Session) storeUsage() {
	ctr := s.runner.Counters()
	ticks := s.Ticks()
	var intra, inter uint64
	if s.sys != nil {
		intra, inter = s.runner.BoundarySpikes()
	}
	s.snapMu.Lock()
	s.snapCtr = ctr
	s.snapTicks = ticks
	if s.sys != nil {
		// The snapshot consumers read only the totals (Pipeline.Traffic
		// re-derives the fraction from summed totals), so the busiest
		// link and fraction fields are left at their last full store.
		s.snapTraffic.IntraChip = intra
		s.snapTraffic.InterChip = inter
	}
	s.snapMu.Unlock()
}

// storeUsageFull additionally refreshes the link matrix and busiest
// link. Called where a presentation's traffic is complete — the end of
// each Classify and stream Drain; Reset deliberately stays totals-only
// (see the comment there).
func (s *Session) storeUsageFull() {
	if s.sys == nil {
		s.storeUsage()
		return
	}
	ctr := s.runner.Counters()
	ticks := s.Ticks()
	bt, link := s.liveTraffic()
	s.snapMu.Lock()
	s.snapCtr = ctr
	s.snapTicks = ticks
	s.snapTraffic = bt
	s.snapLink = link
	s.snapMu.Unlock()
}

// snapshotUsage prices the last stored boundary snapshot.
func (s *Session) snapshotUsage(hardware bool) energy.Usage {
	s.snapMu.Lock()
	ctr, ticks, bt := s.snapCtr, s.snapTicks, s.snapTraffic
	s.snapMu.Unlock()
	u := energy.FromChip(ctr, s.p.mapping.Stats.UsedCores, ticks, hardware)
	u.IntraChipSpikes, u.InterChipSpikes = bt.IntraChip, bt.InterChip
	return u
}

// snapshotTraffic returns the last stored traffic snapshot and its
// cumulative link matrix (nil for single-chip sessions; never mutated
// after the store, so the caller may read it lock-free).
func (s *Session) snapshotTraffic() (BoundaryTraffic, [][]uint64) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.snapTraffic, s.snapLink
}

// encodeTick encodes one value frame into line injections at the
// current tick.
func (s *Session) encodeTick(values []float64) error {
	return s.encodeTickAt(values, s.runner.Now())
}

// encodeTickAt encodes one value frame into line injections as of tick
// base — possibly a future tick within the current exchange window.
// Encoders are output-independent (the spike train depends only on the
// frame sequence), so pre-encoding a window's frames up front is exact.
func (s *Session) encodeTickAt(values []float64, base int64) error {
	var err error
	s.enc.Tick(values, func(i int) {
		for _, line := range s.p.cfg.lines(i) {
			if e := s.runner.InjectLineAt(line, base); e != nil && err == nil {
				err = e
			}
		}
	})
	return err
}

// feed pushes mapped events into the decoder — the allocation-free
// path Classify runs per tick.
func (s *Session) feed(evs []sim.Event) {
	for _, e := range evs {
		if c := s.p.cfg.classes(e.Neuron); c >= 0 {
			s.dec.ObserveAt(c, e.Tick)
		}
	}
}

// observe feeds decoded events into the decoder (if any) and returns
// them as labels — the stream path, where callers consume the events.
func (s *Session) observe(evs []sim.Event, labels []Label) []Label {
	for _, e := range evs {
		c := s.p.cfg.classes(e.Neuron)
		if c >= 0 && s.dec != nil {
			s.dec.ObserveAt(c, e.Tick)
		}
		labels = append(labels, Label{Class: c, Neuron: e.Neuron, Tick: e.Tick})
	}
	return labels
}

// Classify runs one self-contained presentation: reset, encode values
// for Window ticks, drain, decide. It depends only on values and the
// configured codec seeds, never on previous calls — the property that
// makes pooled and sequential classification bit-identical.
func (s *Session) Classify(ctx context.Context, values []float64) (int, error) {
	if s.enc == nil {
		return -1, errors.New("pipeline: Classify needs WithEncoder")
	}
	if s.dec == nil {
		return -1, errors.New("pipeline: Classify needs WithDecoder")
	}
	if s.excl != nil {
		s.excl.Lock()
		defer s.excl.Unlock()
	}
	// Bound the backend's blocking operations (remote tick round-trips)
	// by this presentation's context, then check the backend after every
	// step: Step has no error return, so a distributed backend reports
	// shard failures through the sticky Runner.Err.
	s.runner.BindContext(ctx)
	s.Reset()
	if err := s.runner.Err(); err != nil {
		return -1, err
	}
	// Drive the presentation in exchange windows: encode the window's
	// frames up front (injections stamped for their future ticks), then
	// step the whole window in one exchange. With the default 1-tick
	// window this is exactly the classic encode-step loop.
	for t, w := 0, s.runner.ExchangeWindow(); t < s.p.cfg.window; {
		if err := ctx.Err(); err != nil {
			return -1, err
		}
		n := w
		if rem := s.p.cfg.window - t; n > rem {
			n = rem
		}
		base := s.runner.Now()
		for k := 0; k < n; k++ {
			if err := s.encodeTickAt(values, base+int64(k)); err != nil {
				return -1, err
			}
		}
		s.feed(s.runner.StepN(n))
		if err := s.runner.Err(); err != nil {
			return -1, err
		}
		t += n
	}
	s.feed(s.runner.Drain(s.p.cfg.drain))
	if err := s.runner.Err(); err != nil {
		return -1, err
	}
	s.storeUsageFull()
	return s.dec.Decide(), nil
}

// Label is one decoded output event: the spiking neuron, its logical
// fire tick, and the class it maps to (-1 if unmapped).
type Label struct {
	Class  int
	Neuron model.NeuronID
	Tick   int64
}

// Decision is one continuous-decision emission of a stream: at Tick
// the windowed decoder's confidence gate passed, with Class leading by
// Margin (in spike units — see codec.StreamDecoder). Decisions are a
// pure function of the spike train and the decoder configuration, so
// a streamed workload emits bit-identical decisions on every engine
// and backend.
type Decision struct {
	Tick   int64
	Class  int
	Margin float64
}

// Stream is the incremental mode for open-ended spatio-temporal
// workloads: frames or raw line spikes go in tick by tick, decoded
// labels come out as they emerge. Chip state persists across frames
// (unlike Classify, which resets per presentation).
//
// A stream is open-ended: Present/Push/Tick feed it indefinitely
// without terminating it, and when the session's decoder is a
// codec.StreamDecoder (SlidingCounter, DecayCounter) the stream also
// decides continuously — after every advanced tick it asks the decoder
// for a decision at the completed-tick frontier (sim.Runner.
// CompleteThrough, so observation lag can never change a decision) and
// emits each gated decision on the Decisions channel.
type Stream struct {
	s      *Session
	ctx    context.Context
	closed bool

	sd      codec.StreamDecoder // non-nil: continuous decisions enabled
	decided int64               // decision frontier: ticks decided through

	// Decisions machinery, mirroring the async Results stream: the
	// owner goroutine appends under decMu, a forwarder delivers, so a
	// slow (or absent) consumer never blocks the feed path. Buffering
	// starts at the first Decisions call.
	decMu    sync.Mutex
	decBuf   []Decision
	decCh    chan Decision
	notify   chan struct{}
	done     chan struct{}
	doneOnce sync.Once
}

// Stream opens an incremental stream on a freshly reset session. The
// stream ends when ctx is cancelled or Drain is called.
func (s *Session) Stream(ctx context.Context) *Stream {
	s.runner.BindContext(ctx)
	s.Reset()
	sd, _ := s.dec.(codec.StreamDecoder)
	return &Stream{
		s: s, ctx: ctx,
		sd:      sd,
		decided: -1,
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
}

// Decisions returns the stream's continuous-decision channel: one
// Decision per (tick, gate-pass) of the windowed decoder, in tick
// order. Subscribe before feeding — decisions emitted before the first
// Decisions call are not replayed. The channel closes once the stream
// ends (Drain, or ctx cancellation); a stream that is simply abandoned
// without either keeps its forwarder parked, so always finish with
// Drain or a cancel. Without a codec.StreamDecoder the channel just
// closes at stream end.
func (st *Stream) Decisions() <-chan Decision {
	st.decMu.Lock()
	defer st.decMu.Unlock()
	if st.decCh == nil {
		st.decCh = make(chan Decision, 16)
		go st.forwardDecisions()
	}
	return st.decCh
}

// emitDecision buffers one decision for the forwarder (a no-op until
// someone subscribes) and nudges it.
func (st *Stream) emitDecision(d Decision) {
	st.decMu.Lock()
	if st.decCh != nil {
		st.decBuf = append(st.decBuf, d)
		select {
		case st.notify <- struct{}{}:
		default:
		}
	}
	st.decMu.Unlock()
}

// forwardDecisions pumps buffered decisions to the channel and closes
// it when the stream ends.
func (st *Stream) forwardDecisions() {
	defer close(st.decCh)
	flush := func() bool {
		st.decMu.Lock()
		batch := st.decBuf
		st.decBuf = nil
		st.decMu.Unlock()
		for _, d := range batch {
			select {
			case st.decCh <- d:
			case <-st.ctx.Done():
				return false
			}
		}
		return true
	}
	for {
		if !flush() {
			return
		}
		select {
		case <-st.notify:
		case <-st.ctx.Done():
			return
		case <-st.done:
			flush() // the Drain tail
			return
		}
	}
}

// pump advances the decision frontier to `through` (the completed-tick
// frontier, or the last executed tick at Drain), asking the windowed
// decoder for a decision at every newly complete tick and emitting the
// gated ones.
func (st *Stream) pump(through int64) {
	if st.sd == nil {
		return
	}
	for t := st.decided + 1; t <= through; t++ {
		if class, margin, ok := st.sd.DecideAt(t); ok {
			st.emitDecision(Decision{Tick: t, Class: class, Margin: margin})
		}
	}
	if through > st.decided {
		st.decided = through
	}
}

// finish marks the stream ended for the Decisions forwarder.
func (st *Stream) finish() {
	st.doneOnce.Do(func() { close(st.done) })
}

// Now returns the next tick the stream will execute.
func (st *Stream) Now() int64 { return st.s.runner.Now() }

// Decide returns the decoder's current decision over everything
// observed so far (-1 without a decoder).
func (st *Stream) Decide() int {
	if st.s.dec == nil {
		return -1
	}
	return st.s.dec.Decide()
}

func (st *Stream) err() error {
	if st.closed {
		return errors.New("pipeline: stream closed")
	}
	if err := st.s.runner.Err(); err != nil {
		return err
	}
	return st.ctx.Err()
}

// Inject emits a raw spike on a physical input line at the current
// tick, bypassing the encoder — the spatio-temporal escape hatch.
// Inject is the streaming hot path (one call per spiking line per
// tick), so it does not refresh the accounting snapshot; the next
// Tick/Push/Present/Drain does, and an injection can only reach the
// counters once a tick runs, so nothing priced is ever missed.
func (st *Stream) Inject(line int32) error {
	if err := st.err(); err != nil {
		return err
	}
	return st.s.runner.InjectLine(line)
}

// Tick advances one tick without new input and returns the labels that
// emerged.
func (st *Stream) Tick() ([]Label, error) {
	return st.TickN(1)
}

// TickN advances n ticks without new input, returning the labels that
// emerged. On a windowed backend (WithRemoteSystem plus
// WithExchangeWindow) the whole batch is one exchange round-trip, so a
// streaming driver that knows its injections n ticks ahead (see
// InjectAt) amortizes the per-tick RPC the same way Classify does.
// Labels and decisions are bit-identical to n calls of Tick.
func (st *Stream) TickN(n int) ([]Label, error) {
	if err := st.err(); err != nil {
		return nil, err
	}
	defer st.s.storeUsage()
	labels := st.s.observe(st.s.runner.StepN(n), nil)
	st.pump(st.s.runner.CompleteThrough())
	return labels, st.s.runner.Err()
}

// InjectAt emits a raw spike on a physical input line at tick at (the
// logical injection tick, so the spike lands after the line's input
// delay — InjectAt(line, st.Now()) is exactly Inject(line)). The tick
// must not precede the current one, and injecting more than one
// exchange window ahead risks overrunning the 16-slot ring horizon;
// the intended pattern is: inject the next ExchangeWindow ticks'
// spikes, then TickN(ExchangeWindow()).
func (st *Stream) InjectAt(line int32, at int64) error {
	if err := st.err(); err != nil {
		return err
	}
	return st.s.runner.InjectLineAt(line, at)
}

// ExchangeWindow reports the effective exchange window the stream's
// backend runs at (see WithExchangeWindow); 1 means lockstep.
func (st *Stream) ExchangeWindow() int { return st.s.runner.ExchangeWindow() }

// Push encodes one value frame at the current tick and advances one
// tick.
func (st *Stream) Push(values []float64) ([]Label, error) {
	if err := st.err(); err != nil {
		return nil, err
	}
	if st.s.enc == nil {
		return nil, errors.New("pipeline: Push needs WithEncoder")
	}
	defer st.s.storeUsage()
	if err := st.s.encodeTick(values); err != nil {
		return nil, err
	}
	labels := st.s.observe(st.s.runner.Step(), nil)
	st.pump(st.s.runner.CompleteThrough())
	return labels, st.s.runner.Err()
}

// Present restarts the encoder and pushes the same value frame for
// ticks consecutive ticks — one presentation on persistent chip state,
// the frame-by-frame idiom of always-on detection.
func (st *Stream) Present(values []float64, ticks int) ([]Label, error) {
	// Validity first, matching Push/Tick/Inject: a closed or cancelled
	// stream must not clobber encoder phase.
	if err := st.err(); err != nil {
		return nil, err
	}
	if st.s.enc == nil {
		return nil, errors.New("pipeline: Present needs WithEncoder")
	}
	defer st.s.storeUsage()
	st.s.enc.Reset()
	var labels []Label
	for t := 0; t < ticks; t++ {
		if err := st.err(); err != nil {
			return labels, err
		}
		if err := st.s.encodeTick(values); err != nil {
			return labels, err
		}
		labels = st.s.observe(st.s.runner.Step(), labels)
		st.pump(st.s.runner.CompleteThrough())
	}
	return labels, st.s.runner.Err()
}

// Drain flushes lagged events with the configured drain ticks and
// closes the stream, returning the final labels. Drain completes every
// executed tick, so the decision frontier catches up to the last tick
// before the Decisions channel closes.
func (st *Stream) Drain() ([]Label, error) {
	if err := st.err(); err != nil {
		st.finish()
		return nil, err
	}
	st.closed = true
	labels := st.s.observe(st.s.runner.Drain(st.s.p.cfg.drain), nil)
	st.pump(st.s.runner.Now() - 1)
	st.s.storeUsageFull()
	st.finish()
	return labels, st.s.runner.Err()
}
