package pipeline

import (
	"context"
	"strings"
	"testing"
)

// TestWritePrometheus drives a small front-end and checks the text
// exposition: family headers, counter/gauge samples, summary quantiles
// and the parse invariants a scraper relies on (HELP/TYPE before the
// first sample of each family, no duplicate families).
func TestWritePrometheus(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()
	ap := mustAsync(t, rg.pipeline(t, WithDecoder(slidingDecoder())), WithAsyncWorkers(2))
	for _, img := range rg.x[:4] {
		if r := <-ap.Submit(ctx, img); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if r := <-ap.SubmitPriority(ctx, PriorityHigh, rg.x[0]); r.Err != nil {
		t.Fatal(r.Err)
	}
	as, err := ap.OpenStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.Present(rg.x[0], 8); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Drain(); err != nil {
		t.Fatal(err)
	}
	ap.Close()

	var sb strings.Builder
	ap.Metrics().WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE neurogo_serving_submitted_total counter",
		"neurogo_serving_submitted_total 5",
		"# TYPE neurogo_serving_expired_total counter",
		"neurogo_serving_expired_total 0",
		"# TYPE neurogo_serving_workers gauge",
		"neurogo_serving_workers 2",
		"neurogo_serving_streams_opened_total 1",
		"neurogo_serving_stream_frames_total 8",
		"# TYPE neurogo_serving_queue_wait_seconds summary",
		`neurogo_serving_queue_wait_seconds{quantile="0.99"}`,
		"neurogo_serving_queue_wait_seconds_count 5",
		`neurogo_serving_stream_op_seconds{quantile="0.5"}`,
		"# TYPE neurogo_serving_class_queue_wait_seconds summary",
		`neurogo_serving_class_queue_wait_seconds_count{class="high"} 1`,
		`neurogo_serving_class_queue_wait_seconds_count{class="normal"} 4`,
		`neurogo_serving_class_end_to_end_seconds_count{class="low"} 0`,
		`neurogo_serving_class_end_to_end_seconds{class="high",quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// The snapshot's per-class split matches: 3 classes in priority
	// order, counts adding up to the aggregate.
	m := ap.Metrics()
	if len(m.PerPriority) != 3 {
		t.Fatalf("PerPriority has %d classes", len(m.PerPriority))
	}
	var sum uint64
	for i, name := range []string{"high", "normal", "low"} {
		pc := m.PerPriority[i]
		if pc.Class != name {
			t.Fatalf("PerPriority[%d].Class = %q, want %q", i, pc.Class, name)
		}
		if pc.QueueWait.Count != pc.EndToEnd.Count {
			t.Fatalf("class %s: queue-wait count %d != end-to-end count %d", name, pc.QueueWait.Count, pc.EndToEnd.Count)
		}
		sum += pc.EndToEnd.Count
	}
	if sum != m.EndToEnd.Count {
		t.Fatalf("per-class end-to-end counts sum to %d, aggregate %d", sum, m.EndToEnd.Count)
	}
	if m.PerPriority[0].QueueWait.Count != 1 || m.PerPriority[1].QueueWait.Count != 4 {
		t.Fatalf("class counts = %d/%d, want 1 high / 4 normal",
			m.PerPriority[0].QueueWait.Count, m.PerPriority[1].QueueWait.Count)
	}

	// Format invariants: every family appears once, HELP then TYPE, and
	// every sample line belongs to the most recent family.
	seen := map[string]bool{}
	family := ""
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			family = strings.Fields(line)[2]
			if seen[family] {
				t.Fatalf("duplicate family %q", family)
			}
			seen[family] = true
		case strings.HasPrefix(line, "# TYPE "):
			if name := strings.Fields(line)[2]; name != family {
				t.Fatalf("TYPE %q not preceded by its HELP (current family %q)", name, family)
			}
		case line == "":
			t.Fatal("blank line in exposition")
		default:
			name := line[:strings.IndexAny(line, "{ ")]
			if !strings.HasPrefix(name, family) {
				t.Fatalf("sample %q outside its family %q", line, family)
			}
		}
	}
}
