package pipeline

import (
	"context"
	"strings"
	"testing"
)

// TestWritePrometheus drives a small front-end and checks the text
// exposition: family headers, counter/gauge samples, summary quantiles
// and the parse invariants a scraper relies on (HELP/TYPE before the
// first sample of each family, no duplicate families).
func TestWritePrometheus(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()
	ap := mustAsync(t, rg.pipeline(t, WithDecoder(slidingDecoder())), WithAsyncWorkers(2))
	for _, img := range rg.x[:4] {
		if r := <-ap.Submit(ctx, img); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	as, err := ap.OpenStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.Present(rg.x[0], 8); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Drain(); err != nil {
		t.Fatal(err)
	}
	ap.Close()

	var sb strings.Builder
	ap.Metrics().WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE neurogo_serving_submitted_total counter",
		"neurogo_serving_submitted_total 4",
		"# TYPE neurogo_serving_expired_total counter",
		"neurogo_serving_expired_total 0",
		"# TYPE neurogo_serving_workers gauge",
		"neurogo_serving_workers 2",
		"neurogo_serving_streams_opened_total 1",
		"neurogo_serving_stream_frames_total 8",
		"# TYPE neurogo_serving_queue_wait_seconds summary",
		`neurogo_serving_queue_wait_seconds{quantile="0.99"}`,
		"neurogo_serving_queue_wait_seconds_count 4",
		`neurogo_serving_stream_op_seconds{quantile="0.5"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// Format invariants: every family appears once, HELP then TYPE, and
	// every sample line belongs to the most recent family.
	seen := map[string]bool{}
	family := ""
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			family = strings.Fields(line)[2]
			if seen[family] {
				t.Fatalf("duplicate family %q", family)
			}
			seen[family] = true
		case strings.HasPrefix(line, "# TYPE "):
			if name := strings.Fields(line)[2]; name != family {
				t.Fatalf("TYPE %q not preceded by its HELP (current family %q)", name, family)
			}
		case line == "":
			t.Fatal("blank line in exposition")
		default:
			name := line[:strings.IndexAny(line, "{ ")]
			if !strings.HasPrefix(name, family) {
				t.Fatalf("sample %q outside its family %q", line, family)
			}
		}
	}
}
