package pipeline

import (
	"context"
	"sync"
	"testing"

	"github.com/neurogo/neurogo/internal/codec"
)

// mustAsync builds the async front-end or fails the test.
func mustAsync(t *testing.T, p *Pipeline, opts ...AsyncOption) *AsyncPipeline {
	t.Helper()
	ap, err := p.Async(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ap
}

// TestAsyncMatchesSequential is the async equivalence criterion:
// completions collected from the Results stream and re-ordered by
// sequence number are bit-identical to classifying the same inputs
// sequentially on one session.
func TestAsyncMatchesSequential(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()

	s := rg.pipeline(t).NewSession()
	want := make([]int, len(rg.x))
	for i, img := range rg.x {
		c, err := s.Classify(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = c
	}

	// Small queue so submission exercises the backpressure path.
	ap := mustAsync(t, rg.pipeline(t), WithAsyncWorkers(4), WithQueueDepth(2))
	results := ap.Results()
	for _, img := range rg.x {
		ap.Submit(ctx, img)
	}
	ap.Close()
	got := make([]int, len(rg.x))
	seen := 0
	for r := range results {
		if r.Err != nil {
			t.Fatalf("seq %d: %v", r.Seq, r.Err)
		}
		if r.Seq >= uint64(len(got)) {
			t.Fatalf("seq %d out of range", r.Seq)
		}
		got[r.Seq] = r.Class
		seen++
	}
	if seen != len(rg.x) {
		t.Fatalf("stream delivered %d results, want %d", seen, len(rg.x))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("input %d: async %d, sequential %d", i, got[i], want[i])
		}
	}
}

// TestAsyncPerRequestChannels collects through the channels Submit
// returns instead of the shared stream.
func TestAsyncPerRequestChannels(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()
	ap := mustAsync(t, rg.pipeline(t), WithAsyncWorkers(3))
	defer ap.Close()

	chans := make([]<-chan Result, len(rg.x))
	for i, img := range rg.x {
		chans[i] = ap.Submit(ctx, img)
	}
	for i, ch := range chans {
		r := <-ch
		if r.Err != nil {
			t.Fatalf("input %d: %v", i, r.Err)
		}
		if r.Seq != uint64(i) {
			t.Fatalf("input %d stamped seq %d", i, r.Seq)
		}
	}
}

// TestAsyncCloseDrains asserts the graceful-close contract: every
// submission accepted before Close completes with a real result.
func TestAsyncCloseDrains(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()
	ap := mustAsync(t, rg.pipeline(t), WithAsyncWorkers(2), WithQueueDepth(len(rg.x)))
	chans := make([]<-chan Result, len(rg.x))
	for i, img := range rg.x {
		chans[i] = ap.Submit(ctx, img)
	}
	ap.Close() // returns only after queued + in-flight work retired
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Err != nil {
				t.Fatalf("input %d: %v", i, r.Err)
			}
		default:
			t.Fatalf("input %d: no result after Close", i)
		}
	}
	if r := <-ap.Submit(ctx, rg.x[0]); r.Err != ErrClosed {
		t.Fatalf("post-Close Submit err = %v, want ErrClosed", r.Err)
	}
}

// gateEncoder blocks every Tick until released, and flags when the
// first Tick is reached. Clone returns the shared instance so pooled
// sessions share the gate.
type gateEncoder struct {
	started chan struct{}
	release chan struct{}
	once    *sync.Once
}

func newGateEncoder() *gateEncoder {
	return &gateEncoder{
		started: make(chan struct{}),
		release: make(chan struct{}),
		once:    new(sync.Once),
	}
}

func (g *gateEncoder) Tick(values []float64, emit codec.EmitFunc) {
	g.once.Do(func() { close(g.started) })
	<-g.release
}
func (g *gateEncoder) Reset()               {}
func (g *gateEncoder) Clone() codec.Encoder { return g }

// TestAsyncBackpressureCancellation pins the queue-full path: with one
// worker wedged and the queue full, a Submit under a cancelled context
// must come back with the context error instead of blocking forever.
func TestAsyncBackpressureCancellation(t *testing.T) {
	rg := buildRig(t)
	gate := newGateEncoder()
	p, err := New(rg.mapping,
		WithEncoder(gate),
		WithDecoder(codec.NewCounter(10)),
		WithWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	ap := mustAsync(t, p, WithAsyncWorkers(1), WithQueueDepth(1))
	ctx := context.Background()

	first := ap.Submit(ctx, rg.x[0])
	<-gate.started // worker is wedged inside presentation 0
	second := ap.Submit(ctx, rg.x[1])

	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if r := <-ap.Submit(cctx, rg.x[2]); r.Err == nil {
		t.Fatal("queue-full Submit with cancelled ctx returned no error")
	} else if r.Class != -1 {
		t.Fatalf("rejected submission carries class %d, want -1", r.Class)
	}

	close(gate.release)
	ap.Close()
	for i, ch := range []<-chan Result{first, second} {
		if r := <-ch; r.Err != nil {
			t.Fatalf("accepted submission %d failed: %v", i, r.Err)
		}
	}
}

// TestAsyncUsageAccounted asserts async worker sessions feed
// Pipeline.Usage like any other session.
func TestAsyncUsageAccounted(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t)
	ap := mustAsync(t, p, WithAsyncWorkers(2))
	for _, img := range rg.x[:4] {
		ap.Submit(context.Background(), img)
	}
	ap.Close()
	if u := p.Usage(true); u.Ticks == 0 || u.SynapticEvents == 0 {
		t.Fatalf("pipeline usage missed async activity: %+v", u)
	}
}
