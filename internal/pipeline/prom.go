// Prometheus text exposition for serving metrics — hand-rolled against
// the text format (version 0.0.4) so the scrape endpoint needs no
// client library. Durations are exported in seconds per Prometheus
// convention; LatencyStats summaries expose their fixed quantiles
// (0.5/0.95/0.99 and the max as quantile="1") plus _sum/_count, with
// _sum reconstructed as mean x count (exact enough for rate math — the
// histogram keeps nanosecond sums internally but snapshots a mean).

package pipeline

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

// PromLabel renders one label pair (value escaped) for the exposition
// format — shared with sibling packages that expose their own series.
func PromLabel(name, value string) string {
	return name + `="` + promEscape(value) + `"`
}

// PromFamily writes one metric family header (HELP + TYPE).
func PromFamily(w io.Writer, name, typ, help string) { promHead(w, name, typ, help) }

// PromSample writes one sample; labels is the inner label list (no
// braces), empty for an unlabelled series.
func PromSample(w io.Writer, name, labels string, v float64) { promVal(w, name, labels, v) }

// PromSummary writes the stats as one complete summary family.
func (s LatencyStats) PromSummary(w io.Writer, name, help, labels string) {
	promSummary(w, name, help, labels, s)
}

// PromSummaryRow writes the stats' samples without the family header,
// for families with one series per label set (per-model latency).
func (s LatencyStats) PromSummaryRow(w io.Writer, name, labels string) {
	promSummaryRow(w, name, labels, s)
}

// promHead writes one metric family header.
func promHead(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// promVal writes one sample; labels is the inner label list (no
// braces), empty for an unlabelled series.
func promVal(w io.Writer, name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s%s %g\n", name, labels, v)
}

// promSummary writes one LatencyStats as a Prometheus summary family.
func promSummary(w io.Writer, name, help, labels string, s LatencyStats) {
	promHead(w, name, "summary", help)
	promSummaryRow(w, name, labels, s)
}

// promSummaryRow writes a summary's samples without the family header,
// so multi-series families (per-model latency) emit one header.
func promSummaryRow(w io.Writer, name, labels string, s LatencyStats) {
	q := func(quantile string, d time.Duration) {
		l := `quantile="` + quantile + `"`
		if labels != "" {
			l = labels + "," + l
		}
		promVal(w, name, l, d.Seconds())
	}
	q("0.5", s.P50)
	q("0.95", s.P95)
	q("0.99", s.P99)
	q("1", s.Max)
	promVal(w, name+"_sum", labels, s.Mean.Seconds()*float64(s.Count))
	promVal(w, name+"_count", labels, float64(s.Count))
}

// WritePrometheus writes the serving snapshot in Prometheus text
// exposition format under the neurogo_serving_* namespace — the
// scrape-friendly sibling of the JSON the expvar endpoint serves.
// Wire it to a handler with:
//
//	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
//		ap.Metrics().WritePrometheus(w)
//	})
func (m Metrics) WritePrometheus(w io.Writer) {
	gauge := func(name, help string, v float64) {
		promHead(w, name, "gauge", help)
		promVal(w, name, "", v)
	}
	counter := func(name, help string, v uint64) {
		promHead(w, name, "counter", help)
		promVal(w, name, "", float64(v))
	}

	// Configuration echo.
	gauge("neurogo_serving_workers", "Worker sessions in the async pool.", float64(m.Workers))
	gauge("neurogo_serving_queue_capacity", "Bound of the priority-classed submit queue.", float64(m.QueueCap))
	gauge("neurogo_serving_max_batch", "Adaptive micro-batch cap (1: batching off).", float64(m.MaxBatch))
	gauge("neurogo_serving_batch_window_seconds", "Micro-batch coalescing window.", m.BatchWindow.Seconds())
	gauge("neurogo_serving_slo_budget_seconds", "Tail-latency budget admission control defends (0: disabled).", m.SLOBudget.Seconds())

	// Gauges.
	gauge("neurogo_serving_queue_depth", "Requests admitted but not yet on a worker.", float64(m.QueueDepth))
	gauge("neurogo_serving_in_flight", "Requests currently on a worker.", float64(m.InFlight))
	gauge("neurogo_serving_service_ewma_seconds", "Smoothed per-request service time.", m.ServiceEWMA.Seconds())
	gauge("neurogo_serving_estimated_wait_seconds", "Predicted queue wait for a request admitted now.", m.EstimatedWait.Seconds())
	gauge("neurogo_serving_streams_open", "Streams opened and not yet drained.", float64(m.StreamsOpen))

	// Counters.
	counter("neurogo_serving_submitted_total", "Requests admitted into the queue.", m.Submitted)
	counter("neurogo_serving_completed_total", "Results delivered, including failures.", m.Completed)
	counter("neurogo_serving_failed_total", "Completions carrying a non-nil error.", m.Failed)
	counter("neurogo_serving_rejected_total", "Submissions refused: closed front-end or caller context done.", m.Rejected)
	counter("neurogo_serving_shed_total", "Low-priority submissions refused by admission control.", m.Shed)
	counter("neurogo_serving_expired_total", "Requests failed at dequeue because the SLO budget lapsed in queue.", m.Expired)
	counter("neurogo_serving_batches_total", "Micro-batch dispatches.", m.Batches)
	counter("neurogo_serving_batched_requests_total", "Requests carried by micro-batch dispatches.", m.BatchedRequests)
	counter("neurogo_serving_full_batches_total", "Batches dispatched because they filled.", m.FullBatches)
	counter("neurogo_serving_deadline_batches_total", "Batches dispatched at the window deadline.", m.DeadlineBatches)
	counter("neurogo_serving_drain_batches_total", "Batches dispatched short because the queue ran dry.", m.DrainBatches)
	counter("neurogo_serving_streams_opened_total", "Streams opened via OpenStream.", m.StreamsOpened)
	counter("neurogo_serving_streams_closed_total", "Streams ended by Drain.", m.StreamsClosed)
	counter("neurogo_serving_stream_frames_total", "Ticks advanced across all streams.", m.StreamFrames)
	counter("neurogo_serving_stream_decisions_total", "Continuous decisions delivered by streams.", m.StreamDecisions)

	// Latency summaries.
	promSummary(w, "neurogo_serving_queue_wait_seconds", "Queue wait: submit-accept to serve-start.", "", m.QueueWait)
	promSummary(w, "neurogo_serving_end_to_end_seconds", "End-to-end: submit-accept to result delivered.", "", m.EndToEnd)
	promSummary(w, "neurogo_serving_stream_op_seconds", "One stream operation: Tick, Push, Present or Drain.", "", m.StreamLatency)

	// Per-admission-class splits: one summary family each, one series
	// per class, so an alert can watch the high class's tail directly.
	if len(m.PerPriority) > 0 {
		promHead(w, "neurogo_serving_class_queue_wait_seconds", "summary", "Queue wait split by admission class.")
		for _, pc := range m.PerPriority {
			promSummaryRow(w, "neurogo_serving_class_queue_wait_seconds", PromLabel("class", pc.Class), pc.QueueWait)
		}
		promHead(w, "neurogo_serving_class_end_to_end_seconds", "summary", "End-to-end latency split by admission class.")
		for _, pc := range m.PerPriority {
			promSummaryRow(w, "neurogo_serving_class_end_to_end_seconds", PromLabel("class", pc.Class), pc.EndToEnd)
		}
	}
}
