package pipeline

import (
	"sync"
	"testing"
	"time"
)

// TestHistBucketBounds pins the histogram's core guarantees: every
// value lands in a bucket whose upper bound is >= the value, the
// mapping is monotone, and the relative overshoot stays within one
// sub-bucket (~1/16 of the value).
func TestHistBucketBounds(t *testing.T) {
	vals := []uint64{0, 1, 15, 16, 17, 31, 32, 100, 999, 1_000, 65_535,
		1_000_000, 123_456_789, 1e12, 1<<62 + 12345}
	prev := -1
	for _, v := range vals {
		idx := histBucket(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("value %d: bucket %d out of range", v, idx)
		}
		if idx < prev {
			t.Fatalf("value %d: bucket %d below previous %d — mapping not monotone", v, idx, prev)
		}
		prev = idx
		upper := uint64(histUpper(idx))
		if upper < v {
			t.Fatalf("value %d: bucket upper %d undershoots", v, upper)
		}
		// One linear sub-bucket per 2^histSubBits of the octave: the
		// reported value overshoots by at most v/16 + 1.
		if maxOver := v/histSubCount + 1; upper-v > maxOver {
			t.Fatalf("value %d: bucket upper %d overshoots by %d (max %d)", v, upper, upper-v, maxOver)
		}
	}
}

// TestLatencyHistogramQuantiles checks the summary statistics against a
// uniform ramp where the true quantiles are known.
func TestLatencyHistogramQuantiles(t *testing.T) {
	var h LatencyHistogram
	const n = 1000
	for i := 1; i <= n; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	st := h.Snapshot()
	if st.Count != n {
		t.Fatalf("Count = %d, want %d", st.Count, n)
	}
	if st.Max != n*time.Microsecond {
		t.Fatalf("Max = %v, want %v", st.Max, n*time.Microsecond)
	}
	check := func(name string, got, want time.Duration) {
		t.Helper()
		// Log-linear buckets guarantee ~6% relative error; allow 10%.
		if got < want || got > want+want/10 {
			t.Errorf("%s = %v, want in [%v, %v]", name, got, want, want+want/10)
		}
	}
	check("P50", st.P50, 500*time.Microsecond)
	check("P95", st.P95, 950*time.Microsecond)
	check("P99", st.P99, 990*time.Microsecond)
	check("Mean", st.Mean, 500*time.Microsecond)
}

// TestLatencyHistogramZero: the zero value is usable and snapshots to
// all-zero stats.
func TestLatencyHistogramZero(t *testing.T) {
	var h LatencyHistogram
	st := h.Snapshot()
	if st.Count != 0 || st.Mean != 0 || st.P50 != 0 || st.P95 != 0 || st.P99 != 0 || st.Max != 0 {
		t.Fatalf("zero-value snapshot not zero: %+v", st)
	}
	h.Observe(-time.Second) // negative clamps to zero, still counted
	if st := h.Snapshot(); st.Count != 1 || st.Max != 0 {
		t.Fatalf("negative observation: %+v", st)
	}
}

// TestLatencyHistogramConcurrent hammers Observe from many goroutines
// (the -race payoff) and checks no sample is lost.
func TestLatencyHistogramConcurrent(t *testing.T) {
	var h LatencyHistogram
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*per+i) * time.Nanosecond)
			}
		}(g)
	}
	wg.Wait()
	st := h.Snapshot()
	if st.Count != goroutines*per {
		t.Fatalf("Count = %d, want %d", st.Count, goroutines*per)
	}
	if want := time.Duration(goroutines*per-1) * time.Nanosecond; st.Max != want {
		t.Fatalf("Max = %v, want %v", st.Max, want)
	}
}

// TestPriorityString covers the class labels used in logs and errors.
func TestPriorityString(t *testing.T) {
	for want, c := range map[string]Priority{
		"high": PriorityHigh, "normal": PriorityNormal, "low": PriorityLow,
	} {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
	if got := Priority(9).String(); got != "priority(9)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}
