package pipeline

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/neurogo/neurogo/internal/codec"
)

// TestCloseRejectsNewWork pins the Close contract on every serving
// entry point: after Close, Classify, ClassifyBatch and Async Submit
// report ErrPipelineClosed (resp. ErrClosed) and NewSession hands out
// no lane.
func TestCloseRejectsNewWork(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t)
	ctx := context.Background()
	if _, err := p.Classify(ctx, rg.x[0]); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Classify(ctx, rg.x[0]); !errors.Is(err, ErrPipelineClosed) {
		t.Errorf("Classify after Close: err = %v, want ErrPipelineClosed", err)
	}
	if _, err := p.ClassifyBatch(ctx, rg.x); !errors.Is(err, ErrPipelineClosed) {
		t.Errorf("ClassifyBatch after Close: err = %v, want ErrPipelineClosed", err)
	}
	if s := p.NewSession(); s != nil {
		t.Error("NewSession after Close returned a session")
	}
	if n := p.SessionCount(); n != 0 {
		t.Errorf("SessionCount after Close = %d, want 0", n)
	}
	if !p.Closed() {
		t.Error("Closed() = false after Close")
	}
	// A front-end built on a closed pipeline is born closed.
	ap := mustAsync(t, p)
	if r := <-ap.Submit(ctx, rg.x[0]); !errors.Is(r.Err, ErrClosed) {
		t.Errorf("Submit on closed-pipeline Async: err = %v, want ErrClosed", r.Err)
	}
	// Close is idempotent.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseFinalizesUsage pins the accounting handoff: the final Usage
// figures survive the session release, exactly as they stood at Close.
func TestCloseFinalizesUsage(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t)
	ctx := context.Background()
	if _, err := p.ClassifyBatch(ctx, rg.x[:8]); err != nil {
		t.Fatal(err)
	}
	before := p.Usage(true)
	if before.Ticks == 0 {
		t.Fatal("no activity before Close")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	after := p.Usage(true)
	if after != before {
		t.Fatalf("usage changed across Close:\n%+v\n%+v", before, after)
	}
	if sw := p.Usage(false); sw.Ticks != before.Ticks {
		t.Fatalf("software-priced usage lost: %+v", sw)
	}
}

// TestCloseFinalizesTraffic is the system-backed analogue: boundary
// traffic keeps reporting the final figures after the tile sessions
// are released.
func TestCloseFinalizesTraffic(t *testing.T) {
	mp := trafficMapping(t)
	p, err := New(mp, WithSystem(1, 1), WithDrain(2),
		WithEncoder(codec.NewBernoulli(0.9, 5)), WithDecoder(codec.NewCounter(64)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Classify(context.Background(), []float64{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	before := p.Traffic()
	if before.IntraChip+before.InterChip == 0 {
		t.Fatal("no routed traffic before Close")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	after := p.Traffic()
	if after != before {
		t.Fatalf("traffic changed across Close:\n%+v\n%+v", before, after)
	}
}

// TestCloseConcurrentWithBatch is the drain-vs-reject race test (run
// under -race in CI): batches racing a Close either complete fully or
// report ErrPipelineClosed — never partial results, never a panic on a
// released pool — and Close returns only after in-flight work is done.
func TestCloseConcurrentWithBatch(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t, WithWorkers(4))
	ctx := context.Background()
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 8; i++ {
				res, err := p.ClassifyBatch(ctx, rg.x[:6])
				switch {
				case err == nil:
					if len(res) != 6 {
						t.Errorf("completed batch returned %d results, want 6", len(res))
					}
				case errors.Is(err, ErrPipelineClosed):
					if res != nil {
						t.Error("rejected batch returned results")
					}
				default:
					t.Errorf("batch failed with unexpected error: %v", err)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := p.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	close(start)
	wg.Wait()
	if _, err := p.ClassifyBatch(ctx, rg.x[:1]); !errors.Is(err, ErrPipelineClosed) {
		t.Fatalf("batch after settled Close: err = %v", err)
	}
}

// TestCloseDrainsAsync pins the AsyncPipeline interaction: closing the
// pipeline closes its async front-ends, draining queued and in-flight
// submissions — every accepted submission still gets its Result.
func TestCloseDrainsAsync(t *testing.T) {
	rg := buildRig(t)
	p := rg.pipeline(t)
	ap := mustAsync(t, p, WithAsyncWorkers(2), WithQueueDepth(8))
	ctx := context.Background()
	const n = 8
	chans := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		chans[i] = ap.Submit(ctx, rg.x[i])
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		if r := <-ch; r.Err != nil {
			t.Errorf("submission %d: %v", i, r.Err)
		}
	}
	if r := <-ap.Submit(ctx, rg.x[0]); !errors.Is(r.Err, ErrClosed) {
		t.Errorf("Submit after pipeline Close: err = %v, want ErrClosed", r.Err)
	}
	// The async workers' activity is part of the final accounting.
	if u := p.Usage(true); u.Ticks == 0 {
		t.Fatal("final usage lost the async workers' activity")
	}
}
