package pipeline

// SLO observability core for the async front-end: a lock-cheap
// log-linear latency histogram (HDR-style, fixed memory, atomic
// buckets), the per-front-end counter block, and the Metrics snapshot
// returned by AsyncPipeline.Metrics().
//
// The histogram trades a bounded relative error for wait-free writes:
// buckets are spaced 16 per power-of-two octave of nanoseconds, so any
// reported quantile is within ~6% of the true value. Observe is three
// atomic adds plus a CAS-max — cheap enough to sit on the per-request
// serving path without showing up in profiles.

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// histSubBits sub-bucket bits per octave: 2^histSubBits linear
	// sub-buckets between consecutive powers of two.
	histSubBits  = 4
	histSubCount = 1 << histSubBits
	// Bucket 0..histSubCount-1 hold exact nanosecond values below
	// histSubCount; every octave above contributes histSubCount more.
	histBuckets = histSubCount * (64 - histSubBits + 1)
)

// LatencyHistogram is a fixed-size log-linear histogram of durations.
// The zero value is ready to use; all methods are safe for concurrent
// use. Memory is constant (~8 KiB) regardless of the value range.
type LatencyHistogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds
	max    atomic.Uint64 // nanoseconds
}

// Observe records one duration. Negative durations clamp to zero.
func (h *LatencyHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := uint64(d)
	h.counts[histBucket(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			return
		}
	}
}

// histBucket maps a nanosecond value to its bucket index.
func histBucket(ns uint64) int {
	if ns < histSubCount {
		return int(ns)
	}
	e := bits.Len64(ns) - 1 // exponent of the leading bit, >= histSubBits
	sub := (ns >> (uint(e) - histSubBits)) & (histSubCount - 1)
	return (e-histSubBits+1)*histSubCount + int(sub)
}

// histUpper returns the largest value a bucket can hold — the value
// quantiles report, so estimates err high (conservative for SLOs).
func histUpper(idx int) time.Duration {
	if idx < histSubCount {
		return time.Duration(idx)
	}
	g := idx / histSubCount // >= 1
	sub := idx % histSubCount
	e := g + histSubBits - 1
	return time.Duration((uint64(histSubCount+sub+1) << (uint(e) - histSubBits)) - 1)
}

// LatencyStats is a point-in-time summary of a LatencyHistogram.
type LatencyStats struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Snapshot summarises the histogram. Under concurrent Observe calls the
// snapshot is approximate (buckets are read without a global lock), but
// every recorded sample is eventually reflected.
func (h *LatencyHistogram) Snapshot() LatencyStats {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		counts[i] = c
		total += c
	}
	st := LatencyStats{
		Count: total,
		Max:   time.Duration(h.max.Load()),
	}
	if total == 0 {
		return st
	}
	if n := h.count.Load(); n > 0 {
		st.Mean = time.Duration(h.sum.Load() / n)
	}
	st.P50 = histQuantile(&counts, total, 50)
	st.P95 = histQuantile(&counts, total, 95)
	st.P99 = histQuantile(&counts, total, 99)
	return st
}

// histQuantile returns the upper bound of the bucket containing the
// pct-th percentile sample (pct in 1..100).
func histQuantile(counts *[histBuckets]uint64, total uint64, pct uint64) time.Duration {
	target := (total*pct + 99) / 100 // ceil(total * pct/100)
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= target {
			return histUpper(i)
		}
	}
	return histUpper(histBuckets - 1)
}

// asyncMetrics is the live counter block of one AsyncPipeline. All
// fields are atomics; the serving hot path never takes a lock for
// observability.
type asyncMetrics struct {
	submitted atomic.Uint64 // admitted into the queue
	completed atomic.Uint64 // results delivered (including failures)
	failed    atomic.Uint64 // completions carrying a non-nil error
	rejected  atomic.Uint64 // refused at Submit: closed front-end or caller ctx done
	shed      atomic.Uint64 // low-priority work refused by admission control
	expired   atomic.Uint64 // failed with ErrDeadline: SLO budget lapsed in queue
	inFlight  atomic.Int64  // requests currently on a worker

	// Streaming front-end (OpenStream) counters.
	streamsOpened   atomic.Uint64 // streams opened
	streamsClosed   atomic.Uint64 // streams ended by Drain
	streamFrames    atomic.Uint64 // ticks advanced across all streams
	streamDecisions atomic.Uint64 // continuous decisions delivered

	batches         atomic.Uint64 // dispatches by the micro-batcher
	batchedRequests atomic.Uint64 // requests carried by those dispatches
	fullBatches     atomic.Uint64 // dispatched because the batch filled
	deadlineBatches atomic.Uint64 // dispatched because the batch window expired
	drainBatches    atomic.Uint64 // dispatched short because the queue ran dry

	// serviceEWMA is an exponentially-weighted moving average of
	// per-request service time in nanoseconds (alpha = 1/8), seeding
	// the estimated-wait admission check.
	serviceEWMA atomic.Uint64

	queueWait     LatencyHistogram // submit-accept -> serve-start
	endToEnd      LatencyHistogram // submit-accept -> result delivered
	streamLatency LatencyHistogram // one stream operation (Tick/Push/Present/Drain)

	// Per-admission-class splits of queueWait/endToEnd, indexed by
	// Priority. The aggregate histograms above stay authoritative; the
	// splits let an operator see whether priority scheduling actually
	// protects the high class's tail under load.
	classQueueWait [numPriorities]LatencyHistogram
	classEndToEnd  [numPriorities]LatencyHistogram
}

// observeService folds one measured service time into the EWMA.
func (m *asyncMetrics) observeService(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	for {
		old := m.serviceEWMA.Load()
		next := ns
		if old != 0 {
			next = old - old/8 + ns/8
		}
		if m.serviceEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// dispatchCause records why the micro-batcher closed a batch.
type dispatchCause int

const (
	causeFull     dispatchCause = iota // batch reached MaxBatch
	causeDeadline                      // batch window expired
	causeDrain                         // queue ran dry (or front-end closing)
)

func (m *asyncMetrics) recordBatch(size int, cause dispatchCause) {
	m.batches.Add(1)
	m.batchedRequests.Add(uint64(size))
	switch cause {
	case causeFull:
		m.fullBatches.Add(1)
	case causeDeadline:
		m.deadlineBatches.Add(1)
	case causeDrain:
		m.drainBatches.Add(1)
	}
}

// Metrics is a point-in-time snapshot of an AsyncPipeline's serving
// state: configuration echo, gauges, counters, and latency summaries.
// It marshals cleanly to JSON (durations as nanoseconds) for the
// expvar endpoint in examples/server.
type Metrics struct {
	// Configuration echo.
	Workers     int
	QueueCap    int
	MaxBatch    int
	BatchWindow time.Duration
	SLOBudget   time.Duration

	// Gauges.
	QueueDepth    int           // requests admitted but not yet on a worker
	InFlight      int           // requests currently on a worker
	ServiceEWMA   time.Duration // smoothed per-request service time
	EstimatedWait time.Duration // queue depth x EWMA / workers — the shed signal

	// Counters.
	Submitted uint64
	Completed uint64
	Failed    uint64
	Rejected  uint64
	Shed      uint64
	Expired   uint64 // failed with ErrDeadline at dequeue: budget lapsed while queued

	// Micro-batcher counters (zero when MaxBatch <= 1).
	Batches         uint64
	BatchedRequests uint64
	FullBatches     uint64
	DeadlineBatches uint64
	DrainBatches    uint64
	MeanBatch       float64

	// Streaming front-end (OpenStream).
	StreamsOpen     int    // streams opened and not yet drained
	StreamsOpened   uint64 // streams opened
	StreamsClosed   uint64 // streams ended by Drain
	StreamFrames    uint64 // ticks advanced across all streams
	StreamDecisions uint64 // continuous decisions delivered

	// Latency summaries.
	QueueWait     LatencyStats
	EndToEnd      LatencyStats
	StreamLatency LatencyStats // one stream operation (Tick/Push/Present/Drain)

	// PerPriority splits QueueWait/EndToEnd by admission class, in
	// Priority order (high, normal, low). Always length 3; classes with
	// no traffic carry zero stats.
	PerPriority []PriorityLatency
}

// PriorityLatency is one admission class's slice of the submit-path
// latency accounting: how long that class's requests queued and how
// long until their results were delivered. Under load these diverge by
// design — strict priority dequeueing holds the high class's queue
// wait down by letting the low class's grow.
type PriorityLatency struct {
	Class     string // "high", "normal", "low"
	QueueWait LatencyStats
	EndToEnd  LatencyStats
}
