package dataset

import "testing"

// TestMotifStreamEmbedding: every embedding replays the pattern's
// events at the right offsets, embeddings end exactly at motifEnd, and
// gaps stay inside [minGap, maxGap].
func TestMotifStreamEmbedding(t *testing.T) {
	pat := NewPattern(16, 10, 5, 42)
	const minGap, maxGap = 5, 20
	m := NewMotifStream(pat, 0, minGap, maxGap, 7) // rate 0: motif only

	var ends []int64
	history := make([][]int, 0, 600)
	for tick := int64(0); tick < 600; tick++ {
		lines, end := m.Tick()
		history = append(history, lines)
		if end {
			ends = append(ends, tick)
		}
	}
	if len(ends) < 10 {
		t.Fatalf("only %d embeddings in 600 ticks with gaps <= %d", len(ends), maxGap)
	}
	for _, end := range ends {
		// The embedding spans [start, start+Span); motifEnd fires on its
		// last tick. Check every pattern event appeared at its offset.
		start := end - int64(pat.Span) + 1
		for _, e := range pat.Events {
			lines := history[start+int64(e.Tick)]
			found := false
			for _, l := range lines {
				if l == e.Line {
					found = true
				}
			}
			if !found {
				t.Fatalf("embedding ending at %d: event %+v missing", end, e)
			}
		}
	}
	for i := 1; i < len(ends); i++ {
		gap := ends[i] - int64(pat.Span) + 1 - (ends[i-1] + 1)
		if gap < minGap || gap > maxGap {
			t.Fatalf("gap %d between embeddings, want in [%d, %d]", gap, minGap, maxGap)
		}
	}
}

// TestMotifStreamDeterministic: same seed, same stream; noise lines
// stay ascending and distinct.
func TestMotifStreamDeterministic(t *testing.T) {
	pat := NewPattern(12, 8, 4, 3)
	a := NewMotifStream(pat, 0.1, 3, 9, 11)
	b := NewMotifStream(pat, 0.1, 3, 9, 11)
	for tick := 0; tick < 400; tick++ {
		la, ea := a.Tick()
		lb, eb := b.Tick()
		if ea != eb || len(la) != len(lb) {
			t.Fatalf("tick %d: streams diverged", tick)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("tick %d: lines %v vs %v", tick, la, lb)
			}
			if i > 0 && la[i] <= la[i-1] {
				t.Fatalf("tick %d: lines %v not ascending distinct", tick, la)
			}
		}
	}
}

// TestSensorStream: values stay in [0, 1], ground truth matches the
// burst structure, and anomalous readings sit above the baseline band.
func TestSensorStream(t *testing.T) {
	const burst, minGap, maxGap = 4, 20, 60
	s := NewSensorStream(32, burst, minGap, maxGap, 0.03, 5)
	var anomalies, runLen int
	for tick := 0; tick < 2000; tick++ {
		v, bad := s.Tick()
		if v < 0 || v > 1 {
			t.Fatalf("tick %d: value %v out of [0,1]", tick, v)
		}
		if bad {
			anomalies++
			runLen++
			if v < 0.8 {
				t.Fatalf("tick %d: anomalous reading %v below excursion band", tick, v)
			}
		} else {
			if runLen != 0 && runLen != burst {
				t.Fatalf("tick %d: anomaly run of %d ticks, want %d", tick, runLen, burst)
			}
			runLen = 0
			if v > 0.8 {
				t.Fatalf("tick %d: normal reading %v inside excursion band", tick, v)
			}
		}
	}
	if anomalies == 0 {
		t.Fatal("no anomalies in 2000 ticks")
	}
	// Same seed reproduces the trace exactly.
	a := NewSensorStream(32, burst, minGap, maxGap, 0.03, 9)
	b := NewSensorStream(32, burst, minGap, maxGap, 0.03, 9)
	for tick := 0; tick < 500; tick++ {
		va, ba := a.Tick()
		vb, bb := b.Tick()
		if va != vb || ba != bb {
			t.Fatalf("tick %d: traces diverged", tick)
		}
	}
}
