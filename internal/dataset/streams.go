// Open-ended temporal workloads for streaming serving: a keyword-
// spotting spike stream (a fixed spatio-temporal motif embedded in
// Poisson distractor traffic) and a synthetic sensor trace with
// injected anomaly excursions. Both are seeded and fully
// deterministic, and both report ground truth per tick so detection
// latency can be measured in ticks.

package dataset

import (
	"math"

	"github.com/neurogo/neurogo/internal/rng"
)

// MotifStream is the keyword-spotting workload: an endless spike
// stream of per-line Poisson distractor traffic with a fixed Pattern
// embedded at seeded random gaps — the open-ended analogue of the
// bounded pattern-detection demo. Tick reports motifEnd on the final
// tick of each embedding; a detector's decision tick minus that tick
// is its detection latency.
type MotifStream struct {
	Pattern *Pattern

	noise          *Poisson
	minGap, maxGap int
	r              *rng.SplitMix64

	tick  int64
	start int64 // first tick of the current or next embedding
}

// NewMotifStream builds the stream: pat embedded into distractor
// traffic of the pattern's line count at the given per-line per-tick
// rate, with gaps (ticks between one embedding's end and the next's
// start) drawn uniformly from [minGap, maxGap].
func NewMotifStream(pat *Pattern, rate float64, minGap, maxGap int, seed uint64) *MotifStream {
	if pat == nil || len(pat.Events) == 0 {
		panic("dataset: motif stream needs a non-empty pattern")
	}
	if minGap < 1 || maxGap < minGap {
		panic("dataset: motif gaps need 1 <= minGap <= maxGap")
	}
	m := &MotifStream{
		Pattern: pat,
		noise:   NewPoisson(pat.Lines, rate, seed^0xa5a5a5a5a5a5a5a5),
		minGap:  minGap,
		maxGap:  maxGap,
		r:       rng.NewSplitMix64(seed),
	}
	m.start = int64(m.gap())
	return m
}

func (m *MotifStream) gap() int {
	return m.minGap + m.r.Intn(m.maxGap-m.minGap+1)
}

// Tick returns the lines that spike this tick (ascending, distinct) —
// distractor traffic plus, inside an embedding, the motif's events —
// and whether this tick completes an embedding.
func (m *MotifStream) Tick() (lines []int, motifEnd bool) {
	lines = m.noise.Tick()
	off := m.tick - m.start
	if off >= 0 && off < int64(m.Pattern.Span) {
		for _, e := range m.Pattern.Events {
			if int64(e.Tick) == off {
				lines = insertLine(lines, e.Line)
			}
		}
		if off == int64(m.Pattern.Span)-1 {
			motifEnd = true
			m.start = m.tick + 1 + int64(m.gap())
		}
	}
	m.tick++
	return lines, motifEnd
}

// insertLine inserts l into an ascending slice, keeping it distinct.
func insertLine(lines []int, l int) []int {
	i := 0
	for i < len(lines) && lines[i] < l {
		i++
	}
	if i < len(lines) && lines[i] == l {
		return lines
	}
	lines = append(lines, 0)
	copy(lines[i+1:], lines[i:])
	lines[i] = l
	return lines
}

// SensorStream is the anomaly-detection workload: one synthetic sensor
// reading per tick — a slow sine baseline plus uniform noise, clamped
// to [0, 1] — with anomaly excursions (the value pinned near the top
// of the range for Burst consecutive ticks) injected at seeded random
// gaps. Tick reports the ground truth alongside the value.
type SensorStream struct {
	Period int     // baseline sine period in ticks
	Noise  float64 // uniform noise amplitude around the baseline
	Burst  int     // anomaly excursion length in ticks

	minGap, maxGap int
	r              *rng.SplitMix64

	tick  int64
	start int64 // first tick of the current or next excursion
}

// NewSensorStream builds the trace. Gaps between excursions are drawn
// uniformly from [minGap, maxGap] ticks.
func NewSensorStream(period, burst, minGap, maxGap int, noise float64, seed uint64) *SensorStream {
	if period < 2 || burst < 1 {
		panic("dataset: sensor stream needs period >= 2 and burst >= 1")
	}
	if minGap < 1 || maxGap < minGap {
		panic("dataset: sensor gaps need 1 <= minGap <= maxGap")
	}
	s := &SensorStream{
		Period: period,
		Noise:  noise,
		Burst:  burst,
		minGap: minGap,
		maxGap: maxGap,
		r:      rng.NewSplitMix64(seed),
	}
	s.start = int64(s.gap())
	return s
}

func (s *SensorStream) gap() int {
	return s.minGap + s.r.Intn(s.maxGap-s.minGap+1)
}

// Tick returns the next reading in [0, 1] and whether it belongs to an
// anomaly excursion.
func (s *SensorStream) Tick() (value float64, anomalous bool) {
	off := s.tick - s.start
	if off >= 0 && off < int64(s.Burst) {
		// Excursion: pinned near the top of the range, jittered so a
		// detector cannot key on one exact value.
		value = 0.92 + s.Noise*(2*s.r.Float64()-1)
		anomalous = true
		if off == int64(s.Burst)-1 {
			s.start = s.tick + 1 + int64(s.gap())
		}
	} else {
		base := 0.45 + 0.2*math.Sin(2*math.Pi*float64(s.tick)/float64(s.Period))
		value = base + s.Noise*(2*s.r.Float64()-1)
	}
	s.tick++
	if value < 0 {
		value = 0
	}
	if value > 1 {
		value = 1
	}
	return value, anomalous
}
