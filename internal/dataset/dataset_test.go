package dataset

import (
	"math"
	"testing"
)

func TestGlyphsDistinct(t *testing.T) {
	for a := 0; a < NumClasses; a++ {
		ga := Glyph(a)
		if len(ga) != 64 {
			t.Fatalf("glyph %d has %d pixels", a, len(ga))
		}
		on := 0
		for _, v := range ga {
			if v != 0 && v != 1 {
				t.Fatalf("glyph %d has non-binary pixel %g", a, v)
			}
			if v == 1 {
				on++
			}
		}
		if on < 8 {
			t.Fatalf("glyph %d suspiciously sparse (%d pixels)", a, on)
		}
		for b := a + 1; b < NumClasses; b++ {
			gb := Glyph(b)
			diff := 0
			for i := range ga {
				if ga[i] != gb[i] {
					diff++
				}
			}
			if diff < 4 {
				t.Errorf("glyphs %d and %d differ in only %d pixels", a, b, diff)
			}
		}
	}
}

func TestGlyphPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Glyph(10)
}

func TestDigitsCleanRenderMatchesGlyph(t *testing.T) {
	d := NewDigits(8, 0, 0, 1)
	for digit := 0; digit < NumClasses; digit++ {
		img := d.Render(digit)
		g := Glyph(digit)
		for i := range g {
			if img[i] != g[i] {
				t.Fatalf("digit %d: noise-free render differs from glyph at %d", digit, i)
			}
		}
	}
}

func TestDigitsUpscale(t *testing.T) {
	d := NewDigits(16, 0, 0, 1)
	if d.Pixels() != 256 {
		t.Fatalf("Pixels = %d", d.Pixels())
	}
	img := d.Render(1)
	g := Glyph(1)
	// Each glyph pixel becomes a 2x2 block.
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if img[y*16+x] != g[(y/2)*8+(x/2)] {
				t.Fatalf("upscale mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestDigitsNoiseRate(t *testing.T) {
	d := NewDigits(8, 0.1, 0, 7)
	flips := 0
	n := 200
	for i := 0; i < n; i++ {
		img := d.Render(3)
		g := Glyph(3)
		for k := range g {
			if img[k] != g[k] {
				flips++
			}
		}
	}
	got := float64(flips) / float64(n*64)
	if math.Abs(got-0.1) > 0.02 {
		t.Errorf("flip rate = %g, want ~0.1", got)
	}
}

func TestDigitsShiftStaysInFrame(t *testing.T) {
	d := NewDigits(16, 0, 3, 9)
	for i := 0; i < 50; i++ {
		img := d.Render(8)
		on := 0
		for _, v := range img {
			if v == 1 {
				on++
			}
		}
		if on == 0 {
			t.Fatal("shifted glyph vanished")
		}
	}
}

func TestDigitsBatchAndDeterminism(t *testing.T) {
	mk := func() ([][]float64, []int) { return NewDigits(8, 0.05, 1, 42).Batch(20) }
	p1, l1 := mk()
	p2, l2 := mk()
	if len(p1) != 20 || len(l1) != 20 {
		t.Fatal("batch size wrong")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("labels not deterministic")
		}
		for k := range p1[i] {
			if p1[i][k] != p2[i][k] {
				t.Fatal("pixels not deterministic")
			}
		}
	}
}

func TestDigitsLabelCoverage(t *testing.T) {
	d := NewDigits(8, 0, 0, 5)
	seen := map[int]bool{}
	for i := 0; i < 300; i++ {
		_, l := d.Sample()
		seen[l] = true
	}
	if len(seen) != NumClasses {
		t.Errorf("only %d classes drawn in 300 samples", len(seen))
	}
}

func TestNewDigitsPanics(t *testing.T) {
	for _, size := range []int{0, 7, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %d: expected panic", size)
				}
			}()
			NewDigits(size, 0, 0, 1)
		}()
	}
}

func TestScenesGroundTruth(t *testing.T) {
	s := NewScenes(4, 4, 8, 0.5, 0, 11)
	pixels, truth := s.Frame()
	if len(pixels) != 32*32 || len(truth) != 16 {
		t.Fatalf("frame %d pixels, %d truth", len(pixels), len(truth))
	}
	// Occupied cells contain bright pixels, empty cells are dark.
	for cy := 0; cy < 4; cy++ {
		for cx := 0; cx < 4; cx++ {
			sum := 0.0
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					sum += pixels[(cy*8+y)*32+(cx*8+x)]
				}
			}
			occupied := truth[cy*4+cx]
			if occupied && sum < 8 {
				t.Errorf("occupied cell (%d,%d) has only %g pixels lit", cx, cy, sum)
			}
			if !occupied && sum != 0 {
				t.Errorf("empty cell (%d,%d) has %g pixels lit (no speckle configured)", cx, cy, sum)
			}
		}
	}
}

func TestScenesOccupancyRate(t *testing.T) {
	s := NewScenes(8, 8, 6, 0.3, 0, 3)
	occ := 0
	n := 100
	for i := 0; i < n; i++ {
		_, truth := s.Frame()
		for _, o := range truth {
			if o {
				occ++
			}
		}
	}
	got := float64(occ) / float64(n*64)
	if math.Abs(got-0.3) > 0.05 {
		t.Errorf("occupancy = %g, want ~0.3", got)
	}
}

func TestScenesSpeckle(t *testing.T) {
	s := NewScenes(2, 2, 8, 0, 0.05, 5)
	pixels, truth := s.Frame()
	for _, o := range truth {
		if o {
			t.Fatal("objectP=0 must produce empty truth")
		}
	}
	lit := 0
	for _, v := range pixels {
		if v == 1 {
			lit++
		}
	}
	if lit == 0 {
		t.Error("speckle produced no noise")
	}
	if lit > len(pixels)/5 {
		t.Errorf("speckle too dense: %d/%d", lit, len(pixels))
	}
}

func TestScenesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewScenes(0, 1, 8, 0.5, 0, 1)
}

func TestPatternShape(t *testing.T) {
	p := NewPattern(32, 16, 8, 9)
	if len(p.Events) != 8 {
		t.Fatalf("events = %d, want 8", len(p.Events))
	}
	seenTick := map[int]bool{}
	for i, e := range p.Events {
		if e.Line < 0 || e.Line >= 32 || e.Tick < 0 || e.Tick >= 16 {
			t.Fatalf("event %d out of range: %+v", i, e)
		}
		if seenTick[e.Tick] {
			t.Fatalf("duplicate tick %d", e.Tick)
		}
		seenTick[e.Tick] = true
		if i > 0 && p.Events[i].Tick < p.Events[i-1].Tick {
			t.Fatal("events not sorted by tick")
		}
	}
}

func TestPatternPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPattern(4, 4, 5, 1)
}

func TestPoissonRate(t *testing.T) {
	p := NewPoisson(100, 0.2, 13)
	total := 0
	n := 2000
	for i := 0; i < n; i++ {
		lines := p.Tick()
		total += len(lines)
		for k := 1; k < len(lines); k++ {
			if lines[k] <= lines[k-1] {
				t.Fatal("lines not ascending")
			}
		}
	}
	got := float64(total) / float64(n*100)
	if math.Abs(got-0.2) > 0.02 {
		t.Errorf("rate = %g, want ~0.2", got)
	}
}

func TestPoissonZeroRateSilent(t *testing.T) {
	p := NewPoisson(10, 0, 1)
	for i := 0; i < 100; i++ {
		if len(p.Tick()) != 0 {
			t.Fatal("zero rate must be silent")
		}
	}
}
