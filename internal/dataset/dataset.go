// Package dataset provides the deterministic synthetic workloads the
// experiments run on, substituting for the proprietary datasets the
// original evaluation used (see DESIGN.md): digit glyphs with jitter and
// noise for classification, multi-object scenes for detection, spatio-
// temporal spike patterns for delay-line demos, and Poisson background
// traffic for throughput and power sweeps.
package dataset

import (
	"fmt"

	"github.com/neurogo/neurogo/internal/rng"
)

// glyphRows defines the 8x8 base font for digits 0-9.
var glyphRows = [10][8]string{
	{ // 0
		"..####..",
		".##..##.",
		".##.###.",
		".###.##.",
		".##..##.",
		".##..##.",
		"..####..",
		"........",
	},
	{ // 1
		"...##...",
		"..###...",
		"...##...",
		"...##...",
		"...##...",
		"...##...",
		".######.",
		"........",
	},
	{ // 2
		"..####..",
		".##..##.",
		".....##.",
		"....##..",
		"...##...",
		"..##....",
		".######.",
		"........",
	},
	{ // 3
		"..####..",
		".##..##.",
		".....##.",
		"...###..",
		".....##.",
		".##..##.",
		"..####..",
		"........",
	},
	{ // 4
		"....##..",
		"...###..",
		"..####..",
		".##.##..",
		".######.",
		"....##..",
		"....##..",
		"........",
	},
	{ // 5
		".######.",
		".##.....",
		".#####..",
		".....##.",
		".....##.",
		".##..##.",
		"..####..",
		"........",
	},
	{ // 6
		"..####..",
		".##.....",
		".##.....",
		".#####..",
		".##..##.",
		".##..##.",
		"..####..",
		"........",
	},
	{ // 7
		".######.",
		".....##.",
		"....##..",
		"...##...",
		"..##....",
		"..##....",
		"..##....",
		"........",
	},
	{ // 8
		"..####..",
		".##..##.",
		".##..##.",
		"..####..",
		".##..##.",
		".##..##.",
		"..####..",
		"........",
	},
	{ // 9
		"..####..",
		".##..##.",
		".##..##.",
		"..#####.",
		".....##.",
		".....##.",
		"..####..",
		"........",
	},
}

// NumClasses is the number of digit classes.
const NumClasses = 10

// Glyph renders the clean 8x8 glyph for a digit as a 64-element vector
// of 0/1 intensities.
func Glyph(digit int) []float64 {
	if digit < 0 || digit >= NumClasses {
		panic(fmt.Sprintf("dataset: digit %d out of range", digit))
	}
	out := make([]float64, 64)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if glyphRows[digit][y][x] == '#' {
				out[y*8+x] = 1
			}
		}
	}
	return out
}

// Digits generates noisy, jittered digit images.
type Digits struct {
	// Size is the output side length; the 8x8 glyph is nearest-
	// neighbour upscaled (e.g. 16 gives 256 pixels, one full core of
	// axons).
	Size int
	// Noise is the per-pixel flip probability.
	Noise float64
	// MaxShift is the maximum absolute translation, in output pixels.
	MaxShift int
	r        *rng.SplitMix64
}

// NewDigits returns a generator. Size must be a multiple of 8.
func NewDigits(size int, noise float64, maxShift int, seed uint64) *Digits {
	if size < 8 || size%8 != 0 {
		panic(fmt.Sprintf("dataset: size %d must be a positive multiple of 8", size))
	}
	return &Digits{Size: size, Noise: noise, MaxShift: maxShift, r: rng.NewSplitMix64(seed)}
}

// Pixels returns the number of pixels per image.
func (d *Digits) Pixels() int { return d.Size * d.Size }

// Render produces one image of the given digit with the generator's
// jitter and noise.
func (d *Digits) Render(digit int) []float64 {
	if digit < 0 || digit >= NumClasses {
		panic(fmt.Sprintf("dataset: digit %d out of range", digit))
	}
	scale := d.Size / 8
	dx, dy := 0, 0
	if d.MaxShift > 0 {
		dx = d.r.Intn(2*d.MaxShift+1) - d.MaxShift
		dy = d.r.Intn(2*d.MaxShift+1) - d.MaxShift
	}
	out := make([]float64, d.Size*d.Size)
	for y := 0; y < d.Size; y++ {
		for x := 0; x < d.Size; x++ {
			sx, sy := (x-dx)/scale, (y-dy)/scale
			v := 0.0
			if sx >= 0 && sx < 8 && sy >= 0 && sy < 8 && (x-dx) >= 0 && (y-dy) >= 0 {
				if glyphRows[digit][sy][sx] == '#' {
					v = 1
				}
			}
			if d.Noise > 0 && d.r.Float64() < d.Noise {
				v = 1 - v
			}
			out[y*d.Size+x] = v
		}
	}
	return out
}

// Sample draws a uniformly random digit and renders it.
func (d *Digits) Sample() (pixels []float64, label int) {
	label = d.r.Intn(NumClasses)
	return d.Render(label), label
}

// Batch draws n samples.
func (d *Digits) Batch(n int) (pixels [][]float64, labels []int) {
	pixels = make([][]float64, n)
	labels = make([]int, n)
	for i := 0; i < n; i++ {
		pixels[i], labels[i] = d.Sample()
	}
	return pixels, labels
}

// Scenes generates multi-object detection frames: a CellsX x CellsY grid
// of cells, each CellPix x CellPix pixels; occupied cells contain a plus-
// shaped object, and speckle noise is sprinkled everywhere. Ground truth
// is per-cell occupancy.
type Scenes struct {
	CellsX, CellsY int
	CellPix        int
	// ObjectP is the per-cell occupancy probability.
	ObjectP float64
	// Speckle is the per-pixel noise probability.
	Speckle float64
	r       *rng.SplitMix64
}

// NewScenes returns a scene generator.
func NewScenes(cellsX, cellsY, cellPix int, objectP, speckle float64, seed uint64) *Scenes {
	if cellsX <= 0 || cellsY <= 0 || cellPix < 3 {
		panic("dataset: invalid scene geometry")
	}
	return &Scenes{CellsX: cellsX, CellsY: cellsY, CellPix: cellPix,
		ObjectP: objectP, Speckle: speckle, r: rng.NewSplitMix64(seed)}
}

// Width returns the frame width in pixels.
func (s *Scenes) Width() int { return s.CellsX * s.CellPix }

// Height returns the frame height in pixels.
func (s *Scenes) Height() int { return s.CellsY * s.CellPix }

// Frame renders one scene and its ground truth (row-major cells).
func (s *Scenes) Frame() (pixels []float64, truth []bool) {
	w, h := s.Width(), s.Height()
	pixels = make([]float64, w*h)
	truth = make([]bool, s.CellsX*s.CellsY)
	for cy := 0; cy < s.CellsY; cy++ {
		for cx := 0; cx < s.CellsX; cx++ {
			if s.r.Float64() >= s.ObjectP {
				continue
			}
			truth[cy*s.CellsX+cx] = true
			// A plus shape centred in the cell.
			mid := s.CellPix / 2
			for k := 1; k < s.CellPix-1; k++ {
				px := cx*s.CellPix + k
				py := cy*s.CellPix + mid
				pixels[py*w+px] = 1
				px = cx*s.CellPix + mid
				py = cy*s.CellPix + k
				pixels[py*w+px] = 1
			}
		}
	}
	if s.Speckle > 0 {
		for i := range pixels {
			if s.r.Float64() < s.Speckle {
				pixels[i] = 1
			}
		}
	}
	return pixels, truth
}

// PatternEvent is one (line, tick) event of a spatio-temporal template.
type PatternEvent struct {
	Line int
	Tick int
}

// Pattern is a spatio-temporal spike template spanning Span ticks over
// Lines input lines.
type Pattern struct {
	Lines  int
	Span   int
	Events []PatternEvent
}

// NewPattern draws a random template with one event per occupied tick
// and distinct lines (each line carries at most one event, so a single
// per-line delay aligns the whole template).
func NewPattern(lines, span, events int, seed uint64) *Pattern {
	if events > span {
		panic("dataset: more events than ticks in span")
	}
	if events > lines {
		panic("dataset: more events than lines")
	}
	r := rng.NewSplitMix64(seed)
	ticks := r.Perm(span)[:events]
	linePerm := r.Perm(lines)[:events]
	p := &Pattern{Lines: lines, Span: span}
	for i, t := range ticks {
		p.Events = append(p.Events, PatternEvent{Line: linePerm[i], Tick: t})
	}
	// Sort by tick for deterministic replay (insertion sort, small n).
	for i := 1; i < len(p.Events); i++ {
		for j := i; j > 0 && p.Events[j].Tick < p.Events[j-1].Tick; j-- {
			p.Events[j], p.Events[j-1] = p.Events[j-1], p.Events[j]
		}
	}
	return p
}

// Poisson generates background spike traffic: each line fires
// independently at the given per-tick rate. Used by the power and
// throughput sweeps.
type Poisson struct {
	Lines int
	// Rate is the per-line per-tick spike probability.
	Rate float64
	r    *rng.SplitMix64
}

// NewPoisson returns a traffic generator.
func NewPoisson(lines int, rate float64, seed uint64) *Poisson {
	return &Poisson{Lines: lines, Rate: rate, r: rng.NewSplitMix64(seed)}
}

// Tick returns the lines that spike this tick (ascending order).
func (p *Poisson) Tick() []int {
	var out []int
	for i := 0; i < p.Lines; i++ {
		if p.r.Float64() < p.Rate {
			out = append(out, i)
		}
	}
	return out
}
