// Package rng provides the deterministic pseudo-random number generators
// used throughout the simulator.
//
// Two generators are provided:
//
//   - LFSR: a 16-bit Galois linear-feedback shift register. This mirrors the
//     hardware PRNG embedded in each neurosynaptic core: cheap, deterministic
//     and bit-reproducible. All stochastic neuron modes (synapse, leak,
//     threshold) draw from the core's LFSR, so a chip-level simulation is a
//     pure function of its configuration and seeds.
//
//   - SplitMix64: a high-quality 64-bit generator used by workload and
//     dataset generators, where statistical quality matters more than
//     hardware fidelity. It supports cheap stream splitting so that every
//     experiment derives independent, reproducible sub-streams.
//
// Neither generator is safe for concurrent use; callers own one per
// goroutine (the simulator gives each core its own LFSR, matching hardware).
package rng

import "math"

// lfsrTaps is the feedback polynomial x^16 + x^14 + x^13 + x^11 + 1
// (0xB400 in Galois form), which gives the maximal period 2^16-1.
const lfsrTaps = 0xB400

// LFSR is a 16-bit Galois linear-feedback shift register, modelling the
// per-core hardware PRNG. The zero value is invalid (an all-zero LFSR is a
// fixed point); use NewLFSR which maps seed 0 to a nonzero state.
type LFSR struct {
	state uint16
}

// NewLFSR returns an LFSR seeded with s. Seed 0 is remapped to 0xACE1 so
// every seed yields a working generator.
func NewLFSR(s uint16) *LFSR {
	if s == 0 {
		s = 0xACE1
	}
	return &LFSR{state: s}
}

// Next advances the register one step and returns the new 16-bit state.
func (l *LFSR) Next() uint16 {
	lsb := l.state & 1
	l.state >>= 1
	if lsb != 0 {
		l.state ^= lfsrTaps
	}
	return l.state
}

// Draw8 returns a uniform 8-bit draw, the width used by stochastic synapse
// and leak comparisons (|weight| is at most 255).
func (l *LFSR) Draw8() uint8 {
	return uint8(l.Next())
}

// DrawMask returns the next state masked to the low bits selected by mask.
// Stochastic thresholds use mask = 2^TM - 1.
func (l *LFSR) DrawMask(mask uint32) uint32 {
	return uint32(l.Next()) & mask
}

// State returns the current register contents (for checkpointing).
func (l *LFSR) State() uint16 { return l.state }

// SetState restores a previously captured state. A zero state is remapped
// exactly as in NewLFSR.
func (l *LFSR) SetState(s uint16) {
	if s == 0 {
		s = 0xACE1
	}
	l.state = s
}

// Bernoulli returns true with probability p/256. It consumes one draw.
func (l *LFSR) Bernoulli(p uint8) bool {
	return l.Draw8() < p
}

// SplitMix64 is a 64-bit generator with excellent statistical properties
// and O(1) stream splitting. It is the workload-side generator: datasets,
// traffic patterns and placement annealing all derive their randomness from
// SplitMix64 streams so experiments are reproducible end to end.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with s.
func NewSplitMix64(s uint64) *SplitMix64 {
	return &SplitMix64{state: s}
}

// Next returns the next 64-bit value.
func (r *SplitMix64) Next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split derives an independent child stream labelled by tag. Streams with
// distinct (parent seed, tag) pairs are statistically independent.
func (r *SplitMix64) Split(tag uint64) *SplitMix64 {
	mix := r.state ^ (tag * 0xD1342543DE82EF95)
	child := NewSplitMix64(mix)
	child.Next() // burn one value to decorrelate from the parent state
	return child
}

// Float64 returns a uniform float64 in [0, 1).
func (r *SplitMix64) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Perm returns a uniform random permutation of [0, n).
func (r *SplitMix64) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar (Marsaglia) method.
func (r *SplitMix64) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Poisson returns a Poisson-distributed sample with mean lambda, using
// Knuth's algorithm for small lambda and a normal approximation above 64
// (adequate for spike-count workloads).
func (r *SplitMix64) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		n := int(lambda + math.Sqrt(lambda)*r.NormFloat64() + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
