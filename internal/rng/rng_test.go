package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLFSRZeroSeedRemapped(t *testing.T) {
	l := NewLFSR(0)
	if l.State() == 0 {
		t.Fatal("zero seed must be remapped to a nonzero state")
	}
}

func TestLFSRNeverZero(t *testing.T) {
	l := NewLFSR(1)
	for i := 0; i < 1<<16; i++ {
		if l.Next() == 0 {
			t.Fatalf("LFSR reached the all-zero fixed point at step %d", i)
		}
	}
}

func TestLFSRMaximalPeriod(t *testing.T) {
	l := NewLFSR(0xACE1)
	start := l.State()
	period := 0
	for {
		l.Next()
		period++
		if l.State() == start {
			break
		}
		if period > 1<<16 {
			t.Fatal("period exceeds 2^16, polynomial is wrong")
		}
	}
	if period != 1<<16-1 {
		t.Fatalf("period = %d, want %d (maximal)", period, 1<<16-1)
	}
}

func TestLFSRDeterminism(t *testing.T) {
	a, b := NewLFSR(42), NewLFSR(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("two LFSRs with the same seed diverged at step %d", i)
		}
	}
}

func TestLFSRSetStateRoundTrip(t *testing.T) {
	l := NewLFSR(7)
	for i := 0; i < 100; i++ {
		l.Next()
	}
	s := l.State()
	want := []uint16{l.Next(), l.Next(), l.Next()}
	l.SetState(s)
	for i, w := range want {
		if g := l.Next(); g != w {
			t.Fatalf("after restore, draw %d = %#x, want %#x", i, g, w)
		}
	}
}

func TestLFSRSetStateZeroRemap(t *testing.T) {
	l := NewLFSR(7)
	l.SetState(0)
	if l.State() == 0 {
		t.Fatal("SetState(0) must remap to nonzero")
	}
}

func TestLFSRDraw8Uniformity(t *testing.T) {
	l := NewLFSR(0xBEEF)
	var counts [256]int
	n := 1 << 16
	for i := 0; i < n; i++ {
		counts[l.Draw8()]++
	}
	// Expected 256 per bucket over one full period; tolerate wide slack.
	for v, c := range counts {
		if c < 128 || c > 512 {
			t.Fatalf("value %d drawn %d times; grossly non-uniform", v, c)
		}
	}
}

func TestLFSRBernoulliRate(t *testing.T) {
	for _, p := range []uint8{0, 32, 128, 200, 255} {
		l := NewLFSR(0x1234)
		n := 1 << 16
		hits := 0
		for i := 0; i < n; i++ {
			if l.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / float64(n)
		want := float64(p) / 256
		if math.Abs(got-want) > 0.02 {
			t.Errorf("Bernoulli(%d): rate %.4f, want %.4f +/- 0.02", p, got, want)
		}
	}
}

func TestLFSRDrawMask(t *testing.T) {
	l := NewLFSR(9)
	for i := 0; i < 1000; i++ {
		v := l.DrawMask(0x0F)
		if v > 0x0F {
			t.Fatalf("DrawMask(0x0F) returned %#x outside mask", v)
		}
	}
	// Mask 0 must always return 0 (deterministic-threshold case).
	for i := 0; i < 10; i++ {
		if v := l.DrawMask(0); v != 0 {
			t.Fatalf("DrawMask(0) = %d, want 0", v)
		}
	}
}

func TestSplitMixDeterminism(t *testing.T) {
	a, b := NewSplitMix64(99), NewSplitMix64(99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("SplitMix64 streams with same seed diverged at %d", i)
		}
	}
}

func TestSplitMixSplitIndependence(t *testing.T) {
	parent := NewSplitMix64(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Next() == c2.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("child streams with distinct tags collided %d/1000 times", same)
	}
}

func TestSplitMixSplitReproducible(t *testing.T) {
	mk := func() uint64 {
		p := NewSplitMix64(7)
		return p.Split(5).Next()
	}
	if mk() != mk() {
		t.Fatal("Split is not a pure function of (seed, tag)")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewSplitMix64(3)
	f := func(skip uint8) bool {
		for i := 0; i < int(skip); i++ {
			r.Next()
		}
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewSplitMix64(4)
	for _, n := range []int{1, 2, 7, 100, 12345} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	NewSplitMix64(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewSplitMix64(11)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewSplitMix64(21)
	n := 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean = %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %.4f, want ~1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 2, 10, 100} {
		r := NewSplitMix64(31)
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda)/lambda > 0.05 {
			t.Errorf("Poisson(%g): mean %.3f, want within 5%%", lambda, mean)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := NewSplitMix64(41)
	f := func(raw uint16) bool {
		lambda := float64(raw) / 100
		return r.Poisson(lambda) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if r.Poisson(0) != 0 || r.Poisson(-3) != 0 {
		t.Error("Poisson of non-positive lambda must be 0")
	}
}

func BenchmarkLFSRNext(b *testing.B) {
	l := NewLFSR(1)
	for i := 0; i < b.N; i++ {
		l.Next()
	}
}

func BenchmarkSplitMixNext(b *testing.B) {
	r := NewSplitMix64(1)
	for i := 0; i < b.N; i++ {
		r.Next()
	}
}
