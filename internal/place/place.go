// Package place assigns core-sized groups of neurons to positions on the
// chip's core grid, minimising spike traffic times Manhattan distance —
// the quantity the NoC pays for in latency and energy.
//
// Three placers are provided, forming the ablation ladder used by the
// locality experiments: Random (the baseline), Greedy (best-first
// insertion next to already-placed traffic partners), and Anneal
// (simulated annealing refinement on top of Greedy). All are
// deterministic given their seed.
package place

import (
	"fmt"

	"github.com/neurogo/neurogo/internal/rng"
)

// Problem is a placement instance.
type Problem struct {
	// N is the number of groups to place.
	N int
	// Width and Height are the grid dimensions (Width*Height >= N).
	Width, Height int
	// Traffic[i][j] is the expected spike rate from group i to group j
	// (any nonnegative unit; only relative magnitudes matter).
	Traffic [][]float64
}

// Validate checks the instance shape.
func (p *Problem) Validate() error {
	if p.N < 0 {
		return fmt.Errorf("place: negative N")
	}
	if p.Width <= 0 || p.Height <= 0 {
		return fmt.Errorf("place: grid %dx%d must be positive", p.Width, p.Height)
	}
	if p.Width*p.Height < p.N {
		return fmt.Errorf("place: %d groups exceed %d grid slots", p.N, p.Width*p.Height)
	}
	if len(p.Traffic) != p.N {
		return fmt.Errorf("place: traffic matrix has %d rows for %d groups", len(p.Traffic), p.N)
	}
	for i, row := range p.Traffic {
		if len(row) != p.N {
			return fmt.Errorf("place: traffic row %d has %d columns", i, len(row))
		}
		for j, w := range row {
			if w < 0 {
				return fmt.Errorf("place: negative traffic [%d][%d]", i, j)
			}
		}
	}
	return nil
}

// Assignment maps each group to a linear grid slot (y*Width + x).
type Assignment []int

// dist returns the Manhattan distance between two slots.
func (p *Problem) dist(s1, s2 int) int {
	x1, y1 := s1%p.Width, s1/p.Width
	x2, y2 := s2%p.Width, s2/p.Width
	dx, dy := x1-x2, y1-y2
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Cost returns the total traffic-weighted Manhattan distance of a.
func (p *Problem) Cost(a Assignment) float64 {
	total := 0.0
	for i := 0; i < p.N; i++ {
		row := p.Traffic[i]
		for j := 0; j < p.N; j++ {
			if w := row[j]; w > 0 {
				total += w * float64(p.dist(a[i], a[j]))
			}
		}
	}
	return total
}

// CheckLegal verifies a is a valid injective slot assignment.
func (p *Problem) CheckLegal(a Assignment) error {
	if len(a) != p.N {
		return fmt.Errorf("place: assignment length %d for %d groups", len(a), p.N)
	}
	seen := make(map[int]int, p.N)
	for g, s := range a {
		if s < 0 || s >= p.Width*p.Height {
			return fmt.Errorf("place: group %d at slot %d outside grid", g, s)
		}
		if prev, dup := seen[s]; dup {
			return fmt.Errorf("place: groups %d and %d share slot %d", prev, g, s)
		}
		seen[s] = g
	}
	return nil
}

// Random places groups uniformly at random (the baseline placer).
func Random(p *Problem, seed uint64) Assignment {
	r := rng.NewSplitMix64(seed)
	perm := r.Perm(p.Width * p.Height)
	a := make(Assignment, p.N)
	copy(a, perm[:p.N])
	return a
}

// adjacency builds symmetric weighted adjacency lists from the traffic
// matrix: adj[i] holds (j, T[i][j]+T[j][i]) for all traffic partners.
type halfEdge struct {
	to int
	w  float64
}

func adjacency(p *Problem) [][]halfEdge {
	adj := make([][]halfEdge, p.N)
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.N; j++ {
			if i == j {
				continue
			}
			w := p.Traffic[i][j] + p.Traffic[j][i]
			if w > 0 {
				adj[i] = append(adj[i], halfEdge{j, w})
			}
		}
	}
	return adj
}

// spiralOrder returns grid slots ordered by distance from the grid centre
// (ties broken by slot index), so greedy insertion grows a compact blob.
func spiralOrder(w, h int) []int {
	type sd struct {
		slot, d int
	}
	cx, cy := (w-1)/2, (h-1)/2
	all := make([]sd, 0, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx, dy := x-cx, y-cy
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			all = append(all, sd{y*w + x, dx + dy})
		}
	}
	// Stable insertion sort by (d, slot); n is small (grid size).
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && (all[j].d < all[j-1].d || (all[j].d == all[j-1].d && all[j].slot < all[j-1].slot)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	out := make([]int, len(all))
	for i, e := range all {
		out[i] = e.slot
	}
	return out
}

// Greedy places the most-connected group at the grid centre, then
// repeatedly takes the unplaced group with the strongest connection to
// the placed set and puts it on the free slot minimising its incremental
// traffic-distance cost.
func Greedy(p *Problem) Assignment {
	if p.N == 0 {
		return Assignment{}
	}
	adj := adjacency(p)

	// Connection strength to the placed set; -1 marks placed.
	gain := make([]float64, p.N)
	placed := make([]bool, p.N)
	a := make(Assignment, p.N)

	// Total degree picks the seed group.
	seed := 0
	best := -1.0
	for i := 0; i < p.N; i++ {
		t := 0.0
		for _, e := range adj[i] {
			t += e.w
		}
		if t > best {
			best, seed = t, i
		}
	}

	slots := spiralOrder(p.Width, p.Height)
	freeSlots := make([]bool, p.Width*p.Height)
	for _, s := range slots {
		freeSlots[s] = true
	}

	placeAt := func(g, slot int) {
		a[g] = slot
		placed[g] = true
		freeSlots[slot] = false
		for _, e := range adj[g] {
			if !placed[e.to] {
				gain[e.to] += e.w
			}
		}
	}
	placeAt(seed, slots[0])

	for count := 1; count < p.N; count++ {
		// Next group: strongest tie to placed set; fall back to first
		// unplaced (disconnected components).
		g, bestGain := -1, -1.0
		for i := 0; i < p.N; i++ {
			if !placed[i] && gain[i] > bestGain {
				g, bestGain = i, gain[i]
			}
		}
		// Best free slot by incremental cost; scan in spiral order so
		// disconnected groups stay compact.
		bestSlot, bestCost := -1, 0.0
		for _, s := range slots {
			if !freeSlots[s] {
				continue
			}
			c := 0.0
			for _, e := range adj[g] {
				if placed[e.to] {
					c += e.w * float64(p.dist(s, a[e.to]))
				}
			}
			if bestSlot == -1 || c < bestCost {
				bestSlot, bestCost = s, c
			}
		}
		placeAt(g, bestSlot)
	}
	return a
}

// AnnealOptions tunes the simulated-annealing placer.
type AnnealOptions struct {
	// Iters is the number of proposed moves. Zero means 200*N.
	Iters int
	// T0 is the initial temperature. Zero derives it from the problem.
	T0 float64
	// Cooling is the geometric decay per move. Zero means 0.9995.
	Cooling float64
}

// Anneal refines the Greedy placement with simulated annealing: random
// slot swaps (including moves to free slots), Metropolis acceptance, and
// geometric cooling. Deterministic for a given seed.
func Anneal(p *Problem, seed uint64, opt AnnealOptions) Assignment {
	a := Greedy(p)
	if p.N <= 1 {
		return a
	}
	if opt.Iters == 0 {
		opt.Iters = 200 * p.N
	}
	if opt.Cooling == 0 {
		opt.Cooling = 0.9995
	}
	adj := adjacency(p)

	// slotOwner[s] = group at slot s, or -1.
	slotOwner := make([]int, p.Width*p.Height)
	for i := range slotOwner {
		slotOwner[i] = -1
	}
	for g, s := range a {
		slotOwner[s] = g
	}

	// moveDelta computes the cost change of moving group g to slot s2,
	// excluding any interaction with group `other` (handled by caller
	// during swaps).
	moveDelta := func(g, s2, other int) float64 {
		s1 := a[g]
		d := 0.0
		for _, e := range adj[g] {
			if e.to == other {
				continue
			}
			d += e.w * float64(p.dist(s2, a[e.to])-p.dist(s1, a[e.to]))
		}
		return d
	}

	t := opt.T0
	if t == 0 {
		c := p.Cost(a)
		t = 1 + c/float64(p.N*4)
	}
	r := rng.NewSplitMix64(seed)
	nSlots := p.Width * p.Height

	for it := 0; it < opt.Iters; it++ {
		g := r.Intn(p.N)
		s2 := r.Intn(nSlots)
		s1 := a[g]
		if s1 == s2 {
			continue
		}
		o := slotOwner[s2]
		var delta float64
		if o == -1 {
			delta = moveDelta(g, s2, -1)
		} else {
			// Swap: pairwise distance between g and o is unchanged
			// (their slots swap), so exclude it from both deltas.
			delta = moveDelta(g, s2, o) + moveDelta(o, s1, g)
		}
		accept := delta <= 0
		if !accept && t > 1e-12 {
			// Metropolis: exp(-delta/t) without math.Exp in the hot
			// loop is not worth the obscurity; use the real thing.
			accept = r.Float64() < expNeg(delta/t)
		}
		if accept {
			a[g] = s2
			slotOwner[s1] = -1
			if o != -1 {
				a[o] = s1
				slotOwner[s1] = o
			}
			slotOwner[s2] = g
		}
		t *= opt.Cooling
	}
	return a
}

// expNeg returns e^-x for x >= 0 with a cheap clamped series; accuracy is
// irrelevant for Metropolis acceptance, monotonicity is what matters.
func expNeg(x float64) float64 {
	if x > 30 {
		return 0
	}
	// e^-x = 1/e^x via the limit form (1 + x/n)^n with n = 256.
	y := 1 + x/256
	y *= y
	y *= y
	y *= y
	y *= y
	y *= y
	y *= y
	y *= y
	y *= y
	return 1 / y
}
