// Package place assigns core-sized groups of neurons to positions on the
// chip's core grid, minimising spike traffic times Manhattan distance —
// the quantity the NoC pays for in latency and energy.
//
// Three placers are provided, forming the ablation ladder used by the
// locality experiments: Random (the baseline), Greedy (best-first
// insertion next to already-placed traffic partners), and Anneal
// (simulated annealing refinement on top of Greedy). All are
// deterministic given their seed.
//
// For multi-chip builds the grid can additionally be partitioned into a
// tile of physical chips (ChipCoresX x ChipCoresY cores each). The
// objective then gains a boundary term: every unit of traffic whose
// endpoints land on different chips costs an extra BoundaryWeight (λ),
// because chip-to-chip links — not mesh hops — are the scarce resource
// of tiled systems. With λ = 0 the boundary machinery is inert and every
// placer reproduces its untiled assignment bit-identically.
package place

import (
	"fmt"
	"sort"

	"github.com/neurogo/neurogo/internal/rng"
)

// Problem is a placement instance.
type Problem struct {
	// N is the number of groups to place.
	N int
	// Width and Height are the grid dimensions (Width*Height >= N).
	Width, Height int
	// Traffic[i][j] is the expected spike rate from group i to group j
	// (any nonnegative unit; only relative magnitudes matter).
	Traffic [][]float64
	// ChipCoresX and ChipCoresY optionally partition the grid into
	// physical chips of that many cores each (0,0 = untiled). When set,
	// both must be positive and divide Width and Height — the same
	// tiling constraint system.Config enforces at serving time.
	ChipCoresX, ChipCoresY int
	// BoundaryWeight is λ: the extra cost charged per unit of traffic
	// whose endpoints land on different chips. Requires a tiling; zero
	// leaves the objective (and every placer's output) bit-identical to
	// the untiled problem.
	BoundaryWeight float64
	// CrossTraffic, when non-nil, replaces Traffic in the boundary term
	// only: the crossing cost of edge (i,j) is λ·CrossTraffic[i][j]
	// while the hop term keeps using Traffic. This lets callers price
	// some crossings harder than others — e.g. edges whose axonal delay
	// is 1 tick cap the distributed exchange window at 1, so a
	// delay-aware compiler inflates their crossing weight to steer the
	// placement toward windowable tilings. Nil means CrossTraffic ==
	// Traffic and every placer output is bit-identical to before the
	// field existed. Same shape constraints as Traffic.
	CrossTraffic [][]float64
}

// Validate checks the instance shape.
func (p *Problem) Validate() error {
	if p.N < 0 {
		return fmt.Errorf("place: negative N")
	}
	if p.Width <= 0 || p.Height <= 0 {
		return fmt.Errorf("place: grid %dx%d must be positive", p.Width, p.Height)
	}
	if p.Width*p.Height < p.N {
		return fmt.Errorf("place: %d groups exceed %d grid slots", p.N, p.Width*p.Height)
	}
	if (p.ChipCoresX > 0) != (p.ChipCoresY > 0) || p.ChipCoresX < 0 || p.ChipCoresY < 0 {
		return fmt.Errorf("place: chip tile %dx%d must set both dimensions", p.ChipCoresX, p.ChipCoresY)
	}
	if p.ChipCoresX > 0 && (p.Width%p.ChipCoresX != 0 || p.Height%p.ChipCoresY != 0) {
		return fmt.Errorf("place: %dx%d grid does not tile into %dx%d-core chips",
			p.Width, p.Height, p.ChipCoresX, p.ChipCoresY)
	}
	if p.BoundaryWeight < 0 {
		return fmt.Errorf("place: negative boundary weight %g", p.BoundaryWeight)
	}
	if p.BoundaryWeight > 0 && p.ChipCoresX == 0 {
		return fmt.Errorf("place: boundary weight %g needs a chip tiling", p.BoundaryWeight)
	}
	if len(p.Traffic) != p.N {
		return fmt.Errorf("place: traffic matrix has %d rows for %d groups", len(p.Traffic), p.N)
	}
	for i, row := range p.Traffic {
		if len(row) != p.N {
			return fmt.Errorf("place: traffic row %d has %d columns", i, len(row))
		}
		for j, w := range row {
			if w < 0 {
				return fmt.Errorf("place: negative traffic [%d][%d]", i, j)
			}
		}
	}
	if p.CrossTraffic != nil {
		if len(p.CrossTraffic) != p.N {
			return fmt.Errorf("place: cross-traffic matrix has %d rows for %d groups", len(p.CrossTraffic), p.N)
		}
		for i, row := range p.CrossTraffic {
			if len(row) != p.N {
				return fmt.Errorf("place: cross-traffic row %d has %d columns", i, len(row))
			}
			for j, w := range row {
				if w < 0 {
					return fmt.Errorf("place: negative cross-traffic [%d][%d]", i, j)
				}
			}
		}
	}
	return nil
}

// crossMatrix returns the matrix pricing the boundary term: CrossTraffic
// when set, Traffic otherwise.
func (p *Problem) crossMatrix() [][]float64 {
	if p.CrossTraffic != nil {
		return p.CrossTraffic
	}
	return p.Traffic
}

// tiled reports whether the grid is partitioned into physical chips.
func (p *Problem) tiled() bool { return p.ChipCoresX > 0 && p.ChipCoresY > 0 }

// boundaryActive reports whether the placers must price chip crossings.
func (p *Problem) boundaryActive() bool { return p.tiled() && p.BoundaryWeight > 0 }

// chipIndex returns, per grid slot, the physical chip hosting it
// (row-major over the chip tile), or nil for untiled problems. Placers
// precompute it once so the hot loops pay an array load, not divisions.
func (p *Problem) chipIndex() []int {
	if !p.tiled() {
		return nil
	}
	chipsX := p.Width / p.ChipCoresX
	idx := make([]int, p.Width*p.Height)
	for y := 0; y < p.Height; y++ {
		for x := 0; x < p.Width; x++ {
			idx[y*p.Width+x] = (y/p.ChipCoresY)*chipsX + x/p.ChipCoresX
		}
	}
	return idx
}

// Assignment maps each group to a linear grid slot (y*Width + x).
type Assignment []int

// dist returns the Manhattan distance between two slots.
func (p *Problem) dist(s1, s2 int) int {
	x1, y1 := s1%p.Width, s1/p.Width
	x2, y2 := s2%p.Width, s2/p.Width
	dx, dy := x1-x2, y1-y2
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// HopCost returns the traffic-weighted Manhattan distance of a — the
// classic placement objective, excluding any boundary term.
func (p *Problem) HopCost(a Assignment) float64 {
	total := 0.0
	for i := 0; i < p.N; i++ {
		row := p.Traffic[i]
		for j := 0; j < p.N; j++ {
			if w := row[j]; w > 0 {
				total += w * float64(p.dist(a[i], a[j]))
			}
		}
	}
	return total
}

// CrossWeight returns the total traffic weight whose endpoints land on
// different physical chips under a, and the total traffic weight
// overall. Both are zero-safe for untiled problems (cross is 0).
func (p *Problem) CrossWeight(a Assignment) (cross, total float64) {
	chip := p.chipIndex()
	for i := 0; i < p.N; i++ {
		row := p.Traffic[i]
		for j := 0; j < p.N; j++ {
			if w := row[j]; w > 0 {
				total += w
				if chip != nil && chip[a[i]] != chip[a[j]] {
					cross += w
				}
			}
		}
	}
	return cross, total
}

// InterChipFraction returns the fraction of traffic weight crossing
// chip boundaries under a — the compile-time prediction of the measured
// system.InterChipFraction. Zero for untiled problems or no traffic.
func (p *Problem) InterChipFraction(a Assignment) float64 {
	cross, total := p.CrossWeight(a)
	if total == 0 {
		return 0
	}
	return cross / total
}

// CrossCost returns the total crossing weight under a as priced by the
// boundary term — CrossTraffic when set, Traffic otherwise. Zero for
// untiled problems.
func (p *Problem) CrossCost(a Assignment) float64 {
	chip := p.chipIndex()
	if chip == nil {
		return 0
	}
	cm := p.crossMatrix()
	cross := 0.0
	for i := 0; i < p.N; i++ {
		row := cm[i]
		for j := 0; j < p.N; j++ {
			if w := row[j]; w > 0 && chip[a[i]] != chip[a[j]] {
				cross += w
			}
		}
	}
	return cross
}

// Cost returns the combined placement objective: traffic-weighted
// Manhattan distance plus BoundaryWeight per unit of crossing weight
// (CrossTraffic when set, Traffic otherwise). With λ = 0 (or no
// tiling) it equals HopCost exactly.
func (p *Problem) Cost(a Assignment) float64 {
	c := p.HopCost(a)
	if p.boundaryActive() {
		c += p.BoundaryWeight * p.CrossCost(a)
	}
	return c
}

// CheckLegal verifies a is a valid injective slot assignment.
func (p *Problem) CheckLegal(a Assignment) error {
	if len(a) != p.N {
		return fmt.Errorf("place: assignment length %d for %d groups", len(a), p.N)
	}
	seen := make(map[int]int, p.N)
	for g, s := range a {
		if s < 0 || s >= p.Width*p.Height {
			return fmt.Errorf("place: group %d at slot %d outside grid", g, s)
		}
		if prev, dup := seen[s]; dup {
			return fmt.Errorf("place: groups %d and %d share slot %d", prev, g, s)
		}
		seen[s] = g
	}
	return nil
}

// Random places groups uniformly at random (the baseline placer).
func Random(p *Problem, seed uint64) Assignment {
	r := rng.NewSplitMix64(seed)
	perm := r.Perm(p.Width * p.Height)
	a := make(Assignment, p.N)
	copy(a, perm[:p.N])
	return a
}

// adjacency builds symmetric weighted adjacency lists from the traffic
// matrix: adj[i] holds (j, T[i][j]+T[j][i]) for all traffic partners,
// plus the crossing weight cw the boundary term charges for the pair
// (equal to w unless CrossTraffic overrides it).
type halfEdge struct {
	to int
	w  float64
	cw float64
}

func adjacency(p *Problem) [][]halfEdge {
	cm := p.crossMatrix()
	adj := make([][]halfEdge, p.N)
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.N; j++ {
			if i == j {
				continue
			}
			w := p.Traffic[i][j] + p.Traffic[j][i]
			cw := cm[i][j] + cm[j][i]
			if w > 0 || cw > 0 {
				adj[i] = append(adj[i], halfEdge{j, w, cw})
			}
		}
	}
	return adj
}

// spiralOrder returns grid slots ordered by distance from the grid centre
// (ties broken by slot index), so greedy insertion grows a compact blob.
func spiralOrder(w, h int) []int {
	type sd struct {
		slot, d int
	}
	cx, cy := (w-1)/2, (h-1)/2
	all := make([]sd, 0, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx, dy := x-cx, y-cy
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			all = append(all, sd{y*w + x, dx + dy})
		}
	}
	// (d, slot) is a strict total order (slots are unique), so any
	// comparison sort yields the same sequence the old insertion sort
	// did — in O(n log n) instead of O(n²) over the whole grid.
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].slot < all[j].slot
	})
	out := make([]int, len(all))
	for i, e := range all {
		out[i] = e.slot
	}
	return out
}

// placedEdge is one already-placed traffic partner of the group being
// inserted: its slot coordinates, hosting chip (when tiled) and the
// symmetric edge weight.
type placedEdge struct {
	x, y, chip int
	w          float64
	cw         float64
}

// Greedy places the most-connected group at the grid centre, then
// repeatedly takes the unplaced group with the strongest connection to
// the placed set and puts it on the free slot minimising its incremental
// cost: traffic times distance to every placed partner, plus λ times the
// traffic of partners left on a different chip (when the problem tiles).
func Greedy(p *Problem) Assignment {
	if p.N == 0 {
		return Assignment{}
	}
	adj := adjacency(p)
	lambda := p.BoundaryWeight
	var chip []int
	if p.boundaryActive() {
		chip = p.chipIndex()
	}

	// Connection strength to the placed set; -1 marks placed.
	gain := make([]float64, p.N)
	placed := make([]bool, p.N)
	a := make(Assignment, p.N)

	// Total degree picks the seed group.
	seed := 0
	best := -1.0
	for i := 0; i < p.N; i++ {
		t := 0.0
		for _, e := range adj[i] {
			t += e.w
		}
		if t > best {
			best, seed = t, i
		}
	}

	// free holds the still-unused slots in spiral order; placements
	// remove their slot order-preservingly, so the scan below visits
	// exactly the free slots the old full-grid scan would have kept.
	free := spiralOrder(p.Width, p.Height)

	// Per-slot coordinates, precomputed so the insertion scan pays two
	// subtractions per distance instead of div/mod (exact either way).
	xs := make([]int, p.Width*p.Height)
	ys := make([]int, p.Width*p.Height)
	for s := range xs {
		xs[s], ys[s] = s%p.Width, s/p.Width
	}

	placeAt := func(g, freeIdx int) {
		slot := free[freeIdx]
		free = append(free[:freeIdx], free[freeIdx+1:]...)
		a[g] = slot
		placed[g] = true
		for _, e := range adj[g] {
			if !placed[e.to] {
				gain[e.to] += e.w
			}
		}
	}
	placeAt(seed, 0)

	partners := make([]placedEdge, 0, 16)
	for count := 1; count < p.N; count++ {
		// Next group: strongest tie to placed set; fall back to first
		// unplaced (disconnected components).
		g, bestGain := -1, -1.0
		for i := 0; i < p.N; i++ {
			if !placed[i] && gain[i] > bestGain {
				g, bestGain = i, gain[i]
			}
		}
		// Placed partners of g, in adjacency order (so the incremental
		// cost accumulates in the same order the unpruned scan used).
		partners = partners[:0]
		for _, e := range adj[g] {
			if placed[e.to] {
				s := a[e.to]
				pc := 0
				if chip != nil {
					pc = chip[s]
				}
				partners = append(partners, placedEdge{xs[s], ys[s], pc, e.w, e.cw})
			}
		}
		// Best free slot by incremental cost, scanned in spiral order so
		// disconnected groups stay compact. Two prunes keep the scan
		// cheap without changing the selection: partial sums only grow
		// (weights are nonnegative), so a slot is abandoned as soon as
		// it reaches the incumbent cost, and a zero-cost incumbent can
		// never be beaten.
		bestIdx, bestCost := -1, 0.0
		for fi, s := range free {
			c := 0.0
			sx, sy := xs[s], ys[s]
			schip := 0
			if chip != nil {
				schip = chip[s]
			}
			for _, pe := range partners {
				dx, dy := sx-pe.x, sy-pe.y
				if dx < 0 {
					dx = -dx
				}
				if dy < 0 {
					dy = -dy
				}
				c += pe.w * float64(dx+dy)
				if chip != nil && schip != pe.chip {
					c += lambda * pe.cw
				}
				if bestIdx != -1 && c >= bestCost {
					break
				}
			}
			if bestIdx == -1 || c < bestCost {
				bestIdx, bestCost = fi, c
			}
			if bestCost == 0 {
				break
			}
		}
		placeAt(g, bestIdx)
	}
	return a
}

// AnnealOptions tunes the simulated-annealing placer.
type AnnealOptions struct {
	// Iters is the number of proposed moves. Zero means 200*N.
	Iters int
	// T0 is the initial temperature. Zero derives it from the problem.
	T0 float64
	// Cooling is the geometric decay per move. Zero means 0.9995.
	Cooling float64
}

// Anneal refines the Greedy placement with simulated annealing: random
// slot swaps (including moves to free slots), Metropolis acceptance, and
// geometric cooling. Deterministic for a given seed.
//
// Anneal tracks the best assignment seen and returns it, so its result
// never costs more than its Greedy start — late uphill moves accepted
// by the cooling schedule cannot leak into the output.
func Anneal(p *Problem, seed uint64, opt AnnealOptions) Assignment {
	a := Greedy(p)
	if p.N <= 1 {
		return a
	}
	if opt.Iters == 0 {
		opt.Iters = 200 * p.N
	}
	if opt.Cooling == 0 {
		opt.Cooling = 0.9995
	}
	adj := adjacency(p)
	lambda := p.BoundaryWeight
	var chip []int
	if p.boundaryActive() {
		chip = p.chipIndex()
	}

	// slotOwner[s] = group at slot s, or -1.
	slotOwner := make([]int, p.Width*p.Height)
	for i := range slotOwner {
		slotOwner[i] = -1
	}
	for g, s := range a {
		slotOwner[s] = g
	}

	// moveDelta computes the combined-cost change of moving group g to
	// slot s2, excluding any interaction with group `other` (handled by
	// caller during swaps): the hop-distance change plus λ per unit of
	// partner traffic that starts or stops crossing a chip boundary.
	moveDelta := func(g, s2, other int) float64 {
		s1 := a[g]
		d := 0.0
		for _, e := range adj[g] {
			if e.to == other {
				continue
			}
			d += e.w * float64(p.dist(s2, a[e.to])-p.dist(s1, a[e.to]))
			if chip != nil {
				partner := chip[a[e.to]]
				was, now := chip[s1] != partner, chip[s2] != partner
				if was != now {
					if now {
						d += lambda * e.cw
					} else {
						d -= lambda * e.cw
					}
				}
			}
		}
		return d
	}

	cur := p.Cost(a)
	start := append(Assignment(nil), a...)
	startCost := cur
	bestA := append(Assignment(nil), a...)
	bestCost := cur

	t := opt.T0
	if t == 0 {
		t = 1 + cur/float64(p.N*4)
	}
	r := rng.NewSplitMix64(seed)
	nSlots := p.Width * p.Height

	for it := 0; it < opt.Iters; it++ {
		g := r.Intn(p.N)
		s2 := r.Intn(nSlots)
		s1 := a[g]
		if s1 == s2 {
			continue
		}
		o := slotOwner[s2]
		var delta float64
		if o == -1 {
			delta = moveDelta(g, s2, -1)
		} else {
			// Swap: the pairwise g<->o interaction is unchanged — their
			// slots trade places, so both the distance and the crossing
			// indicator are symmetric — and is excluded from both deltas.
			delta = moveDelta(g, s2, o) + moveDelta(o, s1, g)
		}
		accept := delta <= 0
		if !accept && t > 1e-12 {
			// Metropolis: exp(-delta/t) without math.Exp in the hot
			// loop is not worth the obscurity; use the real thing.
			accept = r.Float64() < expNeg(delta/t)
		}
		if accept {
			a[g] = s2
			slotOwner[s1] = -1
			if o != -1 {
				a[o] = s1
				slotOwner[s1] = o
			}
			slotOwner[s2] = g
			cur += delta
			if cur < bestCost {
				bestCost = cur
				copy(bestA, a)
			}
		}
		t *= opt.Cooling
	}
	// cur accumulates incrementally, so float drift could crown a
	// snapshot that an exact re-score puts above the Greedy start;
	// re-check so Cost(Anneal) <= Cost(Greedy) holds unconditionally.
	if p.Cost(bestA) > startCost {
		return start
	}
	return bestA
}

// expNeg returns e^-x for x >= 0 with a cheap clamped series; accuracy is
// irrelevant for Metropolis acceptance, monotonicity is what matters.
func expNeg(x float64) float64 {
	if x > 30 {
		return 0
	}
	// e^-x = 1/e^x via the limit form (1 + x/n)^n with n = 256.
	y := 1 + x/256
	y *= y
	y *= y
	y *= y
	y *= y
	y *= y
	y *= y
	y *= y
	y *= y
	return 1 / y
}
