package place

import (
	"math"
	"testing"

	"github.com/neurogo/neurogo/internal/rng"
)

// chainProblem builds N groups in a line: i talks to i+1 only. Optimal
// placement is a snake with cost N-1.
func chainProblem(n, w, h int) *Problem {
	tr := make([][]float64, n)
	for i := range tr {
		tr[i] = make([]float64, n)
		if i+1 < n {
			tr[i][i+1] = 1
		}
	}
	return &Problem{N: n, Width: w, Height: h, Traffic: tr}
}

// randomProblem builds dense random traffic.
func randomProblem(n, w, h int, seed uint64) *Problem {
	r := rng.NewSplitMix64(seed)
	tr := make([][]float64, n)
	for i := range tr {
		tr[i] = make([]float64, n)
		for j := range tr[i] {
			if i != j && r.Intn(4) == 0 {
				tr[i][j] = float64(1 + r.Intn(10))
			}
		}
	}
	return &Problem{N: n, Width: w, Height: h, Traffic: tr}
}

func TestValidate(t *testing.T) {
	if err := chainProblem(4, 2, 2).Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	bad := []*Problem{
		{N: 5, Width: 2, Height: 2, Traffic: make([][]float64, 5)},
		{N: 1, Width: 0, Height: 2, Traffic: [][]float64{{0}}},
		{N: 2, Width: 2, Height: 2, Traffic: [][]float64{{0, 1}}},
		{N: 2, Width: 2, Height: 2, Traffic: [][]float64{{0, 1}, {-1, 0}}},
		{N: 2, Width: 2, Height: 2, Traffic: [][]float64{{0, 1}, {1, 0, 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestCostHandComputed(t *testing.T) {
	p := chainProblem(3, 3, 1)
	// Groups on slots 0,1,2 in order: cost = 1 + 1 = 2.
	if c := p.Cost(Assignment{0, 1, 2}); c != 2 {
		t.Errorf("cost = %g, want 2", c)
	}
	// Reverse order is symmetric.
	if c := p.Cost(Assignment{2, 1, 0}); c != 2 {
		t.Errorf("reversed cost = %g, want 2", c)
	}
	// Spread: 0 at slot 0, 1 at slot 2, 2 at slot 1: d(0,2)=2, d(2,1)=1.
	if c := p.Cost(Assignment{0, 2, 1}); c != 3 {
		t.Errorf("spread cost = %g, want 3", c)
	}
}

func TestCheckLegal(t *testing.T) {
	p := chainProblem(3, 2, 2)
	if err := p.CheckLegal(Assignment{0, 1, 2}); err != nil {
		t.Errorf("legal assignment rejected: %v", err)
	}
	for name, a := range map[string]Assignment{
		"short":     {0, 1},
		"collision": {1, 1, 2},
		"oob":       {0, 1, 4},
		"negative":  {0, -1, 2},
	} {
		if err := p.CheckLegal(a); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRandomLegalAndDeterministic(t *testing.T) {
	p := randomProblem(12, 4, 4, 1)
	a1 := Random(p, 7)
	a2 := Random(p, 7)
	if err := p.CheckLegal(a1); err != nil {
		t.Fatalf("random produced illegal assignment: %v", err)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("Random not deterministic for fixed seed")
		}
	}
	a3 := Random(p, 8)
	same := true
	for i := range a1 {
		if a1[i] != a3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical assignment (suspicious)")
	}
}

func TestGreedyLegal(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		p := randomProblem(n, 4, 4, uint64(n))
		a := Greedy(p)
		if err := p.CheckLegal(a); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestGreedyEmptyProblem(t *testing.T) {
	p := &Problem{N: 0, Width: 2, Height: 2, Traffic: nil}
	if a := Greedy(p); len(a) != 0 {
		t.Fatal("empty problem must yield empty assignment")
	}
}

func TestGreedyOptimalOnChain(t *testing.T) {
	// A 4-chain on a 2x2 grid: every adjacent-pair placement has cost 3
	// or more; the optimal snake has cost 3.
	p := chainProblem(4, 2, 2)
	a := Greedy(p)
	if err := p.CheckLegal(a); err != nil {
		t.Fatal(err)
	}
	if c := p.Cost(a); c != 3 {
		t.Errorf("greedy chain cost = %g, want optimal 3", c)
	}
}

func TestGreedyBeatsRandomOnStructure(t *testing.T) {
	p := chainProblem(36, 6, 6)
	greedy := p.Cost(Greedy(p))
	worse := 0
	for seed := uint64(0); seed < 10; seed++ {
		if p.Cost(Random(p, seed)) > greedy {
			worse++
		}
	}
	if worse < 8 {
		t.Errorf("greedy (%g) beat only %d/10 random placements on a chain", greedy, worse)
	}
}

func TestAnnealLegalAndNoWorseThanGreedy(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		p := randomProblem(24, 6, 6, seed)
		g := Greedy(p)
		an := Anneal(p, seed, AnnealOptions{Iters: 5000})
		if err := p.CheckLegal(an); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Annealing starts from greedy; it may accept uphill moves but
		// with cooling it must land within a modest factor.
		if p.Cost(an) > p.Cost(g)*1.25 {
			t.Errorf("seed %d: anneal cost %g much worse than greedy %g", seed, p.Cost(an), p.Cost(g))
		}
	}
}

func TestAnnealImprovesBadStart(t *testing.T) {
	// On a strongly structured instance annealing should find most of
	// the locality that random placement destroys.
	p := chainProblem(25, 5, 5)
	rnd := p.Cost(Random(p, 3))
	an := p.Cost(Anneal(p, 3, AnnealOptions{Iters: 30000}))
	if an >= rnd {
		t.Errorf("anneal (%g) failed to improve on random (%g)", an, rnd)
	}
}

func TestAnnealDeterministic(t *testing.T) {
	p := randomProblem(16, 4, 4, 9)
	a1 := Anneal(p, 42, AnnealOptions{Iters: 2000})
	a2 := Anneal(p, 42, AnnealOptions{Iters: 2000})
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("Anneal not deterministic for fixed seed")
		}
	}
}

func TestAnnealSingleGroup(t *testing.T) {
	p := &Problem{N: 1, Width: 2, Height: 2, Traffic: [][]float64{{0}}}
	a := Anneal(p, 1, AnnealOptions{})
	if err := p.CheckLegal(a); err != nil {
		t.Fatal(err)
	}
}

func TestExpNegMonotone(t *testing.T) {
	prev := 1.0
	for x := 0.0; x < 40; x += 0.5 {
		v := expNeg(x)
		if v > prev {
			t.Fatalf("expNeg not monotone at %g", x)
		}
		if v < 0 || v > 1 {
			t.Fatalf("expNeg(%g) = %g outside [0,1]", x, v)
		}
		prev = v
	}
	if math.Abs(expNeg(1)-math.Exp(-1)) > 0.01 {
		t.Errorf("expNeg(1) = %g, want ~%g", expNeg(1), math.Exp(-1))
	}
}

func TestSpiralOrderCoversGrid(t *testing.T) {
	s := spiralOrder(4, 3)
	if len(s) != 12 {
		t.Fatalf("spiral covers %d slots, want 12", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 12 || seen[v] {
			t.Fatalf("spiral order invalid: %v", s)
		}
		seen[v] = true
	}
	// First slot is the centre-ish cell.
	if s[0] != 1*4+1 {
		t.Errorf("spiral starts at %d, want centre 5", s[0])
	}
}

func BenchmarkGreedy64(b *testing.B) {
	p := randomProblem(64, 8, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(p)
	}
}

func BenchmarkAnneal64(b *testing.B) {
	p := randomProblem(64, 8, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Anneal(p, uint64(i), AnnealOptions{Iters: 2000})
	}
}
