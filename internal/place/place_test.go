package place

import (
	"math"
	"sort"
	"testing"

	"github.com/neurogo/neurogo/internal/rng"
)

// chainProblem builds N groups in a line: i talks to i+1 only. Optimal
// placement is a snake with cost N-1.
func chainProblem(n, w, h int) *Problem {
	tr := make([][]float64, n)
	for i := range tr {
		tr[i] = make([]float64, n)
		if i+1 < n {
			tr[i][i+1] = 1
		}
	}
	return &Problem{N: n, Width: w, Height: h, Traffic: tr}
}

// randomProblem builds dense random traffic.
func randomProblem(n, w, h int, seed uint64) *Problem {
	r := rng.NewSplitMix64(seed)
	tr := make([][]float64, n)
	for i := range tr {
		tr[i] = make([]float64, n)
		for j := range tr[i] {
			if i != j && r.Intn(4) == 0 {
				tr[i][j] = float64(1 + r.Intn(10))
			}
		}
	}
	return &Problem{N: n, Width: w, Height: h, Traffic: tr}
}

func TestValidate(t *testing.T) {
	if err := chainProblem(4, 2, 2).Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	bad := []*Problem{
		{N: 5, Width: 2, Height: 2, Traffic: make([][]float64, 5)},
		{N: 1, Width: 0, Height: 2, Traffic: [][]float64{{0}}},
		{N: 2, Width: 2, Height: 2, Traffic: [][]float64{{0, 1}}},
		{N: 2, Width: 2, Height: 2, Traffic: [][]float64{{0, 1}, {-1, 0}}},
		{N: 2, Width: 2, Height: 2, Traffic: [][]float64{{0, 1}, {1, 0, 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestCostHandComputed(t *testing.T) {
	p := chainProblem(3, 3, 1)
	// Groups on slots 0,1,2 in order: cost = 1 + 1 = 2.
	if c := p.Cost(Assignment{0, 1, 2}); c != 2 {
		t.Errorf("cost = %g, want 2", c)
	}
	// Reverse order is symmetric.
	if c := p.Cost(Assignment{2, 1, 0}); c != 2 {
		t.Errorf("reversed cost = %g, want 2", c)
	}
	// Spread: 0 at slot 0, 1 at slot 2, 2 at slot 1: d(0,2)=2, d(2,1)=1.
	if c := p.Cost(Assignment{0, 2, 1}); c != 3 {
		t.Errorf("spread cost = %g, want 3", c)
	}
}

func TestCheckLegal(t *testing.T) {
	p := chainProblem(3, 2, 2)
	if err := p.CheckLegal(Assignment{0, 1, 2}); err != nil {
		t.Errorf("legal assignment rejected: %v", err)
	}
	for name, a := range map[string]Assignment{
		"short":     {0, 1},
		"collision": {1, 1, 2},
		"oob":       {0, 1, 4},
		"negative":  {0, -1, 2},
	} {
		if err := p.CheckLegal(a); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRandomLegalAndDeterministic(t *testing.T) {
	p := randomProblem(12, 4, 4, 1)
	a1 := Random(p, 7)
	a2 := Random(p, 7)
	if err := p.CheckLegal(a1); err != nil {
		t.Fatalf("random produced illegal assignment: %v", err)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("Random not deterministic for fixed seed")
		}
	}
	a3 := Random(p, 8)
	same := true
	for i := range a1 {
		if a1[i] != a3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical assignment (suspicious)")
	}
}

func TestGreedyLegal(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		p := randomProblem(n, 4, 4, uint64(n))
		a := Greedy(p)
		if err := p.CheckLegal(a); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestGreedyEmptyProblem(t *testing.T) {
	p := &Problem{N: 0, Width: 2, Height: 2, Traffic: nil}
	if a := Greedy(p); len(a) != 0 {
		t.Fatal("empty problem must yield empty assignment")
	}
}

func TestGreedyOptimalOnChain(t *testing.T) {
	// A 4-chain on a 2x2 grid: every adjacent-pair placement has cost 3
	// or more; the optimal snake has cost 3.
	p := chainProblem(4, 2, 2)
	a := Greedy(p)
	if err := p.CheckLegal(a); err != nil {
		t.Fatal(err)
	}
	if c := p.Cost(a); c != 3 {
		t.Errorf("greedy chain cost = %g, want optimal 3", c)
	}
}

func TestGreedyBeatsRandomOnStructure(t *testing.T) {
	p := chainProblem(36, 6, 6)
	greedy := p.Cost(Greedy(p))
	worse := 0
	for seed := uint64(0); seed < 10; seed++ {
		if p.Cost(Random(p, seed)) > greedy {
			worse++
		}
	}
	if worse < 8 {
		t.Errorf("greedy (%g) beat only %d/10 random placements on a chain", greedy, worse)
	}
}

func TestAnnealLegalAndNoWorseThanGreedy(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		p := randomProblem(24, 6, 6, seed)
		g := Greedy(p)
		an := Anneal(p, seed, AnnealOptions{Iters: 5000})
		if err := p.CheckLegal(an); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Annealing starts from greedy; it may accept uphill moves but
		// with cooling it must land within a modest factor.
		if p.Cost(an) > p.Cost(g)*1.25 {
			t.Errorf("seed %d: anneal cost %g much worse than greedy %g", seed, p.Cost(an), p.Cost(g))
		}
	}
}

// TestAnnealReturnsBestSeen is the regression test for the best-so-far
// bug: Anneal used to return the *last accepted* assignment, so a late
// Metropolis uphill move could ship a placement worse than its own
// Greedy start. It must now hold Cost(Anneal) <= Cost(Greedy) for every
// seed and iteration budget, including hot short runs where the uphill
// acceptance rate is highest.
func TestAnnealReturnsBestSeen(t *testing.T) {
	for _, n := range []int{8, 24, 36} {
		for seed := uint64(0); seed < 8; seed++ {
			p := randomProblem(n, 6, 6, seed+100)
			greedy := p.Cost(Greedy(p))
			for _, opt := range []AnnealOptions{
				{Iters: 50, T0: 100}, // hot and short: mostly uphill moves
				{Iters: 500, T0: 10}, // cooling mid-run
				{Iters: 4000},        // the default schedule
			} {
				an := Anneal(p, seed, opt)
				if err := p.CheckLegal(an); err != nil {
					t.Fatalf("n=%d seed=%d: %v", n, seed, err)
				}
				if c := p.Cost(an); c > greedy {
					t.Errorf("n=%d seed=%d opts=%+v: anneal %g worse than greedy start %g",
						n, seed, opt, c, greedy)
				}
			}
		}
	}
}

// TestPlacerQualityLadder pins the monotone quality invariant on seeded
// instances: Cost(Anneal) <= Cost(Greedy) <= median Cost(Random), with
// every placer output legal.
func TestPlacerQualityLadder(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		p := randomProblem(30, 6, 6, seed)
		g := Greedy(p)
		an := Anneal(p, seed, AnnealOptions{Iters: 8000})
		rnd := make([]float64, 0, 11)
		for rs := uint64(0); rs < 11; rs++ {
			ra := Random(p, rs)
			if err := p.CheckLegal(ra); err != nil {
				t.Fatalf("seed %d random %d: %v", seed, rs, err)
			}
			rnd = append(rnd, p.Cost(ra))
		}
		sort.Float64s(rnd)
		median := rnd[len(rnd)/2]
		for name, a := range map[string]Assignment{"greedy": g, "anneal": an} {
			if err := p.CheckLegal(a); err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
		}
		if p.Cost(an) > p.Cost(g) {
			t.Errorf("seed %d: anneal %g > greedy %g", seed, p.Cost(an), p.Cost(g))
		}
		if p.Cost(g) > median {
			t.Errorf("seed %d: greedy %g > median random %g", seed, p.Cost(g), median)
		}
	}
}

func TestAnnealImprovesBadStart(t *testing.T) {
	// On a strongly structured instance annealing should find most of
	// the locality that random placement destroys.
	p := chainProblem(25, 5, 5)
	rnd := p.Cost(Random(p, 3))
	an := p.Cost(Anneal(p, 3, AnnealOptions{Iters: 30000}))
	if an >= rnd {
		t.Errorf("anneal (%g) failed to improve on random (%g)", an, rnd)
	}
}

func TestAnnealDeterministic(t *testing.T) {
	p := randomProblem(16, 4, 4, 9)
	a1 := Anneal(p, 42, AnnealOptions{Iters: 2000})
	a2 := Anneal(p, 42, AnnealOptions{Iters: 2000})
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("Anneal not deterministic for fixed seed")
		}
	}
}

func TestAnnealSingleGroup(t *testing.T) {
	p := &Problem{N: 1, Width: 2, Height: 2, Traffic: [][]float64{{0}}}
	a := Anneal(p, 1, AnnealOptions{})
	if err := p.CheckLegal(a); err != nil {
		t.Fatal(err)
	}
}

func TestExpNegMonotone(t *testing.T) {
	prev := 1.0
	for x := 0.0; x < 40; x += 0.5 {
		v := expNeg(x)
		if v > prev {
			t.Fatalf("expNeg not monotone at %g", x)
		}
		if v < 0 || v > 1 {
			t.Fatalf("expNeg(%g) = %g outside [0,1]", x, v)
		}
		prev = v
	}
	if math.Abs(expNeg(1)-math.Exp(-1)) > 0.01 {
		t.Errorf("expNeg(1) = %g, want ~%g", expNeg(1), math.Exp(-1))
	}
}

func TestSpiralOrderCoversGrid(t *testing.T) {
	s := spiralOrder(4, 3)
	if len(s) != 12 {
		t.Fatalf("spiral covers %d slots, want 12", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 12 || seen[v] {
			t.Fatalf("spiral order invalid: %v", s)
		}
		seen[v] = true
	}
	// First slot is the centre-ish cell.
	if s[0] != 1*4+1 {
		t.Errorf("spiral starts at %d, want centre 5", s[0])
	}
}

// boundaryProblem tiles the given grid into chips and sets λ.
func boundaryProblem(p *Problem, chipX, chipY int, lambda float64) *Problem {
	q := *p
	q.ChipCoresX, q.ChipCoresY = chipX, chipY
	q.BoundaryWeight = lambda
	return &q
}

func TestBoundaryValidate(t *testing.T) {
	base := chainProblem(4, 4, 2)
	if err := boundaryProblem(base, 2, 2, 1).Validate(); err != nil {
		t.Fatalf("valid tiled problem rejected: %v", err)
	}
	if err := boundaryProblem(base, 2, 2, 0).Validate(); err != nil {
		t.Fatalf("tiled problem with λ=0 rejected: %v", err)
	}
	bad := map[string]*Problem{
		"one chip dim":        boundaryProblem(base, 2, 0, 0),
		"negative chip dim":   boundaryProblem(base, -2, 2, 0),
		"non-tiling chips":    boundaryProblem(base, 3, 2, 1),
		"negative lambda":     boundaryProblem(base, 2, 2, -1),
		"lambda without tile": boundaryProblem(base, 0, 0, 1),
	}
	for name, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBoundaryCostHandComputed(t *testing.T) {
	// 3-chain on a 4x1 grid of two 2x1-core chips: slots {0,1} are chip
	// 0, {2,3} chip 1.
	p := boundaryProblem(chainProblem(3, 4, 1), 2, 1, 10)
	// 0,1,2 in a row: edge 0-1 stays on chip 0, edge 1-2 crosses.
	a := Assignment{0, 1, 2}
	if c := p.HopCost(a); c != 2 {
		t.Errorf("hop cost = %g, want 2", c)
	}
	if cross, total := p.CrossWeight(a); cross != 1 || total != 2 {
		t.Errorf("cross/total = %g/%g, want 1/2", cross, total)
	}
	if f := p.InterChipFraction(a); f != 0.5 {
		t.Errorf("fraction = %g, want 0.5", f)
	}
	if c := p.Cost(a); c != 2+10*1 {
		t.Errorf("combined cost = %g, want 12", c)
	}
	// All of the chain on chip 0's two slots is impossible (3 groups),
	// but 0,1 on chip 0 and 2 on chip 1 is what we priced above; pushing
	// the whole chain onto chip 1's pair plus slot 1 flips the crossing
	// to edge 0-1.
	if cross, _ := p.CrossWeight(Assignment{1, 2, 3}); cross != 1 {
		t.Errorf("cross = %g, want 1", cross)
	}
	// Untiled problems never cross.
	if f := chainProblem(3, 4, 1).InterChipFraction(a); f != 0 {
		t.Errorf("untiled fraction = %g, want 0", f)
	}
}

// TestLambdaZeroBitIdentical is the compatibility contract: recording a
// tiling with λ = 0 must reproduce the untiled assignments of every
// placer bit-identically — the boundary machinery is pay-for-use.
func TestLambdaZeroBitIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		plain := randomProblem(24, 6, 6, seed)
		tiled := boundaryProblem(plain, 3, 3, 0)
		for name, pair := range map[string][2]Assignment{
			"random": {Random(plain, seed), Random(tiled, seed)},
			"greedy": {Greedy(plain), Greedy(tiled)},
			"anneal": {
				Anneal(plain, seed, AnnealOptions{Iters: 3000}),
				Anneal(tiled, seed, AnnealOptions{Iters: 3000}),
			},
		} {
			for g := range pair[0] {
				if pair[0][g] != pair[1][g] {
					t.Fatalf("seed %d %s: λ=0 tiling moved group %d (%d -> %d)",
						seed, name, g, pair[0][g], pair[1][g])
				}
			}
		}
	}
}

// TestGreedyBoundaryAware pins the objective on a hand-analysable
// instance: a 4-chain on a 4x2 grid of two 2x2-core chips. Hop cost has
// crossing and non-crossing optima; λ = 0 greedy happens to pick a
// crossing one (the blindness E2 documents), λ > 0 must keep the chain
// on one chip.
func TestGreedyBoundaryAware(t *testing.T) {
	blind := boundaryProblem(chainProblem(4, 4, 2), 2, 2, 0)
	aware := boundaryProblem(chainProblem(4, 4, 2), 2, 2, 4)
	ab, aa := Greedy(blind), Greedy(aware)
	if err := blind.CheckLegal(ab); err != nil {
		t.Fatal(err)
	}
	if err := aware.CheckLegal(aa); err != nil {
		t.Fatal(err)
	}
	if f := blind.InterChipFraction(ab); f == 0 {
		t.Skip("λ=0 greedy found a crossing-free optimum; instance no longer discriminates")
	}
	if f := aware.InterChipFraction(aa); f != 0 {
		t.Errorf("boundary-aware greedy crossed chips: fraction %g, assignment %v", f, aa)
	}
	// The crossing-free placement must not give up hop optimality here:
	// a 4-chain fits a 2x2 chip as a snake of cost 3.
	if c := aware.HopCost(aa); c != 3 {
		t.Errorf("boundary-aware greedy hop cost = %g, want 3", c)
	}
}

// TestAnnealBoundaryAware drives annealing with a boundary term on
// structured instances and checks it strictly reduces the predicted
// inter-chip fraction vs the λ=0 placement while staying legal and
// never worse than its own greedy start on the combined objective.
func TestAnnealBoundaryAware(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		blind := boundaryProblem(randomProblem(16, 6, 6, seed), 3, 3, 0)
		aware := boundaryProblem(randomProblem(16, 6, 6, seed), 3, 3, 6)
		ab := Anneal(blind, seed, AnnealOptions{Iters: 20000})
		aa := Anneal(aware, seed, AnnealOptions{Iters: 20000})
		if err := aware.CheckLegal(aa); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if aware.Cost(aa) > aware.Cost(Greedy(aware)) {
			t.Errorf("seed %d: aware anneal worse than aware greedy", seed)
		}
		fb, fa := blind.InterChipFraction(ab), aware.InterChipFraction(aa)
		if fa > fb {
			t.Errorf("seed %d: λ=6 fraction %g above λ=0 fraction %g", seed, fa, fb)
		}
	}
}

func BenchmarkGreedy64(b *testing.B) {
	p := randomProblem(64, 8, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(p)
	}
}

func BenchmarkAnneal64(b *testing.B) {
	p := randomProblem(64, 8, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Anneal(p, uint64(i), AnnealOptions{Iters: 2000})
	}
}

// BenchmarkPlaceGreedy pins the spiral-order sort and pruned-scan win
// on a production-scale grid: 512 groups over the full 64x64-core chip
// (4096 slots — the grid where the old O(n²) insertion sort and
// full-grid rescans dominated).
func BenchmarkPlaceGreedy(b *testing.B) {
	p := randomProblem(512, 64, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(p)
	}
}

// BenchmarkPlaceGreedyBoundary is the same instance with the boundary
// term active (2x2 chips of 32x32 cores), pinning the overhead of
// pricing crossings in the insertion scan.
func BenchmarkPlaceGreedyBoundary(b *testing.B) {
	p := boundaryProblem(randomProblem(512, 64, 64, 1), 32, 32, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(p)
	}
}
