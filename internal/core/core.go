// Package core implements the neurosynaptic core: 256 input axons feeding
// 256 digital neurons through a binary crossbar, with a 16-slot axon delay
// ring and a per-core hardware-style LFSR.
//
// A core is a pure state machine. Each call to Tick:
//
//  1. drains the delay-ring slot for the current tick, collecting the set
//     of axons that receive a spike now;
//  2. integrates each arrived spike into every connected neuron, in
//     ascending (axon, neuron) order — the order in which stochastic
//     synapse draws consume the LFSR;
//  3. applies leak and threshold to every *active* neuron (ascending
//     order), emitting output spikes through a caller-supplied function.
//
// "Active" is an exact optimisation, not an approximation: a neuron is
// skipped only when doing so provably has no observable effect — its
// membrane potential is zero, it has no leak, no stochastic mode, and it
// received no input this tick. Such a neuron's update would leave V at
// zero, fire nothing and consume no LFSR draws, so skipping it preserves
// bit-level equivalence with the dense evaluation the hardware performs.
//
// New additionally precompiles a per-core integration plan (see plan.go)
// that serves deterministic neurons through column-major batch
// accumulation and a flat leak/fire sweep, bit-identically to the scalar
// path; NewScalar opts out for A/B debugging.
package core

import (
	"fmt"
	"math/bits"
	"sync"

	"github.com/neurogo/neurogo/internal/crossbar"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/rng"
)

// Size is the number of axons and neurons in a core.
const Size = crossbar.Size

// RingSlots is the depth of the axon delay ring; axonal delays are 1..15
// ticks, so 16 slots suffice.
const RingSlots = 16

// ExternalCore is the Target.Core value meaning "leave the chip": spikes
// from such neurons are handed to the simulator's output port rather than
// routed to another core.
const ExternalCore = -1

// Target identifies where a neuron's output spikes are delivered: one
// axon on one core, after the neuron's axonal delay. A neuron has exactly
// one target (the hardware constraint that makes fan-out explicit).
type Target struct {
	// Core is the global linear index of the destination core, or
	// ExternalCore for an off-chip output.
	Core int32
	// Axon is the destination axon index on the target core.
	Axon uint8
}

// Config is the complete static configuration of one core.
type Config struct {
	// AxonType tags each input axon with one of the four types.
	AxonType [Size]neuron.AxonType
	// Synapses is the binary crossbar.
	Synapses crossbar.Matrix
	// Neurons holds the 256 neuron parameter blocks.
	Neurons [Size]neuron.Params
	// Targets holds each neuron's output destination. Neurons that never
	// fire (or whose spikes should be dropped) may use ExternalCore.
	Targets [Size]Target
	// Seed seeds the core's LFSR.
	Seed uint16

	// The integration plan is derived purely from the fields above,
	// which are immutable once a core runs, so it is built once per
	// Config and shared by every Core over it (session pools build many
	// chips from one compiled mapping). Configs must therefore not be
	// copied by value after first use.
	planOnce sync.Once
	plan     *planTables
}

// NewConfig returns a config with every neuron set to neuron.Default and
// all targets external. The crossbar starts empty.
func NewConfig() *Config {
	c := &Config{}
	for i := range c.Neurons {
		c.Neurons[i] = neuron.Default()
		c.Targets[i] = Target{Core: ExternalCore}
	}
	return c
}

// Validate checks every neuron parameter block and target.
func (c *Config) Validate() error {
	for i := range c.Neurons {
		if err := c.Neurons[i].Validate(); err != nil {
			return fmt.Errorf("core: neuron %d: %w", i, err)
		}
	}
	for i, tgt := range c.Targets {
		if tgt.Core < ExternalCore {
			return fmt.Errorf("core: neuron %d target core %d invalid", i, tgt.Core)
		}
	}
	return nil
}

// Counters aggregates the activity statistics the energy model consumes.
type Counters struct {
	// SynapticEvents counts crossbar integrations (one per arrived spike
	// per connected neuron) — the dominant term in active energy.
	SynapticEvents uint64
	// AxonEvents counts arrived input spikes (one SRAM row read each).
	AxonEvents uint64
	// NeuronUpdates counts leak-and-fire evaluations actually performed.
	NeuronUpdates uint64
	// Spikes counts output spikes emitted.
	Spikes uint64
	// Ticks counts Tick calls.
	Ticks uint64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.SynapticEvents += other.SynapticEvents
	c.AxonEvents += other.AxonEvents
	c.NeuronUpdates += other.NeuronUpdates
	c.Spikes += other.Spikes
	c.Ticks += other.Ticks
}

// EmitFunc receives each output spike: the emitting neuron index, its
// target, and the delay ticks to add before delivery.
type EmitFunc func(n int, tgt Target, delay uint8)

// Core is the runtime state of one neurosynaptic core.
type Core struct {
	cfg  *Config
	v    [Size]int32
	lfsr *rng.LFSR

	// ring[slot] is the bitset of axons receiving a spike at tick
	// (tick mod RingSlots) == slot.
	ring [RingSlots]crossbar.Row

	// alwaysActive marks neurons that must be evaluated every tick
	// because their update has side effects even at rest: nonzero or
	// stochastic leak, or a stochastic threshold.
	alwaysActive crossbar.Row
	// vNonzero tracks neurons with V != 0.
	vNonzero crossbar.Row

	// pt is the precompiled integration plan (nil on scalar cores); acc
	// is its per-tick column accumulator (all-zero between ticks); vHot
	// marks neurons whose potential is close enough to a rail that
	// batched accumulation could saturate differently from per-event
	// integration — they take the exact path for the tick (see plan.go).
	pt   *planTables
	acc  [Size]int32
	vHot crossbar.Row

	counters Counters
}

// New builds a core from cfg, precompiling its integration plan. The
// config is retained by reference and must not be mutated while the
// core runs.
func New(cfg *Config) *Core {
	c := newCore(cfg)
	c.pt = planFor(cfg)
	return c
}

// NewScalar builds a core pinned to the legacy scalar integration path,
// with no precompiled plan — the A/B debugging escape hatch behind
// cmd/nsim -noplan. Output is bit-identical to New; only throughput
// differs.
func NewScalar(cfg *Config) *Core { return newCore(cfg) }

func newCore(cfg *Config) *Core {
	c := &Core{cfg: cfg, lfsr: rng.NewLFSR(cfg.Seed)}
	for n := range cfg.Neurons {
		p := &cfg.Neurons[n]
		if p.Leak != 0 || p.LeakStochastic || p.MaskBits > 0 {
			c.alwaysActive[n/64] |= 1 << uint(n%64)
		}
	}
	return c
}

// Planned reports whether the core runs the precompiled plan path.
func (c *Core) Planned() bool { return c.pt != nil }

// Config returns the core's configuration.
func (c *Core) Config() *Config { return c.cfg }

// Reset returns the core to its power-on state: membrane potentials to
// zero, the delay ring emptied and the LFSR re-seeded from the config.
// Activity counters are preserved (use ResetCounters to clear them), so
// cumulative energy accounting survives session reuse. After Reset the
// core is bit-identical to a freshly constructed New(cfg).
func (c *Core) Reset() {
	c.v = [Size]int32{}
	c.vNonzero = crossbar.Row{}
	c.vHot = crossbar.Row{}
	c.acc = [Size]int32{}
	c.ring = [RingSlots]crossbar.Row{}
	c.lfsr = rng.NewLFSR(c.cfg.Seed)
}

// Counters returns a copy of the activity counters.
func (c *Core) Counters() Counters { return c.counters }

// ResetCounters zeroes the activity counters.
func (c *Core) ResetCounters() { c.counters = Counters{} }

// checkNeuron panics on an out-of-range neuron index, mirroring
// ScheduleAxon's guard for axons.
func checkNeuron(n int) {
	if n < 0 || n >= Size {
		panic(fmt.Sprintf("core: neuron %d out of range", n))
	}
}

// V returns neuron n's membrane potential (for probes and tests).
func (c *Core) V(n int) int32 {
	checkNeuron(n)
	return c.v[n]
}

// SetV sets neuron n's membrane potential (for tests and checkpoints).
func (c *Core) SetV(n int, v int32) {
	checkNeuron(n)
	c.v[n] = v
	c.setNonzero(n, v)
}

// LFSRState exposes the PRNG state for checkpointing.
func (c *Core) LFSRState() uint16 { return c.lfsr.State() }

// setNonzero refreshes the derived activity masks for neuron n after its
// potential becomes v: the nonzero tracker and, on planned cores, the
// rail-proximity (hot) bit the saturation guard reads at the next tick.
func (c *Core) setNonzero(n int, v int32) {
	w, b := n/64, uint(n%64)
	if v != 0 {
		c.vNonzero[w] |= 1 << b
	} else {
		c.vNonzero[w] &^= 1 << b
	}
	if c.pt != nil {
		if v > c.pt.hotHi[n] || v < c.pt.hotLo[n] {
			c.vHot[w] |= 1 << b
		} else {
			c.vHot[w] &^= 1 << b
		}
	}
}

// ScheduleAxon schedules a spike on axon a to be seen by Tick(t) where
// t mod RingSlots == slot. Chips compute slot from arrival tick.
func (c *Core) ScheduleAxon(a int, slot int) {
	if a < 0 || a >= Size {
		panic(fmt.Sprintf("core: axon %d out of range", a))
	}
	c.ring[slot&(RingSlots-1)][a/64] |= 1 << uint(a%64)
}

// PendingAxons reports how many axon spikes are waiting in the delay ring
// (for probes and back-pressure diagnostics).
func (c *Core) PendingAxons() int {
	total := 0
	for s := range c.ring {
		for _, w := range c.ring[s] {
			total += bits.OnesCount64(w)
		}
	}
	return total
}

// HasWork reports whether Tick(t) would process any input spikes or any
// always-active/charged neurons. Engines use it to skip idle cores; the
// skip is exact for the same reason neuron skipping is.
func (c *Core) HasWork(t int64) bool {
	slot := int(t) & (RingSlots - 1)
	for w := 0; w < crossbar.Words; w++ {
		if c.ring[slot][w] != 0 || c.alwaysActive[w] != 0 || c.vNonzero[w] != 0 {
			return true
		}
	}
	return false
}

// Tick advances the core one time step. t is the global tick number; emit
// receives every output spike (may be nil to drop them). Planned cores
// (New) run the precompiled column-major path; scalar cores (NewScalar)
// run the legacy per-event loop. Both are bit-identical.
func (c *Core) Tick(t int64, emit EmitFunc) {
	if c.pt != nil {
		c.tickPlan(t, emit)
		return
	}
	c.tickScalar(t, emit)
}

// tickScalar is the legacy per-event evaluation: every synaptic event
// goes through neuron.Integrate against the AoS Params block.
func (c *Core) tickScalar(t int64, emit EmitFunc) {
	c.counters.Ticks++
	slot := int(t) & (RingSlots - 1)
	arrived := c.ring[slot]
	c.ring[slot] = crossbar.Row{}

	// Phase 1: synaptic integration, ascending (axon, neuron) order.
	// touched marks neurons that received input this tick.
	var touched crossbar.Row
	for w := 0; w < crossbar.Words; w++ {
		word := arrived[w]
		base := w * 64
		for word != 0 {
			a := base + bits.TrailingZeros64(word)
			word &= word - 1
			c.counters.AxonEvents++
			g := c.cfg.AxonType[a]
			row := c.cfg.Synapses.Row(a)
			for rw := 0; rw < crossbar.Words; rw++ {
				rword := row[rw]
				rbase := rw * 64
				touched[rw] |= rword
				for rword != 0 {
					n := rbase + bits.TrailingZeros64(rword)
					rword &= rword - 1
					c.v[n] = neuron.Integrate(c.v[n], &c.cfg.Neurons[n], g, c.lfsr)
					c.counters.SynapticEvents++
				}
			}
		}
	}

	// Phase 2: leak and fire for every active neuron.
	for w := 0; w < crossbar.Words; w++ {
		word := touched[w] | c.alwaysActive[w] | c.vNonzero[w]
		base := w * 64
		for word != 0 {
			n := base + bits.TrailingZeros64(word)
			word &= word - 1
			p := &c.cfg.Neurons[n]
			nv, spiked := neuron.LeakFire(c.v[n], p, c.lfsr)
			c.v[n] = nv
			c.setNonzero(n, nv)
			c.counters.NeuronUpdates++
			if spiked {
				c.counters.Spikes++
				if emit != nil {
					emit(n, c.cfg.Targets[n], p.Delay)
				}
			}
		}
	}
}

// TickDense advances the core one time step evaluating every neuron and,
// for every arrived spike, scanning all 256 crossbar columns. It is the
// clock-driven baseline used for engine comparisons; given identical
// state it produces identical results to Tick (the LFSR draw schedule is
// unchanged because unconnected synapses and resting deterministic
// neurons never draw).
func (c *Core) TickDense(t int64, emit EmitFunc) {
	c.counters.Ticks++
	slot := int(t) & (RingSlots - 1)
	arrived := c.ring[slot]
	c.ring[slot] = crossbar.Row{}

	for a := 0; a < Size; a++ {
		if arrived[a/64]>>(uint(a%64))&1 == 0 {
			continue
		}
		c.counters.AxonEvents++
		g := c.cfg.AxonType[a]
		for n := 0; n < Size; n++ {
			if !c.cfg.Synapses.Get(a, n) {
				continue
			}
			c.v[n] = neuron.Integrate(c.v[n], &c.cfg.Neurons[n], g, c.lfsr)
			c.counters.SynapticEvents++
		}
	}

	for n := 0; n < Size; n++ {
		p := &c.cfg.Neurons[n]
		nv, spiked := neuron.LeakFire(c.v[n], p, c.lfsr)
		c.v[n] = nv
		c.setNonzero(n, nv)
		c.counters.NeuronUpdates++
		if spiked {
			c.counters.Spikes++
			if emit != nil {
				emit(n, c.cfg.Targets[n], p.Delay)
			}
		}
	}
}
