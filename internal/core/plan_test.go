package core

import (
	"testing"

	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/rng"
)

// runVariant drives one core for ticks steps under traffic and returns
// every emission. step selects the evaluation path under test.
func runVariant(c *Core, ticks int, traffic func(tick int64, c *Core), dense bool) []emitted {
	var out []emitted
	for tick := int64(0); tick < int64(ticks); tick++ {
		traffic(tick, c)
		rec := func(n int, tgt Target, d uint8) {
			out = append(out, emitted{tick, n, tgt, d})
		}
		if dense {
			c.TickDense(tick, rec)
		} else {
			c.Tick(tick, rec)
		}
	}
	return out
}

// hotConfig builds a core that lives at the membrane rails: huge
// deterministic weights, ResetNone/NegSaturate-off neurons whose
// negative reset flips them to a near-VMax potential, plus a stochastic
// minority — the regime where batched accumulation would diverge from
// per-event saturation without the hot-neuron guard.
func hotConfig(r *rng.SplitMix64) *Config {
	cfg := NewConfig()
	for a := 0; a < Size; a++ {
		cfg.AxonType[a] = neuron.AxonType(r.Intn(neuron.NumAxonTypes))
	}
	for i := 0; i < 6000; i++ {
		cfg.Synapses.Set(r.Intn(Size), r.Intn(Size), true)
	}
	for n := 0; n < Size; n++ {
		p := &cfg.Neurons[n]
		p.SynWeight = [neuron.NumAxonTypes]int16{
			int16(255 - r.Intn(20)), int16(-255 + r.Intn(20)),
			int16(200 - r.Intn(400)), int16(200 - r.Intn(400)),
		}
		p.SynStochastic[3] = r.Intn(4) == 0
		p.Threshold = int32(neuron.MaxThreshold - r.Intn(1000))
		p.NegThreshold = int32(r.Intn(1000))
		switch r.Intn(3) {
		case 0:
			// Climbs to the positive rail and stays there.
			p.Reset = neuron.ResetNone
		case 1:
			// Negative crossing flips to a near-VMax potential.
			p.Reset = neuron.ResetNormal
			p.NegSaturate = false
			p.ResetV = -(neuron.VMax - int32(r.Intn(100)))
		default:
			p.Reset = neuron.ResetLinear
			p.NegSaturate = true
		}
		p.Leak = int16(r.Intn(11) - 5)
		p.Delay = uint8(1 + r.Intn(neuron.MaxDelay))
	}
	cfg.Seed = uint16(r.Next())
	return cfg
}

// comparePaths runs the same config-and-traffic recipe through the plan
// path, the scalar path and the dense baseline and demands bit-identical
// emissions, potentials, LFSR state and counters.
func comparePaths(t *testing.T, mk func() *Config, traffic func(seed uint64) func(int64, *Core), seed uint64, ticks int) {
	t.Helper()
	plan := New(mk())
	scalar := NewScalar(mk())
	dense := New(mk())

	if !plan.Planned() || scalar.Planned() {
		t.Fatal("constructor plan wiring wrong")
	}
	outPlan := runVariant(plan, ticks, traffic(seed), false)
	outScalar := runVariant(scalar, ticks, traffic(seed), false)
	outDense := runVariant(dense, ticks, traffic(seed), true)

	check := func(name string, got []emitted, c *Core) {
		t.Helper()
		if len(got) != len(outPlan) {
			t.Fatalf("%s emitted %d spikes, plan %d", name, len(got), len(outPlan))
		}
		for i := range got {
			if got[i] != outPlan[i] {
				t.Fatalf("%s spike %d = %+v, plan %+v", name, i, got[i], outPlan[i])
			}
		}
		for n := 0; n < Size; n++ {
			if c.V(n) != plan.V(n) {
				t.Fatalf("%s V[%d] = %d, plan %d", name, n, c.V(n), plan.V(n))
			}
		}
		if c.LFSRState() != plan.LFSRState() {
			t.Fatalf("%s LFSR = %#x, plan %#x", name, c.LFSRState(), plan.LFSRState())
		}
	}
	check("scalar", outScalar, scalar)
	check("dense", outDense, dense)

	// Event-path counters must agree exactly (dense differs by design in
	// NeuronUpdates, so compare the event-exact subset there).
	cp, cs, cd := plan.Counters(), scalar.Counters(), dense.Counters()
	if cp != cs {
		t.Fatalf("plan counters %+v != scalar %+v", cp, cs)
	}
	if cp.SynapticEvents != cd.SynapticEvents || cp.AxonEvents != cd.AxonEvents ||
		cp.Spikes != cd.Spikes || cp.Ticks != cd.Ticks {
		t.Fatalf("plan counters %+v disagree with dense %+v", cp, cd)
	}
}

// TestPlanFuzzEquivalence is the randomized pin for the tentpole: over
// random mixed deterministic/stochastic cores, the plan path, the
// scalar path and the clock-driven dense baseline must be bit-identical
// in spikes, potentials, LFSR schedule and counters.
func TestPlanFuzzEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		r := rng.NewSplitMix64(seed)
		mk := func() *Config { return randomConfig(rng.NewSplitMix64(seed)) }
		trafficSeed := r.Next()
		traffic := func(ts uint64) func(int64, *Core) {
			tr := rng.NewSplitMix64(ts)
			return func(tick int64, c *Core) {
				for i := 0; i < 8; i++ {
					c.ScheduleAxon(tr.Intn(Size), int(tick))
				}
			}
		}
		comparePaths(t, mk, traffic, trafficSeed, 64)
	}
}

// TestPlanSaturationEquivalence drives rail-hugging cores with heavy
// traffic so batched accumulation meets per-event saturation: the hot
// guard must keep all three paths bit-identical.
func TestPlanSaturationEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		mk := func() *Config { return hotConfig(rng.NewSplitMix64(seed)) }
		traffic := func(ts uint64) func(int64, *Core) {
			tr := rng.NewSplitMix64(ts)
			return func(tick int64, c *Core) {
				for i := 0; i < 48; i++ {
					c.ScheduleAxon(tr.Intn(Size), int(tick))
				}
			}
		}
		comparePaths(t, mk, traffic, seed*77+1, 48)
	}
}

// TestPlanSetVNearRail pins the guard on externally forced potentials:
// a deterministic neuron parked at the positive rail must clamp its
// mixed-sign arrivals in per-event order on every path.
func TestPlanSetVNearRail(t *testing.T) {
	mk := func() *Config {
		cfg := NewConfig()
		cfg.AxonType[1] = 1
		cfg.Synapses.Set(0, 0, true) // type 0: +200
		cfg.Synapses.Set(1, 0, true) // type 1: -150
		cfg.Neurons[0].SynWeight = [neuron.NumAxonTypes]int16{200, -150, 0, 0}
		cfg.Neurons[0].Threshold = neuron.MaxThreshold
		cfg.Neurons[0].Reset = neuron.ResetNone
		return cfg
	}
	run := func(c *Core, dense bool) (int32, uint64) {
		c.SetV(0, neuron.VMax-100) // +200 then -150 clamps; -150 then +200 does not
		c.ScheduleAxon(0, 0)
		c.ScheduleAxon(1, 0)
		if dense {
			c.TickDense(0, nil)
		} else {
			c.Tick(0, nil)
		}
		return c.V(0), c.Counters().SynapticEvents
	}
	vPlan, sePlan := run(New(mk()), false)
	vScalar, seScalar := run(NewScalar(mk()), false)
	vDense, _ := run(New(mk()), true)
	// Per-event order: VMax-100 +200 -> VMax (clamped), -150 -> VMax-150.
	// A naive batch would give VMax-100+50 = VMax-50.
	want := int32(neuron.VMax - 150)
	if vPlan != want || vScalar != want || vDense != want {
		t.Fatalf("V after rail-adjacent tick: plan %d scalar %d dense %d, want %d", vPlan, vScalar, vDense, want)
	}
	if sePlan != 2 || seScalar != 2 {
		t.Fatalf("SynapticEvents plan %d scalar %d, want 2", sePlan, seScalar)
	}
}

// TestPlanResetReplay pins Reset bit-identity on plan-backed cores: a
// reset core must replay a presentation exactly, including the hot and
// accumulator state surviving only as cleared.
func TestPlanResetReplay(t *testing.T) {
	for _, mk := range []func() *Config{
		func() *Config { return randomConfig(rng.NewSplitMix64(3)) },
		func() *Config { return hotConfig(rng.NewSplitMix64(3)) },
	} {
		c := New(mk())
		traffic := func() func(int64, *Core) {
			tr := rng.NewSplitMix64(17)
			return func(tick int64, c *Core) {
				for i := 0; i < 24; i++ {
					c.ScheduleAxon(tr.Intn(Size), int(tick))
				}
			}
		}
		first := runVariant(c, 48, traffic(), false)
		c.Reset()
		second := runVariant(c, 48, traffic(), false)
		fresh := runVariant(New(mk()), 48, traffic(), false)
		if len(first) != len(second) || len(first) != len(fresh) {
			t.Fatalf("replay lengths diverge: %d vs %d vs fresh %d", len(first), len(second), len(fresh))
		}
		for i := range first {
			if first[i] != second[i] || first[i] != fresh[i] {
				t.Fatalf("replay diverged at spike %d: %+v vs %+v vs fresh %+v", i, first[i], second[i], fresh[i])
			}
		}
	}
}

// TestPlanSnapshotRestore pins that Restore rebuilds the plan's derived
// masks: resuming from a snapshot stays bit-identical to the original.
func TestPlanSnapshotRestore(t *testing.T) {
	mk := func() *Config { return hotConfig(rng.NewSplitMix64(9)) }
	traffic := func() func(int64, *Core) {
		tr := rng.NewSplitMix64(23)
		return func(tick int64, c *Core) {
			for i := 0; i < 24; i++ {
				c.ScheduleAxon(tr.Intn(Size), int(tick))
			}
		}
	}
	ref := New(mk())
	full := runVariant(ref, 64, traffic(), false)

	c := New(mk())
	tr := traffic()
	var out []emitted
	for tick := int64(0); tick < 32; tick++ {
		tr(tick, c)
		c.Tick(tick, func(n int, tgt Target, d uint8) { out = append(out, emitted{tick, n, tgt, d}) })
	}
	resumed := New(mk())
	resumed.Restore(c.Snapshot())
	for tick := int64(32); tick < 64; tick++ {
		tr(tick, resumed)
		resumed.Tick(tick, func(n int, tgt Target, d uint8) { out = append(out, emitted{tick, n, tgt, d}) })
	}
	if len(out) != len(full) {
		t.Fatalf("snapshot-resumed run emitted %d spikes, full run %d", len(out), len(full))
	}
	for i := range out {
		if out[i] != full[i] {
			t.Fatalf("snapshot resume diverged at spike %d: %+v vs %+v", i, out[i], full[i])
		}
	}
}

func TestVPanicsOutOfRange(t *testing.T) {
	c := New(NewConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.V(Size)
}

func TestSetVPanicsOutOfRange(t *testing.T) {
	c := New(NewConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.SetV(-1, 1)
}

// detTrafficConfig is the dense-traffic deterministic core the E4
// benchmarks drive: a half-dense crossbar, all four axon types, signed
// weights, leak and linear reset — the TrueNorth-style common case the
// integration plan is built for.
func detTrafficConfig() *Config {
	r := rng.NewSplitMix64(42)
	cfg := NewConfig()
	for a := 0; a < Size; a++ {
		cfg.AxonType[a] = neuron.AxonType(a % neuron.NumAxonTypes)
	}
	for a := 0; a < Size; a++ {
		for n := 0; n < Size; n++ {
			if r.Intn(2) == 0 {
				cfg.Synapses.Set(a, n, true)
			}
		}
	}
	for n := 0; n < Size; n++ {
		p := &cfg.Neurons[n]
		p.SynWeight = [neuron.NumAxonTypes]int16{
			int16(1 + r.Intn(8)), int16(-1 - r.Intn(8)),
			int16(1 + r.Intn(4)), int16(-1 - r.Intn(4)),
		}
		p.Leak = int16(-1 - r.Intn(2))
		p.Threshold = int32(20 + r.Intn(100))
		p.Reset = neuron.ResetLinear
		p.Delay = 1
	}
	cfg.Seed = 7
	return cfg
}

func benchDetTraffic(b *testing.B, c *Core) {
	tr := rng.NewSplitMix64(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 32; k++ {
			c.ScheduleAxon(tr.Intn(Size), i)
		}
		c.Tick(int64(i), nil)
	}
	b.StopTimer()
	ct := c.Counters()
	if ct.Ticks > 0 {
		b.ReportMetric(float64(ct.SynapticEvents)/float64(ct.Ticks), "synev/tick")
	}
}

// BenchmarkTickDetTraffic is the E4 headline: dense deterministic
// traffic (32 arrivals/tick on a half-dense crossbar) over the
// precompiled plan path.
func BenchmarkTickDetTraffic(b *testing.B) {
	benchDetTraffic(b, New(detTrafficConfig()))
}

// BenchmarkTickDetTrafficScalar is the same workload on the legacy
// scalar path (the -noplan baseline).
func BenchmarkTickDetTrafficScalar(b *testing.B) {
	benchDetTraffic(b, NewScalar(detTrafficConfig()))
}

// BenchmarkTickSparseScalar is BenchmarkTickSparse's A/B twin on the
// scalar path (mixed stochastic random core, 1 arrival/tick).
func BenchmarkTickSparseScalar(b *testing.B) {
	r := rng.NewSplitMix64(1)
	cfg := randomConfig(r)
	c := NewScalar(cfg)
	tr := rng.NewSplitMix64(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ScheduleAxon(tr.Intn(Size), i)
		c.Tick(int64(i), nil)
	}
}
