package core

import "github.com/neurogo/neurogo/internal/crossbar"

// State is a complete runtime snapshot of one core: everything needed to
// resume simulation bit-exactly. Configurations are snapshotted
// separately (they are immutable during a run).
type State struct {
	// V holds the 256 membrane potentials.
	V [Size]int32
	// LFSR is the PRNG register.
	LFSR uint16
	// Ring is the axon delay ring (16 slots of axon bitsets).
	Ring [RingSlots]crossbar.Row
	// Counters are the activity counters.
	Counters Counters
}

// Snapshot captures the core's runtime state.
func (c *Core) Snapshot() State {
	return State{V: c.v, LFSR: c.lfsr.State(), Ring: c.ring, Counters: c.counters}
}

// Restore overwrites the core's runtime state from a snapshot taken on a
// core with the same configuration. Derived activity masks (nonzero and
// rail-proximity trackers) are rebuilt.
func (c *Core) Restore(s State) {
	c.v = s.V
	c.lfsr.SetState(s.LFSR)
	c.ring = s.Ring
	c.counters = s.Counters
	c.vNonzero = crossbar.Row{}
	c.vHot = crossbar.Row{}
	for n := 0; n < Size; n++ {
		if c.v[n] != 0 {
			c.setNonzero(n, c.v[n])
		}
	}
}
