// Integration plans: the precompiled column-major fast path for Tick.
//
// TrueNorth-class cores are overwhelmingly deterministic — stochastic
// synapses, leak and thresholds are the exception — and a deterministic
// neuron never touches the core's LFSR. That makes its updates safe to
// reorder: phase-1 integration can be batched per tick into a plain
// column accumulation acc[n] += weight[type][n] over the arrived-axon
// bitset and applied once, and phase 2 can run as a flat struct-of-arrays
// leak/fire sweep with no Params pointer chasing, while stochastic
// neurons keep the exact per-event path, interleaved in ascending
// (axon, neuron) order so the LFSR draw schedule — and therefore every
// output bit — is unchanged.
//
// Two invariants make the reordering exact rather than approximate:
//
//   - LFSR order: only stochastic (draw-consuming) synapse/leak/threshold
//     operations advance the LFSR, and the plan path performs exactly
//     those operations in exactly the legacy order. Deterministic work is
//     invisible to the draw schedule wherever it runs.
//
//   - Saturation: membrane arithmetic saturates at the rails, so batched
//     "sum then apply once" could differ from per-event integration only
//     if some intermediate potential clamps. Every partial sum of a
//     tick's synaptic contributions lies within [maxNeg, maxPos] — the
//     sums of the negative and positive per-arrival bounds over all
//     connected axons — so whenever VMin <= v+maxNeg and v+maxPos <= VMax
//     at tick start, no ordering can clamp and batching is bit-exact.
//     The plan precomputes per-neuron hot thresholds (hotHi = VMax-maxPos,
//     hotLo = VMin-maxNeg) and the core tracks the rare rail-proximate
//     neurons in the vHot bitset; those take the exact per-event path for
//     the tick.
//
// Counters stay exact by construction: AxonEvents and SynapticEvents are
// popcounts over the arrived bitset and the crossbar rows (identical to
// the legacy loop trip counts), and NeuronUpdates is the popcount of the
// phase-2 active set, which the plan path computes from the same masks.
package core

import (
	"math/bits"

	"github.com/neurogo/neurogo/internal/crossbar"
	"github.com/neurogo/neurogo/internal/neuron"
)

// planTables is the per-core precompiled integration plan: struct-of-
// arrays columns derived purely from the (immutable) Config at New.
type planTables struct {
	// weight[g][n] is neuron n's deterministic contribution per arrival
	// on a type-g axon (0 for draw-consuming pairs, which the stoch mask
	// routes to the exact path anyway).
	weight [neuron.NumAxonTypes][Size]int32
	// stoch[g] marks neurons whose type-g synapse consumes an LFSR draw.
	stoch [neuron.NumAxonTypes]crossbar.Row
	// detP2 marks neurons whose leak/threshold step is draw-free and can
	// take the flat phase-2 sweep.
	detP2 crossbar.Row

	// Packed phase-2 parameter columns, valid where detP2 is set (delay
	// is filled for every neuron; both phase-2 paths emit through it).
	leak   [Size]int32
	thr    [Size]int32
	negThr [Size]int32
	resetV [Size]int32
	flags  [Size]uint8
	delay  [Size]uint8

	// Saturation guard: neuron n is "hot" when its potential is outside
	// [hotLo, hotHi], i.e. close enough to a rail that this tick's
	// arrivals could clamp mid-sequence. Hot neurons integrate exactly.
	hotHi [Size]int32
	hotLo [Size]int32
}

// flags bit layout: low two bits are the neuron.ResetMode, then the
// NegSaturate and LeakReversal booleans.
const (
	flagResetMask    uint8 = 0x03
	flagNegSaturate  uint8 = 0x04
	flagLeakReversal uint8 = 0x08
)

// planFor returns cfg's memoized plan, building it on first use. The
// tables are read-only after construction, so one copy serves every
// Core instantiated over the shared Config.
func planFor(cfg *Config) *planTables {
	cfg.planOnce.Do(func() { cfg.plan = buildPlan(cfg) })
	return cfg.plan
}

// buildPlan compiles cfg into planTables.
func buildPlan(cfg *Config) *planTables {
	pt := &planTables{}
	for n := range cfg.Neurons {
		p := &cfg.Neurons[n]
		w, b := n/64, uint(n%64)
		for g := neuron.AxonType(0); g < neuron.NumAxonTypes; g++ {
			if p.SynDrawsOn(g) {
				pt.stoch[g][w] |= 1 << b
			} else {
				pt.weight[g][n] = p.DeterministicWeight(g)
			}
		}
		pt.delay[n] = p.Delay
		if p.FireDeterministic() {
			pt.detP2[w] |= 1 << b
			pt.leak[n] = p.DeterministicLeak()
			pt.thr[n] = p.Threshold
			pt.negThr[n] = p.NegThreshold
			pt.resetV[n] = p.ResetV
			fl := uint8(p.Reset) & flagResetMask
			if p.NegSaturate {
				fl |= flagNegSaturate
			}
			if p.LeakReversal {
				fl |= flagLeakReversal
			}
			pt.flags[n] = fl
		}
	}

	// Per-neuron static bounds on one tick's total synaptic contribution:
	// a draw-consuming synapse adds sign(w) or nothing, a deterministic
	// one adds its weight, and each connected axon arrives at most once
	// per tick (the delay ring is one bit per axon and slot).
	var maxPos, maxNeg [Size]int32
	for a := 0; a < Size; a++ {
		g := cfg.AxonType[a]
		row := cfg.Synapses.Row(a)
		for rw := 0; rw < crossbar.Words; rw++ {
			word := row[rw]
			base := rw * 64
			for word != 0 {
				n := base + bits.TrailingZeros64(word)
				word &= word - 1
				p := &cfg.Neurons[n]
				var c int32
				if p.SynDrawsOn(g) {
					if p.SynWeight[g] > 0 {
						c = 1
					} else {
						c = -1
					}
				} else {
					c = p.DeterministicWeight(g)
				}
				if c > 0 {
					maxPos[n] += c
				} else {
					maxNeg[n] += c
				}
			}
		}
	}
	for n := 0; n < Size; n++ {
		pt.hotHi[n] = neuron.VMax - maxPos[n]
		pt.hotLo[n] = neuron.VMin - maxNeg[n]
	}
	return pt
}

// clampV saturates v at the membrane rails. Callers guarantee v fits in
// int32 (every plan-path addition is bounded by |leak| <= 255,
// |threshold| < 2^18 or |acc| <= 256*255, far from int32 overflow), so
// this matches neuron's saturating add exactly.
func clampV(v int32) int32 {
	if v > neuron.VMax {
		return neuron.VMax
	}
	if v < neuron.VMin {
		return neuron.VMin
	}
	return v
}

// stepDet is the flat leak/fire update for a phase-2-deterministic
// neuron: neuron.LeakFire with the draw-free branches resolved against
// the plan columns. Bit-identical to LeakFire (eta = 0, leak exact).
func (pt *planTables) stepDet(v int32, n int) (int32, bool) {
	leak := pt.leak[n]
	fl := pt.flags[n]
	if fl&flagLeakReversal != 0 {
		switch {
		case v < 0:
			leak = -leak
		case v == 0:
			leak = 0
		}
	}
	v = clampV(v + leak)
	if thr := pt.thr[n]; v >= thr {
		switch fl & flagResetMask {
		case uint8(neuron.ResetNormal):
			v = pt.resetV[n]
		case uint8(neuron.ResetLinear):
			v = clampV(v - thr)
		}
		return v, true
	}
	if nt := pt.negThr[n]; v < -nt {
		if fl&flagNegSaturate != 0 {
			v = -nt
		} else {
			v = -pt.resetV[n]
		}
	}
	return v, false
}

// tickPlan is Tick over the precompiled plan. See the package comment at
// the top of this file for the bit-identity argument.
func (c *Core) tickPlan(t int64, emit EmitFunc) {
	pt := c.pt
	cfg := c.cfg
	c.counters.Ticks++
	slot := int(t) & (RingSlots - 1)
	arrived := c.ring[slot]
	c.ring[slot] = crossbar.Row{}

	// Phase 1: synaptic integration. Stochastic pairs and rail-proximate
	// (hot) neurons take the exact per-event path in ascending
	// (axon, neuron) order — the LFSR draw schedule; everything else is
	// batch-of-axon column accumulation into acc, applied once below.
	// The exact-path masks are fixed for the tick (vHot only changes in
	// phase 2), so hoist them per axon type.
	var exMask [neuron.NumAxonTypes]crossbar.Row
	for g := range exMask {
		for w := 0; w < crossbar.Words; w++ {
			exMask[g][w] = pt.stoch[g][w] | c.vHot[w]
		}
	}
	var touched, batched crossbar.Row
	var axonEvents, synEvents uint64
	acc := &c.acc
	for w := 0; w < crossbar.Words; w++ {
		word := arrived[w]
		base := w * 64
		for word != 0 {
			a := base + bits.TrailingZeros64(word)
			word &= word - 1
			axonEvents++
			g := cfg.AxonType[a&(Size-1)]
			row := cfg.Synapses.Row(a & (Size - 1))
			wcol := &pt.weight[g]
			ex := &exMask[g]
			for rw := 0; rw < crossbar.Words; rw++ {
				rword := row[rw]
				if rword == 0 {
					continue
				}
				synEvents += uint64(bits.OnesCount64(rword))
				touched[rw] |= rword
				exact := rword & ex[rw]
				batch := rword &^ exact
				batched[rw] |= batch
				rbase := rw * 64
				for exact != 0 {
					n := (rbase + bits.TrailingZeros64(exact)) & (Size - 1)
					exact &= exact - 1
					c.v[n] = neuron.Integrate(c.v[n], &cfg.Neurons[n], g, c.lfsr)
				}
				for batch != 0 {
					n := (rbase + bits.TrailingZeros64(batch)) & (Size - 1)
					batch &= batch - 1
					acc[n] += wcol[n]
				}
			}
		}
	}
	c.counters.AxonEvents += axonEvents
	c.counters.SynapticEvents += synEvents

	// Phase 2 per word: first apply that word's batched columns once
	// (restoring the all-zero acc invariant — the hot guard proved no
	// intermediate clamp was possible, so one saturating add equals the
	// per-event sequence), then leak and fire the active set. Words
	// holding only draw-free neurons take the flat SoA sweep; a word
	// with any active stochastic neuron is walked merged in ascending
	// order so draws and emissions keep their sequence.
	var neuronUpdates, spikes uint64
	for w := 0; w < crossbar.Words; w++ {
		base := w * 64
		bword := batched[w]
		for bword != 0 {
			n := (base + bits.TrailingZeros64(bword)) & (Size - 1)
			bword &= bword - 1
			a := acc[n]
			acc[n] = 0
			c.v[n] = clampV(c.v[n] + a)
		}

		word := touched[w] | c.alwaysActive[w] | c.vNonzero[w]
		if word == 0 {
			continue
		}
		neuronUpdates += uint64(bits.OnesCount64(word))
		if word&^pt.detP2[w] == 0 {
			// Flat sweep: stepDet inlined by hand — a call per neuron
			// costs more than the update itself.
			evaluated := word
			var nz, hot uint64
			for word != 0 {
				tz := bits.TrailingZeros64(word)
				word &= word - 1
				n := (base + tz) & (Size - 1)
				v := c.v[n]
				leak := pt.leak[n]
				fl := pt.flags[n]
				if fl&flagLeakReversal != 0 {
					switch {
					case v < 0:
						leak = -leak
					case v == 0:
						leak = 0
					}
				}
				v = clampV(v + leak)
				if thr := pt.thr[n]; v >= thr {
					switch fl & flagResetMask {
					case uint8(neuron.ResetNormal):
						v = pt.resetV[n]
					case uint8(neuron.ResetLinear):
						v = clampV(v - thr)
					}
					spikes++
					if emit != nil {
						emit(n, cfg.Targets[n], pt.delay[n])
					}
				} else if nt := pt.negThr[n]; v < -nt {
					if fl&flagNegSaturate != 0 {
						v = -nt
					} else {
						v = -pt.resetV[n]
					}
				}
				c.v[n] = v
				if v != 0 {
					nz |= 1 << uint(tz)
				}
				if v > pt.hotHi[n] || v < pt.hotLo[n] {
					hot |= 1 << uint(tz)
				}
			}
			c.vNonzero[w] = c.vNonzero[w]&^evaluated | nz
			c.vHot[w] = c.vHot[w]&^evaluated | hot
		} else {
			det := pt.detP2[w]
			for word != 0 {
				tz := bits.TrailingZeros64(word)
				word &= word - 1
				n := (base + tz) & (Size - 1)
				var nv int32
				var spiked bool
				if det>>uint(tz)&1 == 1 {
					nv, spiked = pt.stepDet(c.v[n], n)
				} else {
					nv, spiked = neuron.LeakFire(c.v[n], &cfg.Neurons[n], c.lfsr)
				}
				c.v[n] = nv
				c.setNonzero(n, nv)
				if spiked {
					spikes++
					if emit != nil {
						emit(n, cfg.Targets[n], pt.delay[n])
					}
				}
			}
		}
	}
	c.counters.NeuronUpdates += neuronUpdates
	c.counters.Spikes += spikes
}
