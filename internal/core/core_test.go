package core

import (
	"testing"

	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/rng"
)

// simpleConfig wires axon a -> neuron a for the first k pairs with unit
// weights and threshold 1, so one input spike produces one output spike
// on the matching neuron at the next tick.
func simpleConfig(k int) *Config {
	cfg := NewConfig()
	for i := 0; i < k; i++ {
		cfg.Synapses.Set(i, i, true)
		cfg.Neurons[i].Threshold = 1
		cfg.Targets[i] = Target{Core: 7, Axon: uint8(i)}
	}
	return cfg
}

func TestNewConfigValidates(t *testing.T) {
	if err := NewConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cfg := NewConfig()
	cfg.Neurons[3].Delay = 99
	if err := cfg.Validate(); err == nil {
		t.Error("invalid neuron params accepted")
	}
	cfg = NewConfig()
	cfg.Targets[0].Core = -2
	if err := cfg.Validate(); err == nil {
		t.Error("invalid target accepted")
	}
}

func TestSpikePassThrough(t *testing.T) {
	cfg := simpleConfig(4)
	c := New(cfg)
	c.ScheduleAxon(2, 0)

	var got []int
	var gotTargets []Target
	var gotDelays []uint8
	emit := func(n int, tgt Target, d uint8) {
		got = append(got, n)
		gotTargets = append(gotTargets, tgt)
		gotDelays = append(gotDelays, d)
	}
	c.Tick(0, emit)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("spikes = %v, want [2]", got)
	}
	if gotTargets[0] != (Target{Core: 7, Axon: 2}) {
		t.Fatalf("target = %+v", gotTargets[0])
	}
	if gotDelays[0] != 1 {
		t.Fatalf("delay = %d, want 1", gotDelays[0])
	}
	// Neuron resets; next tick silent.
	got = nil
	c.Tick(1, emit)
	if len(got) != 0 {
		t.Fatalf("unexpected spikes on idle tick: %v", got)
	}
}

func TestDelayRingTiming(t *testing.T) {
	cfg := simpleConfig(1)
	c := New(cfg)
	// Schedule for slot 5: only Tick with t%16==5 sees it.
	c.ScheduleAxon(0, 5)
	fired := -1
	for tick := int64(0); tick < 8; tick++ {
		c.Tick(tick, func(n int, _ Target, _ uint8) { fired = int(tick) })
	}
	if fired != 5 {
		t.Fatalf("spike fired at tick %d, want 5", fired)
	}
}

func TestDelayRingWrapAround(t *testing.T) {
	cfg := simpleConfig(1)
	c := New(cfg)
	// At tick 14, schedule for slot (14+3)%16 = 1, i.e. tick 17.
	for tick := int64(0); tick < 32; tick++ {
		if tick == 14 {
			c.ScheduleAxon(0, int(tick+3))
		}
		fired := false
		c.Tick(tick, func(int, Target, uint8) { fired = true })
		if fired != (tick == 17) {
			t.Fatalf("tick %d fired=%v", tick, fired)
		}
	}
}

func TestFanoutWithinCore(t *testing.T) {
	cfg := NewConfig()
	// One axon drives 10 neurons.
	for n := 0; n < 10; n++ {
		cfg.Synapses.Set(0, n, true)
		cfg.Neurons[n].Threshold = 1
	}
	c := New(cfg)
	c.ScheduleAxon(0, 0)
	count := 0
	c.Tick(0, func(int, Target, uint8) { count++ })
	if count != 10 {
		t.Fatalf("fanout produced %d spikes, want 10", count)
	}
	if got := c.Counters().SynapticEvents; got != 10 {
		t.Fatalf("SynapticEvents = %d, want 10", got)
	}
	if got := c.Counters().AxonEvents; got != 1 {
		t.Fatalf("AxonEvents = %d, want 1", got)
	}
}

func TestAxonTypesSelectWeights(t *testing.T) {
	cfg := NewConfig()
	cfg.AxonType[0] = 0
	cfg.AxonType[1] = 1
	cfg.AxonType[2] = 2
	cfg.Synapses.Set(0, 0, true)
	cfg.Synapses.Set(1, 0, true)
	cfg.Synapses.Set(2, 0, true)
	cfg.Neurons[0].SynWeight = [neuron.NumAxonTypes]int16{5, -2, 10, 0}
	cfg.Neurons[0].Threshold = 1000
	c := New(cfg)
	c.ScheduleAxon(0, 0)
	c.ScheduleAxon(1, 0)
	c.ScheduleAxon(2, 0)
	c.Tick(0, nil)
	if v := c.V(0); v != 13 {
		t.Fatalf("V = %d, want 5-2+10 = 13", v)
	}
}

func TestIntegrationAccumulatesAcrossTicks(t *testing.T) {
	cfg := NewConfig()
	cfg.Synapses.Set(0, 0, true)
	cfg.Neurons[0].Threshold = 3
	cfg.Neurons[0].SynWeight[0] = 1
	c := New(cfg)
	spikes := 0
	for tick := int64(0); tick < 6; tick++ {
		c.ScheduleAxon(0, int(tick))
		c.Tick(tick, func(int, Target, uint8) { spikes++ })
	}
	// +1 per tick, threshold 3: spikes at ticks 2 and 5.
	if spikes != 2 {
		t.Fatalf("spikes = %d, want 2", spikes)
	}
}

func TestLeakRunsWithoutInput(t *testing.T) {
	cfg := NewConfig()
	cfg.Neurons[0].Leak = 1 // charges +1 every tick with no input at all
	cfg.Neurons[0].Threshold = 4
	c := New(cfg)
	spikes := 0
	for tick := int64(0); tick < 12; tick++ {
		c.Tick(tick, func(int, Target, uint8) { spikes++ })
	}
	if spikes != 3 {
		t.Fatalf("self-charging neuron fired %d times in 12 ticks, want 3", spikes)
	}
}

func TestHasWork(t *testing.T) {
	cfg := NewConfig()
	cfg.Synapses.Set(0, 0, true)
	cfg.Neurons[0].Threshold = 10
	c := New(cfg)
	if c.HasWork(0) {
		t.Fatal("fresh idle core reports work")
	}
	c.ScheduleAxon(0, 0)
	if !c.HasWork(0) {
		t.Fatal("core with scheduled axon reports no work")
	}
	c.Tick(0, nil) // V becomes 1: still work (nonzero V)
	if !c.HasWork(1) {
		t.Fatal("charged core reports no work")
	}
}

func TestHasWorkAlwaysActiveLeak(t *testing.T) {
	cfg := NewConfig()
	cfg.Neurons[9].Leak = -1
	c := New(cfg)
	if !c.HasWork(0) {
		t.Fatal("leaky neuron must keep the core always active")
	}
}

func TestPendingAxons(t *testing.T) {
	c := New(NewConfig())
	if c.PendingAxons() != 0 {
		t.Fatal("fresh core has pending axons")
	}
	c.ScheduleAxon(3, 1)
	c.ScheduleAxon(9, 5)
	c.ScheduleAxon(9, 5) // same (axon, slot): idempotent
	if got := c.PendingAxons(); got != 2 {
		t.Fatalf("PendingAxons = %d, want 2", got)
	}
	c.Tick(1, nil)
	if got := c.PendingAxons(); got != 1 {
		t.Fatalf("after tick 1, PendingAxons = %d, want 1", got)
	}
}

func TestScheduleAxonPanicsOutOfRange(t *testing.T) {
	c := New(NewConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.ScheduleAxon(Size, 0)
}

func TestSetVTracksNonzero(t *testing.T) {
	cfg := NewConfig()
	cfg.Neurons[0].Threshold = 2
	cfg.Synapses.Set(0, 0, true)
	c := New(cfg)
	c.SetV(0, 1)
	// With V=1 and one more +1 input, it must fire: proves SetV marked
	// the neuron active.
	c.ScheduleAxon(0, 0)
	fired := false
	c.Tick(0, func(int, Target, uint8) { fired = true })
	if !fired {
		t.Fatal("SetV state was not observed by Tick")
	}
}

// randomConfig builds a randomized core configuration exercising all
// features, for the event/dense equivalence test.
func randomConfig(r *rng.SplitMix64) *Config {
	cfg := NewConfig()
	for a := 0; a < Size; a++ {
		cfg.AxonType[a] = neuron.AxonType(r.Intn(neuron.NumAxonTypes))
	}
	for i := 0; i < 2000; i++ {
		cfg.Synapses.Set(r.Intn(Size), r.Intn(Size), true)
	}
	for n := 0; n < Size; n++ {
		p := &cfg.Neurons[n]
		p.SynWeight = [neuron.NumAxonTypes]int16{
			int16(r.Intn(21) - 10), int16(r.Intn(21) - 10),
			int16(r.Intn(255) - 127), int16(r.Intn(255) - 127),
		}
		p.SynStochastic[2] = r.Intn(4) == 0
		p.Leak = int16(r.Intn(7) - 3)
		p.LeakStochastic = r.Intn(8) == 0
		p.LeakReversal = r.Intn(8) == 0
		p.Threshold = int32(1 + r.Intn(20))
		p.NegThreshold = int32(r.Intn(20))
		p.MaskBits = uint8(r.Intn(4))
		p.Reset = neuron.ResetMode(r.Intn(3))
		p.NegSaturate = r.Intn(2) == 0
		p.ResetV = int32(r.Intn(11) - 5)
		p.Delay = uint8(1 + r.Intn(neuron.MaxDelay))
		cfg.Targets[n] = Target{Core: int32(r.Intn(4)), Axon: uint8(r.Intn(Size))}
	}
	cfg.Seed = uint16(r.Next())
	return cfg
}

type emitted struct {
	tick  int64
	n     int
	tgt   Target
	delay uint8
}

func runCore(cfg *Config, dense bool, traffic func(tick int64, c *Core)) []emitted {
	c := New(cfg)
	var out []emitted
	for tick := int64(0); tick < 64; tick++ {
		traffic(tick, c)
		rec := func(n int, tgt Target, d uint8) {
			out = append(out, emitted{tick, n, tgt, d})
		}
		if dense {
			c.TickDense(tick, rec)
		} else {
			c.Tick(tick, rec)
		}
	}
	return out
}

func TestEventDenseEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		r := rng.NewSplitMix64(seed)
		cfg := randomConfig(r)
		trafficSeed := r.Next()
		mkTraffic := func() func(int64, *Core) {
			tr := rng.NewSplitMix64(trafficSeed)
			return func(tick int64, c *Core) {
				for i := 0; i < 8; i++ {
					c.ScheduleAxon(tr.Intn(Size), int(tick))
				}
			}
		}
		// Two fresh configs (cores share config pointers, so use clones).
		r2 := rng.NewSplitMix64(seed)
		cfg2 := randomConfig(r2)
		r2.Next() // keep stream symmetric with trafficSeed consumption

		ev := runCore(cfg, false, mkTraffic())
		de := runCore(cfg2, true, mkTraffic())
		if len(ev) != len(de) {
			t.Fatalf("seed %d: event emitted %d spikes, dense %d", seed, len(ev), len(de))
		}
		for i := range ev {
			if ev[i] != de[i] {
				t.Fatalf("seed %d: spike %d differs: %+v vs %+v", seed, i, ev[i], de[i])
			}
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []emitted {
		r := rng.NewSplitMix64(99)
		cfg := randomConfig(r)
		tr := rng.NewSplitMix64(5)
		return runCore(cfg, false, func(tick int64, c *Core) {
			for i := 0; i < 4; i++ {
				c.ScheduleAxon(tr.Intn(Size), int(tick))
			}
		})
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replays differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at spike %d", i)
		}
	}
}

func TestCountersConsistency(t *testing.T) {
	cfg := simpleConfig(8)
	c := New(cfg)
	for tick := int64(0); tick < 10; tick++ {
		c.ScheduleAxon(int(tick)%8, int(tick))
		c.Tick(tick, nil)
	}
	ct := c.Counters()
	if ct.Ticks != 10 {
		t.Errorf("Ticks = %d, want 10", ct.Ticks)
	}
	if ct.AxonEvents != 10 {
		t.Errorf("AxonEvents = %d, want 10", ct.AxonEvents)
	}
	if ct.SynapticEvents != 10 {
		t.Errorf("SynapticEvents = %d, want 10", ct.SynapticEvents)
	}
	if ct.Spikes != 10 {
		t.Errorf("Spikes = %d, want 10", ct.Spikes)
	}
	c.ResetCounters()
	if c.Counters() != (Counters{}) {
		t.Error("ResetCounters did not zero")
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{1, 2, 3, 4, 5}
	b := Counters{10, 20, 30, 40, 50}
	a.Add(b)
	if a != (Counters{11, 22, 33, 44, 55}) {
		t.Fatalf("Add = %+v", a)
	}
}

func TestEventSkipsIdleNeuronsButDenseDoesNot(t *testing.T) {
	cfg := simpleConfig(1)
	ev, de := New(cfg), New(simpleConfig(1))
	ev.Tick(0, nil)
	de.TickDense(0, nil)
	if ev.Counters().NeuronUpdates != 0 {
		t.Errorf("event engine updated %d neurons on an idle tick, want 0", ev.Counters().NeuronUpdates)
	}
	if de.Counters().NeuronUpdates != Size {
		t.Errorf("dense engine updated %d neurons, want %d", de.Counters().NeuronUpdates, Size)
	}
}

func BenchmarkTickSparse(b *testing.B) {
	r := rng.NewSplitMix64(1)
	cfg := randomConfig(r)
	c := New(cfg)
	tr := rng.NewSplitMix64(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ScheduleAxon(tr.Intn(Size), i)
		c.Tick(int64(i), nil)
	}
}

func BenchmarkTickDense(b *testing.B) {
	r := rng.NewSplitMix64(1)
	cfg := randomConfig(r)
	c := New(cfg)
	tr := rng.NewSplitMix64(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ScheduleAxon(tr.Intn(Size), i)
		c.TickDense(int64(i), nil)
	}
}
