// Package persist serializes chip configurations ("chip images", the
// analogue of the binary a real deployment flashes onto the silicon) and
// runtime snapshots (for checkpoint/restore of long simulations).
//
// The format is a versioned little-endian binary stream. Round-tripping
// a configuration yields a semantically identical chip; restoring a
// snapshot resumes simulation bit-exactly (tests assert both).
package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/core"
	"github.com/neurogo/neurogo/internal/crossbar"
	"github.com/neurogo/neurogo/internal/neuron"
)

// Format identifiers.
const (
	configMagic   = 0x4E47436647 // "NGCfG"-ish tag
	snapshotMagic = 0x4E47536E50 // "NGSnP"-ish tag
	version       = 1
)

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u64(v uint64) {
	if w.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, w.err = w.w.Write(buf[:])
}

func (w *writer) u32(v uint32) { w.u64(uint64(v)) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) b(v bool) {
	if v {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	var buf [8]byte
	_, r.err = io.ReadFull(r.r, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

func (r *reader) u32() uint32 { return uint32(r.u64()) }
func (r *reader) i64() int64  { return int64(r.u64()) }
func (r *reader) b() bool     { return r.u64() != 0 }

// WriteConfig serializes a chip configuration.
func WriteConfig(dst io.Writer, cfg *chip.Config) error {
	w := &writer{w: bufio.NewWriter(dst)}
	w.u64(configMagic)
	w.u64(version)
	w.u64(uint64(cfg.Width))
	w.u64(uint64(cfg.Height))
	for _, cc := range cfg.Cores {
		if cc == nil {
			w.b(false)
			continue
		}
		w.b(true)
		writeCore(w, cc)
	}
	if w.err != nil {
		return fmt.Errorf("persist: writing config: %w", w.err)
	}
	return w.w.Flush()
}

func writeCore(w *writer, cc *core.Config) {
	for _, t := range cc.AxonType {
		w.u64(uint64(t))
	}
	for a := 0; a < core.Size; a++ {
		row := cc.Synapses.Row(a)
		for _, word := range row {
			w.u64(word)
		}
	}
	for n := range cc.Neurons {
		writeNeuron(w, &cc.Neurons[n])
	}
	for _, t := range cc.Targets {
		w.i64(int64(t.Core))
		w.u64(uint64(t.Axon))
	}
	w.u64(uint64(cc.Seed))
}

func writeNeuron(w *writer, p *neuron.Params) {
	for _, sw := range p.SynWeight {
		w.i64(int64(sw))
	}
	for _, sb := range p.SynStochastic {
		w.b(sb)
	}
	w.i64(int64(p.Leak))
	w.b(p.LeakStochastic)
	w.b(p.LeakReversal)
	w.i64(int64(p.Threshold))
	w.i64(int64(p.NegThreshold))
	w.u64(uint64(p.MaskBits))
	w.u64(uint64(p.Reset))
	w.b(p.NegSaturate)
	w.i64(int64(p.ResetV))
	w.u64(uint64(p.Delay))
}

// ReadConfig deserializes a chip configuration.
func ReadConfig(src io.Reader) (*chip.Config, error) {
	r := &reader{r: bufio.NewReader(src)}
	if m := r.u64(); m != configMagic {
		return nil, fmt.Errorf("persist: bad config magic %#x", m)
	}
	if v := r.u64(); v != version {
		return nil, fmt.Errorf("persist: unsupported config version %d", v)
	}
	width := int(r.u64())
	height := int(r.u64())
	if r.err != nil {
		return nil, fmt.Errorf("persist: reading header: %w", r.err)
	}
	if width <= 0 || height <= 0 || width*height > 1<<22 {
		return nil, fmt.Errorf("persist: implausible grid %dx%d", width, height)
	}
	cfg := &chip.Config{Width: width, Height: height, Cores: make([]*core.Config, width*height)}
	for i := range cfg.Cores {
		if !r.b() {
			continue
		}
		cc := core.NewConfig()
		readCore(r, cc)
		cfg.Cores[i] = cc
	}
	if r.err != nil {
		return nil, fmt.Errorf("persist: reading config: %w", r.err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("persist: loaded config invalid: %w", err)
	}
	return cfg, nil
}

func readCore(r *reader, cc *core.Config) {
	for a := range cc.AxonType {
		cc.AxonType[a] = neuron.AxonType(r.u64())
	}
	for a := 0; a < core.Size; a++ {
		var row crossbar.Row
		for wi := range row {
			row[wi] = r.u64()
		}
		cc.Synapses.SetRow(a, row)
	}
	for n := range cc.Neurons {
		readNeuron(r, &cc.Neurons[n])
	}
	for t := range cc.Targets {
		cc.Targets[t].Core = int32(r.i64())
		cc.Targets[t].Axon = uint8(r.u64())
	}
	cc.Seed = uint16(r.u64())
}

func readNeuron(r *reader, p *neuron.Params) {
	for i := range p.SynWeight {
		p.SynWeight[i] = int16(r.i64())
	}
	for i := range p.SynStochastic {
		p.SynStochastic[i] = r.b()
	}
	p.Leak = int16(r.i64())
	p.LeakStochastic = r.b()
	p.LeakReversal = r.b()
	p.Threshold = int32(r.i64())
	p.NegThreshold = int32(r.i64())
	p.MaskBits = uint8(r.u64())
	p.Reset = neuron.ResetMode(r.u64())
	p.NegSaturate = r.b()
	p.ResetV = int32(r.i64())
	p.Delay = uint8(r.u64())
}

// WriteSnapshot serializes a runtime snapshot.
func WriteSnapshot(dst io.Writer, s chip.Snapshot) error {
	w := &writer{w: bufio.NewWriter(dst)}
	w.u64(snapshotMagic)
	w.u64(version)
	w.i64(s.Tick)
	w.u64(uint64(len(s.Cores)))
	for _, cs := range s.Cores {
		for _, v := range cs.V {
			w.i64(int64(v))
		}
		w.u64(uint64(cs.LFSR))
		for _, slot := range cs.Ring {
			for _, word := range slot {
				w.u64(word)
			}
		}
		writeCounters(w, cs.Counters)
	}
	writeChipCounters(w, s.Counters)
	if w.err != nil {
		return fmt.Errorf("persist: writing snapshot: %w", w.err)
	}
	return w.w.Flush()
}

func writeCounters(w *writer, c core.Counters) {
	w.u64(c.SynapticEvents)
	w.u64(c.AxonEvents)
	w.u64(c.NeuronUpdates)
	w.u64(c.Spikes)
	w.u64(c.Ticks)
}

func writeChipCounters(w *writer, c chip.Counters) {
	writeCounters(w, c.Core)
	w.u64(c.RoutedSpikes)
	w.u64(c.TotalHops)
	w.u64(c.OutputSpikes)
	w.u64(c.InputSpikes)
}

// ReadSnapshot deserializes a runtime snapshot.
func ReadSnapshot(src io.Reader) (chip.Snapshot, error) {
	r := &reader{r: bufio.NewReader(src)}
	var s chip.Snapshot
	if m := r.u64(); m != snapshotMagic {
		return s, fmt.Errorf("persist: bad snapshot magic %#x", m)
	}
	if v := r.u64(); v != version {
		return s, fmt.Errorf("persist: unsupported snapshot version %d", v)
	}
	s.Tick = r.i64()
	n := r.u64()
	if r.err != nil {
		return s, fmt.Errorf("persist: reading snapshot header: %w", r.err)
	}
	if n > 1<<22 {
		return s, fmt.Errorf("persist: implausible core count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		var cs core.State
		for vi := range cs.V {
			cs.V[vi] = int32(r.i64())
		}
		cs.LFSR = uint16(r.u64())
		for si := range cs.Ring {
			for wi := range cs.Ring[si] {
				cs.Ring[si][wi] = r.u64()
			}
		}
		cs.Counters = readCounters(r)
		s.Cores = append(s.Cores, cs)
	}
	s.Counters = readChipCounters(r)
	if r.err != nil {
		return s, fmt.Errorf("persist: reading snapshot: %w", r.err)
	}
	return s, nil
}

func readCounters(r *reader) core.Counters {
	return core.Counters{
		SynapticEvents: r.u64(),
		AxonEvents:     r.u64(),
		NeuronUpdates:  r.u64(),
		Spikes:         r.u64(),
		Ticks:          r.u64(),
	}
}

func readChipCounters(r *reader) chip.Counters {
	return chip.Counters{
		Core:         readCounters(r),
		RoutedSpikes: r.u64(),
		TotalHops:    r.u64(),
		OutputSpikes: r.u64(),
		InputSpikes:  r.u64(),
	}
}
