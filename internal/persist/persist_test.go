package persist

import (
	"bytes"
	"testing"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/core"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/rng"
)

// randomConfig builds a 2x2 chip with one gated core and randomized
// everything else.
func randomConfig(seed uint64) *chip.Config {
	r := rng.NewSplitMix64(seed)
	cfg := &chip.Config{Width: 2, Height: 2, Cores: make([]*core.Config, 4)}
	for i := 0; i < 4; i++ {
		if i == 2 {
			continue // gated
		}
		cc := core.NewConfig()
		for k := 0; k < 800; k++ {
			cc.Synapses.Set(r.Intn(core.Size), r.Intn(core.Size), true)
		}
		for a := range cc.AxonType {
			cc.AxonType[a] = neuron.AxonType(r.Intn(4))
		}
		for n := range cc.Neurons {
			p := &cc.Neurons[n]
			p.SynWeight = [4]int16{int16(r.Intn(21) - 10), -3, 100, int16(r.Intn(11))}
			p.SynStochastic[2] = r.Intn(3) == 0
			p.Leak = int16(r.Intn(5) - 2)
			p.LeakStochastic = r.Intn(5) == 0
			p.LeakReversal = r.Intn(5) == 0
			p.Threshold = int32(1 + r.Intn(9))
			p.NegThreshold = int32(r.Intn(5))
			p.MaskBits = uint8(r.Intn(4))
			p.Reset = neuron.ResetMode(r.Intn(3))
			p.NegSaturate = r.Intn(2) == 0
			p.ResetV = int32(r.Intn(7) - 3)
			p.Delay = uint8(1 + r.Intn(15))
			tc := int32(r.Intn(4))
			if tc == 2 {
				tc = core.ExternalCore
			}
			cc.Targets[n] = core.Target{Core: tc, Axon: uint8(r.Intn(core.Size))}
		}
		cc.Seed = uint16(r.Next())
		cfg.Cores[i] = cc
	}
	return cfg
}

func configsEqual(a, b *chip.Config) bool {
	if a.Width != b.Width || a.Height != b.Height || len(a.Cores) != len(b.Cores) {
		return false
	}
	for i := range a.Cores {
		ca, cb := a.Cores[i], b.Cores[i]
		if (ca == nil) != (cb == nil) {
			return false
		}
		if ca == nil {
			continue
		}
		if ca.AxonType != cb.AxonType || ca.Neurons != cb.Neurons ||
			ca.Targets != cb.Targets || ca.Seed != cb.Seed {
			return false
		}
		if !ca.Synapses.Equal(&cb.Synapses) {
			return false
		}
	}
	return true
}

func TestConfigRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := randomConfig(seed)
		var buf bytes.Buffer
		if err := WriteConfig(&buf, cfg); err != nil {
			t.Fatal(err)
		}
		got, err := ReadConfig(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !configsEqual(cfg, got) {
			t.Fatalf("seed %d: round trip changed the configuration", seed)
		}
	}
}

func TestConfigRejectsGarbage(t *testing.T) {
	if _, err := ReadConfig(bytes.NewReader([]byte("not a chip image"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadConfig(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestConfigRejectsTruncated(t *testing.T) {
	cfg := randomConfig(1)
	var buf bytes.Buffer
	if err := WriteConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadConfig(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated image accepted")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := randomConfig(2)
	ch := chip.New(cfg)
	r := rng.NewSplitMix64(9)
	for i := 0; i < 40; i++ {
		_ = ch.Inject(0, r.Intn(core.Size), ch.Now())
		ch.Tick()
	}
	snap := ch.Snapshot()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tick != snap.Tick || len(got.Cores) != len(snap.Cores) {
		t.Fatalf("header mismatch: %d/%d vs %d/%d", got.Tick, len(got.Cores), snap.Tick, len(snap.Cores))
	}
	for i := range snap.Cores {
		if snap.Cores[i] != got.Cores[i] {
			t.Fatalf("core %d state differs after round trip", i)
		}
	}
	if got.Counters != snap.Counters {
		t.Fatal("chip counters differ")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

// TestCheckpointResumeBitExact is the flagship persistence test: running
// 50 ticks, checkpointing through serialization, resuming on a freshly
// loaded chip, and comparing against an uninterrupted run must give
// byte-identical output spikes.
func TestCheckpointResumeBitExact(t *testing.T) {
	inject := func(ch *chip.Chip, tick int, r *rng.SplitMix64) {
		for k := 0; k < 6; k++ {
			_ = ch.Inject(int32([]int{0, 1, 3}[r.Intn(3)]), r.Intn(core.Size), ch.Now())
		}
	}

	// Uninterrupted reference run.
	ref := chip.New(randomConfig(5))
	r1 := rng.NewSplitMix64(77)
	var refOut []chip.OutputSpike
	for i := 0; i < 100; i++ {
		inject(ref, i, r1)
		refOut = append(refOut, ref.Tick()...)
	}

	// Interrupted run: 50 ticks, serialize config+state, reload, resume.
	first := chip.New(randomConfig(5))
	r2 := rng.NewSplitMix64(77)
	var out []chip.OutputSpike
	for i := 0; i < 50; i++ {
		inject(first, i, r2)
		out = append(out, first.Tick()...)
	}
	var cfgBuf, snapBuf bytes.Buffer
	if err := WriteConfig(&cfgBuf, randomConfig(5)); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&snapBuf, first.Snapshot()); err != nil {
		t.Fatal(err)
	}
	cfg2, err := ReadConfig(&cfgBuf)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(&snapBuf)
	if err != nil {
		t.Fatal(err)
	}
	second := chip.New(cfg2)
	second.Restore(snap)
	for i := 50; i < 100; i++ {
		inject(second, i, r2)
		out = append(out, second.Tick()...)
	}

	if len(out) != len(refOut) {
		t.Fatalf("resumed run emitted %d spikes, reference %d", len(out), len(refOut))
	}
	for i := range out {
		if out[i] != refOut[i] {
			t.Fatalf("spike %d differs after resume: %+v vs %+v", i, out[i], refOut[i])
		}
	}
}

func TestRestorePanicsOnMismatch(t *testing.T) {
	ch := chip.New(randomConfig(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ch.Restore(chip.Snapshot{Tick: 0, Cores: make([]core.State, 1)})
}

func BenchmarkWriteConfig(b *testing.B) {
	cfg := randomConfig(1)
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		_ = WriteConfig(&buf, cfg)
	}
}

func BenchmarkSnapshotRoundTrip(b *testing.B) {
	ch := chip.New(randomConfig(1))
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		_ = WriteSnapshot(&buf, ch.Snapshot())
		_, _ = ReadSnapshot(&buf)
	}
}
