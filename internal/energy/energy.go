// Package energy converts simulator activity counters into energy and
// power figures.
//
// The architecture's energy is event-proportional: almost all active
// energy is spent reading crossbar rows and integrating synaptic events,
// with small per-spike, per-hop and per-update terms, on top of a static
// leakage floor. The default coefficients are calibrated so that the
// published nominal operating point — 4096 cores, one million neurons at
// a 20 Hz mean firing rate with 128 active synapses per neuron — lands at
// the published figures: roughly 70 mW total chip power and roughly 26 pJ
// of total energy per synaptic event. Absolute joules are a model, not a
// measurement; the experiments only rely on the scaling shape (leak floor
// plus activity-linear term, and the orders-of-magnitude gap to a
// conventional simulator).
package energy

import "github.com/neurogo/neurogo/internal/chip"

// TickSeconds is the real-time duration of one tick (1 ms), the rate at
// which the hardware runs.
const TickSeconds = 1e-3

// Coefficients holds per-event energies (picojoules) and per-core static
// leakage (microwatts).
type Coefficients struct {
	// SynapticEventPJ is charged per crossbar integration (one connected
	// synapse receiving a spike).
	SynapticEventPJ float64
	// AxonEventPJ is charged per arrived spike (one SRAM row read).
	AxonEventPJ float64
	// NeuronUpdatePJ is charged per leak-and-fire evaluation.
	NeuronUpdatePJ float64
	// SpikePJ is charged per generated spike.
	SpikePJ float64
	// HopPJ is charged per router hop per packet.
	HopPJ float64
	// InterChipSpikePJ is charged per spike crossing a chip-to-chip
	// link in a multi-chip tile, on top of its mesh hops: off-chip
	// serdes I/O costs orders of magnitude more per event than an
	// on-chip router hop, which is why boundary traffic is the scarce
	// resource of tiled systems. Zero for single-chip workloads (no
	// crossings are ever counted).
	InterChipSpikePJ float64
	// CoreLeakUW is static leakage per core in microwatts.
	CoreLeakUW float64
}

// DefaultCoefficients returns the neuromorphic-chip calibration (see the
// package comment for the operating point it reproduces).
func DefaultCoefficients() Coefficients {
	return Coefficients{
		SynapticEventPJ:  12,
		AxonEventPJ:      24,
		NeuronUpdatePJ:   4,
		SpikePJ:          30,
		HopPJ:            26,
		InterChipSpikePJ: 2600, // ~100 on-chip hops per off-chip serdes crossing
		CoreLeakUW:       6.35,
	}
}

// ConventionalCoefficients models executing the same spiking network on a
// general-purpose machine: every synaptic event costs DRAM traffic and
// ALU work (hundreds of pJ), every neuron update touches cache lines, and
// the host burns watts standing still. Used as the von Neumann baseline
// in the energy comparisons; treat Cores as 1 (the host).
func ConventionalCoefficients() Coefficients {
	return Coefficients{
		SynapticEventPJ:  640, // ~2 DRAM line touches + ALU per event
		AxonEventPJ:      100,
		NeuronUpdatePJ:   200, // state load/store through the cache
		SpikePJ:          50,
		HopPJ:            0,    // no spike fabric
		InterChipSpikePJ: 0,    // ... and no chip-to-chip links either
		CoreLeakUW:       12e6, // ~12 W host idle power
	}
}

// Usage is the activity to be priced.
type Usage struct {
	SynapticEvents uint64
	AxonEvents     uint64
	NeuronUpdates  uint64
	Spikes         uint64
	Hops           uint64
	// IntraChipSpikes and InterChipSpikes split the routed spikes of a
	// multi-chip tile by whether they crossed a chip-to-chip link; both
	// are zero for single-chip workloads. InterChipSpikes carries the
	// InterChipSpikePJ surcharge.
	IntraChipSpikes uint64
	InterChipSpikes uint64
	// Ticks is the number of simulated ticks, which determines wall
	// time (Ticks x TickSeconds) and hence leakage energy.
	Ticks uint64
	// Cores is the number of powered cores.
	Cores int
}

// InterChipFraction returns the fraction of boundary-classified routed
// spikes that crossed chip-to-chip links (0 when nothing was classified,
// i.e. on single-chip backends).
func (u Usage) InterChipFraction() float64 {
	total := u.IntraChipSpikes + u.InterChipSpikes
	if total == 0 {
		return 0
	}
	return float64(u.InterChipSpikes) / float64(total)
}

// FromChip extracts Usage from chip counters. If hardwareNeuronUpdates is
// true, neuron updates are charged as the silicon performs them — every
// neuron on every live core, every tick — regardless of how many updates
// the (event-driven) simulator actually executed; this is the right
// setting for modelling chip power. With false, the simulator's own
// update count is used (the right setting for comparing simulator
// engines).
func FromChip(c chip.Counters, cores int, ticks uint64, hardwareNeuronUpdates bool) Usage {
	u := Usage{
		SynapticEvents: c.Core.SynapticEvents,
		AxonEvents:     c.Core.AxonEvents,
		NeuronUpdates:  c.Core.NeuronUpdates,
		Spikes:         c.Core.Spikes,
		Hops:           c.TotalHops,
		Ticks:          ticks,
		Cores:          cores,
	}
	if hardwareNeuronUpdates {
		u.NeuronUpdates = uint64(cores) * 256 * ticks
	}
	return u
}

// Report is the priced result.
type Report struct {
	// Per-category active energy, picojoules.
	SynapticPJ float64
	AxonPJ     float64
	NeuronPJ   float64
	SpikePJ    float64
	HopPJ      float64
	// InterChipPJ is the chip-to-chip link surcharge of a multi-chip
	// tile (zero for single-chip workloads).
	InterChipPJ float64
	// LeakPJ is static energy over the run's wall time.
	LeakPJ float64
	// TotalPJ is the sum of all categories.
	TotalPJ float64
	// WallSeconds is Ticks x TickSeconds.
	WallSeconds float64
	// MeanPowerW is TotalPJ over WallSeconds.
	MeanPowerW float64
	// PJPerSynapticEvent is TotalPJ / SynapticEvents (0 if none).
	PJPerSynapticEvent float64
}

// ActivePJ returns the activity-proportional energy (total minus leak).
func (r Report) ActivePJ() float64 { return r.TotalPJ - r.LeakPJ }

// Evaluate prices a usage record.
func (c Coefficients) Evaluate(u Usage) Report {
	r := Report{
		SynapticPJ:  float64(u.SynapticEvents) * c.SynapticEventPJ,
		AxonPJ:      float64(u.AxonEvents) * c.AxonEventPJ,
		NeuronPJ:    float64(u.NeuronUpdates) * c.NeuronUpdatePJ,
		SpikePJ:     float64(u.Spikes) * c.SpikePJ,
		HopPJ:       float64(u.Hops) * c.HopPJ,
		InterChipPJ: float64(u.InterChipSpikes) * c.InterChipSpikePJ,
		WallSeconds: float64(u.Ticks) * TickSeconds,
	}
	// leak: cores x uW x seconds = 1e-6 J/s x s -> J; convert to pJ (1e12).
	r.LeakPJ = float64(u.Cores) * c.CoreLeakUW * r.WallSeconds * 1e6
	r.TotalPJ = r.SynapticPJ + r.AxonPJ + r.NeuronPJ + r.SpikePJ + r.HopPJ + r.InterChipPJ + r.LeakPJ
	if r.WallSeconds > 0 {
		r.MeanPowerW = r.TotalPJ * 1e-12 / r.WallSeconds
	}
	if u.SynapticEvents > 0 {
		r.PJPerSynapticEvent = r.TotalPJ / float64(u.SynapticEvents)
	}
	return r
}

// NominalUsage returns the published nominal operating point for a chip
// of the given core count over the given number of ticks: every neuron
// firing at meanRateHz with fanout active synapses per spike.
func NominalUsage(cores int, ticks uint64, meanRateHz float64, fanout int) Usage {
	neurons := uint64(cores) * 256
	// spikes per tick = neurons x rate x tick duration
	spikesPerTick := float64(neurons) * meanRateHz * TickSeconds
	spikes := uint64(spikesPerTick * float64(ticks))
	return Usage{
		SynapticEvents: spikes * uint64(fanout),
		AxonEvents:     spikes,
		NeuronUpdates:  neurons * ticks,
		Spikes:         spikes,
		Hops:           spikes * 8, // typical placed mean distance
		Ticks:          ticks,
		Cores:          cores,
	}
}
