package energy

import (
	"math"
	"testing"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/core"
)

func TestNominalOperatingPoint(t *testing.T) {
	// The calibration claim: 4096 cores at 20 Hz / 128-synapse fanout
	// lands near 70 mW and near 26 pJ per synaptic event.
	u := NominalUsage(4096, 1000, 20, 128)
	r := DefaultCoefficients().Evaluate(u)
	if r.MeanPowerW < 0.050 || r.MeanPowerW > 0.090 {
		t.Errorf("nominal power = %.1f mW, want within [50,90] mW", r.MeanPowerW*1e3)
	}
	if r.PJPerSynapticEvent < 20 || r.PJPerSynapticEvent > 32 {
		t.Errorf("energy/synaptic event = %.1f pJ, want within [20,32] pJ", r.PJPerSynapticEvent)
	}
}

func TestLeakFloorDominatesAtZeroActivity(t *testing.T) {
	u := Usage{Ticks: 1000, Cores: 4096}
	r := DefaultCoefficients().Evaluate(u)
	if r.ActivePJ() != 0 {
		t.Errorf("zero activity must have zero active energy, got %g", r.ActivePJ())
	}
	if r.MeanPowerW <= 0.010 || r.MeanPowerW >= 0.050 {
		t.Errorf("idle power = %.1f mW, want a leak floor in (10,50) mW", r.MeanPowerW*1e3)
	}
}

func TestPowerLinearInRate(t *testing.T) {
	coef := DefaultCoefficients()
	p := func(rate float64) float64 {
		return coef.Evaluate(NominalUsage(4096, 1000, rate, 128)).MeanPowerW
	}
	p0, p10, p20, p40 := p(0), p(10), p(20), p(40)
	if !(p0 < p10 && p10 < p20 && p20 < p40) {
		t.Fatalf("power not monotone in rate: %g %g %g %g", p0, p10, p20, p40)
	}
	// Linearity: increments per 10 Hz should match within tolerance.
	d1, d2 := p20-p10, (p40-p20)/2
	if math.Abs(d1-d2)/d1 > 0.05 {
		t.Errorf("power increments not linear: %g vs %g", d1, d2)
	}
}

func TestEvaluateBreakdownSums(t *testing.T) {
	u := Usage{
		SynapticEvents: 1000, AxonEvents: 10, NeuronUpdates: 500,
		Spikes: 10, Hops: 40, Ticks: 7, Cores: 3,
	}
	c := DefaultCoefficients()
	r := c.Evaluate(u)
	sum := r.SynapticPJ + r.AxonPJ + r.NeuronPJ + r.SpikePJ + r.HopPJ + r.LeakPJ
	if math.Abs(sum-r.TotalPJ) > 1e-9 {
		t.Errorf("breakdown sums to %g, total %g", sum, r.TotalPJ)
	}
	if r.SynapticPJ != 1000*c.SynapticEventPJ {
		t.Errorf("SynapticPJ = %g", r.SynapticPJ)
	}
	if r.WallSeconds != 7*TickSeconds {
		t.Errorf("WallSeconds = %g", r.WallSeconds)
	}
}

func TestZeroTicksNoPower(t *testing.T) {
	r := DefaultCoefficients().Evaluate(Usage{SynapticEvents: 10})
	if r.MeanPowerW != 0 || r.WallSeconds != 0 {
		t.Error("zero-tick usage must not report power")
	}
	if r.PJPerSynapticEvent <= 0 {
		t.Error("per-event energy must still be computable")
	}
}

func TestZeroSynapticEvents(t *testing.T) {
	r := DefaultCoefficients().Evaluate(Usage{Ticks: 10, Cores: 1})
	if r.PJPerSynapticEvent != 0 {
		t.Error("PJPerSynapticEvent must be 0 with no events")
	}
}

func TestConventionalMuchMoreExpensive(t *testing.T) {
	// Same logical workload, neuromorphic vs conventional host.
	neu := DefaultCoefficients().Evaluate(NominalUsage(4096, 1000, 20, 128))
	convUsage := NominalUsage(4096, 1000, 20, 128)
	convUsage.Cores = 1 // one host machine
	convUsage.Hops = 0
	conv := ConventionalCoefficients().Evaluate(convUsage)
	ratio := conv.TotalPJ / neu.TotalPJ
	if ratio < 20 {
		t.Errorf("conventional/neuromorphic energy ratio = %.1fx, want >= 20x", ratio)
	}
}

func TestFromChip(t *testing.T) {
	c := chip.Counters{
		Core: core.Counters{
			SynapticEvents: 100, AxonEvents: 10, NeuronUpdates: 50,
			Spikes: 9, Ticks: 40,
		},
		TotalHops: 33,
	}
	u := FromChip(c, 4, 10, false)
	if u.SynapticEvents != 100 || u.Hops != 33 || u.NeuronUpdates != 50 || u.Cores != 4 || u.Ticks != 10 {
		t.Fatalf("FromChip = %+v", u)
	}
	uh := FromChip(c, 4, 10, true)
	if uh.NeuronUpdates != 4*256*10 {
		t.Fatalf("hardware neuron updates = %d, want %d", uh.NeuronUpdates, 4*256*10)
	}
}

func TestNominalUsageScales(t *testing.T) {
	a := NominalUsage(1024, 100, 20, 128)
	b := NominalUsage(4096, 100, 20, 128)
	if b.SynapticEvents != 4*a.SynapticEvents {
		t.Errorf("synaptic events must scale with cores: %d vs %d", a.SynapticEvents, b.SynapticEvents)
	}
	if b.NeuronUpdates != 4*a.NeuronUpdates {
		t.Error("neuron updates must scale with cores")
	}
}

func TestEnergyPerEventDropsWithActivity(t *testing.T) {
	// With a fixed leak floor, busier chips amortise it: pJ/event must
	// fall as rate rises.
	coef := DefaultCoefficients()
	lo := coef.Evaluate(NominalUsage(4096, 1000, 5, 128)).PJPerSynapticEvent
	hi := coef.Evaluate(NominalUsage(4096, 1000, 100, 128)).PJPerSynapticEvent
	if hi >= lo {
		t.Errorf("pJ/event must drop with activity: %.1f (5Hz) vs %.1f (100Hz)", lo, hi)
	}
}

// TestInterChipSurcharge pins the multi-chip pricing: inter-chip spikes
// add exactly InterChipSpikePJ each to the total, zero-traffic usage is
// priced as before, and the fraction helper splits correctly.
func TestInterChipSurcharge(t *testing.T) {
	coef := DefaultCoefficients()
	base := Usage{SynapticEvents: 100, Spikes: 10, Hops: 40, Ticks: 10, Cores: 4}
	plain := coef.Evaluate(base)
	if plain.InterChipPJ != 0 {
		t.Fatalf("single-chip usage priced %g pJ of link traffic", plain.InterChipPJ)
	}
	tiled := base
	tiled.IntraChipSpikes = 30
	tiled.InterChipSpikes = 10
	rep := coef.Evaluate(tiled)
	if want := 10 * coef.InterChipSpikePJ; rep.InterChipPJ != want {
		t.Fatalf("InterChipPJ = %g, want %g", rep.InterChipPJ, want)
	}
	if rep.TotalPJ != plain.TotalPJ+rep.InterChipPJ {
		t.Fatalf("total %g, want plain %g + surcharge %g", rep.TotalPJ, plain.TotalPJ, rep.InterChipPJ)
	}
	if f := tiled.InterChipFraction(); f != 0.25 {
		t.Fatalf("InterChipFraction = %g, want 0.25", f)
	}
	if f := base.InterChipFraction(); f != 0 {
		t.Fatalf("no-traffic fraction = %g", f)
	}
	if conv := ConventionalCoefficients().Evaluate(tiled); conv.InterChipPJ != 0 {
		t.Fatal("conventional baseline has no chip-to-chip links")
	}
}
