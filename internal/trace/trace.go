// Package trace records spike activity and renders it for inspection:
// rasters (the figures of spiking papers), per-unit rates, and
// inter-spike-interval statistics.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Spike is one recorded event: a unit (neuron or line) firing at a tick.
type Spike struct {
	Tick int64
	Unit int32
}

// Recorder accumulates spikes.
type Recorder struct {
	spikes []Spike
}

// Record adds one spike.
func (r *Recorder) Record(tick int64, unit int32) {
	r.spikes = append(r.spikes, Spike{Tick: tick, Unit: unit})
}

// Len returns the number of recorded spikes.
func (r *Recorder) Len() int { return len(r.spikes) }

// Spikes returns the recorded spikes in insertion order.
func (r *Recorder) Spikes() []Spike { return r.spikes }

// Reset clears the recorder.
func (r *Recorder) Reset() { r.spikes = r.spikes[:0] }

// TimesOf returns the sorted spike times of one unit.
func (r *Recorder) TimesOf(unit int32) []int64 {
	var out []int64
	for _, s := range r.spikes {
		if s.Unit == unit {
			out = append(out, s.Tick)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Counts returns spikes per unit for units [0, n).
func (r *Recorder) Counts(n int) []int {
	out := make([]int, n)
	for _, s := range r.spikes {
		if s.Unit >= 0 && int(s.Unit) < n {
			out[s.Unit]++
		}
	}
	return out
}

// Rates returns per-unit firing rates in spikes/tick over [t0, t1).
func (r *Recorder) Rates(n int, t0, t1 int64) []float64 {
	out := make([]float64, n)
	if t1 <= t0 {
		return out
	}
	for _, s := range r.spikes {
		if s.Unit >= 0 && int(s.Unit) < n && s.Tick >= t0 && s.Tick < t1 {
			out[s.Unit]++
		}
	}
	for i := range out {
		out[i] /= float64(t1 - t0)
	}
	return out
}

// ISI computes the inter-spike intervals of a sorted spike-time list.
func ISI(times []int64) []int64 {
	if len(times) < 2 {
		return nil
	}
	out := make([]int64, len(times)-1)
	for i := 1; i < len(times); i++ {
		out[i-1] = times[i] - times[i-1]
	}
	return out
}

// ISIStats returns the mean and standard deviation of the inter-spike
// intervals, and the coefficient of variation (CV = std/mean; 0 for a
// perfectly regular train, ~1 for Poisson).
func ISIStats(times []int64) (mean, std, cv float64) {
	isi := ISI(times)
	if len(isi) == 0 {
		return 0, 0, 0
	}
	for _, v := range isi {
		mean += float64(v)
	}
	mean /= float64(len(isi))
	for _, v := range isi {
		d := float64(v) - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(isi)))
	if mean > 0 {
		cv = std / mean
	}
	return mean, std, cv
}

// Raster renders units [0, n) over ticks [t0, t1) as an ASCII raster:
// one row per unit, '|' at spike positions. Rows are labelled with unit
// indices.
func (r *Recorder) Raster(n int, t0, t1 int64) string {
	width := int(t1 - t0)
	if width <= 0 || n <= 0 {
		return ""
	}
	grid := make([][]byte, n)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", width))
	}
	for _, s := range r.spikes {
		if s.Unit >= 0 && int(s.Unit) < n && s.Tick >= t0 && s.Tick < t1 {
			grid[s.Unit][s.Tick-t0] = '|'
		}
	}
	var b strings.Builder
	for i := n - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "%4d %s\n", i, grid[i])
	}
	fmt.Fprintf(&b, "     %s\n", timeAxis(width))
	return b.String()
}

// timeAxis renders a tick ruler: a '+' every 10 ticks.
func timeAxis(width int) string {
	out := make([]byte, width)
	for i := range out {
		if i%10 == 0 {
			out[i] = '+'
		} else {
			out[i] = '-'
		}
	}
	return string(out)
}
