package trace

import (
	"math"
	"strings"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	var r Recorder
	if r.Len() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	r.Record(5, 1)
	r.Record(3, 1)
	r.Record(7, 0)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	times := r.TimesOf(1)
	if len(times) != 2 || times[0] != 3 || times[1] != 5 {
		t.Fatalf("TimesOf(1) = %v, want sorted [3 5]", times)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestCounts(t *testing.T) {
	var r Recorder
	r.Record(0, 0)
	r.Record(1, 0)
	r.Record(2, 2)
	r.Record(3, 9) // outside range
	c := r.Counts(3)
	if c[0] != 2 || c[1] != 0 || c[2] != 1 {
		t.Fatalf("Counts = %v", c)
	}
}

func TestRates(t *testing.T) {
	var r Recorder
	for tick := int64(0); tick < 100; tick += 2 {
		r.Record(tick, 0)
	}
	rates := r.Rates(1, 0, 100)
	if math.Abs(rates[0]-0.5) > 1e-9 {
		t.Fatalf("rate = %g, want 0.5", rates[0])
	}
	// Window restriction.
	rates = r.Rates(1, 0, 10)
	if math.Abs(rates[0]-0.5) > 1e-9 {
		t.Fatalf("windowed rate = %g", rates[0])
	}
	// Degenerate window.
	if r.Rates(1, 5, 5)[0] != 0 {
		t.Fatal("empty window must give zero rate")
	}
}

func TestISI(t *testing.T) {
	isi := ISI([]int64{2, 5, 9})
	if len(isi) != 2 || isi[0] != 3 || isi[1] != 4 {
		t.Fatalf("ISI = %v", isi)
	}
	if ISI([]int64{1}) != nil {
		t.Fatal("single spike has no ISI")
	}
}

func TestISIStatsRegular(t *testing.T) {
	mean, std, cv := ISIStats([]int64{0, 4, 8, 12, 16})
	if mean != 4 || std != 0 || cv != 0 {
		t.Fatalf("regular train stats = (%g,%g,%g)", mean, std, cv)
	}
}

func TestISIStatsIrregular(t *testing.T) {
	mean, std, cv := ISIStats([]int64{0, 1, 10, 11, 30})
	if mean <= 0 || std <= 0 || cv <= 0 {
		t.Fatalf("irregular stats = (%g,%g,%g)", mean, std, cv)
	}
}

func TestISIStatsEmpty(t *testing.T) {
	mean, std, cv := ISIStats(nil)
	if mean != 0 || std != 0 || cv != 0 {
		t.Fatal("empty stats must be zero")
	}
}

func TestRaster(t *testing.T) {
	var r Recorder
	r.Record(0, 0)
	r.Record(5, 1)
	s := r.Raster(2, 0, 10)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("raster has %d lines: %q", len(lines), s)
	}
	// Top row is unit 1; spike at column 5.
	if !strings.Contains(lines[0], "1 ") || lines[0][5+5] != '|' {
		t.Fatalf("unit 1 row wrong: %q", lines[0])
	}
	if lines[1][5+0] != '|' {
		t.Fatalf("unit 0 row wrong: %q", lines[1])
	}
	if !strings.HasPrefix(strings.TrimSpace(lines[2]), "+") {
		t.Fatalf("axis row wrong: %q", lines[2])
	}
}

func TestRasterEmptyWindow(t *testing.T) {
	var r Recorder
	if r.Raster(2, 5, 5) != "" || r.Raster(0, 0, 5) != "" {
		t.Fatal("degenerate raster must be empty")
	}
}
