package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if Variance([]float64{3}) != 0 || Variance(nil) != 0 {
		t.Error("short slices must have zero variance")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max(%v) = %g/%g", xs, Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max must be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75}, {-5, 1}, {200, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMedianMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		med := Median(raw)
		return med >= Min(raw) && med <= Max(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1.9, 2, 9.9, 10, 11, -3} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	// -3 and 0 and 1.9 in bin 0; 2 in bin 1; 9.9, 10, 11 clamp to bin 4.
	want := []int{3, 1, 0, 0, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
}

func TestHistogramFractionsSumToOne(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) / 10)
	}
	sum := 0.0
	for _, f := range h.Fractions() {
		sum += f
	}
	if !almostEq(sum, 1, 1e-12) {
		t.Errorf("fractions sum to %g, want 1", sum)
	}
}

func TestHistogramEmptyFractions(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	for _, f := range h.Fractions() {
		if f != 0 {
			t.Fatal("empty histogram must have zero fractions")
		}
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); !almostEq(got, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %g, want 1", got)
	}
	if got := h.BinCenter(4); !almostEq(got, 9, 1e-12) {
		t.Errorf("BinCenter(4) = %g, want 9", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins":   func() { NewHistogram(0, 1, 0) },
		"empty range": func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, r2 := LinearFit(xs, ys)
	if !almostEq(a, 1, 1e-9) || !almostEq(b, 2, 1e-9) || !almostEq(r2, 1, 1e-9) {
		t.Errorf("fit = (%g, %g, r2=%g), want (1, 2, 1)", a, b, r2)
	}
}

func TestLinearFitFlat(t *testing.T) {
	a, b, r2 := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if !almostEq(a, 5, 1e-9) || !almostEq(b, 0, 1e-9) || !almostEq(r2, 1, 1e-9) {
		t.Errorf("flat fit = (%g, %g, %g)", a, b, r2)
	}
}

func TestLinearFitDegenerateX(t *testing.T) {
	a, b, _ := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if b != 0 || !almostEq(a, 2, 1e-9) {
		t.Errorf("degenerate-x fit = (%g, %g), want (2, 0)", a, b)
	}
}

func TestLinearFitMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	LinearFit([]float64{1}, []float64{1, 2})
}

func TestRunningStatMatchesBatch(t *testing.T) {
	xs := []float64{1, 4, 2, 8, 5, 7, 1, 0, 9, 3}
	var r RunningStat
	for _, x := range xs {
		r.Add(x)
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d", r.N())
	}
	if !almostEq(r.Mean(), Mean(xs), 1e-9) {
		t.Errorf("running mean %g != batch %g", r.Mean(), Mean(xs))
	}
	if !almostEq(r.Variance(), Variance(xs), 1e-9) {
		t.Errorf("running variance %g != batch %g", r.Variance(), Variance(xs))
	}
	if !almostEq(r.StdDev(), StdDev(xs), 1e-9) {
		t.Errorf("running stddev %g != batch %g", r.StdDev(), StdDev(xs))
	}
}

func TestRunningStatEmpty(t *testing.T) {
	var r RunningStat
	if r.Mean() != 0 || r.Variance() != 0 || r.N() != 0 {
		t.Error("zero-value RunningStat must report zeros")
	}
}

func TestPercentileMatchesSortedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p0 := Percentile(raw, 0)
		p100 := Percentile(raw, 100)
		return p0 <= p100 || len(raw) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
