// Package stats provides the small set of deterministic descriptive
// statistics the experiment harness needs: moments, percentiles, histograms
// and least-squares fits. Everything operates on plain float64 slices and
// never mutates its inputs.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, not n-1),
// or 0 for slices shorter than 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the
// range are clamped into the first/last bin so totals are conserved.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram with bins equal-width bins over [lo, hi).
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range is empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}

// Fractions returns the per-bin fraction of all observations.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// LinearFit returns the least-squares line y = a + b*x through the points
// (xs[i], ys[i]), plus the coefficient of determination r2. Slices must be
// the same length; fewer than 2 points yields a zero fit.
func LinearFit(xs, ys []float64) (a, b, r2 float64) {
	n := len(xs)
	if n != len(ys) {
		panic("stats: LinearFit length mismatch")
	}
	if n < 2 {
		return 0, 0, 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return my, 0, 0
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return a, b, r2
}

// RunningStat accumulates mean and variance online (Welford's algorithm),
// useful for long simulations where storing every sample is wasteful.
type RunningStat struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (r *RunningStat) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *RunningStat) N() int { return r.n }

// Mean returns the running mean.
func (r *RunningStat) Mean() float64 { return r.mean }

// Variance returns the running population variance.
func (r *RunningStat) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the running population standard deviation.
func (r *RunningStat) StdDev() float64 { return math.Sqrt(r.Variance()) }
