// Package chip assembles neurosynaptic cores into a chip: a Width x Height
// grid of cores joined by the mesh NoC, plus spike input/output ports.
//
// The chip advances in global 1 ms ticks. Within a tick every core drains
// its delay-ring slot, integrates, leaks and fires; emitted spikes are
// routed to their destination core's delay ring for tick t+delay. Because
// every axonal delay is at least one tick, cores never observe spikes
// emitted in the same tick — which makes core evaluation order immaterial
// and lets TickParallel shard cores across goroutines while remaining
// bit-identical to the sequential Tick.
//
// Functional routing delivers spikes directly and accounts Manhattan hop
// counts for the energy model; the cycle-level NoC in package noc is used
// by the dedicated network experiments.
package chip

import (
	"fmt"
	"sync"

	"github.com/neurogo/neurogo/internal/core"
	"github.com/neurogo/neurogo/internal/noc"
)

// Config describes a chip build.
type Config struct {
	// Width and Height are the core-grid dimensions.
	Width, Height int
	// Cores holds one configuration per core, row-major (index y*Width+x).
	// Entries may be nil for unused positions; nil cores are skipped
	// entirely (they model power-gated cores).
	Cores []*core.Config
}

// Validate checks grid dimensions, core configs and routing targets.
func (c *Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("chip: dimensions %dx%d must be positive", c.Width, c.Height)
	}
	if len(c.Cores) != c.Width*c.Height {
		return fmt.Errorf("chip: %d core configs for a %dx%d grid", len(c.Cores), c.Width, c.Height)
	}
	n := int32(len(c.Cores))
	for i, cc := range c.Cores {
		if cc == nil {
			continue
		}
		if err := cc.Validate(); err != nil {
			return fmt.Errorf("chip: core %d: %w", i, err)
		}
		for nIdx, tgt := range cc.Targets {
			if tgt.Core == core.ExternalCore {
				continue
			}
			if tgt.Core >= n {
				return fmt.Errorf("chip: core %d neuron %d targets core %d outside grid", i, nIdx, tgt.Core)
			}
			if c.Cores[tgt.Core] == nil {
				return fmt.Errorf("chip: core %d neuron %d targets power-gated core %d", i, nIdx, tgt.Core)
			}
		}
	}
	return nil
}

// OutputSpike is a spike that left the chip through an external target.
type OutputSpike struct {
	// Tick is the tick at which the spike was emitted.
	Tick int64
	// Core is the linear index of the emitting core.
	Core int32
	// Neuron is the emitting neuron on that core.
	Neuron uint8
}

// Counters aggregates chip-level activity for the energy model.
type Counters struct {
	// Core sums the per-core counters.
	Core core.Counters
	// RoutedSpikes counts spikes delivered core-to-core.
	RoutedSpikes uint64
	// TotalHops accumulates Manhattan distances of routed spikes.
	TotalHops uint64
	// OutputSpikes counts spikes that left the chip.
	OutputSpikes uint64
	// InputSpikes counts spikes injected from outside.
	InputSpikes uint64
}

// Chip is the runtime state of one chip. It is the single-chip
// implementation of the sim.Backend execution seam (Tick/TickDense/
// TickParallel, Inject, Reset, Now, Counters); system.System wraps one
// Chip into the multi-chip implementation, and everything above the
// seam — Runner, pipeline sessions, streams, batches, async serving —
// runs bit-identically over either.
//
// A Chip can also be a shard fragment: a full-size grid where only a
// subset of the cores is instantiated and emissions towards the
// missing cores are handed to a shard router instead of delivered (see
// SetShardRouter and system.Shard). Core indices and mesh coordinates
// stay global either way, so routing semantics — and the hop and
// boundary accounting derived from them — are unchanged by sharding.
type Chip struct {
	cfg   *Config
	cores []*core.Core
	live  []int32 // indices of non-nil cores
	tick  int64

	counters     Counters
	outputs      []OutputSpike
	onRoute      func(src, dst int32)
	onShardRoute func(t int64, tgt core.Target, delay uint8)
}

// SetRouteObserver installs a callback invoked for every core-to-core
// spike delivery with the source and destination core indices. Used by
// the multi-chip system layer for boundary-traffic accounting; pass nil
// to remove. The callback runs on the ticking goroutine. The observer
// fires for shard-routed (off-fragment) emissions too: routing is
// accounted where the spike is emitted, so per-shard accounting folds
// to exactly the single-process totals.
func (ch *Chip) SetRouteObserver(fn func(src, dst int32)) { ch.onRoute = fn }

// SetShardRouter installs a callback receiving every emission whose
// destination core is not instantiated on this chip — the outbox hook
// shard fragments use to collect cross-shard boundary spikes. The
// emission is already fully accounted (RoutedSpikes, TotalHops and the
// route observer) when the callback runs; the receiving fragment must
// deliver it with DeliverRouted, which accounts nothing. Without a
// shard router, emissions to missing cores panic, as they always did —
// a validated single-chip config never produces them.
func (ch *Chip) SetShardRouter(fn func(t int64, tgt core.Target, delay uint8)) {
	ch.onShardRoute = fn
}

// Options tunes chip construction.
type Options struct {
	// NoPlan pins every core to the legacy scalar integration path
	// (core.NewScalar) instead of the precompiled plan — the A/B
	// debugging escape hatch behind cmd/nsim -noplan. Spike streams are
	// bit-identical either way; only throughput differs.
	NoPlan bool
}

// New builds a chip from cfg with default options (plan-backed cores).
// Call cfg.Validate first; New panics on a mismatched config length (a
// programming error).
//
// The config is retained by reference and never mutated at runtime, so
// any number of Chip instances may share one Config concurrently — the
// basis for session pools running independent chips over one compiled
// mapping.
func New(cfg *Config) *Chip { return NewWithOptions(cfg, Options{}) }

// NewWithOptions builds a chip from cfg with explicit options.
func NewWithOptions(cfg *Config, opt Options) *Chip {
	if len(cfg.Cores) != cfg.Width*cfg.Height {
		panic("chip: config length mismatch")
	}
	mk := core.New
	if opt.NoPlan {
		mk = core.NewScalar
	}
	ch := &Chip{cfg: cfg, cores: make([]*core.Core, len(cfg.Cores))}
	for i, cc := range cfg.Cores {
		if cc == nil {
			continue
		}
		ch.cores[i] = mk(cc)
		ch.live = append(ch.live, int32(i))
	}
	return ch
}

// Reset returns the chip to its power-on state: every live core reset
// (potentials, delay rings, LFSRs), the tick counter back to zero and
// buffered outputs discarded. Activity counters are preserved so energy
// accounting can span many presentations; call ResetCounters to clear
// them. After Reset the chip produces spike streams bit-identical to a
// freshly built New(cfg).
func (ch *Chip) Reset() {
	for _, i := range ch.live {
		ch.cores[i].Reset()
	}
	ch.tick = 0
	ch.outputs = ch.outputs[:0]
}

// Width returns the grid width in cores.
func (ch *Chip) Width() int { return ch.cfg.Width }

// Height returns the grid height in cores.
func (ch *Chip) Height() int { return ch.cfg.Height }

// LiveCores returns the number of instantiated (non-gated) cores.
func (ch *Chip) LiveCores() int { return len(ch.live) }

// Now returns the next tick to be executed.
func (ch *Chip) Now() int64 { return ch.tick }

// Coord returns the mesh coordinate of core index i.
func (ch *Chip) Coord(i int32) noc.Coord {
	return noc.Coord{X: int16(int(i) % ch.cfg.Width), Y: int16(int(i) / ch.cfg.Width)}
}

// Index returns the linear core index for a coordinate.
func (ch *Chip) Index(c noc.Coord) int32 {
	return int32(int(c.Y)*ch.cfg.Width + int(c.X))
}

// CoreByIndex returns the runtime core at linear index i (nil if gated).
func (ch *Chip) CoreByIndex(i int32) *core.Core { return ch.cores[i] }

// ValidateInjection checks an external injection's bounds against the
// configuration without mutating anything: the core must exist and be
// instantiated, the axon must be on the crossbar, and the arrival must
// fall within the delay-ring horizon [now, now+16). Errors carry the
// `sim:` prefix of the execution seam and identical text across every
// sim.Backend implementation — single chip, multi-chip system, and the
// sharded/remote backends all reject exactly the same injections with
// exactly the same errors, before any state changes.
func (c *Config) ValidateInjection(coreIdx int32, axon int, now, at int64) error {
	if coreIdx < 0 || int(coreIdx) >= len(c.Cores) || c.Cores[coreIdx] == nil {
		return fmt.Errorf("sim: inject into invalid core %d", coreIdx)
	}
	if axon < 0 || axon >= core.Size {
		return fmt.Errorf("sim: inject into invalid axon %d on core %d", axon, coreIdx)
	}
	if at < now || at >= now+core.RingSlots {
		return fmt.Errorf("sim: inject at tick %d outside window [%d,%d)", at, now, now+core.RingSlots)
	}
	return nil
}

// Inject schedules an external input spike on (coreIdx, axon) to be seen
// at tick at. The arrival must be within the delay-ring horizon:
// now <= at < now+16. Bounds are validated (core, axon and window, with
// sim:-prefixed errors shared by every backend) before any state
// mutation.
func (ch *Chip) Inject(coreIdx int32, axon int, at int64) error {
	if err := ch.cfg.ValidateInjection(coreIdx, axon, ch.tick, at); err != nil {
		return err
	}
	ch.cores[coreIdx].ScheduleAxon(axon, int(at))
	ch.counters.InputSpikes++
	return nil
}

// DeliverRouted schedules a routed spike arriving from another shard of
// a partitioned system. Unlike Inject it accounts nothing: the source
// shard already counted the route (RoutedSpikes, TotalHops, boundary
// observer) when the spike was emitted, so delivering it here must not
// double-count. The arrival must be within the delay-ring horizon.
func (ch *Chip) DeliverRouted(coreIdx int32, axon int, at int64) error {
	if err := ch.cfg.ValidateInjection(coreIdx, axon, ch.tick, at); err != nil {
		return err
	}
	ch.cores[coreIdx].ScheduleAxon(axon, int(at))
	return nil
}

// route delivers one emitted spike: external spikes are buffered for the
// caller, on-chip spikes are scheduled into the destination ring, and —
// on shard fragments — spikes towards cores living on another shard are
// handed to the shard router after full accounting.
func (ch *Chip) route(t int64, srcCore int32, n int, tgt core.Target, delay uint8) {
	if tgt.Core == core.ExternalCore {
		ch.counters.OutputSpikes++
		ch.outputs = append(ch.outputs, OutputSpike{Tick: t, Core: srcCore, Neuron: uint8(n)})
		return
	}
	ch.counters.RoutedSpikes++
	ch.counters.TotalHops += uint64(noc.HopCount(ch.Coord(srcCore), ch.Coord(tgt.Core)))
	if ch.onRoute != nil {
		ch.onRoute(srcCore, tgt.Core)
	}
	if ch.cores[tgt.Core] == nil && ch.onShardRoute != nil {
		ch.onShardRoute(t, tgt, delay)
		return
	}
	ch.cores[tgt.Core].ScheduleAxon(int(tgt.Axon), int(t)+int(delay))
}

// Tick advances the chip one tick sequentially and returns the external
// output spikes emitted during it. The returned slice is reused across
// ticks; callers that retain it must copy.
func (ch *Chip) Tick() []OutputSpike {
	return ch.tickWith(func(c *core.Core, t int64, emit core.EmitFunc) { c.Tick(t, emit) }, 1)
}

// TickDense advances the chip one tick using the clock-driven core
// evaluation (every neuron, every core, every tick) — the von Neumann
// simulator baseline.
func (ch *Chip) TickDense() []OutputSpike {
	t := ch.tick
	ch.outputs = ch.outputs[:0]
	for _, i := range ch.live {
		i := i
		ch.cores[i].TickDense(t, func(n int, tgt core.Target, d uint8) {
			ch.route(t, i, n, tgt, d)
		})
	}
	ch.tick++
	return ch.outputs
}

// tickWith runs one tick with the given core-step function, optionally in
// parallel across worker goroutines.
func (ch *Chip) tickWith(step func(*core.Core, int64, core.EmitFunc), workers int) []OutputSpike {
	t := ch.tick
	ch.outputs = ch.outputs[:0]

	if workers <= 1 {
		for _, i := range ch.live {
			c := ch.cores[i]
			if !c.HasWork(t) {
				continue
			}
			i := i
			step(c, t, func(n int, tgt core.Target, d uint8) {
				ch.route(t, i, n, tgt, d)
			})
		}
		ch.tick++
		return ch.outputs
	}

	// Parallel path: workers own disjoint core ranges and buffer their
	// emissions per core; deliveries are applied after the barrier, in
	// core-index order, so no two goroutines touch a destination ring
	// concurrently and the observable spike order is bit-identical to
	// the sequential path. Spikes always arrive at t+delay (delay >= 1),
	// so deferring delivery to the end of the tick is semantically
	// identical to immediate delivery.
	type emission struct {
		n     int
		tgt   core.Target
		delay uint8
	}
	perCore := make([][]emission, len(ch.live))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := w; k < len(ch.live); k += workers {
				i := ch.live[k]
				c := ch.cores[i]
				if !c.HasWork(t) {
					continue
				}
				var buf []emission
				step(c, t, func(n int, tgt core.Target, d uint8) {
					buf = append(buf, emission{n, tgt, d})
				})
				perCore[k] = buf
			}
		}()
	}
	wg.Wait()
	for k, buf := range perCore {
		i := ch.live[k]
		for _, e := range buf {
			ch.route(t, i, e.n, e.tgt, e.delay)
		}
	}
	ch.tick++
	return ch.outputs
}

// TickParallel advances the chip one tick using the given number of
// worker goroutines. Results are bit-identical to Tick.
func (ch *Chip) TickParallel(workers int) []OutputSpike {
	return ch.tickWith(func(c *core.Core, t int64, emit core.EmitFunc) { c.Tick(t, emit) }, workers)
}

// Add accumulates other into c — how a sharded system folds per-shard
// chip counters into the logical-model total.
func (c *Counters) Add(other Counters) {
	c.Core.Add(other.Core)
	c.RoutedSpikes += other.RoutedSpikes
	c.TotalHops += other.TotalHops
	c.OutputSpikes += other.OutputSpikes
	c.InputSpikes += other.InputSpikes
}

// Counters returns chip-level counters with per-core counters summed in.
func (ch *Chip) Counters() Counters {
	out := ch.counters
	for _, i := range ch.live {
		out.Core.Add(ch.cores[i].Counters())
	}
	return out
}

// ResetCounters zeroes chip and core counters.
func (ch *Chip) ResetCounters() {
	ch.counters = Counters{}
	for _, i := range ch.live {
		ch.cores[i].ResetCounters()
	}
}

// Snapshot is a complete runtime snapshot of a chip, taken between
// ticks. Core order matches the live-core order (gated cores have no
// entry).
type Snapshot struct {
	// Tick is the next tick to execute.
	Tick int64
	// Cores holds one state per live core, in live-core order.
	Cores []core.State
	// Counters are the chip-level counters.
	Counters Counters
}

// Snapshot captures the chip's runtime state between ticks.
func (ch *Chip) Snapshot() Snapshot {
	s := Snapshot{Tick: ch.tick, Counters: ch.counters}
	for _, i := range ch.live {
		s.Cores = append(s.Cores, ch.cores[i].Snapshot())
	}
	return s
}

// Restore overwrites the chip's runtime state from a snapshot taken on a
// chip with the same configuration. It panics on a live-core count
// mismatch (wrong configuration).
func (ch *Chip) Restore(s Snapshot) {
	if len(s.Cores) != len(ch.live) {
		panic(fmt.Sprintf("chip: snapshot has %d cores, chip has %d", len(s.Cores), len(ch.live)))
	}
	ch.tick = s.Tick
	ch.counters = s.Counters
	for k, i := range ch.live {
		ch.cores[i].Restore(s.Cores[k])
	}
}

// Capacity describes the resources of a chip build (experiment T1).
type Capacity struct {
	Cores        int
	Neurons      int
	Synapses     int
	SRAMBits     int64
	MeshDiameter int
}

// CapacityOf computes the capacity table entries for a WxH chip. SRAM
// per core: the 256x256 crossbar (65536 bits) plus 256 neurons x ~124
// config+state bits plus 256 axons x 16-slot ring.
func CapacityOf(width, height int) Capacity {
	cores := width * height
	const (
		crossbarBits = core.Size * core.Size
		neuronBits   = 124
		ringBits     = core.Size * core.RingSlots
	)
	perCore := int64(crossbarBits + core.Size*neuronBits + ringBits)
	return Capacity{
		Cores:        cores,
		Neurons:      cores * core.Size,
		Synapses:     cores * core.Size * core.Size,
		SRAMBits:     int64(cores) * perCore,
		MeshDiameter: (width - 1) + (height - 1),
	}
}
