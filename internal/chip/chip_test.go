package chip

import (
	"testing"

	"github.com/neurogo/neurogo/internal/core"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/noc"
	"github.com/neurogo/neurogo/internal/rng"
)

// relayConfig builds a core whose neuron n fires after one input spike on
// axon n and forwards to the given target.
func relayConfig(targets func(n int) core.Target) *core.Config {
	cfg := core.NewConfig()
	for n := 0; n < core.Size; n++ {
		cfg.Synapses.Set(n, n, true)
		cfg.Neurons[n].Threshold = 1
		cfg.Targets[n] = targets(n)
	}
	return cfg
}

// chain2 builds a 2x1 chip where core 0 relays to core 1, and core 1
// outputs externally.
func chain2() *Chip {
	cfg := &Config{
		Width: 2, Height: 1,
		Cores: []*core.Config{
			relayConfig(func(n int) core.Target { return core.Target{Core: 1, Axon: uint8(n)} }),
			relayConfig(func(n int) core.Target { return core.Target{Core: core.ExternalCore} }),
		},
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return New(cfg)
}

func TestConfigValidate(t *testing.T) {
	good := &Config{Width: 1, Height: 1, Cores: []*core.Config{core.NewConfig()}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero width", Config{Width: 0, Height: 1, Cores: nil}},
		{"length mismatch", Config{Width: 2, Height: 1, Cores: []*core.Config{core.NewConfig()}}},
		{"target outside grid", func() Config {
			cc := core.NewConfig()
			cc.Targets[0] = core.Target{Core: 5}
			return Config{Width: 1, Height: 1, Cores: []*core.Config{cc}}
		}()},
		{"target gated core", func() Config {
			cc := core.NewConfig()
			cc.Targets[0] = core.Target{Core: 1}
			return Config{Width: 2, Height: 1, Cores: []*core.Config{cc, nil}}
		}()},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestCoordIndexRoundTrip(t *testing.T) {
	cfg := &Config{Width: 4, Height: 3, Cores: make([]*core.Config, 12)}
	for i := range cfg.Cores {
		cfg.Cores[i] = core.NewConfig()
	}
	ch := New(cfg)
	for i := int32(0); i < 12; i++ {
		if ch.Index(ch.Coord(i)) != i {
			t.Fatalf("round-trip failed for core %d", i)
		}
	}
	if ch.Coord(5) != (noc.Coord{X: 1, Y: 1}) {
		t.Fatalf("Coord(5) = %v", ch.Coord(5))
	}
}

func TestSpikeChainAcrossCores(t *testing.T) {
	ch := chain2()
	if err := ch.Inject(0, 7, 0); err != nil {
		t.Fatal(err)
	}
	var outs []OutputSpike
	for i := 0; i < 4; i++ {
		for _, o := range ch.Tick() {
			outs = append(outs, o)
		}
	}
	// t0: core 0 neuron 7 fires, delay 1 -> core 1 axon 7 at t1.
	// t1: core 1 neuron 7 fires -> external.
	if len(outs) != 1 {
		t.Fatalf("outputs = %v, want exactly one", outs)
	}
	if outs[0] != (OutputSpike{Tick: 1, Core: 1, Neuron: 7}) {
		t.Fatalf("output = %+v", outs[0])
	}
	ct := ch.Counters()
	if ct.RoutedSpikes != 1 || ct.OutputSpikes != 1 || ct.InputSpikes != 1 {
		t.Fatalf("counters = %+v", ct)
	}
	if ct.TotalHops != 1 {
		t.Fatalf("TotalHops = %d, want 1 (adjacent cores)", ct.TotalHops)
	}
}

func TestInjectValidation(t *testing.T) {
	ch := chain2()
	if err := ch.Inject(-1, 0, 0); err == nil {
		t.Error("negative core accepted")
	}
	if err := ch.Inject(9, 0, 0); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := ch.Inject(0, 0, -1); err == nil {
		t.Error("past tick accepted")
	}
	if err := ch.Inject(0, 0, int64(core.RingSlots)); err == nil {
		t.Error("tick beyond ring horizon accepted")
	}
	if err := ch.Inject(0, 0, int64(core.RingSlots)-1); err != nil {
		t.Errorf("tick at horizon edge rejected: %v", err)
	}
}

func TestInjectIntoGatedCore(t *testing.T) {
	cfg := &Config{Width: 2, Height: 1, Cores: []*core.Config{core.NewConfig(), nil}}
	ch := New(cfg)
	if err := ch.Inject(1, 0, 0); err == nil {
		t.Error("injection into gated core accepted")
	}
	if ch.LiveCores() != 1 {
		t.Errorf("LiveCores = %d, want 1", ch.LiveCores())
	}
}

func TestDelayedDeliveryAcrossCores(t *testing.T) {
	cfg := &Config{
		Width: 2, Height: 1,
		Cores: []*core.Config{
			relayConfig(func(n int) core.Target { return core.Target{Core: 1, Axon: uint8(n)} }),
			relayConfig(func(n int) core.Target { return core.Target{Core: core.ExternalCore} }),
		},
	}
	// Neuron 3 on core 0 has axonal delay 5.
	cfg.Cores[0].Neurons[3].Delay = 5
	ch := New(cfg)
	if err := ch.Inject(0, 3, 0); err != nil {
		t.Fatal(err)
	}
	var out []OutputSpike
	for i := 0; i < 10; i++ {
		out = append(out, ch.Tick()...)
	}
	if len(out) != 1 || out[0].Tick != 5 {
		t.Fatalf("outputs = %+v, want single spike at tick 5 (0 fire + delay 5)", out)
	}
}

// randomChip builds a WxH chip of relay cores with random cross-core
// wiring and random thresholds, for determinism tests.
func randomChip(w, h int, seed uint64) *Chip {
	r := rng.NewSplitMix64(seed)
	n := w * h
	cfgs := make([]*core.Config, n)
	for i := 0; i < n; i++ {
		cc := core.NewConfig()
		for k := 0; k < 600; k++ {
			cc.Synapses.Set(r.Intn(core.Size), r.Intn(core.Size), true)
		}
		for nn := 0; nn < core.Size; nn++ {
			cc.Neurons[nn].Threshold = int32(1 + r.Intn(3))
			cc.Neurons[nn].Delay = uint8(1 + r.Intn(3))
			if r.Intn(4) == 0 {
				cc.Targets[nn] = core.Target{Core: core.ExternalCore}
			} else {
				cc.Targets[nn] = core.Target{Core: int32(r.Intn(n)), Axon: uint8(r.Intn(core.Size))}
			}
		}
		cc.Seed = uint16(r.Next())
		cfgs[i] = cc
	}
	cfg := &Config{Width: w, Height: h, Cores: cfgs}
	return New(cfg)
}

func runChip(ch *Chip, ticks int, par int, injectSeed uint64) []OutputSpike {
	r := rng.NewSplitMix64(injectSeed)
	var outs []OutputSpike
	for i := 0; i < ticks; i++ {
		for k := 0; k < 10; k++ {
			_ = ch.Inject(int32(r.Intn(ch.Width()*ch.Height())), r.Intn(core.Size), ch.Now())
		}
		var batch []OutputSpike
		switch {
		case par > 1:
			batch = ch.TickParallel(par)
		default:
			batch = ch.Tick()
		}
		outs = append(outs, batch...)
	}
	return outs
}

func TestParallelMatchesSequential(t *testing.T) {
	seq := runChip(randomChip(4, 4, 11), 48, 1, 99)
	par := runChip(randomChip(4, 4, 11), 48, 3, 99)
	if len(seq) != len(par) {
		t.Fatalf("sequential emitted %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("divergence at output %d: %+v vs %+v", i, seq[i], par[i])
		}
	}
}

func TestDenseMatchesEvent(t *testing.T) {
	ev := runChip(randomChip(3, 3, 5), 48, 1, 7)
	ch := randomChip(3, 3, 5)
	r := rng.NewSplitMix64(7)
	var de []OutputSpike
	for i := 0; i < 48; i++ {
		for k := 0; k < 10; k++ {
			_ = ch.Inject(int32(r.Intn(9)), r.Intn(core.Size), ch.Now())
		}
		de = append(de, ch.TickDense()...)
	}
	if len(ev) != len(de) {
		t.Fatalf("event emitted %d, dense %d", len(ev), len(de))
	}
	for i := range ev {
		if ev[i] != de[i] {
			t.Fatalf("divergence at output %d: %+v vs %+v", i, ev[i], de[i])
		}
	}
}

func TestTickReturnsReusedSlice(t *testing.T) {
	ch := chain2()
	_ = ch.Inject(0, 1, 0)
	ch.Tick()
	out1 := ch.Tick() // spike exits here
	if len(out1) != 1 {
		t.Fatalf("expected output at tick 1, got %v", out1)
	}
	// Subsequent tick must reuse/clear the buffer.
	out2 := ch.Tick()
	if len(out2) != 0 {
		t.Fatalf("idle tick returned %v", out2)
	}
}

func TestResetCounters(t *testing.T) {
	ch := chain2()
	_ = ch.Inject(0, 0, 0)
	ch.Tick()
	ch.Tick()
	if ch.Counters() == (Counters{}) {
		t.Fatal("expected nonzero counters")
	}
	ch.ResetCounters()
	if ch.Counters() != (Counters{}) {
		t.Fatalf("ResetCounters left %+v", ch.Counters())
	}
}

func TestCapacityOf(t *testing.T) {
	cap1 := CapacityOf(64, 64)
	if cap1.Cores != 4096 {
		t.Errorf("Cores = %d, want 4096", cap1.Cores)
	}
	if cap1.Neurons != 4096*256 {
		t.Errorf("Neurons = %d, want ~1M", cap1.Neurons)
	}
	if cap1.Synapses != 4096*256*256 {
		t.Errorf("Synapses = %d, want ~268M", cap1.Synapses)
	}
	if cap1.MeshDiameter != 126 {
		t.Errorf("MeshDiameter = %d, want 126", cap1.MeshDiameter)
	}
	// Scaling: 4 chips = 4x everything except diameter.
	cap4 := CapacityOf(128, 128)
	if cap4.Neurons != 4*cap1.Neurons || cap4.Synapses != 4*cap1.Synapses || cap4.SRAMBits != 4*cap1.SRAMBits {
		t.Error("capacity must scale linearly in core count")
	}
}

func TestHopAccounting(t *testing.T) {
	// 3x1 chain: core 0 -> core 2 is 2 hops.
	cfg := &Config{
		Width: 3, Height: 1,
		Cores: []*core.Config{
			relayConfig(func(n int) core.Target { return core.Target{Core: 2, Axon: uint8(n)} }),
			core.NewConfig(),
			relayConfig(func(n int) core.Target { return core.Target{Core: core.ExternalCore} }),
		},
	}
	ch := New(cfg)
	_ = ch.Inject(0, 0, 0)
	for i := 0; i < 4; i++ {
		ch.Tick()
	}
	if hops := ch.Counters().TotalHops; hops != 2 {
		t.Fatalf("TotalHops = %d, want 2", hops)
	}
}

func BenchmarkChipTick16x16Sparse(b *testing.B) {
	ch := randomChip(16, 16, 1)
	r := rng.NewSplitMix64(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ch.Inject(int32(r.Intn(256)), r.Intn(core.Size), ch.Now())
		ch.Tick()
	}
}

// mixedChip builds a WxH chip whose cores mix deterministic and
// stochastic neurons (stochastic synapses, leak, thresholds) with random
// cross-core wiring — the fuzz substrate for plan/scalar/engine
// equivalence.
func mixedChipConfig(w, h int, seed uint64) *Config {
	r := rng.NewSplitMix64(seed)
	n := w * h
	cfgs := make([]*core.Config, n)
	for i := 0; i < n; i++ {
		cc := core.NewConfig()
		for a := 0; a < core.Size; a++ {
			cc.AxonType[a] = neuron.AxonType(r.Intn(neuron.NumAxonTypes))
		}
		for k := 0; k < 1500; k++ {
			cc.Synapses.Set(r.Intn(core.Size), r.Intn(core.Size), true)
		}
		for nn := 0; nn < core.Size; nn++ {
			p := &cc.Neurons[nn]
			p.SynWeight = [neuron.NumAxonTypes]int16{
				int16(r.Intn(9) - 4), int16(r.Intn(9) - 4),
				int16(r.Intn(255) - 127), int16(r.Intn(255) - 127),
			}
			p.SynStochastic[2] = r.Intn(3) == 0
			p.Leak = int16(r.Intn(5) - 2)
			p.LeakStochastic = r.Intn(6) == 0
			p.Threshold = int32(1 + r.Intn(12))
			p.NegThreshold = int32(r.Intn(12))
			p.MaskBits = uint8(r.Intn(4))
			p.Reset = neuron.ResetMode(r.Intn(3))
			p.NegSaturate = r.Intn(2) == 0
			p.ResetV = int32(r.Intn(7) - 3)
			p.Delay = uint8(1 + r.Intn(4))
			if r.Intn(4) == 0 {
				cc.Targets[nn] = core.Target{Core: core.ExternalCore}
			} else {
				cc.Targets[nn] = core.Target{Core: int32(r.Intn(n)), Axon: uint8(r.Intn(core.Size))}
			}
		}
		cc.Seed = uint16(r.Next())
		cfgs[i] = cc
	}
	return &Config{Width: w, Height: h, Cores: cfgs}
}

// TestPlanScalarEngineFuzzEquivalence pins the tentpole at the chip
// level: over mixed deterministic/stochastic cores, the plan-backed
// event engine, the scalar (NoPlan) engine, the parallel engine and the
// clock-driven dense baseline must produce bit-identical output spike
// streams and exact counters.
func TestPlanScalarEngineFuzzEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		drive := func(ch *Chip, mode string) []OutputSpike {
			r := rng.NewSplitMix64(seed * 31)
			var outs []OutputSpike
			for i := 0; i < 48; i++ {
				for k := 0; k < 12; k++ {
					_ = ch.Inject(int32(r.Intn(ch.Width()*ch.Height())), r.Intn(core.Size), ch.Now())
				}
				var batch []OutputSpike
				switch mode {
				case "dense":
					batch = ch.TickDense()
				case "parallel":
					batch = ch.TickParallel(3)
				default:
					batch = ch.Tick()
				}
				outs = append(outs, batch...)
			}
			return outs
		}
		plan := NewWithOptions(mixedChipConfig(3, 3, seed), Options{})
		ref := drive(plan, "event")
		for _, v := range []struct {
			name string
			ch   *Chip
			mode string
		}{
			{"scalar", NewWithOptions(mixedChipConfig(3, 3, seed), Options{NoPlan: true}), "event"},
			{"dense", New(mixedChipConfig(3, 3, seed)), "dense"},
			{"parallel", New(mixedChipConfig(3, 3, seed)), "parallel"},
		} {
			got := drive(v.ch, v.mode)
			if len(got) != len(ref) {
				t.Fatalf("seed %d: %s emitted %d spikes, plan %d", seed, v.name, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("seed %d: %s spike %d = %+v, plan %+v", seed, v.name, i, got[i], ref[i])
				}
			}
			pc, vc := plan.Counters(), v.ch.Counters()
			if pc.Core.SynapticEvents != vc.Core.SynapticEvents ||
				pc.Core.AxonEvents != vc.Core.AxonEvents ||
				pc.Core.Spikes != vc.Core.Spikes ||
				pc.RoutedSpikes != vc.RoutedSpikes ||
				pc.OutputSpikes != vc.OutputSpikes ||
				pc.TotalHops != vc.TotalHops {
				t.Fatalf("seed %d: %s counters %+v, plan %+v", seed, v.name, vc, pc)
			}
			if v.name != "dense" && pc.Core.NeuronUpdates != vc.Core.NeuronUpdates {
				t.Fatalf("seed %d: %s NeuronUpdates %d, plan %d", seed, v.name, vc.Core.NeuronUpdates, pc.Core.NeuronUpdates)
			}
		}
	}
}
