package crossbar

import (
	"testing"
	"testing/quick"

	"github.com/neurogo/neurogo/internal/rng"
)

func TestSetGetRoundTrip(t *testing.T) {
	var m Matrix
	f := func(aRaw, nRaw uint8) bool {
		a, n := int(aRaw), int(nRaw)
		m.Set(a, n, true)
		if !m.Get(a, n) {
			return false
		}
		m.Set(a, n, false)
		return !m.Get(a, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetIdempotent(t *testing.T) {
	var m Matrix
	m.Set(3, 7, true)
	m.Set(3, 7, true)
	if m.Count() != 1 {
		t.Fatalf("double set produced count %d, want 1", m.Count())
	}
	m.Set(3, 7, false)
	m.Set(3, 7, false)
	if m.Count() != 0 {
		t.Fatalf("double clear produced count %d, want 0", m.Count())
	}
}

func TestZeroValueEmpty(t *testing.T) {
	var m Matrix
	if m.Count() != 0 || m.Density() != 0 {
		t.Fatal("zero-value crossbar must be empty")
	}
	for a := 0; a < Size; a += 17 {
		for n := 0; n < Size; n += 13 {
			if m.Get(a, n) {
				t.Fatalf("empty crossbar has synapse (%d,%d)", a, n)
			}
		}
	}
}

func TestForEachInRowOrderAndCompleteness(t *testing.T) {
	var m Matrix
	want := []int{0, 1, 63, 64, 65, 127, 128, 200, 255}
	for _, n := range want {
		m.Set(5, n, true)
	}
	var got []int
	m.ForEachInRow(5, func(n int) { got = append(got, n) })
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iteration out of order: got %v, want %v", got, want)
		}
	}
}

func TestForEachMatchesGet(t *testing.T) {
	var m Matrix
	r := rng.NewSplitMix64(42)
	for i := 0; i < 500; i++ {
		m.Set(r.Intn(Size), r.Intn(Size), true)
	}
	for a := 0; a < Size; a++ {
		seen := map[int]bool{}
		m.ForEachInRow(a, func(n int) { seen[n] = true })
		for n := 0; n < Size; n++ {
			if m.Get(a, n) != seen[n] {
				t.Fatalf("mismatch at (%d,%d): Get=%v iterated=%v", a, n, m.Get(a, n), seen[n])
			}
		}
	}
}

func TestRowColumnCounts(t *testing.T) {
	var m Matrix
	for n := 0; n < 10; n++ {
		m.Set(4, n, true)
	}
	for a := 0; a < 7; a++ {
		m.Set(a, 99, true)
	}
	// Row 4 has the ten synapses (4,0..9) plus (4,99) from the column loop.
	if c := m.RowCount(4); c != 11 {
		t.Errorf("RowCount(4) = %d, want 11", c)
	}
	if c := m.ColumnCount(99); c != 7 {
		t.Errorf("ColumnCount(99) = %d, want 7", c)
	}
	if c := m.Count(); c != 17 {
		t.Errorf("Count = %d, want 17", c)
	}
}

func TestCountConsistency(t *testing.T) {
	var m Matrix
	r := rng.NewSplitMix64(7)
	for i := 0; i < 1000; i++ {
		m.Set(r.Intn(Size), r.Intn(Size), true)
	}
	rowSum, colSum := 0, 0
	for i := 0; i < Size; i++ {
		rowSum += m.RowCount(i)
		colSum += m.ColumnCount(i)
	}
	if rowSum != m.Count() || colSum != m.Count() {
		t.Fatalf("row sum %d, col sum %d, count %d must all agree", rowSum, colSum, m.Count())
	}
}

func TestDensity(t *testing.T) {
	var m Matrix
	for a := 0; a < Size; a++ {
		for n := 0; n < Size; n++ {
			m.Set(a, n, true)
		}
	}
	if m.Density() != 1 {
		t.Fatalf("full crossbar density %v, want 1", m.Density())
	}
	m.Clear()
	if m.Density() != 0 || m.Count() != 0 {
		t.Fatal("Clear did not empty the crossbar")
	}
}

func TestSetRowAndEqual(t *testing.T) {
	var a, b Matrix
	row := Row{0xDEADBEEF, 0, 0xFFFF, 1}
	a.SetRow(9, row)
	if a.Equal(&b) {
		t.Fatal("matrices with different rows reported equal")
	}
	b.SetRow(9, row)
	if !a.Equal(&b) {
		t.Fatal("identical matrices reported unequal")
	}
	if got := *a.Row(9); got != row {
		t.Fatalf("Row(9) = %v, want %v", got, row)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	var m Matrix
	cases := map[string]func(){
		"set axon":   func() { m.Set(Size, 0, true) },
		"set neuron": func() { m.Set(0, -1, true) },
		"get axon":   func() { m.Get(-1, 0) },
		"row":        func() { m.Row(Size) },
		"foreach":    func() { m.ForEachInRow(256, func(int) {}) },
		"rowcount":   func() { m.RowCount(-2) },
		"colcount":   func() { m.ColumnCount(300) },
		"setrow":     func() { m.SetRow(-1, Row{}) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkForEachInRowSparse(b *testing.B) {
	var m Matrix
	r := rng.NewSplitMix64(1)
	for i := 0; i < 32; i++ {
		m.Set(7, r.Intn(Size), true)
	}
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForEachInRow(7, func(n int) { sink += n })
	}
	_ = sink
}

func BenchmarkForEachInRowDense(b *testing.B) {
	var m Matrix
	for n := 0; n < Size; n++ {
		m.Set(7, n, true)
	}
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForEachInRow(7, func(n int) { sink += n })
	}
	_ = sink
}
