// Package crossbar implements the per-core synapse matrix: a Size x Size
// binary crossbar connecting input axons (rows) to neurons (columns).
//
// The matrix is bit-packed, one uint64 word per 64 neurons, so a full axon
// row is four words. This mirrors the hardware SRAM organisation (one row
// read per arriving spike) and lets the simulator iterate connected
// neurons with trailing-zero scans instead of 256 branch tests.
package crossbar

import (
	"fmt"
	"math/bits"
)

// Size is the number of axons and neurons per core (the crossbar is
// Size x Size).
const Size = 256

// Words is the number of uint64 words that hold one axon row.
const Words = Size / 64

// Row is one bit-packed axon row: bit n of word n/64 is the synapse from
// this axon to neuron n.
type Row [Words]uint64

// Matrix is the full binary synapse crossbar. The zero value is an empty
// (all-zero) crossbar ready for use.
type Matrix struct {
	rows [Size]Row
}

// check panics on out-of-range indices; the simulator always passes
// in-range values, so this guards programming errors, not data.
func check(idx int, what string) {
	if idx < 0 || idx >= Size {
		panic(fmt.Sprintf("crossbar: %s index %d out of range [0,%d)", what, idx, Size))
	}
}

// Set connects or disconnects the synapse from axon a to neuron n.
func (m *Matrix) Set(a, n int, on bool) {
	check(a, "axon")
	check(n, "neuron")
	w, b := n/64, uint(n%64)
	if on {
		m.rows[a][w] |= 1 << b
	} else {
		m.rows[a][w] &^= 1 << b
	}
}

// Get reports whether axon a is connected to neuron n.
func (m *Matrix) Get(a, n int) bool {
	check(a, "axon")
	check(n, "neuron")
	return m.rows[a][n/64]>>(uint(n%64))&1 == 1
}

// Row returns a pointer to the bit-packed row for axon a. Callers must
// not modify it; use Set.
func (m *Matrix) Row(a int) *Row {
	check(a, "axon")
	return &m.rows[a]
}

// ForEachInRow calls fn for every neuron connected to axon a, in
// ascending neuron order. The fixed order is part of the simulator's
// determinism contract (stochastic synapse draws happen in this order).
func (m *Matrix) ForEachInRow(a int, fn func(n int)) {
	check(a, "axon")
	for w := 0; w < Words; w++ {
		word := m.rows[a][w]
		base := w * 64
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			fn(base + tz)
			word &= word - 1
		}
	}
}

// RowCount returns the number of neurons connected to axon a.
func (m *Matrix) RowCount(a int) int {
	check(a, "axon")
	c := 0
	for w := 0; w < Words; w++ {
		c += bits.OnesCount64(m.rows[a][w])
	}
	return c
}

// ColumnCount returns the number of axons connected to neuron n.
func (m *Matrix) ColumnCount(n int) int {
	check(n, "neuron")
	w, b := n/64, uint(n%64)
	c := 0
	for a := 0; a < Size; a++ {
		c += int(m.rows[a][w] >> b & 1)
	}
	return c
}

// Count returns the total number of connected synapses.
func (m *Matrix) Count() int {
	c := 0
	for a := 0; a < Size; a++ {
		for w := 0; w < Words; w++ {
			c += bits.OnesCount64(m.rows[a][w])
		}
	}
	return c
}

// Density returns the fraction of possible synapses that are connected.
func (m *Matrix) Density() float64 {
	return float64(m.Count()) / float64(Size*Size)
}

// Clear disconnects every synapse.
func (m *Matrix) Clear() {
	m.rows = [Size]Row{}
}

// SetRow replaces the whole row for axon a.
func (m *Matrix) SetRow(a int, r Row) {
	check(a, "axon")
	m.rows[a] = r
}

// Equal reports whether two crossbars have identical connectivity.
func (m *Matrix) Equal(o *Matrix) bool {
	return m.rows == o.rows
}
