package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/rng"
	"github.com/neurogo/neurogo/internal/system"
)

// testNet builds a deterministic multi-core network with real
// core-to-core routing (the same shape as the sim golden net, sized
// for a 4x4 grid).
func testNet(seed uint64) *model.Network {
	r := rng.NewSplitMix64(seed)
	m := model.New()
	in := m.AddInputBank("in", 16, model.SourceProps{Type: 0, Delay: 1})
	proto := neuron.Default()
	proto.Threshold = 2
	a := m.AddPopulation("a", 300, proto)
	b := m.AddPopulation("b", 150, proto)
	for i := 0; i < 16; i++ {
		for k := 0; k < 20; k++ {
			m.Connect(in.Line(i), a.ID(r.Intn(300)))
		}
	}
	for i := 0; i < 300; i++ {
		props := m.SourceProps(a.ID(i))
		props.Delay = uint8(2 + r.Intn(3))
		if r.Intn(4) == 0 {
			props.Type = 1
		}
		for k := 0; k < 1+r.Intn(2); k++ {
			m.Connect(model.NeuronNode(a.ID(i)), b.ID(r.Intn(150)))
		}
	}
	for i := 0; i < 150; i++ {
		m.Params(b.ID(i)).Threshold = int32(1 + r.Intn(3))
		m.MarkOutput(b.ID(i))
	}
	return m
}

func testMapping(t testing.TB, seed uint64) *compile.Mapping {
	t.Helper()
	mp, err := compile.Compile(testNet(seed), compile.Options{Seed: seed, Width: 4, Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

// testCfg tiles the 4x4 grid into 16 single-core chips, so every
// core-to-core route crosses a chip boundary.
var testCfg = system.Config{ChipCoresX: 1, ChipCoresY: 1}

// startServer hosts one in-process shard server on a unix socket and
// returns its address. The full RPC path — gob, socket, handshake —
// is exercised; only the process boundary is elided (the root-package
// test covers that via re-exec).
func startServer(t testing.TB, m *compile.Mapping, cfg system.Config, shards, shard int) (*Server, string) {
	t.Helper()
	srv, err := NewServer(m, cfg, shards, shard, chip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	addr := filepath.Join(t.TempDir(), fmt.Sprintf("s%d.sock", shard))
	ln, err := net.Listen("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func startServers(t testing.TB, m *compile.Mapping, cfg system.Config, shards int) ([]*Server, []string) {
	t.Helper()
	srvs := make([]*Server, shards)
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		srvs[i], addrs[i] = startServer(t, m, cfg, shards, i)
	}
	return srvs, addrs
}

// tiledBackend is the execution surface the equivalence driver needs.
type tiledBackend interface {
	Inject(coreIdx int32, axon int, at int64) error
	Tick() []chip.OutputSpike
	Now() int64
}

// drive runs a fixed randomized injection schedule and returns copied
// output spikes.
func drive(t testing.TB, mp *compile.Mapping, b tiledBackend, ticks int, seed uint64) []chip.OutputSpike {
	t.Helper()
	r := rng.NewSplitMix64(seed)
	var outs []chip.OutputSpike
	for tick := 0; tick < ticks; tick++ {
		for k := 0; k < 5; k++ {
			line := r.Intn(16)
			at := b.Now() + int64(mp.InputDelay[line])
			for _, tgt := range mp.InputTargets[line] {
				if err := b.Inject(tgt.Core, int(tgt.Axon), at); err != nil {
					t.Fatal(err)
				}
			}
		}
		outs = append(outs, append([]chip.OutputSpike(nil), b.Tick()...)...)
	}
	return outs
}

func compareOutputs(t testing.TB, label string, got, want []chip.OutputSpike) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d output spikes, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: spike %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestRemoteBitIdentical is the distributed-equivalence contract over
// the real wire: a Sharded over RPC clients (gob over unix sockets)
// emits byte-identical output spikes to the in-process System, with
// identical counters, boundary totals and link matrices — including
// across a Reset mid-sequence.
func TestRemoteBitIdentical(t *testing.T) {
	mp := testMapping(t, 5)
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			sys, err := system.New(mp.Chip, testCfg)
			if err != nil {
				t.Fatal(err)
			}
			_, addrs := startServers(t, mp, testCfg, shards)
			shd, err := DialSharded(mp, testCfg, addrs, ClientOptions{Timeout: 10 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			defer shd.Close()

			check := func(leg string) {
				want := drive(t, mp, sys, 30, 17)
				got := drive(t, mp, shd, 30, 17)
				if len(want) == 0 {
					t.Fatalf("%s: rig emitted nothing; test is vacuous", leg)
				}
				compareOutputs(t, leg, got, want)
				if got, want := shd.Counters(), sys.Chip().Counters(); got != want {
					t.Fatalf("%s: counters %+v, system %+v", leg, got, want)
				}
				gi, ge := shd.BoundaryTotals()
				wi, we := sys.BoundaryTotals()
				if gi != wi || ge != we {
					t.Fatalf("%s: boundary totals (%d,%d), system (%d,%d)", leg, gi, ge, wi, we)
				}
				if ge == 0 {
					t.Fatalf("%s: no crossings on 1x1-core chips", leg)
				}
				wantLink := sys.LinkTraffic()
				gotLink := shd.LinkTraffic()
				for i := range wantLink {
					for j := range wantLink[i] {
						if gotLink[i][j] != wantLink[i][j] {
							t.Fatalf("%s: link[%d][%d] = %d, system %d", leg, i, j, gotLink[i][j], wantLink[i][j])
						}
					}
				}
			}
			check("first presentation")
			// Reset mid-sequence: traffic zeroes on both sides, activity
			// counters persist on both sides, and the replayed schedule is
			// again bit-identical.
			sys.Reset()
			shd.Reset()
			if intra, inter := shd.BoundaryTotals(); intra != 0 || inter != 0 {
				t.Fatalf("Reset left remote boundary totals (%d,%d)", intra, inter)
			}
			check("after reset")
		})
	}
}

// TestHandshakeRejects pins the connection-open verification: a client
// built from a different mapping, a different tile geometry, or
// different partition coordinates is refused before any spike crosses.
func TestHandshakeRejects(t *testing.T) {
	mp := testMapping(t, 5)
	_, addrs := startServers(t, mp, testCfg, 2)

	other := testMapping(t, 6)
	if _, err := DialSharded(other, testCfg, addrs, ClientOptions{}); err == nil {
		t.Error("foreign mapping accepted")
	} else if !strings.Contains(err.Error(), "mapping hash") {
		t.Errorf("foreign mapping error %q", err)
	}

	if _, err := Dial(mp, system.Config{ChipCoresX: 2, ChipCoresY: 2}, addrs[0], 2, 0, ClientOptions{}); err == nil {
		t.Error("mismatched tile geometry accepted")
	} else if !strings.Contains(err.Error(), "geometry") {
		t.Errorf("geometry error %q", err)
	}

	// Server 0 holds shard 0 of 2; asking it to be shard 1, or part of a
	// 4-way partition, must fail.
	if _, err := Dial(mp, testCfg, addrs[0], 2, 1, ClientOptions{}); err == nil {
		t.Error("wrong shard index accepted")
	}
	if _, err := Dial(mp, testCfg, addrs[0], 4, 0, ClientOptions{}); err == nil {
		t.Error("wrong shard count accepted")
	}
	// Addresses out of partition order: shard 1's server answers the
	// handshake for shard 0.
	if _, err := DialSharded(mp, testCfg, []string{addrs[1], addrs[0]}, ClientOptions{}); err == nil {
		t.Error("shuffled shard addresses accepted")
	}
}

// TestLockstepGuard pins the clock verification: a second client whose
// tick sequence does not match the shard's clock is rejected, never
// silently desynchronized.
func TestLockstepGuard(t *testing.T) {
	mp := testMapping(t, 5)
	_, addr := startServer(t, mp, testCfg, 1, 0)
	c1, err := Dial(mp, testCfg, addr, 1, 0, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.TickLocal(system.EvalEvent, 1, nil); err != nil {
		t.Fatal(err)
	}
	// Fresh client, seq 0; the shard is at tick 1.
	c2, err := Dial(mp, testCfg, addr, 1, 0, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, err = c2.TickLocal(system.EvalEvent, 1, nil)
	if err == nil || !strings.Contains(err.Error(), "lockstep") {
		t.Fatalf("desynchronized tick error = %v", err)
	}
	if c2.Err() == nil {
		t.Error("lockstep rejection did not mark the client down")
	}
}

// TestKillShardNeverHangs is the disconnect satellite at the transport
// layer: killing a shard server mid-sequence surfaces a typed
// ErrShardDown from the next Tick within bounded time — never a hang —
// and the partition stays down.
func TestKillShardNeverHangs(t *testing.T) {
	mp := testMapping(t, 5)
	srvs, addrs := startServers(t, mp, testCfg, 2)
	shd, err := DialSharded(mp, testCfg, addrs, ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer shd.Close()
	drive(t, mp, shd, 5, 17)
	if shd.Err() != nil {
		t.Fatal(shd.Err())
	}

	srvs[1].Close() // the kill: listener and live connections severed

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3; i++ {
			shd.Tick()
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Tick hung after shard kill")
	}
	failure := shd.Err()
	if !errors.Is(failure, system.ErrShardDown) {
		t.Fatalf("Err after kill = %v, want ErrShardDown match", failure)
	}
	var down *system.ShardDownError
	if !errors.As(failure, &down) || down.Shard != 1 {
		t.Fatalf("failure %v does not name shard 1", failure)
	}
	if err := shd.Inject(0, 0, shd.Now()); !errors.Is(err, system.ErrShardDown) {
		t.Fatalf("Inject after kill = %v", err)
	}
	shd.Reset()
	if shd.Err() == nil {
		t.Error("Reset revived a dead partition")
	}
}

// TestStalledShardRespectsDeadlines pins the two bounded-wait paths on
// a shard that is alive but unresponsive (its service mutex held): the
// per-call timeout, and a context deadline bound via BindContext.
func TestStalledShardRespectsDeadlines(t *testing.T) {
	mp := testMapping(t, 5)

	t.Run("call-timeout", func(t *testing.T) {
		srv, addr := startServer(t, mp, testCfg, 1, 0)
		c, err := Dial(mp, testCfg, addr, 1, 0, ClientOptions{Timeout: 150 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		srv.svc.mu.Lock()
		defer srv.svc.mu.Unlock()
		start := time.Now()
		_, err = c.TickLocal(system.EvalEvent, 1, nil)
		if err == nil || !strings.Contains(err.Error(), "timed out") {
			t.Fatalf("stalled tick error = %v", err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("timeout took %v", elapsed)
		}
		if c.Err() == nil {
			t.Error("timeout did not mark the client down")
		}
	})

	t.Run("context-deadline", func(t *testing.T) {
		srv, addr := startServer(t, mp, testCfg, 1, 0)
		c, err := Dial(mp, testCfg, addr, 1, 0, ClientOptions{Timeout: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		defer cancel()
		c.BindContext(ctx)
		srv.svc.mu.Lock()
		defer srv.svc.mu.Unlock()
		start := time.Now()
		_, err = c.TickLocal(system.EvalEvent, 1, nil)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("deadline error = %v", err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("deadline took %v", elapsed)
		}
	})
}

// TestDialTimeout pins the bounded handshake: a listener that accepts
// but never speaks RPC cannot hang Dial.
func TestDialTimeout(t *testing.T) {
	mp := testMapping(t, 5)
	addr := filepath.Join(t.TempDir(), "hole.sock")
	ln, err := net.Listen("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept and say nothing
		}
	}()
	start := time.Now()
	_, err = Dial(mp, testCfg, addr, 1, 0, ClientOptions{Timeout: 150 * time.Millisecond})
	if err == nil {
		t.Fatal("black-hole listener accepted")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Dial took %v against a silent listener", elapsed)
	}
}

// TestMappingHashDeterministic pins the handshake fingerprint: equal
// mappings hash equally, different mappings differently.
func TestMappingHashDeterministic(t *testing.T) {
	a1, err := MappingHash(testMapping(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := MappingHash(testMapping(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("identical compiles hash differently")
	}
	b, err := MappingHash(testMapping(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	if a1 == b {
		t.Error("different networks hash equally")
	}
}
