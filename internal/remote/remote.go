// Package remote runs tile shards in other processes: a thin net/rpc
// server (gob over TCP or unix socket) hosting one system.Shard, and a
// client implementing system.ShardConn, so a system.Sharded can drive
// N shard processes as one logical model.
//
// The wire protocol (version 2) is one round-trip per *exchange
// window* per shard: TickN carries the boundary spikes other shards
// emitted during the previous window plus every injection buffered
// since, and returns the window's per-tick outputs, its combined
// outbox, and the shard's running activity totals (chip counters plus
// intra/inter boundary counts — a few fixed-size words, so
// Counters/BoundaryTotals on the client stay local reads). Spike
// payloads travel as packed flat []uint32 words with arrival ticks
// relative to the window start, and both sides reuse their
// encode/decode buffers, so steady-state windows allocate almost
// nothing. A one-tick window is exactly the lockstep protocol; wider
// windows amortize the round-trip over N ticks, which is what buys
// distributed throughput (the mapping's Stats.MinBoundaryDelay bounds
// the legal window; the server enforces the bound it derives from its
// own chip image).
//
// The full (src chip, dst chip) link-traffic matrix no longer rides
// tick replies: it moves over the explicit Sync RPC, called lazily by
// AddLinkTrafficInto, and each Sync carries only the cells that
// changed since the previous Sync (sparse index/delta pairs) — cheap
// even on large tiles, and nothing at all on the hot path.
//
// A connection opens with a handshake verifying protocol version,
// mapping identity (SHA-256 over the deterministic mapping
// serialization), tile geometry, and the (shards, shard) partition
// coordinates, so a client can never drive a shard built from a
// different model or a different partitioning — and a version-1
// client is rejected before a single spike crosses the wire. Per-
// window requests carry the shard's expected clock; any divergence is
// an error, never a silent drift.
//
// Failure semantics: a dead or timed-out shard surfaces as an error
// from TickLocalN, which system.Sharded wraps into ShardDownError
// (matching system.ErrShardDown) and makes sticky. Waits are bounded
// by a per-call timeout and by the context bound via BindContext, so
// a killed shard process can never hang a Classify.
package remote

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/system"
)

// Protocol is the wire format version; bumped on any incompatible
// change to the handshake or per-window messages. Version 2 replaced
// the per-tick Tick RPC (full accounting snapshot on every reply)
// with the windowed TickN RPC plus the delta-based Sync RPC.
const Protocol = 2

// DefaultTimeout bounds each RPC round-trip when the caller binds no
// tighter context deadline.
const DefaultTimeout = 30 * time.Second

// MappingHash fingerprints a compiled mapping: SHA-256 over its
// deterministic serialization (compile.Mapping.Write sorts all map
// iteration, so equal mappings hash equally across processes).
func MappingHash(m *compile.Mapping) ([32]byte, error) {
	h := sha256.New()
	if err := m.Write(h); err != nil {
		return [32]byte{}, fmt.Errorf("remote: hashing mapping: %w", err)
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum, nil
}

// HandshakeArgs opens a shard connection: everything both sides must
// agree on before a single spike crosses the wire.
type HandshakeArgs struct {
	Protocol    int
	MappingHash [32]byte
	// ChipCoresX and ChipCoresY are the per-chip core dimensions of the
	// tiling; Shards and Shard the partition coordinates the client
	// expects this server to hold.
	ChipCoresX, ChipCoresY int
	Shards, Shard          int
}

// HandshakeReply confirms the server's identity.
type HandshakeReply struct {
	// Chips lists the physical chips this shard owns (ascending) — the
	// client cross-checks them against its own PartitionChips result.
	Chips []int
	// Window is the widest exchange window the server will execute,
	// derived from its mapping's minimum boundary-crossing delay
	// (0 = unbounded: no chip-crossing edges exist).
	Window int
}

// Boundary spikes and injections travel as two packed words each: the
// destination core, then axon | (arrival − window-start) << 8. Offsets
// are small and non-negative for any legal window (arrival ≥ window
// start on delivery, ≥ start+1 on emission; at most window + max
// delay — the chip's delay-ring horizon bounds injections the same
// way). Packing beats gob's reflective struct encoding by an order of
// magnitude on the serving path, where injections are the bulk of the
// request bytes.

// packBoundary appends spikes to dst in packed form, arrival ticks
// relative to base.
func packBoundary(dst []uint32, spikes []system.BoundarySpike, base int64) []uint32 {
	for _, b := range spikes {
		dst = append(dst, uint32(b.Core), uint32(b.Axon)|uint32(b.At-base)<<8)
	}
	return dst
}

// unpackBoundary appends decoded spikes to dst, restoring absolute
// arrival ticks from base.
func unpackBoundary(dst []system.BoundarySpike, packed []uint32, base int64) []system.BoundarySpike {
	for i := 0; i+1 < len(packed); i += 2 {
		dst = append(dst, system.BoundarySpike{
			Core: int32(packed[i]),
			Axon: uint8(packed[i+1]),
			At:   base + int64(packed[i+1]>>8),
		})
	}
	return dst
}

// TickNArgs advances the shard one exchange window of N ticks.
type TickNArgs struct {
	// Seq is the tick the client expects the shard to execute next; the
	// server rejects any mismatch, so clock drift is an error, never a
	// silent divergence.
	Seq int64
	// N is the window width in ticks. The server rejects windows wider
	// than the bound it derives from its own mapping.
	N int
	// Mode and Workers select the shard-local evaluation strategy.
	Mode    system.EvalMode
	Workers int
	// Incoming carries the boundary spikes other shards emitted for
	// this shard during the previous window, packed (arrivals relative
	// to Seq).
	Incoming []uint32
	// Injections carries every external input spike buffered since the
	// previous window, packed like Incoming (arrivals relative to Seq);
	// injections always precede the first tick they can affect, so
	// deferred shipment is exact.
	Injections []uint32
}

// TickNReply returns one window's results plus the shard's running
// activity totals (fixed-size, so client-side accounting reads cost no
// round-trips).
type TickNReply struct {
	// OutCounts[k] is the number of output spikes window tick k
	// emitted; Outputs holds them back to back, each packed as
	// core<<8 | neuron (the tick is implied by position).
	OutCounts []uint32
	Outputs   []uint32
	// Boundary is the window's combined outbox, packed (arrivals
	// relative to Seq).
	Boundary []uint32
	// Counters, Intra and Inter are the shard's cumulative activity
	// totals after the window.
	Counters     chip.Counters
	Intra, Inter uint64
}

// SyncArgs and SyncReply serve the lazy link-traffic synchronization.
type SyncArgs struct{}

// SyncReply carries the link-traffic cells that changed since the
// previous Sync, as flattened (row-major index, increment) pairs over
// the full chips x chips matrix.
type SyncReply struct {
	Deltas []uint64
}

// ResetArgs and ResetReply serve Reset and ResetCounters.
type ResetArgs struct{}

// ResetReply is empty: the client adjusts its cached totals locally
// (both resets have exact client-side mirrors).
type ResetReply struct{}

// shardService is the RPC-exported surface over one system.Shard. All
// methods serialize on mu: one shard process serves one lockstep
// client, and the mutex keeps a misbehaving second connection from
// corrupting state rather than giving it service. Reply buffers are
// reused across calls — safe for the same reason the shard's own
// reused slices are: exactly one driving client.
type shardService struct {
	mu     sync.Mutex
	shard  *system.Shard
	hash   [32]byte
	cfg    system.Config
	parts  [][]int
	idx    int
	window int // widest legal exchange window (0 = unbounded)

	inBuf    []system.BoundarySpike
	cntBuf   []uint32
	outBuf   []uint32
	bndBuf   []uint32
	linkBuf  [][]uint64 // scratch for the current matrix
	lastLink [][]uint64 // matrix as of the previous Sync
	deltaBuf []uint64
}

func (s *shardService) totalChips() int {
	total := 0
	for _, p := range s.parts {
		total += len(p)
	}
	return total
}

// Handshake implements the connection-open verification.
func (s *shardService) Handshake(args HandshakeArgs, reply *HandshakeReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if args.Protocol != Protocol {
		return fmt.Errorf("remote: protocol %d, server speaks %d", args.Protocol, Protocol)
	}
	if args.MappingHash != s.hash {
		return errors.New("remote: mapping hash mismatch: client and shard were built from different compiled mappings")
	}
	if args.ChipCoresX != s.cfg.ChipCoresX || args.ChipCoresY != s.cfg.ChipCoresY {
		return fmt.Errorf("remote: tile geometry %dx%d-core chips, server tiles %dx%d",
			args.ChipCoresX, args.ChipCoresY, s.cfg.ChipCoresX, s.cfg.ChipCoresY)
	}
	if args.Shards != len(s.parts) || args.Shard != s.idx {
		return fmt.Errorf("remote: partition mismatch: client expects shard %d/%d, server is shard %d/%d",
			args.Shard, args.Shards, s.idx, len(s.parts))
	}
	reply.Chips = append([]int(nil), s.shard.Chips()...)
	reply.Window = s.window
	return nil
}

// TickN implements the per-window round-trip.
func (s *shardService) TickN(args TickNArgs, reply *TickNReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := s.shard.Now(); args.Seq != now {
		return fmt.Errorf("remote: lockstep broken: client at tick %d, shard at %d", args.Seq, now)
	}
	if args.N < 1 {
		return fmt.Errorf("remote: execution window of %d ticks", args.N)
	}
	if s.window > 0 && args.N > s.window {
		return fmt.Errorf("remote: %d-tick window exceeds the mapping's %d-tick exchange bound", args.N, s.window)
	}
	for i := 0; i+1 < len(args.Injections); i += 2 {
		w := args.Injections[i+1]
		if err := s.shard.Inject(int32(args.Injections[i]), int(w&0xff), args.Seq+int64(w>>8)); err != nil {
			return err
		}
	}
	s.inBuf = unpackBoundary(s.inBuf[:0], args.Incoming, args.Seq)
	res, err := s.shard.TickLocalN(args.Mode, args.Workers, s.inBuf, args.N)
	if err != nil {
		return err
	}
	cnts, outs := s.cntBuf[:0], s.outBuf[:0]
	for _, tick := range res.Outputs {
		cnts = append(cnts, uint32(len(tick)))
		for _, o := range tick {
			outs = append(outs, uint32(o.Core)<<8|uint32(o.Neuron))
		}
	}
	s.cntBuf, s.outBuf = cnts, outs
	s.bndBuf = packBoundary(s.bndBuf[:0], res.Boundary, args.Seq)
	reply.OutCounts = cnts
	reply.Outputs = outs
	reply.Boundary = s.bndBuf
	reply.Counters = s.shard.Counters()
	reply.Intra, reply.Inter = s.shard.BoundaryTotals()
	return nil
}

// Sync implements the lazy link-traffic pull: only cells that changed
// since the previous Sync cross the wire.
func (s *shardService) Sync(_ SyncArgs, reply *SyncReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := s.totalChips()
	if s.linkBuf == nil {
		s.linkBuf = make([][]uint64, total)
		for i := range s.linkBuf {
			s.linkBuf[i] = make([]uint64, total)
		}
	}
	for i := range s.linkBuf {
		for j := range s.linkBuf[i] {
			s.linkBuf[i][j] = 0
		}
	}
	s.shard.AddLinkTrafficInto(s.linkBuf)
	deltas := s.deltaBuf[:0]
	for i := 0; i < total; i++ {
		for j := 0; j < total; j++ {
			if cur, last := s.linkBuf[i][j], s.lastLink[i][j]; cur != last {
				deltas = append(deltas, uint64(i*total+j), cur-last)
				s.lastLink[i][j] = cur
			}
		}
	}
	s.deltaBuf = deltas
	reply.Deltas = deltas
	return nil
}

// Reset implements ShardConn.Reset remotely. The shard zeroes its
// boundary traffic, so the last-synced matrix restarts from zero too.
func (s *shardService) Reset(ResetArgs, *ResetReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.shard.Reset(); err != nil {
		return err
	}
	for i := range s.lastLink {
		for j := range s.lastLink[i] {
			s.lastLink[i][j] = 0
		}
	}
	return nil
}

// ResetCounters implements ShardConn.ResetCounters remotely.
func (s *shardService) ResetCounters(ResetArgs, *ResetReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shard.ResetCounters()
}

// serviceName is the rpc-registered name; versioning it alongside
// Protocol keeps stale binaries from half-working.
const serviceName = "NShard"

// Server hosts one shard behind a listener.
type Server struct {
	svc *shardService
	rpc *rpc.Server

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	done   chan struct{}
}

// NewServer builds the shard server for partition coordinates
// (shard of shards) over the mapping's core grid. Every server and
// every client derive the same partition from system.PartitionChips,
// so the coordinates alone pin which chips this process owns. The
// server also derives its exchange-window bound from the mapping's
// chip image, so a client can never talk it into an inexact window.
func NewServer(m *compile.Mapping, cfg system.Config, shards, shard int, opt chip.Options) (*Server, error) {
	if err := cfg.Validate(m.Chip); err != nil {
		return nil, err
	}
	chipsX := m.Chip.Width / cfg.ChipCoresX
	chipsY := m.Chip.Height / cfg.ChipCoresY
	n := chipsX * chipsY
	if shards < 1 || shards > n {
		return nil, fmt.Errorf("remote: cannot split %d chips into %d shards", n, shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("remote: shard index %d outside [0,%d)", shard, shards)
	}
	parts := system.PartitionChips(n, shards)
	sh, err := system.NewShard(m.Chip, cfg, parts[shard], opt)
	if err != nil {
		return nil, err
	}
	hash, err := MappingHash(m)
	if err != nil {
		return nil, err
	}
	svc := &shardService{
		shard:  sh,
		hash:   hash,
		cfg:    cfg,
		parts:  parts,
		idx:    shard,
		window: compile.MinBoundaryDelay(m.Chip, cfg.ChipCoresX, cfg.ChipCoresY),
	}
	svc.lastLink = make([][]uint64, n)
	for i := range svc.lastLink {
		svc.lastLink[i] = make([]uint64, n)
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName(serviceName, svc); err != nil {
		return nil, err
	}
	return &Server{
		svc:   svc,
		rpc:   srv,
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}, nil
}

// Shard exposes the hosted shard (for probes and tests).
func (s *Server) Shard() *system.Shard { return s.svc.shard }

// Window returns the widest exchange window the server will execute
// (0 = unbounded).
func (s *Server) Window() int { return s.svc.window }

// Serve accepts connections on ln until Close; each connection gets
// the gob-encoded rpc loop. It returns nil after Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("remote: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	var wg sync.WaitGroup
	defer func() {
		wg.Wait()
		close(s.done)
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.rpc.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

// Close stops the server: the listener closes and every live
// connection is severed (how the kill-the-shard tests take a shard
// down mid-presentation). Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return nil
}

// ListenAndServe listens on network/addr ("unix" sockets for same-host
// shard pairs, "tcp" across hosts) and serves until Close.
func (s *Server) ListenAndServe(network, addr string) error {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Client drives one remote shard; it implements system.ShardConn, so
// a system.Sharded built over Clients is the distributed system.
type Client struct {
	rpc        *rpc.Client
	shard      int
	chips      []int
	totalChips int
	window     int // server-reported exchange bound (0 = unbounded)
	timeout    time.Duration

	ctx          context.Context
	seq          int64    // the remote shard's clock, for the lockstep guard
	inj          []uint32 // buffered injections, packed relative to seq
	counters     chip.Counters
	intra, inter uint64
	link         []uint64 // cumulative crossing matrix, synced lazily
	down         error    // sticky transport failure

	// Reused wire and decode buffers: the request is gob-encoded
	// synchronously inside call, and gob decodes replies into existing
	// capacity, so the steady-state window allocates almost nothing.
	args      TickNArgs
	reply     TickNReply
	syncReply SyncReply
	outs      [][]chip.OutputSpike
	boundary  []system.BoundarySpike
}

// ClientOptions configure Dial.
type ClientOptions struct {
	// Timeout bounds each RPC round-trip (DefaultTimeout when zero). A
	// context bound via BindContext additionally bounds every wait.
	Timeout time.Duration
}

// netw infers the network from the address: addresses containing a
// path separator dial unix sockets, everything else TCP.
func netw(addr string) string {
	for _, r := range addr {
		if r == '/' {
			return "unix"
		}
	}
	return "tcp"
}

// Dial connects to the shard server at addr, handshakes, and verifies
// the server owns exactly the chips the client-side partition assigns
// to shard (of shards).
func Dial(m *compile.Mapping, cfg system.Config, addr string, shards, shard int, opts ClientOptions) (*Client, error) {
	hash, err := MappingHash(m)
	if err != nil {
		return nil, err
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	conn, err := net.DialTimeout(netw(addr), addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("remote: dialing shard %d at %s: %w", shard, addr, err)
	}
	c := &Client{
		rpc:     rpc.NewClient(conn),
		shard:   shard,
		timeout: timeout,
		ctx:     context.Background(),
	}
	args := HandshakeArgs{
		Protocol:    Protocol,
		MappingHash: hash,
		ChipCoresX:  cfg.ChipCoresX,
		ChipCoresY:  cfg.ChipCoresY,
		Shards:      shards,
		Shard:       shard,
	}
	var reply HandshakeReply
	if err := c.call("Handshake", args, &reply); err != nil {
		c.rpc.Close()
		return nil, err
	}
	chipsX := m.Chip.Width / cfg.ChipCoresX
	chipsY := m.Chip.Height / cfg.ChipCoresY
	n := chipsX * chipsY
	want := system.PartitionChips(n, shards)[shard]
	if len(reply.Chips) != len(want) {
		c.rpc.Close()
		return nil, fmt.Errorf("remote: shard %d owns %d chips, partition assigns %d", shard, len(reply.Chips), len(want))
	}
	for i, ch := range reply.Chips {
		if ch != want[i] {
			c.rpc.Close()
			return nil, fmt.Errorf("remote: shard %d chip set diverges from the canonical partition", shard)
		}
	}
	c.chips = want
	c.totalChips = n
	c.window = reply.Window
	c.link = make([]uint64, n*n)
	return c, nil
}

// call runs one RPC bounded by the client timeout and the bound
// context — the never-hang guarantee. An abandoned in-flight call
// (timeout, cancellation, dead transport) breaks lockstep, so any
// failure marks the client permanently down.
func (c *Client) call(method string, args any, reply any) error {
	if c.down != nil {
		return c.down
	}
	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	call := c.rpc.Go(serviceName+"."+method, args, reply, make(chan *rpc.Call, 1))
	select {
	case done := <-call.Done:
		if done.Error != nil {
			// Server-side rejections (validation, lockstep) come back as
			// rpc.ServerError with the connection intact, but the shard
			// state on the far side may have half-applied the request;
			// lockstep recovery is not attempted. Mark down either way.
			c.down = done.Error
			return c.down
		}
		return nil
	case <-c.ctx.Done():
		c.down = fmt.Errorf("remote: shard %d call %s: %w", c.shard, method, c.ctx.Err())
		return c.down
	case <-timer.C:
		c.down = fmt.Errorf("remote: shard %d call %s timed out after %v", c.shard, method, c.timeout)
		return c.down
	}
}

// BindContext bounds every subsequent wait by ctx (in addition to the
// client timeout). system.Sharded fans this out per presentation.
func (c *Client) BindContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.ctx = ctx
}

// Chips returns the physical chips the remote shard owns.
func (c *Client) Chips() []int { return c.chips }

// Window returns the server's exchange-window bound (0 = unbounded).
func (c *Client) Window() int { return c.window }

// Err returns the sticky transport failure, nil while healthy.
func (c *Client) Err() error { return c.down }

// TickLocalN implements system.ShardConn: one round-trip carrying the
// window's incoming boundary spikes and the buffered injections,
// returning the per-tick outputs and the window's combined outbox.
// The running activity totals on the reply refresh the client cache.
// All returned slices are reused across windows; retainers must copy.
func (c *Client) TickLocalN(mode system.EvalMode, workers int, incoming []system.BoundarySpike, n int) (system.WindowResult, error) {
	if c.down != nil {
		return system.WindowResult{}, c.down
	}
	if n < 1 {
		return system.WindowResult{}, fmt.Errorf("remote: execution window of %d ticks", n)
	}
	if c.window > 0 && n > c.window {
		return system.WindowResult{}, fmt.Errorf("remote: %d-tick window exceeds shard %d's %d-tick exchange bound", n, c.shard, c.window)
	}
	base := c.seq
	c.args.Seq = base
	c.args.N = n
	c.args.Mode = mode
	c.args.Workers = workers
	c.args.Incoming = packBoundary(c.args.Incoming[:0], incoming, base)
	c.args.Injections = c.inj
	// gob omits zero-valued reply fields (empty slices included), so a
	// reused reply struct must be cleared — length only, keeping the
	// capacity — or stale spikes from the previous window would show
	// through whenever this window's field is empty.
	c.reply.OutCounts = c.reply.OutCounts[:0]
	c.reply.Outputs = c.reply.Outputs[:0]
	c.reply.Boundary = c.reply.Boundary[:0]
	c.reply.Counters = chip.Counters{}
	c.reply.Intra, c.reply.Inter = 0, 0
	if err := c.call("TickN", &c.args, &c.reply); err != nil {
		return system.WindowResult{}, err
	}
	c.inj = c.inj[:0]
	if len(c.reply.OutCounts) != n {
		c.down = fmt.Errorf("remote: shard %d returned %d tick counts for a %d-tick window", c.shard, len(c.reply.OutCounts), n)
		return system.WindowResult{}, c.down
	}
	for len(c.outs) < n {
		c.outs = append(c.outs, nil)
	}
	outs := c.outs[:n]
	pos := 0
	for k := 0; k < n; k++ {
		cnt := int(c.reply.OutCounts[k])
		if cnt < 0 || pos+cnt > len(c.reply.Outputs) {
			c.down = fmt.Errorf("remote: shard %d output stream shorter than its tick counts", c.shard)
			return system.WindowResult{}, c.down
		}
		o := outs[k][:0]
		for _, w := range c.reply.Outputs[pos : pos+cnt] {
			o = append(o, chip.OutputSpike{Tick: base + int64(k), Core: int32(w >> 8), Neuron: uint8(w)})
		}
		outs[k] = o
		pos += cnt
	}
	c.boundary = unpackBoundary(c.boundary[:0], c.reply.Boundary, base)
	c.seq += int64(n)
	c.counters = c.reply.Counters
	c.intra, c.inter = c.reply.Intra, c.reply.Inter
	return system.WindowResult{Outputs: outs, Boundary: c.boundary}, nil
}

// TickLocal implements system.ShardConn: the one-tick window.
func (c *Client) TickLocal(mode system.EvalMode, workers int, incoming []system.BoundarySpike) (system.TickResult, error) {
	win, err := c.TickLocalN(mode, workers, incoming, 1)
	if err != nil {
		return system.TickResult{}, err
	}
	return system.TickResult{Outputs: win.Outputs[0], Boundary: win.Boundary}, nil
}

// Inject implements system.ShardConn: buffered client-side (packed,
// arrival relative to the next window's start), shipped with the next
// TickLocalN. The driving Sharded validated bounds against the full
// core grid already; the shard re-validates on arrival as defense in
// depth. An arrival before the next window start would land in the
// shard's past, so it is refused here — the same injections-precede-
// their-window invariant deferred shipment rests on.
func (c *Client) Inject(coreIdx int32, axon int, at int64) error {
	if c.down != nil {
		return c.down
	}
	off := at - c.seq
	if off < 0 || off > 0xffffff {
		return fmt.Errorf("remote: injection at tick %d outside shard %d's next window starting at %d", at, c.shard, c.seq)
	}
	c.inj = append(c.inj, uint32(coreIdx), uint32(axon)|uint32(off)<<8)
	return nil
}

// Reset implements system.ShardConn. The shard zeroes boundary
// traffic but preserves activity counters (the System.Reset
// contract); the client mirrors both exactly, so no state needs to
// ride the reply.
func (c *Client) Reset() error {
	if c.down != nil {
		return c.down
	}
	var reply ResetReply
	if err := c.call("Reset", ResetArgs{}, &reply); err != nil {
		return err
	}
	c.seq = 0
	c.inj = c.inj[:0]
	c.intra, c.inter = 0, 0
	for i := range c.link {
		c.link[i] = 0
	}
	return nil
}

// ResetCounters implements system.ShardConn. Counters only advance
// inside TickN, so zeroing the cache is the exact mirror of the
// server-side reset.
func (c *Client) ResetCounters() error {
	if c.down != nil {
		return c.down
	}
	var reply ResetReply
	if err := c.call("ResetCounters", ResetArgs{}, &reply); err != nil {
		return err
	}
	c.counters = chip.Counters{}
	return nil
}

// Counters implements system.ShardConn from the cached totals.
func (c *Client) Counters() chip.Counters { return c.counters }

// BoundaryTotals implements system.ShardConn from the cached totals.
func (c *Client) BoundaryTotals() (intra, inter uint64) { return c.intra, c.inter }

// syncLink pulls the link-traffic cells that changed since the last
// Sync and folds them into the cumulative client-side matrix.
func (c *Client) syncLink() error {
	c.syncReply.Deltas = c.syncReply.Deltas[:0] // gob omits empty fields
	if err := c.call("Sync", SyncArgs{}, &c.syncReply); err != nil {
		return err
	}
	for i := 0; i+1 < len(c.syncReply.Deltas); i += 2 {
		if idx := c.syncReply.Deltas[i]; idx < uint64(len(c.link)) {
			c.link[idx] += c.syncReply.Deltas[i+1]
		}
	}
	return nil
}

// AddLinkTrafficInto implements system.ShardConn: a lazy Sync
// round-trip refreshes the cumulative matrix, then the add is local.
// Link traffic rides this explicit pull only — never the tick path.
// On a failed sync the cached (stale) matrix is still added; the
// sticky failure surfaces on the next tick.
func (c *Client) AddLinkTrafficInto(dst [][]uint64) {
	if c.down == nil {
		_ = c.syncLink()
	}
	n := len(dst)
	if n != c.totalChips || len(c.link) != n*n {
		return
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dst[i][j] += c.link[i*n+j]
		}
	}
}

// Close implements system.ShardConn.
func (c *Client) Close() error { return c.rpc.Close() }

var _ system.ShardConn = (*Client)(nil)

// DialSharded dials one shard server per address and assembles the
// distributed system: addrs[i] must host shard i of len(addrs) under
// the canonical partition. The result is a drop-in sim backend —
// bit-identical to the in-process System over the same mapping.
func DialSharded(m *compile.Mapping, cfg system.Config, addrs []string, opts ClientOptions) (*system.Sharded, error) {
	if len(addrs) == 0 {
		return nil, errors.New("remote: no shard addresses")
	}
	if err := cfg.Validate(m.Chip); err != nil {
		return nil, err
	}
	chipsX := m.Chip.Width / cfg.ChipCoresX
	chipsY := m.Chip.Height / cfg.ChipCoresY
	n := chipsX * chipsY
	if len(addrs) > n {
		return nil, fmt.Errorf("remote: %d shard addresses for %d chips", len(addrs), n)
	}
	parts := system.PartitionChips(n, len(addrs))
	conns := make([]system.ShardConn, len(addrs))
	for i, addr := range addrs {
		c, err := Dial(m, cfg, addr, len(addrs), i, opts)
		if err != nil {
			for _, done := range conns[:i] {
				done.Close()
			}
			return nil, err
		}
		conns[i] = c
	}
	return system.NewShardedFrom(m.Chip, cfg, conns, parts)
}
