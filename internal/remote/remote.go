// Package remote runs tile shards in other processes: a thin net/rpc
// server (gob over TCP or unix socket) hosting one system.Shard, and a
// client implementing system.ShardConn, so a system.Sharded can drive
// N shard processes in lockstep as one logical model.
//
// The wire protocol is one round-trip per tick per shard: the request
// carries the boundary spikes addressed to the shard by the previous
// tick plus every injection buffered since the last tick, the reply
// carries the shard's output spikes, its fresh outbox, and a
// cumulative accounting snapshot (chip counters + boundary traffic).
// Because the snapshot rides every reply, Counters/BoundaryTotals/
// AddLinkTrafficInto on the client are local reads — serving-layer
// accounting costs no extra round-trips.
//
// A connection opens with a handshake verifying protocol version,
// mapping identity (SHA-256 over the deterministic mapping
// serialization), tile geometry, and the (shards, shard) partition
// coordinates, so a client can never drive a shard built from a
// different model or a different partitioning. Per-tick requests carry
// the shard's expected clock; any divergence is an error, never a
// silent drift.
//
// Failure semantics: a dead or timed-out shard surfaces as an error
// from TickLocal, which system.Sharded wraps into ShardDownError
// (matching system.ErrShardDown) and makes sticky. Waits are bounded
// by a per-call timeout and by the context bound via BindContext, so
// a killed shard process can never hang a Classify.
package remote

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/system"
)

// Protocol is the wire format version; bumped on any incompatible
// change to the handshake or per-tick messages.
const Protocol = 1

// DefaultTimeout bounds each RPC round-trip when the caller binds no
// tighter context deadline.
const DefaultTimeout = 30 * time.Second

// MappingHash fingerprints a compiled mapping: SHA-256 over its
// deterministic serialization (compile.Mapping.Write sorts all map
// iteration, so equal mappings hash equally across processes).
func MappingHash(m *compile.Mapping) ([32]byte, error) {
	h := sha256.New()
	if err := m.Write(h); err != nil {
		return [32]byte{}, fmt.Errorf("remote: hashing mapping: %w", err)
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum, nil
}

// HandshakeArgs opens a shard connection: everything both sides must
// agree on before a single spike crosses the wire.
type HandshakeArgs struct {
	Protocol    int
	MappingHash [32]byte
	// ChipCoresX and ChipCoresY are the per-chip core dimensions of the
	// tiling; Shards and Shard the partition coordinates the client
	// expects this server to hold.
	ChipCoresX, ChipCoresY int
	Shards, Shard          int
}

// HandshakeReply confirms the server's identity.
type HandshakeReply struct {
	// Chips lists the physical chips this shard owns (ascending) — the
	// client cross-checks them against its own PartitionChips result.
	Chips []int
}

// Injection is one buffered external input spike.
type Injection struct {
	Core int32
	Axon int32
	At   int64
}

// TickArgs advances the shard one tick.
type TickArgs struct {
	// Seq is the tick the client expects the shard to execute; the
	// server rejects any mismatch, so clock drift is an error, never a
	// silent divergence.
	Seq int64
	// Mode and Workers select the shard-local evaluation strategy.
	Mode    system.EvalMode
	Workers int
	// Incoming carries the boundary spikes other shards emitted for
	// this shard on the previous tick — the batched cross-shard
	// transfer, piggybacked so each tick is exactly one round-trip.
	Incoming []system.BoundarySpike
	// Injections carries every external input spike buffered since the
	// previous tick; injections always precede the first tick they can
	// affect, so deferred shipment is exact.
	Injections []Injection
}

// Snapshot is the cumulative accounting state piggybacked on every
// reply, so client-side accounting reads are local.
type Snapshot struct {
	Counters     chip.Counters
	Intra, Inter uint64
	// Link is the shard's (src chip, dst chip) crossing matrix,
	// flattened row-major over the full tile.
	Link []uint64
}

// TickReply returns one tick's results.
type TickReply struct {
	Outputs  []chip.OutputSpike
	Boundary []system.BoundarySpike
	Snap     Snapshot
}

// ResetArgs and ResetReply serve Reset and ResetCounters.
type ResetArgs struct{}

// ResetReply carries the post-reset accounting snapshot.
type ResetReply struct {
	Snap Snapshot
}

// shardService is the RPC-exported surface over one system.Shard. All
// methods serialize on mu: one shard process serves one lockstep
// client, and the mutex keeps a misbehaving second connection from
// corrupting state rather than giving it service.
type shardService struct {
	mu    sync.Mutex
	shard *system.Shard
	hash  [32]byte
	cfg   system.Config
	parts [][]int
	idx   int
}

func (s *shardService) snapshot() Snapshot {
	intra, inter := s.shard.BoundaryTotals()
	total := s.totalChips()
	link := make([][]uint64, total)
	for i := range link {
		link[i] = make([]uint64, total)
	}
	s.shard.AddLinkTrafficInto(link)
	flat := make([]uint64, 0, total*total)
	for _, row := range link {
		flat = append(flat, row...)
	}
	return Snapshot{Counters: s.shard.Counters(), Intra: intra, Inter: inter, Link: flat}
}

func (s *shardService) totalChips() int {
	total := 0
	for _, p := range s.parts {
		total += len(p)
	}
	return total
}

// Handshake implements the connection-open verification.
func (s *shardService) Handshake(args HandshakeArgs, reply *HandshakeReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if args.Protocol != Protocol {
		return fmt.Errorf("remote: protocol %d, server speaks %d", args.Protocol, Protocol)
	}
	if args.MappingHash != s.hash {
		return errors.New("remote: mapping hash mismatch: client and shard were built from different compiled mappings")
	}
	if args.ChipCoresX != s.cfg.ChipCoresX || args.ChipCoresY != s.cfg.ChipCoresY {
		return fmt.Errorf("remote: tile geometry %dx%d-core chips, server tiles %dx%d",
			args.ChipCoresX, args.ChipCoresY, s.cfg.ChipCoresX, s.cfg.ChipCoresY)
	}
	if args.Shards != len(s.parts) || args.Shard != s.idx {
		return fmt.Errorf("remote: partition mismatch: client expects shard %d/%d, server is shard %d/%d",
			args.Shard, args.Shards, s.idx, len(s.parts))
	}
	reply.Chips = append([]int(nil), s.shard.Chips()...)
	return nil
}

// Tick implements the per-tick round-trip.
func (s *shardService) Tick(args TickArgs, reply *TickReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := s.shard.Now(); args.Seq != now {
		return fmt.Errorf("remote: lockstep broken: client at tick %d, shard at %d", args.Seq, now)
	}
	for _, inj := range args.Injections {
		if err := s.shard.Inject(inj.Core, int(inj.Axon), inj.At); err != nil {
			return err
		}
	}
	res, err := s.shard.TickLocal(args.Mode, args.Workers, args.Incoming)
	if err != nil {
		return err
	}
	reply.Outputs = res.Outputs
	reply.Boundary = res.Boundary
	reply.Snap = s.snapshot()
	return nil
}

// Reset implements ShardConn.Reset remotely.
func (s *shardService) Reset(ResetArgs, *ResetReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shard.Reset()
}

// ResetCounters implements ShardConn.ResetCounters remotely; the reply
// refreshes the client's cached snapshot.
func (s *shardService) ResetCounters(_ ResetArgs, reply *ResetReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.shard.ResetCounters(); err != nil {
		return err
	}
	reply.Snap = s.snapshot()
	return nil
}

// serviceName is the rpc-registered name; versioning it alongside
// Protocol keeps stale binaries from half-working.
const serviceName = "NShard"

// Server hosts one shard behind a listener.
type Server struct {
	svc *shardService
	rpc *rpc.Server

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	done   chan struct{}
}

// NewServer builds the shard server for partition coordinates
// (shard of shards) over the mapping's core grid. Every server and
// every client derive the same partition from system.PartitionChips,
// so the coordinates alone pin which chips this process owns.
func NewServer(m *compile.Mapping, cfg system.Config, shards, shard int, opt chip.Options) (*Server, error) {
	if err := cfg.Validate(m.Chip); err != nil {
		return nil, err
	}
	chipsX := m.Chip.Width / cfg.ChipCoresX
	chipsY := m.Chip.Height / cfg.ChipCoresY
	n := chipsX * chipsY
	if shards < 1 || shards > n {
		return nil, fmt.Errorf("remote: cannot split %d chips into %d shards", n, shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("remote: shard index %d outside [0,%d)", shard, shards)
	}
	parts := system.PartitionChips(n, shards)
	sh, err := system.NewShard(m.Chip, cfg, parts[shard], opt)
	if err != nil {
		return nil, err
	}
	hash, err := MappingHash(m)
	if err != nil {
		return nil, err
	}
	svc := &shardService{shard: sh, hash: hash, cfg: cfg, parts: parts, idx: shard}
	srv := rpc.NewServer()
	if err := srv.RegisterName(serviceName, svc); err != nil {
		return nil, err
	}
	return &Server{
		svc:   svc,
		rpc:   srv,
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}, nil
}

// Shard exposes the hosted shard (for probes and tests).
func (s *Server) Shard() *system.Shard { return s.svc.shard }

// Serve accepts connections on ln until Close; each connection gets
// the gob-encoded rpc loop. It returns nil after Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("remote: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	var wg sync.WaitGroup
	defer func() {
		wg.Wait()
		close(s.done)
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.rpc.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

// Close stops the server: the listener closes and every live
// connection is severed (how the kill-the-shard tests take a shard
// down mid-presentation). Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return nil
}

// ListenAndServe listens on network/addr ("unix" sockets for same-host
// shard pairs, "tcp" across hosts) and serves until Close.
func (s *Server) ListenAndServe(network, addr string) error {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Client drives one remote shard; it implements system.ShardConn, so
// a system.Sharded built over Clients is the distributed system.
type Client struct {
	rpc     *rpc.Client
	shard   int
	chips   []int
	timeout time.Duration

	ctx  context.Context
	seq  int64 // the remote shard's clock, for the lockstep guard
	inj  []Injection
	snap Snapshot
	down error // sticky transport failure
}

// ClientOptions configure Dial.
type ClientOptions struct {
	// Timeout bounds each RPC round-trip (DefaultTimeout when zero). A
	// context bound via BindContext additionally bounds every wait.
	Timeout time.Duration
}

// netw infers the network from the address: addresses containing a
// path separator dial unix sockets, everything else TCP.
func netw(addr string) string {
	for _, r := range addr {
		if r == '/' {
			return "unix"
		}
	}
	return "tcp"
}

// Dial connects to the shard server at addr, handshakes, and verifies
// the server owns exactly the chips the client-side partition assigns
// to shard (of shards).
func Dial(m *compile.Mapping, cfg system.Config, addr string, shards, shard int, opts ClientOptions) (*Client, error) {
	hash, err := MappingHash(m)
	if err != nil {
		return nil, err
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	conn, err := net.DialTimeout(netw(addr), addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("remote: dialing shard %d at %s: %w", shard, addr, err)
	}
	c := &Client{
		rpc:     rpc.NewClient(conn),
		shard:   shard,
		timeout: timeout,
		ctx:     context.Background(),
	}
	args := HandshakeArgs{
		Protocol:    Protocol,
		MappingHash: hash,
		ChipCoresX:  cfg.ChipCoresX,
		ChipCoresY:  cfg.ChipCoresY,
		Shards:      shards,
		Shard:       shard,
	}
	var reply HandshakeReply
	if err := c.call("Handshake", args, &reply); err != nil {
		c.rpc.Close()
		return nil, err
	}
	chipsX := m.Chip.Width / cfg.ChipCoresX
	chipsY := m.Chip.Height / cfg.ChipCoresY
	want := system.PartitionChips(chipsX*chipsY, shards)[shard]
	if len(reply.Chips) != len(want) {
		c.rpc.Close()
		return nil, fmt.Errorf("remote: shard %d owns %d chips, partition assigns %d", shard, len(reply.Chips), len(want))
	}
	for i, ch := range reply.Chips {
		if ch != want[i] {
			c.rpc.Close()
			return nil, fmt.Errorf("remote: shard %d chip set diverges from the canonical partition", shard)
		}
	}
	c.chips = want
	return c, nil
}

// call runs one RPC bounded by the client timeout and the bound
// context — the never-hang guarantee. An abandoned in-flight call
// (timeout, cancellation, dead transport) breaks lockstep, so any
// failure marks the client permanently down.
func (c *Client) call(method string, args any, reply any) error {
	if c.down != nil {
		return c.down
	}
	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	call := c.rpc.Go(serviceName+"."+method, args, reply, make(chan *rpc.Call, 1))
	select {
	case done := <-call.Done:
		if done.Error != nil {
			// Server-side rejections (validation, lockstep) come back as
			// rpc.ServerError with the connection intact, but the shard
			// state on the far side may have half-applied the request;
			// lockstep recovery is not attempted. Mark down either way.
			c.down = done.Error
			return c.down
		}
		return nil
	case <-c.ctx.Done():
		c.down = fmt.Errorf("remote: shard %d call %s: %w", c.shard, method, c.ctx.Err())
		return c.down
	case <-timer.C:
		c.down = fmt.Errorf("remote: shard %d call %s timed out after %v", c.shard, method, c.timeout)
		return c.down
	}
}

// BindContext bounds every subsequent wait by ctx (in addition to the
// client timeout). system.Sharded fans this out per presentation.
func (c *Client) BindContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.ctx = ctx
}

// Chips returns the physical chips the remote shard owns.
func (c *Client) Chips() []int { return c.chips }

// Err returns the sticky transport failure, nil while healthy.
func (c *Client) Err() error { return c.down }

// TickLocal implements system.ShardConn: one round-trip carrying the
// incoming boundary spikes and the buffered injections, returning the
// shard's outputs and outbox. The cumulative accounting snapshot on
// the reply refreshes the client cache.
func (c *Client) TickLocal(mode system.EvalMode, workers int, incoming []system.BoundarySpike) (system.TickResult, error) {
	if c.down != nil {
		return system.TickResult{}, c.down
	}
	args := TickArgs{
		Seq:        c.seq,
		Mode:       mode,
		Workers:    workers,
		Incoming:   incoming,
		Injections: c.inj,
	}
	var reply TickReply
	if err := c.call("Tick", args, &reply); err != nil {
		return system.TickResult{}, err
	}
	c.inj = c.inj[:0]
	c.seq++
	c.snap = reply.Snap
	return system.TickResult{Outputs: reply.Outputs, Boundary: reply.Boundary}, nil
}

// Inject implements system.ShardConn: buffered client-side, shipped
// with the next TickLocal. The driving Sharded validated bounds
// against the full core grid already; the shard re-validates on
// arrival as defense in depth.
func (c *Client) Inject(coreIdx int32, axon int, at int64) error {
	if c.down != nil {
		return c.down
	}
	c.inj = append(c.inj, Injection{Core: coreIdx, Axon: int32(axon), At: at})
	return nil
}

// Reset implements system.ShardConn.
func (c *Client) Reset() error {
	if c.down != nil {
		return c.down
	}
	var reply ResetReply
	if err := c.call("Reset", ResetArgs{}, &reply); err != nil {
		return err
	}
	c.seq = 0
	c.inj = c.inj[:0]
	// Reset zeroes boundary traffic but preserves activity counters
	// (the System.Reset contract); mirror it on the cached snapshot.
	c.snap.Intra, c.snap.Inter = 0, 0
	for i := range c.snap.Link {
		c.snap.Link[i] = 0
	}
	return nil
}

// ResetCounters implements system.ShardConn.
func (c *Client) ResetCounters() error {
	if c.down != nil {
		return c.down
	}
	var reply ResetReply
	if err := c.call("ResetCounters", ResetArgs{}, &reply); err != nil {
		return err
	}
	c.snap = reply.Snap
	return nil
}

// Counters implements system.ShardConn from the cached snapshot.
func (c *Client) Counters() chip.Counters { return c.snap.Counters }

// BoundaryTotals implements system.ShardConn from the cached snapshot.
func (c *Client) BoundaryTotals() (intra, inter uint64) { return c.snap.Intra, c.snap.Inter }

// AddLinkTrafficInto implements system.ShardConn from the cached
// snapshot.
func (c *Client) AddLinkTrafficInto(dst [][]uint64) {
	n := len(dst)
	if len(c.snap.Link) != n*n {
		return // no snapshot yet (no tick has run)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dst[i][j] += c.snap.Link[i*n+j]
		}
	}
}

// Close implements system.ShardConn.
func (c *Client) Close() error { return c.rpc.Close() }

var _ system.ShardConn = (*Client)(nil)

// DialSharded dials one shard server per address and assembles the
// distributed system: addrs[i] must host shard i of len(addrs) under
// the canonical partition. The result is a drop-in sim backend —
// bit-identical to the in-process System over the same mapping.
func DialSharded(m *compile.Mapping, cfg system.Config, addrs []string, opts ClientOptions) (*system.Sharded, error) {
	if len(addrs) == 0 {
		return nil, errors.New("remote: no shard addresses")
	}
	if err := cfg.Validate(m.Chip); err != nil {
		return nil, err
	}
	chipsX := m.Chip.Width / cfg.ChipCoresX
	chipsY := m.Chip.Height / cfg.ChipCoresY
	n := chipsX * chipsY
	if len(addrs) > n {
		return nil, fmt.Errorf("remote: %d shard addresses for %d chips", len(addrs), n)
	}
	parts := system.PartitionChips(n, len(addrs))
	conns := make([]system.ShardConn, len(addrs))
	for i, addr := range addrs {
		c, err := Dial(m, cfg, addr, len(addrs), i, opts)
		if err != nil {
			for _, done := range conns[:i] {
				done.Close()
			}
			return nil, err
		}
		conns[i] = c
	}
	return system.NewShardedFrom(m.Chip, cfg, conns, parts)
}
