package remote

// Windowed-exchange coverage: the Protocol v2 bit-identity fuzz across
// shard counts x window widths x engines (including Reset
// mid-sequence), the delay-1 mapping that must force lockstep, and the
// protocol-v1 handshake rejection.

import (
	"fmt"
	"net/rpc"
	"strings"
	"testing"
	"time"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/rng"
	"github.com/neurogo/neurogo/internal/system"
)

// windowedNet is the fuzz workload for multi-tick exchange: every
// neuron-to-neuron edge carries >= 4 ticks of axonal delay, and every
// neuron has exactly one outgoing edge so no splitter relay (whose
// source hop runs at delay 1) ever pins the window at lockstep. On
// 1x1-core chips that makes MinBoundaryDelay 4 — windows 1, 2 and 4
// are all provably exact.
func windowedNet(seed uint64) *model.Network {
	r := rng.NewSplitMix64(seed)
	m := model.New()
	in := m.AddInputBank("in", 16, model.SourceProps{Type: 0, Delay: 1})
	proto := neuron.Default()
	proto.Threshold = 2
	a := m.AddPopulation("a", 1600, proto)
	b := m.AddPopulation("b", 800, proto)
	for i := 0; i < 16; i++ {
		for k := 0; k < 25; k++ {
			m.Connect(in.Line(i), a.ID(r.Intn(1600)))
		}
	}
	for i := 0; i < 1600; i++ {
		props := m.SourceProps(a.ID(i))
		props.Delay = uint8(4 + r.Intn(3))
		if r.Intn(4) == 0 {
			props.Type = 1
		}
		m.Connect(model.NeuronNode(a.ID(i)), b.ID(i%800))
	}
	for i := 0; i < 800; i++ {
		m.Params(b.ID(i)).Threshold = int32(1 + r.Intn(2))
		m.MarkOutput(b.ID(i))
	}
	return m
}

func windowedMapping(t testing.TB, seed uint64) *compile.Mapping {
	t.Helper()
	mp, err := compile.Compile(windowedNet(seed), compile.Options{
		Seed: seed, Width: 4, Height: 4, ChipCoresX: 1, ChipCoresY: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := mp.Stats.MinBoundaryDelay; d < 4 {
		t.Fatalf("windowed fuzz mapping has MinBoundaryDelay %d, want >= 4; the rig no longer proves the windows it tests", d)
	}
	return mp
}

// driveWindowed runs the same randomized injection schedule as drive,
// but batched: each exchange window's injections are buffered up
// front (the schedule is output-independent, so this is legal), then
// the whole window executes in one TickN. With w == 1 this is exactly
// drive's lockstep loop.
func driveWindowed(t testing.TB, mp *compile.Mapping, shd *system.Sharded, mode system.EvalMode, ticks, w int, seed uint64) []chip.OutputSpike {
	t.Helper()
	r := rng.NewSplitMix64(seed)
	var outs []chip.OutputSpike
	for tick := 0; tick < ticks; {
		n := w
		if rem := ticks - tick; n > rem {
			n = rem
		}
		base := shd.Now()
		for k := 0; k < n; k++ {
			for j := 0; j < 5; j++ {
				line := r.Intn(16)
				at := base + int64(k) + int64(mp.InputDelay[line])
				for _, tgt := range mp.InputTargets[line] {
					if err := shd.Inject(tgt.Core, int(tgt.Axon), at); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		win := shd.TickN(mode, 2, n)
		if win == nil {
			t.Fatal(shd.Err())
		}
		for _, tickOuts := range win {
			outs = append(outs, tickOuts...)
		}
		tick += n
	}
	return outs
}

// TestRemoteWindowedBitIdentical is the windowed-exchange equivalence
// fuzz: shards x window width x engine, over the real RPC wire, each
// including a Reset mid-sequence — output spikes, counters, boundary
// totals and the link matrix must all be bit-identical to the
// per-tick in-process System.
func TestRemoteWindowedBitIdentical(t *testing.T) {
	const ticks = 30
	mp := windowedMapping(t, 7)

	// Per-tick in-process reference, both sides of a mid-sequence Reset.
	ref, err := system.New(mp.Chip, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	want1 := drive(t, mp, ref, ticks, 23)
	if len(want1) == 0 {
		t.Fatal("reference emitted nothing; fuzz is vacuous")
	}
	cnt1 := ref.Chip().Counters()
	intra1, inter1 := ref.BoundaryTotals()
	if inter1 == 0 {
		t.Fatal("reference crossed no chip boundary; fuzz is vacuous")
	}
	link1 := copyLinks(ref.LinkTraffic())
	ref.Reset()
	want2 := drive(t, mp, ref, ticks, 23)
	cnt2 := ref.Chip().Counters()
	intra2, inter2 := ref.BoundaryTotals()
	link2 := copyLinks(ref.LinkTraffic())

	nChips := len(link1)
	for _, shards := range []int{1, 2, 4} {
		// Non-vacuity for the exchange path itself: with this partition
		// some reference traffic must cross shard boundaries, or the
		// windows would never carry a spike over the wire.
		if shards > 1 && crossShardTraffic(link1, shards) == 0 {
			t.Fatalf("shards-%d: no cross-shard traffic in the reference; fuzz is vacuous", shards)
		}
		for _, w := range []int{1, 2, 4} {
			for _, eng := range []struct {
				name string
				mode system.EvalMode
			}{
				{"event", system.EvalEvent},
				{"dense", system.EvalDense},
				{"parallel", system.EvalParallel},
			} {
				t.Run(fmt.Sprintf("shards-%d/w-%d/%s", shards, w, eng.name), func(t *testing.T) {
					_, addrs := startServers(t, mp, testCfg, shards)
					shd, err := DialSharded(mp, testCfg, addrs, ClientOptions{Timeout: 10 * time.Second})
					if err != nil {
						t.Fatal(err)
					}
					defer shd.Close()

					check := func(leg string, want []chip.OutputSpike, cnt chip.Counters, intra, inter uint64, link [][]uint64) {
						got := driveWindowed(t, mp, shd, eng.mode, ticks, w, 23)
						compareOutputs(t, leg, got, want)
						// Counters are spike-exact across engines except the
						// dense engine's work metrics (it updates every neuron
						// every tick by design), so compare them against the
						// event-mode reference on the event-order engines only.
						if eng.mode != system.EvalDense {
							if got := shd.Counters(); got != cnt {
								t.Fatalf("%s: counters %+v, reference %+v", leg, got, cnt)
							}
						}
						gi, ge := shd.BoundaryTotals()
						if gi != intra || ge != inter {
							t.Fatalf("%s: boundary totals (%d,%d), reference (%d,%d)", leg, gi, ge, intra, inter)
						}
						gl := shd.LinkTraffic()
						for i := 0; i < nChips; i++ {
							for j := 0; j < nChips; j++ {
								if gl[i][j] != link[i][j] {
									t.Fatalf("%s: link[%d][%d] = %d, reference %d", leg, i, j, gl[i][j], link[i][j])
								}
							}
						}
					}
					check("first presentation", want1, cnt1, intra1, inter1, link1)
					shd.Reset()
					check("after reset", want2, cnt2, intra2, inter2, link2)
				})
			}
		}
	}
}

func copyLinks(link [][]uint64) [][]uint64 {
	out := make([][]uint64, len(link))
	for i := range link {
		out[i] = append([]uint64(nil), link[i]...)
	}
	return out
}

// crossShardTraffic sums link-matrix traffic between chips that a
// k-way partition places on different shards.
func crossShardTraffic(link [][]uint64, shards int) uint64 {
	shardOf := make([]int, len(link))
	for s, chips := range system.PartitionChips(len(link), shards) {
		for _, c := range chips {
			shardOf[c] = s
		}
	}
	var total uint64
	for i := range link {
		for j := range link[i] {
			if shardOf[i] != shardOf[j] {
				total += link[i][j]
			}
		}
	}
	return total
}

// TestDelayOneMappingForcesLockstep pins the safety rail: a mapping
// with a delay-1 chip crossing bounds the exchange window at 1, the
// server refuses wider windows outright, and the client refuses to
// send them.
func TestDelayOneMappingForcesLockstep(t *testing.T) {
	mp := testMapping(t, 5) // splitter relays pin MinBoundaryDelay at 1
	if d := compile.MinBoundaryDelay(mp.Chip, 1, 1); d != 1 {
		t.Fatalf("testMapping MinBoundaryDelay = %d, want 1 (test rig drifted)", d)
	}
	srvs, addrs := startServers(t, mp, testCfg, 2)
	if w := srvs[0].Window(); w != 1 {
		t.Fatalf("server window = %d, want 1", w)
	}
	shd, err := DialSharded(mp, testCfg, addrs, ClientOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer shd.Close()

	// Lockstep must still work...
	if out := shd.TickN(system.EvalEvent, 1, 1); out == nil {
		t.Fatal(shd.Err())
	}
	// ...and a 2-tick window must be refused before it can desync state.
	if out := shd.TickN(system.EvalEvent, 1, 2); out != nil {
		t.Fatal("2-tick window accepted on a delay-1 mapping")
	}
	err = shd.Err()
	if err == nil || !strings.Contains(err.Error(), "exchange bound") {
		t.Fatalf("window rejection error = %v", err)
	}
}

// TestHandshakeRejectsProtocolV1 pins cross-version safety: a client
// still speaking the lockstep v1 wire format is refused at handshake,
// before any spike crosses.
func TestHandshakeRejectsProtocolV1(t *testing.T) {
	mp := testMapping(t, 5)
	_, addr := startServer(t, mp, testCfg, 1, 0)
	hash, err := MappingHash(mp)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := rpc.Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	args := HandshakeArgs{
		Protocol:    1,
		MappingHash: hash,
		ChipCoresX:  testCfg.ChipCoresX,
		ChipCoresY:  testCfg.ChipCoresY,
		Shards:      1,
		Shard:       0,
	}
	var reply HandshakeReply
	err = rc.Call("NShard.Handshake", args, &reply)
	if err == nil || !strings.Contains(err.Error(), "protocol 1") {
		t.Fatalf("v1 handshake error = %v, want protocol rejection", err)
	}
}
