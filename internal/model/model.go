// Package model describes logical spiking networks independently of their
// physical mapping onto cores.
//
// The abstraction mirrors the architecture's real constraints rather than
// hiding them:
//
//   - A connection carries no weight. Weights live on the destination
//     neuron, one signed value per axon type; an edge only selects which
//     type it uses — and the type is a property of the *source* (its axon
//     line), as in the hardware. This is a Dale's-law-like discipline:
//     a source is excitatory or inhibitory (or one of the two auxiliary
//     classes) for all of its targets.
//
//   - Axonal delay is a property of the source neuron, applied to all of
//     its targets.
//
//   - Fan-out is unrestricted at this level; the compiler realises it
//     with in-core axon fan-out and splitter relay trees, which is why
//     multi-core fan-out needs OutDelay >= 2 (each relay level costs one
//     tick).
//
// Networks are built incrementally from populations, input banks and
// edges, then handed to the compiler.
package model

import (
	"fmt"

	"github.com/neurogo/neurogo/internal/neuron"
)

// NeuronID identifies a logical neuron (dense, starting at 0).
type NeuronID int32

// Node is an edge source: either a logical neuron or an external input
// line. The zero Node is neuron 0; use Input(true) constructors below.
type Node struct {
	// IsInput distinguishes input lines from neurons.
	IsInput bool
	// Idx is a NeuronID or an input-line index, per IsInput.
	Idx int32
}

// NeuronNode returns the Node for a logical neuron.
func NeuronNode(id NeuronID) Node { return Node{Idx: int32(id)} }

// InputNode returns the Node for an external input line.
func InputNode(line int32) Node { return Node{IsInput: true, Idx: line} }

// String renders the node for diagnostics.
func (n Node) String() string {
	if n.IsInput {
		return fmt.Sprintf("in%d", n.Idx)
	}
	return fmt.Sprintf("n%d", n.Idx)
}

// Edge is one logical connection.
type Edge struct {
	From Node
	To   NeuronID
}

// Population is a named block of consecutively numbered neurons.
type Population struct {
	Name  string
	First NeuronID
	N     int
}

// ID returns the NeuronID of member i.
func (p *Population) ID(i int) NeuronID {
	if i < 0 || i >= p.N {
		panic(fmt.Sprintf("model: population %q index %d out of range [0,%d)", p.Name, i, p.N))
	}
	return p.First + NeuronID(i)
}

// InputBank is a named block of consecutive external input lines.
type InputBank struct {
	Name  string
	First int32
	N     int
}

// Line returns the Node for member i of the bank.
func (b *InputBank) Line(i int) Node {
	if i < 0 || i >= b.N {
		panic(fmt.Sprintf("model: input bank %q index %d out of range [0,%d)", b.Name, i, b.N))
	}
	return InputNode(b.First + int32(i))
}

// SourceProps are the per-source emission properties (the "axon line"
// configuration): the axon type seen by all targets, and the axonal delay.
type SourceProps struct {
	Type  neuron.AxonType
	Delay uint8
}

// Network is a logical spiking network under construction.
type Network struct {
	pops   []*Population
	banks  []*InputBank
	params []neuron.Params // per neuron
	nprops []SourceProps   // per neuron (output line properties)
	iprops []SourceProps   // per input line
	output []bool          // per neuron: externally observed
	edges  []Edge
}

// New returns an empty network.
func New() *Network {
	return &Network{}
}

// AddPopulation appends n neurons initialised from proto and returns the
// handle. Source properties default to type 0, delay 1.
func (m *Network) AddPopulation(name string, n int, proto neuron.Params) *Population {
	if n <= 0 {
		panic(fmt.Sprintf("model: population %q size %d must be positive", name, n))
	}
	p := &Population{Name: name, First: NeuronID(len(m.params)), N: n}
	m.pops = append(m.pops, p)
	for i := 0; i < n; i++ {
		m.params = append(m.params, proto)
		m.nprops = append(m.nprops, SourceProps{Type: 0, Delay: 1})
		m.output = append(m.output, false)
	}
	return p
}

// PadNeuronDelays raises every neuron source delay below min up to min
// (input-line delays are untouched — they gate the injection horizon,
// not chip-to-chip routing). Padding trades a few ticks of added
// classification latency for boundary slack: after compilation every
// inter-core edge carries at least min ticks (min-1 on the relay leg of
// split fan-outs), which is what lets the distributed drivers run
// multi-tick exchange windows (see compile.Stats.MinBoundaryDelay).
// Each padded stage's output stream shifts later by the added delay;
// decoders observing a long enough window see the same evidence.
// Panics if min exceeds neuron.MaxDelay.
func (m *Network) PadNeuronDelays(min uint8) {
	if min > neuron.MaxDelay {
		panic(fmt.Sprintf("model: pad delay %d exceeds max %d", min, neuron.MaxDelay))
	}
	for i := range m.nprops {
		if m.nprops[i].Delay < min {
			m.nprops[i].Delay = min
		}
	}
}

// AddInputBank appends n external input lines with the given source
// properties and returns the handle.
func (m *Network) AddInputBank(name string, n int, props SourceProps) *InputBank {
	if n <= 0 {
		panic(fmt.Sprintf("model: input bank %q size %d must be positive", name, n))
	}
	b := &InputBank{Name: name, First: int32(len(m.iprops)), N: n}
	m.banks = append(m.banks, b)
	for i := 0; i < n; i++ {
		m.iprops = append(m.iprops, props)
	}
	return b
}

// Connect adds an edge from a source node to a destination neuron.
func (m *Network) Connect(from Node, to NeuronID) {
	m.edges = append(m.edges, Edge{From: from, To: to})
}

// MarkOutput flags a neuron as externally observed: its spikes are
// reported off-chip in addition to any internal fan-out.
func (m *Network) MarkOutput(id NeuronID) {
	m.output[id] = true
}

// IsOutput reports whether the neuron is externally observed.
func (m *Network) IsOutput(id NeuronID) bool { return m.output[id] }

// Params returns a mutable pointer to a neuron's parameters.
func (m *Network) Params(id NeuronID) *neuron.Params { return &m.params[id] }

// SourceProps returns a mutable pointer to a neuron's emission properties.
func (m *Network) SourceProps(id NeuronID) *SourceProps { return &m.nprops[id] }

// InputProps returns a mutable pointer to an input line's properties.
func (m *Network) InputProps(line int32) *SourceProps { return &m.iprops[line] }

// Neurons returns the number of logical neurons.
func (m *Network) Neurons() int { return len(m.params) }

// InputLines returns the number of external input lines.
func (m *Network) InputLines() int { return len(m.iprops) }

// Edges returns the edge list in insertion order. Callers must not
// modify it.
func (m *Network) Edges() []Edge { return m.edges }

// Populations returns the population handles in creation order.
func (m *Network) Populations() []*Population { return m.pops }

// InputBanks returns the input bank handles in creation order.
func (m *Network) InputBanks() []*InputBank { return m.banks }

// OutputNeurons returns the IDs of all externally observed neurons, in
// ascending order.
func (m *Network) OutputNeurons() []NeuronID {
	var out []NeuronID
	for id, isOut := range m.output {
		if isOut {
			out = append(out, NeuronID(id))
		}
	}
	return out
}

// Validate checks ranges, parameter blocks and emission properties.
func (m *Network) Validate() error {
	for id := range m.params {
		if err := m.params[id].Validate(); err != nil {
			return fmt.Errorf("model: neuron %d: %w", id, err)
		}
		if err := validateProps(m.nprops[id]); err != nil {
			return fmt.Errorf("model: neuron %d source: %w", id, err)
		}
	}
	for line, pr := range m.iprops {
		if err := validateProps(pr); err != nil {
			return fmt.Errorf("model: input line %d: %w", line, err)
		}
	}
	for i, e := range m.edges {
		if e.To < 0 || int(e.To) >= len(m.params) {
			return fmt.Errorf("model: edge %d targets unknown neuron %d", i, e.To)
		}
		if e.From.IsInput {
			if e.From.Idx < 0 || int(e.From.Idx) >= len(m.iprops) {
				return fmt.Errorf("model: edge %d from unknown input line %d", i, e.From.Idx)
			}
		} else if e.From.Idx < 0 || int(e.From.Idx) >= len(m.params) {
			return fmt.Errorf("model: edge %d from unknown neuron %d", i, e.From.Idx)
		}
	}
	return nil
}

func validateProps(p SourceProps) error {
	if p.Type >= neuron.NumAxonTypes {
		return fmt.Errorf("axon type %d out of range", p.Type)
	}
	if p.Delay < 1 || p.Delay > neuron.MaxDelay {
		return fmt.Errorf("delay %d outside [1,%d]", p.Delay, neuron.MaxDelay)
	}
	return nil
}

// FanOut returns, for every source node, its destination list in edge
// insertion order. The outer map is returned as two slices (neuron
// sources indexed by NeuronID, input sources by line) to keep iteration
// deterministic.
func (m *Network) FanOut() (fromNeuron [][]NeuronID, fromInput [][]NeuronID) {
	fromNeuron = make([][]NeuronID, len(m.params))
	fromInput = make([][]NeuronID, len(m.iprops))
	for _, e := range m.edges {
		if e.From.IsInput {
			fromInput[e.From.Idx] = append(fromInput[e.From.Idx], e.To)
		} else {
			fromNeuron[e.From.Idx] = append(fromNeuron[e.From.Idx], e.To)
		}
	}
	return fromNeuron, fromInput
}
