package model

import (
	"testing"

	"github.com/neurogo/neurogo/internal/neuron"
)

func TestAddPopulationNumbering(t *testing.T) {
	m := New()
	a := m.AddPopulation("a", 3, neuron.Default())
	b := m.AddPopulation("b", 2, neuron.Default())
	if a.First != 0 || a.N != 3 {
		t.Fatalf("a = %+v", a)
	}
	if b.First != 3 || b.N != 2 {
		t.Fatalf("b = %+v", b)
	}
	if m.Neurons() != 5 {
		t.Fatalf("Neurons = %d", m.Neurons())
	}
	if a.ID(2) != 2 || b.ID(0) != 3 {
		t.Fatal("ID numbering wrong")
	}
}

func TestPopulationIDPanics(t *testing.T) {
	m := New()
	a := m.AddPopulation("a", 3, neuron.Default())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.ID(3)
}

func TestAddPopulationPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().AddPopulation("x", 0, neuron.Default())
}

func TestInputBanks(t *testing.T) {
	m := New()
	in := m.AddInputBank("px", 4, SourceProps{Type: 1, Delay: 2})
	if m.InputLines() != 4 {
		t.Fatalf("InputLines = %d", m.InputLines())
	}
	n := in.Line(3)
	if !n.IsInput || n.Idx != 3 {
		t.Fatalf("Line(3) = %+v", n)
	}
	if got := m.InputProps(0); got.Type != 1 || got.Delay != 2 {
		t.Fatalf("props = %+v", got)
	}
	if n.String() != "in3" {
		t.Fatalf("String = %q", n.String())
	}
	if NeuronNode(7).String() != "n7" {
		t.Fatal("neuron node string wrong")
	}
}

func TestConnectAndFanOut(t *testing.T) {
	m := New()
	in := m.AddInputBank("px", 2, SourceProps{Type: 0, Delay: 1})
	p := m.AddPopulation("p", 3, neuron.Default())
	m.Connect(in.Line(0), p.ID(0))
	m.Connect(in.Line(0), p.ID(1))
	m.Connect(NeuronNode(p.ID(0)), p.ID(2))
	fn, fi := m.FanOut()
	if len(fi[0]) != 2 || fi[0][0] != 0 || fi[0][1] != 1 {
		t.Fatalf("input fanout = %v", fi[0])
	}
	if len(fi[1]) != 0 {
		t.Fatalf("unused input has fanout %v", fi[1])
	}
	if len(fn[0]) != 1 || fn[0][0] != 2 {
		t.Fatalf("neuron fanout = %v", fn[0])
	}
	if len(m.Edges()) != 3 {
		t.Fatalf("edges = %d", len(m.Edges()))
	}
}

func TestOutputs(t *testing.T) {
	m := New()
	p := m.AddPopulation("p", 4, neuron.Default())
	m.MarkOutput(p.ID(1))
	m.MarkOutput(p.ID(3))
	outs := m.OutputNeurons()
	if len(outs) != 2 || outs[0] != 1 || outs[1] != 3 {
		t.Fatalf("outputs = %v", outs)
	}
	if !m.IsOutput(1) || m.IsOutput(0) {
		t.Fatal("IsOutput wrong")
	}
}

func TestParamsMutable(t *testing.T) {
	m := New()
	p := m.AddPopulation("p", 2, neuron.Default())
	m.Params(p.ID(1)).Threshold = 42
	if m.Params(p.ID(1)).Threshold != 42 {
		t.Fatal("params not mutable in place")
	}
	if m.Params(p.ID(0)).Threshold == 42 {
		t.Fatal("mutation leaked across neurons")
	}
	m.SourceProps(p.ID(0)).Delay = 3
	if m.SourceProps(p.ID(0)).Delay != 3 {
		t.Fatal("source props not mutable")
	}
}

func TestValidateOK(t *testing.T) {
	m := New()
	in := m.AddInputBank("px", 2, SourceProps{Type: 0, Delay: 1})
	p := m.AddPopulation("p", 2, neuron.Default())
	m.Connect(in.Line(0), p.ID(0))
	m.Connect(NeuronNode(p.ID(0)), p.ID(1))
	if err := m.Validate(); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	mk := func() *Network {
		m := New()
		m.AddInputBank("px", 1, SourceProps{Type: 0, Delay: 1})
		m.AddPopulation("p", 2, neuron.Default())
		return m
	}
	cases := []struct {
		name string
		mut  func(m *Network)
	}{
		{"bad neuron params", func(m *Network) { m.Params(0).Threshold = 0 }},
		{"bad neuron delay", func(m *Network) { m.SourceProps(0).Delay = 0 }},
		{"bad neuron type", func(m *Network) { m.SourceProps(0).Type = 4 }},
		{"bad input delay", func(m *Network) { m.InputProps(0).Delay = 77 }},
		{"edge to unknown", func(m *Network) { m.Connect(NeuronNode(0), 99) }},
		{"edge from unknown neuron", func(m *Network) { m.Connect(NeuronNode(55), 0) }},
		{"edge from unknown input", func(m *Network) { m.Connect(InputNode(9), 0) }},
	}
	for _, c := range cases {
		m := mk()
		c.mut(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestInputBankLinePanics(t *testing.T) {
	m := New()
	b := m.AddInputBank("px", 2, SourceProps{Type: 0, Delay: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Line(-1)
}

func TestPopulationsAndBanksAccessors(t *testing.T) {
	m := New()
	m.AddPopulation("a", 1, neuron.Default())
	m.AddPopulation("b", 1, neuron.Default())
	m.AddInputBank("x", 1, SourceProps{Type: 0, Delay: 1})
	if len(m.Populations()) != 2 || m.Populations()[1].Name != "b" {
		t.Fatal("Populations accessor wrong")
	}
	if len(m.InputBanks()) != 1 || m.InputBanks()[0].Name != "x" {
		t.Fatal("InputBanks accessor wrong")
	}
}
