package registry

import (
	"bytes"
	"context"
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/neurogo/neurogo/internal/codec"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/corelet"
	"github.com/neurogo/neurogo/internal/dataset"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/pipeline"
	"github.com/neurogo/neurogo/internal/train"
)

// rig is the digit-classifier fixture every registry test serves: the
// same recipe the pipeline tests pin, so registry-served results can be
// compared bit-for-bit against a directly-constructed Pipeline.
type rig struct {
	cls     *corelet.Classifier
	mapping *compile.Mapping
	x       [][]float64
}

func buildRig(t *testing.T) *rig {
	t.Helper()
	gen := dataset.NewDigits(8, 0.02, 0, 3)
	xtr, ytr := gen.Batch(300)
	m, err := train.TrainLinear(xtr, ytr, dataset.NumClasses, train.Options{Epochs: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	net := model.New()
	cls := corelet.BuildClassifier(net, m.Ternarize(1.3), "d", corelet.ClassifierParams{Threshold: 4, Decay: 1})
	mp, err := compile.Compile(net, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := gen.Batch(24)
	return &rig{cls: cls, mapping: mp, x: x}
}

func (rg *rig) opts() []pipeline.Option {
	return []pipeline.Option{
		pipeline.WithEncoder(codec.NewBernoulli(0.5, 7)),
		pipeline.WithDecoder(codec.NewCounter(dataset.NumClasses)),
		pipeline.WithLineMapper(pipeline.TwinLines(rg.cls.LinesFor)),
		pipeline.WithClassMapper(rg.cls.ClassOf),
		pipeline.WithWindow(16),
		pipeline.WithDrain(10),
	}
}

// direct classifies the rig's test set on a directly-constructed
// Pipeline — the reference every registry path must match bit-for-bit.
func (rg *rig) direct(t *testing.T) []int {
	t.Helper()
	p, err := pipeline.New(rg.mapping, rg.opts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	want, err := p.ClassifyBatch(context.Background(), rg.x)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func eq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRegistryBitIdentical is the acceptance test: classifications
// served through the Registry — warm hit, cold start, lazy stream load,
// post-swap, and post-evict reload of the swapped source — are
// bit-identical to a directly-constructed Pipeline on the same mapping.
func TestRegistryBitIdentical(t *testing.T) {
	rg := buildRig(t)
	want := rg.direct(t)
	ctx := context.Background()

	r := New(Config{})
	defer r.Close()
	if err := r.Register("digits", rg.mapping, rg.opts()...); err != nil {
		t.Fatal(err)
	}
	// Lazy stream load: the same mapping through Write/ReadMapping.
	var buf bytes.Buffer
	if err := rg.mapping.Write(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	if err := r.RegisterLoader("digits-stream", func() (io.Reader, error) {
		return bytes.NewReader(blob), nil
	}, rg.opts()...); err != nil {
		t.Fatal(err)
	}

	// Cold start, then warm hit.
	cold, err := r.ClassifyBatch(ctx, "digits", rg.x)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(cold, want) {
		t.Fatalf("cold-start results diverge:\n got %v\nwant %v", cold, want)
	}
	warm, err := r.ClassifyBatch(ctx, "digits", rg.x)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(warm, want) {
		t.Fatalf("warm-hit results diverge:\n got %v\nwant %v", warm, want)
	}

	// Lazy-loaded stream serves identically.
	streamed, err := r.ClassifyBatch(ctx, "digits-stream", rg.x)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(streamed, want) {
		t.Fatalf("stream-loaded results diverge:\n got %v\nwant %v", streamed, want)
	}

	// Evict → reload from the registered source, still identical.
	if err := r.Evict("digits"); err != nil {
		t.Fatal(err)
	}
	reloaded, err := r.ClassifyBatch(ctx, "digits", rg.x)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(reloaded, want) {
		t.Fatalf("post-evict results diverge:\n got %v\nwant %v", reloaded, want)
	}

	// Hot swap onto an equivalent mapping: identical results after the
	// cutover, and after an evict-then-reload of the swapped source.
	if err := r.Swap("digits", rg.mapping, rg.opts()...); err != nil {
		t.Fatal(err)
	}
	swapped, err := r.ClassifyBatch(ctx, "digits", rg.x)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(swapped, want) {
		t.Fatalf("post-swap results diverge:\n got %v\nwant %v", swapped, want)
	}
	if err := r.Evict("digits"); err != nil {
		t.Fatal(err)
	}
	reswapped, err := r.ClassifyBatch(ctx, "digits", rg.x)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(reswapped, want) {
		t.Fatalf("post-evict reload of swapped source diverges:\n got %v\nwant %v", reswapped, want)
	}

	st := r.Stats()
	var ms ModelStats
	for _, m := range st.Models {
		if m.Name == "digits" {
			ms = m
		}
	}
	if ms.ColdStarts != 3 { // initial + 2 evict-reloads
		t.Errorf("ColdStarts = %d, want 3", ms.ColdStarts)
	}
	if ms.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2", ms.Evictions)
	}
	if ms.Swaps != 1 {
		t.Errorf("Swaps = %d, want 1", ms.Swaps)
	}
	if ms.Requests != uint64(5*len(rg.x)) {
		t.Errorf("Requests = %d, want %d", ms.Requests, 5*len(rg.x))
	}
	if ms.TotalColdStart <= 0 || ms.LastColdStart <= 0 {
		t.Errorf("cold-start latency not recorded: %+v", ms)
	}
}

// TestRegistrySwapUnderLoad is the zero-downtime acceptance test (run
// under -race in CI): classifications hammer a model while it is
// repeatedly hot-swapped; every request succeeds — none observes a
// closed pipeline, none is lost — and results stay correct throughout.
func TestRegistrySwapUnderLoad(t *testing.T) {
	rg := buildRig(t)
	want := rg.direct(t)
	ctx := context.Background()

	r := New(Config{})
	defer r.Close()
	if err := r.Register("digits", rg.mapping, rg.opts()...); err != nil {
		t.Fatal(err)
	}
	if err := r.Warm(ctx, "digits"); err != nil {
		t.Fatal(err)
	}

	var served atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				img := (g*7 + i) % len(rg.x)
				c, err := r.Classify(ctx, "digits", rg.x[img])
				if err != nil {
					t.Errorf("classify during swap: %v", err)
					return
				}
				if c != want[img] {
					t.Errorf("image %d: class %d, want %d", img, c, want[img])
					return
				}
				served.Add(1)
			}
		}(g)
	}
	for i := 0; i < 6; i++ {
		// Interleave with live traffic: wait for at least one more
		// request to land before each cutover, so every swap really
		// displaces a pool that is (or was just) serving.
		target := served.Load() + 1
		for served.Load() < target {
			runtime.Gosched()
		}
		if err := r.Swap("digits", rg.mapping); err != nil {
			t.Errorf("swap %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no requests served during the swap storm")
	}
	st := r.Stats()
	if st.Models[0].Swaps != 6 {
		t.Errorf("Swaps = %d, want 6", st.Models[0].Swaps)
	}
	if st.Models[0].Requests != served.Load() {
		t.Errorf("Requests = %d, served = %d", st.Models[0].Requests, served.Load())
	}
}

// TestRegistryLRUEviction pins the warm-pool cap: with MaxWarm 1, the
// least-recently-used model is demoted to cold when another warms up,
// its accounting survives the teardown, and it cold-starts again on its
// next request.
func TestRegistryLRUEviction(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()
	r := New(Config{MaxWarm: 1})
	defer r.Close()
	build := func() (*compile.Mapping, error) { return rg.mapping, nil }
	if err := r.RegisterBuilder("a", build, rg.opts()...); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterBuilder("b", build, rg.opts()...); err != nil {
		t.Fatal(err)
	}

	if _, err := r.ClassifyBatch(ctx, "a", rg.x[:4]); err != nil {
		t.Fatal(err)
	}
	ua, err := r.Usage("a", true)
	if err != nil {
		t.Fatal(err)
	}
	if ua.Ticks == 0 {
		t.Fatal("no activity recorded for a")
	}

	// Warming b must evict a (LRU, and never the model just served).
	if _, err := r.ClassifyBatch(ctx, "b", rg.x[:4]); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Warm != 1 {
		t.Fatalf("Warm = %d, want 1", st.Warm)
	}
	for _, m := range st.Models {
		switch m.Name {
		case "a":
			if m.Warm {
				t.Error("a still warm after b warmed under MaxWarm 1")
			}
			if m.Evictions != 1 {
				t.Errorf("a.Evictions = %d, want 1", m.Evictions)
			}
		case "b":
			if !m.Warm {
				t.Error("b not warm after serving")
			}
		}
	}

	// a's lifetime accounting survived its pool's teardown.
	uaAfter, err := r.Usage("a", true)
	if err != nil {
		t.Fatal(err)
	}
	if uaAfter != ua {
		t.Fatalf("a's usage changed across eviction:\n%+v\n%+v", ua, uaAfter)
	}

	// a cold-starts again and keeps accumulating.
	if _, err := r.Classify(ctx, "a", rg.x[0]); err != nil {
		t.Fatal(err)
	}
	uaReloaded, err := r.Usage("a", true)
	if err != nil {
		t.Fatal(err)
	}
	if uaReloaded.Ticks <= ua.Ticks {
		t.Fatalf("usage did not accumulate across reload: %d then %d ticks", ua.Ticks, uaReloaded.Ticks)
	}
}

// TestRegistryMaxSessions pins the session cap: batch fan-out grows the
// warm pools' sessions past MaxSessions, and the registry sheds the
// LRU pool to get back under it.
func TestRegistryMaxSessions(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()
	r := New(Config{MaxSessions: 5})
	defer r.Close()
	// 4 workers each → two warm pools hold 8 sessions, over the cap.
	opts := append(rg.opts(), pipeline.WithWorkers(4))
	if err := r.Register("a", rg.mapping, opts...); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("b", rg.mapping, opts...); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ClassifyBatch(ctx, "a", rg.x[:8]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ClassifyBatch(ctx, "b", rg.x[:8]); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.LiveSessions > 5 {
		t.Fatalf("LiveSessions = %d, want <= 5", st.LiveSessions)
	}
	if st.Evictions == 0 {
		t.Fatal("no eviction despite session cap breach")
	}
}

// TestRegistryErrors pins the error surface: unknown names, duplicate
// registration, bad sources surfacing on cold start (and leaving the
// model cold, not wedged), and ErrClosed after Close.
func TestRegistryErrors(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()
	r := New(Config{})
	if _, err := r.Classify(ctx, "ghost", rg.x[0]); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model: err = %v", err)
	}
	if err := r.Swap("ghost", rg.mapping); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("swap unknown: err = %v", err)
	}
	if err := r.Evict("ghost"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("evict unknown: err = %v", err)
	}
	if err := r.Register("digits", rg.mapping, rg.opts()...); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("digits", rg.mapping); !errors.Is(err, ErrDuplicateModel) {
		t.Errorf("duplicate register: err = %v", err)
	}
	if err := r.Register("", rg.mapping); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Register("nil", nil); err == nil {
		t.Error("nil mapping accepted")
	}

	// A failing builder surfaces its error and leaves the model cold
	// and retryable, not wedged.
	boom := errors.New("boom")
	calls := 0
	if err := r.RegisterBuilder("flaky", func() (*compile.Mapping, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return rg.mapping, nil
	}, rg.opts()...); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Classify(ctx, "flaky", rg.x[0]); !errors.Is(err, boom) {
		t.Errorf("builder failure: err = %v", err)
	}
	if _, err := r.Classify(ctx, "flaky", rg.x[0]); err != nil {
		t.Errorf("retry after builder failure: %v", err)
	}

	// A bad swap leaves the old pool serving.
	if _, err := r.Classify(ctx, "digits", rg.x[0]); err != nil {
		t.Fatal(err)
	}
	badOpts := append(rg.opts(), pipeline.WithWindow(0))
	if err := r.Swap("digits", rg.mapping, badOpts...); err == nil {
		t.Error("bad swap options accepted")
	}
	if _, err := r.Classify(ctx, "digits", rg.x[0]); err != nil {
		t.Errorf("old pool lost after failed swap: %v", err)
	}

	// Unregister removes; the name is gone and re-registrable.
	if err := r.Unregister("flaky"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Classify(ctx, "flaky", rg.x[0]); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unregistered model still serves: err = %v", err)
	}

	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := r.Classify(ctx, "digits", rg.x[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("classify after Close: err = %v", err)
	}
	if err := r.Register("late", rg.mapping); !errors.Is(err, ErrClosed) {
		t.Errorf("register after Close: err = %v", err)
	}
	if err := r.Swap("digits", rg.mapping); !errors.Is(err, ErrClosed) {
		t.Errorf("swap after Close: err = %v", err)
	}
	// Post-mortem stats stay inspectable.
	st := r.Stats()
	if st.Registered != 1 || st.Warm != 0 || st.LiveSessions != 0 {
		t.Errorf("post-Close stats: %+v", st)
	}
	if u, err := r.Usage("digits", true); err != nil || u.Ticks == 0 {
		t.Errorf("post-Close usage lost: %+v err=%v", u, err)
	}
}

// TestRegistryColdStartSingleflight pins the thundering-herd contract:
// concurrent requests against a cold model pay exactly one build.
func TestRegistryColdStartSingleflight(t *testing.T) {
	rg := buildRig(t)
	ctx := context.Background()
	r := New(Config{})
	defer r.Close()
	var builds atomic.Int32
	if err := r.RegisterBuilder("digits", func() (*compile.Mapping, error) {
		builds.Add(1)
		return rg.mapping, nil
	}, rg.opts()...); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			if _, err := r.Classify(ctx, "digits", rg.x[g]); err != nil {
				t.Errorf("goroutine %d: %v", g, err)
			}
		}(g)
	}
	close(start)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("builder invoked %d times for one cold start", n)
	}
	st := r.Stats()
	if st.Models[0].ColdStarts != 1 {
		t.Errorf("ColdStarts = %d, want 1", st.Models[0].ColdStarts)
	}
	if st.Models[0].Hits != 7 {
		t.Errorf("Hits = %d, want 7", st.Models[0].Hits)
	}
}

// TestRegistryTraffic pins cross-generation traffic accounting on a
// system-backed model: totals accumulate across an eviction.
func TestRegistryTraffic(t *testing.T) {
	mp := trafficMapping(t)
	ctx := context.Background()
	r := New(Config{})
	defer r.Close()
	opts := []pipeline.Option{
		pipeline.WithSystem(1, 1), pipeline.WithDrain(2),
		pipeline.WithEncoder(codec.NewBernoulli(0.9, 5)),
		pipeline.WithDecoder(codec.NewCounter(64)),
	}
	if err := r.Register("chain", mp, opts...); err != nil {
		t.Fatal(err)
	}
	in := []float64{1, 1, 1, 1}
	if _, err := r.Classify(ctx, "chain", in); err != nil {
		t.Fatal(err)
	}
	bt1, err := r.Traffic("chain")
	if err != nil {
		t.Fatal(err)
	}
	if bt1.IntraChip+bt1.InterChip == 0 {
		t.Fatal("no routed traffic recorded")
	}
	if err := r.Evict("chain"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Classify(ctx, "chain", in); err != nil {
		t.Fatal(err)
	}
	bt2, err := r.Traffic("chain")
	if err != nil {
		t.Fatal(err)
	}
	if bt2.IntraChip+bt2.InterChip <= bt1.IntraChip+bt1.InterChip {
		t.Fatalf("traffic did not accumulate across eviction: %d then %d",
			bt1.IntraChip+bt1.InterChip, bt2.IntraChip+bt2.InterChip)
	}
}

// trafficMapping is the two-layer fan-in net the pipeline traffic tests
// use: enough routed spikes to make boundary accounting observable.
func trafficMapping(t *testing.T) *compile.Mapping {
	t.Helper()
	m := model.New()
	in := m.AddInputBank("in", 4, model.SourceProps{Type: 0, Delay: 1})
	proto := neuron.Default()
	a := m.AddPopulation("a", 300, proto)
	b := m.AddPopulation("b", 64, proto)
	for i := 0; i < 300; i++ {
		m.Connect(in.Line(i%4), a.ID(i))
		m.SourceProps(a.ID(i)).Delay = 2
		m.Connect(model.NeuronNode(a.ID(i)), b.ID(i%64))
	}
	for i := 0; i < 64; i++ {
		m.MarkOutput(b.ID(i))
	}
	mp, err := compile.Compile(m, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

// TestRegistryLatencyStats: every serving call feeds the per-model
// latency histogram, the snapshot surfaces through Stats, and the
// record survives an eviction (lifetime accounting, like Usage).
func TestRegistryLatencyStats(t *testing.T) {
	rg := buildRig(t)
	r := New(Config{})
	defer r.Close()
	if err := r.Register("digits", rg.mapping, rg.opts()...); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.Classify(ctx, "digits", rg.x[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ClassifyBatch(ctx, "digits", rg.x[:4]); err != nil {
		t.Fatal(err)
	}
	ms := r.Stats().Models[0]
	if ms.Latency.Count != 2 {
		t.Fatalf("latency observations = %d, want 2 (one per serving call)", ms.Latency.Count)
	}
	if ms.Latency.P50 <= 0 || ms.Latency.Max < ms.Latency.P50 || ms.Latency.Mean <= 0 {
		t.Fatalf("degenerate latency stats: %+v", ms.Latency)
	}
	if err := r.Evict("digits"); err != nil {
		t.Fatal(err)
	}
	if ms := r.Stats().Models[0]; ms.Latency.Count != 2 {
		t.Fatalf("eviction dropped the latency record: %+v", ms.Latency)
	}
}
