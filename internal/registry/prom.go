// Prometheus text exposition for registry stats: whole-registry gauges
// under neurogo_registry_* and per-model series under neurogo_model_*,
// keyed by a model="name" label — the multi-tenant view next to the
// front-end's neurogo_serving_* block (pipeline.Metrics.
// WritePrometheus).

package registry

import (
	"io"

	"github.com/neurogo/neurogo/internal/pipeline"
)

// WritePrometheus writes the registry snapshot in Prometheus text
// exposition format. Families emit one header and one sample per
// registered model, so the output scrapes cleanly however many models
// the registry holds.
func (s Stats) WritePrometheus(w io.Writer) {
	gauge := func(name, help string, v float64) {
		pipeline.PromFamily(w, name, "gauge", help)
		pipeline.PromSample(w, name, "", v)
	}
	gauge("neurogo_registry_models", "Registered models.", float64(s.Registered))
	gauge("neurogo_registry_warm_models", "Models holding a live pool.", float64(s.Warm))
	gauge("neurogo_registry_live_sessions", "Sessions across all warm pools.", float64(s.LiveSessions))
	pipeline.PromFamily(w, "neurogo_registry_evictions_total", "counter", "Pool teardowns across all models.")
	pipeline.PromSample(w, "neurogo_registry_evictions_total", "", float64(s.Evictions))

	perModel := func(name, typ, help string, v func(ModelStats) float64) {
		pipeline.PromFamily(w, name, typ, help)
		for _, m := range s.Models {
			pipeline.PromSample(w, name, pipeline.PromLabel("model", m.Name), v(m))
		}
	}
	perModel("neurogo_model_warm", "gauge", "Whether the model holds a live pool (1 warm, 0 cold).",
		func(m ModelStats) float64 {
			if m.Warm {
				return 1
			}
			return 0
		})
	perModel("neurogo_model_live_sessions", "gauge", "The model's warm-pool session count.",
		func(m ModelStats) float64 { return float64(m.LiveSessions) })
	perModel("neurogo_model_requests_total", "counter", "Classifications requested (a batch counts its length).",
		func(m ModelStats) float64 { return float64(m.Requests) })
	perModel("neurogo_model_hits_total", "counter", "Requests served on an already-warm pool.",
		func(m ModelStats) float64 { return float64(m.Hits) })
	perModel("neurogo_model_cold_starts_total", "counter", "Pool constructions.",
		func(m ModelStats) float64 { return float64(m.ColdStarts) })
	perModel("neurogo_model_evictions_total", "counter", "Pool teardowns.",
		func(m ModelStats) float64 { return float64(m.Evictions) })
	perModel("neurogo_model_swaps_total", "counter", "Hot swaps.",
		func(m ModelStats) float64 { return float64(m.Swaps) })
	perModel("neurogo_model_last_cold_start_seconds", "gauge", "Latency of the most recent cold start.",
		func(m ModelStats) float64 { return m.LastColdStart.Seconds() })
	perModel("neurogo_model_cold_start_seconds_total", "counter", "Cumulative cold-start latency.",
		func(m ModelStats) float64 { return m.TotalColdStart.Seconds() })

	pipeline.PromFamily(w, "neurogo_model_latency_seconds", "summary", "Warm serving-call latency per model.")
	for _, m := range s.Models {
		m.Latency.PromSummaryRow(w, "neurogo_model_latency_seconds", pipeline.PromLabel("model", m.Name))
	}
}
