package registry

import (
	"context"
	"sync"
	"testing"

	"github.com/neurogo/neurogo/internal/codec"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/corelet"
	"github.com/neurogo/neurogo/internal/dataset"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/pipeline"
	"github.com/neurogo/neurogo/internal/train"
)

var benchRig struct {
	once    sync.Once
	err     error
	cls     *corelet.Classifier
	mapping *compile.Mapping
	x       [][]float64
}

func benchSetup() error {
	benchRig.once.Do(func() {
		gen := dataset.NewDigits(8, 0.02, 0, 3)
		xtr, ytr := gen.Batch(300)
		m, err := train.TrainLinear(xtr, ytr, dataset.NumClasses, train.Options{Epochs: 6, Seed: 1})
		if err != nil {
			benchRig.err = err
			return
		}
		net := model.New()
		benchRig.cls = corelet.BuildClassifier(net, m.Ternarize(1.3), "d", corelet.ClassifierParams{Threshold: 4, Decay: 1})
		benchRig.mapping, benchRig.err = compile.Compile(net, compile.Options{})
		benchRig.x, _ = gen.Batch(16)
	})
	return benchRig.err
}

func benchOpts() []pipeline.Option {
	return []pipeline.Option{
		pipeline.WithEncoder(codec.NewBernoulli(0.5, 7)),
		pipeline.WithDecoder(codec.NewCounter(dataset.NumClasses)),
		pipeline.WithLineMapper(pipeline.TwinLines(benchRig.cls.LinesFor)),
		pipeline.WithClassMapper(benchRig.cls.ClassOf),
		pipeline.WithWindow(16),
		pipeline.WithDrain(10),
	}
}

// BenchmarkRegistryServe measures the serving front-end's three cost
// classes: warm-hit (the steady state — registry dispatch over a live
// pool, the overhead vs direct Pipeline serving), cold-start (every
// request pays a pool build: the evict-reload worst case), and
// eviction-churn (two models thrash one warm slot, so each request
// pays a drain-teardown plus a cold start — the cap-pressure regime).
func BenchmarkRegistryServe(b *testing.B) {
	if err := benchSetup(); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	b.Run("warm-hit", func(b *testing.B) {
		r := New(Config{})
		defer r.Close()
		if err := r.Register("m", benchRig.mapping, benchOpts()...); err != nil {
			b.Fatal(err)
		}
		if err := r.Warm(ctx, "m"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.ClassifyBatch(ctx, "m", benchRig.x); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*len(benchRig.x))/b.Elapsed().Seconds(), "class/s")
	})

	b.Run("cold-start", func(b *testing.B) {
		r := New(Config{})
		defer r.Close()
		if err := r.Register("m", benchRig.mapping, benchOpts()...); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.ClassifyBatch(ctx, "m", benchRig.x); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := r.Evict("m"); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(b.N*len(benchRig.x))/b.Elapsed().Seconds(), "class/s")
	})

	b.Run("eviction-churn", func(b *testing.B) {
		r := New(Config{MaxWarm: 1})
		defer r.Close()
		if err := r.Register("a", benchRig.mapping, benchOpts()...); err != nil {
			b.Fatal(err)
		}
		if err := r.Register("b", benchRig.mapping, benchOpts()...); err != nil {
			b.Fatal(err)
		}
		names := [2]string{"a", "b"}
		b.ResetTimer()
		// Alternating models under MaxWarm 1: every request evicts the
		// other model's pool and pays its own cold start.
		for i := 0; i < b.N; i++ {
			if _, err := r.ClassifyBatch(ctx, names[i%2], benchRig.x); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*len(benchRig.x))/b.Elapsed().Seconds(), "class/s")
	})
}
