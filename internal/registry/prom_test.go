package registry

import (
	"strings"
	"testing"
	"time"

	"github.com/neurogo/neurogo/internal/pipeline"
)

// TestStatsWritePrometheus checks the registry exposition: whole-
// registry gauges, one labelled sample per model under each family,
// and label-value escaping.
func TestStatsWritePrometheus(t *testing.T) {
	s := Stats{
		Registered:   2,
		Warm:         1,
		LiveSessions: 3,
		Evictions:    5,
		Models: []ModelStats{
			{
				Name: "digits", Warm: true, Requests: 40, Hits: 38,
				ColdStarts: 2, Evictions: 1, Swaps: 1, LiveSessions: 3,
				LastColdStart:  20 * time.Millisecond,
				TotalColdStart: 50 * time.Millisecond,
				Latency:        pipeline.LatencyStats{Count: 40, Mean: time.Millisecond, P50: time.Millisecond, P95: 2 * time.Millisecond, P99: 3 * time.Millisecond, Max: 4 * time.Millisecond},
			},
			{Name: `odd"name\`, Requests: 1},
		},
	}
	var sb strings.Builder
	s.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE neurogo_registry_models gauge",
		"neurogo_registry_models 2",
		"neurogo_registry_evictions_total 5",
		`neurogo_model_requests_total{model="digits"} 40`,
		`neurogo_model_requests_total{model="odd\"name\\"} 1`,
		`neurogo_model_warm{model="digits"} 1`,
		`neurogo_model_warm{model="odd\"name\\"} 0`,
		`neurogo_model_cold_starts_total{model="digits"} 2`,
		"# TYPE neurogo_model_latency_seconds summary",
		`neurogo_model_latency_seconds{model="digits",quantile="0.95"} 0.002`,
		`neurogo_model_latency_seconds_count{model="digits"} 40`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// One header per family, even with two models.
	if n := strings.Count(out, "# TYPE neurogo_model_requests_total counter"); n != 1 {
		t.Fatalf("neurogo_model_requests_total has %d TYPE headers, want 1", n)
	}
}
