// Package registry is the multi-model serving front-end: one Registry
// serves many named models, each resolving on demand to a warm
// pipeline.Pipeline held in an LRU of live session pools.
//
// A model registers one of three ways — as an already-compiled
// *compile.Mapping, as a mapping stream loaded lazily through
// compile.ReadMapping, or as a build function compiled on first request
// — together with the pipeline options it serves under. The first
// request against a cold model pays the cold start (load or compile,
// then pipeline construction); subsequent requests hit the warm pool.
// Under pressure — more warm models than Config.MaxWarm, or more live
// sessions than Config.MaxSessions — the least-recently-used warm pool
// is evicted: it is detached so no new request can reach it, its
// in-flight requests drain, its final Usage/Traffic accounting is
// folded into the model's lifetime totals, and its sessions are
// released. The model stays registered and cold; the next request
// rebuilds the pool from the registered source, bit-identically
// (pipelines are deterministic functions of mapping + options).
//
// Swap hot-swaps a recompiled mapping with zero downtime: the
// successor pool is built and validated first (a bad swap leaves the
// old model serving), new requests cut over atomically under the
// registry lock, and the displaced pool drains its in-flight requests
// before teardown. No request ever observes a closed pipeline through
// the registry: a pool is only closed after it is unreachable and its
// in-flight count has reached zero.
//
// Per-model accounting spans pool generations: Usage and Traffic
// report the summed activity of every pool the model has ever had,
// cold starts included, so eviction and swap are invisible to the
// energy and boundary-traffic trajectories. Stats snapshots the whole
// registry — per-model hits, cold starts, evictions, swap count,
// cold-start latency and live sessions — for serving dashboards.
//
// All methods are safe for concurrent use.
package registry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/energy"
	"github.com/neurogo/neurogo/internal/pipeline"
)

var (
	// ErrUnknownModel is returned for a name no Register call declared.
	ErrUnknownModel = errors.New("registry: unknown model")
	// ErrDuplicateModel is returned when a name is registered twice.
	ErrDuplicateModel = errors.New("registry: model already registered")
	// ErrClosed is returned by every operation after Close.
	ErrClosed = errors.New("registry: closed")
)

// Config bounds the registry's warm footprint. Both limits are
// high-water marks enforced after the request that crossed them (the
// model just served is never its own victim), so a single over-sized
// model still serves.
type Config struct {
	// MaxWarm caps how many models hold live pools at once
	// (0 = unlimited).
	MaxWarm int
	// MaxSessions caps the total live sessions across all warm pools
	// (0 = unlimited). Sessions are created lazily by pipelines, so
	// this is checked as requests complete.
	MaxSessions int
}

// ModelStats is one model's serving record.
type ModelStats struct {
	// Name is the registered model name.
	Name string
	// Warm reports whether the model holds a live pool right now.
	Warm bool
	// Requests counts classifications requested (a batch counts its
	// length); Hits counts the subset served on an already-warm pool.
	Requests, Hits uint64
	// ColdStarts counts pool constructions (first request, or first
	// after an eviction); Evictions counts pool teardowns under
	// pressure or via Evict; Swaps counts hot swaps.
	ColdStarts, Evictions, Swaps uint64
	// LiveSessions is the warm pool's current session count (0 cold).
	LiveSessions int
	// LastColdStart and TotalColdStart record cold-start latency (the
	// load/compile plus pipeline construction the first request paid).
	LastColdStart, TotalColdStart time.Duration
	// Latency summarises warm serving-call latency over the model's
	// lifetime (each Classify or ClassifyBatch call is one observation;
	// cold-start time is excluded — it is accounted above).
	Latency pipeline.LatencyStats
}

// Stats is a whole-registry snapshot.
type Stats struct {
	// Models lists every registered model's record, sorted by name.
	Models []ModelStats
	// Registered and Warm count models; LiveSessions sums the warm
	// pools' session counts; Evictions sums evictions across models.
	Registered, Warm, LiveSessions int
	Evictions                      uint64
}

// Registry serves many named models behind one front-end.
type Registry struct {
	cfg Config

	mu     sync.Mutex
	models map[string]*entry
	clock  uint64 // LRU clock: bumped on every touch
	closed bool
}

// entry is one registered model. The source, pool pointer, LRU stamp,
// stats and lifetime accounting bases are guarded by Registry.mu;
// startMu serializes cold starts and swaps per model (never held
// together with Registry.mu) so a thundering herd compiles once.
type entry struct {
	name    string
	startMu sync.Mutex

	source      func() (*compile.Mapping, error)
	opts        []pipeline.Option
	pool        *pool
	lastUsed    uint64
	stats       ModelStats
	baseHW      energy.Usage
	baseSW      energy.Usage
	baseTraffic pipeline.BoundaryTraffic

	// lat spans pool generations (atomic buckets: observed outside
	// Registry.mu, snapshotted into ModelStats.Latency by Stats).
	lat pipeline.LatencyHistogram
}

// pool is one warm generation of a model: a live pipeline plus the
// in-flight request count that gates its teardown. Requests Add under
// Registry.mu while the pool is attached; teardown detaches the pool
// under Registry.mu first, so Wait races no Add.
type pool struct {
	p        *pipeline.Pipeline
	inflight sync.WaitGroup
}

// New returns an empty registry.
func New(cfg Config) *Registry {
	return &Registry{cfg: cfg, models: make(map[string]*entry)}
}

// Register declares a model backed by an already-compiled mapping. The
// opts are the pipeline options every pool generation serves under.
func (r *Registry) Register(name string, m *compile.Mapping, opts ...pipeline.Option) error {
	if m == nil {
		return errors.New("registry: nil mapping")
	}
	return r.register(name, func() (*compile.Mapping, error) { return m, nil }, opts)
}

// RegisterBuilder declares a model compiled on first request: build is
// invoked once per cold start (it must return an equivalent mapping
// each time for bit-identical serving across evictions).
func (r *Registry) RegisterBuilder(name string, build func() (*compile.Mapping, error), opts ...pipeline.Option) error {
	if build == nil {
		return errors.New("registry: nil builder")
	}
	return r.register(name, build, opts)
}

// RegisterLoader declares a model loaded lazily from a mapping stream:
// open is invoked once per cold start and the stream decoded with
// compile.ReadMapping (closed afterwards if it implements io.Closer).
func (r *Registry) RegisterLoader(name string, open func() (io.Reader, error), opts ...pipeline.Option) error {
	if open == nil {
		return errors.New("registry: nil loader")
	}
	return r.register(name, func() (*compile.Mapping, error) {
		src, err := open()
		if err != nil {
			return nil, err
		}
		if c, ok := src.(io.Closer); ok {
			defer c.Close()
		}
		return compile.ReadMapping(src)
	}, opts)
}

func (r *Registry) register(name string, source func() (*compile.Mapping, error), opts []pipeline.Option) error {
	if name == "" {
		return errors.New("registry: empty model name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if _, ok := r.models[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateModel, name)
	}
	r.models[name] = &entry{name: name, source: source, opts: opts, stats: ModelStats{Name: name}}
	return nil
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// touchLocked stamps e as most recently used; r.mu must be held.
func (r *Registry) touchLocked(e *entry) {
	r.clock++
	e.lastUsed = r.clock
}

// acquire resolves name to a warm pool with one in-flight reference
// held (the caller must release), cold-starting the model if needed.
// n is the request count to account (0 for Warm).
func (r *Registry) acquire(ctx context.Context, name string, n uint64) (*entry, *pool, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, nil, ErrClosed
	}
	e, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if po := e.pool; po != nil {
		po.inflight.Add(1)
		e.stats.Requests += n
		e.stats.Hits += n
		r.touchLocked(e)
		r.mu.Unlock()
		return e, po, nil
	}
	r.mu.Unlock()

	// Cold: serialize the warm-up per model so a thundering herd pays
	// one compile/load, with everyone else waiting on the one warm-up.
	e.startMu.Lock()
	defer e.startMu.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, nil, ErrClosed
	}
	if po := e.pool; po != nil { // warmed while we waited for startMu
		po.inflight.Add(1)
		e.stats.Requests += n
		e.stats.Hits += n
		r.touchLocked(e)
		r.mu.Unlock()
		return e, po, nil
	}
	source, opts := e.source, e.opts
	r.mu.Unlock()

	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	m, err := source()
	if err != nil {
		return nil, nil, fmt.Errorf("registry: model %q: %w", name, err)
	}
	p, err := pipeline.New(m, opts...)
	if err != nil {
		return nil, nil, fmt.Errorf("registry: model %q: %w", name, err)
	}
	lat := time.Since(start)
	po := &pool{p: p}

	r.mu.Lock()
	if r.closed || r.models[name] != e {
		// Closed, or unregistered mid-warm-up: discard the orphan pool.
		r.mu.Unlock()
		_ = p.Close()
		if r.closed {
			return nil, nil, ErrClosed
		}
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	e.pool = po
	po.inflight.Add(1)
	e.stats.Requests += n
	e.stats.ColdStarts++
	e.stats.LastColdStart = lat
	e.stats.TotalColdStart += lat
	r.touchLocked(e)
	victims := r.overCapLocked(e)
	r.mu.Unlock()
	r.teardownAll(victims)
	return e, po, nil
}

// release drops one in-flight reference and enforces the warm caps
// (sessions are created lazily during serving, so the session
// high-water mark is checked as requests complete). The request that
// crossed a cap pays the victims' drain — eviction is synchronous and
// deterministic, never a background race.
func (r *Registry) release(e *entry, po *pool) {
	po.inflight.Done()
	r.mu.Lock()
	victims := r.overCapLocked(e)
	r.mu.Unlock()
	r.teardownAll(victims)
}

// victim is a pool detached under r.mu, awaiting drain and teardown.
type victim struct {
	e  *entry
	po *pool
}

// overCapLocked detaches least-recently-used warm pools (never keep's)
// until the registry is back under its caps; r.mu must be held.
// Eviction counters bump at detach time, so Stats is exact the moment
// a pool becomes unreachable, before its drain completes.
func (r *Registry) overCapLocked(keep *entry) []victim {
	var out []victim
	for {
		warm, sessions := 0, 0
		var lru *entry
		for _, e := range r.models {
			if e.pool == nil {
				continue
			}
			warm++
			sessions += e.pool.p.SessionCount()
			if e == keep {
				continue
			}
			if lru == nil || e.lastUsed < lru.lastUsed {
				lru = e
			}
		}
		over := (r.cfg.MaxWarm > 0 && warm > r.cfg.MaxWarm) ||
			(r.cfg.MaxSessions > 0 && sessions > r.cfg.MaxSessions)
		if !over || lru == nil {
			return out
		}
		out = append(out, victim{lru, lru.pool})
		lru.stats.Evictions++
		lru.pool = nil
	}
}

func (r *Registry) teardownAll(vs []victim) {
	for _, v := range vs {
		r.teardown(v.e, v.po)
	}
}

// teardown retires a detached pool: in-flight requests drain, the
// pipeline closes (releasing its sessions), and its final accounting
// folds into the model's lifetime base. The pool must already be
// unreachable (detached under r.mu) so no new reference can appear.
func (r *Registry) teardown(e *entry, po *pool) {
	po.inflight.Wait()
	_ = po.p.Close()
	hw, sw := po.p.Usage(true), po.p.Usage(false)
	bt := po.p.Traffic()
	r.mu.Lock()
	foldUsage(&e.baseHW, hw)
	foldUsage(&e.baseSW, sw)
	bt.IntraChip += e.baseTraffic.IntraChip
	bt.InterChip += e.baseTraffic.InterChip
	e.baseTraffic = bt
	r.mu.Unlock()
}

// foldUsage accumulates activity counters; the chip-footprint field
// (Cores) tracks the most recent generation rather than summing — the
// per-model figure stays "one chip serving this model's stream", the
// same time-multiplexed pricing Pipeline.Usage uses.
func foldUsage(dst *energy.Usage, u energy.Usage) {
	dst.SynapticEvents += u.SynapticEvents
	dst.AxonEvents += u.AxonEvents
	dst.NeuronUpdates += u.NeuronUpdates
	dst.Spikes += u.Spikes
	dst.Hops += u.Hops
	dst.IntraChipSpikes += u.IntraChipSpikes
	dst.InterChipSpikes += u.InterChipSpikes
	dst.Ticks += u.Ticks
	if u.Cores > 0 {
		dst.Cores = u.Cores
	}
}

// Classify runs one presentation of values on the named model,
// cold-starting it if needed. The in-flight reference held across the
// call guarantees the pool survives any concurrent swap or eviction.
func (r *Registry) Classify(ctx context.Context, name string, values []float64) (int, error) {
	e, po, err := r.acquire(ctx, name, 1)
	if err != nil {
		return -1, err
	}
	defer r.release(e, po)
	start := time.Now()
	defer func() { e.lat.Observe(time.Since(start)) }()
	return po.p.Classify(ctx, values)
}

// ClassifyBatch classifies every input on the named model's pool,
// fanned across its sessions (see pipeline.ClassifyBatch).
func (r *Registry) ClassifyBatch(ctx context.Context, name string, inputs [][]float64) ([]int, error) {
	e, po, err := r.acquire(ctx, name, uint64(len(inputs)))
	if err != nil {
		return nil, err
	}
	defer r.release(e, po)
	start := time.Now()
	defer func() { e.lat.Observe(time.Since(start)) }()
	return po.p.ClassifyBatch(ctx, inputs)
}

// Warm pre-warms the named model (cold start now, not on the first
// request) without accounting a request against it.
func (r *Registry) Warm(ctx context.Context, name string) error {
	e, po, err := r.acquire(ctx, name, 0)
	if err != nil {
		return err
	}
	r.release(e, po)
	return nil
}

// Swap hot-swaps the named model onto mapping with zero downtime. The
// successor pipeline is built and validated before the cutover, so a
// bad mapping leaves the old pool serving and returns the error. New
// requests cut over atomically; requests in flight on the displaced
// pool finish there, and Swap returns once that pool has drained and
// its accounting is folded into the model's lifetime totals. The
// registered source is replaced too: a later eviction reloads the
// swapped mapping, not the original. Passing opts replaces the
// pipeline options; omitting them keeps the registered ones. Swapping
// a cold model just replaces its source.
func (r *Registry) Swap(name string, m *compile.Mapping, opts ...pipeline.Option) error {
	if m == nil {
		return errors.New("registry: nil mapping")
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	e, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	r.mu.Unlock()

	// startMu: no concurrent cold start or swap may interleave with the
	// cutover (evictions still may — they only detach).
	e.startMu.Lock()
	defer e.startMu.Unlock()
	r.mu.Lock()
	useOpts := e.opts
	if len(opts) > 0 {
		useOpts = opts
	}
	wasWarm := e.pool != nil
	r.mu.Unlock()

	// Build the successor before touching the live pool.
	p, err := pipeline.New(m, useOpts...)
	if err != nil {
		return fmt.Errorf("registry: swap %q: %w", name, err)
	}
	var npo *pool
	if wasWarm {
		npo = &pool{p: p}
	} else {
		_ = p.Close() // validation only: the model stays cold
	}

	r.mu.Lock()
	if r.closed || r.models[name] != e {
		r.mu.Unlock()
		if npo != nil {
			_ = npo.p.Close()
		}
		if r.closed {
			return ErrClosed
		}
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	e.source = func() (*compile.Mapping, error) { return m, nil }
	if len(opts) > 0 {
		e.opts = opts
	}
	old := e.pool
	e.pool = npo // cutover: new requests now resolve to the successor
	e.stats.Swaps++
	var victims []victim
	if npo != nil {
		r.touchLocked(e)
		victims = r.overCapLocked(e)
	}
	r.mu.Unlock()
	if old != nil {
		r.teardown(e, old) // drain the displaced generation
	}
	r.teardownAll(victims)
	return nil
}

// Evict demotes the named model to cold: its pool (if any) is
// detached, drained and released, with its accounting folded into the
// model's lifetime totals. The model stays registered; the next
// request cold-starts it from its source.
func (r *Registry) Evict(name string) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	e, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	po := e.pool
	if po == nil {
		r.mu.Unlock()
		return nil
	}
	e.pool = nil
	e.stats.Evictions++
	r.mu.Unlock()
	r.teardown(e, po)
	return nil
}

// Unregister evicts and removes the named model. Its accounting is
// discarded with it.
func (r *Registry) Unregister(name string) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	e, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	delete(r.models, name)
	po := e.pool
	e.pool = nil
	r.mu.Unlock()
	if po != nil {
		r.teardown(e, po)
	}
	return nil
}

// Usage reports the named model's lifetime activity across every pool
// generation it has had (warm or not), priced like Pipeline.Usage.
func (r *Registry) Usage(name string, hardware bool) (energy.Usage, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.models[name]
	if !ok {
		return energy.Usage{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	base := e.baseSW
	if hardware {
		base = e.baseHW
	}
	if e.pool != nil {
		foldUsage(&base, e.pool.p.Usage(hardware))
	}
	return base, nil
}

// Traffic reports the named model's lifetime boundary traffic across
// every pool generation. The intra/inter totals and fraction span
// generations; the tile geometry and busiest-link figures describe the
// most recent one.
func (r *Registry) Traffic(name string) (pipeline.BoundaryTraffic, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.models[name]
	if !ok {
		return pipeline.BoundaryTraffic{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	bt := e.baseTraffic
	if e.pool != nil {
		live := e.pool.p.Traffic()
		live.IntraChip += bt.IntraChip
		live.InterChip += bt.InterChip
		bt = live
	}
	if total := bt.IntraChip + bt.InterChip; total > 0 {
		bt.InterChipFraction = float64(bt.InterChip) / float64(total)
	}
	return bt, nil
}

// Stats snapshots the registry: per-model records sorted by name plus
// the whole-registry aggregates.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{Registered: len(r.models)}
	for _, e := range r.models {
		ms := e.stats
		ms.Latency = e.lat.Snapshot()
		ms.Warm = e.pool != nil
		if e.pool != nil {
			ms.LiveSessions = e.pool.p.SessionCount()
			st.Warm++
			st.LiveSessions += ms.LiveSessions
		}
		st.Evictions += ms.Evictions
		st.Models = append(st.Models, ms)
	}
	sort.Slice(st.Models, func(i, j int) bool { return st.Models[i].Name < st.Models[j].Name })
	return st
}

// Close retires the registry: every warm pool drains and is released.
// Models stay inspectable (Stats, Usage, Traffic) but no longer serve;
// all other operations return ErrClosed. Idempotent.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	var vs []victim
	for _, e := range r.models {
		if e.pool != nil {
			vs = append(vs, victim{e, e.pool})
			e.pool = nil
		}
	}
	r.mu.Unlock()
	r.teardownAll(vs)
	return nil
}
