// Package corelet is the composable block library of the programming
// model: reusable network fragments ("corelets") that assemble into
// applications and compile onto cores. Each builder adds populations,
// input banks and edges to a shared model.Network and returns handles
// for driving and decoding the block.
//
// Blocks included: ternary linear classifiers (single and committee),
// template-matching object detectors, winner-take-all circuits, delay
// lines, and spatio-temporal pattern detectors.
package corelet

import (
	"fmt"

	"github.com/neurogo/neurogo/internal/dataset"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/train"
)

// Classifier is a ternary linear classifier: each pixel drives a
// positive (excitatory, axon type 0) and a negative (inhibitory, type 1)
// input line; each class is one output neuron holding weights {+1, -1}.
type Classifier struct {
	// Pos and Neg are the per-pixel line banks. A pixel spike must be
	// injected into both (LinesFor gives the pair); the crossbar decides
	// which classes see it with which sign.
	Pos, Neg *model.InputBank
	// Classes is the output population, one neuron per class.
	Classes *model.Population
	// NumClasses is the class count.
	NumClasses int
}

// ClassifierParams tunes the class neurons.
type ClassifierParams struct {
	// Threshold is the firing threshold of the class neurons.
	Threshold int32
	// Decay is the per-tick leak magnitude (applied as -Decay with a
	// floor at zero), washing out stale evidence between ticks.
	Decay int16
}

// DefaultClassifierParams returns the calibrated defaults for
// rate-coded digit classification.
func DefaultClassifierParams() ClassifierParams {
	return ClassifierParams{Threshold: 6, Decay: 1}
}

// BuildClassifier wires a ternary model into net.
func BuildClassifier(net *model.Network, t *train.TernaryModel, name string, p ClassifierParams) *Classifier {
	pos := net.AddInputBank(name+"/pos", t.Inputs, model.SourceProps{Type: 0, Delay: 1})
	neg := net.AddInputBank(name+"/neg", t.Inputs, model.SourceProps{Type: 1, Delay: 1})
	proto := neuron.Params{
		SynWeight:   [neuron.NumAxonTypes]int16{1, -1, 0, 0},
		Leak:        -p.Decay,
		Threshold:   p.Threshold,
		Reset:       neuron.ResetNormal,
		NegSaturate: true, // evidence floor at zero
		Delay:       1,
	}
	classes := net.AddPopulation(name+"/classes", t.Classes, proto)
	for c := 0; c < t.Classes; c++ {
		id := classes.ID(c)
		net.MarkOutput(id)
		for i := 0; i < t.Inputs; i++ {
			switch t.T[c][i] {
			case 1:
				net.Connect(pos.Line(i), id)
			case -1:
				net.Connect(neg.Line(i), id)
			}
		}
	}
	return &Classifier{Pos: pos, Neg: neg, Classes: classes, NumClasses: t.Classes}
}

// LinesFor returns the (positive, negative) input lines of pixel i.
func (c *Classifier) LinesFor(pixel int) (pos, neg int32) {
	return c.Pos.First + int32(pixel), c.Neg.First + int32(pixel)
}

// ClassOf maps an output neuron ID back to its class index, or -1.
func (c *Classifier) ClassOf(id model.NeuronID) int {
	off := int(id - c.Classes.First)
	if off < 0 || off >= c.Classes.N {
		return -1
	}
	return off
}

// CommitteeClassifier is K ternary replicas sharing the input banks;
// class spikes are pooled across members at decode time.
type CommitteeClassifier struct {
	Pos, Neg   *model.InputBank
	Members    []*model.Population
	NumClasses int
}

// BuildCommitteeClassifier wires a committee into net. All members share
// the same pixel lines; each member contributes its own class neurons.
func BuildCommitteeClassifier(net *model.Network, com *train.Committee, name string, p ClassifierParams) (*CommitteeClassifier, error) {
	if len(com.Members) == 0 {
		return nil, fmt.Errorf("corelet: empty committee")
	}
	inputs := com.Members[0].Inputs
	classes := com.Members[0].Classes
	pos := net.AddInputBank(name+"/pos", inputs, model.SourceProps{Type: 0, Delay: 1})
	neg := net.AddInputBank(name+"/neg", inputs, model.SourceProps{Type: 1, Delay: 1})
	proto := neuron.Params{
		SynWeight:   [neuron.NumAxonTypes]int16{1, -1, 0, 0},
		Leak:        -p.Decay,
		Threshold:   p.Threshold,
		Reset:       neuron.ResetNormal,
		NegSaturate: true,
		Delay:       1,
	}
	cc := &CommitteeClassifier{Pos: pos, Neg: neg, NumClasses: classes}
	for m, t := range com.Members {
		if t.Inputs != inputs || t.Classes != classes {
			return nil, fmt.Errorf("corelet: committee member %d has mismatched shape", m)
		}
		pop := net.AddPopulation(fmt.Sprintf("%s/m%d", name, m), classes, proto)
		cc.Members = append(cc.Members, pop)
		for c := 0; c < classes; c++ {
			id := pop.ID(c)
			net.MarkOutput(id)
			for i := 0; i < inputs; i++ {
				switch t.T[c][i] {
				case 1:
					net.Connect(pos.Line(i), id)
				case -1:
					net.Connect(neg.Line(i), id)
				}
			}
		}
	}
	return cc, nil
}

// LinesFor returns the (positive, negative) input lines of pixel i.
func (c *CommitteeClassifier) LinesFor(pixel int) (pos, neg int32) {
	return c.Pos.First + int32(pixel), c.Neg.First + int32(pixel)
}

// ClassOf maps any member's output neuron to its class index, or -1.
func (c *CommitteeClassifier) ClassOf(id model.NeuronID) int {
	for _, pop := range c.Members {
		off := int(id - pop.First)
		if off >= 0 && off < pop.N {
			return off
		}
	}
	return -1
}

// Detector is a grid of template-matching cells: each cell neuron sums
// evidence for a plus-shaped object in its cell (on-template pixels
// excite, off-template pixels inhibit), firing when the match score
// crosses its threshold.
type Detector struct {
	// Pos and Neg are per-pixel line banks (frame pixels, row-major).
	Pos, Neg *model.InputBank
	// Cells is the output population, row-major cells.
	Cells          *model.Population
	CellsX, CellsY int
	CellPix        int
}

// BuildDetector wires a detector for the given scene geometry.
// threshold is the required net template match (on-template hits minus
// off-template hits).
func BuildDetector(net *model.Network, cellsX, cellsY, cellPix int, threshold int32) *Detector {
	w, h := cellsX*cellPix, cellsY*cellPix
	pos := net.AddInputBank("det/pos", w*h, model.SourceProps{Type: 0, Delay: 1})
	neg := net.AddInputBank("det/neg", w*h, model.SourceProps{Type: 1, Delay: 1})
	proto := neuron.Params{
		SynWeight:   [neuron.NumAxonTypes]int16{1, -1, 0, 0},
		Threshold:   threshold,
		Reset:       neuron.ResetNormal,
		NegSaturate: true,
		Delay:       1,
	}
	cells := net.AddPopulation("det/cells", cellsX*cellsY, proto)
	mid := cellPix / 2
	for cy := 0; cy < cellsY; cy++ {
		for cx := 0; cx < cellsX; cx++ {
			id := cells.ID(cy*cellsX + cx)
			net.MarkOutput(id)
			for y := 0; y < cellPix; y++ {
				for x := 0; x < cellPix; x++ {
					px := cx*cellPix + x
					py := cy*cellPix + y
					line := py*w + px
					onTemplate := (y == mid && x >= 1 && x < cellPix-1) ||
						(x == mid && y >= 1 && y < cellPix-1)
					if onTemplate {
						net.Connect(pos.Line(line), id)
					} else {
						net.Connect(neg.Line(line), id)
					}
				}
			}
		}
	}
	return &Detector{Pos: pos, Neg: neg, Cells: cells,
		CellsX: cellsX, CellsY: cellsY, CellPix: cellPix}
}

// LinesFor returns the (positive, negative) lines for frame pixel i.
func (d *Detector) LinesFor(pixel int) (pos, neg int32) {
	return d.Pos.First + int32(pixel), d.Neg.First + int32(pixel)
}

// CellOf maps an output neuron to its cell index, or -1.
func (d *Detector) CellOf(id model.NeuronID) int {
	off := int(id - d.Cells.First)
	if off < 0 || off >= d.Cells.N {
		return -1
	}
	return off
}

// WTA is a winner-take-all circuit: k neurons with mutual inhibition;
// the most strongly driven neuron suppresses its rivals.
type WTA struct {
	// In is the per-candidate excitatory input bank.
	In *model.InputBank
	// Pop is the competing population (all marked as outputs).
	Pop *model.Population
	K   int
}

// BuildWTA wires a k-way winner-take-all. inhibition is the strength of
// the mutual suppression; threshold sets how much drive a candidate
// needs to fire.
func BuildWTA(net *model.Network, k int, threshold int32, inhibition int16) *WTA {
	in := net.AddInputBank("wta/in", k, model.SourceProps{Type: 0, Delay: 1})
	proto := neuron.Params{
		SynWeight:   [neuron.NumAxonTypes]int16{2, -inhibition, 0, 0},
		Threshold:   threshold,
		Reset:       neuron.ResetNormal,
		NegSaturate: true,
		Delay:       1,
	}
	pop := net.AddPopulation("wta/pop", k, proto)
	for i := 0; i < k; i++ {
		id := pop.ID(i)
		net.MarkOutput(id)
		net.Connect(in.Line(i), id)
		// Mutual inhibition; the source is inhibitory for its rivals.
		props := net.SourceProps(id)
		props.Type = 1
		// Output + internal fan-out forces a splitter, which needs
		// delay >= 2.
		props.Delay = 2
		for j := 0; j < k; j++ {
			if j != i {
				net.Connect(model.NeuronNode(id), pop.ID(j))
			}
		}
	}
	return &WTA{In: in, Pop: pop, K: k}
}

// SlotOf maps an output neuron to its candidate index, or -1.
func (w *WTA) SlotOf(id model.NeuronID) int {
	off := int(id - w.Pop.First)
	if off < 0 || off >= w.Pop.N {
		return -1
	}
	return off
}

// DelayLine is a relay chain: a spike entering the line emerges from the
// last stage after the sum of the per-stage delays.
type DelayLine struct {
	// In is the single-line input bank.
	In *model.InputBank
	// Stages is the relay population (stage i = neuron i).
	Stages *model.Population
}

// BuildDelayLine wires a chain of len(delays) relays; stage i re-emits
// with axonal delay delays[i]. Total line latency is len(delays) ticks of
// processing plus the sum of delays... precisely: a spike injected at
// tick t (arriving t+1) emerges from stage k at tick t+1+sum(delays[0..k-1])
// as that stage's fire time.
func BuildDelayLine(net *model.Network, name string, delays []uint8) *DelayLine {
	if len(delays) == 0 {
		panic("corelet: delay line needs at least one stage")
	}
	in := net.AddInputBank(name+"/in", 1, model.SourceProps{Type: 0, Delay: 1})
	proto := neuron.Params{
		SynWeight: [neuron.NumAxonTypes]int16{1, -1, 0, 0},
		Threshold: 1,
		Reset:     neuron.ResetNormal,
		Delay:     1,
	}
	stages := net.AddPopulation(name+"/stages", len(delays), proto)
	net.Connect(in.Line(0), stages.ID(0))
	for i := 0; i < len(delays); i++ {
		id := stages.ID(i)
		net.SourceProps(id).Delay = delays[i]
		if i+1 < len(delays) {
			net.Connect(model.NeuronNode(id), stages.ID(i+1))
		}
	}
	net.MarkOutput(stages.ID(len(delays) - 1))
	return &DelayLine{In: in, Stages: stages}
}

// PatternDetector recognises a spatio-temporal spike template: per-line
// axonal delays align the template's events onto a single tick, where a
// coincidence neuron counts them against its threshold.
type PatternDetector struct {
	// In has one line per pattern line.
	In *model.InputBank
	// Out is the single-neuron detector population.
	Out *model.Population
	// Pattern is the recognised template.
	Pattern *dataset.Pattern
}

// BuildPatternDetector wires a detector for pat; threshold is the number
// of coinciding events required (= len(pat.Events) for exact matching,
// lower for tolerance). Pattern span must be at most 14 so the aligning
// delays fit the 4-bit delay field.
func BuildPatternDetector(net *model.Network, pat *dataset.Pattern, threshold int32) (*PatternDetector, error) {
	if pat.Span > 14 {
		return nil, fmt.Errorf("corelet: pattern span %d exceeds the delay field (max 14)", pat.Span)
	}
	in := net.AddInputBank("pat/in", pat.Lines, model.SourceProps{Type: 0, Delay: 1})
	// Coincidence semantics under the integrate -> leak -> threshold
	// order: with firing threshold 1 and leak -(threshold-1), the neuron
	// fires exactly when >= threshold spikes coincide in one tick, and
	// the saturating floor wipes any sub-threshold evidence so nothing
	// carries over to the next tick.
	proto := neuron.Params{
		SynWeight:   [neuron.NumAxonTypes]int16{1, -1, 0, 0},
		Leak:        -int16(threshold - 1),
		Threshold:   1,
		Reset:       neuron.ResetNormal,
		NegSaturate: true,
		Delay:       1,
	}
	out := net.AddPopulation("pat/out", 1, proto)
	net.MarkOutput(out.ID(0))
	for _, e := range pat.Events {
		// Event at tick tk aligned to arrive at (pattern start)+span+1:
		// injected at start+tk, delay span-tk+1 in [1, span+1].
		net.InputProps(in.First + int32(e.Line)).Delay = uint8(pat.Span - e.Tick + 1)
		net.Connect(in.Line(e.Line), out.ID(0))
	}
	return &PatternDetector{In: in, Out: out, Pattern: pat}, nil
}
