package corelet

import (
	"testing"

	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/dataset"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/sim"
	"github.com/neurogo/neurogo/internal/train"
)

// xorTernary is a handcrafted 2-class ternary model over 4 inputs:
// class 0 likes inputs {0,1}, dislikes {2,3}; class 1 the reverse.
func xorTernary() *train.TernaryModel {
	return &train.TernaryModel{
		Classes: 2, Inputs: 4,
		T: [][]int8{
			{1, 1, -1, -1},
			{-1, -1, 1, 1},
		},
	}
}

func compileRun(t *testing.T, net *model.Network) *sim.Runner {
	t.Helper()
	mp, err := compile.Compile(net, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sim.NewRunner(mp, sim.EngineEvent, 1)
}

// presentPixels injects active pixels into pos+neg lines for `ticks`
// ticks and counts output spikes per class.
func presentPixels(t *testing.T, r *sim.Runner, lines func(int) (int32, int32),
	classOf func(model.NeuronID) int, pixels []float64, ticks, classes int) []int {
	t.Helper()
	counts := make([]int, classes)
	observe := func(evs []sim.Event) {
		for _, e := range evs {
			if c := classOf(e.Neuron); c >= 0 {
				counts[c]++
			}
		}
	}
	for k := 0; k < ticks; k++ {
		for i, v := range pixels {
			if v > 0.5 {
				pos, neg := lines(i)
				if err := r.InjectLine(pos); err != nil {
					t.Fatal(err)
				}
				if err := r.InjectLine(neg); err != nil {
					t.Fatal(err)
				}
			}
		}
		observe(r.Step())
	}
	observe(r.Drain(4))
	return counts
}

func TestClassifierSeparatesPatterns(t *testing.T) {
	net := model.New()
	cls := BuildClassifier(net, xorTernary(), "cls", ClassifierParams{Threshold: 2, Decay: 1})
	r := compileRun(t, net)

	countsA := presentPixels(t, r, cls.LinesFor, cls.ClassOf, []float64{1, 1, 0, 0}, 10, 2)
	if countsA[0] <= countsA[1] {
		t.Fatalf("pattern A counts = %v, want class 0 to win", countsA)
	}

	r2 := compileRun(t, net)
	countsB := presentPixels(t, r2, cls.LinesFor, cls.ClassOf, []float64{0, 0, 1, 1}, 10, 2)
	if countsB[1] <= countsB[0] {
		t.Fatalf("pattern B counts = %v, want class 1 to win", countsB)
	}
}

func TestClassifierInhibitionSuppresses(t *testing.T) {
	// Anti-pattern for class 0 (its -1 pixels lit) must not fire it.
	net := model.New()
	cls := BuildClassifier(net, xorTernary(), "cls", ClassifierParams{Threshold: 2, Decay: 1})
	r := compileRun(t, net)
	counts := presentPixels(t, r, cls.LinesFor, cls.ClassOf, []float64{0, 0, 1, 1}, 10, 2)
	if counts[0] != 0 {
		t.Fatalf("class 0 fired %d times on its anti-pattern", counts[0])
	}
}

func TestClassifierClassOfRange(t *testing.T) {
	net := model.New()
	cls := BuildClassifier(net, xorTernary(), "cls", DefaultClassifierParams())
	if cls.ClassOf(cls.Classes.ID(1)) != 1 {
		t.Error("ClassOf wrong for member")
	}
	if cls.ClassOf(9999) != -1 {
		t.Error("ClassOf must return -1 outside the population")
	}
	if cls.NumClasses != 2 {
		t.Error("NumClasses wrong")
	}
}

func TestCommitteeClassifierPools(t *testing.T) {
	com := &train.Committee{Members: []*train.TernaryModel{xorTernary(), xorTernary(), xorTernary()}}
	net := model.New()
	cc, err := BuildCommitteeClassifier(net, com, "com", ClassifierParams{Threshold: 2, Decay: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cc.Members) != 3 {
		t.Fatalf("members = %d", len(cc.Members))
	}
	r := compileRun(t, net)
	counts := presentPixels(t, r, cc.LinesFor, cc.ClassOf, []float64{1, 1, 0, 0}, 8, 2)
	// Three members: roughly 3x the single-model evidence.
	if counts[0] <= counts[1] || counts[0] < 3 {
		t.Fatalf("committee counts = %v", counts)
	}
}

func TestCommitteeClassifierErrors(t *testing.T) {
	net := model.New()
	if _, err := BuildCommitteeClassifier(net, &train.Committee{}, "x", DefaultClassifierParams()); err == nil {
		t.Error("empty committee accepted")
	}
	bad := &train.Committee{Members: []*train.TernaryModel{
		xorTernary(),
		{Classes: 2, Inputs: 5, T: [][]int8{make([]int8, 5), make([]int8, 5)}},
	}}
	if _, err := BuildCommitteeClassifier(model.New(), bad, "x", DefaultClassifierParams()); err == nil {
		t.Error("mismatched member shapes accepted")
	}
}

func TestDetectorFindsObjects(t *testing.T) {
	const cellsX, cellsY, cellPix = 3, 3, 7
	net := model.New()
	det := BuildDetector(net, cellsX, cellsY, cellPix, 8)
	r := compileRun(t, net)

	scenes := dataset.NewScenes(cellsX, cellsY, cellPix, 0.5, 0.01, 42)
	pixels, truth := scenes.Frame()

	fired := make([]bool, cellsX*cellsY)
	inject := func() {
		for i, v := range pixels {
			if v > 0.5 {
				pos, neg := det.LinesFor(i)
				if err := r.InjectLine(pos); err != nil {
					t.Fatal(err)
				}
				if err := r.InjectLine(neg); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	inject()
	for k := 0; k < 5; k++ {
		for _, e := range r.Step() {
			if c := det.CellOf(e.Neuron); c >= 0 {
				fired[c] = true
			}
		}
	}
	for c, want := range truth {
		if fired[c] != want {
			t.Errorf("cell %d: fired=%v truth=%v", c, fired[c], want)
		}
	}
}

func TestDetectorRejectsSpeckleOnly(t *testing.T) {
	const cellsX, cellsY, cellPix = 2, 2, 7
	net := model.New()
	det := BuildDetector(net, cellsX, cellsY, cellPix, 8)
	r := compileRun(t, net)
	scenes := dataset.NewScenes(cellsX, cellsY, cellPix, 0, 0.05, 7)
	pixels, _ := scenes.Frame()
	for i, v := range pixels {
		if v > 0.5 {
			pos, neg := det.LinesFor(i)
			_ = r.InjectLine(pos)
			_ = r.InjectLine(neg)
		}
	}
	for k := 0; k < 5; k++ {
		for _, e := range r.Step() {
			if det.CellOf(e.Neuron) >= 0 {
				t.Fatal("detector fired on speckle-only scene")
			}
		}
	}
}

func TestWTAWinnerSuppressesRivals(t *testing.T) {
	net := model.New()
	w := BuildWTA(net, 3, 4, 8)
	r := compileRun(t, net)

	counts := make([]int, 3)
	for k := 0; k < 60; k++ {
		// Candidate 0 driven every tick, candidate 1 every 2nd, 2 every 3rd.
		_ = r.InjectLine(w.In.First)
		if k%2 == 0 {
			_ = r.InjectLine(w.In.First + 1)
		}
		if k%3 == 0 {
			_ = r.InjectLine(w.In.First + 2)
		}
		for _, e := range r.Step() {
			if s := w.SlotOf(e.Neuron); s >= 0 {
				counts[s]++
			}
		}
	}
	if counts[0] <= counts[1] || counts[0] <= counts[2] {
		t.Fatalf("counts = %v, want candidate 0 to dominate", counts)
	}
	// Inhibition must visibly suppress the losers relative to winner.
	if counts[1]+counts[2] >= counts[0] {
		t.Fatalf("losers (%d+%d) not suppressed vs winner %d", counts[1], counts[2], counts[0])
	}
}

func TestDelayLineTiming(t *testing.T) {
	net := model.New()
	dl := BuildDelayLine(net, "dl", []uint8{3, 5, 2})
	r := compileRun(t, net)
	_ = r.InjectLine(dl.In.First)
	evs := r.Run(20)
	if len(evs) != 1 {
		t.Fatalf("events = %v, want exactly one", evs)
	}
	// Inject at 0 -> stage0 fires t=1 -> stage1 at 1+3=4 -> stage2 at 4+5=9.
	if evs[0].Tick != 9 {
		t.Fatalf("delayed spike at tick %d, want 9", evs[0].Tick)
	}
}

func TestDelayLinePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildDelayLine(model.New(), "x", nil)
}

func TestPatternDetectorMatchesTemplate(t *testing.T) {
	pat := dataset.NewPattern(16, 10, 5, 99)
	net := model.New()
	pd, err := BuildPatternDetector(net, pat, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := compileRun(t, net)

	// Replay the exact template starting at tick 0: event (line, tk)
	// injected at tick tk.
	cursor := 0
	for tick := 0; tick < 30; tick++ {
		for _, e := range pat.Events {
			if e.Tick == tick {
				_ = r.InjectLine(pd.In.First + int32(e.Line))
			}
		}
		_ = cursor
		if evs := r.Step(); len(evs) > 0 {
			// Alignment: event tk arrives at tk + (span-tk+1) = span+1.
			if evs[0].Tick != int64(pat.Span+1) {
				t.Fatalf("detector fired at %d, want %d", evs[0].Tick, pat.Span+1)
			}
			return
		}
	}
	t.Fatal("detector never fired on its own template")
}

func TestPatternDetectorRejectsScrambled(t *testing.T) {
	pat := dataset.NewPattern(16, 10, 5, 99)
	net := model.New()
	pd, err := BuildPatternDetector(net, pat, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := compileRun(t, net)
	// Same lines, but all events at the same tick 0 (wrong timing): the
	// aligning delays spread them apart instead of focusing them.
	for _, e := range pat.Events {
		_ = r.InjectLine(pd.In.First + int32(e.Line))
	}
	for tick := 0; tick < 30; tick++ {
		if evs := r.Step(); len(evs) > 0 {
			t.Fatalf("detector fired on scrambled input at %d", evs[0].Tick)
		}
	}
}

func TestPatternDetectorSpanLimit(t *testing.T) {
	pat := dataset.NewPattern(8, 20, 4, 1)
	if _, err := BuildPatternDetector(model.New(), pat, 4); err == nil {
		t.Fatal("span > 14 must be rejected")
	}
}
