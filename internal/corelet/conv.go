package corelet

// Convolutional corelets: ternary-kernel feature extraction in the
// crossbar, and classifiers that read internal feature neurons instead
// of input lines. Because a source neuron has a single axon type (the
// Dale constraint), every feature is computed by a twin pair of neurons
// with identical receptive fields — one excitatory (type 0), one
// inhibitory (type 1) — so downstream layers can weight it with either
// sign.

import (
	"fmt"

	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/train"
)

// Kernel is a square ternary convolution kernel, row-major, values in
// {-1, 0, +1}.
type Kernel struct {
	Size int
	W    []int8
}

// OrientedKernels returns four 3x3 oriented *edge* kernels (top, bottom,
// left and right stroke edges). One-sided edges, not centre-surround
// bars: glyph strokes are thicker than one pixel, so a symmetric bar
// kernel cancels inside a stroke, while an edge kernel fires exactly
// along the stroke boundary of its orientation.
func OrientedKernels() []Kernel {
	return []Kernel{
		{Size: 3, W: []int8{ // top edge: empty above, stroke below
			-1, -1, -1,
			1, 1, 1,
			0, 0, 0,
		}},
		{Size: 3, W: []int8{ // bottom edge
			0, 0, 0,
			1, 1, 1,
			-1, -1, -1,
		}},
		{Size: 3, W: []int8{ // left edge
			-1, 1, 0,
			-1, 1, 0,
			-1, 1, 0,
		}},
		{Size: 3, W: []int8{ // right edge
			0, 1, -1,
			0, 1, -1,
			0, 1, -1,
		}},
	}
}

// Conv2D is a convolution layer corelet.
type Conv2D struct {
	// PixPos and PixNeg are the per-pixel input line banks.
	PixPos, PixNeg *model.InputBank
	// FeatPos and FeatNeg hold the twin feature populations, one pair
	// per kernel; neuron i covers output position (i%OutW, i/OutW).
	FeatPos, FeatNeg []*model.Population
	// Geometry.
	ImgW, ImgH, OutW, OutH, Stride int
	Kernels                        []Kernel
	// Threshold is the per-position match threshold.
	Threshold int32
}

// BuildConv2D wires a ternary convolution layer over an ImgW x ImgH
// image. Each output position fires when its kernel match (positive taps
// on lit pixels minus negative taps) reaches threshold that tick; no
// evidence carries across ticks, so single-shot presentations compute
// exactly the binary convolution ConvFeatures computes in float.
func BuildConv2D(net *model.Network, name string, imgW, imgH int,
	kernels []Kernel, stride int, threshold int32) (*Conv2D, error) {
	if stride < 1 {
		return nil, fmt.Errorf("corelet: conv stride %d", stride)
	}
	if threshold < 1 {
		return nil, fmt.Errorf("corelet: conv threshold %d must be >= 1", threshold)
	}
	if len(kernels) == 0 {
		return nil, fmt.Errorf("corelet: conv needs kernels")
	}
	k := kernels[0].Size
	for _, kn := range kernels {
		if kn.Size != k || len(kn.W) != k*k {
			return nil, fmt.Errorf("corelet: kernels must share size (got %dx%d with %d taps)", kn.Size, kn.Size, len(kn.W))
		}
	}
	if imgW < k || imgH < k {
		return nil, fmt.Errorf("corelet: image %dx%d smaller than kernel %d", imgW, imgH, k)
	}
	outW := (imgW-k)/stride + 1
	outH := (imgH-k)/stride + 1

	pixPos := net.AddInputBank(name+"/pos", imgW*imgH, model.SourceProps{Type: 0, Delay: 1})
	pixNeg := net.AddInputBank(name+"/neg", imgW*imgH, model.SourceProps{Type: 1, Delay: 1})

	// Coincidence configuration: fire iff this tick's match >= threshold
	// (threshold 1 + decay threshold-1 under integrate->leak->fire).
	proto := neuron.Params{
		SynWeight:   [neuron.NumAxonTypes]int16{1, -1, 0, 0},
		Leak:        -int16(threshold - 1),
		Threshold:   1,
		Reset:       neuron.ResetNormal,
		NegSaturate: true,
		Delay:       2, // feature fan-out may span cores
	}

	conv := &Conv2D{PixPos: pixPos, PixNeg: pixNeg,
		ImgW: imgW, ImgH: imgH, OutW: outW, OutH: outH,
		Stride: stride, Kernels: kernels, Threshold: threshold}

	for ki, kn := range kernels {
		fp := net.AddPopulation(fmt.Sprintf("%s/k%d+", name, ki), outW*outH, proto)
		fn := net.AddPopulation(fmt.Sprintf("%s/k%d-", name, ki), outW*outH, proto)
		conv.FeatPos = append(conv.FeatPos, fp)
		conv.FeatNeg = append(conv.FeatNeg, fn)
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				idPos := fp.ID(oy*outW + ox)
				idNeg := fn.ID(oy*outW + ox)
				// Feature fan-out may span cores: declare delay 2 so
				// the compiler can insert splitters when needed.
				net.SourceProps(idPos).Delay = 2
				net.SourceProps(idNeg).Delay = 2
				net.SourceProps(idNeg).Type = 1
				for dy := 0; dy < k; dy++ {
					for dx := 0; dx < k; dx++ {
						tap := kn.W[dy*k+dx]
						if tap == 0 {
							continue
						}
						px := ox*stride + dx
						py := oy*stride + dy
						line := py*imgW + px
						for _, id := range []model.NeuronID{idPos, idNeg} {
							if tap > 0 {
								net.Connect(pixPos.Line(line), id)
							} else {
								net.Connect(pixNeg.Line(line), id)
							}
						}
					}
				}
			}
		}
	}
	return conv, nil
}

// LinesFor returns the (positive, negative) input lines of pixel i.
func (c *Conv2D) LinesFor(pixel int) (pos, neg int32) {
	return c.PixPos.First + int32(pixel), c.PixNeg.First + int32(pixel)
}

// Features returns the number of feature positions (per twin pair).
func (c *Conv2D) Features() int { return len(c.Kernels) * c.OutW * c.OutH }

// FeatureIDs returns the twin (positive, negative) neuron IDs of flat
// feature index f (kernel-major: f = kernel*OutW*OutH + position).
func (c *Conv2D) FeatureIDs(f int) (pos, neg model.NeuronID) {
	per := c.OutW * c.OutH
	return c.FeatPos[f/per].ID(f % per), c.FeatNeg[f/per].ID(f % per)
}

// ConvFeatures computes, in float, the binary feature vector the spiking
// layer produces for a single-shot binary image presentation: feature f
// is 1 when its kernel match reaches the threshold. This is the training-
// time feature extractor; equivalence with the compiled layer is tested.
func ConvFeatures(img []float64, imgW int, kernels []Kernel, stride int, threshold int32) []float64 {
	k := kernels[0].Size
	imgH := len(img) / imgW
	outW := (imgW-k)/stride + 1
	outH := (imgH-k)/stride + 1
	out := make([]float64, len(kernels)*outW*outH)
	idx := 0
	for _, kn := range kernels {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				sum := int32(0)
				for dy := 0; dy < k; dy++ {
					for dx := 0; dx < k; dx++ {
						tap := kn.W[dy*k+dx]
						if tap == 0 {
							continue
						}
						if img[(oy*stride+dy)*imgW+(ox*stride+dx)] > 0.5 {
							sum += int32(tap)
						}
					}
				}
				if sum >= threshold {
					out[idx] = 1
				}
				idx++
			}
		}
	}
	return out
}

// FeatureSource is any corelet exposing twin (excitatory, inhibitory)
// feature neuron pairs — conv layers and pooling layers both qualify.
type FeatureSource interface {
	// Features returns the number of feature positions.
	Features() int
	// FeatureIDs returns the twin neurons of flat feature index f.
	FeatureIDs(f int) (pos, neg model.NeuronID)
}

// Pool2D is a 2-D OR-pooling layer over a conv layer's feature maps:
// each pool position fires when any feature in its window fired, buying
// translation tolerance at the cost of resolution.
type Pool2D struct {
	// PoolPos and PoolNeg are the twin pooled populations, per kernel.
	PoolPos, PoolNeg []*model.Population
	OutW, OutH       int
	kernels          int
}

// BuildPool2D wires window x window OR-pooling (stride = window) over
// conv's feature maps. Pool neurons listen to the excitatory feature
// twins; both pool twins fire on any window activity.
func BuildPool2D(net *model.Network, conv *Conv2D, name string, window int) (*Pool2D, error) {
	if window < 1 || conv.OutW < window || conv.OutH < window {
		return nil, fmt.Errorf("corelet: pool window %d does not fit %dx%d maps", window, conv.OutW, conv.OutH)
	}
	outW := conv.OutW / window
	outH := conv.OutH / window
	proto := neuron.Params{
		SynWeight:   [neuron.NumAxonTypes]int16{1, -1, 0, 0},
		Threshold:   1,
		Reset:       neuron.ResetNormal,
		NegSaturate: true,
		Delay:       2,
	}
	pool := &Pool2D{OutW: outW, OutH: outH, kernels: len(conv.Kernels)}
	for ki := range conv.Kernels {
		pp := net.AddPopulation(fmt.Sprintf("%s/k%d+", name, ki), outW*outH, proto)
		pn := net.AddPopulation(fmt.Sprintf("%s/k%d-", name, ki), outW*outH, proto)
		pool.PoolPos = append(pool.PoolPos, pp)
		pool.PoolNeg = append(pool.PoolNeg, pn)
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				idPos := pp.ID(oy*outW + ox)
				idNeg := pn.ID(oy*outW + ox)
				net.SourceProps(idPos).Delay = 2
				net.SourceProps(idNeg).Delay = 2
				net.SourceProps(idNeg).Type = 1
				for dy := 0; dy < window; dy++ {
					for dx := 0; dx < window; dx++ {
						f := (oy*window+dy)*conv.OutW + (ox*window + dx)
						src := conv.FeatPos[ki].ID(f)
						net.Connect(model.NeuronNode(src), idPos)
						net.Connect(model.NeuronNode(src), idNeg)
					}
				}
			}
		}
	}
	return pool, nil
}

// Features returns the number of pooled positions.
func (p *Pool2D) Features() int { return p.kernels * p.OutW * p.OutH }

// FeatureIDs returns the twin pooled neurons of flat index f.
func (p *Pool2D) FeatureIDs(f int) (pos, neg model.NeuronID) {
	per := p.OutW * p.OutH
	return p.PoolPos[f/per].ID(f % per), p.PoolNeg[f/per].ID(f % per)
}

// FloatPool computes, in float, the OR-pooled features matching
// BuildPool2D for binary conv features laid out kernel-major.
func FloatPool(features []float64, kernels, convW, convH, window int) []float64 {
	outW, outH := convW/window, convH/window
	out := make([]float64, kernels*outW*outH)
	idx := 0
	for k := 0; k < kernels; k++ {
		base := k * convW * convH
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				v := 0.0
				for dy := 0; dy < window; dy++ {
					for dx := 0; dx < window; dx++ {
						if features[base+(oy*window+dy)*convW+(ox*window+dx)] > 0.5 {
							v = 1
						}
					}
				}
				out[idx] = v
				idx++
			}
		}
	}
	return out
}

// FeatureClassifier is a classifier layer reading internal feature
// neurons (the conv stack's read-out stage).
type FeatureClassifier struct {
	Classes    *model.Population
	NumClasses int
}

// BuildFeatureClassifier wires a ternary read-out over a feature source:
// class c connects to feature f's excitatory twin where T[c][f] = +1 and
// to its inhibitory twin where T[c][f] = -1.
func BuildFeatureClassifier(net *model.Network, t *train.TernaryModel, conv FeatureSource,
	name string, p ClassifierParams) (*FeatureClassifier, error) {
	if t.Inputs != conv.Features() {
		return nil, fmt.Errorf("corelet: model has %d inputs, conv provides %d features", t.Inputs, conv.Features())
	}
	proto := neuron.Params{
		SynWeight:   [neuron.NumAxonTypes]int16{1, -1, 0, 0},
		Leak:        -p.Decay,
		Threshold:   p.Threshold,
		Reset:       neuron.ResetNormal,
		NegSaturate: true,
		Delay:       1,
	}
	classes := net.AddPopulation(name+"/classes", t.Classes, proto)
	for c := 0; c < t.Classes; c++ {
		id := classes.ID(c)
		net.MarkOutput(id)
		for f := 0; f < t.Inputs; f++ {
			pos, neg := conv.FeatureIDs(f)
			switch t.T[c][f] {
			case 1:
				net.Connect(model.NeuronNode(pos), id)
			case -1:
				net.Connect(model.NeuronNode(neg), id)
			}
		}
	}
	return &FeatureClassifier{Classes: classes, NumClasses: t.Classes}, nil
}

// ClassOf maps an output neuron to its class index, or -1.
func (fc *FeatureClassifier) ClassOf(id model.NeuronID) int {
	off := int(id - fc.Classes.First)
	if off < 0 || off >= fc.Classes.N {
		return -1
	}
	return off
}
