package corelet

import (
	"testing"

	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/dataset"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/sim"
	"github.com/neurogo/neurogo/internal/train"
)

func TestOrientedKernelsShape(t *testing.T) {
	ks := OrientedKernels()
	if len(ks) != 4 {
		t.Fatalf("kernels = %d", len(ks))
	}
	for i, k := range ks {
		if k.Size != 3 || len(k.W) != 9 {
			t.Fatalf("kernel %d malformed", i)
		}
		for _, w := range k.W {
			if w < -1 || w > 1 {
				t.Fatalf("kernel %d has non-ternary tap %d", i, w)
			}
		}
	}
}

func TestBuildConv2DErrors(t *testing.T) {
	ks := OrientedKernels()
	cases := map[string]func() error{
		"bad stride": func() error {
			_, err := BuildConv2D(model.New(), "c", 8, 8, ks, 0, 2)
			return err
		},
		"bad threshold": func() error {
			_, err := BuildConv2D(model.New(), "c", 8, 8, ks, 1, 0)
			return err
		},
		"no kernels": func() error {
			_, err := BuildConv2D(model.New(), "c", 8, 8, nil, 1, 2)
			return err
		},
		"image too small": func() error {
			_, err := BuildConv2D(model.New(), "c", 2, 2, ks, 1, 2)
			return err
		},
		"mismatched kernel sizes": func() error {
			bad := append([]Kernel{{Size: 2, W: []int8{1, 1, 1, 1}}}, ks...)
			_, err := BuildConv2D(model.New(), "c", 8, 8, bad, 1, 2)
			return err
		},
	}
	for name, fn := range cases {
		if fn() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestConvGeometry(t *testing.T) {
	net := model.New()
	conv, err := BuildConv2D(net, "c", 16, 16, OrientedKernels(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if conv.OutW != 7 || conv.OutH != 7 {
		t.Fatalf("out = %dx%d, want 7x7", conv.OutW, conv.OutH)
	}
	if conv.Features() != 4*49 {
		t.Fatalf("features = %d", conv.Features())
	}
	// Twin pairs must exist for every feature.
	for f := 0; f < conv.Features(); f += 37 {
		pos, neg := conv.FeatureIDs(f)
		if net.SourceProps(pos).Type != 0 || net.SourceProps(neg).Type != 1 {
			t.Fatalf("feature %d twins mistyped", f)
		}
	}
}

// TestSpikingConvMatchesFloat is the conv golden test: a single-shot
// binary image through the compiled conv layer must fire exactly the
// features ConvFeatures computes in float.
func TestSpikingConvMatchesFloat(t *testing.T) {
	const imgW, imgH = 10, 10
	ks := OrientedKernels()
	net := model.New()
	conv, err := BuildConv2D(net, "c", imgW, imgH, ks, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Observe every positive feature twin.
	for f := 0; f < conv.Features(); f++ {
		pos, _ := conv.FeatureIDs(f)
		net.MarkOutput(pos)
	}
	mp, err := compile.Compile(net, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}

	gen := dataset.NewDigits(8, 0.05, 1, 11)
	for trial := 0; trial < 5; trial++ {
		img8 := gen.Render(trial * 2 % 10)
		// Embed the 8x8 digit in the 10x10 frame with a 1-pixel border.
		img := make([]float64, imgW*imgH)
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				img[(y+1)*imgW+(x+1)] = img8[y*8+x]
			}
		}
		want := ConvFeatures(img, imgW, ks, 1, 2)

		r := sim.NewRunner(mp, sim.EngineEvent, 1)
		for i, v := range img {
			if v > 0.5 {
				pos, neg := conv.LinesFor(i)
				_ = r.InjectLine(pos)
				_ = r.InjectLine(neg)
			}
		}
		got := make([]float64, conv.Features())
		for k := 0; k < 6; k++ {
			for _, e := range r.Step() {
				for f := 0; f < conv.Features(); f++ {
					pos, _ := conv.FeatureIDs(f)
					if e.Neuron == pos {
						got[f] = 1
					}
				}
			}
		}
		for f := range want {
			if got[f] != want[f] {
				t.Fatalf("trial %d: feature %d spiking=%v float=%v", trial, f, got[f], want[f])
			}
		}
	}
}

func TestFeatureClassifierEndToEnd(t *testing.T) {
	// Two classes over a 6x6 image: class 0 = horizontal bar (top-edge
	// features), class 1 = vertical bar (left-edge features). Conv
	// features feed a handcrafted read-out.
	const imgW = 6
	all := OrientedKernels()
	ks := []Kernel{all[0], all[2]} // top edge, left edge
	net := model.New()
	conv, err := BuildConv2D(net, "c", imgW, imgW, ks, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	per := conv.OutW * conv.OutH
	tern := &train.TernaryModel{Classes: 2, Inputs: conv.Features(), T: make([][]int8, 2)}
	for c := 0; c < 2; c++ {
		tern.T[c] = make([]int8, conv.Features())
		for f := 0; f < conv.Features(); f++ {
			if f/per == c {
				tern.T[c][f] = 1
			} else {
				tern.T[c][f] = -1
			}
		}
	}
	fc, err := BuildFeatureClassifier(net, tern, conv, "out", ClassifierParams{Threshold: 2, Decay: 2})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := compile.Compile(net, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}

	classify := func(img []float64) int {
		r := sim.NewRunner(mp, sim.EngineEvent, 1)
		counts := make([]int, 2)
		// Present the image for several ticks to accumulate evidence.
		for k := 0; k < 8; k++ {
			for i, v := range img {
				if v > 0.5 {
					pos, neg := conv.LinesFor(i)
					_ = r.InjectLine(pos)
					_ = r.InjectLine(neg)
				}
			}
			for _, e := range r.Step() {
				if c := fc.ClassOf(e.Neuron); c >= 0 {
					counts[c]++
				}
			}
		}
		for _, e := range r.Drain(6) {
			if c := fc.ClassOf(e.Neuron); c >= 0 {
				counts[c]++
			}
		}
		if counts[0] == counts[1] {
			return -1
		}
		if counts[0] > counts[1] {
			return 0
		}
		return 1
	}

	hbar := make([]float64, imgW*imgW)
	for x := 0; x < imgW; x++ {
		hbar[3*imgW+x] = 1
	}
	vbar := make([]float64, imgW*imgW)
	for y := 0; y < imgW; y++ {
		vbar[y*imgW+3] = 1
	}
	if got := classify(hbar); got != 0 {
		t.Errorf("horizontal bar classified as %d", got)
	}
	if got := classify(vbar); got != 1 {
		t.Errorf("vertical bar classified as %d", got)
	}
}

func TestBuildFeatureClassifierShapeMismatch(t *testing.T) {
	net := model.New()
	conv, err := BuildConv2D(net, "c", 8, 8, OrientedKernels(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := &train.TernaryModel{Classes: 2, Inputs: 5, T: [][]int8{make([]int8, 5), make([]int8, 5)}}
	if _, err := BuildFeatureClassifier(net, bad, conv, "x", DefaultClassifierParams()); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
