package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("title line = %q", lines[0])
	}
	// Header, rule, two rows.
	if len(lines) != 5 {
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Fatalf("rule = %q", lines[2])
	}
	// The value column must start at the same offset in every row.
	off := strings.Index(lines[1], "value")
	if lines[3][off:off+1] != "1" || lines[4][off:off+2] != "22" {
		t.Fatalf("misaligned columns:\n%s", s)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("x")
	if tb.Rows() != 1 {
		t.Fatal("row not added")
	}
	s := tb.String()
	if strings.Contains(s, "(MISSING)") || strings.Count(s, "\n") < 3 {
		t.Fatalf("short row mishandled:\n%s", s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored", "x", "y")
	tb.AddRow("1", "2")
	var b strings.Builder
	tb.CSV(&b)
	want := "x,y\n1,2\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestChartRendersSeries(t *testing.T) {
	s := Chart("growth", []Series{
		{Name: "lin", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Name: "quad", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 4, 9}},
	}, 40, 10)
	if !strings.Contains(s, "growth") {
		t.Fatal("missing title")
	}
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Fatalf("missing glyphs:\n%s", s)
	}
	if !strings.Contains(s, "*=lin") || !strings.Contains(s, "o=quad") {
		t.Fatalf("missing legend:\n%s", s)
	}
	if !strings.Contains(s, "x: [0, 3]") {
		t.Fatalf("missing x range:\n%s", s)
	}
}

func TestChartEmpty(t *testing.T) {
	s := Chart("empty", nil, 40, 10)
	if !strings.Contains(s, "(no data)") {
		t.Fatalf("empty chart = %q", s)
	}
}

func TestChartConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	s := Chart("const", []Series{{Name: "c", X: []float64{1, 1}, Y: []float64{5, 5}}}, 20, 5)
	if !strings.Contains(s, "*") {
		t.Fatalf("constant chart missing point:\n%s", s)
	}
}

func TestChartPanicsTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Chart("x", nil, 2, 2)
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234567: "1.23e+06",
		123.4:   "123",
		12.34:   "12.34",
		0.5:     "0.5000",
		0.0001:  "0.0001",
	}
	for in, want := range cases {
		if got := F(in); got != want {
			t.Errorf("F(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestI(t *testing.T) {
	cases := map[int64]string{
		0:         "0",
		999:       "999",
		1000:      "1,000",
		1234567:   "1,234,567",
		-4096:     "-4,096",
		268435456: "268,435,456",
	}
	for in, want := range cases {
		if got := I(in); got != want {
			t.Errorf("I(%d) = %q, want %q", in, got, want)
		}
	}
}
