// Package report renders experiment results: aligned text tables (the
// paper's tables) and ASCII line charts (its figures), plus CSV output
// for external plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled, column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i, wd := range widths {
		rule[i] = strings.Repeat("-", wd)
	}
	line(rule)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (no quoting: cells are
// numeric or simple identifiers in this codebase).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one named line of a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders one or more series as an ASCII line chart of the given
// plot dimensions. Different series use different glyphs.
func Chart(title string, series []Series, width, height int) string {
	if width < 8 || height < 3 {
		panic("report: chart too small")
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	anyPoint := false
	for _, s := range series {
		for i := range s.X {
			anyPoint = true
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if !anyPoint {
		return title + "\n  (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			grid[height-1-row][col] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  y: [%.4g, %.4g]\n", minY, maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "  |%s\n", string(row))
	}
	fmt.Fprintf(&b, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "  x: [%.4g, %.4g]", minX, maxX)
	var names []string
	for si, s := range series {
		names = append(names, fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.Name))
	}
	if len(names) > 0 {
		fmt.Fprintf(&b, "   %s", strings.Join(names, " "))
	}
	b.WriteByte('\n')
	return b.String()
}

// F formats a float compactly for tables.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// I formats an integer with thousands separators.
func I(v int64) string {
	s := fmt.Sprintf("%d", v)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}
