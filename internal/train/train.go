// Package train provides the offline learning pipeline: a float linear
// classifier trained with softmax SGD (the full-precision baseline), and
// its quantisation to the ternary weights the crossbar can hold.
//
// The deployment story mirrors the architecture's: training happens
// off-chip in float; the deployed network uses per-(neuron, axon-type)
// signed weights, so per-synapse weights must collapse to {-1, 0, +1}
// (axon type 0 carrying +1, type 1 carrying -1). Precision lost to
// ternarisation is recovered by committees: several ternary replicas with
// stochastically dithered quantisation vote by spike count.
package train

import (
	"fmt"
	"math"

	"github.com/neurogo/neurogo/internal/rng"
)

// LinearModel is a multiclass linear classifier (the float baseline).
type LinearModel struct {
	Classes int
	Inputs  int
	// W[c][i] is the weight from input i to class c.
	W [][]float64
	// B[c] is the class bias.
	B []float64
}

// Options tunes SGD training.
type Options struct {
	// Epochs over the training set (default 20).
	Epochs int
	// LearnRate is the SGD step (default 0.05).
	LearnRate float64
	// L2 is the weight decay (default 1e-4).
	L2 float64
	// Seed drives shuffling.
	Seed uint64
}

func (o *Options) defaults() {
	if o.Epochs == 0 {
		o.Epochs = 20
	}
	if o.LearnRate == 0 {
		o.LearnRate = 0.05
	}
	if o.L2 == 0 {
		o.L2 = 1e-4
	}
}

// TrainLinear fits a softmax classifier with SGD.
func TrainLinear(x [][]float64, y []int, classes int, opt Options) (*LinearModel, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("train: %d samples, %d labels", len(x), len(y))
	}
	opt.defaults()
	inputs := len(x[0])
	m := &LinearModel{Classes: classes, Inputs: inputs,
		W: make([][]float64, classes), B: make([]float64, classes)}
	for c := range m.W {
		m.W[c] = make([]float64, inputs)
	}
	r := rng.NewSplitMix64(opt.Seed)
	scores := make([]float64, classes)
	probs := make([]float64, classes)
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		order := r.Perm(len(x))
		for _, idx := range order {
			xi, yi := x[idx], y[idx]
			if yi < 0 || yi >= classes {
				return nil, fmt.Errorf("train: label %d out of range", yi)
			}
			m.scoresInto(xi, scores)
			softmaxInto(scores, probs)
			for c := 0; c < classes; c++ {
				g := probs[c]
				if c == yi {
					g -= 1
				}
				if g == 0 {
					continue
				}
				step := opt.LearnRate * g
				wc := m.W[c]
				for i, v := range xi {
					if v != 0 {
						wc[i] -= step * v
					}
				}
				m.B[c] -= step
			}
		}
		// Decoupled weight decay once per epoch (cheap and sufficient).
		decay := 1 - opt.L2
		for c := range m.W {
			for i := range m.W[c] {
				m.W[c][i] *= decay
			}
		}
	}
	return m, nil
}

func (m *LinearModel) scoresInto(x []float64, out []float64) {
	for c := 0; c < m.Classes; c++ {
		s := m.B[c]
		wc := m.W[c]
		for i, v := range x {
			if v != 0 {
				s += wc[i] * v
			}
		}
		out[c] = s
	}
}

func softmaxInto(scores, out []float64) {
	max := scores[0]
	for _, s := range scores[1:] {
		if s > max {
			max = s
		}
	}
	sum := 0.0
	for i, s := range scores {
		e := math.Exp(s - max)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

// Predict returns the argmax class for x.
func (m *LinearModel) Predict(x []float64) int {
	scores := make([]float64, m.Classes)
	m.scoresInto(x, scores)
	best := 0
	for c := 1; c < m.Classes; c++ {
		if scores[c] > scores[best] {
			best = c
		}
	}
	return best
}

// Accuracy evaluates the model on a labelled set.
func (m *LinearModel) Accuracy(x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	hits := 0
	for i := range x {
		if m.Predict(x[i]) == y[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(x))
}

// TernaryModel is the crossbar-deployable quantisation: weights in
// {-1, 0, +1} per (class, input).
type TernaryModel struct {
	Classes int
	Inputs  int
	// T[c][i] in {-1, 0, +1}.
	T [][]int8
}

// Ternarize quantises deterministically: weights with |w| above frac of
// the class's mean absolute weight keep their sign, the rest drop to 0.
func (m *LinearModel) Ternarize(frac float64) *TernaryModel {
	t := &TernaryModel{Classes: m.Classes, Inputs: m.Inputs, T: make([][]int8, m.Classes)}
	for c := 0; c < m.Classes; c++ {
		t.T[c] = make([]int8, m.Inputs)
		mean := 0.0
		for _, w := range m.W[c] {
			mean += math.Abs(w)
		}
		mean /= float64(m.Inputs)
		thr := frac * mean
		for i, w := range m.W[c] {
			switch {
			case w > thr:
				t.T[c][i] = 1
			case w < -thr:
				t.T[c][i] = -1
			}
		}
	}
	return t
}

// TernarizeStochastic quantises with dithered thresholds, producing a
// different (but statistically equivalent) replica per seed — the
// committee members.
func (m *LinearModel) TernarizeStochastic(frac float64, seed uint64) *TernaryModel {
	r := rng.NewSplitMix64(seed)
	t := &TernaryModel{Classes: m.Classes, Inputs: m.Inputs, T: make([][]int8, m.Classes)}
	for c := 0; c < m.Classes; c++ {
		t.T[c] = make([]int8, m.Inputs)
		mean := 0.0
		for _, w := range m.W[c] {
			mean += math.Abs(w)
		}
		mean /= float64(m.Inputs)
		for i, w := range m.W[c] {
			// Dither the threshold per weight: u in [0.5, 1.5) x frac.
			thr := (0.5 + r.Float64()) * frac * mean
			switch {
			case w > thr:
				t.T[c][i] = 1
			case w < -thr:
				t.T[c][i] = -1
			}
		}
	}
	return t
}

// Score returns the integer class scores for a (possibly analogue) input.
func (t *TernaryModel) Score(x []float64) []float64 {
	out := make([]float64, t.Classes)
	for c := 0; c < t.Classes; c++ {
		s := 0.0
		for i, v := range x {
			if v != 0 && t.T[c][i] != 0 {
				s += float64(t.T[c][i]) * v
			}
		}
		out[c] = s
	}
	return out
}

// Predict returns the argmax class under the ternary weights.
func (t *TernaryModel) Predict(x []float64) int {
	scores := t.Score(x)
	best := 0
	for c := 1; c < t.Classes; c++ {
		if scores[c] > scores[best] {
			best = c
		}
	}
	return best
}

// Accuracy evaluates the ternary model directly (the "infinite window"
// bound for the spiking deployment).
func (t *TernaryModel) Accuracy(x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	hits := 0
	for i := range x {
		if t.Predict(x[i]) == y[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(x))
}

// NonZeroFraction reports the density of the ternary weight matrix.
func (t *TernaryModel) NonZeroFraction() float64 {
	nz := 0
	for c := range t.T {
		for _, w := range t.T[c] {
			if w != 0 {
				nz++
			}
		}
	}
	return float64(nz) / float64(t.Classes*t.Inputs)
}

// Committee is a set of ternary replicas voting by summed score.
type Committee struct {
	Members []*TernaryModel
}

// NewCommittee builds k stochastically dithered replicas.
func NewCommittee(m *LinearModel, k int, frac float64, seed uint64) *Committee {
	c := &Committee{}
	for i := 0; i < k; i++ {
		c.Members = append(c.Members, m.TernarizeStochastic(frac, seed+uint64(i)*7919))
	}
	return c
}

// Predict sums member scores and returns the argmax class.
func (c *Committee) Predict(x []float64) int {
	if len(c.Members) == 0 {
		return -1
	}
	total := make([]float64, c.Members[0].Classes)
	for _, m := range c.Members {
		for i, s := range m.Score(x) {
			total[i] += s
		}
	}
	best := 0
	for i := 1; i < len(total); i++ {
		if total[i] > total[best] {
			best = i
		}
	}
	return best
}

// Accuracy evaluates the committee.
func (c *Committee) Accuracy(x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	hits := 0
	for i := range x {
		if c.Predict(x[i]) == y[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(x))
}
