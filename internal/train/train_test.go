package train

import (
	"testing"

	"github.com/neurogo/neurogo/internal/dataset"
)

// digitData builds train/test splits of noisy 16x16 digits.
func digitData(t testing.TB, nTrain, nTest int) (xtr [][]float64, ytr []int, xte [][]float64, yte []int) {
	t.Helper()
	gen := dataset.NewDigits(16, 0.03, 1, 1234)
	xtr, ytr = gen.Batch(nTrain)
	xte, yte = gen.Batch(nTest)
	return
}

func trainDigits(t testing.TB) (*LinearModel, [][]float64, []int, [][]float64, []int) {
	t.Helper()
	xtr, ytr, xte, yte := digitData(t, 800, 300)
	m, err := TrainLinear(xtr, ytr, dataset.NumClasses, Options{Epochs: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return m, xtr, ytr, xte, yte
}

func TestTrainLinearAccuracy(t *testing.T) {
	m, xtr, ytr, xte, yte := trainDigits(t)
	if acc := m.Accuracy(xtr, ytr); acc < 0.95 {
		t.Errorf("train accuracy = %.3f, want >= 0.95", acc)
	}
	if acc := m.Accuracy(xte, yte); acc < 0.90 {
		t.Errorf("test accuracy = %.3f, want >= 0.90", acc)
	}
}

func TestTrainLinearErrors(t *testing.T) {
	if _, err := TrainLinear(nil, nil, 2, Options{}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := TrainLinear([][]float64{{1}}, []int{5}, 2, Options{}); err == nil {
		t.Error("out-of-range label accepted")
	}
	if _, err := TrainLinear([][]float64{{1}, {0}}, []int{0}, 2, Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestTrainDeterministic(t *testing.T) {
	xtr, ytr, _, _ := digitData(t, 200, 1)
	m1, _ := TrainLinear(xtr, ytr, dataset.NumClasses, Options{Epochs: 3, Seed: 9})
	m2, _ := TrainLinear(xtr, ytr, dataset.NumClasses, Options{Epochs: 3, Seed: 9})
	for c := range m1.W {
		for i := range m1.W[c] {
			if m1.W[c][i] != m2.W[c][i] {
				t.Fatal("training not deterministic")
			}
		}
	}
}

func TestTernarizeValues(t *testing.T) {
	m, _, _, _, _ := trainDigits(t)
	tern := m.Ternarize(0.7)
	for c := range tern.T {
		for _, w := range tern.T[c] {
			if w < -1 || w > 1 {
				t.Fatalf("ternary weight %d out of range", w)
			}
		}
	}
	dens := tern.NonZeroFraction()
	if dens <= 0 || dens >= 1 {
		t.Errorf("ternary density = %g, want in (0,1)", dens)
	}
}

func TestTernaryAccuracyCloseToFloat(t *testing.T) {
	// frac 1.3 is the calibrated quantisation threshold (see the frac
	// sweep in the T3 experiment): keep only weights well above the
	// class's mean magnitude.
	m, _, _, xte, yte := trainDigits(t)
	floatAcc := m.Accuracy(xte, yte)
	ternAcc := m.Ternarize(1.3).Accuracy(xte, yte)
	if ternAcc < floatAcc-0.10 {
		t.Errorf("ternary accuracy %.3f dropped more than 10pp below float %.3f", ternAcc, floatAcc)
	}
	if ternAcc < 0.85 {
		t.Errorf("ternary accuracy %.3f unusably low", ternAcc)
	}
}

func TestStochasticTernarizeDiffersBySeed(t *testing.T) {
	m, _, _, _, _ := trainDigits(t)
	a := m.TernarizeStochastic(0.7, 1)
	b := m.TernarizeStochastic(0.7, 2)
	diff := 0
	for c := range a.T {
		for i := range a.T[c] {
			if a.T[c][i] != b.T[c][i] {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical replicas")
	}
	// Same seed reproduces.
	c := m.TernarizeStochastic(0.7, 1)
	for cc := range a.T {
		for i := range a.T[cc] {
			if a.T[cc][i] != c.T[cc][i] {
				t.Fatal("same seed produced different replica")
			}
		}
	}
}

func TestCommitteeBeatsWorstMember(t *testing.T) {
	m, _, _, xte, yte := trainDigits(t)
	com := NewCommittee(m, 5, 0.7, 77)
	comAcc := com.Accuracy(xte, yte)
	worst := 1.0
	for _, mem := range com.Members {
		if a := mem.Accuracy(xte, yte); a < worst {
			worst = a
		}
	}
	if comAcc < worst {
		t.Errorf("committee %.3f below its worst member %.3f", comAcc, worst)
	}
}

func TestCommitteeEmptyPredict(t *testing.T) {
	c := &Committee{}
	if c.Predict([]float64{1}) != -1 {
		t.Error("empty committee must predict -1")
	}
}

func TestAccuracyEmptySets(t *testing.T) {
	m := &LinearModel{Classes: 2, Inputs: 1, W: [][]float64{{1}, {-1}}, B: []float64{0, 0}}
	if m.Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy must be 0")
	}
	tern := m.Ternarize(0)
	if tern.Accuracy(nil, nil) != 0 {
		t.Error("empty ternary accuracy must be 0")
	}
}

func TestPredictSeparableToy(t *testing.T) {
	// Two classes: feature 0 high = class 0, feature 1 high = class 1.
	var x [][]float64
	var y []int
	for i := 0; i < 50; i++ {
		x = append(x, []float64{1, 0}, []float64{0, 1})
		y = append(y, 0, 1)
	}
	m, err := TrainLinear(x, y, 2, Options{Epochs: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{1, 0}) != 0 || m.Predict([]float64{0, 1}) != 1 {
		t.Error("failed to learn a trivially separable problem")
	}
	if acc := m.Accuracy(x, y); acc != 1 {
		t.Errorf("toy accuracy = %g, want 1", acc)
	}
}

func BenchmarkTrainLinearDigits(b *testing.B) {
	gen := dataset.NewDigits(16, 0.03, 1, 1)
	x, y := gen.Batch(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = TrainLinear(x, y, dataset.NumClasses, Options{Epochs: 2, Seed: 1})
	}
}
