package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/neurogo/neurogo/internal/codec"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/corelet"
	"github.com/neurogo/neurogo/internal/dataset"
	"github.com/neurogo/neurogo/internal/energy"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/pipeline"
	"github.com/neurogo/neurogo/internal/report"
	"github.com/neurogo/neurogo/internal/sim"
	"github.com/neurogo/neurogo/internal/train"
)

// classifierRig bundles a compiled spiking classifier ready to present
// images to.
type classifierRig struct {
	cls     *corelet.Classifier
	mapping *compile.Mapping
	model   *train.LinearModel
	tern    *train.TernaryModel
	xte     [][]float64
	yte     []int
}

// buildClassifierRig trains, quantises and compiles the digit classifier.
func buildClassifierRig(nTrain, nTest int, seed uint64) *classifierRig {
	gen := dataset.NewDigits(16, 0.03, 1, seed)
	xtr, ytr := gen.Batch(nTrain)
	xte, yte := gen.Batch(nTest)
	m, err := train.TrainLinear(xtr, ytr, dataset.NumClasses, train.Options{Epochs: 12, Seed: seed})
	if err != nil {
		panic(err)
	}
	tern := m.Ternarize(1.3)
	net := model.New()
	cls := corelet.BuildClassifier(net, tern, "digits", corelet.DefaultClassifierParams())
	mp, err := compile.Compile(net, compile.Options{Seed: seed})
	if err != nil {
		panic(err)
	}
	return &classifierRig{cls: cls, mapping: mp, model: m, tern: tern, xte: xte, yte: yte}
}

// newPipeline builds the rig's serving pipeline: Bernoulli rate code
// in, spike-count decode out, a 10-tick drain as the decay gap.
func (rig *classifierRig) newPipeline(window int, engine sim.Engine) *pipeline.Pipeline {
	p, err := pipeline.New(rig.mapping,
		pipeline.WithEngine(engine),
		pipeline.WithEncoder(codec.NewBernoulli(0.5, 42)),
		pipeline.WithDecoder(codec.NewCounter(dataset.NumClasses)),
		pipeline.WithLineMapper(pipeline.TwinLines(rig.cls.LinesFor)),
		pipeline.WithClassMapper(rig.cls.ClassOf),
		pipeline.WithWindow(window),
		pipeline.WithDrain(10))
	if err != nil {
		panic(err)
	}
	return p
}

// spikingAccuracy classifies the rig's test set at the given window,
// fanning images across the pipeline's session pool.
func (rig *classifierRig) spikingAccuracy(window int, engine sim.Engine) (acc float64, counters energy.Usage) {
	p := rig.newPipeline(window, engine)
	preds, err := p.ClassifyBatch(context.Background(), rig.xte)
	if err != nil {
		panic(err)
	}
	hits := 0
	for i, pred := range preds {
		if pred == rig.yte[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(rig.xte)), p.Usage(true)
}

// T3Classification regenerates the application table: accuracy and
// energy per classification for float baseline, direct ternary, spiking
// deployment and ternary committee.
func T3Classification(quick bool) Result {
	nTrain, nTest, window := 2048, 512, 16
	if quick {
		nTrain, nTest, window = 512, 96, 16
	}
	rig := buildClassifierRig(nTrain, nTest, 1234)

	floatAcc := rig.model.Accuracy(rig.xte, rig.yte)
	ternAcc := rig.tern.Accuracy(rig.xte, rig.yte)
	com := train.NewCommittee(rig.model, 5, 1.6, 77)
	comAcc := com.Accuracy(rig.xte, rig.yte)
	spikeAcc, used := rig.spikingAccuracy(window, sim.EngineEvent)

	coef := energy.DefaultCoefficients()
	r := coef.Evaluate(used)
	perImage := r.TotalPJ / float64(nTest)

	convU := used
	convU.Cores = 1
	convU.Hops = 0
	conv := energy.ConventionalCoefficients().Evaluate(convU)
	convPerImage := conv.TotalPJ / float64(nTest)

	spikesPerImage := float64(used.Spikes) / float64(nTest)

	tb := report.NewTable(
		fmt.Sprintf("Digit classification (16x16 synthetic digits, %d train / %d test, %d-tick window)", nTrain, nTest, window),
		"deployment", "accuracy", "energy/classification (nJ)", "spikes/classification")
	tb.AddRow("float linear (offline baseline)", report.F(floatAcc), "-", "-")
	tb.AddRow("ternary direct (infinite window)", report.F(ternAcc), "-", "-")
	tb.AddRow("ternary committee x5 (direct)", report.F(comAcc), "-", "-")
	tb.AddRow("spiking chip (event engine)", report.F(spikeAcc), report.F(perImage*1e-3), report.F(spikesPerImage))
	tb.AddRow("conventional sim (same workload)", report.F(spikeAcc), report.F(convPerImage*1e-3), report.F(spikesPerImage))

	var b strings.Builder
	tb.Render(&b)
	fmt.Fprintf(&b, "\nCompiled onto %d cores (%d relays). Paper shape: ternary deployment\n",
		rig.mapping.Stats.UsedCores, rig.mapping.Stats.Relays)
	fmt.Fprintf(&b, "costs a few accuracy points vs float, committees claw most of it back,\n")
	fmt.Fprintf(&b, "and the chip spends orders of magnitude less energy per classification.\n")
	return Result{
		ID:    "T3",
		Title: "Application accuracy and energy per classification",
		Text:  b.String(),
		Metrics: map[string]float64{
			"float_acc":         floatAcc,
			"ternary_acc":       ternAcc,
			"committee_acc":     comAcc,
			"spiking_acc":       spikeAcc,
			"nj_per_image":      perImage * 1e-3,
			"conventional_gain": convPerImage / perImage,
		},
	}
}

// F5Window regenerates the latency-accuracy trade-off figure: spiking
// accuracy vs observation window.
func F5Window(quick bool) Result {
	nTrain, nTest := 1024, 200
	windows := []int{1, 2, 4, 8, 16, 32}
	if quick {
		nTrain, nTest = 512, 64
		windows = []int{1, 4, 16}
	}
	rig := buildClassifierRig(nTrain, nTest, 1234)
	ternAcc := rig.tern.Accuracy(rig.xte, rig.yte)

	tb := report.NewTable("Accuracy vs observation window (spiking deployment)",
		"window (ticks)", "accuracy", "fraction of direct-ternary accuracy")
	var xs, ys []float64
	for _, w := range windows {
		acc, _ := rig.spikingAccuracy(w, sim.EngineEvent)
		tb.AddRow(report.I(int64(w)), report.F(acc), report.F(acc/ternAcc))
		xs = append(xs, float64(w))
		ys = append(ys, acc)
	}
	var b strings.Builder
	tb.Render(&b)
	b.WriteByte('\n')
	b.WriteString(report.Chart("accuracy vs window (ticks)",
		[]report.Series{{Name: "spiking", X: xs, Y: ys}}, 56, 12))
	fmt.Fprintf(&b, "\nDirect ternary (infinite window) accuracy: %s.\n", report.F(ternAcc))
	fmt.Fprintf(&b, "Paper shape: accuracy rises steeply with window then saturates —\n")
	fmt.Fprintf(&b, "the latency/accuracy knob of rate-coded inference.\n")
	return Result{
		ID:    "F5",
		Title: "Latency-accuracy trade-off",
		Text:  b.String(),
		Metrics: map[string]float64{
			"acc_first_window": ys[0],
			"acc_last_window":  ys[len(ys)-1],
			"ternary_acc":      ternAcc,
		},
	}
}

// F7Detector regenerates the end-to-end detection figure: precision and
// recall of the multi-object detector as its threshold sweeps.
func F7Detector(quick bool) Result {
	const cellsX, cellsY, cellPix = 4, 4, 7
	frames := 60
	if quick {
		frames = 16
	}
	thresholds := []int32{4, 6, 8, 10, 12}
	tb := report.NewTable(
		fmt.Sprintf("Multi-object detection (%dx%d cells, %d frames, plus-shaped objects, 2%% speckle)", cellsX, cellsY, frames),
		"threshold", "precision", "recall", "F1")
	var xs, precY, recY []float64
	bestF1 := 0.0
	for _, th := range thresholds {
		net := model.New()
		det := corelet.BuildDetector(net, cellsX, cellsY, cellPix, th)
		mp, err := compile.Compile(net, compile.Options{})
		if err != nil {
			panic(err)
		}
		p, err := pipeline.New(mp,
			pipeline.WithEncoder(codec.NewBinary(0.5, 1)),
			pipeline.WithLineMapper(pipeline.TwinLines(det.LinesFor)),
			pipeline.WithClassMapper(det.CellOf))
		if err != nil {
			panic(err)
		}
		stream := p.NewSession().Stream(context.Background())
		scenes := dataset.NewScenes(cellsX, cellsY, cellPix, 0.3, 0.02, 42)
		tp, fp, fn := 0, 0, 0
		for f := 0; f < frames; f++ {
			pixels, truth := scenes.Frame()
			labels, err := stream.Present(pixels, 6)
			if err != nil {
				panic(err)
			}
			fired := make([]bool, cellsX*cellsY)
			for _, l := range labels {
				if l.Class >= 0 {
					fired[l.Class] = true
				}
			}
			for c := range truth {
				switch {
				case fired[c] && truth[c]:
					tp++
				case fired[c] && !truth[c]:
					fp++
				case !fired[c] && truth[c]:
					fn++
				}
			}
		}
		prec := safeDiv(float64(tp), float64(tp+fp))
		rec := safeDiv(float64(tp), float64(tp+fn))
		f1 := safeDiv(2*prec*rec, prec+rec)
		if f1 > bestF1 {
			bestF1 = f1
		}
		tb.AddRow(report.I(int64(th)), report.F(prec), report.F(rec), report.F(f1))
		xs = append(xs, float64(th))
		precY = append(precY, prec)
		recY = append(recY, rec)
	}
	var b strings.Builder
	tb.Render(&b)
	b.WriteByte('\n')
	b.WriteString(report.Chart("precision/recall vs threshold",
		[]report.Series{{Name: "precision", X: xs, Y: precY}, {Name: "recall", X: xs, Y: recY}}, 56, 12))
	fmt.Fprintf(&b, "\nPaper shape: threshold sweeps trade recall for precision; template\n")
	fmt.Fprintf(&b, "matching in the crossbar detects all objects in parallel in O(1) ticks.\n")
	return Result{
		ID:    "F7",
		Title: "End-to-end multi-object detection",
		Text:  b.String(),
		Metrics: map[string]float64{
			"best_f1": bestF1,
		},
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
