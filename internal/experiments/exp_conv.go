package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/neurogo/neurogo/internal/codec"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/corelet"
	"github.com/neurogo/neurogo/internal/dataset"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/pipeline"
	"github.com/neurogo/neurogo/internal/report"
	"github.com/neurogo/neurogo/internal/train"
)

// E1Conv is the extension experiment: a three-stage convolutional stack
// (ternary oriented-edge kernels, OR-pooling for translation tolerance,
// ternary read-out) against the flat linear classifier, on digits with
// strong positional jitter. The conv/pool stack's local receptive fields
// plus pooling buy shift robustness the flat model cannot have.
func E1Conv(quick bool) Result {
	nTrain, nTest, window := 1536, 256, 8
	if quick {
		nTrain, nTest, window = 640, 96, 8
	}
	const (
		imgSize = 16
		stride  = 1
		convThr = 2
		poolWin = 2
		shift   = 3 // strong jitter: +/-3 pixels
	)
	gen := dataset.NewDigits(imgSize, 0.02, shift, 777)
	xtr, ytr := gen.Batch(nTrain)
	xte, yte := gen.Batch(nTest)
	kernels := corelet.OrientedKernels()
	convW := (imgSize-kernels[0].Size)/stride + 1

	// ---- Flat linear pipeline ----
	flat, err := train.TrainLinear(xtr, ytr, dataset.NumClasses, train.Options{Epochs: 12, Seed: 5})
	if err != nil {
		panic(err)
	}
	flatFloat := flat.Accuracy(xte, yte)
	flatTern := flat.Ternarize(1.3)
	flatTernAcc := flatTern.Accuracy(xte, yte)

	// ---- Conv+pool pipeline: float features -> linear read-out ----
	pooled := func(img []float64) []float64 {
		f := corelet.ConvFeatures(img, imgSize, kernels, stride, convThr)
		return corelet.FloatPool(f, len(kernels), convW, convW, poolWin)
	}
	featTr := make([][]float64, nTrain)
	for i, img := range xtr {
		featTr[i] = pooled(img)
	}
	featTe := make([][]float64, nTest)
	for i, img := range xte {
		featTe[i] = pooled(img)
	}
	convModel, err := train.TrainLinear(featTr, ytr, dataset.NumClasses, train.Options{Epochs: 12, Seed: 5})
	if err != nil {
		panic(err)
	}
	convFloat := convModel.Accuracy(featTe, yte)
	convTern := convModel.Ternarize(1.3)
	convTernAcc := convTern.Accuracy(featTe, yte)

	// ---- Compiled spiking conv/pool/read-out network ----
	net := model.New()
	conv, err := corelet.BuildConv2D(net, "conv", imgSize, imgSize, kernels, stride, convThr)
	if err != nil {
		panic(err)
	}
	pool, err := corelet.BuildPool2D(net, conv, "pool", poolWin)
	if err != nil {
		panic(err)
	}
	fc, err := corelet.BuildFeatureClassifier(net, convTern, pool, "out",
		corelet.ClassifierParams{Threshold: 8, Decay: 2})
	if err != nil {
		panic(err)
	}
	mp, err := compile.Compile(net, compile.Options{Seed: 7})
	if err != nil {
		panic(err)
	}
	// Held binary coding: the full image is injected every tick of the
	// window. Coincidence-thresholded conv features need the whole
	// patch present in one tick, so this (not a thinned Bernoulli code)
	// is the deployment code for conv stacks — exactly as the detector
	// application uses.
	p, err := pipeline.New(mp,
		pipeline.WithEncoder(codec.NewBinary(0.5, window)),
		pipeline.WithDecoder(codec.NewCounter(dataset.NumClasses)),
		pipeline.WithLineMapper(pipeline.TwinLines(conv.LinesFor)),
		pipeline.WithClassMapper(fc.ClassOf),
		pipeline.WithWindow(window),
		pipeline.WithDrain(12))
	if err != nil {
		panic(err)
	}
	preds, err := p.ClassifyBatch(context.Background(), xte)
	if err != nil {
		panic(err)
	}
	hits := 0
	for i, pred := range preds {
		if pred == yte[i] {
			hits++
		}
	}
	convSpiking := float64(hits) / float64(nTest)

	tb := report.NewTable(
		fmt.Sprintf("Conv/pool vs flat classifier under +/-%d-pixel jitter (%d train / %d test)", shift, nTrain, nTest),
		"pipeline", "float acc", "ternary acc", "spiking acc")
	tb.AddRow("flat linear (256 px)", report.F(flatFloat), report.F(flatTernAcc), "-")
	tb.AddRow(fmt.Sprintf("conv 4x3x3 (stride %d) + pool %dx%d + read-out", stride, poolWin, poolWin),
		report.F(convFloat), report.F(convTernAcc), report.F(convSpiking))

	var b strings.Builder
	tb.Render(&b)
	fmt.Fprintf(&b, "\nConv stack compiled onto %d cores (%d relays, %d feature + %d pool neurons).\n",
		mp.Stats.UsedCores, mp.Stats.Relays, 2*conv.Features(), 2*pool.Features())
	fmt.Fprintf(&b, "Extension shape: local receptive fields plus pooling buy shift\n")
	fmt.Fprintf(&b, "robustness that a flat ternary classifier loses under jitter.\n")
	return Result{
		ID:    "E1",
		Title: "Extension: convolutional corelet stack vs flat classifier",
		Text:  b.String(),
		Metrics: map[string]float64{
			"flat_ternary_acc": flatTernAcc,
			"conv_ternary_acc": convTernAcc,
			"conv_spiking_acc": convSpiking,
		},
	}
}
