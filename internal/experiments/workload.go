package experiments

import (
	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/core"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/rng"
)

// pipelineChip builds the synthetic traffic workload used by the power,
// throughput and scaling experiments: cores form a linear relay chain
// (neuron n of core i forwards to axon n of core i+1; the last core's
// spikes leave the chip), so every injected spike generates exactly one
// synaptic event, one neuron update and one routed packet per core it
// traverses. Activity is therefore precisely controlled by the injection
// rate.
func pipelineChip(w, h int) *chip.Chip {
	n := w * h
	cfgs := make([]*core.Config, n)
	for i := 0; i < n; i++ {
		cc := core.NewConfig()
		for nn := 0; nn < core.Size; nn++ {
			cc.Synapses.Set(nn, nn, true)
			cc.Neurons[nn].Threshold = 1
			if i+1 < n {
				cc.Targets[nn] = core.Target{Core: int32(i + 1), Axon: uint8(nn)}
			} else {
				cc.Targets[nn] = core.Target{Core: core.ExternalCore}
			}
		}
		cc.Seed = uint16(i + 1)
		cfgs[i] = cc
	}
	cfg := &chip.Config{Width: w, Height: h, Cores: cfgs}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return chip.New(cfg)
}

// drivePipeline injects `perTick` spikes per tick at core 0 (random
// axons) for `ticks` ticks using the given tick function, then returns
// the chip counters.
func drivePipeline(ch *chip.Chip, perTick int, ticks int, dense bool, seed uint64) chip.Counters {
	r := rng.NewSplitMix64(seed)
	for t := 0; t < ticks; t++ {
		for k := 0; k < perTick; k++ {
			_ = ch.Inject(0, r.Intn(core.Size), ch.Now())
		}
		if dense {
			ch.TickDense()
		} else {
			ch.Tick()
		}
	}
	return ch.Counters()
}

// ffNet builds the three-layer feed-forward network (256 -> 512 -> 256)
// used by the locality and placement experiments. Layer-1 and layer-2
// sources need delay 2 because their fan-out spans cores.
func ffNet(seed uint64) *model.Network {
	r := rng.NewSplitMix64(seed)
	m := model.New()
	in := m.AddInputBank("px", 256, model.SourceProps{Type: 0, Delay: 1})
	proto := neuron.Default()
	proto.Threshold = 2
	l1 := m.AddPopulation("l1", 512, proto)
	l2 := m.AddPopulation("l2", 256, proto)
	for i := 0; i < 256; i++ {
		for k := 0; k < 4; k++ {
			m.Connect(in.Line(i), l1.ID(r.Intn(512)))
		}
	}
	for i := 0; i < 512; i++ {
		m.SourceProps(l1.ID(i)).Delay = 2
		for k := 0; k < 3; k++ {
			m.Connect(model.NeuronNode(l1.ID(i)), l2.ID(r.Intn(256)))
		}
	}
	for i := 0; i < 256; i += 4 {
		m.MarkOutput(l2.ID(i))
	}
	return m
}
