package experiments

import (
	"fmt"
	"strings"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/energy"
	"github.com/neurogo/neurogo/internal/noc"
	"github.com/neurogo/neurogo/internal/report"
	"github.com/neurogo/neurogo/internal/rng"
	"github.com/neurogo/neurogo/internal/stats"
)

// F3NoCLatency regenerates the NoC latency-vs-load figure: mean and p99
// delivery latency under uniform-random traffic as injection rate rises,
// showing the linear region and the saturation knee.
func F3NoCLatency(quick bool) Result {
	side := 16
	cycles := 3000
	if quick {
		side = 8
		cycles = 800
	}
	loads := []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4}
	tb := report.NewTable(
		fmt.Sprintf("NoC latency vs injection rate (%dx%d mesh, uniform random, %d warm cycles)", side, side, cycles),
		"inject rate (pkts/router/cycle)", "delivered", "mean latency", "p99 latency", "mean hops", "rejected")
	var xs, meanY, p99Y []float64
	satRate := -1.0
	var baseline float64
	for _, load := range loads {
		m := noc.NewMesh(noc.Config{Width: side, Height: side, BufDepth: 4})
		m.RecordLatencies(true)
		r := rng.NewSplitMix64(uint64(load*1000) + 1)
		for c := int64(0); c < int64(cycles); c++ {
			for y := 0; y < side; y++ {
				for x := 0; x < side; x++ {
					if r.Float64() < load {
						src := noc.Coord{X: int16(x), Y: int16(y)}
						dst := noc.Coord{X: int16(r.Intn(side)), Y: int16(r.Intn(side))}
						m.Inject(src, noc.Packet{DX: dst.X - src.X, DY: dst.Y - src.Y}, c)
					}
				}
			}
			m.Step(c, nil)
		}
		m.Drain(int64(cycles), 20000, nil)
		s := m.Stats()
		lat := m.Latencies()
		p99 := stats.Percentile(lat, 99)
		tb.AddRow(report.F(load), report.I(int64(s.Delivered)), report.F(s.MeanLatency()),
			report.F(p99), report.F(s.MeanHops()), report.I(int64(s.RejectedInjections)))
		xs = append(xs, load)
		meanY = append(meanY, s.MeanLatency())
		p99Y = append(p99Y, p99)
		if baseline == 0 {
			baseline = s.MeanLatency()
		}
		if satRate < 0 && s.MeanLatency() > 4*baseline {
			satRate = load
		}
	}
	var b strings.Builder
	tb.Render(&b)
	b.WriteByte('\n')
	b.WriteString(report.Chart("latency (cycles) vs injection rate",
		[]report.Series{{Name: "mean", X: xs, Y: meanY}, {Name: "p99", X: xs, Y: p99Y}}, 56, 12))
	fmt.Fprintf(&b, "\nPaper shape: flat latency in the linear region, sharp knee at saturation.\n")
	metrics := map[string]float64{
		"base_latency": baseline,
		"max_latency":  meanY[len(meanY)-1],
	}
	if satRate > 0 {
		metrics["saturation_rate"] = satRate
	}
	return Result{
		ID:      "F3",
		Title:   "NoC latency vs injection rate",
		Text:    b.String(),
		Metrics: metrics,
	}
}

// staticHopHistogram computes the wire-length distribution of a compiled
// chip: for every neuron with an on-chip target, the Manhattan distance
// from its core to the target core.
func staticHopHistogram(mp *compile.Mapping) (*stats.Histogram, float64) {
	h := stats.NewHistogram(0, 16, 16)
	total, count := 0.0, 0
	w := mp.Chip.Width
	for idx, cc := range mp.Chip.Cores {
		if cc == nil {
			continue
		}
		src := noc.Coord{X: int16(idx % w), Y: int16(idx / w)}
		for _, tgt := range cc.Targets {
			if tgt.Core < 0 {
				continue
			}
			dst := noc.Coord{X: int16(int(tgt.Core) % w), Y: int16(int(tgt.Core) / w)}
			d := float64(noc.HopCount(src, dst))
			h.Add(d)
			total += d
			count++
		}
	}
	if count == 0 {
		return h, 0
	}
	return h, total / float64(count)
}

// F4Locality regenerates the traffic-locality figure: hop distribution
// of compiled connections under random, greedy and annealed placement.
func F4Locality(quick bool) Result {
	iters := 40000
	if quick {
		iters = 6000
	}
	placers := []struct {
		name string
		opt  compile.Options
	}{
		{"random", compile.Options{Placer: compile.PlacerRandom, Seed: 3}},
		{"greedy", compile.Options{Placer: compile.PlacerGreedy}},
		{"anneal", compile.Options{Placer: compile.PlacerAnneal, Seed: 3, AnnealIters: iters}},
	}
	tb := report.NewTable("Connection wire length by placement (256->512->256 feed-forward net)",
		"placer", "mean hops", "p(0-1 hops)", "p(>=4 hops)", "placement cost")
	var sers []report.Series
	means := map[string]float64{}
	for _, p := range placers {
		mp, err := compile.Compile(ffNet(1), p.opt)
		if err != nil {
			panic(err)
		}
		h, mean := staticHopHistogram(mp)
		fr := h.Fractions()
		short := fr[0] + fr[1]
		long := 0.0
		for i := 4; i < len(fr); i++ {
			long += fr[i]
		}
		tb.AddRow(p.name, report.F(mean), report.F(short), report.F(long),
			report.F(mp.Stats.PlacementCost))
		var xs, ys []float64
		for i, f := range fr {
			xs = append(xs, h.BinCenter(i))
			ys = append(ys, f)
		}
		sers = append(sers, report.Series{Name: p.name, X: xs, Y: ys})
		means[p.name] = mean
	}
	var b strings.Builder
	tb.Render(&b)
	b.WriteByte('\n')
	b.WriteString(report.Chart("fraction of connections vs hop count", sers, 56, 12))
	fmt.Fprintf(&b, "\nPaper shape: optimised placement concentrates traffic at short distances.\n")
	return Result{
		ID:    "F4",
		Title: "Traffic locality under placement optimisation",
		Text:  b.String(),
		Metrics: map[string]float64{
			"mean_hops_random": means["random"],
			"mean_hops_greedy": means["greedy"],
			"mean_hops_anneal": means["anneal"],
		},
	}
}

// T5Placement regenerates the placement ablation table: traffic cost,
// relays and NoC energy per tick for the three placers on the same net.
func T5Placement(quick bool) Result {
	iters := 40000
	ticks := 200
	if quick {
		iters = 6000
		ticks = 60
	}
	coef := energy.DefaultCoefficients()
	placers := []struct {
		name string
		opt  compile.Options
	}{
		{"random", compile.Options{Placer: compile.PlacerRandom, Seed: 3}},
		{"greedy", compile.Options{Placer: compile.PlacerGreedy}},
		{"anneal", compile.Options{Placer: compile.PlacerAnneal, Seed: 3, AnnealIters: iters}},
	}
	tb := report.NewTable("Placement quality (same net, three placers)",
		"placer", "placement cost", "used cores", "relays", "measured hops/spike", "NoC energy/tick (pJ)")
	costs := map[string]float64{}
	for _, p := range placers {
		mp, err := compile.Compile(ffNet(1), p.opt)
		if err != nil {
			panic(err)
		}
		// Drive the compiled chip with Poisson input and measure hops.
		measured := runFFTraffic(mp, ticks)
		hopsPerSpike := 0.0
		if measured.RoutedSpikes > 0 {
			hopsPerSpike = float64(measured.TotalHops) / float64(measured.RoutedSpikes)
		}
		nocEnergyPerTick := float64(measured.TotalHops) * coef.HopPJ / float64(ticks)
		tb.AddRow(p.name,
			report.F(mp.Stats.PlacementCost),
			report.I(int64(mp.Stats.UsedCores)),
			report.I(int64(mp.Stats.Relays)),
			report.F(hopsPerSpike),
			report.F(nocEnergyPerTick))
		costs[p.name] = mp.Stats.PlacementCost
	}
	var b strings.Builder
	tb.Render(&b)
	fmt.Fprintf(&b, "\nPaper shape: placement optimisation cuts traffic-weighted wire length\n")
	fmt.Fprintf(&b, "and with it the NoC share of active energy; relay count is placement-\n")
	fmt.Fprintf(&b, "independent (it is fixed by the network's fan-out structure).\n")
	return Result{
		ID:    "T5",
		Title: "Placement ablation: cost and NoC energy",
		Text:  b.String(),
		Metrics: map[string]float64{
			"cost_random": costs["random"],
			"cost_greedy": costs["greedy"],
			"cost_anneal": costs["anneal"],
		},
	}
}

// runFFTraffic drives a compiled ffNet with Poisson input spikes and
// returns the chip counters.
func runFFTraffic(mp *compile.Mapping, ticks int) chip.Counters {
	r := rng.NewSplitMix64(99)
	ch := chip.New(mp.Chip)
	for t := 0; t < ticks; t++ {
		for k := 0; k < 32; k++ {
			line := int32(r.Intn(len(mp.InputTargets)))
			at := ch.Now() + int64(mp.InputDelay[line])
			for _, tgt := range mp.InputTargets[line] {
				_ = ch.Inject(tgt.Core, int(tgt.Axon), at)
			}
		}
		ch.Tick()
	}
	return ch.Counters()
}
