package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/neurogo/neurogo/internal/report"
)

// timeTicks measures wall-clock ticks/second of the pipeline workload at
// the given injection rate and engine.
func timeTicks(cores, perTick, ticks int, dense bool, seed uint64) float64 {
	ch := pipelineChip(cores, 1)
	start := time.Now()
	drivePipeline(ch, perTick, ticks, dense, seed)
	el := time.Since(start).Seconds()
	if el <= 0 {
		el = 1e-9
	}
	return float64(ticks) / el
}

// T4Engines regenerates the simulator-throughput table: event-driven vs
// clock-driven ticks/second as network activity rises. The event engine
// dominates at low activity; the gap closes as activity saturates the
// cores (the crossover the ablation calls out).
func T4Engines(quick bool) Result {
	cores := 64
	ticks := 400
	if quick {
		cores = 16
		ticks = 100
	}
	loads := []int{0, 1, 8, 64, 256}
	tb := report.NewTable(
		fmt.Sprintf("Simulator throughput (%d-core pipeline, %d ticks/point)", cores, ticks),
		"inj/tick", "event (ticks/s)", "dense (ticks/s)", "event/dense")
	var ratios []float64
	for _, load := range loads {
		ev := timeTicks(cores, load, ticks, false, 5)
		de := timeTicks(cores, load, ticks, true, 5)
		ratio := ev / de
		ratios = append(ratios, ratio)
		tb.AddRow(report.I(int64(load)), report.F(ev), report.F(de), report.F(ratio))
	}
	var b strings.Builder
	tb.Render(&b)
	fmt.Fprintf(&b, "\nPaper shape: event-driven evaluation wins by orders of magnitude on\n")
	fmt.Fprintf(&b, "sparse activity; the advantage narrows as every core saturates.\n")
	return Result{
		ID:    "T4",
		Title: "Event-driven vs clock-driven simulation throughput",
		Text:  b.String(),
		Metrics: map[string]float64{
			"speedup_idle":      ratios[0],
			"speedup_saturated": ratios[len(ratios)-1],
		},
	}
}

// F6Scaling regenerates the weak-scaling figure: ticks/second vs core
// count at fixed per-core activity, for both engines.
func F6Scaling(quick bool) Result {
	sizes := []int{16, 32, 64, 128, 256}
	ticks := 300
	if quick {
		sizes = []int{8, 16, 32}
		ticks = 80
	}
	var xs, evY, deY []float64
	tb := report.NewTable(
		fmt.Sprintf("Weak scaling (4 inj/tick, %d ticks/point)", ticks),
		"cores", "event (ticks/s)", "dense (ticks/s)")
	for _, n := range sizes {
		ev := timeTicks(n, 4, ticks, false, 9)
		de := timeTicks(n, 4, ticks, true, 9)
		tb.AddRow(report.I(int64(n)), report.F(ev), report.F(de))
		xs = append(xs, float64(n))
		evY = append(evY, ev)
		deY = append(deY, de)
	}
	var b strings.Builder
	tb.Render(&b)
	b.WriteByte('\n')
	b.WriteString(report.Chart("ticks/s vs cores",
		[]report.Series{{Name: "event", X: xs, Y: evY}, {Name: "dense", X: xs, Y: deY}}, 56, 12))
	fmt.Fprintf(&b, "\nPaper shape: dense cost grows with core count regardless of activity;\n")
	fmt.Fprintf(&b, "event-driven cost tracks live traffic, so idle cores are free.\n")
	return Result{
		ID:    "F6",
		Title: "Simulation throughput vs core count",
		Text:  b.String(),
		Metrics: map[string]float64{
			"event_ticks_s_small": evY[0],
			"event_ticks_s_large": evY[len(evY)-1],
			"dense_ticks_s_large": deY[len(deY)-1],
		},
	}
}
