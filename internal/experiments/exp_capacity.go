package experiments

import (
	"fmt"
	"strings"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/energy"
	"github.com/neurogo/neurogo/internal/report"
)

// T1Capacity regenerates the system capacity table: cores, neurons,
// synapses and on-chip memory for single- and multi-chip builds.
func T1Capacity() Result {
	tb := report.NewTable("System capacity (64x64-core chips, tiled)",
		"config", "cores", "neurons", "synapses", "SRAM (Mbit)", "mesh diameter")
	type row struct {
		name string
		w, h int
	}
	rows := []row{
		{"1 chip (64x64)", 64, 64},
		{"4 chips (128x128)", 128, 128},
		{"16 chips (256x256)", 256, 256},
	}
	var oneChip chip.Capacity
	for i, r := range rows {
		c := chip.CapacityOf(r.w, r.h)
		if i == 0 {
			oneChip = c
		}
		tb.AddRow(r.name,
			report.I(int64(c.Cores)),
			report.I(int64(c.Neurons)),
			report.I(int64(c.Synapses)),
			report.F(float64(c.SRAMBits)/1e6),
			report.I(int64(c.MeshDiameter)))
	}
	var b strings.Builder
	tb.Render(&b)
	fmt.Fprintf(&b, "\nPaper shape: 4096 cores, ~1M neurons, ~256M synapses per chip;\n")
	fmt.Fprintf(&b, "linear scaling of neurons/synapses/SRAM with tiled chips.\n")
	return Result{
		ID:    "T1",
		Title: "Capacity and memory scaling",
		Text:  b.String(),
		Metrics: map[string]float64{
			"cores_per_chip":    float64(oneChip.Cores),
			"neurons_per_chip":  float64(oneChip.Neurons),
			"synapses_per_chip": float64(oneChip.Synapses),
		},
	}
}

// T2Energy regenerates the energy table at the nominal operating point
// and the comparison against a conventional machine.
func T2Energy() Result {
	coef := energy.DefaultCoefficients()
	u := energy.NominalUsage(4096, 1000, 20, 128)
	r := coef.Evaluate(u)

	convU := u
	convU.Cores = 1
	convU.Hops = 0
	conv := energy.ConventionalCoefficients().Evaluate(convU)

	tb := report.NewTable("Energy at the nominal operating point (20 Hz, 128 active synapses/neuron, 4096 cores, 1 s)",
		"quantity", "neuromorphic", "conventional (same workload)")
	tb.AddRow("total power (mW)", report.F(r.MeanPowerW*1e3), report.F(conv.MeanPowerW*1e3))
	tb.AddRow("leak power (mW)", report.F(r.LeakPJ*1e-12/r.WallSeconds*1e3), report.F(conv.LeakPJ*1e-12/conv.WallSeconds*1e3))
	tb.AddRow("active power (mW)", report.F(r.ActivePJ()*1e-12/r.WallSeconds*1e3), report.F(conv.ActivePJ()*1e-12/conv.WallSeconds*1e3))
	tb.AddRow("energy/syn. event (pJ)", report.F(r.PJPerSynapticEvent), report.F(conv.PJPerSynapticEvent))

	breakdown := report.NewTable("Active energy breakdown (neuromorphic)",
		"category", "energy (uJ)", "share (%)")
	total := r.ActivePJ()
	add := func(name string, pj float64) {
		breakdown.AddRow(name, report.F(pj*1e-6), report.F(pj/total*100))
	}
	add("synaptic events", r.SynapticPJ)
	add("axon reads", r.AxonPJ)
	add("neuron updates", r.NeuronPJ)
	add("spike generation", r.SpikePJ)
	add("router hops", r.HopPJ)

	var b strings.Builder
	tb.Render(&b)
	b.WriteByte('\n')
	breakdown.Render(&b)
	fmt.Fprintf(&b, "\nPaper shape: ~70 mW chip power, ~26 pJ per synaptic event, and\n")
	fmt.Fprintf(&b, "orders of magnitude below a conventional machine on the same workload.\n")
	return Result{
		ID:    "T2",
		Title: "Chip power and energy per synaptic event",
		Text:  b.String(),
		Metrics: map[string]float64{
			"power_mw":          r.MeanPowerW * 1e3,
			"pj_per_syn_event":  r.PJPerSynapticEvent,
			"conventional_gain": conv.TotalPJ / r.TotalPJ,
		},
	}
}

// F2PowerSweep regenerates the power-vs-firing-rate figure: a leak floor
// plus an activity-linear term, validated against a simulated chip.
func F2PowerSweep(quick bool) Result {
	coef := energy.DefaultCoefficients()
	rates := []float64{0, 10, 20, 40, 80, 120, 160, 200}
	var xs, ys []float64
	tb := report.NewTable("Model: chip power vs mean firing rate (4096 cores, 128 syn/spike)",
		"rate (Hz)", "power (mW)", "leak (mW)", "active (mW)")
	for _, rate := range rates {
		r := coef.Evaluate(energy.NominalUsage(4096, 1000, rate, 128))
		leak := r.LeakPJ * 1e-12 / r.WallSeconds * 1e3
		tb.AddRow(report.F(rate), report.F(r.MeanPowerW*1e3), report.F(leak),
			report.F(r.ActivePJ()*1e-12/r.WallSeconds*1e3))
		xs = append(xs, rate)
		ys = append(ys, r.MeanPowerW*1e3)
	}

	// Validation on a real simulated chip: drive the pipeline workload
	// at three activity levels and fit power vs injected rate.
	ticks := 400
	cores := 16
	if quick {
		ticks = 120
	}
	var simX, simY []float64
	for _, perTick := range []int{1, 4, 16} {
		ch := pipelineChip(cores, 1)
		ct := drivePipeline(ch, perTick, ticks, false, 7)
		u := energy.FromChip(ct, cores, uint64(ticks), true)
		r := coef.Evaluate(u)
		simX = append(simX, float64(perTick))
		simY = append(simY, r.MeanPowerW*1e6) // uW for a 16-core chip
	}
	slope := (simY[2] - simY[0]) / (simX[2] - simX[0])
	midPredicted := simY[0] + slope*(simX[1]-simX[0])
	linErr := abs(midPredicted-simY[1]) / simY[1]

	var b strings.Builder
	tb.Render(&b)
	b.WriteByte('\n')
	b.WriteString(report.Chart("power (mW) vs firing rate (Hz)",
		[]report.Series{{Name: "total", X: xs, Y: ys}}, 56, 12))
	fmt.Fprintf(&b, "\nSimulated 16-core validation: power %.1f/%.1f/%.1f uW at 1/4/16 inj/tick"+
		" (linearity error %.1f%%).\n", simY[0], simY[1], simY[2], linErr*100)
	fmt.Fprintf(&b, "Paper shape: flat leak floor, activity-proportional total.\n")
	return Result{
		ID:    "F2",
		Title: "Power vs mean firing rate",
		Text:  b.String(),
		Metrics: map[string]float64{
			"leak_floor_mw":     ys[0],
			"power_200hz_mw":    ys[len(ys)-1],
			"sim_linearity_err": linErr,
		},
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
