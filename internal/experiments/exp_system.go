package experiments

import (
	"fmt"
	"strings"

	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/report"
	"github.com/neurogo/neurogo/internal/rng"
	"github.com/neurogo/neurogo/internal/system"
)

// E2System is the multi-chip extension experiment: the same network
// compiled with each placer onto a 2x2 tile of chips, measuring what
// fraction of spike traffic crosses chip-to-chip links — the scarce
// resource of tiled systems.
func E2System(quick bool) Result {
	ticks := 200
	iters := 30000
	if quick {
		ticks = 60
		iters = 6000
	}
	placers := []struct {
		name string
		opt  compile.Options
	}{
		{"random", compile.Options{Placer: compile.PlacerRandom, Seed: 3}},
		{"greedy", compile.Options{Placer: compile.PlacerGreedy}},
		{"anneal", compile.Options{Placer: compile.PlacerAnneal, Seed: 3, AnnealIters: iters}},
	}
	// A 6x6 core grid split into four 3x3-core chips; the workload
	// occupies roughly one chip's worth of cores, so placement decides
	// whether it straddles boundaries.
	tb := report.NewTable("Multi-chip boundary traffic (6x6 cores as 2x2 chips of 3x3)",
		"placer", "inter-chip fraction", "inter-chip spikes", "busiest link")
	fracs := map[string]float64{}
	for _, p := range placers {
		opt := p.opt
		opt.Width, opt.Height = 6, 6
		mp, err := compile.Compile(ffNet(1), opt)
		if err != nil {
			panic(err)
		}
		sys := driveBoundarySystem(mp, ticks)
		st := sys.Stats()
		tb.AddRow(p.name,
			report.F(sys.InterChipFraction()),
			report.I(int64(st.InterChip)),
			report.I(int64(st.BusiestLink)))
		fracs[p.name] = sys.InterChipFraction()
	}
	var b strings.Builder
	tb.Render(&b)
	fmt.Fprintf(&b, "\nExtension shape: compact placement (greedy) keeps traffic on-chip.\n")
	fmt.Fprintf(&b, "Note the finding: annealing minimises hop distance, not boundary\n")
	fmt.Fprintf(&b, "crossings — its hop-optimal blob can straddle the chip corner, so\n")
	fmt.Fprintf(&b, "boundary-aware placement is a distinct objective in tiled systems.\n")
	return Result{
		ID:    "E2",
		Title: "Extension: multi-chip boundary traffic vs placement",
		Text:  b.String(),
		Metrics: map[string]float64{
			"interchip_random": fracs["random"],
			"interchip_greedy": fracs["greedy"],
			"interchip_anneal": fracs["anneal"],
		},
	}
}

// driveBoundarySystem builds the 2x2 tile of 3x3-core chips over a
// compiled 6x6-grid mapping and drives the shared E2/E3 workload: 32
// random input-line injections per tick, seeded identically, so E3's
// λ=0 row reproduces E2's boundary-blind annealing measurement exactly.
func driveBoundarySystem(mp *compile.Mapping, ticks int) *system.System {
	sys, err := system.New(mp.Chip, system.Config{ChipCoresX: 3, ChipCoresY: 3})
	if err != nil {
		panic(err)
	}
	r := rng.NewSplitMix64(99)
	for t := 0; t < ticks; t++ {
		for k := 0; k < 32; k++ {
			line := int32(r.Intn(len(mp.InputTargets)))
			at := sys.Chip().Now() + int64(mp.InputDelay[line])
			for _, tgt := range mp.InputTargets[line] {
				_ = sys.Chip().Inject(tgt.Core, int(tgt.Axon), at)
			}
		}
		sys.Tick()
	}
	return sys
}

// E3Boundary is the boundary-aware placement ablation E2 motivates: the
// same network annealed onto the same 2x2-chip tile under a λ sweep of
// the combined objective (hop cost + λ per crossing traffic unit),
// tracing the InterChipFraction vs hop-cost trade-off and checking the
// compile-time predicted fraction against the measured one.
func E3Boundary(quick bool) Result {
	ticks := 200
	iters := 30000
	if quick {
		ticks = 60
		iters = 6000
	}
	lambdas := []float64{0, 0.5, 1, 2, 4, 8}
	tb := report.NewTable("Boundary-aware placement ablation (anneal, 6x6 cores as 2x2 chips of 3x3)",
		"lambda", "hop cost", "predicted frac", "measured frac", "busiest link")
	metrics := map[string]float64{}
	for _, lambda := range lambdas {
		mp, err := compile.Compile(ffNet(1), compile.Options{
			Placer: compile.PlacerAnneal, Seed: 3, AnnealIters: iters,
			Width: 6, Height: 6, ChipCoresX: 3, ChipCoresY: 3,
			BoundaryWeight: lambda,
		})
		if err != nil {
			panic(err)
		}
		sys := driveBoundarySystem(mp, ticks)
		st := sys.Stats()
		tb.AddRow(fmt.Sprintf("%g", lambda),
			report.F(mp.Stats.PlacementCost),
			report.F(mp.Stats.PredictedInterChipFraction),
			report.F(sys.InterChipFraction()),
			report.I(int64(st.BusiestLink)))
		key := fmt.Sprintf("%g", lambda)
		metrics["measured_l"+key] = sys.InterChipFraction()
		metrics["predicted_l"+key] = mp.Stats.PredictedInterChipFraction
		metrics["hop_l"+key] = mp.Stats.PlacementCost
	}
	var b strings.Builder
	tb.Render(&b)
	fmt.Fprintf(&b, "\nExtension shape: λ trades mesh hops for scarce chip-to-chip links.\n")
	fmt.Fprintf(&b, "λ=0 reproduces E2's boundary-blind annealing; raising λ drives the\n")
	fmt.Fprintf(&b, "measured inter-chip fraction down (matching the compile-time\n")
	fmt.Fprintf(&b, "prediction), at a bounded hop-cost premium — the placement knob\n")
	fmt.Fprintf(&b, "tiled deployments tune per workload.\n")
	return Result{
		ID:      "E3",
		Title:   "Extension: boundary-aware placement ablation (λ sweep)",
		Text:    b.String(),
		Metrics: metrics,
	}
}
