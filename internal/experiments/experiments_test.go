package experiments

import (
	"strings"
	"testing"
)

func TestIDsComplete(t *testing.T) {
	want := []string{"T1", "F1", "T2", "F2", "F3", "F4", "T3", "F5", "T4", "F6", "T5", "F7", "E1", "E2", "E3"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("T9", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunCaseInsensitive(t *testing.T) {
	r, err := Run("t1", true)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "T1" {
		t.Fatalf("ID = %s", r.ID)
	}
}

func TestT1Capacity(t *testing.T) {
	r := T1Capacity()
	if r.Metrics["cores_per_chip"] != 4096 {
		t.Errorf("cores_per_chip = %g", r.Metrics["cores_per_chip"])
	}
	if r.Metrics["neurons_per_chip"] != 4096*256 {
		t.Errorf("neurons_per_chip = %g", r.Metrics["neurons_per_chip"])
	}
	if !strings.Contains(r.Text, "268,435,456") {
		t.Error("synapse count missing from table")
	}
}

func TestF1Behaviors(t *testing.T) {
	r := F1Behaviors()
	if r.Metrics["behaviors"] != 20 {
		t.Errorf("behaviors = %g", r.Metrics["behaviors"])
	}
	if !strings.Contains(r.Text, "tonic-spiking") || !strings.Contains(r.Text, "bistability") {
		t.Error("gallery entries missing")
	}
	if !strings.Contains(r.Text, "|") {
		t.Error("rasters missing")
	}
}

func TestT2Energy(t *testing.T) {
	r := T2Energy()
	if p := r.Metrics["power_mw"]; p < 50 || p > 90 {
		t.Errorf("power = %g mW, want calibration window [50,90]", p)
	}
	if e := r.Metrics["pj_per_syn_event"]; e < 20 || e > 32 {
		t.Errorf("pJ/event = %g, want [20,32]", e)
	}
	if g := r.Metrics["conventional_gain"]; g < 20 {
		t.Errorf("conventional gain = %g, want >= 20x", g)
	}
}

func TestF2PowerSweep(t *testing.T) {
	r := F2PowerSweep(true)
	if r.Metrics["leak_floor_mw"] <= 0 {
		t.Error("no leak floor")
	}
	if r.Metrics["power_200hz_mw"] <= r.Metrics["leak_floor_mw"] {
		t.Error("power must grow with rate")
	}
	if r.Metrics["sim_linearity_err"] > 0.15 {
		t.Errorf("simulated power not activity-linear: err=%g", r.Metrics["sim_linearity_err"])
	}
}

func TestF3NoCLatency(t *testing.T) {
	r := F3NoCLatency(true)
	if r.Metrics["base_latency"] <= 0 {
		t.Error("no base latency")
	}
	if r.Metrics["max_latency"] <= r.Metrics["base_latency"] {
		t.Error("latency must grow with load")
	}
}

func TestF4Locality(t *testing.T) {
	r := F4Locality(true)
	if r.Metrics["mean_hops_greedy"] >= r.Metrics["mean_hops_random"] {
		t.Errorf("greedy (%g) must beat random (%g)",
			r.Metrics["mean_hops_greedy"], r.Metrics["mean_hops_random"])
	}
}

func TestT3Classification(t *testing.T) {
	r := T3Classification(true)
	if r.Metrics["float_acc"] < 0.9 {
		t.Errorf("float accuracy = %g", r.Metrics["float_acc"])
	}
	if r.Metrics["spiking_acc"] < r.Metrics["ternary_acc"]-0.12 {
		t.Errorf("spiking accuracy %g too far below ternary %g",
			r.Metrics["spiking_acc"], r.Metrics["ternary_acc"])
	}
	if r.Metrics["conventional_gain"] < 10 {
		t.Errorf("conventional gain = %g", r.Metrics["conventional_gain"])
	}
}

func TestF5Window(t *testing.T) {
	r := F5Window(true)
	if r.Metrics["acc_last_window"] <= r.Metrics["acc_first_window"] {
		t.Errorf("accuracy must improve with window: %g -> %g",
			r.Metrics["acc_first_window"], r.Metrics["acc_last_window"])
	}
}

func TestT4Engines(t *testing.T) {
	r := T4Engines(true)
	if r.Metrics["speedup_idle"] <= r.Metrics["speedup_saturated"] {
		t.Errorf("event advantage must shrink with activity: idle %gx vs saturated %gx",
			r.Metrics["speedup_idle"], r.Metrics["speedup_saturated"])
	}
	if r.Metrics["speedup_idle"] < 2 {
		t.Errorf("idle speedup = %gx, expected event engine to dominate", r.Metrics["speedup_idle"])
	}
}

func TestF6Scaling(t *testing.T) {
	r := F6Scaling(true)
	if r.Metrics["event_ticks_s_large"] <= r.Metrics["dense_ticks_s_large"] {
		t.Error("event engine must beat dense at scale on sparse traffic")
	}
}

func TestT5Placement(t *testing.T) {
	r := T5Placement(true)
	if r.Metrics["cost_greedy"] >= r.Metrics["cost_random"] {
		t.Errorf("greedy cost %g must beat random %g",
			r.Metrics["cost_greedy"], r.Metrics["cost_random"])
	}
}

func TestF7Detector(t *testing.T) {
	r := F7Detector(true)
	if r.Metrics["best_f1"] < 0.9 {
		t.Errorf("best F1 = %g, want >= 0.9", r.Metrics["best_f1"])
	}
}

func TestE1Conv(t *testing.T) {
	r := E1Conv(true)
	if r.Metrics["conv_ternary_acc"] <= r.Metrics["flat_ternary_acc"] {
		t.Errorf("conv ternary %g must beat flat ternary %g under jitter",
			r.Metrics["conv_ternary_acc"], r.Metrics["flat_ternary_acc"])
	}
	if r.Metrics["conv_spiking_acc"] < r.Metrics["conv_ternary_acc"]-0.12 {
		t.Errorf("spiking conv %g too far below its ternary bound %g",
			r.Metrics["conv_spiking_acc"], r.Metrics["conv_ternary_acc"])
	}
}

func TestE2System(t *testing.T) {
	r := E2System(true)
	// Greedy's compact blob is the robust boundary winner; annealing
	// optimises hop distance, not boundary crossings, so it is not
	// asserted against random (see the experiment's discussion).
	if r.Metrics["interchip_greedy"] >= r.Metrics["interchip_random"] {
		t.Errorf("greedy inter-chip fraction %g must beat random %g",
			r.Metrics["interchip_greedy"], r.Metrics["interchip_random"])
	}
}

func TestE3Boundary(t *testing.T) {
	r := E3Boundary(true)
	if r.Metrics["measured_l0"] == 0 {
		t.Fatal("λ=0 annealing crossed no boundary; instance no longer discriminates")
	}
	// The headline claim: pricing crossings lowers the measured
	// inter-chip fraction vs the boundary-blind (λ=0) placement.
	if r.Metrics["measured_l8"] >= r.Metrics["measured_l0"] {
		t.Errorf("λ=8 measured fraction %g not below λ=0's %g",
			r.Metrics["measured_l8"], r.Metrics["measured_l0"])
	}
	// The compile-time prediction tracks the measurement directionally:
	// λ=8's predicted fraction must also undercut λ=0's.
	if r.Metrics["predicted_l8"] >= r.Metrics["predicted_l0"] {
		t.Errorf("λ=8 predicted fraction %g not below λ=0's %g",
			r.Metrics["predicted_l8"], r.Metrics["predicted_l0"])
	}
}

func TestRenderIncludesMetrics(t *testing.T) {
	r := T1Capacity()
	s := r.Render()
	if !strings.Contains(s, "T1") || !strings.Contains(s, "metrics:") {
		t.Error("Render missing sections")
	}
}
