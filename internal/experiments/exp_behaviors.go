package experiments

import (
	"fmt"
	"strings"

	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/report"
	"github.com/neurogo/neurogo/internal/trace"
)

// F1Behaviors regenerates the neuron-model richness figure: the gallery
// of twenty canonical behaviours, summarised per entry and rendered as
// rasters for a representative subset.
func F1Behaviors() Result {
	gallery := neuron.Gallery()
	tb := report.NewTable("Neuron behaviour gallery (single digital neuron per entry)",
		"behaviour", "spikes", "mean ISI", "ISI CV", "window")
	showRaster := map[string]bool{
		"tonic-spiking": true, "tonic-bursting": true,
		"rebound-burst": true, "stochastic-spontaneous": true,
	}
	var rasters strings.Builder
	for _, b := range gallery {
		b := b
		tr := b.Run()
		var rec trace.Recorder
		for _, st := range tr.SpikeTimes {
			rec.Record(int64(st), 0)
		}
		times := make([]int64, len(tr.SpikeTimes))
		for i, st := range tr.SpikeTimes {
			times[i] = int64(st)
		}
		mean, _, cv := trace.ISIStats(times)
		tb.AddRow(b.Name,
			report.I(int64(len(tr.SpikeTimes))),
			report.F(mean),
			report.F(cv),
			report.I(int64(b.Window)))
		if showRaster[b.Name] {
			window := b.Window
			if window > 96 {
				window = 96
			}
			fmt.Fprintf(&rasters, "\n%s:\n%s", b.Name, rec.Raster(1, 0, int64(window)))
		}
	}
	var b strings.Builder
	tb.Render(&b)
	b.WriteString(rasters.String())
	fmt.Fprintf(&b, "\nPaper shape: one parameterised digital neuron reproduces the full\n")
	fmt.Fprintf(&b, "canonical behaviour repertoire (tonic/phasic spiking and bursting,\n")
	fmt.Fprintf(&b, "integration, rebound, bistability, stochastic modes, ...).\n")
	return Result{
		ID:    "F1",
		Title: "Neuron model richness: 20-behaviour gallery",
		Text:  b.String(),
		Metrics: map[string]float64{
			"behaviors": float64(len(gallery)),
		},
	}
}
