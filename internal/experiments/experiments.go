// Package experiments regenerates every table and figure of the
// reconstructed evaluation (see DESIGN.md section 3 and EXPERIMENTS.md).
// Each experiment returns a Result holding rendered tables/charts plus
// the headline metrics, and is exposed both through cmd/npaper and the
// root-level benchmarks.
//
// Experiments accept a quick flag: quick runs shrink workloads to keep
// test suites fast; full runs (cmd/npaper) use the canonical sizes.
// All randomness is seeded, so results are reproducible; only wall-clock
// throughput metrics (T4, F6) vary between machines.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one regenerated table or figure.
type Result struct {
	// ID is the experiment identifier (T1..T5, F1..F7).
	ID string
	// Title describes what the experiment reproduces.
	Title string
	// Text is the rendered table(s) and chart(s).
	Text string
	// Metrics holds the headline numbers for bench reporting.
	Metrics map[string]float64
}

// Render returns the full human-readable block for the result.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== %s: %s ====\n\n", r.ID, r.Title)
	b.WriteString(r.Text)
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("\nmetrics:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%.6g", k, r.Metrics[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// runner describes one experiment for the registry.
type runner struct {
	ID string
	Fn func(quick bool) Result
}

// registry lists every experiment in presentation order.
func registry() []runner {
	return []runner{
		{"T1", func(bool) Result { return T1Capacity() }},
		{"F1", func(bool) Result { return F1Behaviors() }},
		{"T2", func(bool) Result { return T2Energy() }},
		{"F2", F2PowerSweep},
		{"F3", F3NoCLatency},
		{"F4", F4Locality},
		{"T3", T3Classification},
		{"F5", F5Window},
		{"T4", T4Engines},
		{"F6", F6Scaling},
		{"T5", T5Placement},
		{"F7", F7Detector},
		{"E1", E1Conv},
		{"E2", E2System},
		{"E3", E3Boundary},
	}
}

// IDs returns the experiment identifiers in order.
func IDs() []string {
	var out []string
	for _, r := range registry() {
		out = append(out, r.ID)
	}
	return out
}

// Run executes one experiment by ID.
func Run(id string, quick bool) (Result, error) {
	for _, r := range registry() {
		if strings.EqualFold(r.ID, id) {
			return r.Fn(quick), nil
		}
	}
	return Result{}, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
}

// All executes every experiment in order.
func All(quick bool) []Result {
	var out []Result
	for _, r := range registry() {
		out = append(out, r.Fn(quick))
	}
	return out
}
