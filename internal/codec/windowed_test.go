package codec

import (
	"testing"

	"github.com/neurogo/neurogo/internal/rng"
)

// TestSlidingCounterMatchesCounter is the codec half of the
// TestStreamingBitIdentical acceptance criterion: for the same spike
// train bounded to one presentation, a SlidingCounter whose window is
// the presentation length decides exactly like Counter.
func TestSlidingCounterMatchesCounter(t *testing.T) {
	const classes, window = 6, 16
	for seed := uint64(0); seed < 20; seed++ {
		r := rng.NewSplitMix64(seed ^ 0x9e3779b9)
		ctr := NewCounter(classes)
		sl := NewSlidingCounter(classes, window)
		for tick := int64(0); tick < window; tick++ {
			for s := 0; s < r.Intn(4); s++ {
				c := r.Intn(classes)
				ctr.ObserveAt(c, tick)
				sl.ObserveAt(c, tick)
			}
		}
		if got, want := sl.Decide(), ctr.Decide(); got != want {
			t.Fatalf("seed %d: sliding decided %d, counter %d", seed, got, want)
		}
		class, margin, _ := sl.DecideAt(window - 1)
		if class != ctr.Argmax() || int(margin) != ctr.Margin() {
			t.Fatalf("seed %d: DecideAt = (%d, %v), counter argmax/margin = (%d, %d)",
				seed, class, margin, ctr.Argmax(), ctr.Margin())
		}
	}
}

// TestSlidingCounterEviction pins the exact-eviction contract: a spike
// contributes for exactly Window ticks and not one more.
func TestSlidingCounterEviction(t *testing.T) {
	s := NewSlidingCounter(2, 4)
	s.ObserveAt(0, 0)
	if class, _, ok := s.DecideAt(3); !ok || class != 0 {
		t.Fatalf("tick 3 (last covered): class %d ok %v, want 0 true", class, ok)
	}
	if _, _, ok := s.DecideAt(4); ok {
		t.Fatalf("tick 4: the tick-0 spike must have been evicted")
	}
	if s.Total() != 0 {
		t.Fatalf("window total %d after eviction, want 0", s.Total())
	}
	// A big head jump (more than a full window) clears everything.
	s.ObserveAt(1, 10)
	s.ObserveAt(1, 11)
	if _, _, ok := s.DecideAt(100); ok || s.Total() != 0 {
		t.Fatalf("jump past a full window left %d spikes", s.Total())
	}
}

// TestSlidingCounterLateEvents: observation lag delivers events up to
// two ticks behind the decision head; late events inside the window
// count, late events beyond it are dropped.
func TestSlidingCounterLateEvents(t *testing.T) {
	s := NewSlidingCounter(2, 4)
	s.ObserveAt(0, 5)
	s.ObserveAt(1, 3) // late but within the window (covers ticks 2..5)
	if got := s.Total(); got != 2 {
		t.Fatalf("late in-window event dropped: total %d, want 2", got)
	}
	s.ObserveAt(1, 1) // older than the window: must be dropped
	if got := s.Total(); got != 2 {
		t.Fatalf("stale event counted: total %d, want 2", got)
	}
}

// TestSlidingCounterGate: the confidence gate abstains on thin evidence
// and thin margins, and reports the decision once both clear.
func TestSlidingCounterGate(t *testing.T) {
	s := NewSlidingCounter(3, 8)
	s.MinCount, s.MinMargin = 3, 2
	s.ObserveAt(1, 0)
	if _, _, ok := s.DecideAt(0); ok {
		t.Fatal("gate passed with 1 spike, MinCount 3")
	}
	s.ObserveAt(1, 1)
	s.ObserveAt(2, 1)
	// 3 spikes, but margin 1 (class 1: 2, class 2: 1).
	if _, _, ok := s.DecideAt(1); ok {
		t.Fatal("gate passed with margin 1, MinMargin 2")
	}
	s.ObserveAt(1, 2)
	class, margin, ok := s.DecideAt(2)
	if !ok || class != 1 || margin != 2 {
		t.Fatalf("gate: (%d, %v, %v), want (1, 2, true)", class, margin, ok)
	}
	// Decide applies the same gate.
	if got := s.Decide(); got != 1 {
		t.Fatalf("Decide = %d, want 1", got)
	}
}

// TestDecayCounterExactDecay pins the fixed-point decay law: the
// accumulator after k idle ticks equals k applications of v -= v>>shift
// exactly — the property bit-identity across engines rests on.
func TestDecayCounterExactDecay(t *testing.T) {
	d := NewDecayCounter(1, 3)
	d.ObserveAt(0, 0)
	want := uint64(decayOne)
	for k := int64(1); k <= 40; k++ {
		want -= want >> 3
		d.advanceTo(k)
		if d.acc[0] != want {
			t.Fatalf("tick %d: acc %d, want %d", k, d.acc[0], want)
		}
	}
	if lvl := d.Level(0); lvl <= 0 || lvl >= 1 {
		t.Fatalf("decayed level %v out of (0,1)", lvl)
	}
}

// TestDecayCounterLateObservation: a late-delivered spike enters
// pre-decayed by its age, so delivery order (within lag) cannot change
// the accumulator.
func TestDecayCounterLateObservation(t *testing.T) {
	inOrder := NewDecayCounter(2, 4)
	inOrder.ObserveAt(0, 3)
	inOrder.ObserveAt(1, 5)
	inOrder.advanceTo(5)

	late := NewDecayCounter(2, 4)
	late.ObserveAt(1, 5) // head advances to 5
	late.ObserveAt(0, 3) // delivered two ticks late
	for c := 0; c < 2; c++ {
		if inOrder.acc[c] != late.acc[c] {
			t.Fatalf("class %d: in-order acc %d, late acc %d", c, inOrder.acc[c], late.acc[c])
		}
	}
}

// TestDecayCounterGate: level and margin gates in spike units.
func TestDecayCounterGate(t *testing.T) {
	d := NewDecayCounter(2, 3)
	d.MinLevel, d.MinMargin = 2, 1.5
	d.ObserveAt(0, 0)
	if _, _, ok := d.DecideAt(0); ok {
		t.Fatal("gate passed below MinLevel")
	}
	d.ObserveAt(0, 0)
	d.ObserveAt(0, 0)
	class, margin, ok := d.DecideAt(0)
	if !ok || class != 0 || margin != 3 {
		t.Fatalf("gate: (%d, %v, %v), want (0, 3, true)", class, margin, ok)
	}
	// Decay below the level floor re-arms the abstention.
	if _, _, ok := d.DecideAt(10); ok {
		t.Fatal("gate passed after decaying below MinLevel")
	}
}

// TestWindowedTieBreak: ties break toward the lower class index,
// matching Counter.Argmax.
func TestWindowedTieBreak(t *testing.T) {
	s := NewSlidingCounter(3, 8)
	s.ObserveAt(2, 0)
	s.ObserveAt(1, 1)
	if class, _, _ := s.DecideAt(1); class != 1 {
		t.Fatalf("sliding tie decided %d, want lower index 1", class)
	}
	d := NewDecayCounter(3, 3)
	d.ObserveAt(2, 0)
	d.ObserveAt(1, 0)
	if class, _, _ := d.DecideAt(0); class != 1 {
		t.Fatalf("decay tie decided %d, want lower index 1", class)
	}
}
