// Package codec converts between analogue values and spike trains: the
// encoders drive input lines of a compiled network, the decoders read its
// output events. All encoders are deterministic given their seed, so
// experiments are reproducible end to end.
package codec

import (
	"fmt"
	"math"

	"github.com/neurogo/neurogo/internal/rng"
)

// EmitFunc receives the index of an input line that spikes this tick.
type EmitFunc func(line int)

// Encoder turns a value vector into per-tick spike emissions.
type Encoder interface {
	// Tick emits this tick's spikes for values (one entry per line,
	// expected in [0,1]). Implementations clamp out-of-range values.
	Tick(values []float64, emit EmitFunc)
	// Reset restarts any internal phase/state for a new presentation.
	Reset()
	// Clone returns an independent encoder with the same configuration,
	// restarted from its seed/phase origin. Session pools clone the
	// prototype encoder so concurrent sessions never share PRNG state.
	Clone() Encoder
}

// Decoder reduces a stream of decoded output spikes to a class decision.
// Pipelines feed it every observed (class, tick) pair of a presentation
// and call Decide once at the end.
type Decoder interface {
	// ObserveAt records one output spike of class at the given tick.
	ObserveAt(class int, tick int64)
	// Decide returns the decoded class, or -1 if nothing decisive fired.
	Decide() int
	// Reset clears the decoder for the next presentation.
	Reset()
	// Clone returns an independent, reset decoder with the same
	// configuration, for session pools.
	Clone() Decoder
}

// clamp01 limits v to [0,1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Bernoulli encodes each value as an independent Bernoulli spike per
// tick: p(spike) = value * MaxRate. The stochastic code the architecture
// is usually driven with.
type Bernoulli struct {
	// MaxRate scales value 1.0 to a per-tick spike probability.
	MaxRate float64
	seed    uint64
	r       *rng.SplitMix64
}

// NewBernoulli returns a Bernoulli encoder with the given peak per-tick
// probability (e.g. 0.5 = 500 Hz at 1 ms ticks).
func NewBernoulli(maxRate float64, seed uint64) *Bernoulli {
	return &Bernoulli{MaxRate: maxRate, seed: seed, r: rng.NewSplitMix64(seed)}
}

// Tick implements Encoder.
func (b *Bernoulli) Tick(values []float64, emit EmitFunc) {
	for i, v := range values {
		p := clamp01(v) * b.MaxRate
		if b.r.Float64() < p {
			emit(i)
		}
	}
}

// Reset implements Encoder: the stream restarts from the seed.
func (b *Bernoulli) Reset() { b.r = rng.NewSplitMix64(b.seed) }

// Clone implements Encoder.
func (b *Bernoulli) Clone() Encoder { return NewBernoulli(b.MaxRate, b.seed) }

// Regular encodes each value as an evenly spaced deterministic train:
// value v spikes every round(1/(v*MaxRate)) ticks, phase-staggered by
// line index to avoid lockstep across lines.
type Regular struct {
	MaxRate float64
	tick    int64
}

// NewRegular returns a regular-train encoder.
func NewRegular(maxRate float64) *Regular {
	return &Regular{MaxRate: maxRate}
}

// Tick implements Encoder.
func (r *Regular) Tick(values []float64, emit EmitFunc) {
	for i, v := range values {
		p := clamp01(v) * r.MaxRate
		if p <= 0 {
			continue
		}
		period := int64(math.Round(1 / p))
		if period < 1 {
			period = 1
		}
		if (r.tick+int64(i))%period == 0 {
			emit(i)
		}
	}
	r.tick++
}

// Reset implements Encoder.
func (r *Regular) Reset() { r.tick = 0 }

// Clone implements Encoder.
func (r *Regular) Clone() Encoder { return NewRegular(r.MaxRate) }

// TTFS is a time-to-first-spike (latency) code: each line spikes exactly
// once per presentation, earlier for larger values. Value 1 spikes at
// tick 0, value 0 at tick Window-1; values below Threshold never spike.
type TTFS struct {
	// Window is the presentation length in ticks.
	Window int
	// Threshold suppresses lines with values below it.
	Threshold float64
	tick      int
}

// NewTTFS returns a latency encoder over the given window.
func NewTTFS(window int, threshold float64) *TTFS {
	if window < 1 {
		panic("codec: TTFS window must be positive")
	}
	return &TTFS{Window: window, Threshold: threshold}
}

// SpikeTick returns the tick at which a value fires, or -1 if never.
func (t *TTFS) SpikeTick(v float64) int {
	if v < t.Threshold {
		return -1
	}
	return int(math.Round((1 - clamp01(v)) * float64(t.Window-1)))
}

// Tick implements Encoder.
func (t *TTFS) Tick(values []float64, emit EmitFunc) {
	for i, v := range values {
		if t.SpikeTick(v) == t.tick {
			emit(i)
		}
	}
	t.tick++
}

// Reset implements Encoder.
func (t *TTFS) Reset() { t.tick = 0 }

// Clone implements Encoder.
func (t *TTFS) Clone() Encoder { return NewTTFS(t.Window, t.Threshold) }

// Binary encodes a thresholded frame: every line whose value exceeds
// Threshold spikes on each of the first Hold ticks of a presentation
// (Hold = 1 is a single-shot frame injection; larger Hold re-presents
// the frame, the deployment code for coincidence-thresholded conv
// stacks and template detectors).
type Binary struct {
	// Threshold is the on/off pixel cut.
	Threshold float64
	// Hold is how many leading ticks re-emit the frame.
	Hold int
	tick int
}

// NewBinary returns a thresholded frame encoder holding the frame for
// hold ticks per presentation.
func NewBinary(threshold float64, hold int) *Binary {
	if hold < 1 {
		panic("codec: binary hold must be positive")
	}
	return &Binary{Threshold: threshold, Hold: hold}
}

// Tick implements Encoder.
func (b *Binary) Tick(values []float64, emit EmitFunc) {
	if b.tick < b.Hold {
		for i, v := range values {
			if v > b.Threshold {
				emit(i)
			}
		}
	}
	b.tick++
}

// Reset implements Encoder.
func (b *Binary) Reset() { b.tick = 0 }

// Clone implements Encoder.
func (b *Binary) Clone() Encoder { return NewBinary(b.Threshold, b.Hold) }

// Population encodes a scalar across N lines with Gaussian tuning
// curves: line i is most active when the value equals i/(N-1). It turns
// one analogue channel into a place code.
type Population struct {
	// Lines is the number of output lines.
	Lines int
	// Sigma is the tuning width in value units.
	Sigma float64
	// MaxRate is the peak per-tick probability at curve centre.
	MaxRate float64
	seed    uint64
	r       *rng.SplitMix64
}

// NewPopulation returns a population encoder.
func NewPopulation(lines int, sigma, maxRate float64, seed uint64) *Population {
	if lines < 2 {
		panic("codec: population code needs at least 2 lines")
	}
	return &Population{Lines: lines, Sigma: sigma, MaxRate: maxRate, seed: seed, r: rng.NewSplitMix64(seed)}
}

// Rates returns the per-line firing probabilities for a scalar value.
func (p *Population) Rates(value float64) []float64 {
	v := clamp01(value)
	out := make([]float64, p.Lines)
	for i := range out {
		centre := float64(i) / float64(p.Lines-1)
		d := (v - centre) / p.Sigma
		out[i] = p.MaxRate * math.Exp(-0.5*d*d)
	}
	return out
}

// Tick emits spikes for a single scalar (values[0]).
func (p *Population) Tick(values []float64, emit EmitFunc) {
	rates := p.Rates(values[0])
	for i, pr := range rates {
		if p.r.Float64() < pr {
			emit(i)
		}
	}
}

// Reset implements Encoder.
func (p *Population) Reset() { p.r = rng.NewSplitMix64(p.seed) }

// Clone implements Encoder.
func (p *Population) Clone() Encoder {
	return NewPopulation(p.Lines, p.Sigma, p.MaxRate, p.seed)
}

// Counter accumulates output spikes per class over an observation
// window and decodes by majority (argmax).
type Counter struct {
	counts []int
	total  int
}

// NewCounter returns a decoder over n output classes.
func NewCounter(n int) *Counter {
	return &Counter{counts: make([]int, n)}
}

// Observe records one spike of class c.
func (c *Counter) Observe(class int) {
	if class < 0 || class >= len(c.counts) {
		panic(fmt.Sprintf("codec: class %d out of range [0,%d)", class, len(c.counts)))
	}
	c.counts[class]++
	c.total++
}

// Counts returns the per-class spike counts.
func (c *Counter) Counts() []int { return c.counts }

// Total returns the number of observed spikes.
func (c *Counter) Total() int { return c.total }

// Argmax returns the winning class; ties break toward the lower index.
// With no spikes at all it returns -1.
func (c *Counter) Argmax() int {
	if c.total == 0 {
		return -1
	}
	best, bestC := 0, c.counts[0]
	for i, n := range c.counts[1:] {
		if n > bestC {
			best, bestC = i+1, n
		}
	}
	return best
}

// Margin returns the spike-count gap between the winner and runner-up
// (a confidence proxy).
func (c *Counter) Margin() int {
	if len(c.counts) < 2 {
		return c.total
	}
	first, second := -1, -1
	for _, n := range c.counts {
		if n > first {
			second = first
			first = n
		} else if n > second {
			second = n
		}
	}
	return first - second
}

// ObserveAt implements Decoder; the tick is ignored (counting is
// order-free). Out-of-range classes are dropped rather than panicking:
// a ClassMapper may legitimately emit indices beyond the decoder's
// range (e.g. auxiliary output neurons), and a serving path must not
// crash mid-request on one. The strict Observe remains for tests.
func (c *Counter) ObserveAt(class int, tick int64) {
	if class < 0 || class >= len(c.counts) {
		return
	}
	c.Observe(class)
}

// Decide implements Decoder (Argmax).
func (c *Counter) Decide() int { return c.Argmax() }

// Clone implements Decoder.
func (c *Counter) Clone() Decoder { return NewCounter(len(c.counts)) }

// Reset clears the counters for the next presentation.
func (c *Counter) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
	c.total = 0
}

// FirstSpike decodes by earliest spike: the first class to fire wins.
type FirstSpike struct {
	winner int
	tick   int64
}

// NewFirstSpike returns a latency decoder.
func NewFirstSpike() *FirstSpike {
	return &FirstSpike{winner: -1, tick: -1}
}

// Observe records a spike of class c at tick t.
func (f *FirstSpike) Observe(class int, t int64) {
	if f.winner == -1 || t < f.tick || (t == f.tick && class < f.winner) {
		f.winner = class
		f.tick = t
	}
}

// Winner returns the decoded class (-1 if nothing fired) and its tick.
func (f *FirstSpike) Winner() (int, int64) { return f.winner, f.tick }

// ObserveAt implements Decoder.
func (f *FirstSpike) ObserveAt(class int, tick int64) { f.Observe(class, tick) }

// Decide implements Decoder (the earliest class).
func (f *FirstSpike) Decide() int { return f.winner }

// Clone implements Decoder.
func (f *FirstSpike) Clone() Decoder { return NewFirstSpike() }

// Reset clears the decoder.
func (f *FirstSpike) Reset() { f.winner, f.tick = -1, -1 }
