package codec

// Table-driven conformance suite for the Decoder contract, run against
// every shipped decoder: observation bounds (out-of-range classes are
// dropped, never a panic — the serving contract), Reset-to-pristine
// (a reset decoder reproduces a fresh one bit-for-bit) and Clone
// independence (clones start pristine and never share state).

import "testing"

// obs is one (class, tick) observation; trains are replayed through
// ObserveAt in order, ticks non-decreasing like a runner's delivery.
type obs struct {
	class int
	tick  int64
}

var conformanceTrain = []obs{
	{0, 0}, {2, 0}, {2, 1}, {1, 3}, {2, 4}, {2, 4},
	{0, 6}, {2, 7}, {1, 8}, {2, 10}, {2, 12}, {0, 13},
}

func feed(d Decoder, train []obs) {
	for _, o := range train {
		d.ObserveAt(o.class, o.tick)
	}
}

func TestDecoderConformance(t *testing.T) {
	const classes = 4
	cases := []struct {
		name string
		mk   func() Decoder
	}{
		{"counter", func() Decoder { return NewCounter(classes) }},
		{"sliding", func() Decoder { return NewSlidingCounter(classes, 16) }},
		{"decay", func() Decoder { return NewDecayCounter(classes, 3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name+"/pristine", func(t *testing.T) {
			if got := tc.mk().Decide(); got != -1 {
				t.Fatalf("fresh decoder decided %d, want -1", got)
			}
		})
		t.Run(tc.name+"/observe-bounds", func(t *testing.T) {
			d := tc.mk()
			// Out-of-range classes must be dropped, not panic: a
			// ClassMapper may emit indices beyond the decoder's range.
			for _, bad := range []int{-1, classes, classes + 7} {
				d.ObserveAt(bad, 0)
			}
			if got := d.Decide(); got != -1 {
				t.Fatalf("out-of-range observations decided %d, want -1", got)
			}
			feed(d, conformanceTrain)
			got := d.Decide()
			if got < 0 || got >= classes {
				t.Fatalf("decision %d outside [0,%d)", got, classes)
			}
			if got != 2 {
				t.Fatalf("decision %d, want the majority class 2", got)
			}
		})
		t.Run(tc.name+"/reset-pristine", func(t *testing.T) {
			d := tc.mk()
			feed(d, conformanceTrain)
			first := d.Decide()
			d.Reset()
			if got := d.Decide(); got != -1 {
				t.Fatalf("reset decoder decided %d, want -1", got)
			}
			feed(d, conformanceTrain)
			if got := d.Decide(); got != first {
				t.Fatalf("replay after Reset decided %d, first pass %d", got, first)
			}
		})
		t.Run(tc.name+"/clone-independence", func(t *testing.T) {
			d := tc.mk()
			feed(d, conformanceTrain)
			want := d.Decide()
			c := d.Clone()
			if got := c.Decide(); got != -1 {
				t.Fatalf("clone of a fed decoder decided %d, want pristine -1", got)
			}
			feed(c, conformanceTrain)
			if got := c.Decide(); got != want {
				t.Fatalf("clone decided %d on the same train, original %d", got, want)
			}
			// Skew the clone hard toward another class; the original must
			// not move.
			for i := 0; i < 32; i++ {
				c.ObserveAt(3, 14)
			}
			if got := d.Decide(); got != want {
				t.Fatalf("original drifted to %d after clone-only observations, want %d", got, want)
			}
		})
	}
}
