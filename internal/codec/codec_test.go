package codec

import (
	"math"
	"testing"
)

func collect(e Encoder, values []float64, ticks int) [][]int {
	out := make([][]int, ticks)
	for t := 0; t < ticks; t++ {
		e.Tick(values, func(line int) { out[t] = append(out[t], line) })
	}
	return out
}

func rate(spikes [][]int, line, ticks int) float64 {
	n := 0
	for _, tick := range spikes {
		for _, l := range tick {
			if l == line {
				n++
			}
		}
	}
	return float64(n) / float64(ticks)
}

func TestBernoulliRates(t *testing.T) {
	e := NewBernoulli(0.5, 42)
	values := []float64{0, 0.5, 1.0}
	ticks := 20000
	sp := collect(e, values, ticks)
	if r := rate(sp, 0, ticks); r != 0 {
		t.Errorf("value 0 fired at rate %g", r)
	}
	if r := rate(sp, 1, ticks); math.Abs(r-0.25) > 0.02 {
		t.Errorf("value 0.5 rate = %g, want ~0.25", r)
	}
	if r := rate(sp, 2, ticks); math.Abs(r-0.5) > 0.02 {
		t.Errorf("value 1.0 rate = %g, want ~0.5", r)
	}
}

func TestBernoulliClampsOutOfRange(t *testing.T) {
	e := NewBernoulli(1.0, 1)
	sp := collect(e, []float64{-5, 7}, 100)
	if r := rate(sp, 0, 100); r != 0 {
		t.Error("negative value must clamp to silent")
	}
	if r := rate(sp, 1, 100); r != 1 {
		t.Error("value > 1 must clamp to max rate")
	}
}

func TestBernoulliResetReproduces(t *testing.T) {
	e := NewBernoulli(0.3, 9)
	a := collect(e, []float64{0.7}, 200)
	e.Reset()
	b := collect(e, []float64{0.7}, 200)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("Reset did not reproduce the stream")
		}
	}
}

func TestRegularPeriod(t *testing.T) {
	e := NewRegular(1.0)
	ticks := 100
	sp := collect(e, []float64{0.25}, ticks) // period 4
	var times []int
	for tk, lines := range sp {
		if len(lines) > 0 {
			times = append(times, tk)
		}
	}
	if len(times) < 20 {
		t.Fatalf("too few spikes: %d", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] != 4 {
			t.Fatalf("irregular period: %v", times[:i+1])
		}
	}
}

func TestRegularPhaseStagger(t *testing.T) {
	e := NewRegular(1.0)
	sp := collect(e, []float64{0.5, 0.5}, 2)
	// Line 0 spikes at t where t%2==0; line 1 where (t+1)%2==0.
	if len(sp[0]) != 1 || sp[0][0] != 0 {
		t.Fatalf("tick 0 = %v, want line 0 only", sp[0])
	}
	if len(sp[1]) != 1 || sp[1][0] != 1 {
		t.Fatalf("tick 1 = %v, want line 1 only", sp[1])
	}
}

func TestRegularZeroSilent(t *testing.T) {
	e := NewRegular(1.0)
	sp := collect(e, []float64{0}, 50)
	for _, lines := range sp {
		if len(lines) > 0 {
			t.Fatal("zero value must be silent")
		}
	}
}

func TestTTFSOrderingAndUniqueness(t *testing.T) {
	e := NewTTFS(32, 0.05)
	values := []float64{1.0, 0.5, 0.1}
	sp := collect(e, values, 32)
	first := map[int]int{}
	count := map[int]int{}
	for tk, lines := range sp {
		for _, l := range lines {
			if _, seen := first[l]; !seen {
				first[l] = tk
			}
			count[l]++
		}
	}
	for l, c := range count {
		if c != 1 {
			t.Errorf("line %d spiked %d times, want exactly 1", l, c)
		}
	}
	if !(first[0] < first[1] && first[1] < first[2]) {
		t.Errorf("larger values must spike earlier: %v", first)
	}
	if first[0] != 0 {
		t.Errorf("value 1.0 must spike at tick 0, got %d", first[0])
	}
}

func TestTTFSThresholdSuppresses(t *testing.T) {
	e := NewTTFS(16, 0.2)
	sp := collect(e, []float64{0.1}, 16)
	for _, lines := range sp {
		if len(lines) > 0 {
			t.Fatal("below-threshold value must never spike")
		}
	}
	if e.SpikeTick(0.1) != -1 {
		t.Error("SpikeTick must report -1 below threshold")
	}
}

func TestTTFSRoundTrip(t *testing.T) {
	e := NewTTFS(64, 0)
	for _, v := range []float64{0, 0.25, 0.5, 0.75, 1} {
		tk := e.SpikeTick(v)
		recovered := 1 - float64(tk)/63
		if math.Abs(recovered-v) > 0.02 {
			t.Errorf("value %g decoded as %g", v, recovered)
		}
	}
}

func TestTTFSPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTTFS(0, 0)
}

func TestPopulationTuning(t *testing.T) {
	p := NewPopulation(11, 0.15, 0.8, 3)
	rates := p.Rates(0.5)
	// Peak at the centre line (index 5).
	for i, r := range rates {
		if r > rates[5] {
			t.Fatalf("line %d rate %g exceeds centre %g", i, r, rates[5])
		}
	}
	if math.Abs(rates[5]-0.8) > 1e-9 {
		t.Errorf("centre rate = %g, want 0.8", rates[5])
	}
	// Symmetric falloff.
	if math.Abs(rates[4]-rates[6]) > 1e-9 {
		t.Error("tuning not symmetric")
	}
}

func TestPopulationEmits(t *testing.T) {
	p := NewPopulation(5, 0.2, 1.0, 7)
	counts := make([]int, 5)
	for t := 0; t < 500; t++ {
		p.Tick([]float64{0.0}, func(line int) { counts[line]++ })
	}
	if counts[0] < counts[4] {
		t.Errorf("value 0 must drive line 0 hardest: %v", counts)
	}
}

func TestPopulationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPopulation(1, 0.1, 1, 1)
}

func TestCounterArgmax(t *testing.T) {
	c := NewCounter(3)
	if c.Argmax() != -1 {
		t.Error("empty counter must decode -1")
	}
	for i := 0; i < 5; i++ {
		c.Observe(1)
	}
	for i := 0; i < 3; i++ {
		c.Observe(2)
	}
	if c.Argmax() != 1 {
		t.Errorf("Argmax = %d, want 1", c.Argmax())
	}
	if c.Total() != 8 {
		t.Errorf("Total = %d", c.Total())
	}
	if c.Margin() != 2 {
		t.Errorf("Margin = %d, want 2", c.Margin())
	}
	c.Reset()
	if c.Total() != 0 || c.Argmax() != -1 {
		t.Error("Reset failed")
	}
}

func TestCounterTieBreaksLow(t *testing.T) {
	c := NewCounter(3)
	c.Observe(2)
	c.Observe(0)
	if c.Argmax() != 0 {
		t.Errorf("tie must break toward lower class, got %d", c.Argmax())
	}
}

func TestCounterPanicsOutOfRange(t *testing.T) {
	c := NewCounter(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Observe(2)
}

func TestFirstSpike(t *testing.T) {
	f := NewFirstSpike()
	if w, _ := f.Winner(); w != -1 {
		t.Error("empty decoder must report -1")
	}
	f.Observe(2, 10)
	f.Observe(1, 5)
	f.Observe(0, 5) // same tick, lower class wins
	f.Observe(3, 4)
	w, tk := f.Winner()
	if w != 3 || tk != 4 {
		t.Errorf("Winner = (%d,%d), want (3,4)", w, tk)
	}
	f.Reset()
	if w, _ := f.Winner(); w != -1 {
		t.Error("Reset failed")
	}
}

func TestFirstSpikeTieBreak(t *testing.T) {
	f := NewFirstSpike()
	f.Observe(2, 5)
	f.Observe(1, 5)
	w, _ := f.Winner()
	if w != 1 {
		t.Errorf("tie at same tick must pick lower class, got %d", w)
	}
}

func TestBinaryHoldAndThreshold(t *testing.T) {
	b := NewBinary(0.5, 2)
	values := []float64{0.9, 0.2, 0.7}
	var got [][]int
	for tick := 0; tick < 4; tick++ {
		var lines []int
		b.Tick(values, func(i int) { lines = append(lines, i) })
		got = append(got, lines)
	}
	for tick := 0; tick < 2; tick++ {
		if len(got[tick]) != 2 || got[tick][0] != 0 || got[tick][1] != 2 {
			t.Fatalf("tick %d emitted %v, want [0 2]", tick, got[tick])
		}
	}
	for tick := 2; tick < 4; tick++ {
		if len(got[tick]) != 0 {
			t.Fatalf("tick %d emitted %v after hold expired", tick, got[tick])
		}
	}
	b.Reset()
	var lines []int
	b.Tick(values, func(i int) { lines = append(lines, i) })
	if len(lines) != 2 {
		t.Fatalf("Reset did not restart the hold: %v", lines)
	}
}

func TestBinaryPanicsOnBadHold(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("hold 0 accepted")
		}
	}()
	NewBinary(0.5, 0)
}

func TestCloneIndependence(t *testing.T) {
	// A clone restarts from the seed and never shares PRNG state with
	// its origin — the property session pools rely on.
	values := []float64{0.5, 0.5, 0.5, 0.5}
	encoders := []Encoder{
		NewBernoulli(0.8, 42),
		NewRegular(0.3),
		NewTTFS(8, 0.1),
		NewBinary(0.4, 1),
		NewPopulation(4, 0.2, 0.8, 7),
	}
	for _, proto := range encoders {
		// Advance the prototype so clone state would differ if shared.
		collect(proto, values, 5)
		a, b := proto.Clone(), proto.Clone()
		ta, tb := collect(a, values, 10), collect(b, values, 10)
		for tick := range ta {
			la, lb := ta[tick], tb[tick]
			if len(la) != len(lb) {
				t.Fatalf("%T: clones diverged at tick %d: %v vs %v", proto, tick, la, lb)
			}
			for i := range la {
				if la[i] != lb[i] {
					t.Fatalf("%T: clones diverged at tick %d: %v vs %v", proto, tick, la, lb)
				}
			}
		}
	}
}

// TestCounterObserveAtDropsOutOfRange pins the serving-path fix: the
// Decoder interface entry point tolerates classes a ClassMapper may
// emit beyond the configured range, while the strict Observe keeps
// panicking for test harnesses.
func TestCounterObserveAtDropsOutOfRange(t *testing.T) {
	c := NewCounter(3)
	c.ObserveAt(-1, 0)
	c.ObserveAt(3, 1)
	c.ObserveAt(1000, 2)
	if c.Total() != 0 {
		t.Fatalf("out-of-range observations counted: total = %d", c.Total())
	}
	c.ObserveAt(2, 3)
	if c.Decide() != 2 || c.Total() != 1 {
		t.Fatalf("in-range observation lost: decide %d, total %d", c.Decide(), c.Total())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("strict Observe accepted an out-of-range class")
		}
	}()
	c.Observe(3)
}

func TestDecoderInterface(t *testing.T) {
	var decoders = []Decoder{NewCounter(3), NewFirstSpike()}
	for _, d := range decoders {
		if got := d.Decide(); got != -1 {
			t.Fatalf("%T: empty Decide = %d, want -1", d, got)
		}
		d.ObserveAt(2, 4)
		d.ObserveAt(2, 5)
		d.ObserveAt(1, 6)
		if got := d.Decide(); got != 2 {
			t.Fatalf("%T: Decide = %d, want 2", d, got)
		}
		c := d.Clone()
		if got := c.Decide(); got != -1 {
			t.Fatalf("%T: clone inherited observations (Decide = %d)", d, got)
		}
		d.Reset()
		if got := d.Decide(); got != -1 {
			t.Fatalf("%T: Reset did not clear (Decide = %d)", d, got)
		}
	}
}
