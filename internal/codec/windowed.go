package codec

// Windowed decoders: the continuous-decision half of the codec layer.
//
// Counter assumes a bounded presentation — observe everything, decide
// once. Open-ended streams never finish, so these decoders keep a
// tick-indexed evidence window and can be asked for a decision at any
// tick: SlidingCounter holds the last W ticks exactly (ring buffer,
// exact eviction), DecayCounter holds an exponentially-decayed account
// of everything (fixed-point integer state, so decay is bit-exact).
// Both gate their decisions on evidence and margin floors, so
// low-evidence windows abstain instead of guessing — the seam
// pipeline.Stream's Decisions channel is built on.

import "fmt"

// StreamDecoder is the continuous-decision contract: a Decoder whose
// state is tick-indexed, so a decision can be read at any tick of an
// open-ended stream rather than once at the end of a bounded
// presentation. DecideAt carries a confidence gate: a window with too
// little evidence, or too small a winner margin, abstains (ok false)
// instead of guessing.
//
// Implementations must use integer or fixed-point state: for the same
// (class, tick) observation sequence the decisions are bit-identical
// regardless of engine, backend or wall clock — the streaming
// counterpart of the chip's determinism contract.
type StreamDecoder interface {
	Decoder
	// DecideAt returns the decision for the window ending at tick: the
	// leading class (-1 when nothing is accumulated), its margin over
	// the runner-up in spike units, and whether the confidence gate
	// passed. The decision tick must not decrease across calls;
	// observations may lag it by less than the window (late events are
	// folded in exactly).
	DecideAt(tick int64) (class int, margin float64, ok bool)
}

// SlidingCounter decodes over a sliding window of the last Window
// ticks: per-class spike counts enter as they are observed and leave
// exactly Window ticks later (ring-buffer eviction, no approximation).
// With a window at least as long as a bounded presentation and a zero
// gate it reproduces Counter's decision exactly.
type SlidingCounter struct {
	// MinCount is the evidence gate: DecideAt abstains while the window
	// holds fewer than MinCount spikes in total (0: no floor).
	MinCount int
	// MinMargin is the confidence gate: DecideAt abstains while the
	// winner leads the runner-up by less than MinMargin spikes (0: no
	// floor; with a single class the margin is the total).
	MinMargin int

	window int
	counts []int   // per-class totals over (head-window, head]
	total  int
	ring   [][]int // ring[t mod window]: per-class counts of tick t
	slotAt []int64 // the tick each ring slot currently holds; -1 empty
	head   int64   // latest tick advanced to; evictions done through head-window
}

// NewSlidingCounter returns a windowed decoder over n classes and a
// window of the given length in ticks. The gate starts at zero (never
// abstains once anything is observed); set MinCount/MinMargin to taste.
func NewSlidingCounter(n, window int) *SlidingCounter {
	if n < 1 {
		panic(fmt.Sprintf("codec: sliding counter needs at least 1 class, got %d", n))
	}
	if window < 1 {
		panic(fmt.Sprintf("codec: sliding window %d must be positive", window))
	}
	s := &SlidingCounter{
		window: window,
		counts: make([]int, n),
		ring:   make([][]int, window),
		slotAt: make([]int64, window),
	}
	for i := range s.ring {
		s.ring[i] = make([]int, n)
		s.slotAt[i] = -1
	}
	s.head = -1
	return s
}

// Window returns the window length in ticks.
func (s *SlidingCounter) Window() int { return s.window }

// Counts returns the live per-class counts over the current window.
func (s *SlidingCounter) Counts() []int { return s.counts }

// Total returns the number of spikes in the current window.
func (s *SlidingCounter) Total() int { return s.total }

// evict drops a ring slot's contribution and marks it empty.
func (s *SlidingCounter) evict(slot int) {
	row := s.ring[slot]
	for c, n := range row {
		if n != 0 {
			s.counts[c] -= n
			s.total -= n
			row[c] = 0
		}
	}
	s.slotAt[slot] = -1
}

// advanceTo moves the window head forward to tick, evicting every tick
// that falls out of (tick-window, tick]. Each departing tick owns
// exactly one ring slot, so the walk is O(ticks advanced); a jump of a
// full window or more just clears everything.
func (s *SlidingCounter) advanceTo(tick int64) {
	if tick <= s.head {
		return
	}
	w := int64(s.window)
	if tick-s.head >= w {
		for slot := range s.ring {
			if s.slotAt[slot] >= 0 {
				s.evict(slot)
			}
		}
	} else {
		for t := s.head + 1; t <= tick; t++ {
			if old := t - w; old >= 0 {
				slot := int(old % w)
				if s.slotAt[slot] == old {
					s.evict(slot)
				}
			}
		}
	}
	s.head = tick
}

// ObserveAt implements Decoder: the spike enters the window at its
// tick. Out-of-range classes are dropped (serving contract, matching
// Counter.ObserveAt); so are spikes older than the window — a lagged
// event that can no longer influence any future decision.
func (s *SlidingCounter) ObserveAt(class int, tick int64) {
	if class < 0 || class >= len(s.counts) || tick < 0 {
		return
	}
	s.advanceTo(tick)
	if tick <= s.head-int64(s.window) {
		return
	}
	slot := int(tick % int64(s.window))
	if s.slotAt[slot] != tick {
		if s.slotAt[slot] >= 0 {
			s.evict(slot)
		}
		s.slotAt[slot] = tick
	}
	s.ring[slot][class]++
	s.counts[class]++
	s.total++
}

// decide is the shared gated argmax: winning class, margin, gate pass.
func (s *SlidingCounter) decide() (int, int, bool) {
	if s.total == 0 {
		return -1, 0, false
	}
	// With a single class the margin degenerates to the total, matching
	// Counter.Margin.
	best, bestC, second := 0, s.counts[0], 0
	for i, n := range s.counts[1:] {
		switch {
		case n > bestC:
			second = bestC
			best, bestC = i+1, n
		case n > second:
			second = n
		}
	}
	margin := bestC - second
	return best, margin, s.total >= s.MinCount && margin >= s.MinMargin
}

// DecideAt implements StreamDecoder: the gated decision for the window
// ending at tick.
func (s *SlidingCounter) DecideAt(tick int64) (int, float64, bool) {
	if tick >= 0 {
		s.advanceTo(tick)
	}
	class, margin, ok := s.decide()
	return class, float64(margin), ok
}

// Decide implements Decoder: the gated argmax over the current window
// (-1 when empty or gated out). With a zero gate and a window covering
// the whole presentation this is exactly Counter.Decide.
func (s *SlidingCounter) Decide() int {
	class, _, ok := s.decide()
	if !ok {
		return -1
	}
	return class
}

// Reset implements Decoder: back to an empty window at tick origin.
func (s *SlidingCounter) Reset() {
	for slot := range s.ring {
		if s.slotAt[slot] >= 0 {
			s.evict(slot)
		}
	}
	s.head = -1
}

// Clone implements Decoder.
func (s *SlidingCounter) Clone() Decoder {
	c := NewSlidingCounter(len(s.counts), s.window)
	c.MinCount, c.MinMargin = s.MinCount, s.MinMargin
	return c
}

// decayOne is the fixed-point scale of DecayCounter: one spike.
const decayOne = 1 << 16

// DecayCounter decodes over an exponentially-decayed account of the
// whole stream: every observed spike adds one unit to its class and
// every tick multiplies all classes by (1 - 2^-Shift). State is Q16
// fixed-point integer and the decay is a shift-and-subtract, so the
// accumulator — and therefore every decision — is bit-identical across
// engines and platforms; no float ever enters the evidence path.
//
// The effective window is soft: a spike's weight halves roughly every
// 0.69 * 2^Shift ticks, so Shift 3 weights the last ~10 ticks, Shift 5
// the last ~40.
type DecayCounter struct {
	// MinLevel is the evidence gate in spike units: DecideAt abstains
	// while the summed decayed activity is below it (0: no floor).
	MinLevel float64
	// MinMargin is the confidence gate in spike units: DecideAt
	// abstains while the winner leads by less (0: no floor; with a
	// single class the margin is that class's level).
	MinMargin float64

	shift uint
	acc   []uint64 // Q16 per-class decayed counts
	head  int64    // tick decay has been applied through
}

// NewDecayCounter returns a decay decoder over n classes. shift sets
// the per-tick decay acc -= acc>>shift (half-life ~0.69*2^shift ticks)
// and must be in [1, 62].
func NewDecayCounter(n int, shift uint) *DecayCounter {
	if n < 1 {
		panic(fmt.Sprintf("codec: decay counter needs at least 1 class, got %d", n))
	}
	if shift < 1 || shift > 62 {
		panic(fmt.Sprintf("codec: decay shift %d out of range [1,62]", shift))
	}
	return &DecayCounter{shift: shift, acc: make([]uint64, n)}
}

// Shift returns the decay shift.
func (d *DecayCounter) Shift() uint { return d.shift }

// Level returns a class's current decayed activity in spike units.
func (d *DecayCounter) Level(class int) float64 {
	if class < 0 || class >= len(d.acc) {
		return 0
	}
	return float64(d.acc[class]) / decayOne
}

// advanceTo applies per-tick decay up to tick.
func (d *DecayCounter) advanceTo(tick int64) {
	for ; d.head < tick; d.head++ {
		for i, v := range d.acc {
			d.acc[i] = v - v>>d.shift
		}
	}
}

// ObserveAt implements Decoder. Out-of-range classes are dropped. A
// spike that lags the decision head (delivered late by observation
// lag) enters pre-decayed by its age, so the accumulator is exactly
// what an in-order delivery would have produced.
func (d *DecayCounter) ObserveAt(class int, tick int64) {
	if class < 0 || class >= len(d.acc) {
		return
	}
	d.advanceTo(tick)
	add := uint64(decayOne)
	for t := tick; t < d.head; t++ {
		add -= add >> d.shift
	}
	d.acc[class] += add
}

// decide is the gated argmax over the decayed accumulators.
func (d *DecayCounter) decide() (int, float64, bool) {
	var total uint64
	for _, v := range d.acc {
		total += v
	}
	if total == 0 {
		return -1, 0, false
	}
	best, bestV, second := 0, d.acc[0], uint64(0)
	for i, v := range d.acc[1:] {
		switch {
		case v > bestV:
			second = bestV
			best, bestV = i+1, v
		case v > second:
			second = v
		}
	}
	margin := float64(bestV-second) / decayOne
	ok := float64(total)/decayOne >= d.MinLevel && margin >= d.MinMargin
	return best, margin, ok
}

// DecideAt implements StreamDecoder: decay through tick, then the
// gated argmax.
func (d *DecayCounter) DecideAt(tick int64) (int, float64, bool) {
	d.advanceTo(tick)
	return d.decide()
}

// Decide implements Decoder: the gated argmax at the current head (-1
// when empty or gated out).
func (d *DecayCounter) Decide() int {
	class, _, ok := d.decide()
	if !ok {
		return -1
	}
	return class
}

// Reset implements Decoder.
func (d *DecayCounter) Reset() {
	for i := range d.acc {
		d.acc[i] = 0
	}
	d.head = 0
}

// Clone implements Decoder.
func (d *DecayCounter) Clone() Decoder {
	c := NewDecayCounter(len(d.acc), d.shift)
	c.MinLevel, c.MinMargin = d.MinLevel, d.MinMargin
	return c
}

// Interface checks: both windowed decoders serve anywhere a Decoder
// does, and expose the continuous-decision seam.
var (
	_ StreamDecoder = (*SlidingCounter)(nil)
	_ StreamDecoder = (*DecayCounter)(nil)
)
