package sim

import (
	"testing"

	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/system"
)

// TestShardedRunnerBitIdentical is the partition-equivalence fuzz at
// the runner layer: across every engine, every shard count and several
// randomized schedules, a sharded runner emits exactly the event
// stream of a single-chip runner, its boundary accounting folds to
// exactly the unpartitioned System's values, and its chip counters sum
// to the single chip's.
func TestShardedRunnerBitIdentical(t *testing.T) {
	for _, seed := range []uint64{5, 6} {
		mp, err := compile.Compile(goldenNet(seed), compile.Options{Seed: seed, Width: 6, Height: 6})
		if err != nil {
			t.Fatal(err)
		}
		cfg := system.Config{ChipCoresX: 1, ChipCoresY: 1} // 36 chips
		for _, eng := range []Engine{EngineEvent, EngineDense, EngineParallel} {
			want := schedule(t, NewRunner(mp, eng, 2), 40, seed*13)
			if len(want) == 0 {
				t.Fatalf("seed %d: no events; test is vacuous", seed)
			}
			sysR, err := NewSystemRunner(mp, cfg, eng, 2)
			if err != nil {
				t.Fatal(err)
			}
			schedule(t, sysR, 40, seed*13)
			sysIntra, sysInter := sysR.BoundarySpikes()
			sysLink := sysR.BoundaryLinks()

			for _, shards := range []int{1, 2, 4} {
				sr, err := NewShardedRunner(mp, cfg, shards, eng, 2, RunnerOptions{})
				if err != nil {
					t.Fatal(err)
				}
				got := schedule(t, sr, 40, seed*13)
				if len(got) != len(want) {
					t.Fatalf("seed %d %v shards=%d: %d events, chip runner %d",
						seed, eng, shards, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d %v shards=%d: event %d = %+v, chip %+v",
							seed, eng, shards, i, got[i], want[i])
					}
				}
				if sr.System() != nil {
					t.Fatal("System() non-nil on a sharded runner")
				}
				if sr.Tiled() == nil {
					t.Fatal("Tiled() nil on a sharded runner")
				}
				if err := sr.Err(); err != nil {
					t.Fatalf("healthy sharded runner reports %v", err)
				}
				intra, inter := sr.BoundarySpikes()
				if intra != sysIntra || inter != sysInter {
					t.Fatalf("seed %d %v shards=%d: boundary (%d,%d), system (%d,%d)",
						seed, eng, shards, intra, inter, sysIntra, sysInter)
				}
				if inter == 0 {
					t.Fatal("1x1-core chips crossed no boundary; rig too small")
				}
				if routed := sr.Counters().RoutedSpikes; intra+inter != routed {
					t.Fatalf("seed %d %v shards=%d: boundary classification %d+%d does not cover %d routed",
						seed, eng, shards, intra, inter, routed)
				}
				link := sr.BoundaryLinks()
				for i := range sysLink {
					for j := range sysLink[i] {
						if link[i][j] != sysLink[i][j] {
							t.Fatalf("seed %d %v shards=%d: link[%d][%d] = %d, system %d",
								seed, eng, shards, i, j, link[i][j], sysLink[i][j])
						}
					}
				}
				if got, want := sr.Counters(), sysR.Counters(); got != want {
					t.Fatalf("seed %d %v shards=%d: counters %+v, system %+v",
						seed, eng, shards, got, want)
				}
			}
		}
	}
}

// TestShardedRunnerResetFolds pins the cumulative accounting across
// Reset for the partitioned backend, exactly as
// TestSystemRunnerBoundarySpikesAccumulate does for the in-process
// tile: Reset zeroes the live counters but folds them into the runner,
// so identical presentations double every total and every link cell.
func TestShardedRunnerResetFolds(t *testing.T) {
	mp, err := compile.Compile(goldenNet(5), compile.Options{Width: 6, Height: 6})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewShardedRunner(mp, system.Config{ChipCoresX: 1, ChipCoresY: 1}, 4, EngineEvent, 1, RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := schedule(t, r, 20, 23)
	intra1, inter1 := r.BoundarySpikes()
	if inter1 == 0 {
		t.Fatal("no crossings recorded")
	}
	link1 := r.BoundaryLinks()
	r.Reset()
	if r.Now() != 0 {
		t.Fatalf("Now after Reset = %d", r.Now())
	}
	if intra, inter := r.BoundarySpikes(); intra != intra1 || inter != inter1 {
		t.Fatalf("BoundarySpikes lost the pre-Reset record: (%d,%d) -> (%d,%d)", intra1, inter1, intra, inter)
	}
	got := schedule(t, r, 20, 23)
	if len(got) != len(want) {
		t.Fatalf("reset sharded runner: %d events, fresh %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, fresh %+v", i, got[i], want[i])
		}
	}
	if intra, inter := r.BoundarySpikes(); intra != 2*intra1 || inter != 2*inter1 {
		t.Fatalf("identical presentations: (%d,%d), want doubled (%d,%d)", intra, inter, 2*intra1, 2*inter1)
	}
	link2 := r.BoundaryLinks()
	for i := range link1 {
		for j := range link1[i] {
			if link2[i][j] != 2*link1[i][j] {
				t.Fatalf("link[%d][%d] = %d, want %d", i, j, link2[i][j], 2*link1[i][j])
			}
		}
	}
}
