package sim

import (
	"runtime"
	"testing"

	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/rng"
	"github.com/neurogo/neurogo/internal/system"
)

// pulseNet: 1 input -> A -> B(out), all thresholds 1, unit weights.
func pulseNet() *model.Network {
	m := model.New()
	in := m.AddInputBank("in", 1, model.SourceProps{Type: 0, Delay: 1})
	a := m.AddPopulation("a", 1, neuron.Default())
	b := m.AddPopulation("b", 1, neuron.Default())
	m.Connect(in.Line(0), a.ID(0))
	m.Connect(model.NeuronNode(a.ID(0)), b.ID(0))
	m.MarkOutput(b.ID(0))
	return m
}

func TestLogicalPulseTiming(t *testing.T) {
	net := pulseNet()
	l := NewLogical(net)
	if err := l.InjectLine(0); err != nil {
		t.Fatal(err)
	}
	evs := l.Run(6)
	// Inject at t0, arrives A at t1, A fires t1, arrives B at t2,
	// B fires t2.
	if len(evs) != 1 || evs[0].Tick != 2 || evs[0].Neuron != 1 {
		t.Fatalf("events = %+v, want [{2 1}]", evs)
	}
}

func TestRunnerPulseMatchesLogical(t *testing.T) {
	net := pulseNet()
	mp, err := compile.Compile(net, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(mp, EngineEvent, 1)
	if err := r.InjectLine(0); err != nil {
		t.Fatal(err)
	}
	evs := r.Run(6)
	if len(evs) != 1 || evs[0].Tick != 2 || evs[0].Neuron != 1 {
		t.Fatalf("events = %+v, want [{2 1}]", evs)
	}
}

func TestInjectLineValidation(t *testing.T) {
	l := NewLogical(pulseNet())
	if err := l.InjectLine(5); err == nil {
		t.Error("logical: unknown line accepted")
	}
	mp, _ := compile.Compile(pulseNet(), compile.Options{})
	r := NewRunner(mp, EngineEvent, 1)
	if err := r.InjectLine(-1); err == nil {
		t.Error("runner: unknown line accepted")
	}
}

// TestCompleteThroughFrontier pins the completed-tick contract that
// continuous decoders decide at: once CompleteThrough has passed a
// tick, no later Step may deliver an event for it.
func TestCompleteThroughFrontier(t *testing.T) {
	mp, err := compile.Compile(pulseNet(), compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(mp, EngineEvent, 1)
	frontier := r.CompleteThrough()
	if frontier >= 0 {
		t.Fatalf("fresh runner frontier %d, want negative", frontier)
	}
	delivered := 0
	for tick := 0; tick < 20; tick++ {
		if tick%3 == 0 {
			if err := r.InjectLine(0); err != nil {
				t.Fatal(err)
			}
		}
		for _, e := range r.Step() {
			delivered++
			if e.Tick <= frontier {
				t.Fatalf("event for tick %d delivered after its frontier passed (%d)", e.Tick, frontier)
			}
		}
		frontier = r.CompleteThrough()
	}
	if delivered == 0 {
		t.Fatal("no events delivered; the frontier invariant was never exercised")
	}
	// Direct outputs have lag 0, so the hold-one-tick rule dominates:
	// after 20 executed ticks, everything through tick 18 is complete.
	if frontier != 18 {
		t.Fatalf("frontier after 20 ticks = %d, want 18", frontier)
	}
}

func TestEngineString(t *testing.T) {
	if EngineEvent.String() != "event" || EngineDense.String() != "dense" || EngineParallel.String() != "parallel" {
		t.Error("engine names wrong")
	}
	if Engine(9).String() == "" {
		t.Error("unknown engine must stringify")
	}
}

// goldenNet builds a deterministic multi-core network exercising delays,
// inhibition, fan-out splitters, leaks and external outputs.
func goldenNet(seed uint64) *model.Network {
	r := rng.NewSplitMix64(seed)
	m := model.New()
	in := m.AddInputBank("in", 24, model.SourceProps{Type: 0, Delay: 1})
	proto := neuron.Default()
	proto.Threshold = 2
	a := m.AddPopulation("a", 300, proto) // spans two cores
	b := m.AddPopulation("b", 150, proto)

	// Inputs fan into population a (multi-core fanout is fine for
	// inputs: the I/O layer duplicates).
	for i := 0; i < 24; i++ {
		for k := 0; k < 25; k++ {
			m.Connect(in.Line(i), a.ID(r.Intn(300)))
		}
	}
	// a -> b edges; sources get delay 2+ so splitters are legal, and a
	// quarter of the sources are inhibitory (type 1).
	for i := 0; i < 300; i++ {
		props := m.SourceProps(a.ID(i))
		props.Delay = uint8(2 + r.Intn(3))
		if r.Intn(4) == 0 {
			props.Type = 1
		}
		targets := 1 + r.Intn(3)
		for k := 0; k < targets; k++ {
			m.Connect(model.NeuronNode(a.ID(i)), b.ID(r.Intn(150)))
		}
	}
	// Some leaky b neurons and varied thresholds.
	for i := 0; i < 150; i++ {
		p := m.Params(b.ID(i))
		p.Threshold = int32(1 + r.Intn(3))
		if r.Intn(3) == 0 {
			p.Leak = -1
			p.NegSaturate = true
		}
		m.MarkOutput(b.ID(i))
	}
	// A few a-neurons are also outputs (split external + internal).
	for i := 0; i < 300; i += 37 {
		m.MarkOutput(a.ID(i))
	}
	return m
}

// runGolden executes the same injection schedule on any executor.
type executor interface {
	InjectLine(line int32) error
	Step() []Event
	Now() int64
}

func schedule(t *testing.T, ex executor, ticks int, seed uint64) []Event {
	t.Helper()
	r := rng.NewSplitMix64(seed)
	var evs []Event
	for i := 0; i < ticks; i++ {
		for k := 0; k < 6; k++ {
			if err := ex.InjectLine(int32(r.Intn(24))); err != nil {
				t.Fatal(err)
			}
		}
		evs = append(evs, ex.Step()...)
	}
	// Flush long enough that both executors have reported every event
	// up to the comparison horizon (the runner releases events up to 2
	// steps after the fire tick).
	for i := 0; i < 10; i++ {
		evs = append(evs, ex.Step()...)
	}
	// Truncate to the horizon where both streams are complete.
	horizon := int64(ticks + 6)
	cut := evs[:0:0]
	for _, e := range evs {
		if e.Tick < horizon {
			cut = append(cut, e)
		}
	}
	return cut
}

func TestGoldenModelEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		net := goldenNet(seed)
		want := schedule(t, NewLogical(net), 60, seed*7)
		if len(want) == 0 {
			t.Fatalf("seed %d: golden run produced no events; test is vacuous", seed)
		}

		for _, eng := range []Engine{EngineEvent, EngineDense, EngineParallel} {
			for _, placer := range []compile.Placer{compile.PlacerGreedy, compile.PlacerRandom} {
				mp, err := compile.Compile(goldenNet(seed), compile.Options{Placer: placer, Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				r := NewRunner(mp, eng, 3)
				got := schedule(t, r, 60, seed*7)
				if len(got) != len(want) {
					t.Fatalf("seed %d %v/%v: %d events, golden %d",
						seed, eng, placer, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d %v/%v: event %d = %+v, golden %+v",
							seed, eng, placer, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestRunnerEnginesProduceIdenticalCounters(t *testing.T) {
	net := goldenNet(4)
	mp, err := compile.Compile(net, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spikes := func(eng Engine) uint64 {
		mp2, _ := compile.Compile(goldenNet(4), compile.Options{})
		r := NewRunner(mp2, eng, 2)
		schedule(t, r, 40, 11)
		return r.Chip().Counters().Core.Spikes
	}
	_ = mp
	ev, de := spikes(EngineEvent), spikes(EngineDense)
	if ev != de {
		t.Fatalf("event engine fired %d spikes, dense %d", ev, de)
	}
}

func TestDenseDoesMoreWork(t *testing.T) {
	mkRunner := func(eng Engine) *Runner {
		mp, err := compile.Compile(goldenNet(9), compile.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return NewRunner(mp, eng, 1)
	}
	ev := mkRunner(EngineEvent)
	de := mkRunner(EngineDense)
	schedule(t, ev, 40, 13)
	schedule(t, de, 40, 13)
	evWork := ev.Chip().Counters().Core.NeuronUpdates
	deWork := de.Chip().Counters().Core.NeuronUpdates
	if deWork <= evWork {
		t.Fatalf("dense updates (%d) must exceed event updates (%d)", deWork, evWork)
	}
}

func TestLogicalDeterministicWithStochastic(t *testing.T) {
	mk := func() *model.Network {
		m := model.New()
		in := m.AddInputBank("in", 1, model.SourceProps{Type: 0, Delay: 1})
		p := neuron.Default()
		p.SynStochastic[0] = true
		p.SynWeight[0] = 128
		pop := m.AddPopulation("p", 4, p)
		for i := 0; i < 4; i++ {
			m.Connect(in.Line(0), pop.ID(i))
			m.MarkOutput(pop.ID(i))
		}
		return m
	}
	run := func() []Event {
		l := NewLogical(mk())
		var evs []Event
		for i := 0; i < 50; i++ {
			_ = l.InjectLine(0)
			evs = append(evs, l.Step()...)
		}
		return evs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("stochastic logical runs not reproducible")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("stochastic logical runs diverged")
		}
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("stochastic transduction should thin the train, got %d/200", len(a))
	}
}

func BenchmarkRunnerEventGolden(b *testing.B) {
	mp, err := compile.Compile(goldenNet(1), compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := NewRunner(mp, EngineEvent, 1)
	tr := rng.NewSplitMix64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.InjectLine(int32(tr.Intn(24)))
		r.Step()
	}
}

func BenchmarkRunnerDenseGolden(b *testing.B) {
	mp, err := compile.Compile(goldenNet(1), compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := NewRunner(mp, EngineDense, 1)
	tr := rng.NewSplitMix64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.InjectLine(int32(tr.Intn(24)))
		r.Step()
	}
}

func TestRunnerResetBitIdentical(t *testing.T) {
	// A reset runner must reproduce the spike stream of a freshly
	// built one, including stochastic LFSR-driven state.
	mp, err := compile.Compile(goldenNet(5), compile.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewRunner(mp, EngineEvent, 1)
	want := schedule(t, fresh, 40, 21)
	if len(want) == 0 {
		t.Fatal("no events; test is vacuous")
	}

	r := NewRunner(mp, EngineEvent, 1)
	// Dirty the runner with a different schedule, then reset.
	schedule(t, r, 25, 99)
	r.Reset()
	if r.Now() != 0 {
		t.Fatalf("Now after Reset = %d", r.Now())
	}
	got := schedule(t, r, 40, 21)
	if len(got) != len(want) {
		t.Fatalf("reset runner: %d events, fresh %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, fresh %+v", i, got[i], want[i])
		}
	}
}

// TestDrainFlushesHeldEvents pins the Drain contract: an output that
// fires on the last executed tick is still held in r.pending (the
// hold-one-tick emission rule), and Drain must flush it even when the
// caller's extra-tick budget is already spent. Before the fix,
// Drain(extraTicks) ran exactly extraTicks steps and silently stranded
// such events until the next Reset dropped them.
func TestDrainFlushesHeldEvents(t *testing.T) {
	mp, err := compile.Compile(pulseNet(), compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(mp, EngineEvent, 1)
	if err := r.InjectLine(0); err != nil {
		t.Fatal(err)
	}
	// Inject at t0 -> A fires t1 -> B (the output) fires t2. Step
	// through tick 2: B's event is observed but held pending.
	var evs []Event
	for i := 0; i < 3; i++ {
		evs = append(evs, r.Step()...)
	}
	if len(evs) != 0 {
		t.Fatalf("events before drain = %+v, want none (held)", evs)
	}
	evs = r.Drain(0)
	if len(evs) != 1 || evs[0].Tick != 2 || evs[0].Neuron != 1 {
		t.Fatalf("Drain(0) = %+v, want the held [{2 1}]", evs)
	}
	if evs = r.Drain(0); len(evs) != 0 {
		t.Fatalf("second Drain = %+v, want none", evs)
	}
}

func TestRunnerResetPreservesCounters(t *testing.T) {
	mp, err := compile.Compile(pulseNet(), compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(mp, EngineEvent, 1)
	_ = r.InjectLine(0)
	r.Run(4)
	before := r.Chip().Counters()
	if before.Core.Spikes == 0 {
		t.Fatal("no activity recorded")
	}
	r.Reset()
	after := r.Chip().Counters()
	if after.Core.Spikes < before.Core.Spikes || after.InputSpikes < before.InputSpikes {
		t.Fatalf("Reset dropped counters: %+v -> %+v", before, after)
	}
}

// TestSystemRunnerBitIdentical pins the backend-abstraction contract:
// a runner over a multi-chip system tile emits exactly the event stream
// of a single-chip runner under every engine — tiling only changes
// accounting — and the tile's boundary counters classify every routed
// spike.
func TestSystemRunnerBitIdentical(t *testing.T) {
	net := goldenNet(5)
	mp, err := compile.Compile(net, compile.Options{Width: 6, Height: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []Engine{EngineEvent, EngineDense, EngineParallel} {
		t.Run(eng.String(), func(t *testing.T) {
			want := schedule(t, NewRunner(mp, eng, 2), 40, 17)
			// 1x1-core chips: every core-to-core route crosses a boundary,
			// so the crossing assertion below cannot be placement-lucky.
			sr, err := NewSystemRunner(mp, system.Config{ChipCoresX: 1, ChipCoresY: 1}, eng, 2)
			if err != nil {
				t.Fatal(err)
			}
			got := schedule(t, sr, 40, 17)
			if len(got) != len(want) {
				t.Fatalf("system runner emitted %d events, chip runner %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("event %d: system %+v, chip %+v", i, got[i], want[i])
				}
			}
			sys := sr.System()
			if sys == nil {
				t.Fatal("System() = nil on a system runner")
			}
			st := sys.Stats()
			if routed := sr.Counters().RoutedSpikes; st.IntraChip+st.InterChip != routed {
				t.Fatalf("boundary classification %d+%d does not cover %d routed spikes",
					st.IntraChip, st.InterChip, routed)
			}
			if st.InterChip == 0 {
				t.Fatal("golden net on 1x1-core chips crossed no boundary; rig too small")
			}
		})
	}
}

// TestSystemRunnerBoundarySpikesAccumulate pins the cumulative traffic
// record: Reset zeroes the system's live counters but folds them into
// the runner first, so identical presentations double BoundarySpikes —
// matching how chip activity counters accumulate for energy pricing.
func TestSystemRunnerBoundarySpikesAccumulate(t *testing.T) {
	mp, err := compile.Compile(goldenNet(5), compile.Options{Width: 6, Height: 6})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewSystemRunner(mp, system.Config{ChipCoresX: 1, ChipCoresY: 1}, EngineEvent, 1)
	if err != nil {
		t.Fatal(err)
	}
	schedule(t, r, 20, 23)
	intra1, inter1 := r.BoundarySpikes()
	if inter1 == 0 {
		t.Fatal("no crossings recorded")
	}
	link1 := r.BoundaryLinks()
	ticks1 := r.LifetimeTicks()
	r.Reset()
	if st := r.System().Stats(); st.InterChip != 0 {
		t.Fatal("Reset did not zero the live system counters")
	}
	if intra, inter := r.BoundarySpikes(); intra != intra1 || inter != inter1 {
		t.Fatalf("BoundarySpikes lost the pre-Reset record: (%d,%d) -> (%d,%d)", intra1, inter1, intra, inter)
	}
	schedule(t, r, 20, 23)
	if intra, inter := r.BoundarySpikes(); intra != 2*intra1 || inter != 2*inter1 {
		t.Fatalf("identical presentations: (%d,%d), want doubled (%d,%d)", intra, inter, 2*intra1, 2*inter1)
	}
	if ticks := r.LifetimeTicks(); ticks != 2*ticks1 {
		t.Fatalf("LifetimeTicks = %d after two presentations, want %d", ticks, 2*ticks1)
	}
	link2 := r.BoundaryLinks()
	var sum1, sum2 uint64
	for i := range link1 {
		for j := range link1[i] {
			sum1 += link1[i][j]
			sum2 += link2[i][j]
			if link2[i][j] != 2*link1[i][j] {
				t.Fatalf("link[%d][%d] = %d, want %d", i, j, link2[i][j], 2*link1[i][j])
			}
		}
	}
	if sum1 != inter1 {
		t.Fatalf("link matrix sums to %d, inter total %d", sum1, inter1)
	}
}

// TestSystemRunnerValidates pins the tiling error path.
func TestSystemRunnerValidates(t *testing.T) {
	mp, err := compile.Compile(goldenNet(5), compile.Options{Width: 6, Height: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystemRunner(mp, system.Config{ChipCoresX: 4, ChipCoresY: 3}, EngineEvent, 1); err == nil {
		t.Fatal("non-tiling chip dims accepted")
	}
	if r := NewRunner(mp, EngineEvent, 1); r.System() != nil {
		t.Fatal("System() non-nil on a chip runner")
	}
}

func TestNewRunnerClampsWorkers(t *testing.T) {
	mp, err := compile.Compile(pulseNet(), compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w := NewRunner(mp, EngineParallel, 0).Workers(); w != 1 {
		t.Fatalf("workers(0) clamped to %d, want 1", w)
	}
	if w := NewRunner(mp, EngineParallel, 1<<20).Workers(); w > runtime.NumCPU() || w < 1 {
		t.Fatalf("workers(2^20) clamped to %d, want within [1,%d]", w, runtime.NumCPU())
	}
}

func TestParallelWorkerCountInvariant(t *testing.T) {
	// EngineParallel output is bit-identical to EngineEvent regardless
	// of worker count.
	want := func() []Event {
		mp, _ := compile.Compile(goldenNet(6), compile.Options{Seed: 6})
		return schedule(t, NewRunner(mp, EngineEvent, 1), 40, 31)
	}()
	for _, workers := range []int{1, 2, 3, 7} {
		mp, _ := compile.Compile(goldenNet(6), compile.Options{Seed: 6})
		got := schedule(t, NewRunner(mp, EngineParallel, workers), 40, 31)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d events, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: event %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}
