// Package sim executes networks.
//
// Two executors are provided:
//
//   - Runner drives a compiled mapping (package compile) tick by tick
//     over a Backend — a single chip.Chip or a multi-chip system.System
//     tile — injecting external input lines and decoding external output
//     spikes back to logical neuron IDs. It can evaluate cores
//     event-driven (the production engine), densely (the clock-driven
//     baseline), or event-driven across several goroutines; all three
//     produce bit-identical spike streams, on either backend. The
//     event-driven engines additionally run each core's precompiled
//     integration plan (core/plan.go): deterministic neurons take
//     branch-free column accumulation and a flat leak/fire sweep,
//     stochastic ones keep the exact per-event path in LFSR draw order,
//     so the plan changes throughput, never output bits.
//     RunnerOptions.NoPlan forces the legacy scalar path for A/B
//     debugging.
//
//   - Logical interprets a model.Network directly, without compiling.
//     It is the executable specification: for deterministic networks the
//     Runner must emit exactly the events Logical emits, which is the
//     flagship "golden model" integration test of the compiler and chip.
//
// Both report events in logical time: an Event's tick is the tick the
// logical neuron fired, independent of splitter-relay observation lag.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/core"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/rng"
	"github.com/neurogo/neurogo/internal/system"
)

// Backend is the hardware-execution seam under a Runner: anything that
// can tick a compiled core grid, accept external injections, reset to
// power-on state, and report activity counters. Two implementations
// ship today — a single *chip.Chip and a multi-chip *system.System
// tile — and both produce bit-identical spike streams for the same
// compiled mapping, because tiling changes accounting, not routing
// semantics. Everything above the Runner (pipeline sessions, streams,
// batches, the async front-end) is backend-agnostic.
type Backend interface {
	// Tick advances one tick with event-driven core evaluation and
	// returns the external output spikes emitted during it. The slice
	// may be reused across ticks; retainers must copy.
	Tick() []chip.OutputSpike
	// TickDense advances one tick with clock-driven evaluation.
	TickDense() []chip.OutputSpike
	// TickParallel advances one tick sharded across workers goroutines,
	// bit-identically to Tick.
	TickParallel(workers int) []chip.OutputSpike
	// Inject schedules an external input spike on (coreIdx, axon) for
	// tick at; the arrival must be within the delay-ring horizon.
	Inject(coreIdx int32, axon int, at int64) error
	// Reset returns the backend to its power-on state so the next
	// presentation is bit-identical to one on a freshly built backend.
	// Chip-level activity counters survive (for cumulative energy
	// accounting); backend-specific counters may not — system backends
	// zero their boundary-traffic counters (see system.Reset).
	Reset()
	// Now returns the next tick to be executed.
	Now() int64
	// Counters reports chip-level activity for the energy model.
	Counters() chip.Counters
	// ResetCounters zeroes the chip-level activity counters.
	ResetCounters()
}

// TiledBackend is a Backend partitioned onto a tile of physical chips,
// with boundary traffic accounted per link. Both multi-chip backends —
// the in-process *system.System and the sharded/distributed
// *system.Sharded — satisfy it; the Runner folds its accounting across
// Resets through this interface alone.
type TiledBackend interface {
	Backend
	// Chips returns the number of physical chips; ChipsX and ChipsY the
	// tile dimensions.
	Chips() int
	ChipsX() int
	ChipsY() int
	// BoundaryTotals returns the live intra- and inter-chip routed
	// spike counts in O(1).
	BoundaryTotals() (intra, inter uint64)
	// AddLinkTrafficInto adds the live (src chip, dst chip) crossing
	// matrix into dst (chips x chips).
	AddLinkTrafficInto(dst [][]uint64)
}

// FallibleBackend is a Backend that can fail permanently mid-run — a
// distributed backend whose shard process died. Err returns the sticky
// failure (matching system.ErrShardDown via errors.Is for shard
// deaths); once non-nil, Tick returns no spikes and the backend never
// recovers. Callers that serve fallible backends must check Err after
// stepping — the Runner surfaces it via Runner.Err.
type FallibleBackend interface {
	Backend
	Err() error
}

// ContextBinder is a Backend whose blocking operations (remote tick
// round-trips) can be bounded by a context deadline. Bind before each
// presentation; the zero state is context.Background().
type ContextBinder interface {
	BindContext(ctx context.Context)
}

// WindowedBackend is a Backend that can execute an n-tick exchange
// window as one operation — the sharded backend, where a window is a
// single boundary exchange (and, distributed, a single RPC round-trip
// per shard) instead of n. TickN returns each window tick's output
// spikes; the slices are reused across windows. Exactness requires
// every cross-shard edge to carry at least n ticks of axonal delay —
// see MaxExchangeWindow for the mapping-derived bound.
type WindowedBackend interface {
	Backend
	TickN(mode system.EvalMode, workers, n int) [][]chip.OutputSpike
}

// The shipped backends satisfy the seams.
var (
	_ Backend         = (*chip.Chip)(nil)
	_ TiledBackend    = (*system.System)(nil)
	_ TiledBackend    = (*system.Sharded)(nil)
	_ FallibleBackend = (*system.Sharded)(nil)
	_ ContextBinder   = (*system.Sharded)(nil)
	_ WindowedBackend = (*system.Sharded)(nil)
)

// MaxExchangeWindow returns the widest exact exchange window for a
// compiled mapping: the minimum boundary-crossing axonal delay (when
// chip crossings exist — Stats.MinBoundaryDelay; spikes must stay in
// delay-ring flight across the whole window) further clamped by the
// injection horizon (an input frame encoded at window tick k lands at
// k + line delay, which must stay inside the core.RingSlots ring seen
// from the window start). Always at least 1 — the lockstep window
// every partition supports.
func MaxExchangeWindow(m *compile.Mapping) int {
	w := core.RingSlots
	for _, d := range m.InputDelay {
		if lim := core.RingSlots - int(d); lim < w {
			w = lim
		}
	}
	if d := m.Stats.MinBoundaryDelay; d > 0 && d < w {
		w = d
	}
	if w < 1 {
		w = 1
	}
	return w
}

// EvalMode translates an Engine into the system-layer evaluation mode
// shards run locally (system cannot import sim).
func (e Engine) EvalMode() system.EvalMode {
	switch e {
	case EngineDense:
		return system.EvalDense
	case EngineParallel:
		return system.EvalParallel
	default:
		return system.EvalEvent
	}
}

// Engine selects the core evaluation strategy.
type Engine int

const (
	// EngineEvent is the sparse, event-driven engine (production).
	EngineEvent Engine = iota
	// EngineDense is the clock-driven baseline: every neuron of every
	// core is evaluated every tick.
	EngineDense
	// EngineParallel is EngineEvent sharded across goroutines.
	EngineParallel
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineEvent:
		return "event"
	case EngineDense:
		return "dense"
	case EngineParallel:
		return "parallel"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Event is one output spike in logical time.
type Event struct {
	Tick   int64
	Neuron model.NeuronID
}

// Runner executes a compiled mapping over a Backend.
type Runner struct {
	mapping *compile.Mapping
	backend Backend
	chip    *chip.Chip   // the underlying chip; nil for sharded backends
	tiled   TiledBackend // non-nil only for multi-chip backends
	engine  Engine
	workers int
	win     int     // exchange window Drain chunks by (see SetExchangeWindow)
	pending []Event // events whose logical tick is in the future (lagged)
	hold    int64   // ticks an event can trail execution: max(MaxOutputLag, 1)

	// Cumulative records folded across Resets: a system backend zeroes
	// its live traffic counters on Reset and every backend zeroes its
	// tick clock, so the runner accumulates totals, link matrix and
	// ticks here (see BoundarySpikes, BoundaryLinks, LifetimeTicks).
	baseIntra, baseInter uint64
	baseLink             [][]uint64 // nil for single-chip runners
	baseTicks            uint64
}

// RunnerOptions tunes backend construction.
type RunnerOptions struct {
	// NoPlan pins every core to the legacy scalar integration path
	// (chip.Options.NoPlan) — bit-identical output, scalar throughput.
	NoPlan bool
}

func (o RunnerOptions) chipOptions() chip.Options { return chip.Options{NoPlan: o.NoPlan} }

// NewRunner builds a runner over a single-chip backend. workers is used
// only by EngineParallel and is clamped to [1, runtime.NumCPU()] —
// goroutines beyond the physical core count only add scheduling
// overhead. EngineParallel output is bit-identical to EngineEvent
// regardless of the worker count: workers own disjoint core ranges and
// their emissions are applied after a barrier in core-index order (see
// chip.TickParallel).
//
// The mapping is retained by reference and treated as read-only, so many
// runners may share one compiled mapping concurrently; each runner owns
// an independent chip instance.
func NewRunner(m *compile.Mapping, engine Engine, workers int) *Runner {
	return NewRunnerWith(m, engine, workers, RunnerOptions{})
}

// NewRunnerWith is NewRunner with explicit backend options.
func NewRunnerWith(m *compile.Mapping, engine Engine, workers int, opt RunnerOptions) *Runner {
	ch := chip.NewWithOptions(m.Chip, opt.chipOptions())
	r := newBackendRunner(m, ch, engine, workers)
	r.chip = ch
	return r
}

// NewSystemRunner builds a runner whose backend is a multi-chip
// system.System tile: the compiled core grid partitioned onto physical
// chips of cfg's per-chip dimensions, with chip-to-chip boundary
// traffic accounted per link. The spike stream is bit-identical to a
// NewRunner over the same mapping — tiling only adds accounting. It
// errors when the mapping's core grid does not tile into cfg's chips.
func NewSystemRunner(m *compile.Mapping, cfg system.Config, engine Engine, workers int) (*Runner, error) {
	return NewSystemRunnerWith(m, cfg, engine, workers, RunnerOptions{})
}

// NewSystemRunnerWith is NewSystemRunner with explicit backend options.
func NewSystemRunnerWith(m *compile.Mapping, cfg system.Config, engine Engine, workers int, opt RunnerOptions) (*Runner, error) {
	sys, err := system.NewWithOptions(m.Chip, cfg, opt.chipOptions())
	if err != nil {
		return nil, err
	}
	r := newBackendRunner(m, sys, engine, workers)
	r.chip = sys.Chip()
	r.setTiled(sys)
	return r, nil
}

// NewShardedRunner builds a runner whose backend is a partitioned
// system.Sharded: the tile's chips split into the given number of
// in-process shards, each evaluated on its own chip fragment with
// explicit boundary-spike exchange per tick. The spike stream is
// bit-identical to NewSystemRunner over the same mapping — sharding is
// the same computation with the exchange made explicit — which is what
// the distributed (multi-process) deployment rides on.
func NewShardedRunner(m *compile.Mapping, cfg system.Config, shards int, engine Engine, workers int, opt RunnerOptions) (*Runner, error) {
	sys, err := system.NewSharded(m.Chip, cfg, shards, opt.chipOptions())
	if err != nil {
		return nil, err
	}
	return NewTiledRunner(m, sys, engine, workers), nil
}

// NewTiledRunner wraps a pre-built tiled backend (e.g. a
// system.Sharded assembled from remote shard connections) in a runner.
// The backend must execute m's core grid; the runner cannot verify
// that, so distributed deployments verify it in the connection
// handshake (mapping hash) instead.
func NewTiledRunner(m *compile.Mapping, b TiledBackend, engine Engine, workers int) *Runner {
	r := newBackendRunner(m, b, engine, workers)
	r.setTiled(b)
	return r
}

func (r *Runner) setTiled(b TiledBackend) {
	r.tiled = b
	r.baseLink = make([][]uint64, b.Chips())
	for i := range r.baseLink {
		r.baseLink[i] = make([]uint64, b.Chips())
	}
}

func newBackendRunner(m *compile.Mapping, b Backend, engine Engine, workers int) *Runner {
	if workers < 1 {
		workers = 1
	}
	if max := runtime.NumCPU(); workers > max {
		workers = max
	}
	// An event of logical tick t is observed physically at t+lag and
	// emitted by the Step after that (the hold-one-tick rule in Step), so
	// a tick is complete once execution has run max(lag, 1) ticks past it.
	hold := int64(m.MaxOutputLag())
	if hold < 1 {
		hold = 1
	}
	return &Runner{mapping: m, backend: b, engine: engine, workers: workers, win: 1, hold: hold}
}

// SetExchangeWindow sets the tick window StepN-driven paths (Drain's
// fixed extra ticks, and callers that step by ExchangeWindow) amortize
// exchanges over. Values are clamped to [1, MaxExchangeWindow] so a
// window can never be wide enough to lose spikes; 0 (or any
// non-positive value) selects the widest exact window. The window
// changes batching only, never output bits — StepN is tick-for-tick
// identical to sequential Steps.
func (r *Runner) SetExchangeWindow(n int) {
	max := MaxExchangeWindow(r.mapping)
	if n < 1 || n > max {
		n = max
	}
	r.win = n
}

// ExchangeWindow returns the current exchange window (1 unless raised
// by SetExchangeWindow).
func (r *Runner) ExchangeWindow() int { return r.win }

// Backend exposes the execution backend driving this runner.
func (r *Runner) Backend() Backend { return r.backend }

// Chip exposes the underlying chip (for counters and probes). It is
// nil for sharded backends, whose state is split across shard
// fragments (use Backend-level Counters there).
func (r *Runner) Chip() *chip.Chip { return r.chip }

// System returns the single-process multi-chip system backing this
// runner, or nil for single-chip and sharded runners.
func (r *Runner) System() *system.System {
	sys, _ := r.tiled.(*system.System)
	return sys
}

// Tiled returns the multi-chip backend (in-process or sharded), nil
// for single-chip runners — the seam boundary-traffic accounting
// hangs off.
func (r *Runner) Tiled() TiledBackend { return r.tiled }

// Err returns the backend's sticky failure for fallible (distributed)
// backends, nil otherwise. Check after presentations that crossed a
// Step returning suspiciously few events; the pipeline does this on
// every Classify and stream operation.
func (r *Runner) Err() error {
	if f, ok := r.backend.(FallibleBackend); ok {
		return f.Err()
	}
	return nil
}

// BindContext bounds the backend's blocking operations (remote tick
// round-trips) by ctx, when the backend supports it; a no-op
// otherwise. Call before each presentation.
func (r *Runner) BindContext(ctx context.Context) {
	if b, ok := r.backend.(ContextBinder); ok {
		b.BindContext(ctx)
	}
}

// Reset returns the runner to tick zero with a pristine backend, so a
// session can present fresh inputs without re-allocating the chip. The
// spike stream after Reset is bit-identical to a freshly built runner
// over the same mapping and backend. Chip activity counters are
// preserved for cumulative energy accounting (ResetCounters clears
// them); a system backend's boundary-traffic counters are zeroed, with
// the intra/inter totals and the link matrix folded into the runner's
// cumulative record first (BoundarySpikes, BoundaryLinks).
func (r *Runner) Reset() {
	if r.tiled != nil {
		intra, inter := r.tiled.BoundaryTotals()
		r.baseIntra += intra
		r.baseInter += inter
		r.tiled.AddLinkTrafficInto(r.baseLink)
	}
	r.baseTicks += uint64(r.backend.Now())
	r.backend.Reset()
	r.pending = r.pending[:0]
}

// LifetimeTicks returns the ticks executed across all Resets — the
// wall-time basis matching the cumulative activity counters, which also
// span Resets. Now() covers the current epoch only.
func (r *Runner) LifetimeTicks() uint64 { return r.baseTicks + uint64(r.backend.Now()) }

// BoundarySpikes returns the cumulative intra- and inter-chip routed
// spike counts across all Resets, in O(1) — (0, 0) for single-chip
// runners.
func (r *Runner) BoundarySpikes() (intra, inter uint64) {
	if r.tiled == nil {
		return 0, 0
	}
	intra, inter = r.tiled.BoundaryTotals()
	return r.baseIntra + intra, r.baseInter + inter
}

// BoundaryLinks returns the cumulative (src chip, dst chip) crossing
// matrix across all Resets — freshly allocated, the caller owns it —
// or nil for single-chip runners. Costs O(chips^2); the boundary-
// summary hot paths use BoundarySpikes instead.
func (r *Runner) BoundaryLinks() [][]uint64 {
	if r.tiled == nil {
		return nil
	}
	link := make([][]uint64, len(r.baseLink))
	for i, row := range r.baseLink {
		link[i] = append([]uint64(nil), row...)
	}
	r.tiled.AddLinkTrafficInto(link)
	return link
}

// Workers returns the effective (clamped) worker count used by
// EngineParallel.
func (r *Runner) Workers() int { return r.workers }

// Mapping exposes the compiled mapping.
func (r *Runner) Mapping() *compile.Mapping { return r.mapping }

// Now returns the next tick to execute.
func (r *Runner) Now() int64 { return r.backend.Now() }

// CompleteThrough returns the latest logical tick whose output events
// have all been delivered by Step: observation lag (splitter relays)
// plus the hold-one-tick rule mean events for a tick can trickle in
// for up to max(MaxOutputLag, 1) Steps after it executes. Continuous
// (windowed) decoders decide per tick at this frontier, which is what
// makes streamed decisions independent of engine and lag. Negative
// until enough ticks have run; Drain completes every executed tick
// regardless.
func (r *Runner) CompleteThrough() int64 { return r.backend.Now() - 1 - r.hold }

// Counters reports the backend's chip-level activity counters.
func (r *Runner) Counters() chip.Counters { return r.backend.Counters() }

// InjectLine emits a spike on input line at the current tick; it arrives
// at Now()+delay(line) at every target axon.
func (r *Runner) InjectLine(line int32) error {
	return r.InjectLineAt(line, r.backend.Now())
}

// InjectLineAt emits a spike on input line as of tick base: it arrives
// at base+delay(line) at every target axon. base may be in the future
// (bounded by the backend's delay-ring horizon) — how windowed drivers
// pre-inject a whole exchange window's frames before stepping it, which
// is exact because encoders are output-independent: the spike train
// depends only on the frame sequence, never on what the chip emitted.
func (r *Runner) InjectLineAt(line int32, base int64) error {
	if line < 0 || int(line) >= len(r.mapping.InputTargets) {
		return fmt.Errorf("sim: unknown input line %d", line)
	}
	at := base + int64(r.mapping.InputDelay[line])
	for _, t := range r.mapping.InputTargets[line] {
		if err := r.backend.Inject(t.Core, int(t.Axon), at); err != nil {
			return err
		}
	}
	return nil
}

// collect decodes one executed tick's output spikes into pending
// events and returns the events whose logical tick precedes t — the
// emission rule shared by Step and StepN, so windowed and per-tick
// stepping produce identical event streams.
func (r *Runner) collect(t int64, outs []chip.OutputSpike) []Event {
	for _, o := range outs {
		id, ok := r.mapping.DecodeOutput(o)
		if !ok {
			continue // dropped (unobserved) neuron
		}
		r.pending = append(r.pending, Event{Tick: o.Tick - int64(r.mapping.OutputLag(id)), Neuron: id})
	}
	// Emit events whose logical tick is t; lag-1 events for tick t were
	// observed physically at t+1, so with lag up to 1, everything for
	// tick t is known once tick t has executed... except lag-1 events
	// observed in tick t+1. Hold events one extra tick to be safe.
	ready := r.pending[:0:0]
	var rest []Event
	for _, e := range r.pending {
		if e.Tick < t {
			ready = append(ready, e)
		} else {
			rest = append(rest, e)
		}
	}
	r.pending = rest
	sort.Slice(ready, func(i, j int) bool {
		if ready[i].Tick != ready[j].Tick {
			return ready[i].Tick < ready[j].Tick
		}
		return ready[i].Neuron < ready[j].Neuron
	})
	return ready
}

// Step advances one tick and returns the logical output events whose
// fire time equals the executed tick. Events are ordered by neuron ID.
func (r *Runner) Step() []Event {
	t := r.backend.Now()
	var outs []chip.OutputSpike
	switch r.engine {
	case EngineDense:
		outs = r.backend.TickDense()
	case EngineParallel:
		outs = r.backend.TickParallel(r.workers)
	default:
		outs = r.backend.Tick()
	}
	return r.collect(t, outs)
}

// StepN advances n ticks and returns the concatenation of the events n
// sequential Steps would have returned — tick-for-tick identical
// ordering, because each window tick runs the same decode-then-emit
// rule. On a WindowedBackend the whole window is one exchange (one RPC
// round-trip per shard, distributed); any other backend just steps n
// times. Callers must keep n within the mapping's exact window (see
// MaxExchangeWindow) when the backend is sharded.
func (r *Runner) StepN(n int) []Event {
	wb, windowed := r.backend.(WindowedBackend)
	if !windowed || n == 1 {
		var out []Event
		for i := 0; i < n; i++ {
			out = append(out, r.Step()...)
		}
		return out
	}
	if n < 1 {
		return nil
	}
	base := r.backend.Now()
	win := wb.TickN(r.engine.EvalMode(), r.workers, n)
	if win == nil {
		return nil // backend down; Err reports the failure
	}
	var out []Event
	for k, outs := range win {
		out = append(out, r.collect(base+int64(k), outs)...)
	}
	return out
}

// drainFlushCap bounds the additional ticks Drain runs beyond
// extraTicks to empty r.pending. The hold-one-tick rule means a lag-0
// output firing on a drain tick is still pending when that tick ends,
// and residual activity can keep producing such events; the cap keeps
// Drain finite on self-sustaining networks (ResetNone, negative leak).
const drainFlushCap = 64

// Drain runs idle ticks until all pending lagged events are flushed and
// returns them. Call after the last meaningful tick. It always runs
// extraTicks steps (the caller's decay/lag budget) — chunked by the
// exchange window, since their count is fixed up front — then keeps
// stepping while events remain pending, up to drainFlushCap further
// ticks (per-tick: each flush tick decides whether another is needed).
func (r *Runner) Drain(extraTicks int) []Event {
	var out []Event
	for left := extraTicks; left > 0; {
		n := r.win
		if n > left {
			n = left
		}
		out = append(out, r.StepN(n)...)
		left -= n
	}
	for i := 0; len(r.pending) > 0 && i < drainFlushCap; i++ {
		out = append(out, r.Step()...)
	}
	return out
}

// Run executes n ticks (plus enough drain ticks to flush lag) and
// returns all events in order.
func (r *Runner) Run(n int) []Event {
	var out []Event
	for i := 0; i < n; i++ {
		out = append(out, r.Step()...)
	}
	out = append(out, r.Drain(2)...)
	return out
}

// Logical interprets a model.Network directly. For deterministic
// networks it defines the semantics the compiled chip must reproduce.
// Stochastic neurons draw from per-neuron LFSRs seeded by neuron ID, so
// Logical runs are reproducible but not bit-compatible with a compiled
// chip's per-core LFSRs; golden tests use deterministic networks.
//
// Spike arrival is modelled per source, as one bit per (source, tick):
// two spikes from the same source line landing on the same tick merge,
// exactly as the hardware's axon delay ring merges them (one SRAM bit
// per axon and slot).
type Logical struct {
	net  *model.Network
	v    []int32
	lfsr []*rng.LFSR
	tick int64

	// ring[slot] holds the sources whose spike arrives at tick
	// (tick % RingSlots) == slot: one bit per neuron source and one per
	// input line.
	ring [core.RingSlots]struct {
		neurons []bool
		inputs  []bool
	}

	// inbound[n] lists neuron n's distinct sources in edge order (the
	// integration order).
	inbound [][]model.Node
}

// NewLogical builds a reference interpreter for net.
func NewLogical(net *model.Network) *Logical {
	n := net.Neurons()
	l := &Logical{net: net, v: make([]int32, n), lfsr: make([]*rng.LFSR, n)}
	for i := 0; i < n; i++ {
		l.lfsr[i] = rng.NewLFSR(uint16(i + 1))
	}
	for s := range l.ring {
		l.ring[s].neurons = make([]bool, n)
		l.ring[s].inputs = make([]bool, net.InputLines())
	}
	l.inbound = make([][]model.Node, n)
	inSeen := make([]map[model.Node]bool, n)
	for _, e := range net.Edges() {
		if inSeen[e.To] == nil {
			inSeen[e.To] = map[model.Node]bool{}
		}
		if !inSeen[e.To][e.From] {
			inSeen[e.To][e.From] = true
			l.inbound[e.To] = append(l.inbound[e.To], e.From)
		}
	}
	return l
}

// Now returns the next tick to execute.
func (l *Logical) Now() int64 { return l.tick }

// InjectLine emits a spike on an input line at the current tick.
// Duplicate injections of the same line in one tick merge.
func (l *Logical) InjectLine(line int32) error {
	if line < 0 || int(line) >= l.net.InputLines() {
		return fmt.Errorf("sim: unknown input line %d", line)
	}
	props := *l.net.InputProps(line)
	slot := int(l.tick+int64(props.Delay)) % core.RingSlots
	l.ring[slot].inputs[line] = true
	return nil
}

// Step advances one tick and returns output events (fire-time ordered by
// neuron ID).
func (l *Logical) Step() []Event {
	t := l.tick
	slot := int(t) % core.RingSlots
	arr := &l.ring[slot]

	var events []Event
	for id := 0; id < l.net.Neurons(); id++ {
		p := l.net.Params(model.NeuronID(id))
		v := l.v[id]
		for _, src := range l.inbound[id] {
			var fired bool
			var g neuron.AxonType
			if src.IsInput {
				fired = arr.inputs[src.Idx]
				g = l.net.InputProps(src.Idx).Type
			} else {
				fired = arr.neurons[src.Idx]
				g = l.net.SourceProps(model.NeuronID(src.Idx)).Type
			}
			if fired {
				v = neuron.Integrate(v, p, g, l.lfsr[id])
			}
		}
		var spiked bool
		v, spiked = neuron.LeakFire(v, p, l.lfsr[id])
		l.v[id] = v
		if !spiked {
			continue
		}
		props := l.net.SourceProps(model.NeuronID(id))
		dSlot := int(t+int64(props.Delay)) % core.RingSlots
		l.ring[dSlot].neurons[id] = true
		if l.net.IsOutput(model.NeuronID(id)) {
			events = append(events, Event{Tick: t, Neuron: model.NeuronID(id)})
		}
	}
	// Clear the consumed slot.
	for i := range arr.neurons {
		arr.neurons[i] = false
	}
	for i := range arr.inputs {
		arr.inputs[i] = false
	}
	l.tick++
	return events
}

// Run executes n ticks and returns all events.
func (l *Logical) Run(n int) []Event {
	var out []Event
	for i := 0; i < n; i++ {
		out = append(out, l.Step()...)
	}
	return out
}
