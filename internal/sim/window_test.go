package sim

// Exchange-window coverage at the runner layer: the mapping-derived
// window bound, SetExchangeWindow's clamping, and StepN's tick-for-tick
// identity with sequential Steps on both single-chip and sharded
// (windowed) backends.

import (
	"testing"

	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/core"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/rng"
	"github.com/neurogo/neurogo/internal/system"
)

func TestMaxExchangeWindowBounds(t *testing.T) {
	mp, err := compile.Compile(pulseNet(), compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// No chip crossings recorded (MinBoundaryDelay 0): only the
	// injection horizon binds — delay-1 lines leave RingSlots-1 ticks.
	if w, want := MaxExchangeWindow(mp), core.RingSlots-1; w != want {
		t.Fatalf("unconstrained window = %d, want %d", w, want)
	}
	// A boundary-delay bound tighter than the horizon wins...
	mp.Stats.MinBoundaryDelay = 4
	if w := MaxExchangeWindow(mp); w != 4 {
		t.Fatalf("delay-bounded window = %d, want 4", w)
	}
	// ...a looser one does not.
	mp.Stats.MinBoundaryDelay = 100
	if w, want := MaxExchangeWindow(mp), core.RingSlots-1; w != want {
		t.Fatalf("horizon-bounded window = %d, want %d", w, want)
	}
	// Lockstep-only mappings report exactly 1.
	mp.Stats.MinBoundaryDelay = 1
	if w := MaxExchangeWindow(mp); w != 1 {
		t.Fatalf("delay-1 window = %d, want 1", w)
	}
	// The floor is 1 even when a line's delay eats the whole ring.
	mp.Stats.MinBoundaryDelay = 0
	mp.InputDelay[0] = core.RingSlots
	if w := MaxExchangeWindow(mp); w != 1 {
		t.Fatalf("horizonless window = %d, want floor 1", w)
	}
}

func TestSetExchangeWindowClamps(t *testing.T) {
	mp, err := compile.Compile(pulseNet(), compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mp.Stats.MinBoundaryDelay = 4
	r := NewRunner(mp, EngineEvent, 1)
	if r.ExchangeWindow() != 1 {
		t.Fatalf("fresh runner window = %d, want 1", r.ExchangeWindow())
	}
	for _, c := range []struct{ set, want int }{
		{2, 2},  // in range: taken as-is
		{0, 4},  // 0 selects the widest exact window
		{-3, 4}, // non-positive likewise
		{99, 4}, // beyond the bound clamps down
		{1, 1},  // back to lockstep
		{4, 4},  // the bound itself is legal
	} {
		r.SetExchangeWindow(c.set)
		if got := r.ExchangeWindow(); got != c.want {
			t.Fatalf("SetExchangeWindow(%d) -> %d, want %d", c.set, got, c.want)
		}
	}
}

// windowNet is goldenNet without splitters: every a-neuron has exactly
// one outgoing edge carrying >= 4 ticks of delay, so a 1x1-core tiling
// proves exchange windows up to 4 and no delay-1 relay hop pins the
// bound at lockstep.
func windowNet(seed uint64) *model.Network {
	r := rng.NewSplitMix64(seed)
	m := model.New()
	in := m.AddInputBank("in", 24, model.SourceProps{Type: 0, Delay: 1})
	proto := neuron.Default()
	proto.Threshold = 2
	a := m.AddPopulation("a", 300, proto)
	b := m.AddPopulation("b", 150, proto)
	for i := 0; i < 24; i++ {
		for k := 0; k < 25; k++ {
			m.Connect(in.Line(i), a.ID(r.Intn(300)))
		}
	}
	for i := 0; i < 300; i++ {
		props := m.SourceProps(a.ID(i))
		props.Delay = uint8(4 + r.Intn(3))
		if r.Intn(4) == 0 {
			props.Type = 1
		}
		m.Connect(model.NeuronNode(a.ID(i)), b.ID(i%150))
	}
	for i := 0; i < 150; i++ {
		m.Params(b.ID(i)).Threshold = int32(1 + r.Intn(2))
		m.MarkOutput(b.ID(i))
	}
	return m
}

// scheduleWindowed replays schedule's exact injection stream, but
// pre-injects each exchange window with InjectLineAt and executes it in
// one StepN — the windowed drive loop nsim and the pipeline run.
func scheduleWindowed(t *testing.T, r *Runner, ticks int, seed uint64, w int) []Event {
	t.Helper()
	rr := rng.NewSplitMix64(seed)
	var evs []Event
	for tick := 0; tick < ticks; {
		n := w
		if rem := ticks - tick; n > rem {
			n = rem
		}
		base := r.Now()
		for k := 0; k < n; k++ {
			for j := 0; j < 6; j++ {
				if err := r.InjectLineAt(int32(rr.Intn(24)), base+int64(k)); err != nil {
					t.Fatal(err)
				}
			}
		}
		evs = append(evs, r.StepN(n)...)
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		tick += n
	}
	for i := 0; i < 10; i++ {
		evs = append(evs, r.Step()...)
	}
	horizon := int64(ticks + 6)
	cut := evs[:0:0]
	for _, e := range evs {
		if e.Tick < horizon {
			cut = append(cut, e)
		}
	}
	return cut
}

// TestStepNMatchesSequentialSteps pins the windowed stepping identity:
// for every engine, shard count and window width that the mapping
// proves exact (including a width that does not divide the tick count),
// the windowed drive emits exactly the per-tick runner's event stream.
func TestStepNMatchesSequentialSteps(t *testing.T) {
	const seed = 11
	mp, err := compile.Compile(windowNet(seed), compile.Options{
		Seed: seed, Width: 4, Height: 4, ChipCoresX: 1, ChipCoresY: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := mp.Stats.MinBoundaryDelay; d < 4 {
		t.Fatalf("window fuzz mapping has MinBoundaryDelay %d, want >= 4", d)
	}
	if w := MaxExchangeWindow(mp); w != 4 {
		t.Fatalf("MaxExchangeWindow = %d, want 4", w)
	}
	cfg := system.Config{ChipCoresX: 1, ChipCoresY: 1}

	for _, eng := range []Engine{EngineEvent, EngineDense, EngineParallel} {
		want := schedule(t, NewRunner(mp, eng, 2), 30, seed*3)
		if len(want) == 0 {
			t.Fatalf("%v: no events; test is vacuous", eng)
		}
		// Single-chip backend: StepN is plain sequential stepping, but the
		// pre-injected windowed drive must still reproduce the stream.
		for _, w := range []int{2, 4} {
			got := scheduleWindowed(t, NewRunner(mp, eng, 2), 30, seed*3, w)
			compareEvents(t, eng.String()+"/chip", got, want)
		}
		// Sharded backend: StepN collapses each window into one exchange.
		for _, shards := range []int{1, 2, 4} {
			for _, w := range []int{1, 2, 4} {
				sr, err := NewShardedRunner(mp, cfg, shards, eng, 2, RunnerOptions{})
				if err != nil {
					t.Fatal(err)
				}
				sr.SetExchangeWindow(w)
				got := scheduleWindowed(t, sr, 30, seed*3, sr.ExchangeWindow())
				compareEvents(t, eng.String()+"/sharded", got, want)
			}
		}
	}
}

func compareEvents(t *testing.T, leg string, got, want []Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, reference %d", leg, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: event %d = %+v, reference %+v", leg, i, got[i], want[i])
		}
	}
}
