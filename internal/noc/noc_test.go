package noc

import (
	"testing"
	"testing/quick"

	"github.com/neurogo/neurogo/internal/rng"
)

func mesh4() *Mesh {
	return NewMesh(Config{Width: 4, Height: 4, BufDepth: 4})
}

func TestHopCount(t *testing.T) {
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{3, 0}, 3},
		{Coord{0, 0}, Coord{0, 2}, 2},
		{Coord{1, 1}, Coord{3, 3}, 4},
		{Coord{3, 3}, Coord{1, 1}, 4},
	}
	for _, c := range cases {
		if got := HopCount(c.a, c.b); got != c.want {
			t.Errorf("HopCount(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopCountSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by int8) bool {
		a := Coord{int16(ax), int16(ay)}
		b := Coord{int16(bx), int16(by)}
		return HopCount(a, b) == HopCount(b, a) && HopCount(a, b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPortString(t *testing.T) {
	names := map[Port]string{PortLocal: "L", PortNorth: "N", PortEast: "E", PortSouth: "S", PortWest: "W"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("Port %d = %q, want %q", p, p.String(), want)
		}
	}
	if Port(9).String() == "" {
		t.Error("unknown port must stringify")
	}
}

func TestLocalDelivery(t *testing.T) {
	m := mesh4()
	var got []Packet
	var at []Coord
	ok := m.Inject(Coord{1, 1}, Packet{DX: 0, DY: 0, DestAxon: 42}, 0)
	if !ok {
		t.Fatal("injection rejected on an empty mesh")
	}
	m.Step(0, func(dst Coord, p Packet) {
		got = append(got, p)
		at = append(at, dst)
	})
	if len(got) != 1 || got[0].DestAxon != 42 || at[0] != (Coord{1, 1}) {
		t.Fatalf("delivery = %v at %v", got, at)
	}
	if s := m.Stats(); s.Delivered != 1 || s.Injected != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestXYRoutingPathLength(t *testing.T) {
	m := mesh4()
	src, dst := Coord{0, 0}, Coord{3, 2}
	m.Inject(src, Packet{DX: 3, DY: 2, DestAxon: 7}, 0)
	var deliveredAt Coord
	var pkt Packet
	n := 0
	for c := int64(0); c < 50 && n == 0; c++ {
		m.Step(c, func(d Coord, p Packet) {
			deliveredAt = d
			pkt = p
			n++
		})
	}
	if n != 1 {
		t.Fatal("packet never delivered")
	}
	if deliveredAt != dst {
		t.Fatalf("delivered at %v, want %v", deliveredAt, dst)
	}
	if int(pkt.Hops) != HopCount(src, dst) {
		t.Fatalf("hops = %d, want %d (minimal XY path)", pkt.Hops, HopCount(src, dst))
	}
	if pkt.DX != 0 || pkt.DY != 0 {
		t.Fatalf("packet delivered with residual displacement (%d,%d)", pkt.DX, pkt.DY)
	}
}

func TestAllPairsDelivery(t *testing.T) {
	// Every (src,dst) pair on a 4x4 mesh must deliver with minimal hops.
	for sy := 0; sy < 4; sy++ {
		for sx := 0; sx < 4; sx++ {
			for dy := 0; dy < 4; dy++ {
				for dx := 0; dx < 4; dx++ {
					m := mesh4()
					src := Coord{int16(sx), int16(sy)}
					dst := Coord{int16(dx), int16(dy)}
					m.Inject(src, Packet{DX: dst.X - src.X, DY: dst.Y - src.Y}, 0)
					delivered := false
					for c := int64(0); c < 40 && !delivered; c++ {
						m.Step(c, func(d Coord, p Packet) {
							if d != dst {
								t.Fatalf("src %v dst %v: delivered at %v", src, dst, d)
							}
							if int(p.Hops) != HopCount(src, dst) {
								t.Fatalf("src %v dst %v: hops %d want %d", src, dst, p.Hops, HopCount(src, dst))
							}
							delivered = true
						})
					}
					if !delivered {
						t.Fatalf("src %v dst %v: never delivered", src, dst)
					}
				}
			}
		}
	}
}

func TestConservationUnderRandomTraffic(t *testing.T) {
	m := NewMesh(Config{Width: 8, Height: 8, BufDepth: 4})
	r := rng.NewSplitMix64(17)
	injected := uint64(0)
	delivered := uint64(0)
	deliver := func(_ Coord, _ Packet) { delivered++ }
	for c := int64(0); c < 2000; c++ {
		if c < 1000 {
			for k := 0; k < 4; k++ {
				src := Coord{int16(r.Intn(8)), int16(r.Intn(8))}
				dst := Coord{int16(r.Intn(8)), int16(r.Intn(8))}
				if m.Inject(src, Packet{DX: dst.X - src.X, DY: dst.Y - src.Y}, c) {
					injected++
				}
			}
		}
		m.Step(c, deliver)
	}
	if m.InFlight() != 0 {
		t.Fatalf("%d packets stuck in the mesh after drain", m.InFlight())
	}
	if injected != delivered {
		t.Fatalf("injected %d != delivered %d (loss or duplication)", injected, delivered)
	}
	s := m.Stats()
	if s.Injected != injected || s.Delivered != delivered {
		t.Fatalf("stats disagree: %+v vs injected=%d delivered=%d", s, injected, delivered)
	}
}

func TestBackPressureRejectsWhenFull(t *testing.T) {
	m := NewMesh(Config{Width: 2, Height: 1, BufDepth: 2})
	// Fill the local FIFO at (0,0) without stepping.
	okCount := 0
	for i := 0; i < 5; i++ {
		if m.Inject(Coord{0, 0}, Packet{DX: 1}, 0) {
			okCount++
		}
	}
	if okCount != 2 {
		t.Fatalf("accepted %d injections into a depth-2 FIFO, want 2", okCount)
	}
	if s := m.Stats(); s.RejectedInjections != 3 {
		t.Fatalf("RejectedInjections = %d, want 3", s.RejectedInjections)
	}
}

func TestInjectPanicsOutsideMesh(t *testing.T) {
	m := mesh4()
	for name, fn := range map[string]func(){
		"bad src": func() { m.Inject(Coord{9, 0}, Packet{}, 0) },
		"bad dst": func() { m.Inject(Coord{0, 0}, Packet{DX: 100}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLatencyAccounting(t *testing.T) {
	m := mesh4()
	m.RecordLatencies(true)
	m.Inject(Coord{0, 0}, Packet{DX: 3, DY: 3}, 0)
	for c := int64(0); c < 30; c++ {
		m.Step(c, nil)
	}
	s := m.Stats()
	if s.Delivered != 1 {
		t.Fatal("packet not delivered")
	}
	// 6 hops minimum plus per-router service: latency must be >= 7 cycles.
	if s.MeanLatency() < 7 {
		t.Fatalf("mean latency %.1f implausibly low for 6 hops", s.MeanLatency())
	}
	if s.MaxLatency < uint64(s.MeanLatency()) {
		t.Fatal("max latency below mean")
	}
	if len(m.Latencies()) != 1 {
		t.Fatalf("recorded %d latencies, want 1", len(m.Latencies()))
	}
	if s.MeanHops() != 6 {
		t.Fatalf("mean hops %.1f, want 6", s.MeanHops())
	}
}

func TestResetStats(t *testing.T) {
	m := mesh4()
	m.RecordLatencies(true)
	m.Inject(Coord{0, 0}, Packet{DX: 1}, 0)
	for c := int64(0); c < 10; c++ {
		m.Step(c, nil)
	}
	m.ResetStats()
	if m.Stats() != (Stats{}) || len(m.Latencies()) != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestDrain(t *testing.T) {
	m := mesh4()
	m.Inject(Coord{0, 0}, Packet{DX: 3, DY: 3}, 0)
	used := m.Drain(0, 100, nil)
	if used >= 100 || m.InFlight() != 0 {
		t.Fatalf("drain used %d cycles, in-flight %d", used, m.InFlight())
	}
	// Draining an empty mesh is free.
	if m.Drain(0, 100, nil) != 0 {
		t.Fatal("empty drain must return 0")
	}
}

func TestNewMeshPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero width":  {Width: 0, Height: 1, BufDepth: 1},
		"zero height": {Width: 1, Height: 0, BufDepth: 1},
		"zero buf":    {Width: 1, Height: 1, BufDepth: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewMesh(cfg)
		}()
	}
}

func TestSaturationLatencyGrows(t *testing.T) {
	// Mean latency under heavy load must exceed light-load latency:
	// the congestion behaviour the F3 experiment sweeps.
	run := func(perCycle int) float64 {
		m := NewMesh(Config{Width: 8, Height: 8, BufDepth: 4})
		r := rng.NewSplitMix64(3)
		for c := int64(0); c < 600; c++ {
			if c < 400 {
				for k := 0; k < perCycle; k++ {
					src := Coord{int16(r.Intn(8)), int16(r.Intn(8))}
					dst := Coord{int16(r.Intn(8)), int16(r.Intn(8))}
					m.Inject(src, Packet{DX: dst.X - src.X, DY: dst.Y - src.Y}, c)
				}
			}
			m.Step(c, nil)
		}
		return m.Stats().MeanLatency()
	}
	light, heavy := run(1), run(24)
	if heavy <= light {
		t.Fatalf("latency under load (%.1f) not above light load (%.1f)", heavy, light)
	}
}

func BenchmarkMeshStepLight(b *testing.B) {
	m := NewMesh(Config{Width: 16, Height: 16, BufDepth: 4})
	r := rng.NewSplitMix64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := int64(i)
		src := Coord{int16(r.Intn(16)), int16(r.Intn(16))}
		dst := Coord{int16(r.Intn(16)), int16(r.Intn(16))}
		m.Inject(src, Packet{DX: dst.X - src.X, DY: dst.Y - src.Y}, c)
		m.Step(c, nil)
	}
}

func BenchmarkMeshStepSaturated(b *testing.B) {
	m := NewMesh(Config{Width: 16, Height: 16, BufDepth: 4})
	r := rng.NewSplitMix64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := int64(i)
		for k := 0; k < 32; k++ {
			src := Coord{int16(r.Intn(16)), int16(r.Intn(16))}
			dst := Coord{int16(r.Intn(16)), int16(r.Intn(16))}
			m.Inject(src, Packet{DX: dst.X - src.X, DY: dst.Y - src.Y}, c)
		}
		m.Step(c, nil)
	}
}
