// Package noc models the chip's network-on-chip: a 2-D mesh of 5-port
// routers carrying spike packets with relative (dx, dy) addresses under
// dimension-order (X-then-Y) routing.
//
// The mesh is used at two fidelities:
//
//   - Functional: the simulator only needs to know which core and axon a
//     spike reaches and how many hops it travelled; HopCount and Route
//     answer that without simulating cycles.
//
//   - Cycle-level: for the NoC experiments (latency vs injection rate,
//     saturation, placement locality) Mesh simulates routers with finite
//     input FIFOs, one-flit-per-port-per-cycle forwarding, and rotating
//     arbitration. XY routing on a mesh is deadlock-free, and local
//     delivery always drains, so packets are never dropped — congestion
//     shows up as queueing latency and injection back-pressure instead.
package noc

import "fmt"

// Port indexes a router's five ports.
type Port uint8

// Router port order: Local first, then the four compass directions.
const (
	PortLocal Port = iota
	PortNorth
	PortEast
	PortSouth
	PortWest
	NumPorts
)

// String returns the conventional single-letter port name.
func (p Port) String() string {
	switch p {
	case PortLocal:
		return "L"
	case PortNorth:
		return "N"
	case PortEast:
		return "E"
	case PortSouth:
		return "S"
	case PortWest:
		return "W"
	default:
		return fmt.Sprintf("Port(%d)", uint8(p))
	}
}

// Coord addresses a router (equivalently, a core) on the mesh. X grows
// eastward, Y grows southward.
type Coord struct {
	X, Y int16
}

// HopCount returns the dimension-order path length between two routers.
func HopCount(a, b Coord) int {
	dx, dy := int(b.X)-int(a.X), int(b.Y)-int(a.Y)
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Packet is one spike in flight. DX/DY are the remaining displacement in
// router hops (decremented as the packet moves, mirroring the relative
// addressing the hardware uses); DestAxon and DeliverSlot tell the
// destination core where and when to schedule the spike.
type Packet struct {
	DX, DY      int16
	DestAxon    uint8
	DeliverSlot uint8
	// InjectCycle records when the packet entered the mesh, for latency
	// accounting.
	InjectCycle int64
	// Hops counts router-to-router moves taken so far.
	Hops uint16
}

// outputPort returns the port this packet wants next under XY routing.
func (p *Packet) outputPort() Port {
	switch {
	case p.DX > 0:
		return PortEast
	case p.DX < 0:
		return PortWest
	case p.DY > 0:
		return PortSouth
	case p.DY < 0:
		return PortNorth
	default:
		return PortLocal
	}
}

// fifo is a fixed-capacity packet queue.
type fifo struct {
	buf  []Packet
	head int
	n    int
}

func newFIFO(cap int) fifo { return fifo{buf: make([]Packet, cap)} }

func (f *fifo) full() bool  { return f.n == len(f.buf) }
func (f *fifo) empty() bool { return f.n == 0 }
func (f *fifo) len() int    { return f.n }

func (f *fifo) push(p Packet) {
	f.buf[(f.head+f.n)%len(f.buf)] = p
	f.n++
}

func (f *fifo) peek() *Packet { return &f.buf[f.head] }

func (f *fifo) pop() Packet {
	p := f.buf[f.head]
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	return p
}

// router is one mesh node: five input FIFOs, one per port.
type router struct {
	in [NumPorts]fifo
}

// Stats aggregates mesh-level accounting.
type Stats struct {
	// Injected counts packets accepted into the mesh.
	Injected uint64
	// Delivered counts packets handed to their destination core.
	Delivered uint64
	// RejectedInjections counts Inject calls refused because the source
	// FIFO was full (back-pressure at the core-to-router interface).
	RejectedInjections uint64
	// LatencySum accumulates delivery latencies in cycles.
	LatencySum uint64
	// MaxLatency is the largest single-packet latency observed.
	MaxLatency uint64
	// HopSum accumulates per-packet hop counts at delivery.
	HopSum uint64
	// StallEvents counts head-of-line packets that could not move this
	// cycle (output busy or downstream FIFO full).
	StallEvents uint64
}

// MeanLatency returns the average delivery latency in cycles.
func (s Stats) MeanLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Delivered)
}

// MeanHops returns the average hop count of delivered packets.
func (s Stats) MeanHops() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.HopSum) / float64(s.Delivered)
}

// DeliverFunc receives a packet that reached its destination router.
type DeliverFunc func(dst Coord, p Packet)

// Config sets the mesh dimensions and router buffering.
type Config struct {
	// Width and Height are the mesh dimensions in routers.
	Width, Height int
	// BufDepth is the capacity of each input FIFO (flits).
	BufDepth int
}

// Mesh is a cycle-level model of the spike NoC.
type Mesh struct {
	cfg     Config
	routers []router
	stats   Stats
	// latencies, when non-nil, records every delivered packet's latency
	// for percentile analysis.
	latencies []float64
	record    bool
}

// NewMesh builds a mesh. It panics on non-positive dimensions or buffer
// depth (configuration errors, not runtime conditions).
func NewMesh(cfg Config) *Mesh {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic("noc: mesh dimensions must be positive")
	}
	if cfg.BufDepth <= 0 {
		panic("noc: buffer depth must be positive")
	}
	m := &Mesh{cfg: cfg, routers: make([]router, cfg.Width*cfg.Height)}
	for i := range m.routers {
		for p := range m.routers[i].in {
			m.routers[i].in[p] = newFIFO(cfg.BufDepth)
		}
	}
	return m
}

// RecordLatencies enables per-packet latency capture (for percentiles).
func (m *Mesh) RecordLatencies(on bool) { m.record = on }

// Latencies returns the captured per-packet latencies.
func (m *Mesh) Latencies() []float64 { return m.latencies }

// Stats returns a copy of the mesh counters.
func (m *Mesh) Stats() Stats { return m.stats }

// ResetStats zeroes counters and captured latencies.
func (m *Mesh) ResetStats() {
	m.stats = Stats{}
	m.latencies = nil
}

func (m *Mesh) at(c Coord) *router {
	return &m.routers[int(c.Y)*m.cfg.Width+int(c.X)]
}

func (m *Mesh) inBounds(c Coord) bool {
	return c.X >= 0 && int(c.X) < m.cfg.Width && c.Y >= 0 && int(c.Y) < m.cfg.Height
}

// Inject offers a packet to the local input FIFO of the router at src.
// It reports whether the packet was accepted; a false return models
// back-pressure into the core's output stage.
func (m *Mesh) Inject(src Coord, p Packet, cycle int64) bool {
	if !m.inBounds(src) {
		panic(fmt.Sprintf("noc: inject at %v outside %dx%d mesh", src, m.cfg.Width, m.cfg.Height))
	}
	dst := Coord{src.X + p.DX, src.Y + p.DY}
	if !m.inBounds(dst) {
		panic(fmt.Sprintf("noc: packet from %v targets %v outside mesh", src, dst))
	}
	f := &m.at(src).in[PortLocal]
	if f.full() {
		m.stats.RejectedInjections++
		return false
	}
	p.InjectCycle = cycle
	f.push(p)
	m.stats.Injected++
	return true
}

// InFlight returns the number of packets buffered anywhere in the mesh.
func (m *Mesh) InFlight() int {
	total := 0
	for i := range m.routers {
		for p := range m.routers[i].in {
			total += m.routers[i].in[p].len()
		}
	}
	return total
}

// move describes one committed transfer for the current cycle.
type move struct {
	src  Coord
	port Port // input port at src to pop from
	out  Port // output direction
}

// Step advances the mesh one cycle. Each router forwards at most one
// packet per output port per cycle, chosen from its input FIFO heads with
// rotating priority. deliver receives packets that exit at their
// destination's local port; it may be nil.
func (m *Mesh) Step(cycle int64, deliver DeliverFunc) {
	moves := make([]move, 0, len(m.routers))

	// Phase 1: decide. Capacity checks are conservative (start-of-cycle
	// occupancy), which only delays packets, never drops them.
	for y := 0; y < m.cfg.Height; y++ {
		for x := 0; x < m.cfg.Width; x++ {
			src := Coord{int16(x), int16(y)}
			r := m.at(src)
			var outTaken [NumPorts]bool
			// Rotate which input port gets first pick this cycle.
			start := int(cycle+int64(x)+int64(y)) % int(NumPorts)
			for k := 0; k < int(NumPorts); k++ {
				port := Port((start + k) % int(NumPorts))
				f := &r.in[port]
				if f.empty() {
					continue
				}
				out := f.peek().outputPort()
				if outTaken[out] {
					m.stats.StallEvents++
					continue
				}
				if out != PortLocal {
					nb, nbPort := m.neighbor(src, out)
					if m.at(nb).in[nbPort].full() {
						m.stats.StallEvents++
						continue
					}
				}
				outTaken[out] = true
				moves = append(moves, move{src, port, out})
			}
		}
	}

	// Phase 2: execute. Pops happen before pushes, and each input FIFO
	// receives at most one push per cycle (one upstream output port maps
	// to it), so the conservative capacity check from phase 1 holds.
	type push struct {
		dst  Coord
		port Port
		pkt  Packet
	}
	pushes := make([]push, 0, len(moves))
	for _, mv := range moves {
		pkt := m.at(mv.src).in[mv.port].pop()
		if mv.out == PortLocal {
			m.stats.Delivered++
			lat := uint64(cycle - pkt.InjectCycle + 1)
			m.stats.LatencySum += lat
			if lat > m.stats.MaxLatency {
				m.stats.MaxLatency = lat
			}
			m.stats.HopSum += uint64(pkt.Hops)
			if m.record {
				m.latencies = append(m.latencies, float64(lat))
			}
			if deliver != nil {
				deliver(mv.src, pkt)
			}
			continue
		}
		nb, nbPort := m.neighbor(mv.src, mv.out)
		switch mv.out {
		case PortEast:
			pkt.DX--
		case PortWest:
			pkt.DX++
		case PortSouth:
			pkt.DY--
		case PortNorth:
			pkt.DY++
		}
		pkt.Hops++
		pushes = append(pushes, push{nb, nbPort, pkt})
	}
	for _, p := range pushes {
		m.at(p.dst).in[p.port].push(p.pkt)
	}
}

// neighbor returns the router reached by leaving src through out, and the
// input port the packet arrives on there.
func (m *Mesh) neighbor(src Coord, out Port) (Coord, Port) {
	switch out {
	case PortEast:
		return Coord{src.X + 1, src.Y}, PortWest
	case PortWest:
		return Coord{src.X - 1, src.Y}, PortEast
	case PortSouth:
		return Coord{src.X, src.Y + 1}, PortNorth
	case PortNorth:
		return Coord{src.X, src.Y - 1}, PortSouth
	default:
		panic("noc: neighbor of local port")
	}
}

// Drain steps the mesh until empty or maxCycles elapse, returning the
// number of cycles used. Useful for flushing experiments.
func (m *Mesh) Drain(fromCycle int64, maxCycles int, deliver DeliverFunc) int {
	for c := 0; c < maxCycles; c++ {
		if m.InFlight() == 0 {
			return c
		}
		m.Step(fromCycle+int64(c), deliver)
	}
	return maxCycles
}
