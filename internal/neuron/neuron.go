// Package neuron implements the digital integrate-and-fire neuron used by
// neurosynaptic cores.
//
// The model follows the TrueNorth-class digital neuron: a signed membrane
// potential updated with integer arithmetic only, so that the behaviour of a
// neuron is a bit-exact function of its parameters, its input spikes and the
// state of the core's LFSR. The per-tick update is:
//
//  1. Synaptic integration: for every spike arriving on a connected axon of
//     type G, add the neuron's signed weight SynWeight[G] (or, in stochastic
//     synapse mode, add sign(w) with probability |w|/256).
//  2. Leak: add Leak (optionally stochastic, optionally reversed so that
//     the leak direction follows the sign of the membrane potential).
//  3. Threshold: draw a stochastic threshold offset eta from the LFSR
//     (masked by MaskBits), spike if V >= Threshold + eta, then reset
//     according to the reset mode. A symmetric negative threshold either
//     saturates or resets the potential on the negative side.
//
// The draw order from the LFSR is fixed and documented: stochastic synapse
// draws happen in axon order during integration, then one leak draw (if the
// leak is stochastic), then one threshold draw (if MaskBits > 0). Simulators
// must preserve this order to remain bit-reproducible.
package neuron

import (
	"fmt"

	"github.com/neurogo/neurogo/internal/rng"
)

// AxonType selects which of the four per-neuron signed weights an incoming
// spike uses. Hardware tags every axon (core input line) with one type.
type AxonType uint8

// NumAxonTypes is the number of distinct axon types per core.
const NumAxonTypes = 4

// ResetMode selects what happens to the membrane potential after a spike.
type ResetMode uint8

const (
	// ResetNormal sets V to the configured reset value ResetV.
	ResetNormal ResetMode = iota
	// ResetLinear subtracts the (deterministic part of the) threshold,
	// preserving any integration surplus across the spike.
	ResetLinear
	// ResetNone leaves V untouched; combined with a decaying leak this
	// yields burst-like behaviour.
	ResetNone
)

// String returns a human-readable reset-mode name.
func (m ResetMode) String() string {
	switch m {
	case ResetNormal:
		return "normal"
	case ResetLinear:
		return "linear"
	case ResetNone:
		return "none"
	default:
		return fmt.Sprintf("ResetMode(%d)", uint8(m))
	}
}

// Membrane potential bounds. The hardware register is 20-bit two's
// complement; all arithmetic saturates at these rails instead of wrapping.
const (
	VMax = 1<<19 - 1
	VMin = -(1 << 19)
)

// Weight bounds for the per-axon-type signed weights (9-bit signed in
// hardware, restricted to +/-255 so stochastic mode's 8-bit comparison is
// exact).
const (
	WeightMax = 255
	WeightMin = -255
)

// MaxThreshold bounds the positive and negative thresholds (18-bit).
const MaxThreshold = 1<<18 - 1

// MaxMaskBits bounds the stochastic-threshold mask width.
const MaxMaskBits = 8

// MaxDelay is the largest axonal delay, in ticks, a spike can carry
// (4-bit field, and delay 0 is reserved: every spike takes at least one
// tick to arrive).
const MaxDelay = 15

// Params is the complete per-neuron configuration. The zero value is a
// permanently silent neuron (threshold 0 fires constantly, so Validate
// rejects it); use Default for a sane starting point.
type Params struct {
	// SynWeight holds the four signed weights, one per axon type.
	SynWeight [NumAxonTypes]int16
	// SynStochastic selects, per axon type, probabilistic integration:
	// each arriving spike adds sign(w) with probability |w|/256.
	SynStochastic [NumAxonTypes]bool
	// Leak is added to the potential every tick.
	Leak int16
	// LeakStochastic applies sign(Leak) with probability |Leak|/256
	// instead of the full leak.
	LeakStochastic bool
	// LeakReversal makes the leak direction follow the sign of V
	// (sign(0) counts as 0, so a neuron resting exactly at 0 does not
	// drift). Useful for amplifying or symmetric-decay dynamics.
	LeakReversal bool
	// Threshold is the positive firing threshold alpha (> 0).
	Threshold int32
	// NegThreshold is the magnitude beta of the negative floor (>= 0).
	NegThreshold int32
	// MaskBits is the stochastic-threshold width TM: each tick a uniform
	// eta in [0, 2^TM) is added to both thresholds. 0 disables it.
	MaskBits uint8
	// Reset selects the post-spike reset behaviour on the positive side.
	Reset ResetMode
	// NegSaturate chooses the negative-side policy: true saturates V at
	// -NegThreshold; false resets V to -ResetV on a negative crossing.
	NegSaturate bool
	// ResetV is the reset potential R used by ResetNormal.
	ResetV int32
	// Delay is the axonal delay (1..15 ticks) attached to emitted spikes.
	Delay uint8
}

// Default returns a plain deterministic integrator: unit excitatory weight
// on type 0, inhibitory -1 on type 1, threshold 1, normal reset to 0,
// delay 1.
func Default() Params {
	return Params{
		SynWeight: [NumAxonTypes]int16{1, -1, 0, 0},
		Threshold: 1,
		Reset:     ResetNormal,
		Delay:     1,
	}
}

// Validate reports whether the parameters are representable in hardware.
func (p *Params) Validate() error {
	for g, w := range p.SynWeight {
		if w < WeightMin || w > WeightMax {
			return fmt.Errorf("neuron: SynWeight[%d]=%d outside [%d,%d]", g, w, WeightMin, WeightMax)
		}
	}
	if p.Leak < WeightMin || p.Leak > WeightMax {
		return fmt.Errorf("neuron: Leak=%d outside [%d,%d]", p.Leak, WeightMin, WeightMax)
	}
	if p.Threshold <= 0 || p.Threshold > MaxThreshold {
		return fmt.Errorf("neuron: Threshold=%d outside (0,%d]", p.Threshold, MaxThreshold)
	}
	if p.NegThreshold < 0 || p.NegThreshold > MaxThreshold {
		return fmt.Errorf("neuron: NegThreshold=%d outside [0,%d]", p.NegThreshold, MaxThreshold)
	}
	if p.MaskBits > MaxMaskBits {
		return fmt.Errorf("neuron: MaskBits=%d exceeds %d", p.MaskBits, MaxMaskBits)
	}
	if p.Reset > ResetNone {
		return fmt.Errorf("neuron: invalid reset mode %d", p.Reset)
	}
	if p.ResetV < VMin || p.ResetV > VMax {
		return fmt.Errorf("neuron: ResetV=%d outside membrane range", p.ResetV)
	}
	if p.Delay < 1 || p.Delay > MaxDelay {
		return fmt.Errorf("neuron: Delay=%d outside [1,%d]", p.Delay, MaxDelay)
	}
	return nil
}

// thresholdMask returns the eta mask 2^TM - 1.
func (p *Params) thresholdMask() uint32 {
	return 1<<uint32(p.MaskBits) - 1
}

// SynDrawsOn reports whether a spike arriving on a type-g axon consumes
// an LFSR draw: stochastic synapse mode with a nonzero weight. A
// stochastic synapse whose weight is zero short-circuits before drawing
// (see Integrate), so it is effectively a deterministic zero-weight
// synapse.
func (p *Params) SynDrawsOn(g AxonType) bool {
	return p.SynStochastic[g] && p.SynWeight[g] != 0
}

// DeterministicWeight returns the exact per-spike contribution of a
// type-g arrival when SynDrawsOn(g) is false: the signed weight for a
// deterministic synapse, 0 for a zero-weight stochastic one. Meaningless
// (and unused) when SynDrawsOn(g) is true.
func (p *Params) DeterministicWeight(g AxonType) int32 {
	if p.SynStochastic[g] {
		return 0
	}
	return int32(p.SynWeight[g])
}

// LeakDraws reports whether the leak step consumes an LFSR draw:
// stochastic leak with a nonzero magnitude (a zero-magnitude stochastic
// leak short-circuits before drawing, see applyLeak).
func (p *Params) LeakDraws() bool {
	return p.LeakStochastic && p.Leak != 0
}

// DeterministicLeak returns the exact per-tick leak (before any
// LeakReversal sign flip) when LeakDraws is false.
func (p *Params) DeterministicLeak() int32 {
	if p.LeakStochastic {
		return 0
	}
	return int32(p.Leak)
}

// IntegrationDeterministic reports whether phase-1 synaptic integration
// for this neuron never consumes an LFSR draw, for any axon type.
func (p *Params) IntegrationDeterministic() bool {
	for g := AxonType(0); g < NumAxonTypes; g++ {
		if p.SynDrawsOn(g) {
			return false
		}
	}
	return true
}

// FireDeterministic reports whether the leak-and-threshold step (phase
// 2) never consumes an LFSR draw: no effective stochastic leak and no
// stochastic threshold.
func (p *Params) FireDeterministic() bool {
	return !p.LeakDraws() && p.MaskBits == 0
}

// Deterministic reports whether the neuron's whole tick update is a
// pure function of its inputs and previous potential — it never touches
// the core's LFSR. Deterministic neurons are exactly the ones a core's
// precompiled integration plan may evaluate out of order (batched
// column accumulation, flat leak/fire sweep) without perturbing the
// LFSR draw schedule of the remaining stochastic neurons.
func (p *Params) Deterministic() bool {
	return p.IntegrationDeterministic() && p.FireDeterministic()
}

// satAdd adds b to a, saturating at the membrane rails. It is the only
// addition the membrane ever sees; core's planned integration path
// mirrors it with an int32 clamp (see core/plan.go clampV), which is
// identical whenever the operands cannot overflow int32.
func satAdd(a, b int32) int32 {
	s := int64(a) + int64(b)
	if s > VMax {
		return VMax
	}
	if s < VMin {
		return VMin
	}
	return int32(s)
}

// Integrate applies one incoming spike on an axon of type g to membrane
// potential v and returns the new potential. In stochastic-synapse mode it
// consumes one LFSR draw.
func Integrate(v int32, p *Params, g AxonType, l *rng.LFSR) int32 {
	w := int32(p.SynWeight[g])
	if !p.SynStochastic[g] {
		return satAdd(v, w)
	}
	mag := w
	if mag < 0 {
		mag = -mag
	}
	if mag > 0 && l.Draw8() < uint8(mag) {
		if w > 0 {
			return satAdd(v, 1)
		}
		return satAdd(v, -1)
	}
	return v
}

// applyLeak performs step 2 of the update: deterministic or stochastic,
// optionally sign-reversed by the membrane potential.
func applyLeak(v int32, p *Params, l *rng.LFSR) int32 {
	leak := int32(p.Leak)
	if p.LeakStochastic {
		mag := leak
		if mag < 0 {
			mag = -mag
		}
		// One draw is consumed whenever stochastic leak is enabled,
		// regardless of outcome, to keep the draw schedule static.
		hit := mag > 0 && l.Draw8() < uint8(mag)
		if !hit {
			leak = 0
		} else if leak > 0 {
			leak = 1
		} else {
			leak = -1
		}
	}
	if p.LeakReversal {
		switch {
		case v > 0:
			// keep leak as configured
		case v < 0:
			leak = -leak
		default:
			leak = 0
		}
	}
	return satAdd(v, leak)
}

// LeakFire performs the leak and threshold steps for one tick and returns
// the new membrane potential plus whether the neuron spiked. It consumes
// LFSR draws per the documented schedule.
func LeakFire(v int32, p *Params, l *rng.LFSR) (int32, bool) {
	v = applyLeak(v, p, l)

	var eta int32
	if p.MaskBits > 0 {
		eta = int32(l.DrawMask(p.thresholdMask()))
	}

	if v >= p.Threshold+eta {
		switch p.Reset {
		case ResetNormal:
			v = p.ResetV
		case ResetLinear:
			v = satAdd(v, -p.Threshold)
		case ResetNone:
			// leave v
		}
		return v, true
	}

	if p.NegSaturate {
		if v < -p.NegThreshold {
			v = -p.NegThreshold
		}
		return v, false
	}
	// Negative reset: crossing the negative threshold always applies
	// normal-reset semantics mirrored about zero (V becomes -ResetV),
	// independent of the positive-side reset mode. With a negative ResetV
	// this "flips" the potential above zero, which is how the rebound
	// behaviours in the gallery are built.
	if v < -(p.NegThreshold + eta) {
		v = -p.ResetV
	}
	return v, false
}

// Step runs a full tick for a standalone neuron: nExc spikes on axon type
// 0, nInh spikes on type 1, then leak and fire. It is a convenience for
// single-neuron studies and the behaviour gallery; cores inline the same
// sequence across their 256 neurons.
func Step(v int32, p *Params, nExc, nInh int, l *rng.LFSR) (int32, bool) {
	for i := 0; i < nExc; i++ {
		v = Integrate(v, p, 0, l)
	}
	for i := 0; i < nInh; i++ {
		v = Integrate(v, p, 1, l)
	}
	return LeakFire(v, p, l)
}
