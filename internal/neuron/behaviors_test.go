package neuron

import (
	"math"
	"testing"
)

// byName runs the gallery and indexes traces by behaviour name.
func byName(t *testing.T) map[string]Trace {
	t.Helper()
	out := make(map[string]Trace)
	for _, b := range Gallery() {
		b := b
		if err := b.Params.Validate(); err != nil {
			t.Fatalf("behaviour %q has invalid params: %v", b.Name, err)
		}
		out[b.Name] = b.Run()
	}
	return out
}

// isis returns the inter-spike intervals of a spike-time list.
func isis(times []int) []int {
	if len(times) < 2 {
		return nil
	}
	out := make([]int, len(times)-1)
	for i := 1; i < len(times); i++ {
		out[i-1] = times[i] - times[i-1]
	}
	return out
}

// groups splits spike times into bursts: spikes within maxGap ticks of the
// previous spike belong to the same group.
func groups(times []int, maxGap int) [][]int {
	var out [][]int
	for _, t := range times {
		if n := len(out); n > 0 && t-out[n-1][len(out[n-1])-1] <= maxGap {
			out[n-1] = append(out[n-1], t)
			continue
		}
		out = append(out, []int{t})
	}
	return out
}

func TestGalleryHasTwentyDistinctBehaviors(t *testing.T) {
	g := Gallery()
	if len(g) != 20 {
		t.Fatalf("gallery has %d entries, want 20", len(g))
	}
	seen := map[string]bool{}
	for _, b := range g {
		if seen[b.Name] {
			t.Errorf("duplicate behaviour name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Description == "" {
			t.Errorf("behaviour %q lacks a description", b.Name)
		}
		if b.Window <= 0 || b.Stimulus == nil {
			t.Errorf("behaviour %q has no window or stimulus", b.Name)
		}
	}
}

func TestGalleryDeterministicReruns(t *testing.T) {
	for _, b := range Gallery() {
		b := b
		a1, a2 := b.Run(), b.Run()
		if len(a1.SpikeTimes) != len(a2.SpikeTimes) {
			t.Fatalf("%s: rerun changed spike count %d -> %d", b.Name, len(a1.SpikeTimes), len(a2.SpikeTimes))
		}
		for i := range a1.SpikeTimes {
			if a1.SpikeTimes[i] != a2.SpikeTimes[i] {
				t.Fatalf("%s: rerun changed spike %d", b.Name, i)
			}
		}
	}
}

func TestTonicSpiking(t *testing.T) {
	tr := byName(t)["tonic-spiking"]
	if len(tr.SpikeTimes) < 8 {
		t.Fatalf("too few spikes: %d", len(tr.SpikeTimes))
	}
	for _, isi := range isis(tr.SpikeTimes) {
		if isi != 4 {
			t.Fatalf("tonic ISI = %d, want uniformly 4 (times %v)", isi, tr.SpikeTimes)
		}
	}
}

func TestPhasicSpiking(t *testing.T) {
	tr := byName(t)["phasic-spiking"]
	if len(tr.SpikeTimes) != 1 {
		t.Fatalf("phasic must spike exactly once, got %v", tr.SpikeTimes)
	}
	if tr.SpikeTimes[0] > 5 {
		t.Fatalf("phasic spike must be at onset, got t=%d", tr.SpikeTimes[0])
	}
}

func TestTonicBursting(t *testing.T) {
	tr := byName(t)["tonic-bursting"]
	gs := groups(tr.SpikeTimes, 2)
	if len(gs) < 3 {
		t.Fatalf("want >=3 bursts, got %d (%v)", len(gs), tr.SpikeTimes)
	}
	for i, g := range gs {
		if len(g) < 3 {
			t.Fatalf("burst %d has %d spikes, want >=3 (%v)", i, len(g), tr.SpikeTimes)
		}
	}
	// Bursts must be separated by silence of at least 3 ticks.
	for i := 1; i < len(gs); i++ {
		gap := gs[i][0] - gs[i-1][len(gs[i-1])-1]
		if gap < 3 {
			t.Fatalf("bursts %d,%d separated by only %d ticks", i-1, i, gap)
		}
	}
}

func TestPhasicBursting(t *testing.T) {
	tr := byName(t)["phasic-bursting"]
	if len(tr.SpikeTimes) != 5 {
		t.Fatalf("want a 5-spike burst, got %v", tr.SpikeTimes)
	}
	for i, st := range tr.SpikeTimes {
		if st != i {
			t.Fatalf("burst must be consecutive from t=0, got %v", tr.SpikeTimes)
		}
	}
}

func TestMixedMode(t *testing.T) {
	tr := byName(t)["mixed-mode"]
	if len(tr.SpikeTimes) < 8 {
		t.Fatalf("too few spikes: %v", tr.SpikeTimes)
	}
	// Initial burst: at least 4 consecutive ticks spiking.
	consec := 1
	maxConsec := 1
	for _, isi := range isis(tr.SpikeTimes) {
		if isi == 1 {
			consec++
			if consec > maxConsec {
				maxConsec = consec
			}
		} else {
			consec = 1
		}
	}
	if maxConsec < 4 {
		t.Fatalf("onset burst too short: %v", tr.SpikeTimes)
	}
	// Tail: the last ISIs are regular and > 1.
	iv := isis(tr.SpikeTimes)
	last := iv[len(iv)-1]
	if last < 2 {
		t.Fatalf("tail must be tonic with ISI >= 2, got %d", last)
	}
	for i := len(iv) - 3; i < len(iv); i++ {
		if iv[i] != last {
			t.Fatalf("tail ISIs irregular: %v", iv)
		}
	}
}

func TestSpikeFrequencyAdaptation(t *testing.T) {
	tr := byName(t)["spike-frequency-adaptation"]
	iv := isis(tr.SpikeTimes)
	if len(iv) < 4 {
		t.Fatalf("too few spikes: %v", tr.SpikeTimes)
	}
	distinct := map[int]bool{}
	for i := 1; i < len(iv); i++ {
		if iv[i] < iv[i-1] {
			t.Fatalf("ISIs must be non-decreasing, got %v", iv)
		}
	}
	for _, x := range iv {
		distinct[x] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("adaptation needs at least 2 distinct ISIs, got %v", iv)
	}
}

func TestClass1Excitable(t *testing.T) {
	tr := byName(t)["class-1-excitable"]
	mid := 64
	var first, second int
	for _, st := range tr.SpikeTimes {
		if st < mid {
			first++
		} else {
			second++
		}
	}
	if second <= first {
		t.Fatalf("rate must grow with input: first half %d, second half %d", first, second)
	}
}

func TestClass2Excitable(t *testing.T) {
	tr := byName(t)["class-2-excitable"]
	for _, st := range tr.SpikeTimes {
		if st < 96 {
			t.Fatalf("class 2 must stay silent below the input threshold, spiked at %d", st)
		}
	}
	if len(tr.SpikeTimes) < 2 {
		t.Fatalf("class 2 must fire at a nonzero rate once triggered, got %v", tr.SpikeTimes)
	}
	iv := isis(tr.SpikeTimes)
	for _, x := range iv {
		if x > 6 {
			t.Fatalf("class 2 onset must be at a high rate, ISI %d too long", x)
		}
	}
}

func TestSpikeLatency(t *testing.T) {
	tr := byName(t)["spike-latency"]
	if len(tr.SpikeTimes) != 1 {
		t.Fatalf("want exactly one spike, got %v", tr.SpikeTimes)
	}
	if lat := tr.SpikeTimes[0] - 10; lat < 3 {
		t.Fatalf("spike latency %d ticks after input, want >= 3", lat)
	}
}

func TestIntegrator(t *testing.T) {
	tr := byName(t)["integrator"]
	if len(tr.SpikeTimes) != 1 {
		t.Fatalf("integrator must fire once (for the close pair only), got %v", tr.SpikeTimes)
	}
	if st := tr.SpikeTimes[0]; st != 41 {
		t.Fatalf("integrator fired at %d, want 41 (the adjacent pair)", st)
	}
}

func TestReboundSpike(t *testing.T) {
	tr := byName(t)["rebound-spike"]
	if len(tr.SpikeTimes) != 1 {
		t.Fatalf("want exactly one rebound spike, got %v", tr.SpikeTimes)
	}
	if st := tr.SpikeTimes[0]; st <= 20 {
		t.Fatalf("rebound must follow the inhibitory pulse at t=20, got %d", st)
	}
}

func TestReboundBurst(t *testing.T) {
	tr := byName(t)["rebound-burst"]
	if len(tr.SpikeTimes) < 3 {
		t.Fatalf("want a rebound burst of >=3 spikes, got %v", tr.SpikeTimes)
	}
	for _, st := range tr.SpikeTimes {
		if st <= 20 {
			t.Fatalf("all spikes must follow the inhibition, got %v", tr.SpikeTimes)
		}
	}
	for _, isi := range isis(tr.SpikeTimes) {
		if isi != 1 {
			t.Fatalf("rebound burst must be consecutive, got %v", tr.SpikeTimes)
		}
	}
}

func TestThresholdVariability(t *testing.T) {
	tr := byName(t)["threshold-variability"]
	inputs := 256 / 4
	frac := float64(len(tr.SpikeTimes)) / float64(inputs)
	if frac <= 0.05 || frac >= 0.95 {
		t.Fatalf("stochastic threshold fired on %.0f%% of inputs; want strictly between deterministic extremes", frac*100)
	}
	// Contrast: the deterministic twin fires on every input.
	b := Behavior{
		Params: func() Params {
			p := Gallery()[12].Params
			p.MaskBits = 0
			return p
		}(),
		Window:   256,
		Stimulus: Gallery()[12].Stimulus,
	}
	det := b.Run()
	if len(det.SpikeTimes) != inputs {
		t.Fatalf("deterministic twin fired %d times, want %d", len(det.SpikeTimes), inputs)
	}
}

func TestBistability(t *testing.T) {
	tr := byName(t)["bistability"]
	for _, st := range tr.SpikeTimes {
		if st < 10 || st >= 50 {
			t.Fatalf("spike outside the self-sustained window: %d", st)
		}
	}
	if len(tr.SpikeTimes) != 40 {
		t.Fatalf("self-sustained firing must cover every tick in [10,50), got %d spikes", len(tr.SpikeTimes))
	}
}

func TestDepolarizingAfterPotential(t *testing.T) {
	tr := byName(t)["depolarizing-after-potential"]
	if len(tr.SpikeTimes) != 2 {
		t.Fatalf("want 2 spikes (pulse + DAP-assisted), got %v", tr.SpikeTimes)
	}
	// After the first spike the potential sits above zero (the DAP).
	if v := tr.V[tr.SpikeTimes[0]]; v <= 0 {
		t.Fatalf("post-spike potential %d, want > 0 (depolarized)", v)
	}
	// The weak second input (1 spike, weight 2 < threshold 4) fires only
	// because of the after-potential.
	if tr.SpikeTimes[1]-tr.SpikeTimes[0] != 2 {
		t.Fatalf("DAP-assisted spike timing wrong: %v", tr.SpikeTimes)
	}
}

func TestAccommodation(t *testing.T) {
	tr := byName(t)["accommodation"]
	for _, st := range tr.SpikeTimes {
		if st < 60 {
			t.Fatalf("slow ramp must not fire, spiked at %d", st)
		}
	}
	if len(tr.SpikeTimes) == 0 {
		t.Fatal("fast step must fire")
	}
}

func TestInhibitionInducedSpiking(t *testing.T) {
	tr := byName(t)["inhibition-induced-spiking"]
	if len(tr.SpikeTimes) < 5 {
		t.Fatalf("want sustained firing under inhibition, got %v", tr.SpikeTimes)
	}
	for _, st := range tr.SpikeTimes {
		if st < 10 {
			t.Fatalf("spiking before the inhibition began: %d", st)
		}
	}
	// Single spikes, not bursts.
	for _, isi := range isis(tr.SpikeTimes) {
		if isi < 2 {
			t.Fatalf("expected isolated spikes, got ISI %d", isi)
		}
	}
}

func TestInhibitionInducedBursting(t *testing.T) {
	tr := byName(t)["inhibition-induced-bursting"]
	gs := groups(tr.SpikeTimes, 1)
	if len(gs) < 2 {
		t.Fatalf("want >=2 bursts, got %v", tr.SpikeTimes)
	}
	for i, g := range gs {
		if len(g) < 3 {
			t.Fatalf("burst %d has %d spikes, want >=3 (%v)", i, len(g), tr.SpikeTimes)
		}
	}
	for _, st := range tr.SpikeTimes {
		if st < 10 {
			t.Fatalf("burst before the inhibition began: %d", st)
		}
	}
}

func TestStochasticSpontaneous(t *testing.T) {
	tr := byName(t)["stochastic-spontaneous"]
	if len(tr.SpikeTimes) < 5 {
		t.Fatalf("spontaneous firing too rare: %d spikes", len(tr.SpikeTimes))
	}
	iv := isis(tr.SpikeTimes)
	var mean, sq float64
	for _, x := range iv {
		mean += float64(x)
	}
	mean /= float64(len(iv))
	for _, x := range iv {
		d := float64(x) - mean
		sq += d * d
	}
	cv := math.Sqrt(sq/float64(len(iv))) / mean
	if cv < 0.2 {
		t.Fatalf("spontaneous ISIs too regular: CV=%.3f", cv)
	}
}

func TestStochasticTransduction(t *testing.T) {
	tr := byName(t)["stochastic-transduction"]
	rate := float64(len(tr.SpikeTimes)) / 512
	if rate < 0.35 || rate > 0.65 {
		t.Fatalf("transduction rate %.3f, want ~0.5 (p=128/256)", rate)
	}
	// Must be irregular: not all ISIs identical.
	iv := isis(tr.SpikeTimes)
	allSame := true
	for _, x := range iv {
		if x != iv[0] {
			allSame = false
			break
		}
	}
	if allSame {
		t.Fatal("stochastic transduction produced a perfectly periodic train")
	}
}

func BenchmarkGallery(b *testing.B) {
	g := Gallery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, beh := range g {
			beh := beh
			_ = beh.Run()
		}
	}
}
