package neuron

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/neurogo/neurogo/internal/rng"
)

func TestDefaultValidates(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatalf("Default params invalid: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"weight too high", func(p *Params) { p.SynWeight[0] = 256 }},
		{"weight too low", func(p *Params) { p.SynWeight[3] = -256 }},
		{"leak too high", func(p *Params) { p.Leak = 300 }},
		{"leak too low", func(p *Params) { p.Leak = -300 }},
		{"zero threshold", func(p *Params) { p.Threshold = 0 }},
		{"negative threshold", func(p *Params) { p.Threshold = -1 }},
		{"threshold too large", func(p *Params) { p.Threshold = MaxThreshold + 1 }},
		{"neg threshold negative", func(p *Params) { p.NegThreshold = -1 }},
		{"neg threshold too large", func(p *Params) { p.NegThreshold = MaxThreshold + 1 }},
		{"mask too wide", func(p *Params) { p.MaskBits = MaxMaskBits + 1 }},
		{"bad reset mode", func(p *Params) { p.Reset = ResetNone + 1 }},
		{"reset V too high", func(p *Params) { p.ResetV = VMax + 1 }},
		{"reset V too low", func(p *Params) { p.ResetV = VMin - 1 }},
		{"zero delay", func(p *Params) { p.Delay = 0 }},
		{"delay too large", func(p *Params) { p.Delay = MaxDelay + 1 }},
	}
	for _, c := range cases {
		p := Default()
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid params", c.name)
		}
	}
}

func TestResetModeString(t *testing.T) {
	if ResetNormal.String() != "normal" || ResetLinear.String() != "linear" || ResetNone.String() != "none" {
		t.Error("reset mode names wrong")
	}
	if ResetMode(9).String() == "" {
		t.Error("unknown mode must still stringify")
	}
}

func TestIntegrateDeterministic(t *testing.T) {
	p := Default()
	p.SynWeight = [NumAxonTypes]int16{5, -3, 100, 0}
	l := rng.NewLFSR(1)
	if v := Integrate(0, &p, 0, l); v != 5 {
		t.Errorf("type 0: got %d, want 5", v)
	}
	if v := Integrate(0, &p, 1, l); v != -3 {
		t.Errorf("type 1: got %d, want -3", v)
	}
	if v := Integrate(10, &p, 2, l); v != 110 {
		t.Errorf("type 2: got %d, want 110", v)
	}
	if v := Integrate(7, &p, 3, l); v != 7 {
		t.Errorf("type 3 (zero weight): got %d, want 7", v)
	}
}

func TestIntegrateSaturates(t *testing.T) {
	p := Default()
	p.SynWeight[0] = WeightMax
	p.SynWeight[1] = WeightMin
	l := rng.NewLFSR(1)
	if v := Integrate(VMax, &p, 0, l); v != VMax {
		t.Errorf("positive rail: got %d, want %d", v, VMax)
	}
	if v := Integrate(VMin, &p, 1, l); v != VMin {
		t.Errorf("negative rail: got %d, want %d", v, VMin)
	}
}

func TestIntegrateStochasticRate(t *testing.T) {
	for _, w := range []int16{64, 128, 192, -128} {
		p := Default()
		p.SynWeight[0] = w
		p.SynStochastic[0] = true
		l := rng.NewLFSR(0x77)
		n := 1 << 15
		var v int32
		for i := 0; i < n; i++ {
			v = Integrate(v, &p, 0, l)
		}
		mag := float64(w)
		if mag < 0 {
			mag = -mag
		}
		wantMean := mag / 256 * float64(n)
		got := float64(v)
		if w < 0 {
			got = -got
		}
		if math.Abs(got-wantMean)/wantMean > 0.05 {
			t.Errorf("w=%d: accumulated %v, want ~%v (+/-5%%)", w, got, wantMean)
		}
	}
}

func TestIntegrateStochasticUnitSteps(t *testing.T) {
	p := Default()
	p.SynWeight[0] = 200
	p.SynStochastic[0] = true
	l := rng.NewLFSR(3)
	prev := int32(0)
	for i := 0; i < 1000; i++ {
		v := Integrate(prev, &p, 0, l)
		if d := v - prev; d != 0 && d != 1 {
			t.Fatalf("stochastic synapse stepped by %d, want 0 or +1", d)
		}
		prev = v
	}
}

func TestIntegrateStochasticZeroWeight(t *testing.T) {
	p := Default()
	p.SynWeight[0] = 0
	p.SynStochastic[0] = true
	l := rng.NewLFSR(3)
	for i := 0; i < 100; i++ {
		if v := Integrate(0, &p, 0, l); v != 0 {
			t.Fatal("zero stochastic weight must never move V")
		}
	}
}

func TestLeakDeterministic(t *testing.T) {
	p := Default()
	p.Leak = -2
	p.Threshold = 100
	l := rng.NewLFSR(1)
	v, spiked := LeakFire(10, &p, l)
	if spiked || v != 8 {
		t.Errorf("leak -2 from 10: got (%d, %v), want (8, false)", v, spiked)
	}
}

func TestLeakReversal(t *testing.T) {
	p := Default()
	p.Leak = -3
	p.LeakReversal = true
	p.Threshold = 100
	p.NegThreshold = 1000
	l := rng.NewLFSR(1)
	// V > 0: leak applies as configured (decay toward zero).
	if v, _ := LeakFire(10, &p, l); v != 7 {
		t.Errorf("reversal with V>0: got %d, want 7", v)
	}
	// V < 0: leak flips (decay toward zero from below).
	if v, _ := LeakFire(-10, &p, l); v != -7 {
		t.Errorf("reversal with V<0: got %d, want -7", v)
	}
	// V == 0: no drift.
	if v, _ := LeakFire(0, &p, l); v != 0 {
		t.Errorf("reversal with V=0: got %d, want 0", v)
	}
}

func TestLeakReversalAmplifies(t *testing.T) {
	p := Default()
	p.Leak = 2
	p.LeakReversal = true
	p.Threshold = 1000
	p.NegThreshold = MaxThreshold
	l := rng.NewLFSR(1)
	if v, _ := LeakFire(5, &p, l); v != 7 {
		t.Errorf("positive amplification: got %d, want 7", v)
	}
	if v, _ := LeakFire(-5, &p, l); v != -7 {
		t.Errorf("negative amplification: got %d, want -7", v)
	}
}

func TestLeakStochasticRate(t *testing.T) {
	p := Default()
	p.Leak = 64 // probability 1/4 of +1
	p.LeakStochastic = true
	p.Threshold = MaxThreshold
	l := rng.NewLFSR(0x21)
	n := 1 << 15
	var v int32
	for i := 0; i < n; i++ {
		v, _ = LeakFire(v, &p, l)
	}
	want := float64(n) / 4
	if math.Abs(float64(v)-want)/want > 0.07 {
		t.Errorf("stochastic leak accumulated %d, want ~%.0f", v, want)
	}
}

func TestFireAndResetModes(t *testing.T) {
	l := rng.NewLFSR(1)
	base := Default()
	base.Threshold = 10

	normal := base
	normal.Reset = ResetNormal
	normal.ResetV = 2
	if v, s := LeakFire(15, &normal, l); !s || v != 2 {
		t.Errorf("normal reset: got (%d,%v), want (2,true)", v, s)
	}

	linear := base
	linear.Reset = ResetLinear
	if v, s := LeakFire(15, &linear, l); !s || v != 5 {
		t.Errorf("linear reset: got (%d,%v), want (5,true)", v, s)
	}

	none := base
	none.Reset = ResetNone
	if v, s := LeakFire(15, &none, l); !s || v != 15 {
		t.Errorf("non-reset: got (%d,%v), want (15,true)", v, s)
	}
}

func TestNoSpikeBelowThreshold(t *testing.T) {
	p := Default()
	p.Threshold = 100
	l := rng.NewLFSR(5)
	f := func(raw int16) bool {
		v := int32(raw) % 100
		if v < 0 {
			v = -v
		}
		v = v % p.Threshold // strictly below threshold
		nv, spiked := LeakFire(v, &p, l)
		return !spiked && nv == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpikeAtExactThreshold(t *testing.T) {
	p := Default()
	p.Threshold = 10
	l := rng.NewLFSR(1)
	if _, s := LeakFire(10, &p, l); !s {
		t.Error("V == threshold must spike (condition is >=)")
	}
}

func TestNegativeSaturation(t *testing.T) {
	p := Default()
	p.NegThreshold = 5
	p.NegSaturate = true
	l := rng.NewLFSR(1)
	if v, s := LeakFire(-100, &p, l); s || v != -5 {
		t.Errorf("saturation: got (%d,%v), want (-5,false)", v, s)
	}
	// At exactly -beta, nothing happens.
	if v, _ := LeakFire(-5, &p, l); v != -5 {
		t.Errorf("at -beta: got %d, want -5", v)
	}
}

func TestNegativeReset(t *testing.T) {
	p := Default()
	p.NegThreshold = 5
	p.NegSaturate = false
	p.ResetV = -7 // negative crossing flips V to +7
	l := rng.NewLFSR(1)
	if v, s := LeakFire(-6, &p, l); s || v != 7 {
		t.Errorf("negative reset: got (%d,%v), want (7,false)", v, s)
	}
	// No crossing: untouched.
	if v, _ := LeakFire(-5, &p, l); v != -5 {
		t.Errorf("no crossing: got %d, want -5", v)
	}
}

func TestStochasticThresholdRate(t *testing.T) {
	p := Default()
	p.Threshold = 4
	p.MaskBits = 3 // eta in [0,8)
	p.Reset = ResetNormal
	l := rng.NewLFSR(0x99)
	fires := 0
	n := 1 << 14
	for i := 0; i < n; i++ {
		// V=7 fires iff eta <= 3, i.e. with probability 1/2.
		if _, s := LeakFire(7, &p, l); s {
			fires++
		}
	}
	got := float64(fires) / float64(n)
	if math.Abs(got-0.5) > 0.03 {
		t.Errorf("stochastic threshold fire rate %.3f, want ~0.5", got)
	}
}

func TestStochasticThresholdNeverBelowBase(t *testing.T) {
	p := Default()
	p.Threshold = 4
	p.MaskBits = 8
	l := rng.NewLFSR(0x42)
	for i := 0; i < 2000; i++ {
		if _, s := LeakFire(3, &p, l); s {
			t.Fatal("V below the deterministic threshold must never fire (eta >= 0)")
		}
	}
}

func TestMembraneAlwaysInRange(t *testing.T) {
	p := Default()
	p.SynWeight = [NumAxonTypes]int16{WeightMax, WeightMin, 0, 0}
	p.Leak = WeightMax
	p.Threshold = MaxThreshold
	l := rng.NewLFSR(77)
	f := func(startRaw int32, exc, inh uint8) bool {
		v := startRaw % (VMax + 1)
		nv, _ := Step(v, &p, int(exc%8), int(inh%8), l)
		return nv >= VMin && nv <= VMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLinearResetPreservesSurplus(t *testing.T) {
	p := Default()
	p.Threshold = 10
	p.Reset = ResetLinear
	l := rng.NewLFSR(1)
	f := func(surplusRaw uint16) bool {
		surplus := int32(surplusRaw % 1000)
		v, s := LeakFire(p.Threshold+surplus, &p, l)
		return s && v == surplus
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStepDrawOrderReproducible(t *testing.T) {
	p := Default()
	p.SynStochastic[0] = true
	p.SynWeight[0] = 128
	p.LeakStochastic = true
	p.Leak = 32
	p.MaskBits = 4
	run := func() []int32 {
		l := rng.NewLFSR(0xD00D)
		var v int32
		out := make([]int32, 200)
		for t := 0; t < 200; t++ {
			v, _ = Step(v, &p, 2, 0, l)
			out[t] = v
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("identical seeds diverged at tick %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func BenchmarkLeakFireDeterministic(b *testing.B) {
	p := Default()
	p.Threshold = 100
	p.Leak = -1
	l := rng.NewLFSR(1)
	v := int32(50)
	for i := 0; i < b.N; i++ {
		v, _ = LeakFire(v, &p, l)
		if v < 10 {
			v = 50
		}
	}
}

func BenchmarkStepStochastic(b *testing.B) {
	p := Default()
	p.SynStochastic[0] = true
	p.SynWeight[0] = 128
	p.MaskBits = 4
	l := rng.NewLFSR(1)
	var v int32
	for i := 0; i < b.N; i++ {
		v, _ = Step(v, &p, 1, 0, l)
	}
}

func TestDeterminismClassification(t *testing.T) {
	p := Default()
	if !p.IntegrationDeterministic() || !p.FireDeterministic() || !p.Deterministic() {
		t.Fatal("default params must classify deterministic")
	}
	if p.DeterministicWeight(0) != 1 || p.DeterministicWeight(1) != -1 {
		t.Fatalf("DeterministicWeight = %d,%d, want 1,-1", p.DeterministicWeight(0), p.DeterministicWeight(1))
	}

	p = Default()
	p.SynStochastic[1] = true // weight -1: draws
	if p.IntegrationDeterministic() || !p.SynDrawsOn(1) || p.SynDrawsOn(0) {
		t.Fatal("stochastic nonzero-weight synapse must draw")
	}
	if p.Deterministic() {
		t.Fatal("drawing synapse classified deterministic")
	}

	p = Default()
	p.SynStochastic[2] = true // weight 0: short-circuits before drawing
	if !p.IntegrationDeterministic() || p.SynDrawsOn(2) {
		t.Fatal("zero-weight stochastic synapse must not draw")
	}
	if p.DeterministicWeight(2) != 0 {
		t.Fatalf("zero-weight stochastic DeterministicWeight = %d", p.DeterministicWeight(2))
	}

	p = Default()
	p.LeakStochastic = true
	p.Leak = 2
	if p.FireDeterministic() || !p.LeakDraws() {
		t.Fatal("stochastic nonzero leak must draw")
	}
	if p.DeterministicLeak() != 0 {
		t.Fatal("stochastic leak has no deterministic value")
	}
	p.Leak = 0
	if !p.FireDeterministic() || p.LeakDraws() {
		t.Fatal("zero-magnitude stochastic leak must not draw")
	}

	p = Default()
	p.MaskBits = 1
	if p.FireDeterministic() || p.Deterministic() {
		t.Fatal("stochastic threshold classified deterministic")
	}
}
