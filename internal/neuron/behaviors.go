package neuron

// This file defines the behaviour gallery: twenty canonical spiking
// behaviours, each realised by a single digital neuron with a specific
// parameterisation and stimulus script. The gallery demonstrates the
// richness of the core's neuron model (experiment F1) and doubles as an
// executable specification: every entry's qualitative signature is checked
// by tests.
//
// Where the textbook behaviour arises from network effects (e.g. rhythmic
// inhibition for tonic bursting, ramping inhibition for adaptation), the
// stimulus script encodes the network's contribution; the entry documents
// this. All entries are deterministic except the explicitly stochastic
// ones, which consume draws from a fixed-seed LFSR.

import "github.com/neurogo/neurogo/internal/rng"

// Behavior couples a neuron configuration with a stimulus script and a
// simulation window, producing a reproducible raster.
type Behavior struct {
	// Name is the canonical behaviour name.
	Name string
	// Description explains the mechanism and what the raster shows.
	Description string
	// Params configures the neuron.
	Params Params
	// Window is the number of ticks to simulate.
	Window int
	// Seed seeds the LFSR for stochastic entries (ignored otherwise).
	Seed uint16
	// Stimulus returns the number of excitatory (axon type 0) and
	// inhibitory (axon type 1) input spikes delivered at tick t.
	Stimulus func(t int) (exc, inh int)
}

// Trace is the result of running a Behavior: the spike times and the
// post-update membrane potential at every tick.
type Trace struct {
	SpikeTimes []int
	V          []int32
}

// Run simulates the behaviour and returns its trace.
func (b *Behavior) Run() Trace {
	l := rng.NewLFSR(b.Seed)
	var v int32
	tr := Trace{V: make([]int32, b.Window)}
	for t := 0; t < b.Window; t++ {
		exc, inh := b.Stimulus(t)
		var spiked bool
		v, spiked = Step(v, &b.Params, exc, inh, l)
		tr.V[t] = v
		if spiked {
			tr.SpikeTimes = append(tr.SpikeTimes, t)
		}
	}
	return tr
}

// constStim returns a stimulus of fixed excitation and inhibition per tick.
func constStim(exc, inh int) func(int) (int, int) {
	return func(int) (int, int) { return exc, inh }
}

// Gallery returns the twenty-behaviour gallery in presentation order.
func Gallery() []Behavior {
	return []Behavior{
		{
			Name:        "tonic-spiking",
			Description: "Constant input, regular output: integrates +1/tick to threshold 4, firing every 4 ticks.",
			Params: Params{
				SynWeight: [NumAxonTypes]int16{1, -1, 0, 0},
				Threshold: 4, Reset: ResetNormal, Delay: 1,
			},
			Window:   96,
			Stimulus: constStim(1, 0),
		},
		{
			Name:        "phasic-spiking",
			Description: "Single spike at stimulus onset: net drive +1/tick, then a deep reset (-250) silences the neuron for the rest of the window.",
			Params: Params{
				SynWeight: [NumAxonTypes]int16{2, -1, 0, 0},
				Leak:      -1,
				Threshold: 2, Reset: ResetNormal, ResetV: -250,
				NegThreshold: 255, NegSaturate: true, Delay: 1,
			},
			Window:   96,
			Stimulus: constStim(1, 0),
		},
		{
			Name:        "tonic-bursting",
			Description: "Spike groups separated by silences: constant excitation with rhythmic inhibition (the network contribution) gates firing into bursts.",
			Params: Params{
				SynWeight: [NumAxonTypes]int16{3, -6, 0, 0},
				Threshold: 4, Reset: ResetNormal, NegSaturate: true, Delay: 1,
			},
			Window: 96,
			Stimulus: func(t int) (int, int) {
				if t%10 >= 8 {
					return 1, 1
				}
				return 1, 0
			},
		},
		{
			Name:        "phasic-bursting",
			Description: "A pulse of input is converted into a finite burst: linear reset preserves the integration surplus, emitting one spike per tick until it is spent.",
			Params: Params{
				SynWeight: [NumAxonTypes]int16{1, -1, 0, 0},
				Threshold: 1, Reset: ResetLinear, Delay: 1,
			},
			Window: 96,
			Stimulus: func(t int) (int, int) {
				if t == 0 {
					return 5, 0
				}
				return 0, 0
			},
		},
		{
			Name:        "mixed-mode",
			Description: "Onset burst followed by tonic tail: an input transient charges the potential, linear reset drains it as a burst, and sustained input maintains regular firing.",
			Params: Params{
				SynWeight: [NumAxonTypes]int16{2, -1, 0, 0},
				Leak:      -1,
				Threshold: 2, Reset: ResetLinear, NegSaturate: true, Delay: 1,
			},
			Window: 96,
			Stimulus: func(t int) (int, int) {
				if t == 0 {
					return 5, 0
				}
				return 1, 0
			},
		},
		{
			Name:        "spike-frequency-adaptation",
			Description: "Inter-spike intervals lengthen over time: inhibition ramps up with the stimulus history (the network contribution), thinning the net drive.",
			Params: Params{
				SynWeight: [NumAxonTypes]int16{2, -1, 0, 0},
				Threshold: 4, Reset: ResetNormal, NegSaturate: true, Delay: 1,
			},
			Window: 96,
			Stimulus: func(t int) (int, int) {
				return 1, t / 24
			},
		},
		{
			Name:        "class-1-excitable",
			Description: "Firing rate proportional to input strength: a pure integrator with a high threshold transduces a ramping input into an accelerating spike train.",
			Params: Params{
				SynWeight: [NumAxonTypes]int16{1, -1, 0, 0},
				Threshold: 16, Reset: ResetNormal, Delay: 1,
			},
			Window: 128,
			Stimulus: func(t int) (int, int) {
				return 1 + t/32, 0
			},
		},
		{
			Name:        "class-2-excitable",
			Description: "All-or-nothing rate response: a strong decay leak (-3/tick) suppresses weak input entirely; once input exceeds it, firing starts at a nonzero rate.",
			Params: Params{
				SynWeight: [NumAxonTypes]int16{1, -1, 0, 0},
				Leak:      -3,
				Threshold: 4, Reset: ResetNormal, NegSaturate: true, Delay: 1,
			},
			Window: 128,
			Stimulus: func(t int) (int, int) {
				return t / 24, 0
			},
		},
		{
			Name:        "spike-latency",
			Description: "Output spike delayed well past its input: a subthreshold impulse is amplified by the reversed leak (+1 toward the rails) until threshold is crossed ticks later.",
			Params: Params{
				SynWeight:    [NumAxonTypes]int16{1, -1, 0, 0},
				Leak:         1,
				LeakReversal: true,
				Threshold:    8, Reset: ResetNormal, Delay: 1,
			},
			Window: 64,
			Stimulus: func(t int) (int, int) {
				if t == 10 {
					return 3, 0
				}
				return 0, 0
			},
		},
		{
			Name:        "integrator",
			Description: "Coincidence detector: only input spikes arriving on consecutive ticks overcome the decay leak; isolated or widely spaced spikes are forgotten.",
			Params: Params{
				SynWeight: [NumAxonTypes]int16{4, -1, 0, 0},
				Leak:      -2,
				Threshold: 4, Reset: ResetNormal, NegSaturate: true, Delay: 1,
			},
			Window: 96,
			Stimulus: func(t int) (int, int) {
				switch t {
				case 10, 13, 40, 41, 70, 75:
					return 1, 0
				}
				return 0, 0
			},
		},
		{
			Name:        "rebound-spike",
			Description: "A purely inhibitory pulse produces a spike: crossing the negative threshold triggers a negative reset to a suprathreshold positive value, firing on the next tick.",
			Params: Params{
				SynWeight:    [NumAxonTypes]int16{1, -12, 0, 0},
				Threshold:    4,
				NegThreshold: 10,
				Reset:        ResetNormal, ResetV: -4, Delay: 1,
			},
			Window: 64,
			Stimulus: func(t int) (int, int) {
				if t == 20 {
					return 0, 1
				}
				return 0, 0
			},
		},
		{
			Name:        "rebound-burst",
			Description: "Release from inhibition yields a burst: the negative reset lands the potential far above threshold and the linear reset drains it over several spikes.",
			Params: Params{
				SynWeight:    [NumAxonTypes]int16{1, -12, 0, 0},
				Threshold:    2,
				NegThreshold: 10,
				Reset:        ResetLinear, ResetV: -9, Delay: 1,
			},
			Window: 64,
			Stimulus: func(t int) (int, int) {
				if t == 20 {
					return 0, 1
				}
				return 0, 0
			},
		},
		{
			Name:        "threshold-variability",
			Description: "Identical inputs sometimes fire and sometimes do not: a 3-bit stochastic threshold offset raises the effective threshold unpredictably each tick.",
			Params: Params{
				SynWeight: [NumAxonTypes]int16{4, -1, 0, 0},
				Threshold: 4,
				MaskBits:  3,
				Reset:     ResetNormal, Delay: 1,
			},
			Window: 256,
			Seed:   0x5EED,
			Stimulus: func(t int) (int, int) {
				if t%4 == 0 {
					return 1, 0
				}
				return 0, 0
			},
		},
		{
			Name:        "bistability",
			Description: "Two stable modes: reset-to-threshold makes firing self-sustaining once triggered by an excitatory pulse; an inhibitory pulse knocks it back to rest.",
			Params: Params{
				SynWeight: [NumAxonTypes]int16{1, -8, 0, 0},
				Threshold: 4, Reset: ResetNormal, ResetV: 4,
				NegSaturate: true, Delay: 1,
			},
			Window: 96,
			Stimulus: func(t int) (int, int) {
				switch t {
				case 10:
					return 4, 0
				case 50:
					return 0, 1
				}
				return 0, 0
			},
		},
		{
			Name:        "depolarizing-after-potential",
			Description: "The potential stays elevated after each spike: reset lands just below threshold, so a weak follow-up input that could never fire from rest fires immediately.",
			Params: Params{
				SynWeight: [NumAxonTypes]int16{2, -1, 0, 0},
				Threshold: 4, Reset: ResetNormal, ResetV: 3,
				NegSaturate: true, Delay: 1,
			},
			Window: 64,
			Stimulus: func(t int) (int, int) {
				switch t {
				case 10:
					return 4, 0
				case 12:
					return 1, 0
				}
				return 0, 0
			},
		},
		{
			Name:        "accommodation",
			Description: "A slow ramp never fires; the same charge delivered quickly does: the decay leak cancels slow input but cannot keep up with a fast step.",
			Params: Params{
				SynWeight: [NumAxonTypes]int16{2, -1, 0, 0},
				Leak:      -1,
				Threshold: 4, Reset: ResetNormal, NegSaturate: true, Delay: 1,
			},
			Window: 96,
			Stimulus: func(t int) (int, int) {
				if t < 40 && t%2 == 0 {
					return 1, 0 // slow: +2 every other tick, leak erases it
				}
				if t >= 60 && t < 68 {
					return 1, 0 // fast: +1 net per tick for 8 ticks
				}
				return 0, 0
			},
		},
		{
			Name:        "inhibition-induced-spiking",
			Description: "Fires only while inhibited: sustained inhibition repeatedly crosses the negative threshold, whose reset flips the potential above the firing threshold.",
			Params: Params{
				SynWeight:    [NumAxonTypes]int16{1, -3, 0, 0},
				Threshold:    2,
				NegThreshold: 4,
				Reset:        ResetLinear, ResetV: -6, Delay: 1,
			},
			Window: 60,
			Stimulus: func(t int) (int, int) {
				if t >= 10 {
					return 0, 1
				}
				return 0, 0
			},
		},
		{
			Name:        "inhibition-induced-bursting",
			Description: "Bursts only while inhibited: each negative-threshold crossing flips the potential far above threshold, and the linear reset spends it as a multi-spike burst.",
			Params: Params{
				SynWeight:    [NumAxonTypes]int16{1, -3, 0, 0},
				Threshold:    2,
				NegThreshold: 4,
				Reset:        ResetLinear, ResetV: -20, Delay: 1,
			},
			Window: 60,
			Stimulus: func(t int) (int, int) {
				if t >= 10 {
					return 0, 1
				}
				return 0, 0
			},
		},
		{
			Name:        "stochastic-spontaneous",
			Description: "Fires with no input at all: a stochastic upward leak (+1 with probability 1/4) random-walks the potential to threshold at irregular intervals.",
			Params: Params{
				SynWeight:      [NumAxonTypes]int16{1, -1, 0, 0},
				Leak:           64, // probability 64/256 = 1/4 per tick
				LeakStochastic: true,
				Threshold:      4, Reset: ResetNormal, Delay: 1,
			},
			Window:   512,
			Seed:     0xACE1,
			Stimulus: constStim(0, 0),
		},
		{
			Name:        "stochastic-transduction",
			Description: "Deterministic input, probabilistic output: stochastic synapses pass each input spike with probability 1/2, thinning a regular train into a Bernoulli one.",
			Params: Params{
				SynWeight:     [NumAxonTypes]int16{128, -1, 0, 0},
				SynStochastic: [NumAxonTypes]bool{true, false, false, false},
				Threshold:     1, Reset: ResetNormal, Delay: 1,
			},
			Window:   512,
			Seed:     0xBEEF,
			Stimulus: constStim(1, 0),
		},
	}
}
