package system

// Shard-local execution: one shard of a partitioned system owns a
// subset of the physical chips and runs them on a chip fragment — the
// full-size core grid with only the shard's cores instantiated, so
// core indices, mesh coordinates and hop counts stay global. Emissions
// towards cores on other shards are collected into an outbox of
// BoundarySpikes instead of being delivered; the driving Sharded
// system (or the RPC shard server in internal/remote) exchanges the
// outboxes between shards once per tick. Because every axonal delay is
// at least one tick, delivering tick t's boundary spikes at the start
// of tick t+1 is bit-identical to delivering them inside tick t — the
// structural property that makes distributed execution exact, not
// approximate.

import (
	"fmt"
	"sort"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/core"
)

// EvalMode selects the shard-local core evaluation strategy — the
// system-level mirror of sim.Engine, defined here so the shard wire
// protocol does not depend on the executor package.
type EvalMode uint8

const (
	// EvalEvent is sparse event-driven evaluation (production).
	EvalEvent EvalMode = iota
	// EvalDense is the clock-driven baseline.
	EvalDense
	// EvalParallel is EvalEvent sharded across goroutines within the
	// shard process.
	EvalParallel
)

// String names the mode.
func (m EvalMode) String() string {
	switch m {
	case EvalEvent:
		return "event"
	case EvalDense:
		return "dense"
	case EvalParallel:
		return "parallel"
	default:
		return fmt.Sprintf("EvalMode(%d)", int(m))
	}
}

// BoundarySpike is one cross-shard spike transfer: a routed emission
// whose destination core lives on another shard. It carries exactly
// what delivery needs — the global destination core, the axon, and the
// absolute arrival tick (emission tick + axonal delay). Accounting
// (hops, boundary counters) happened on the source shard at emission,
// so the wire message stays minimal.
type BoundarySpike struct {
	// Core is the global linear index of the destination core.
	Core int32
	// Axon is the destination axon on that core.
	Axon uint8
	// At is the absolute arrival tick.
	At int64
}

// TickResult is what one shard-local tick produces: the external
// output spikes emitted by the shard's cores and the boundary spikes
// destined for other shards. Both slices are reused across ticks;
// retainers must copy.
type TickResult struct {
	Outputs  []chip.OutputSpike
	Boundary []BoundarySpike
}

// WindowResult is what one n-tick shard-local execution window
// produces: the per-tick external output spikes (Outputs[k] is window
// tick k) and the boundary spikes the whole window emitted toward
// other shards, each carrying its absolute arrival tick. All slices
// are reused across windows; retainers must copy.
type WindowResult struct {
	Outputs  [][]chip.OutputSpike
	Boundary []BoundarySpike
}

// ShardConn is the driving seam of a partitioned system: one
// connection per shard, implemented in-process by *Shard itself and
// across processes by the RPC client in internal/remote. The Sharded
// tick loop is written against this interface alone, so in-process and
// remote shards execute the identical exchange protocol — bit-identity
// of distributed runs is structural, not incidental.
//
// Counters, BoundaryTotals and AddLinkTrafficInto are snapshot reads:
// in-process they read live state; remote connections answer from the
// cumulative snapshot piggybacked on the last tick reply, so none of
// them costs a network round-trip.
type ShardConn interface {
	// TickLocal delivers the incoming boundary spikes (emitted by other
	// shards on the previous tick) into the shard's delay rings, then
	// advances the shard one tick and returns its outputs and outbox.
	TickLocal(mode EvalMode, workers int, incoming []BoundarySpike) (TickResult, error)
	// TickLocalN delivers the incoming boundary spikes (emitted by
	// other shards during the previous window) into the shard's delay
	// rings, then advances the shard n ticks, accumulating per-tick
	// outputs and the window's combined outbox. Exact only when every
	// cross-shard edge carries at least n ticks of axonal delay (the
	// compiled mapping's Stats.MinBoundaryDelay) — callers pick n;
	// n == 1 is always legal and is exactly TickLocal.
	TickLocalN(mode EvalMode, workers int, incoming []BoundarySpike, n int) (WindowResult, error)
	// Inject schedules an external input spike on a core owned by this
	// shard. Remote connections may buffer the injection and ship it
	// with the next TickLocal call — injections always precede the tick
	// they first affect, so deferred shipment is exact.
	Inject(coreIdx int32, axon int, at int64) error
	// Reset returns the shard to power-on state (chip pristine, boundary
	// traffic zeroed, chip-level activity counters preserved — exactly
	// the System.Reset contract, per shard).
	Reset() error
	// ResetCounters zeroes the shard's chip-level activity counters.
	ResetCounters() error
	// Counters reports the shard's chip-level activity counters.
	Counters() chip.Counters
	// BoundaryTotals reports the intra- and inter-chip routed spike
	// counts for spikes sourced on this shard.
	BoundaryTotals() (intra, inter uint64)
	// AddLinkTrafficInto adds the shard's (src chip, dst chip) crossing
	// matrix into dst (full chips x chips shape).
	AddLinkTrafficInto(dst [][]uint64)
	// Close releases the connection (a no-op in-process).
	Close() error
}

// PartitionChips splits n physical chips (row-major indices 0..n-1)
// into k contiguous, balanced shards — the canonical partition both
// the driving system and every shard server compute independently, so
// a (shards, shard index) pair fully determines a shard's chip set.
// The first n%k shards get one extra chip. Panics if k is not in
// [1, n] (a configuration error callers validate first).
func PartitionChips(n, k int) [][]int {
	if k < 1 || k > n {
		panic(fmt.Sprintf("system: cannot partition %d chips into %d shards", n, k))
	}
	parts := make([][]int, k)
	base, extra := n/k, n%k
	next := 0
	for i := range parts {
		size := base
		if i < extra {
			size++
		}
		for j := 0; j < size; j++ {
			parts[i] = append(parts[i], next)
			next++
		}
	}
	return parts
}

// Shard is one in-process shard of a partitioned system: a chip
// fragment hosting the shard's cores plus the boundary-traffic
// accounting for every spike the shard sources. It implements
// ShardConn directly (the in-process connection) and is what the RPC
// shard server wraps for the remote case.
type Shard struct {
	ch     *chip.Chip
	cfg    Config
	gridW  int
	chips  []int  // the physical chips this shard owns, ascending
	owned  []bool // chip index -> owned by this shard
	outbox []BoundarySpike

	// winOuts holds the per-tick output copies of the current window
	// (the chip reuses its emission buffer every tick, so each tick's
	// outputs are copied out); the copies themselves are reused across
	// windows.
	winOuts [][]chip.OutputSpike

	// Boundary traffic sourced on this shard. Every routed spike is
	// accounted exactly once, at its source shard, so summing these
	// across shards reproduces the single-process System totals.
	intra, inter uint64
	linkTraffic  [][]uint64
}

// NewShard builds the shard owning the given physical chips of a
// core grid partitioned per cfg. The fragment chip keeps the full grid
// dimensions but instantiates only the shard's cores; emissions to
// other shards are collected into the outbox. chips must be non-empty,
// in range, and duplicate-free.
func NewShard(coreGrid *chip.Config, cfg Config, chips_ []int, opt chip.Options) (*Shard, error) {
	if err := cfg.Validate(coreGrid); err != nil {
		return nil, err
	}
	chipsX := coreGrid.Width / cfg.ChipCoresX
	chipsY := coreGrid.Height / cfg.ChipCoresY
	n := chipsX * chipsY
	if len(chips_) == 0 {
		return nil, fmt.Errorf("system: shard owns no chips")
	}
	owned := make([]bool, n)
	for _, c := range chips_ {
		if c < 0 || c >= n {
			return nil, fmt.Errorf("system: shard chip %d outside the %d-chip tile", c, n)
		}
		if owned[c] {
			return nil, fmt.Errorf("system: shard chip %d listed twice", c)
		}
		owned[c] = true
	}
	sh := &Shard{
		cfg:   cfg,
		gridW: coreGrid.Width,
		chips: append([]int(nil), chips_...),
		owned: owned,
	}
	sort.Ints(sh.chips)
	// The fragment config shares the immutable per-core configs (and
	// their precompiled integration plans) with every other user of the
	// grid; only the slice of who-is-instantiated differs.
	frag := &chip.Config{
		Width:  coreGrid.Width,
		Height: coreGrid.Height,
		Cores:  make([]*core.Config, len(coreGrid.Cores)),
	}
	for i, cc := range coreGrid.Cores {
		if cc != nil && owned[sh.chipOf(int32(i))] {
			frag.Cores[i] = cc
		}
	}
	sh.ch = chip.NewWithOptions(frag, opt)
	sh.linkTraffic = make([][]uint64, n)
	for i := range sh.linkTraffic {
		sh.linkTraffic[i] = make([]uint64, n)
	}
	sh.ch.SetRouteObserver(func(src, dst int32) {
		a, b := sh.chipOf(src), sh.chipOf(dst)
		if a == b {
			sh.intra++
			return
		}
		sh.inter++
		sh.linkTraffic[a][b]++
	})
	sh.ch.SetShardRouter(func(t int64, tgt core.Target, delay uint8) {
		sh.outbox = append(sh.outbox, BoundarySpike{
			Core: tgt.Core, Axon: tgt.Axon, At: t + int64(delay),
		})
	})
	return sh, nil
}

// chipOf returns the physical chip index (row-major) hosting a core.
func (sh *Shard) chipOf(coreIdx int32) int {
	cx := (int(coreIdx) % sh.gridW) / sh.cfg.ChipCoresX
	cy := (int(coreIdx) / sh.gridW) / sh.cfg.ChipCoresY
	return cy*(sh.gridW/sh.cfg.ChipCoresX) + cx
}

// Owns reports whether the shard hosts the given physical chip.
func (sh *Shard) Owns(chipIdx int) bool {
	return chipIdx >= 0 && chipIdx < len(sh.owned) && sh.owned[chipIdx]
}

// Chips returns the physical chips this shard owns, ascending.
func (sh *Shard) Chips() []int { return sh.chips }

// Chip exposes the fragment chip (for probes and tests).
func (sh *Shard) Chip() *chip.Chip { return sh.ch }

// Now returns the shard's next tick — the lockstep clock the exchange
// protocol verifies.
func (sh *Shard) Now() int64 { return sh.ch.Now() }

// TickLocal implements ShardConn: deliver, evaluate, collect.
func (sh *Shard) TickLocal(mode EvalMode, workers int, incoming []BoundarySpike) (TickResult, error) {
	for _, b := range incoming {
		if err := sh.ch.DeliverRouted(b.Core, int(b.Axon), b.At); err != nil {
			return TickResult{}, err
		}
	}
	sh.outbox = sh.outbox[:0]
	var outs []chip.OutputSpike
	switch mode {
	case EvalDense:
		outs = sh.ch.TickDense()
	case EvalParallel:
		outs = sh.ch.TickParallel(workers)
	default:
		outs = sh.ch.Tick()
	}
	return TickResult{Outputs: outs, Boundary: sh.outbox}, nil
}

// TickLocalN implements ShardConn: deliver the window's incoming
// spikes once, evaluate n ticks, accumulate per-tick outputs and the
// combined outbox. Delivery up front is exact because every incoming
// spike's absolute arrival tick was stamped at emission — spikes
// landing mid-window sit in the delay rings until their tick comes up,
// exactly as they would have arriving tick by tick.
func (sh *Shard) TickLocalN(mode EvalMode, workers int, incoming []BoundarySpike, n int) (WindowResult, error) {
	if n < 1 {
		return WindowResult{}, fmt.Errorf("system: execution window of %d ticks", n)
	}
	for _, b := range incoming {
		if err := sh.ch.DeliverRouted(b.Core, int(b.Axon), b.At); err != nil {
			return WindowResult{}, err
		}
	}
	sh.outbox = sh.outbox[:0]
	for len(sh.winOuts) < n {
		sh.winOuts = append(sh.winOuts, nil)
	}
	outs := sh.winOuts[:n]
	for k := 0; k < n; k++ {
		var tick []chip.OutputSpike
		switch mode {
		case EvalDense:
			tick = sh.ch.TickDense()
		case EvalParallel:
			tick = sh.ch.TickParallel(workers)
		default:
			tick = sh.ch.Tick()
		}
		outs[k] = append(outs[k][:0], tick...)
	}
	return WindowResult{Outputs: outs, Boundary: sh.outbox}, nil
}

// Inject implements ShardConn. The core must be owned by this shard
// (the driving system routes injections; a miss maps to the invalid-
// core rejection every backend shares).
func (sh *Shard) Inject(coreIdx int32, axon int, at int64) error {
	return sh.ch.Inject(coreIdx, axon, at)
}

// Reset implements ShardConn: chip pristine, boundary counters zeroed,
// activity counters preserved (the System.Reset contract, per shard).
func (sh *Shard) Reset() error {
	sh.ch.Reset()
	sh.outbox = sh.outbox[:0]
	sh.intra, sh.inter = 0, 0
	for i := range sh.linkTraffic {
		for j := range sh.linkTraffic[i] {
			sh.linkTraffic[i][j] = 0
		}
	}
	return nil
}

// ResetCounters implements ShardConn.
func (sh *Shard) ResetCounters() error {
	sh.ch.ResetCounters()
	return nil
}

// Counters implements ShardConn.
func (sh *Shard) Counters() chip.Counters { return sh.ch.Counters() }

// BoundaryTotals implements ShardConn.
func (sh *Shard) BoundaryTotals() (intra, inter uint64) { return sh.intra, sh.inter }

// AddLinkTrafficInto implements ShardConn.
func (sh *Shard) AddLinkTrafficInto(dst [][]uint64) {
	for i, row := range sh.linkTraffic {
		for j, v := range row {
			dst[i][j] += v
		}
	}
}

// Close implements ShardConn (no-op in-process).
func (sh *Shard) Close() error { return nil }
