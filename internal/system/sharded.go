package system

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/neurogo/neurogo/internal/chip"
)

// ErrShardDown is the sentinel matched by errors.Is when a shard of a
// partitioned system has failed — disconnected, timed out, or errored
// mid-tick. Once a shard is down the system cannot re-establish
// lockstep, so the error is sticky: every subsequent Tick returns no
// spikes and Err keeps reporting the failure.
var ErrShardDown = errors.New("sim: shard down")

// ShardDownError reports which shard failed and why. It matches
// ErrShardDown via errors.Is and exposes the transport cause via
// errors.Unwrap.
type ShardDownError struct {
	// Shard is the index of the failed shard.
	Shard int
	// Cause is the underlying failure (RPC error, timeout, ...).
	Cause error
}

// Error implements error.
func (e *ShardDownError) Error() string {
	return fmt.Sprintf("sim: shard %d down: %v", e.Shard, e.Cause)
}

// Is matches ErrShardDown.
func (e *ShardDownError) Is(target error) bool { return target == ErrShardDown }

// Unwrap exposes the cause.
func (e *ShardDownError) Unwrap() error { return e.Cause }

// Sharded is a partitioned system: the tile's physical chips split
// across shards, each shard evaluated behind a ShardConn — in-process
// (*Shard) or in another process (internal/remote). It implements the
// same execution surface as System (and hence sim.Backend), and its
// spike stream is bit-identical to an unpartitioned System over the
// same core grid: shard-local evaluation plus explicit boundary
// exchange is the same computation, because every cross-shard spike
// has at least one tick of axonal delay in hand.
//
// Each tick is one round-trip per shard, all shards in flight
// concurrently: the request carries the boundary spikes addressed to
// that shard by the *previous* tick (plus any buffered injections, for
// remote conns), the reply carries the shard's outputs and fresh
// outbox. Transfers therefore ride the next tick's message — shards
// compute while the exchange is logically in flight — and no separate
// transfer round-trip exists to pay for.
type Sharded struct {
	cfg      Config
	coreGrid *chip.Config
	chipsX   int
	chipsY   int
	conns    []ShardConn
	parts    [][]int
	shardOf  []int // physical chip -> owning shard

	tick    int64
	inbox   [][]BoundarySpike // per-shard boundary spikes awaiting delivery
	results []WindowResult
	errs    []error
	merged  [][]chip.OutputSpike // per window tick, emission order
	err     error                // sticky shard failure
}

// NewSharded partitions the core grid's chips into the given number of
// in-process shards (PartitionChips order) and builds one *Shard per
// part. With shards == 1 the result is still exercised through the
// shard-exchange code path — the degenerate case every multi-shard
// run must agree with.
func NewSharded(coreGrid *chip.Config, cfg Config, shards int, opt chip.Options) (*Sharded, error) {
	if err := cfg.Validate(coreGrid); err != nil {
		return nil, err
	}
	n := (coreGrid.Width / cfg.ChipCoresX) * (coreGrid.Height / cfg.ChipCoresY)
	if shards < 1 || shards > n {
		return nil, fmt.Errorf("system: cannot split %d chips into %d shards", n, shards)
	}
	parts := PartitionChips(n, shards)
	conns := make([]ShardConn, len(parts))
	for i, part := range parts {
		sh, err := NewShard(coreGrid, cfg, part, opt)
		if err != nil {
			return nil, err
		}
		conns[i] = sh
	}
	return NewShardedFrom(coreGrid, cfg, conns, parts)
}

// NewShardedFrom assembles a partitioned system from pre-built shard
// connections (e.g. remote clients). parts[i] lists the physical chips
// conn[i] owns; together the parts must cover every chip exactly once.
func NewShardedFrom(coreGrid *chip.Config, cfg Config, conns []ShardConn, parts [][]int) (*Sharded, error) {
	if err := cfg.Validate(coreGrid); err != nil {
		return nil, err
	}
	if len(conns) == 0 || len(conns) != len(parts) {
		return nil, fmt.Errorf("system: %d shard conns for %d parts", len(conns), len(parts))
	}
	s := &Sharded{
		cfg:      cfg,
		coreGrid: coreGrid,
		chipsX:   coreGrid.Width / cfg.ChipCoresX,
		chipsY:   coreGrid.Height / cfg.ChipCoresY,
		conns:    conns,
		parts:    parts,
	}
	n := s.chipsX * s.chipsY
	s.shardOf = make([]int, n)
	for i := range s.shardOf {
		s.shardOf[i] = -1
	}
	for si, part := range parts {
		for _, c := range part {
			if c < 0 || c >= n {
				return nil, fmt.Errorf("system: shard %d claims chip %d outside the %d-chip tile", si, c, n)
			}
			if s.shardOf[c] != -1 {
				return nil, fmt.Errorf("system: chip %d claimed by shards %d and %d", c, s.shardOf[c], si)
			}
			s.shardOf[c] = si
		}
	}
	for c, si := range s.shardOf {
		if si == -1 {
			return nil, fmt.Errorf("system: chip %d owned by no shard", c)
		}
	}
	s.inbox = make([][]BoundarySpike, len(conns))
	s.results = make([]WindowResult, len(conns))
	s.errs = make([]error, len(conns))
	return s, nil
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.conns) }

// Conns exposes the shard connections (for probes and tests).
func (s *Sharded) Conns() []ShardConn { return s.conns }

// Partition returns the chips-per-shard partition.
func (s *Sharded) Partition() [][]int { return s.parts }

// Chips returns the number of physical chips.
func (s *Sharded) Chips() int { return s.chipsX * s.chipsY }

// ChipsX returns the chip-tile width.
func (s *Sharded) ChipsX() int { return s.chipsX }

// ChipsY returns the chip-tile height.
func (s *Sharded) ChipsY() int { return s.chipsY }

// ChipOf returns the physical chip index (row-major) hosting a core.
func (s *Sharded) ChipOf(coreIdx int32) int {
	cx := (int(coreIdx) % s.coreGrid.Width) / s.cfg.ChipCoresX
	cy := (int(coreIdx) / s.coreGrid.Width) / s.cfg.ChipCoresY
	return cy*s.chipsX + cx
}

// Err returns the sticky shard failure, nil while healthy. Matches
// ErrShardDown via errors.Is once a shard has failed.
func (s *Sharded) Err() error { return s.err }

func (s *Sharded) fail(shard int, cause error) {
	if s.err != nil {
		return
	}
	var down *ShardDownError
	if errors.As(cause, &down) {
		s.err = cause
		return
	}
	s.err = &ShardDownError{Shard: shard, Cause: cause}
}

// tickAll fans one tick out to every shard, exchanges boundary spikes,
// and merges the outputs into emission order — the lockstep path,
// which is exactly the degenerate one-tick exchange window.
func (s *Sharded) tickAll(mode EvalMode, workers int) []chip.OutputSpike {
	win := s.TickN(mode, workers, 1)
	if win == nil {
		return nil
	}
	return win[0]
}

// TickN advances the system n ticks as one exchange window: every
// shard evaluates n ticks locally, then the accumulated outboxes are
// exchanged in a single round. The returned slice holds each window
// tick's output spikes in emission order; it (and its elements) are
// reused across windows, so retainers must copy. After a shard failure
// it returns nil; check Err.
//
// Windowing is exact — bit-identical to n lockstep Tick calls — only
// when every cross-shard edge carries at least n ticks of axonal
// delay: a boundary spike emitted at window tick u with delay d >= n
// arrives at u+d, which is at or after the next window's start, so
// delivering the whole outbox there loses nothing. The compiled
// mapping's Stats.MinBoundaryDelay is that bound (over all chip
// crossings, hence any shard partition); callers must clamp n to it.
// n == 1 is always exact and is today's lockstep exchange.
func (s *Sharded) TickN(mode EvalMode, workers, n int) [][]chip.OutputSpike {
	if s.err != nil || n < 1 {
		return nil
	}
	if len(s.conns) == 1 {
		s.results[0], s.errs[0] = s.conns[0].TickLocalN(mode, workers, s.inbox[0], n)
	} else {
		var wg sync.WaitGroup
		for i := range s.conns {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				s.results[i], s.errs[i] = s.conns[i].TickLocalN(mode, workers, s.inbox[i], n)
			}(i)
		}
		wg.Wait()
	}
	for i, err := range s.errs {
		if err != nil {
			s.fail(i, err)
			return nil
		}
	}
	// Exchange: this window's outboxes become the next window's
	// incoming. Delivery order across shards is irrelevant — arrivals
	// are one SRAM bit per (axon, slot), so merging is order-free,
	// exactly as on one chip.
	for i := range s.inbox {
		s.inbox[i] = s.inbox[i][:0]
	}
	for _, res := range s.results {
		for _, b := range res.Boundary {
			dst := s.shardOf[s.ChipOf(b.Core)]
			s.inbox[dst] = append(s.inbox[dst], b)
		}
	}
	// Merge each window tick's outputs into the single-chip emission
	// order: cores evaluate in ascending index order and each core
	// emits its neurons ascending, so (Core, Neuron) reproduces it
	// exactly.
	for len(s.merged) < n {
		s.merged = append(s.merged, nil)
	}
	win := s.merged[:n]
	for k := 0; k < n; k++ {
		mk := win[k][:0]
		for _, res := range s.results {
			mk = append(mk, res.Outputs[k]...)
		}
		sort.Slice(mk, func(i, j int) bool {
			if mk[i].Core != mk[j].Core {
				return mk[i].Core < mk[j].Core
			}
			return mk[i].Neuron < mk[j].Neuron
		})
		win[k] = mk
	}
	s.tick += int64(n)
	return win
}

// Tick advances the system one tick (event-driven core evaluation).
// After a shard failure it returns nil; check Err.
func (s *Sharded) Tick() []chip.OutputSpike { return s.tickAll(EvalEvent, 1) }

// TickDense advances one tick with the clock-driven core evaluation.
func (s *Sharded) TickDense() []chip.OutputSpike { return s.tickAll(EvalDense, 1) }

// TickParallel advances one tick with each shard's cores evaluated
// across workers goroutines, bit-identically to Tick.
func (s *Sharded) TickParallel(workers int) []chip.OutputSpike {
	return s.tickAll(EvalParallel, workers)
}

// Inject schedules an external input spike. Bounds are validated
// against the full core grid before anything is routed, so invalid
// injections are rejected with exactly the errors a single chip
// reports, and no shard state mutates.
func (s *Sharded) Inject(coreIdx int32, axon int, at int64) error {
	if s.err != nil {
		return s.err
	}
	if err := s.coreGrid.ValidateInjection(coreIdx, axon, s.tick, at); err != nil {
		return err
	}
	shard := s.shardOf[s.ChipOf(coreIdx)]
	if err := s.conns[shard].Inject(coreIdx, axon, at); err != nil {
		s.fail(shard, err)
		return s.err
	}
	return nil
}

// Now returns the next tick to be executed.
func (s *Sharded) Now() int64 { return s.tick }

// Counters sums the per-shard chip-level activity counters. Routed
// spikes, hops and boundary traffic are accounted at the source shard
// and injections at the target shard, so each event is counted exactly
// once and the sum equals the unpartitioned System's counters.
func (s *Sharded) Counters() chip.Counters {
	var out chip.Counters
	for _, c := range s.conns {
		out.Add(c.Counters())
	}
	return out
}

// ResetCounters zeroes every shard's chip-level activity counters.
func (s *Sharded) ResetCounters() {
	if s.err != nil {
		return
	}
	for i, c := range s.conns {
		if err := c.ResetCounters(); err != nil {
			s.fail(i, err)
			return
		}
	}
}

// Reset returns the system to power-on state under the System.Reset
// contract: chips pristine, boundary-traffic counters zeroed, chip
// activity counters preserved. A failed shard makes Reset a no-op —
// lockstep cannot be re-established; check Err.
func (s *Sharded) Reset() {
	if s.err != nil {
		return
	}
	for i, c := range s.conns {
		if err := c.Reset(); err != nil {
			s.fail(i, err)
			return
		}
	}
	s.tick = 0
	for i := range s.inbox {
		s.inbox[i] = s.inbox[i][:0]
	}
}

// BoundaryTotals sums the shards' intra- and inter-chip routed spike
// counts — each routed spike accounted once, at its source shard.
func (s *Sharded) BoundaryTotals() (intra, inter uint64) {
	for _, c := range s.conns {
		a, b := c.BoundaryTotals()
		intra += a
		inter += b
	}
	return intra, inter
}

// AddLinkTrafficInto adds every shard's (src chip, dst chip) crossing
// matrix into dst (full chips x chips shape).
func (s *Sharded) AddLinkTrafficInto(dst [][]uint64) {
	for _, c := range s.conns {
		c.AddLinkTrafficInto(dst)
	}
}

// LinkTraffic returns a fresh copy of the summed crossing matrix.
func (s *Sharded) LinkTraffic() [][]uint64 {
	n := s.Chips()
	out := make([][]uint64, n)
	for i := range out {
		out[i] = make([]uint64, n)
	}
	s.AddLinkTrafficInto(out)
	return out
}

// Stats returns the boundary-traffic summary across all shards.
func (s *Sharded) Stats() Stats {
	intra, inter := s.BoundaryTotals()
	st := Stats{IntraChip: intra, InterChip: inter}
	for _, row := range s.LinkTraffic() {
		for _, v := range row {
			if v > st.BusiestLink {
				st.BusiestLink = v
			}
		}
	}
	return st
}

// InterChipFraction returns the fraction of routed spikes crossing
// chip boundaries (0 when nothing has been routed).
func (s *Sharded) InterChipFraction() float64 {
	intra, inter := s.BoundaryTotals()
	total := intra + inter
	if total == 0 {
		return 0
	}
	return float64(inter) / float64(total)
}

// Capacity aggregates per-chip capacity across the tile.
func (s *Sharded) Capacity() chip.Capacity {
	per := chip.CapacityOf(s.cfg.ChipCoresX, s.cfg.ChipCoresY)
	n := s.Chips()
	return chip.Capacity{
		Cores:        per.Cores * n,
		Neurons:      per.Neurons * n,
		Synapses:     per.Synapses * n,
		SRAMBits:     per.SRAMBits * int64(n),
		MeshDiameter: (s.chipsX*s.cfg.ChipCoresX - 1) + (s.chipsY*s.cfg.ChipCoresY - 1),
	}
}

// BindContext propagates a deadline/cancellation context to every
// shard connection that supports one (remote conns do; in-process
// shards have nothing to cancel). Call before each presentation so
// Classify deadlines bound RPC waits.
func (s *Sharded) BindContext(ctx context.Context) {
	for _, c := range s.conns {
		if b, ok := c.(interface{ BindContext(context.Context) }); ok {
			b.BindContext(ctx)
		}
	}
}

// Close releases every shard connection, returning the first error.
func (s *Sharded) Close() error {
	var first error
	for _, c := range s.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
