package system

import (
	"testing"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/core"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/rng"
)

// gridConfig builds a 4x4 core grid where core i's neuron n relays to
// core target(i) axon n.
func gridConfig(target func(i int) int32) *chip.Config {
	cfgs := make([]*core.Config, 16)
	for i := 0; i < 16; i++ {
		cc := core.NewConfig()
		for n := 0; n < core.Size; n++ {
			cc.Synapses.Set(n, n, true)
			cc.Neurons[n].Threshold = 1
			cc.Targets[n] = core.Target{Core: target(i), Axon: uint8(n)}
		}
		cfgs[i] = cc
	}
	return &chip.Config{Width: 4, Height: 4, Cores: cfgs}
}

func TestNewValidates(t *testing.T) {
	cfg := gridConfig(func(i int) int32 { return core.ExternalCore })
	if _, err := New(cfg, Config{ChipCoresX: 0, ChipCoresY: 2}); err == nil {
		t.Error("zero chip dims accepted")
	}
	if _, err := New(cfg, Config{ChipCoresX: 3, ChipCoresY: 2}); err == nil {
		t.Error("non-tiling dims accepted")
	}
	s, err := New(cfg, Config{ChipCoresX: 2, ChipCoresY: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Chips() != 4 || s.ChipsX() != 2 || s.ChipsY() != 2 {
		t.Fatalf("tile = %dx%d", s.ChipsX(), s.ChipsY())
	}
}

func TestChipOf(t *testing.T) {
	cfg := gridConfig(func(i int) int32 { return core.ExternalCore })
	s, err := New(cfg, Config{ChipCoresX: 2, ChipCoresY: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Core grid 4x4, chips 2x2 cores: core (x,y) -> chip (x/2, y/2).
	cases := map[int32]int{
		0: 0, 1: 0, 2: 1, 3: 1, // row 0
		4: 0, 5: 0, 6: 1, 7: 1, // row 1
		8: 2, 11: 3, 15: 3,
	}
	for coreIdx, want := range cases {
		if got := s.ChipOf(coreIdx); got != want {
			t.Errorf("ChipOf(%d) = %d, want %d", coreIdx, got, want)
		}
	}
}

func TestBoundaryAccounting(t *testing.T) {
	// Core 0 relays to core 1 (same chip); core 2 relays to core 0
	// (crossing from chip 1 to chip 0).
	cfg := gridConfig(func(i int) int32 {
		switch i {
		case 0:
			return 1
		case 2:
			return 0
		default:
			return core.ExternalCore
		}
	})
	s, err := New(cfg, Config{ChipCoresX: 2, ChipCoresY: 2})
	if err != nil {
		t.Fatal(err)
	}
	// One spike through core 0 (intra) and one through core 2 (inter).
	_ = s.Chip().Inject(0, 5, 0)
	_ = s.Chip().Inject(2, 9, 0)
	for i := 0; i < 4; i++ {
		s.Tick()
	}
	st := s.Stats()
	if st.IntraChip < 1 {
		t.Errorf("IntraChip = %d, want >= 1", st.IntraChip)
	}
	if st.InterChip < 1 {
		t.Errorf("InterChip = %d, want >= 1", st.InterChip)
	}
	if s.LinkTraffic()[1][0] == 0 {
		t.Error("chip1 -> chip0 link traffic not recorded")
	}
	if f := s.InterChipFraction(); f <= 0 || f >= 1 {
		t.Errorf("InterChipFraction = %g", f)
	}
	if st.BusiestLink == 0 {
		t.Error("BusiestLink not recorded")
	}
}

func TestInterChipFractionEmpty(t *testing.T) {
	cfg := gridConfig(func(i int) int32 { return core.ExternalCore })
	s, _ := New(cfg, Config{ChipCoresX: 2, ChipCoresY: 2})
	if s.InterChipFraction() != 0 {
		t.Error("no traffic must give fraction 0")
	}
}

func TestCapacityAggregates(t *testing.T) {
	cfg := gridConfig(func(i int) int32 { return core.ExternalCore })
	s, _ := New(cfg, Config{ChipCoresX: 2, ChipCoresY: 2})
	c := s.Capacity()
	per := chip.CapacityOf(2, 2)
	if c.Cores != 4*per.Cores || c.Neurons != 4*per.Neurons || c.SRAMBits != 4*per.SRAMBits {
		t.Fatalf("capacity = %+v", c)
	}
	if c.MeshDiameter != 6 {
		t.Errorf("diameter = %d, want 6 (4x4 cores)", c.MeshDiameter)
	}
}

// TestPlacementReducesInterChipTraffic is the system-level placement
// claim: annealed placement crosses chip boundaries less often than
// random placement for the same network and traffic.
func TestPlacementReducesInterChipTraffic(t *testing.T) {
	buildNet := func() *model.Network {
		r := rng.NewSplitMix64(4)
		m := model.New()
		in := m.AddInputBank("in", 32, model.SourceProps{Type: 0, Delay: 1})
		proto := neuron.Default()
		a := m.AddPopulation("a", 512, proto)
		b := m.AddPopulation("b", 512, proto)
		for i := 0; i < 32; i++ {
			for k := 0; k < 16; k++ {
				m.Connect(in.Line(i), a.ID(r.Intn(512)))
			}
		}
		for i := 0; i < 512; i++ {
			m.SourceProps(a.ID(i)).Delay = 2
			m.Connect(model.NeuronNode(a.ID(i)), b.ID(r.Intn(512)))
			m.Connect(model.NeuronNode(a.ID(i)), b.ID((i*7)%512))
		}
		return m
	}
	// The grid is larger than the workload so compact placement can fit
	// inside one physical chip. On a grid the workload exactly fills,
	// hop-optimal placement centres the blob on the four-chip corner
	// and can *increase* crossings — boundary-aware placement is its
	// own problem; this test only claims the win when room exists.
	frac := func(placer compile.Placer) float64 {
		mp, err := compile.Compile(buildNet(), compile.Options{
			Placer: placer, Seed: 11, Width: 6, Height: 6, AnnealIters: 20000,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(mp.Chip, Config{ChipCoresX: 3, ChipCoresY: 3})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.NewSplitMix64(9)
		for tick := 0; tick < 80; tick++ {
			for k := 0; k < 16; k++ {
				line := r.Intn(32)
				at := s.Chip().Now() + int64(mp.InputDelay[line])
				for _, tgt := range mp.InputTargets[line] {
					_ = s.Chip().Inject(tgt.Core, int(tgt.Axon), at)
				}
			}
			s.Tick()
		}
		return s.InterChipFraction()
	}
	random := frac(compile.PlacerRandom)
	annealed := frac(compile.PlacerAnneal)
	if annealed >= random {
		t.Errorf("annealed inter-chip fraction %.3f not below random %.3f", annealed, random)
	}
}
