package system

import (
	"testing"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/compile"
	"github.com/neurogo/neurogo/internal/core"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/rng"
)

// gridConfig builds a 4x4 core grid where core i's neuron n relays to
// core target(i) axon n.
func gridConfig(target func(i int) int32) *chip.Config {
	cfgs := make([]*core.Config, 16)
	for i := 0; i < 16; i++ {
		cc := core.NewConfig()
		for n := 0; n < core.Size; n++ {
			cc.Synapses.Set(n, n, true)
			cc.Neurons[n].Threshold = 1
			cc.Targets[n] = core.Target{Core: target(i), Axon: uint8(n)}
		}
		cfgs[i] = cc
	}
	return &chip.Config{Width: 4, Height: 4, Cores: cfgs}
}

func TestNewValidates(t *testing.T) {
	cfg := gridConfig(func(i int) int32 { return core.ExternalCore })
	if _, err := New(cfg, Config{ChipCoresX: 0, ChipCoresY: 2}); err == nil {
		t.Error("zero chip dims accepted")
	}
	if _, err := New(cfg, Config{ChipCoresX: 3, ChipCoresY: 2}); err == nil {
		t.Error("non-tiling dims accepted")
	}
	s, err := New(cfg, Config{ChipCoresX: 2, ChipCoresY: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Chips() != 4 || s.ChipsX() != 2 || s.ChipsY() != 2 {
		t.Fatalf("tile = %dx%d", s.ChipsX(), s.ChipsY())
	}
}

func TestChipOf(t *testing.T) {
	cfg := gridConfig(func(i int) int32 { return core.ExternalCore })
	s, err := New(cfg, Config{ChipCoresX: 2, ChipCoresY: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Core grid 4x4, chips 2x2 cores: core (x,y) -> chip (x/2, y/2).
	cases := map[int32]int{
		0: 0, 1: 0, 2: 1, 3: 1, // row 0
		4: 0, 5: 0, 6: 1, 7: 1, // row 1
		8: 2, 11: 3, 15: 3,
	}
	for coreIdx, want := range cases {
		if got := s.ChipOf(coreIdx); got != want {
			t.Errorf("ChipOf(%d) = %d, want %d", coreIdx, got, want)
		}
	}
}

func TestBoundaryAccounting(t *testing.T) {
	// Core 0 relays to core 1 (same chip); core 2 relays to core 0
	// (crossing from chip 1 to chip 0).
	cfg := gridConfig(func(i int) int32 {
		switch i {
		case 0:
			return 1
		case 2:
			return 0
		default:
			return core.ExternalCore
		}
	})
	s, err := New(cfg, Config{ChipCoresX: 2, ChipCoresY: 2})
	if err != nil {
		t.Fatal(err)
	}
	// One spike through core 0 (intra) and one through core 2 (inter).
	_ = s.Chip().Inject(0, 5, 0)
	_ = s.Chip().Inject(2, 9, 0)
	for i := 0; i < 4; i++ {
		s.Tick()
	}
	st := s.Stats()
	if st.IntraChip < 1 {
		t.Errorf("IntraChip = %d, want >= 1", st.IntraChip)
	}
	if st.InterChip < 1 {
		t.Errorf("InterChip = %d, want >= 1", st.InterChip)
	}
	if s.LinkTraffic()[1][0] == 0 {
		t.Error("chip1 -> chip0 link traffic not recorded")
	}
	if f := s.InterChipFraction(); f <= 0 || f >= 1 {
		t.Errorf("InterChipFraction = %g", f)
	}
	if st.BusiestLink == 0 {
		t.Error("BusiestLink not recorded")
	}
	if intra, inter := s.BoundaryTotals(); intra != st.IntraChip || inter != st.InterChip {
		t.Errorf("BoundaryTotals = (%d,%d), Stats = %+v", intra, inter, st)
	}
	sum := make([][]uint64, s.Chips())
	for i := range sum {
		sum[i] = make([]uint64, s.Chips())
	}
	s.AddLinkTrafficInto(sum)
	s.AddLinkTrafficInto(sum)
	if want := s.LinkTraffic(); sum[1][0] != 2*want[1][0] {
		t.Errorf("AddLinkTrafficInto twice = %d, want %d", sum[1][0], 2*want[1][0])
	}
}

// TestResetBitIdentical is the session-reuse regression: after Reset a
// system must produce exactly the spike stream and traffic accounting
// of a freshly built one, with all boundary counters zeroed.
func TestResetBitIdentical(t *testing.T) {
	// Relay chain crossing a chip boundary: 0 -> 1 -> 2 (chip 0 -> chip 0
	// -> chip 1), with core 2 emitting externally.
	build := func() *System {
		cfg := gridConfig(func(i int) int32 {
			switch i {
			case 0:
				return 1
			case 1:
				return 2
			default:
				return core.ExternalCore
			}
		})
		s, err := New(cfg, Config{ChipCoresX: 2, ChipCoresY: 2})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	present := func(s *System) ([]chip.OutputSpike, Stats) {
		_ = s.Inject(0, 3, 0)
		var outs []chip.OutputSpike
		for i := 0; i < 6; i++ {
			outs = append(outs, s.Tick()...)
		}
		return outs, s.Stats()
	}

	fresh := build()
	wantOuts, wantStats := present(fresh)
	if wantStats.IntraChip == 0 || wantStats.InterChip == 0 {
		t.Fatalf("rig routes nothing: %+v", wantStats)
	}

	reused := build()
	present(reused)
	reused.Reset()
	if st := reused.Stats(); st != (Stats{}) {
		t.Fatalf("Reset left traffic counters %+v", st)
	}
	if now := reused.Now(); now != 0 {
		t.Fatalf("Reset left tick %d", now)
	}
	for _, row := range reused.LinkTraffic() {
		for _, v := range row {
			if v != 0 {
				t.Fatal("Reset left link traffic")
			}
		}
	}
	gotOuts, gotStats := present(reused)
	if len(gotOuts) != len(wantOuts) {
		t.Fatalf("reset system emitted %d spikes, fresh %d", len(gotOuts), len(wantOuts))
	}
	for i := range gotOuts {
		if gotOuts[i] != wantOuts[i] {
			t.Fatalf("spike %d: reset %+v, fresh %+v", i, gotOuts[i], wantOuts[i])
		}
	}
	if gotStats != wantStats {
		t.Fatalf("traffic after reset = %+v, fresh = %+v", gotStats, wantStats)
	}
}

// TestLinkTrafficIsSnapshot pins the accounting-isolation contract:
// LinkTraffic returns a copy, so callers mutating it cannot corrupt
// Stats or subsequent snapshots.
func TestLinkTrafficIsSnapshot(t *testing.T) {
	cfg := gridConfig(func(i int) int32 {
		if i == 2 {
			return 0 // chip 1 -> chip 0 crossing
		}
		return core.ExternalCore
	})
	s, err := New(cfg, Config{ChipCoresX: 2, ChipCoresY: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Inject(2, 9, 0)
	for i := 0; i < 4; i++ {
		s.Tick()
	}
	before := s.Stats()
	lt := s.LinkTraffic()
	if lt[1][0] == 0 {
		t.Fatal("no crossing recorded")
	}
	lt[1][0] = 0
	lt[0][1] = 1 << 40
	if got := s.Stats(); got != before {
		t.Fatalf("mutating the returned matrix changed Stats: %+v -> %+v", before, got)
	}
	if again := s.LinkTraffic(); again[1][0] == 0 || again[0][1] != 0 {
		t.Fatalf("mutation leaked into a later snapshot: %v", again)
	}
}

func TestInterChipFractionEmpty(t *testing.T) {
	cfg := gridConfig(func(i int) int32 { return core.ExternalCore })
	s, _ := New(cfg, Config{ChipCoresX: 2, ChipCoresY: 2})
	if s.InterChipFraction() != 0 {
		t.Error("no traffic must give fraction 0")
	}
}

func TestCapacityAggregates(t *testing.T) {
	cfg := gridConfig(func(i int) int32 { return core.ExternalCore })
	s, _ := New(cfg, Config{ChipCoresX: 2, ChipCoresY: 2})
	c := s.Capacity()
	per := chip.CapacityOf(2, 2)
	if c.Cores != 4*per.Cores || c.Neurons != 4*per.Neurons || c.SRAMBits != 4*per.SRAMBits {
		t.Fatalf("capacity = %+v", c)
	}
	if c.MeshDiameter != 6 {
		t.Errorf("diameter = %d, want 6 (4x4 cores)", c.MeshDiameter)
	}
}

// TestPlacementReducesInterChipTraffic is the system-level placement
// claim: annealed placement crosses chip boundaries less often than
// random placement for the same network and traffic.
func TestPlacementReducesInterChipTraffic(t *testing.T) {
	buildNet := func() *model.Network {
		r := rng.NewSplitMix64(4)
		m := model.New()
		in := m.AddInputBank("in", 32, model.SourceProps{Type: 0, Delay: 1})
		proto := neuron.Default()
		a := m.AddPopulation("a", 512, proto)
		b := m.AddPopulation("b", 512, proto)
		for i := 0; i < 32; i++ {
			for k := 0; k < 16; k++ {
				m.Connect(in.Line(i), a.ID(r.Intn(512)))
			}
		}
		for i := 0; i < 512; i++ {
			m.SourceProps(a.ID(i)).Delay = 2
			m.Connect(model.NeuronNode(a.ID(i)), b.ID(r.Intn(512)))
			m.Connect(model.NeuronNode(a.ID(i)), b.ID((i*7)%512))
		}
		return m
	}
	// The grid is larger than the workload so compact placement can fit
	// inside one physical chip. On a grid the workload exactly fills,
	// hop-optimal placement centres the blob on the four-chip corner
	// and can *increase* crossings — boundary-aware placement is its
	// own problem; this test only claims the win when room exists.
	frac := func(placer compile.Placer) float64 {
		mp, err := compile.Compile(buildNet(), compile.Options{
			Placer: placer, Seed: 11, Width: 6, Height: 6, AnnealIters: 20000,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(mp.Chip, Config{ChipCoresX: 3, ChipCoresY: 3})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.NewSplitMix64(9)
		for tick := 0; tick < 80; tick++ {
			for k := 0; k < 16; k++ {
				line := r.Intn(32)
				at := s.Chip().Now() + int64(mp.InputDelay[line])
				for _, tgt := range mp.InputTargets[line] {
					_ = s.Chip().Inject(tgt.Core, int(tgt.Axon), at)
				}
			}
			s.Tick()
		}
		return s.InterChipFraction()
	}
	random := frac(compile.PlacerRandom)
	annealed := frac(compile.PlacerAnneal)
	if annealed >= random {
		t.Errorf("annealed inter-chip fraction %.3f not below random %.3f", annealed, random)
	}
}
