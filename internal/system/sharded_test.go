package system

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/core"
)

func TestPartitionChips(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{1, 1}, {4, 2}, {16, 3}, {16, 16}, {7, 3}} {
		parts := PartitionChips(tc.n, tc.k)
		if len(parts) != tc.k {
			t.Fatalf("PartitionChips(%d,%d) made %d parts", tc.n, tc.k, len(parts))
		}
		next := 0
		min, max := tc.n, 0
		for _, p := range parts {
			if len(p) < min {
				min = len(p)
			}
			if len(p) > max {
				max = len(p)
			}
			for _, c := range p {
				// Contiguous ascending cover: chip i appears exactly once,
				// in order — the property that makes the partition derivable
				// from (shards, shard) alone.
				if c != next {
					t.Fatalf("PartitionChips(%d,%d) = %v: chip %d where %d expected", tc.n, tc.k, parts, c, next)
				}
				next++
			}
		}
		if next != tc.n {
			t.Fatalf("PartitionChips(%d,%d) covered %d chips", tc.n, tc.k, next)
		}
		if max-min > 1 {
			t.Fatalf("PartitionChips(%d,%d) unbalanced: sizes span [%d,%d]", tc.n, tc.k, min, max)
		}
	}
	mustPanic := func(n, k int) {
		defer func() {
			if recover() == nil {
				t.Errorf("PartitionChips(%d,%d) did not panic", n, k)
			}
		}()
		PartitionChips(n, k)
	}
	mustPanic(4, 0)
	mustPanic(4, 5)
}

// TestInjectParity pins the unified bounds-validation contract: a
// single chip, a multi-chip System and a partitioned Sharded reject
// exactly the same invalid injections with exactly the same
// sim:-prefixed errors, before any state mutates.
func TestInjectParity(t *testing.T) {
	ext := func(i int) int32 { return core.ExternalCore }
	type backend struct {
		name   string
		inject func(coreIdx int32, axon int, at int64) error
		inputs func() uint64
	}
	ch := chip.New(gridConfig(ext))
	sys, err := New(gridConfig(ext), Config{ChipCoresX: 2, ChipCoresY: 2})
	if err != nil {
		t.Fatal(err)
	}
	backends := []backend{
		{"chip", ch.Inject, func() uint64 { return ch.Counters().InputSpikes }},
		{"system", sys.Inject, func() uint64 { return sys.Chip().Counters().InputSpikes }},
	}
	for _, shards := range []int{2, 4} {
		shd, err := NewSharded(gridConfig(ext), Config{ChipCoresX: 2, ChipCoresY: 2}, shards, chip.Options{})
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, backend{
			"sharded-" + string(rune('0'+shards)), shd.Inject,
			func() uint64 { return shd.Counters().InputSpikes },
		})
	}

	cases := []struct {
		name string
		core int32
		axon int
		at   int64
		want string // "" means accepted
	}{
		{"valid", 0, 3, 0, ""},
		{"core-negative", -1, 0, 0, "sim: inject into invalid core -1"},
		{"core-beyond-grid", 16, 0, 0, "sim: inject into invalid core 16"},
		{"axon-negative", 2, -1, 0, "sim: inject into invalid axon -1 on core 2"},
		{"axon-beyond-fanin", 2, core.Size, 0, "sim: inject into invalid axon 256 on core 2"},
		{"tick-in-past", 0, 0, -1, "sim: inject at tick -1 outside window [0,16)"},
		{"tick-beyond-ring", 0, 0, core.RingSlots, "sim: inject at tick 16 outside window [0,16)"},
	}
	for _, b := range backends {
		for _, tc := range cases {
			before := b.inputs()
			err := b.inject(tc.core, tc.axon, tc.at)
			if tc.want == "" {
				if err != nil {
					t.Errorf("%s/%s: rejected: %v", b.name, tc.name, err)
				}
				if got := b.inputs(); got != before+1 {
					t.Errorf("%s/%s: InputSpikes %d -> %d, want +1", b.name, tc.name, before, got)
				}
				continue
			}
			if err == nil {
				t.Errorf("%s/%s: accepted", b.name, tc.name)
				continue
			}
			if err.Error() != tc.want {
				t.Errorf("%s/%s: error %q, want %q", b.name, tc.name, err, tc.want)
			}
			if got := b.inputs(); got != before {
				t.Errorf("%s/%s: rejected injection mutated InputSpikes %d -> %d", b.name, tc.name, before, got)
			}
		}
	}
}

// chainRig is the 0 -> 1 -> 2 relay chain crossing one chip boundary
// (chips 2x2 cores on the 4x4 grid), reused by the sharded-equivalence
// tests.
func chainRig() *chip.Config {
	return gridConfig(func(i int) int32 {
		switch i {
		case 0:
			return 1
		case 1:
			return 2
		default:
			return core.ExternalCore
		}
	})
}

// present drives one fixed schedule and returns copied outputs.
func present(t *testing.T, inject func(int32, int, int64) error, tick func() []chip.OutputSpike) []chip.OutputSpike {
	t.Helper()
	if err := inject(0, 3, 0); err != nil {
		t.Fatal(err)
	}
	var outs []chip.OutputSpike
	for i := 0; i < 6; i++ {
		outs = append(outs, append([]chip.OutputSpike(nil), tick()...)...)
	}
	return outs
}

// TestShardedMatchesSystem is the partition-equivalence contract at the
// system layer: for every shard count, a Sharded over the same core
// grid emits exactly the System's spike stream, and every accounting
// surface — counters, boundary totals, link matrix — folds to exactly
// the System's values.
func TestShardedMatchesSystem(t *testing.T) {
	cfg := Config{ChipCoresX: 2, ChipCoresY: 2}
	sys, err := New(chainRig(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantOuts := present(t, sys.Inject, sys.Tick)
	wantStats := sys.Stats()
	if len(wantOuts) == 0 || wantStats.InterChip == 0 {
		t.Fatalf("rig emits nothing or crosses nothing: %d outs, %+v", len(wantOuts), wantStats)
	}

	for _, shards := range []int{1, 2, 4} {
		shd, err := NewSharded(chainRig(), cfg, shards, chip.Options{})
		if err != nil {
			t.Fatal(err)
		}
		gotOuts := present(t, shd.Inject, shd.Tick)
		if len(gotOuts) != len(wantOuts) {
			t.Fatalf("shards=%d: %d outputs, system %d", shards, len(gotOuts), len(wantOuts))
		}
		for i := range wantOuts {
			if gotOuts[i] != wantOuts[i] {
				t.Fatalf("shards=%d: output %d = %+v, system %+v", shards, i, gotOuts[i], wantOuts[i])
			}
		}
		if got := shd.Stats(); got != wantStats {
			t.Fatalf("shards=%d: stats %+v, system %+v", shards, got, wantStats)
		}
		if got, want := shd.Counters(), sys.Chip().Counters(); got != want {
			t.Fatalf("shards=%d: counters %+v, system %+v", shards, got, want)
		}
		wantLink := sys.LinkTraffic()
		gotLink := shd.LinkTraffic()
		for i := range wantLink {
			for j := range wantLink[i] {
				if gotLink[i][j] != wantLink[i][j] {
					t.Fatalf("shards=%d: link[%d][%d] = %d, system %d", shards, i, j, gotLink[i][j], wantLink[i][j])
				}
			}
		}
		if got, want := shd.InterChipFraction(), sys.InterChipFraction(); got != want {
			t.Fatalf("shards=%d: inter-chip fraction %g, system %g", shards, got, want)
		}
		if shd.Now() != sys.Now() {
			t.Fatalf("shards=%d: clock %d, system %d", shards, shd.Now(), sys.Now())
		}
	}
}

// TestShardedResetBitIdentical pins the Reset contract across the
// partition: chips pristine, traffic zeroed, activity counters
// preserved, and the next presentation bit-identical to a fresh build.
func TestShardedResetBitIdentical(t *testing.T) {
	cfg := Config{ChipCoresX: 2, ChipCoresY: 2}
	fresh, err := NewSharded(chainRig(), cfg, 4, chip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantOuts := present(t, fresh.Inject, fresh.Tick)
	wantStats := fresh.Stats()

	shd, err := NewSharded(chainRig(), cfg, 4, chip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	present(t, shd.Inject, shd.Tick)
	counters := shd.Counters()
	shd.Reset()
	if shd.Now() != 0 {
		t.Fatalf("Now after Reset = %d", shd.Now())
	}
	if st := shd.Stats(); st != (Stats{}) {
		t.Fatalf("Reset left traffic %+v", st)
	}
	if got := shd.Counters(); got != counters {
		t.Fatalf("Reset dropped activity counters: %+v -> %+v", counters, got)
	}
	gotOuts := present(t, shd.Inject, shd.Tick)
	if len(gotOuts) != len(wantOuts) {
		t.Fatalf("reset sharded emitted %d outputs, fresh %d", len(gotOuts), len(wantOuts))
	}
	for i := range wantOuts {
		if gotOuts[i] != wantOuts[i] {
			t.Fatalf("output %d: reset %+v, fresh %+v", i, gotOuts[i], wantOuts[i])
		}
	}
	if got := shd.Stats(); got != wantStats {
		t.Fatalf("traffic after reset %+v, fresh %+v", got, wantStats)
	}
}

func TestNewShardedFromValidates(t *testing.T) {
	cfg := Config{ChipCoresX: 2, ChipCoresY: 2}
	mk := func(chips ...int) ShardConn {
		sh, err := NewShard(chainRig(), cfg, chips, chip.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	if _, err := NewShardedFrom(chainRig(), cfg, nil, nil); err == nil {
		t.Error("no conns accepted")
	}
	// Chip 3 unowned.
	if _, err := NewShardedFrom(chainRig(), cfg,
		[]ShardConn{mk(0, 1), mk(2)}, [][]int{{0, 1}, {2}}); err == nil {
		t.Error("partition with an orphan chip accepted")
	}
	// Chip 1 claimed twice.
	if _, err := NewShardedFrom(chainRig(), cfg,
		[]ShardConn{mk(0, 1), mk(1, 2, 3)}, [][]int{{0, 1}, {1, 2, 3}}); err == nil {
		t.Error("overlapping partition accepted")
	}
	// Chip index outside the tile.
	if _, err := NewShardedFrom(chainRig(), cfg,
		[]ShardConn{mk(0, 1, 2, 3)}, [][]int{{0, 1, 2, 9}}); err == nil {
		t.Error("out-of-range chip accepted")
	}
	if _, err := NewSharded(chainRig(), cfg, 0, chip.Options{}); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewSharded(chainRig(), cfg, 5, chip.Options{}); err == nil {
		t.Error("more shards than chips accepted")
	}
}

// failingConn wraps an in-process shard and fails every TickLocal —
// the minimal stand-in for a dead shard process.
type failingConn struct {
	*Shard
	cause error
}

func (f *failingConn) TickLocal(EvalMode, int, []BoundarySpike) (TickResult, error) {
	return TickResult{}, f.cause
}

func (f *failingConn) TickLocalN(EvalMode, int, []BoundarySpike, int) (WindowResult, error) {
	return WindowResult{}, f.cause
}

// TestShardedFailureSticky pins the failure contract: one failing
// shard makes the system permanently down — Tick returns nil, Err
// matches ErrShardDown and names the shard, Inject refuses, Reset is a
// no-op — and the failure never panics or hangs.
func TestShardedFailureSticky(t *testing.T) {
	cfg := Config{ChipCoresX: 2, ChipCoresY: 2}
	good, err := NewShard(chainRig(), cfg, []int{0, 1}, chip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := NewShard(chainRig(), cfg, []int{2, 3}, chip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("connection severed")
	shd, err := NewShardedFrom(chainRig(), cfg,
		[]ShardConn{good, &failingConn{Shard: bad, cause: cause}}, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if outs := shd.Tick(); outs != nil {
		t.Fatalf("Tick on a failing partition returned %+v", outs)
	}
	failure := shd.Err()
	if failure == nil {
		t.Fatal("Err nil after shard failure")
	}
	if !errors.Is(failure, ErrShardDown) {
		t.Fatalf("Err %v does not match ErrShardDown", failure)
	}
	if !errors.Is(failure, cause) {
		t.Fatalf("Err %v does not unwrap to the transport cause", failure)
	}
	var down *ShardDownError
	if !errors.As(failure, &down) || down.Shard != 1 {
		t.Fatalf("Err %v does not name shard 1", failure)
	}
	if !strings.HasPrefix(failure.Error(), "sim: shard 1 down") {
		t.Fatalf("Err text %q", failure)
	}
	// Sticky: everything after the failure reports it, nothing recovers.
	if err := shd.Inject(0, 0, shd.Now()); !errors.Is(err, ErrShardDown) {
		t.Fatalf("Inject after failure = %v", err)
	}
	shd.Reset()
	if shd.Err() == nil {
		t.Fatal("Reset cleared a failed partition")
	}
	if outs := shd.Tick(); outs != nil || !errors.Is(shd.Err(), ErrShardDown) {
		t.Fatal("second Tick did not stay down")
	}
	// BindContext and Close must tolerate the failed state.
	shd.BindContext(context.Background())
	if err := shd.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
