// Package system models multi-chip builds: a compiled core grid
// partitioned onto a tile of physical chips (as real deployments tile
// 4x4 boards from single chips). Cores keep their global mesh
// coordinates — routing semantics are unchanged — but spikes whose
// source and destination fall on different physical chips cross
// chip-to-chip links, which are the scarce resource of multi-chip
// systems. The system layer accounts for that boundary traffic, per
// link, so placement quality can be judged at the system level.
package system

import (
	"fmt"

	"github.com/neurogo/neurogo/internal/chip"
)

// Config partitions a core grid onto physical chips.
type Config struct {
	// ChipCoresX and ChipCoresY are the per-chip core-grid dimensions.
	ChipCoresX, ChipCoresY int
}

// System wraps a chip-level simulation with multi-chip accounting.
type System struct {
	ch     *chip.Chip
	cfg    Config
	chipsX int
	chipsY int

	intra uint64
	inter uint64
	// linkTraffic[src chip][dst chip] counts boundary-crossing spikes.
	linkTraffic [][]uint64
}

// New partitions the chip cfg onto physical chips of the given per-chip
// core dimensions. The core grid must tile exactly.
func New(coreGrid *chip.Config, cfg Config) (*System, error) {
	if cfg.ChipCoresX <= 0 || cfg.ChipCoresY <= 0 {
		return nil, fmt.Errorf("system: chip dimensions %dx%d must be positive", cfg.ChipCoresX, cfg.ChipCoresY)
	}
	if coreGrid.Width%cfg.ChipCoresX != 0 || coreGrid.Height%cfg.ChipCoresY != 0 {
		return nil, fmt.Errorf("system: %dx%d cores do not tile into %dx%d-core chips",
			coreGrid.Width, coreGrid.Height, cfg.ChipCoresX, cfg.ChipCoresY)
	}
	s := &System{
		ch:     chip.New(coreGrid),
		cfg:    cfg,
		chipsX: coreGrid.Width / cfg.ChipCoresX,
		chipsY: coreGrid.Height / cfg.ChipCoresY,
	}
	n := s.chipsX * s.chipsY
	s.linkTraffic = make([][]uint64, n)
	for i := range s.linkTraffic {
		s.linkTraffic[i] = make([]uint64, n)
	}
	s.ch.SetRouteObserver(func(src, dst int32) {
		a, b := s.ChipOf(src), s.ChipOf(dst)
		if a == b {
			s.intra++
			return
		}
		s.inter++
		s.linkTraffic[a][b]++
	})
	return s, nil
}

// Chip exposes the underlying chip simulation.
func (s *System) Chip() *chip.Chip { return s.ch }

// Chips returns the number of physical chips.
func (s *System) Chips() int { return s.chipsX * s.chipsY }

// ChipsX returns the chip-tile width.
func (s *System) ChipsX() int { return s.chipsX }

// ChipsY returns the chip-tile height.
func (s *System) ChipsY() int { return s.chipsY }

// ChipOf returns the physical chip index (row-major) hosting a core.
func (s *System) ChipOf(coreIdx int32) int {
	c := s.ch.Coord(coreIdx)
	cx := int(c.X) / s.cfg.ChipCoresX
	cy := int(c.Y) / s.cfg.ChipCoresY
	return cy*s.chipsX + cx
}

// Tick advances the system one tick.
func (s *System) Tick() []chip.OutputSpike { return s.ch.Tick() }

// Stats summarises boundary traffic.
type Stats struct {
	// IntraChip counts spikes routed within one physical chip.
	IntraChip uint64
	// InterChip counts spikes crossing chip-to-chip links.
	InterChip uint64
	// BusiestLink is the highest single (src chip, dst chip) count.
	BusiestLink uint64
}

// Stats returns the current boundary-traffic summary.
func (s *System) Stats() Stats {
	st := Stats{IntraChip: s.intra, InterChip: s.inter}
	for _, row := range s.linkTraffic {
		for _, v := range row {
			if v > st.BusiestLink {
				st.BusiestLink = v
			}
		}
	}
	return st
}

// LinkTraffic returns the (src chip, dst chip) crossing counts. Callers
// must not modify it.
func (s *System) LinkTraffic() [][]uint64 { return s.linkTraffic }

// InterChipFraction returns the fraction of routed spikes that cross
// chip boundaries (0 when nothing has been routed).
func (s *System) InterChipFraction() float64 {
	total := s.intra + s.inter
	if total == 0 {
		return 0
	}
	return float64(s.inter) / float64(total)
}

// Capacity aggregates per-chip capacity across the tile.
func (s *System) Capacity() chip.Capacity {
	per := chip.CapacityOf(s.cfg.ChipCoresX, s.cfg.ChipCoresY)
	n := s.Chips()
	return chip.Capacity{
		Cores:        per.Cores * n,
		Neurons:      per.Neurons * n,
		Synapses:     per.Synapses * n,
		SRAMBits:     per.SRAMBits * int64(n),
		MeshDiameter: (s.chipsX*s.cfg.ChipCoresX - 1) + (s.chipsY*s.cfg.ChipCoresY - 1),
	}
}
