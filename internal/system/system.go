// Package system models multi-chip builds: a compiled core grid
// partitioned onto a tile of physical chips (as real deployments tile
// 4x4 boards from single chips). Cores keep their global mesh
// coordinates — routing semantics are unchanged — but spikes whose
// source and destination fall on different physical chips cross
// chip-to-chip links, which are the scarce resource of multi-chip
// systems. The system layer accounts for that boundary traffic, per
// link, so placement quality can be judged at the system level.
package system

import (
	"fmt"

	"github.com/neurogo/neurogo/internal/chip"
)

// Config partitions a core grid onto physical chips.
type Config struct {
	// ChipCoresX and ChipCoresY are the per-chip core-grid dimensions.
	ChipCoresX, ChipCoresY int
}

// Validate checks that the core grid tiles exactly into chips of the
// configured per-chip dimensions. New performs the same check; callers
// that defer construction (e.g. a pipeline validating options before
// building per-session systems) can validate up front.
func (cfg Config) Validate(coreGrid *chip.Config) error {
	if cfg.ChipCoresX <= 0 || cfg.ChipCoresY <= 0 {
		return fmt.Errorf("system: chip dimensions %dx%d must be positive", cfg.ChipCoresX, cfg.ChipCoresY)
	}
	if coreGrid.Width%cfg.ChipCoresX != 0 || coreGrid.Height%cfg.ChipCoresY != 0 {
		return fmt.Errorf("system: %dx%d cores do not tile into %dx%d-core chips",
			coreGrid.Width, coreGrid.Height, cfg.ChipCoresX, cfg.ChipCoresY)
	}
	return nil
}

// System wraps a chip-level simulation with multi-chip accounting.
type System struct {
	ch     *chip.Chip
	cfg    Config
	chipsX int
	chipsY int

	intra uint64
	inter uint64
	// linkTraffic[src chip][dst chip] counts boundary-crossing spikes.
	linkTraffic [][]uint64
}

// New partitions the chip cfg onto physical chips of the given per-chip
// core dimensions. The core grid must tile exactly.
func New(coreGrid *chip.Config, cfg Config) (*System, error) {
	return NewWithOptions(coreGrid, cfg, chip.Options{})
}

// NewWithOptions is New with explicit chip construction options (e.g.
// chip.Options.NoPlan to force the legacy scalar core path).
func NewWithOptions(coreGrid *chip.Config, cfg Config, opt chip.Options) (*System, error) {
	if err := cfg.Validate(coreGrid); err != nil {
		return nil, err
	}
	s := &System{
		ch:     chip.NewWithOptions(coreGrid, opt),
		cfg:    cfg,
		chipsX: coreGrid.Width / cfg.ChipCoresX,
		chipsY: coreGrid.Height / cfg.ChipCoresY,
	}
	n := s.chipsX * s.chipsY
	s.linkTraffic = make([][]uint64, n)
	for i := range s.linkTraffic {
		s.linkTraffic[i] = make([]uint64, n)
	}
	s.ch.SetRouteObserver(func(src, dst int32) {
		a, b := s.ChipOf(src), s.ChipOf(dst)
		if a == b {
			s.intra++
			return
		}
		s.inter++
		s.linkTraffic[a][b]++
	})
	return s, nil
}

// Chip exposes the underlying chip simulation.
func (s *System) Chip() *chip.Chip { return s.ch }

// Reset returns the system to its power-on state: every core pristine
// (see chip.Reset) and the boundary-traffic counters — linkTraffic,
// intra- and inter-chip totals — zeroed. After Reset the system is
// bit-identical to a freshly built New over the same configuration,
// which is what makes system-backed sessions reusable like chip-backed
// ones. Chip-level activity counters are preserved (chip.Reset
// semantics) for cumulative energy accounting; callers that want
// cumulative *traffic* accounting across Resets must fold Stats and
// LinkTraffic before calling (as the pipeline's sessions do).
func (s *System) Reset() {
	s.ch.Reset()
	s.intra = 0
	s.inter = 0
	for i := range s.linkTraffic {
		for j := range s.linkTraffic[i] {
			s.linkTraffic[i][j] = 0
		}
	}
}

// Chips returns the number of physical chips.
func (s *System) Chips() int { return s.chipsX * s.chipsY }

// ChipsX returns the chip-tile width.
func (s *System) ChipsX() int { return s.chipsX }

// ChipsY returns the chip-tile height.
func (s *System) ChipsY() int { return s.chipsY }

// ChipOf returns the physical chip index (row-major) hosting a core.
func (s *System) ChipOf(coreIdx int32) int {
	c := s.ch.Coord(coreIdx)
	cx := int(c.X) / s.cfg.ChipCoresX
	cy := int(c.Y) / s.cfg.ChipCoresY
	return cy*s.chipsX + cx
}

// Tick advances the system one tick (event-driven core evaluation).
func (s *System) Tick() []chip.OutputSpike { return s.ch.Tick() }

// TickDense advances one tick with the clock-driven core evaluation.
func (s *System) TickDense() []chip.OutputSpike { return s.ch.TickDense() }

// TickParallel advances one tick sharded across worker goroutines,
// bit-identically to Tick. The route observer (and hence boundary
// accounting) runs on the ticking goroutine after the barrier, exactly
// as on a bare chip.
func (s *System) TickParallel(workers int) []chip.OutputSpike { return s.ch.TickParallel(workers) }

// Inject schedules an external input spike; see chip.Inject.
func (s *System) Inject(coreIdx int32, axon int, at int64) error {
	return s.ch.Inject(coreIdx, axon, at)
}

// Now returns the next tick to be executed.
func (s *System) Now() int64 { return s.ch.Now() }

// Counters returns the underlying chip-level activity counters.
func (s *System) Counters() chip.Counters { return s.ch.Counters() }

// ResetCounters zeroes the underlying chip and core activity counters
// (boundary-traffic counters are cleared by Reset instead).
func (s *System) ResetCounters() { s.ch.ResetCounters() }

// Stats summarises boundary traffic.
type Stats struct {
	// IntraChip counts spikes routed within one physical chip.
	IntraChip uint64
	// InterChip counts spikes crossing chip-to-chip links.
	InterChip uint64
	// BusiestLink is the highest single (src chip, dst chip) count.
	BusiestLink uint64
}

// BoundaryTotals returns the intra- and inter-chip routed spike counts
// in O(1) — the hot-path alternative to Stats, which scans the link
// matrix for the busiest link.
func (s *System) BoundaryTotals() (intra, inter uint64) { return s.intra, s.inter }

// AddLinkTrafficInto adds the live link matrix into dst (same shape)
// without allocating — the accumulation-path alternative to the
// deep-copying LinkTraffic.
func (s *System) AddLinkTrafficInto(dst [][]uint64) {
	for i, row := range s.linkTraffic {
		for j, v := range row {
			dst[i][j] += v
		}
	}
}

// Stats returns the current boundary-traffic summary.
func (s *System) Stats() Stats {
	st := Stats{IntraChip: s.intra, InterChip: s.inter}
	for _, row := range s.linkTraffic {
		for _, v := range row {
			if v > st.BusiestLink {
				st.BusiestLink = v
			}
		}
	}
	return st
}

// LinkTraffic returns a snapshot of the (src chip, dst chip) crossing
// counts. The matrix is a deep copy, so callers may keep or mutate it
// freely without corrupting the live accounting.
func (s *System) LinkTraffic() [][]uint64 {
	out := make([][]uint64, len(s.linkTraffic))
	for i, row := range s.linkTraffic {
		out[i] = append([]uint64(nil), row...)
	}
	return out
}

// InterChipFraction returns the fraction of routed spikes that cross
// chip boundaries (0 when nothing has been routed).
func (s *System) InterChipFraction() float64 {
	total := s.intra + s.inter
	if total == 0 {
		return 0
	}
	return float64(s.inter) / float64(total)
}

// Capacity aggregates per-chip capacity across the tile.
func (s *System) Capacity() chip.Capacity {
	per := chip.CapacityOf(s.cfg.ChipCoresX, s.cfg.ChipCoresY)
	n := s.Chips()
	return chip.Capacity{
		Cores:        per.Cores * n,
		Neurons:      per.Neurons * n,
		Synapses:     per.Synapses * n,
		SRAMBits:     per.SRAMBits * int64(n),
		MeshDiameter: (s.chipsX*s.cfg.ChipCoresX - 1) + (s.chipsY*s.cfg.ChipCoresY - 1),
	}
}
