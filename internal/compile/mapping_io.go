package compile

// Mapping serialization: a compiled network is the deployment artifact
// (the analogue of a flashed chip image plus its host-side I/O tables),
// so it round-trips through a versioned binary format. The chip
// configuration itself is delegated to package persist.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/persist"
)

const (
	mappingMagic = 0x4E474D6150 // "NGMaP"-ish tag
	// Version 2 appended the tiling stats (chip dims, boundary cost,
	// predicted inter-chip fraction) for boundary-aware placements;
	// version 3 appended the fast-path coverage stats (mapped and
	// deterministic neuron counts); version 4 appended the minimum
	// boundary-crossing delay (the distributed exchange-window bound).
	// Older streams still load: missing stats take their zero values,
	// except MinBoundaryDelay, which is recomputed from the decoded
	// chip image so pre-v4 artifacts stay windowable.
	mappingVersion = 4
)

// Write serializes the mapping to dst.
func (m *Mapping) Write(dst io.Writer) error {
	w := bufio.NewWriter(dst)
	u64 := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := w.Write(buf[:])
		return err
	}
	write := func(vs ...uint64) error {
		for _, v := range vs {
			if err := u64(v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(mappingMagic, mappingVersion); err != nil {
		return err
	}
	if err := persist.WriteConfig(w, m.Chip); err != nil {
		return err
	}
	if err := write(uint64(len(m.NeuronLoc))); err != nil {
		return err
	}
	for _, loc := range m.NeuronLoc {
		if err := write(uint64(uint32(loc.Core)), uint64(loc.Neuron)); err != nil {
			return err
		}
	}
	if err := write(uint64(len(m.InputTargets))); err != nil {
		return err
	}
	for line, targets := range m.InputTargets {
		if err := write(uint64(len(targets)), uint64(m.InputDelay[line])); err != nil {
			return err
		}
		for _, t := range targets {
			if err := write(uint64(uint32(t.Core)), uint64(t.Axon)); err != nil {
				return err
			}
		}
	}
	if err := write(uint64(len(m.outputIndex))); err != nil {
		return err
	}
	// Deterministic order: iterate physical keys ascending.
	keys := make([]uint32, 0, len(m.outputIndex))
	for k := range m.outputIndex {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		id := m.outputIndex[k]
		if err := write(uint64(k), uint64(uint32(id)), uint64(m.outputLag[id])); err != nil {
			return err
		}
	}
	if err := write(
		uint64(m.Stats.NeuronGroups), uint64(m.Stats.SplitterGroups),
		uint64(m.Stats.Relays), uint64(m.Stats.UsedCores),
		uint64(m.Stats.GridWidth), uint64(m.Stats.GridHeight)); err != nil {
		return err
	}
	if err := u64(uint64(int64(m.Stats.PlacementCost * 1e6))); err != nil {
		return err
	}
	if err := write(uint64(m.Stats.ChipCoresX), uint64(m.Stats.ChipCoresY)); err != nil {
		return err
	}
	if err := u64(uint64(int64(m.Stats.BoundaryCost * 1e6))); err != nil {
		return err
	}
	if err := u64(uint64(int64(m.Stats.PredictedInterChipFraction * 1e9))); err != nil {
		return err
	}
	if err := write(uint64(m.Stats.MappedNeurons), uint64(m.Stats.DeterministicNeurons)); err != nil {
		return err
	}
	if err := u64(uint64(m.Stats.MinBoundaryDelay)); err != nil {
		return err
	}
	return w.Flush()
}

// ReadMapping deserializes a mapping written by Write.
func ReadMapping(src io.Reader) (*Mapping, error) {
	r := bufio.NewReader(src)
	u64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	need := func() uint64 {
		v, err := u64()
		if err != nil {
			panic(readErr{err})
		}
		return v
	}
	m := &Mapping{outputIndex: map[uint32]model.NeuronID{}, outputLag: map[model.NeuronID]uint8{}}
	var retErr error
	func() {
		defer func() {
			if p := recover(); p != nil {
				if re, ok := p.(readErr); ok {
					retErr = re.err
					return
				}
				panic(p)
			}
		}()
		if magic := need(); magic != mappingMagic {
			retErr = fmt.Errorf("compile: bad mapping magic %#x", magic)
			return
		}
		version := need()
		if version < 1 || version > mappingVersion {
			retErr = fmt.Errorf("compile: unsupported mapping version %d", version)
			return
		}
		cfg, err := persist.ReadConfig(r)
		if err != nil {
			retErr = err
			return
		}
		m.Chip = cfg
		nLoc := need()
		if nLoc > 1<<30 {
			retErr = fmt.Errorf("compile: implausible neuron count %d", nLoc)
			return
		}
		for i := uint64(0); i < nLoc; i++ {
			c := int32(uint32(need()))
			n := uint8(need())
			m.NeuronLoc = append(m.NeuronLoc, Loc{Core: c, Neuron: n})
		}
		nIn := need()
		if nIn > 1<<30 {
			retErr = fmt.Errorf("compile: implausible input count %d", nIn)
			return
		}
		for i := uint64(0); i < nIn; i++ {
			nT := need()
			m.InputDelay = append(m.InputDelay, uint8(need()))
			var ts []AxonLoc
			for k := uint64(0); k < nT; k++ {
				c := int32(uint32(need()))
				a := uint8(need())
				ts = append(ts, AxonLoc{Core: c, Axon: a})
			}
			m.InputTargets = append(m.InputTargets, ts)
		}
		nOut := need()
		if nOut > 1<<30 {
			retErr = fmt.Errorf("compile: implausible output count %d", nOut)
			return
		}
		for i := uint64(0); i < nOut; i++ {
			key := uint32(need())
			id := model.NeuronID(uint32(need()))
			lag := uint8(need())
			m.outputIndex[key] = id
			m.outputLag[id] = lag
		}
		m.Stats.NeuronGroups = int(need())
		m.Stats.SplitterGroups = int(need())
		m.Stats.Relays = int(need())
		m.Stats.UsedCores = int(need())
		m.Stats.GridWidth = int(need())
		m.Stats.GridHeight = int(need())
		m.Stats.PlacementCost = float64(int64(need())) / 1e6
		// The v2 tiling stats are appended at the end of the stream, so
		// v1 artifacts load unchanged with the untiled zero values.
		if version >= 2 {
			m.Stats.ChipCoresX = int(need())
			m.Stats.ChipCoresY = int(need())
			m.Stats.BoundaryCost = float64(int64(need())) / 1e6
			m.Stats.PredictedInterChipFraction = float64(int64(need())) / 1e9
		}
		if version >= 3 {
			m.Stats.MappedNeurons = int(need())
			m.Stats.DeterministicNeurons = int(need())
			if m.Stats.MappedNeurons > 0 {
				m.Stats.DeterministicFraction =
					float64(m.Stats.DeterministicNeurons) / float64(m.Stats.MappedNeurons)
			}
		}
		if version >= 4 {
			m.Stats.MinBoundaryDelay = int(need())
		} else {
			// Pre-v4 artifact: derive the exchange-window bound from the
			// chip image so old deployments can still serve windowed.
			m.Stats.MinBoundaryDelay = MinBoundaryDelay(m.Chip, m.Stats.ChipCoresX, m.Stats.ChipCoresY)
		}
	}()
	if retErr != nil {
		return nil, retErr
	}
	return m, nil
}

// readErr carries read failures through the decoder's panic path.
type readErr struct{ err error }
