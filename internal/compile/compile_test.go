package compile

import (
	"testing"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/core"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/neuron"
)

// ffnet builds a small feed-forward net: 4 inputs -> 8 hidden -> 2 out.
func ffnet() *model.Network {
	m := model.New()
	in := m.AddInputBank("in", 4, model.SourceProps{Type: 0, Delay: 1})
	hidden := m.AddPopulation("hidden", 8, neuron.Default())
	out := m.AddPopulation("out", 2, neuron.Default())
	for i := 0; i < 4; i++ {
		for h := 0; h < 8; h++ {
			m.Connect(in.Line(i), hidden.ID(h))
		}
	}
	for h := 0; h < 8; h++ {
		for o := 0; o < 2; o++ {
			m.Connect(model.NeuronNode(hidden.ID(h)), out.ID(o))
		}
	}
	for o := 0; o < 2; o++ {
		m.MarkOutput(out.ID(o))
	}
	return m
}

func TestCompileSmallNet(t *testing.T) {
	mp, err := Compile(ffnet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Stats.NeuronGroups != 1 {
		t.Errorf("NeuronGroups = %d, want 1 (10 neurons fit one core)", mp.Stats.NeuronGroups)
	}
	if mp.Stats.SplitterGroups != 0 || mp.Stats.Relays != 0 {
		t.Errorf("unexpected splitters: %+v", mp.Stats)
	}
	if len(mp.NeuronLoc) != 10 {
		t.Fatalf("NeuronLoc length %d", len(mp.NeuronLoc))
	}
	if len(mp.InputTargets) != 4 {
		t.Fatalf("InputTargets length %d", len(mp.InputTargets))
	}
	for line, ts := range mp.InputTargets {
		if len(ts) != 1 {
			t.Errorf("input %d has %d targets, want 1 (single group)", line, len(ts))
		}
	}
	if err := mp.Chip.Validate(); err != nil {
		t.Fatalf("compiled chip invalid: %v", err)
	}
}

func TestAxonSharing(t *testing.T) {
	// One input feeding many neurons in one core must consume one axon.
	m := model.New()
	in := m.AddInputBank("in", 1, model.SourceProps{Type: 0, Delay: 1})
	p := m.AddPopulation("p", 50, neuron.Default())
	for i := 0; i < 50; i++ {
		m.Connect(in.Line(0), p.ID(i))
	}
	mp, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cc := mp.Chip.Cores[mp.InputTargets[0][0].Core]
	ax := int(mp.InputTargets[0][0].Axon)
	if got := cc.Synapses.RowCount(ax); got != 50 {
		t.Fatalf("axon row has %d synapses, want 50", got)
	}
}

func TestSplitterInsertedForMultiCoreFanout(t *testing.T) {
	m := model.New()
	// 300 neurons force two groups.
	p := m.AddPopulation("p", 300, neuron.Default())
	src := m.AddPopulation("src", 1, neuron.Default())
	m.SourceProps(src.ID(0)).Delay = 2
	m.Connect(model.NeuronNode(src.ID(0)), p.ID(0))
	m.Connect(model.NeuronNode(src.ID(0)), p.ID(299))
	mp, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Stats.SplitterGroups != 1 {
		t.Fatalf("SplitterGroups = %d, want 1", mp.Stats.SplitterGroups)
	}
	if mp.Stats.Relays != 2 {
		t.Fatalf("Relays = %d, want 2", mp.Stats.Relays)
	}
	// The source's physical neuron must have delay 1 (hop to splitter).
	loc := mp.NeuronLoc[src.ID(0)]
	if d := mp.Chip.Cores[loc.Core].Neurons[loc.Neuron].Delay; d != 1 {
		t.Fatalf("split source delay = %d, want 1", d)
	}
}

func TestSplitterRequiresDelay2(t *testing.T) {
	m := model.New()
	p := m.AddPopulation("p", 300, neuron.Default())
	src := m.AddPopulation("src", 1, neuron.Default())
	// Default delay 1: fan-out across two groups must be rejected.
	m.Connect(model.NeuronNode(src.ID(0)), p.ID(0))
	m.Connect(model.NeuronNode(src.ID(0)), p.ID(299))
	if _, err := Compile(m, Options{}); err == nil {
		t.Fatal("multi-core fanout with delay 1 must fail to compile")
	}
}

func TestOutputPlusInternalFanoutSplits(t *testing.T) {
	m := model.New()
	p := m.AddPopulation("p", 2, neuron.Default())
	m.SourceProps(p.ID(0)).Delay = 2
	m.Connect(model.NeuronNode(p.ID(0)), p.ID(1))
	m.MarkOutput(p.ID(0))
	mp, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Stats.Relays != 2 {
		t.Fatalf("Relays = %d, want 2 (one internal, one external)", mp.Stats.Relays)
	}
	if lag := mp.OutputLag(p.ID(0)); lag != 1 {
		t.Fatalf("OutputLag = %d, want 1 (via relay)", lag)
	}
}

func TestDirectOutputLagZero(t *testing.T) {
	m := model.New()
	p := m.AddPopulation("p", 1, neuron.Default())
	m.MarkOutput(p.ID(0))
	mp, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lag := mp.OutputLag(p.ID(0)); lag != 0 {
		t.Fatalf("OutputLag = %d, want 0", lag)
	}
	loc := mp.NeuronLoc[p.ID(0)]
	if mp.Chip.Cores[loc.Core].Targets[loc.Neuron].Core != core.ExternalCore {
		t.Fatal("sole-output neuron must target ExternalCore directly")
	}
}

func TestDecodeOutputRoundTrip(t *testing.T) {
	mp, err := Compile(ffnet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []model.NeuronID{8, 9} { // the two outputs
		loc, ok := mp.OutputLoc(id)
		if !ok {
			t.Fatalf("neuron %d has no output location", id)
		}
		got, ok := mp.DecodeOutput(chipOutput(loc))
		if !ok || got != id {
			t.Fatalf("decode(%v) = (%d,%v), want %d", loc, got, ok, id)
		}
	}
}

func chipOutput(l Loc) chip.OutputSpike {
	return chip.OutputSpike{Core: l.Core, Neuron: l.Neuron}
}

func TestCompileDeterministic(t *testing.T) {
	a, err := Compile(ffnet(), Options{Placer: PlacerAnneal, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(ffnet(), Options{Placer: PlacerAnneal, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	for i := range a.NeuronLoc {
		if a.NeuronLoc[i] != b.NeuronLoc[i] {
			t.Fatalf("NeuronLoc[%d] differs", i)
		}
	}
}

func TestPlacersAllLegal(t *testing.T) {
	for _, p := range []Placer{PlacerGreedy, PlacerRandom, PlacerAnneal} {
		mp, err := Compile(bigNet(), Options{Placer: p, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if err := mp.Chip.Validate(); err != nil {
			t.Fatalf("%v: invalid chip: %v", p, err)
		}
	}
}

// bigNet spans several cores: 3 populations of 300 with sparse wiring.
func bigNet() *model.Network {
	m := model.New()
	a := m.AddPopulation("a", 300, neuron.Default())
	b := m.AddPopulation("b", 300, neuron.Default())
	in := m.AddInputBank("in", 16, model.SourceProps{Type: 0, Delay: 1})
	for i := 0; i < 16; i++ {
		for k := 0; k < 20; k++ {
			m.Connect(in.Line(i), a.ID((i*20+k)%300))
		}
	}
	for i := 0; i < 300; i++ {
		m.SourceProps(a.ID(i)).Delay = 2
		m.Connect(model.NeuronNode(a.ID(i)), b.ID(i))
		m.Connect(model.NeuronNode(a.ID(i)), b.ID((i+150)%300))
	}
	for i := 0; i < 300; i += 10 {
		m.MarkOutput(b.ID(i))
	}
	return m
}

func TestGreedyPlacementBeatsRandomOnBigNet(t *testing.T) {
	g, err := Compile(bigNet(), Options{Placer: PlacerGreedy})
	if err != nil {
		t.Fatal(err)
	}
	worse := 0
	for seed := uint64(0); seed < 5; seed++ {
		r, err := Compile(bigNet(), Options{Placer: PlacerRandom, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if r.Stats.PlacementCost >= g.Stats.PlacementCost {
			worse++
		}
	}
	if worse < 4 {
		t.Errorf("greedy placement (cost %.0f) beat only %d/5 random placements",
			g.Stats.PlacementCost, worse)
	}
}

func TestForcedGridTooSmall(t *testing.T) {
	if _, err := Compile(bigNet(), Options{Width: 1, Height: 1}); err == nil {
		t.Fatal("1x1 grid must be rejected for a multi-core net")
	}
}

func TestForcedGridHonored(t *testing.T) {
	mp, err := Compile(ffnet(), Options{Width: 3, Height: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Chip.Width != 3 || mp.Chip.Height != 2 {
		t.Fatalf("grid = %dx%d", mp.Chip.Width, mp.Chip.Height)
	}
	if mp.Stats.GridWidth != 3 || mp.Stats.GridHeight != 2 {
		t.Fatalf("stats grid = %dx%d", mp.Stats.GridWidth, mp.Stats.GridHeight)
	}
}

func TestInvalidModelRejected(t *testing.T) {
	m := model.New()
	p := m.AddPopulation("p", 1, neuron.Default())
	m.Params(p.ID(0)).Threshold = 0 // invalid
	if _, err := Compile(m, Options{}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestParallelEdgesCollapse(t *testing.T) {
	m := model.New()
	in := m.AddInputBank("in", 1, model.SourceProps{Type: 0, Delay: 1})
	p := m.AddPopulation("p", 1, neuron.Default())
	m.Connect(in.Line(0), p.ID(0))
	m.Connect(in.Line(0), p.ID(0)) // duplicate
	mp, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cc := mp.Chip.Cores[mp.InputTargets[0][0].Core]
	if got := cc.Synapses.RowCount(int(mp.InputTargets[0][0].Axon)); got != 1 {
		t.Fatalf("parallel edges produced %d synapses, want 1", got)
	}
}

func TestDroppedNeuronTargetsExternal(t *testing.T) {
	m := model.New()
	p := m.AddPopulation("p", 1, neuron.Default()) // no edges, not output
	mp, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loc := mp.NeuronLoc[p.ID(0)]
	if mp.Chip.Cores[loc.Core].Targets[loc.Neuron].Core != core.ExternalCore {
		t.Fatal("dangling neuron must target ExternalCore")
	}
	// And its spikes must not decode as outputs.
	if _, ok := mp.DecodeOutput(chipOutput(loc)); ok {
		t.Fatal("dropped neuron decoded as output")
	}
}

func TestPlacerString(t *testing.T) {
	if PlacerGreedy.String() != "greedy" || PlacerRandom.String() != "random" || PlacerAnneal.String() != "anneal" {
		t.Error("placer names wrong")
	}
	if Placer(9).String() == "" {
		t.Error("unknown placer must stringify")
	}
}

func TestAxonBudgetForcesGroupSplit(t *testing.T) {
	// 300 distinct input lines feeding one neuron each, plus a neuron
	// that needs them all... simpler: 300 lines -> 300 neurons 1:1 fits
	// one core by neuron count but exceeds the 256-axon budget, so the
	// cluster must split.
	m := model.New()
	in := m.AddInputBank("in", 300, model.SourceProps{Type: 0, Delay: 1})
	// 250 neurons, each fed by two distinct lines: 250 neurons need
	// 300 axons > 256.
	p := m.AddPopulation("p", 150, neuron.Default())
	for i := 0; i < 150; i++ {
		m.Connect(in.Line(i*2), p.ID(i))
		m.Connect(in.Line(i*2+1), p.ID(i))
	}
	mp, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Stats.NeuronGroups < 2 {
		t.Fatalf("NeuronGroups = %d, want >= 2 (axon budget)", mp.Stats.NeuronGroups)
	}
}

func TestCompileBoundaryOptionsValidated(t *testing.T) {
	net := bigNet()
	bad := map[string]Options{
		"one chip dim":        {ChipCoresX: 2},
		"negative chip dim":   {ChipCoresX: -2, ChipCoresY: 2},
		"lambda without tile": {BoundaryWeight: 1},
		"negative lambda":     {ChipCoresX: 2, ChipCoresY: 2, BoundaryWeight: -1},
		"forced grid no tile": {Width: 3, Height: 3, ChipCoresX: 2, ChipCoresY: 2},
	}
	for name, opt := range bad {
		if _, err := Compile(net, opt); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCompileTiledAutoGridRounds(t *testing.T) {
	// bigNet needs 3 cores -> auto side 2; compiling for 3x3-core chips
	// must round the grid up to tile exactly.
	mp, err := Compile(bigNet(), Options{ChipCoresX: 3, ChipCoresY: 3})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Stats.GridWidth%3 != 0 || mp.Stats.GridHeight%3 != 0 {
		t.Fatalf("auto grid %dx%d does not tile into 3x3-core chips",
			mp.Stats.GridWidth, mp.Stats.GridHeight)
	}
	if mp.Stats.ChipCoresX != 3 || mp.Stats.ChipCoresY != 3 {
		t.Fatalf("tiling not recorded: %+v", mp.Stats)
	}
}

// TestCompileTiledLambdaZeroBitIdentical pins the compatibility
// contract end to end: compiling with a tiling recorded but λ = 0 must
// produce the exact placement (and hence chip image) of an untiled
// compile, while additionally reporting the predicted fraction.
func TestCompileTiledLambdaZeroBitIdentical(t *testing.T) {
	for _, placer := range []Placer{PlacerGreedy, PlacerRandom, PlacerAnneal} {
		plain, err := Compile(bigNet(), Options{Placer: placer, Seed: 5, Width: 4, Height: 4})
		if err != nil {
			t.Fatal(err)
		}
		tiled, err := Compile(bigNet(), Options{Placer: placer, Seed: 5, Width: 4, Height: 4,
			ChipCoresX: 2, ChipCoresY: 2})
		if err != nil {
			t.Fatal(err)
		}
		for id := range plain.NeuronLoc {
			if plain.NeuronLoc[id] != tiled.NeuronLoc[id] {
				t.Fatalf("%v: λ=0 tiling moved neuron %d: %+v -> %+v",
					placer, id, plain.NeuronLoc[id], tiled.NeuronLoc[id])
			}
		}
		if plain.Stats.PlacementCost != tiled.Stats.PlacementCost {
			t.Fatalf("%v: hop cost changed: %g -> %g",
				placer, plain.Stats.PlacementCost, tiled.Stats.PlacementCost)
		}
		if tiled.Stats.BoundaryCost != 0 {
			t.Fatalf("%v: λ=0 compile has boundary cost %g", placer, tiled.Stats.BoundaryCost)
		}
		if plain.Stats.PredictedInterChipFraction != 0 {
			t.Fatalf("%v: untiled compile predicts fraction %g",
				placer, plain.Stats.PredictedInterChipFraction)
		}
	}
}

// TestCompileBoundaryAwareReducesPredictedFraction is the compile-level
// objective test: with λ > 0 the recorded predicted inter-chip fraction
// must not exceed the λ=0 placement's, and for the annealer on this
// instance it must strictly drop.
func TestCompileBoundaryAwareReducesPredictedFraction(t *testing.T) {
	base := Options{Placer: PlacerAnneal, Seed: 3, AnnealIters: 20000,
		Width: 4, Height: 4, ChipCoresX: 2, ChipCoresY: 2}
	blind, err := Compile(bigNet(), base)
	if err != nil {
		t.Fatal(err)
	}
	aware := base
	aware.BoundaryWeight = 8
	opt, err := Compile(bigNet(), aware)
	if err != nil {
		t.Fatal(err)
	}
	fb := blind.Stats.PredictedInterChipFraction
	fa := opt.Stats.PredictedInterChipFraction
	if fb == 0 {
		t.Skip("λ=0 placement has no crossings; instance no longer discriminates")
	}
	if fa >= fb {
		t.Errorf("λ=8 predicted fraction %g not below λ=0's %g", fa, fb)
	}
	if opt.Stats.BoundaryCost < 0 {
		t.Errorf("negative boundary cost %g", opt.Stats.BoundaryCost)
	}
}

// TestCompileDeterministicFraction pins the fast-path coverage stats: a
// mixed network must report exactly its deterministic neuron count, and
// an all-deterministic one full coverage.
func TestCompileDeterministicFraction(t *testing.T) {
	mp, err := Compile(ffnet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Stats.MappedNeurons != 10 || mp.Stats.DeterministicNeurons != 10 {
		t.Fatalf("all-deterministic net: %d/%d, want 10/10",
			mp.Stats.DeterministicNeurons, mp.Stats.MappedNeurons)
	}
	if mp.Stats.DeterministicFraction != 1 {
		t.Fatalf("DeterministicFraction = %v, want 1", mp.Stats.DeterministicFraction)
	}

	// Make three hidden neurons stochastic: two via synapse draws, one
	// via a stochastic threshold.
	m := model.New()
	in := m.AddInputBank("in", 2, model.SourceProps{Type: 0, Delay: 1})
	stoch := neuron.Default()
	stoch.SynStochastic[0] = true // weight 1: draws
	masked := neuron.Default()
	masked.MaskBits = 3
	zeroW := neuron.Default()
	zeroW.SynStochastic[2] = true // weight 0: no draw, still deterministic
	pop := m.AddPopulation("s", 2, stoch)
	popM := m.AddPopulation("m", 1, masked)
	popZ := m.AddPopulation("z", 1, zeroW)
	popD := m.AddPopulation("d", 4, neuron.Default())
	for i := 0; i < 2; i++ {
		m.Connect(in.Line(0), pop.ID(i))
		m.MarkOutput(pop.ID(i))
	}
	m.Connect(in.Line(1), popM.ID(0))
	m.MarkOutput(popM.ID(0))
	m.Connect(in.Line(1), popZ.ID(0))
	m.MarkOutput(popZ.ID(0))
	for i := 0; i < 4; i++ {
		m.Connect(in.Line(0), popD.ID(i))
		m.MarkOutput(popD.ID(i))
	}
	mp2, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mp2.Stats.MappedNeurons != 8 || mp2.Stats.DeterministicNeurons != 5 {
		t.Fatalf("mixed net coverage %d/%d, want 5/8",
			mp2.Stats.DeterministicNeurons, mp2.Stats.MappedNeurons)
	}
	want := 5.0 / 8.0
	if mp2.Stats.DeterministicFraction != want {
		t.Fatalf("DeterministicFraction = %v, want %v", mp2.Stats.DeterministicFraction, want)
	}
}
