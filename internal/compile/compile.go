// Package compile lowers a logical network (package model) onto a chip
// configuration (package chip): it clusters neurons into core-sized
// groups, inserts splitter relay trees for multi-core fan-out, allocates
// axons, places groups on the core grid, and emits crossbars, neuron
// parameter blocks and routing targets.
//
// The lowering respects the hardware constraints exactly:
//
//   - at most 256 neurons and 256 distinct inbound sources (axons) per
//     core;
//   - one output target per neuron — a source whose destinations span
//     multiple cores (or that is both internally connected and an
//     external output) is routed through a relay per destination core,
//     packed into splitter cores; each relay level costs one tick, so
//     such sources must declare OutDelay >= 2;
//   - external input lines may fan out to several cores directly: the
//     I/O interface duplicates incoming packets (as real systems do), so
//     no on-chip relays are spent on inputs.
//
// Compilation is deterministic: same network, options and seed produce
// an identical chip image.
package compile

import (
	"fmt"
	"math"

	"github.com/neurogo/neurogo/internal/chip"
	"github.com/neurogo/neurogo/internal/core"
	"github.com/neurogo/neurogo/internal/model"
	"github.com/neurogo/neurogo/internal/neuron"
	"github.com/neurogo/neurogo/internal/place"
)

// Placer selects the placement algorithm.
type Placer int

const (
	// PlacerGreedy is the default: best-first insertion.
	PlacerGreedy Placer = iota
	// PlacerRandom places groups uniformly at random (baseline).
	PlacerRandom
	// PlacerAnneal refines greedy placement with simulated annealing.
	PlacerAnneal
)

// String names the placer.
func (p Placer) String() string {
	switch p {
	case PlacerGreedy:
		return "greedy"
	case PlacerRandom:
		return "random"
	case PlacerAnneal:
		return "anneal"
	default:
		return fmt.Sprintf("Placer(%d)", int(p))
	}
}

// Options tunes compilation.
type Options struct {
	// Placer selects the placement algorithm (default greedy).
	Placer Placer
	// Seed drives random placement and annealing, and derives per-core
	// LFSR seeds.
	Seed uint64
	// AnnealIters overrides the annealing budget (0 = auto).
	AnnealIters int
	// Width/Height force grid dimensions; 0 auto-sizes a near-square
	// grid just large enough.
	Width, Height int
	// ChipCoresX/ChipCoresY compile for a multi-chip tile: the grid is
	// partitioned into physical chips of that many cores each (the same
	// tiling system.Config describes at serving time) and the placement
	// objective prices chip crossings. Both zero means untiled. Forced
	// Width/Height must divide by them; auto-sized grids are rounded up
	// to tile exactly.
	ChipCoresX, ChipCoresY int
	// BoundaryWeight is the λ of the combined placement objective: the
	// extra cost per unit of traffic whose endpoints land on different
	// chips. Requires ChipCoresX/ChipCoresY; zero records the tiling
	// (and its predicted inter-chip fraction) without perturbing the
	// placement — assignments stay bit-identical to an untiled compile.
	BoundaryWeight float64
	// DelayPenalty, when positive, makes the boundary objective
	// delay-aware: the crossing weight of every edge whose axonal delay
	// is a single tick is multiplied by DelayPenalty (higher-delay edges
	// keep weight 1 per spike). Delay-1 chip crossings are what cap the
	// distributed exchange window (Stats.MinBoundaryDelay, system
	// windowed drivers) at W = 1, so pricing them far above ordinary
	// crossings steers the placer toward tilings that stay windowable.
	// Requires BoundaryWeight > 0; zero keeps the objective delay-blind
	// and bit-identical to previous compiles.
	DelayPenalty float64
}

// Loc is a physical neuron location.
type Loc struct {
	Core   int32
	Neuron uint8
}

// AxonLoc is a physical axon location.
type AxonLoc struct {
	Core int32
	Axon uint8
}

// Mapping is the compilation result: the chip image plus the lookup
// tables connecting logical and physical worlds.
//
// A Mapping is immutable once Compile (or ReadMapping) returns: nothing
// in the runtime stack writes to it, and chip.New retains the core
// configs by reference without copying. One Mapping may therefore back
// any number of concurrently running chips, runners and pipeline
// sessions — compile once, serve many.
type Mapping struct {
	// Chip is the compiled chip configuration.
	Chip *chip.Config
	// NeuronLoc locates every logical neuron.
	NeuronLoc []Loc
	// InputTargets lists, per input line, the axons to inject into (one
	// per destination core; the I/O layer duplicates).
	InputTargets [][]AxonLoc
	// InputDelay is each input line's axonal delay in ticks.
	InputDelay []uint8
	// Stats summarises the lowering.
	Stats Stats

	outputIndex map[uint32]model.NeuronID
	outputLag   map[model.NeuronID]uint8
}

// OutputLag returns how many ticks later than its logical fire time an
// output neuron's spike crosses the chip boundary: 0 for direct external
// targets, 1 when the output is replicated through a splitter relay.
func (m *Mapping) OutputLag(id model.NeuronID) uint8 {
	return m.outputLag[id]
}

// MaxOutputLag returns the largest observation lag across all observed
// outputs — the bound on how many ticks behind execution the delivered
// logical event stream can run. Continuous (streaming) decoders use it
// to know which ticks are complete (see sim.Runner.CompleteThrough).
func (m *Mapping) MaxOutputLag() uint8 {
	var max uint8
	for _, lag := range m.outputLag {
		if lag > max {
			max = lag
		}
	}
	return max
}

// Stats summarises what the compiler built.
type Stats struct {
	// NeuronGroups is the number of cores holding logical neurons.
	NeuronGroups int
	// SplitterGroups is the number of cores holding only relays.
	SplitterGroups int
	// Relays is the number of relay neurons inserted.
	Relays int
	// UsedCores is NeuronGroups + SplitterGroups.
	UsedCores int
	// GridWidth/GridHeight are the placed grid dimensions.
	GridWidth, GridHeight int
	// PlacementCost is the traffic-weighted Manhattan cost of the final
	// placement (the T5 metric), excluding any boundary term.
	PlacementCost float64
	// ChipCoresX/ChipCoresY record the per-chip core dimensions the
	// placement was compiled for (0 = untiled). Serving layers validate
	// their tile against these.
	ChipCoresX, ChipCoresY int
	// BoundaryCost is the λ-weighted crossing cost of the placement
	// (zero when untiled or λ = 0).
	BoundaryCost float64
	// PredictedInterChipFraction is the fraction of compile-time traffic
	// weight whose endpoints land on different chips — the placement's
	// prediction of the measured system.InterChipFraction (0 untiled).
	PredictedInterChipFraction float64
	// MinBoundaryDelay is the minimum axonal delay, in ticks, across
	// every edge of the emitted chip image whose endpoints land on
	// different physical chips — the bound D on the legal exchange
	// window of the distributed drivers (shards can run up to D ticks
	// between boundary-spike exchanges without reordering a single
	// delivery; see system.Sharded). 0 means no edge crosses chips at
	// all (untiled, or a fully chip-local placement), in which case the
	// window is unconstrained by routing.
	MinBoundaryDelay int
	// MappedNeurons counts the neurons the compiler emitted: logical
	// neurons plus splitter relays (unused core slots excluded).
	MappedNeurons int
	// DeterministicNeurons counts mapped neurons whose tick update never
	// consumes an LFSR draw — exactly the neurons the core integration
	// plan serves end-to-end on its branch-free fast path (see
	// internal/core/plan.go).
	DeterministicNeurons int
	// DeterministicFraction is DeterministicNeurons / MappedNeurons (0
	// for empty mappings) — the serving fast-path coverage reports print.
	DeterministicFraction float64
}

// DecodeOutput maps an external output spike back to its logical neuron.
// The second result is false for spikes from dropped (unobserved)
// neurons.
func (m *Mapping) DecodeOutput(o chip.OutputSpike) (model.NeuronID, bool) {
	id, ok := m.outputIndex[outKey(o.Core, o.Neuron)]
	return id, ok
}

// OutputLoc returns the physical location whose spikes report logical
// neuron id, or false if id is not an output.
func (m *Mapping) OutputLoc(id model.NeuronID) (Loc, bool) {
	for k, v := range m.outputIndex {
		if v == id {
			return Loc{Core: int32(k >> 8), Neuron: uint8(k & 0xFF)}, true
		}
	}
	return Loc{}, false
}

func outKey(coreIdx int32, n uint8) uint32 {
	return uint32(coreIdx)<<8 | uint32(n)
}

// group is a core-sized cluster under construction.
type group struct {
	members []model.NeuronID
	// axonOf assigns an axon index to each inbound source node.
	axonOf map[model.Node]int
	// axonOrder lists sources in allocation order.
	axonOrder []model.Node
}

func (g *group) axonFor(src model.Node) int {
	if idx, ok := g.axonOf[src]; ok {
		return idx
	}
	idx := len(g.axonOrder)
	g.axonOf[src] = idx
	g.axonOrder = append(g.axonOrder, src)
	return idx
}

// splitEntry is one source routed through a splitter core.
type splitEntry struct {
	src model.Node
	// axon is the source's axon index in the splitter core.
	axon int
	// relayBase is the first relay neuron index; relays follow the
	// order of dests (then the external relay, if any).
	relayBase int
	// dests are the destination group indices, -1 meaning external.
	dests []int
	// dead marks an entry re-homed to another splitter core after
	// placement; its axon/relay slots stay reserved but unemitted.
	dead bool
}

// splitGroup is a splitter core under construction.
type splitGroup struct {
	entries   []splitEntry
	axonCount int
	relays    int
}

// Compile lowers net onto a chip.
func Compile(net *model.Network, opt Options) (*Mapping, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}

	nNeurons := net.Neurons()
	nInputs := net.InputLines()

	// Inbound source sets per neuron, deduplicated, in edge order.
	inbound := make([][]model.Node, nNeurons)
	inSeen := make([]map[model.Node]bool, nNeurons)
	// Outbound destination lists per source, deduplicated, edge order.
	outNeuron := make([][]model.NeuronID, nNeurons)
	outInput := make([][]model.NeuronID, nInputs)
	outSeenN := make([]map[model.NeuronID]bool, nNeurons)
	outSeenI := make([]map[model.NeuronID]bool, nInputs)
	for _, e := range net.Edges() {
		to := e.To
		if inSeen[to] == nil {
			inSeen[to] = map[model.Node]bool{}
		}
		if !inSeen[to][e.From] {
			inSeen[to][e.From] = true
			inbound[to] = append(inbound[to], e.From)
		}
		if e.From.IsInput {
			i := e.From.Idx
			if outSeenI[i] == nil {
				outSeenI[i] = map[model.NeuronID]bool{}
			}
			if !outSeenI[i][to] {
				outSeenI[i][to] = true
				outInput[i] = append(outInput[i], to)
			}
		} else {
			n := e.From.Idx
			if outSeenN[n] == nil {
				outSeenN[n] = map[model.NeuronID]bool{}
			}
			if !outSeenN[n][to] {
				outSeenN[n][to] = true
				outNeuron[n] = append(outNeuron[n], to)
			}
		}
	}

	// ---- Phase 1: cluster neurons into core-sized groups. ----
	var groups []*group
	groupOf := make([]int, nNeurons)
	cur := &group{axonOf: map[model.Node]int{}}
	flush := func() {
		if len(cur.members) > 0 {
			groups = append(groups, cur)
			cur = &group{axonOf: map[model.Node]int{}}
		}
	}
	for id := 0; id < nNeurons; id++ {
		// Sources this neuron adds to the open group.
		added := 0
		for _, src := range inbound[id] {
			if _, ok := cur.axonOf[src]; !ok {
				added++
			}
		}
		if len(cur.members)+1 > core.Size || len(cur.axonOrder)+added > core.Size {
			flush()
		}
		for _, src := range inbound[id] {
			cur.axonFor(src)
		}
		groupOf[id] = len(groups)
		cur.members = append(cur.members, model.NeuronID(id))
	}
	flush()
	nGroups := len(groups)

	// Local index of each neuron within its group.
	localOf := make([]int, nNeurons)
	for gi, g := range groups {
		for li, id := range g.members {
			localOf[id] = li
			_ = gi
		}
	}

	// ---- Phase 2: fan-out analysis for neuron sources. ----
	// For each neuron source: ordered distinct destination groups, plus
	// external observation.
	type srcPlan struct {
		destGroups []int // neuron-group indices
		external   bool
		split      bool
		// For split sources: which splitter group and entry realise it.
		splitterGroup int // index into splits
		entryIndex    int
	}
	plans := make([]srcPlan, nNeurons)
	for id := 0; id < nNeurons; id++ {
		seen := map[int]bool{}
		var dg []int
		for _, to := range outNeuron[id] {
			g := groupOf[to]
			if !seen[g] {
				seen[g] = true
				dg = append(dg, g)
			}
		}
		plans[id] = srcPlan{destGroups: dg, external: net.IsOutput(model.NeuronID(id))}
	}

	// ---- Phase 3: pack splitter relays. ----
	var splits []*splitGroup
	curSplit := &splitGroup{}
	for id := 0; id < nNeurons; id++ {
		p := &plans[id]
		total := len(p.destGroups)
		if p.external {
			total++
		}
		if total < 2 {
			continue
		}
		props := net.SourceProps(model.NeuronID(id))
		if props.Delay < 2 {
			return nil, fmt.Errorf(
				"compile: neuron %d fans out to %d targets across cores, which requires a splitter relay and OutDelay >= 2 (have %d)",
				id, total, props.Delay)
		}
		if curSplit.axonCount+1 > core.Size || curSplit.relays+total > core.Size {
			splits = append(splits, curSplit)
			curSplit = &splitGroup{}
		}
		dests := append([]int(nil), p.destGroups...)
		if p.external {
			dests = append(dests, -1)
		}
		e := splitEntry{
			src:       model.NeuronNode(model.NeuronID(id)),
			axon:      curSplit.axonCount,
			relayBase: curSplit.relays,
			dests:     dests,
		}
		p.split = true
		p.splitterGroup = len(splits)
		p.entryIndex = len(curSplit.entries)
		curSplit.entries = append(curSplit.entries, e)
		curSplit.axonCount++
		curSplit.relays += total
	}
	if len(curSplit.entries) > 0 {
		splits = append(splits, curSplit)
	}
	nSplits := len(splits)
	totalGroups := nGroups + nSplits

	// ---- Phase 4: grid sizing and placement. ----
	if (opt.ChipCoresX > 0) != (opt.ChipCoresY > 0) || opt.ChipCoresX < 0 || opt.ChipCoresY < 0 {
		return nil, fmt.Errorf("compile: chip tile %dx%d must set both dimensions", opt.ChipCoresX, opt.ChipCoresY)
	}
	if opt.BoundaryWeight < 0 {
		return nil, fmt.Errorf("compile: negative boundary weight %g", opt.BoundaryWeight)
	}
	if opt.BoundaryWeight > 0 && opt.ChipCoresX == 0 {
		return nil, fmt.Errorf("compile: boundary weight %g needs ChipCoresX/ChipCoresY", opt.BoundaryWeight)
	}
	if opt.DelayPenalty < 0 {
		return nil, fmt.Errorf("compile: negative delay penalty %g", opt.DelayPenalty)
	}
	if opt.DelayPenalty > 0 && opt.BoundaryWeight == 0 {
		return nil, fmt.Errorf("compile: delay penalty %g needs BoundaryWeight > 0", opt.DelayPenalty)
	}
	width, height := opt.Width, opt.Height
	if width == 0 || height == 0 {
		side := int(math.Ceil(math.Sqrt(float64(totalGroups))))
		if side < 1 {
			side = 1
		}
		width, height = side, side
		// Compiling for a tile: round the auto grid up so it splits into
		// whole chips, mirroring system.Config's serving-time constraint.
		if opt.ChipCoresX > 0 {
			width += (opt.ChipCoresX - width%opt.ChipCoresX) % opt.ChipCoresX
			height += (opt.ChipCoresY - height%opt.ChipCoresY) % opt.ChipCoresY
		}
	}
	if opt.ChipCoresX > 0 && (width%opt.ChipCoresX != 0 || height%opt.ChipCoresY != 0) {
		return nil, fmt.Errorf("compile: %dx%d grid does not tile into %dx%d-core chips",
			width, height, opt.ChipCoresX, opt.ChipCoresY)
	}
	if width*height < totalGroups {
		return nil, fmt.Errorf("compile: %d groups exceed the %dx%d grid", totalGroups, width, height)
	}

	traffic := make([][]float64, totalGroups)
	for i := range traffic {
		traffic[i] = make([]float64, totalGroups)
	}
	// With a delay penalty, the boundary term prices each edge by how
	// hard it constrains the distributed exchange window: delay-1 edges
	// (splitter hops, relays of delay-2 sources, direct delay-1 fan-in)
	// get DelayPenalty per spike, everything else weight 1.
	var crossTraffic [][]float64
	if opt.DelayPenalty > 0 {
		crossTraffic = make([][]float64, totalGroups)
		for i := range crossTraffic {
			crossTraffic[i] = make([]float64, totalGroups)
		}
	}
	addTraffic := func(from, to int, delay uint8) {
		if from >= 0 && to >= 0 && from != to {
			traffic[from][to]++
			if crossTraffic != nil {
				w := 1.0
				if delay <= 1 {
					w = opt.DelayPenalty
				}
				crossTraffic[from][to] += w
			}
		}
	}
	for id := 0; id < nNeurons; id++ {
		p := &plans[id]
		src := groupOf[id]
		delay := net.SourceProps(model.NeuronID(id)).Delay
		if p.split {
			// The source→splitter hop always runs at delay 1; the relay
			// carries the remaining delay to each destination.
			sg := nGroups + p.splitterGroup
			addTraffic(src, sg, 1)
			for _, d := range splits[p.splitterGroup].entries[p.entryIndex].dests {
				if d >= 0 {
					addTraffic(sg, d, delay-1)
				}
			}
			continue
		}
		for _, d := range p.destGroups {
			addTraffic(src, d, delay)
		}
	}

	prob := &place.Problem{
		N: totalGroups, Width: width, Height: height, Traffic: traffic,
		ChipCoresX: opt.ChipCoresX, ChipCoresY: opt.ChipCoresY,
		BoundaryWeight: opt.BoundaryWeight,
		CrossTraffic:   crossTraffic,
	}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	var assign place.Assignment
	switch opt.Placer {
	case PlacerRandom:
		assign = place.Random(prob, opt.Seed)
	case PlacerAnneal:
		assign = place.Anneal(prob, opt.Seed, place.AnnealOptions{Iters: opt.AnnealIters})
	case PlacerGreedy:
		assign = place.Greedy(prob)
	default:
		return nil, fmt.Errorf("compile: unknown placer %v", opt.Placer)
	}
	if err := prob.CheckLegal(assign); err != nil {
		return nil, fmt.Errorf("compile: placer produced illegal assignment: %w", err)
	}

	// Stats are scored against the placement the annealer produced; the
	// re-homing pass below may extend the assignment with fresh splitter
	// cores, which the original problem knows nothing about.
	statAssign := assign[:len(assign):len(assign)]

	// ---- Phase 4b: splitter re-homing (delay-aware compiles only). ----
	// The packer fills splitter cores in neuron-id order, so one core can
	// serve sources the placer later scatters across chips — and every
	// such source→splitter hop runs at delay 1, pinning the distributed
	// exchange window (Stats.MinBoundaryDelay) at a single tick no matter
	// how good the placement is. When the compile is delay-aware, re-home
	// each stranded entry onto a splitter core sharing its source's chip:
	// the relay legs carry the remaining delay wherever the splitter
	// sits, so the move can never create a new delay-1 edge. Entries stay
	// put only when the chip is out of splitter and grid capacity, in
	// which case MinBoundaryDelay reports the surviving crossing.
	if opt.DelayPenalty > 0 && opt.ChipCoresX > 0 {
		chipsX := width / opt.ChipCoresX
		chipOfSlot := func(slot int) int {
			x := (slot % width) / opt.ChipCoresX
			y := (slot / width) / opt.ChipCoresY
			return y*chipsX + x
		}
		nChips := chipsX * (height / opt.ChipCoresY)
		used := make([]bool, width*height)
		for _, s := range assign {
			used[s] = true
		}
		freeOn := make([][]int, nChips)
		for s := 0; s < width*height; s++ {
			if !used[s] {
				c := chipOfSlot(s)
				freeOn[c] = append(freeOn[c], s)
			}
		}
		onChip := make([][]int, nChips)
		for si := range splits {
			c := chipOfSlot(assign[nGroups+si])
			onChip[c] = append(onChip[c], si)
		}
		for id := 0; id < nNeurons; id++ {
			p := &plans[id]
			if !p.split {
				continue
			}
			srcChip := chipOfSlot(assign[groupOf[id]])
			if chipOfSlot(assign[nGroups+p.splitterGroup]) == srcChip {
				continue
			}
			e := splits[p.splitterGroup].entries[p.entryIndex]
			need := len(e.dests)
			dst := -1
			for _, si := range onChip[srcChip] {
				if splits[si].axonCount+1 <= core.Size && splits[si].relays+need <= core.Size {
					dst = si
					break
				}
			}
			if dst == -1 {
				if len(freeOn[srcChip]) == 0 {
					continue
				}
				slot := freeOn[srcChip][0]
				freeOn[srcChip] = freeOn[srcChip][1:]
				dst = len(splits)
				splits = append(splits, &splitGroup{})
				onChip[srcChip] = append(onChip[srcChip], dst)
				assign = append(assign, slot)
				totalGroups++
			}
			splits[p.splitterGroup].entries[p.entryIndex].dead = true
			moved := e
			moved.axon = splits[dst].axonCount
			moved.relayBase = splits[dst].relays
			splits[dst].entries = append(splits[dst].entries, moved)
			splits[dst].axonCount++
			splits[dst].relays += need
			p.splitterGroup = dst
			p.entryIndex = len(splits[dst].entries) - 1
		}
		nSplits = len(splits)
	}

	// coreIdxOf maps a group index to its linear core index on the chip.
	coreIdxOf := func(g int) int32 { return int32(assign[g]) }

	// ---- Phase 5: emit core configurations. ----
	cfgs := make([]*core.Config, width*height)
	mkCore := func(slot int32) *core.Config {
		if cfgs[slot] == nil {
			cfgs[slot] = core.NewConfig()
			cfgs[slot].Seed = uint16(opt.Seed>>4) ^ uint16(slot*0x9E37+1)
		}
		return cfgs[slot]
	}

	// targetOf resolves the physical target of a neuron source.
	targetOf := func(id int) core.Target {
		p := &plans[id]
		total := len(p.destGroups)
		if p.external {
			total++
		}
		switch {
		case total == 0:
			return core.Target{Core: core.ExternalCore}
		case p.split:
			sg := p.splitterGroup
			slot := coreIdxOf(nGroups + sg)
			return core.Target{Core: slot, Axon: uint8(splits[sg].entries[p.entryIndex].axon)}
		case p.external:
			return core.Target{Core: core.ExternalCore}
		default:
			d := p.destGroups[0]
			slot := coreIdxOf(d)
			ax := groups[d].axonOf[model.NeuronNode(model.NeuronID(id))]
			return core.Target{Core: slot, Axon: uint8(ax)}
		}
	}

	mapping := &Mapping{
		NeuronLoc:    make([]Loc, nNeurons),
		InputTargets: make([][]AxonLoc, nInputs),
		InputDelay:   make([]uint8, nInputs),
		outputIndex:  map[uint32]model.NeuronID{},
		outputLag:    map[model.NeuronID]uint8{},
	}

	// Neuron groups.
	for gi, g := range groups {
		slot := coreIdxOf(gi)
		cc := mkCore(slot)
		// Axons: type from the source's properties.
		for ai, src := range g.axonOrder {
			var props model.SourceProps
			if src.IsInput {
				props = *net.InputProps(src.Idx)
			} else {
				props = *net.SourceProps(model.NeuronID(src.Idx))
			}
			cc.AxonType[ai] = props.Type
		}
		// Neurons and crossbar.
		for li, id := range g.members {
			p := *net.Params(id)
			props := net.SourceProps(id)
			if plans[id].split {
				// The hop to the splitter costs one tick; the relay
				// carries the remaining delay.
				p.Delay = 1
			} else {
				p.Delay = props.Delay
			}
			cc.Neurons[li] = p
			mapping.Stats.MappedNeurons++
			if p.Deterministic() {
				mapping.Stats.DeterministicNeurons++
			}
			cc.Targets[li] = targetOf(int(id))
			mapping.NeuronLoc[id] = Loc{Core: slot, Neuron: uint8(li)}
			for _, src := range inbound[id] {
				cc.Synapses.Set(g.axonOf[src], li, true)
			}
			// Direct external outputs decode straight to this neuron.
			if plans[id].external && !plans[id].split {
				mapping.outputIndex[outKey(slot, uint8(li))] = id
				mapping.outputLag[id] = 0
			}
		}
	}

	// Splitter groups.
	for si, sg := range splits {
		slot := coreIdxOf(nGroups + si)
		cc := mkCore(slot)
		for _, e := range sg.entries {
			if e.dead {
				continue
			}
			srcID := model.NeuronID(e.src.Idx)
			props := net.SourceProps(srcID)
			cc.AxonType[e.axon] = 0
			mapping.Stats.Relays += len(e.dests)
			for k, d := range e.dests {
				ri := e.relayBase + k
				relay := neuron.Params{
					SynWeight: [neuron.NumAxonTypes]int16{1, 0, 0, 0},
					Threshold: 1,
					Reset:     neuron.ResetNormal,
					Delay:     props.Delay - 1,
				}
				cc.Neurons[ri] = relay
				mapping.Stats.MappedNeurons++
				if relay.Deterministic() {
					mapping.Stats.DeterministicNeurons++
				}
				cc.Synapses.Set(e.axon, ri, true)
				if d < 0 {
					cc.Targets[ri] = core.Target{Core: core.ExternalCore}
					mapping.outputIndex[outKey(slot, uint8(ri))] = srcID
					mapping.outputLag[srcID] = 1
				} else {
					dSlot := coreIdxOf(d)
					ax := groups[d].axonOf[e.src]
					cc.Targets[ri] = core.Target{Core: dSlot, Axon: uint8(ax)}
				}
			}
		}
	}

	// Input mapping: one axon per destination group, in group order.
	for line := 0; line < nInputs; line++ {
		props := net.InputProps(int32(line))
		mapping.InputDelay[line] = props.Delay
		seen := map[int]bool{}
		for _, to := range outInput[line] {
			g := groupOf[to]
			if seen[g] {
				continue
			}
			seen[g] = true
			slot := coreIdxOf(g)
			ax := groups[g].axonOf[model.InputNode(int32(line))]
			mapping.InputTargets[line] = append(mapping.InputTargets[line],
				AxonLoc{Core: slot, Axon: uint8(ax)})
		}
	}

	mapping.Chip = &chip.Config{Width: width, Height: height, Cores: cfgs}
	if err := mapping.Chip.Validate(); err != nil {
		return nil, fmt.Errorf("compile: emitted invalid chip: %w", err)
	}

	mapping.Stats.NeuronGroups = nGroups
	mapping.Stats.SplitterGroups = nSplits
	mapping.Stats.UsedCores = totalGroups
	mapping.Stats.GridWidth = width
	mapping.Stats.GridHeight = height
	if mapping.Stats.MappedNeurons > 0 {
		mapping.Stats.DeterministicFraction =
			float64(mapping.Stats.DeterministicNeurons) / float64(mapping.Stats.MappedNeurons)
	}
	mapping.Stats.PlacementCost = prob.HopCost(statAssign)
	if opt.ChipCoresX > 0 {
		mapping.Stats.ChipCoresX = opt.ChipCoresX
		mapping.Stats.ChipCoresY = opt.ChipCoresY
		cross, total := prob.CrossWeight(statAssign)
		mapping.Stats.BoundaryCost = opt.BoundaryWeight * cross
		if total > 0 {
			mapping.Stats.PredictedInterChipFraction = cross / total
		}
		mapping.Stats.MinBoundaryDelay = MinBoundaryDelay(mapping.Chip, opt.ChipCoresX, opt.ChipCoresY)
	}
	return mapping, nil
}

// MinBoundaryDelay scans cfg under a ChipCoresX x ChipCoresY tiling and
// returns the minimum axonal delay across edges whose source and
// destination cores sit on different physical chips — the legal
// exchange-window bound recorded in Stats.MinBoundaryDelay. It returns
// 0 when the tiling is absent/degenerate (a single chip) or when no
// edge crosses chips, meaning routing places no bound on the window.
func MinBoundaryDelay(cfg *chip.Config, chipCoresX, chipCoresY int) int {
	if cfg == nil || chipCoresX <= 0 || chipCoresY <= 0 {
		return 0
	}
	if cfg.Width%chipCoresX != 0 || cfg.Height%chipCoresY != 0 {
		return 0
	}
	chipsX := cfg.Width / chipCoresX
	chipsY := cfg.Height / chipCoresY
	if chipsX*chipsY <= 1 {
		return 0
	}
	chipOf := func(idx int32) int {
		x := (int(idx) % cfg.Width) / chipCoresX
		y := (int(idx) / cfg.Width) / chipCoresY
		return y*chipsX + x
	}
	min := 0
	for i, cc := range cfg.Cores {
		if cc == nil {
			continue
		}
		src := chipOf(int32(i))
		for n := range cc.Targets {
			tgt := cc.Targets[n]
			if tgt.Core < 0 || chipOf(tgt.Core) == src {
				continue
			}
			d := int(cc.Neurons[n].Delay)
			if min == 0 || d < min {
				min = d
			}
		}
	}
	return min
}
