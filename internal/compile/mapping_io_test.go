package compile

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/neurogo/neurogo/internal/chip"
)

func TestMappingRoundTrip(t *testing.T) {
	orig, err := Compile(bigNet(), Options{Placer: PlacerGreedy, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMapping(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got.Stats != orig.Stats {
		t.Fatalf("stats differ:\n%+v\n%+v", got.Stats, orig.Stats)
	}
	if len(got.NeuronLoc) != len(orig.NeuronLoc) {
		t.Fatalf("NeuronLoc length %d vs %d", len(got.NeuronLoc), len(orig.NeuronLoc))
	}
	for i := range orig.NeuronLoc {
		if got.NeuronLoc[i] != orig.NeuronLoc[i] {
			t.Fatalf("NeuronLoc[%d] differs", i)
		}
	}
	if len(got.InputTargets) != len(orig.InputTargets) {
		t.Fatal("InputTargets length differs")
	}
	for line := range orig.InputTargets {
		if got.InputDelay[line] != orig.InputDelay[line] {
			t.Fatalf("InputDelay[%d] differs", line)
		}
		if len(got.InputTargets[line]) != len(orig.InputTargets[line]) {
			t.Fatalf("InputTargets[%d] length differs", line)
		}
		for k := range orig.InputTargets[line] {
			if got.InputTargets[line][k] != orig.InputTargets[line][k] {
				t.Fatalf("InputTargets[%d][%d] differs", line, k)
			}
		}
	}
	// Output decode tables.
	if len(got.outputIndex) != len(orig.outputIndex) {
		t.Fatal("output index size differs")
	}
	for k, id := range orig.outputIndex {
		if got.outputIndex[k] != id {
			t.Fatalf("outputIndex[%d] differs", k)
		}
		if got.outputLag[id] != orig.outputLag[id] {
			t.Fatalf("outputLag[%d] differs", id)
		}
	}
	// The chip config must validate and match dimensions.
	if err := got.Chip.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.Chip.Width != orig.Chip.Width || got.Chip.Height != orig.Chip.Height {
		t.Fatal("chip dimensions differ")
	}
}

func TestMappingLoadedRunsIdentically(t *testing.T) {
	orig, err := Compile(bigNet(), Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadMapping(&buf)
	if err != nil {
		t.Fatal(err)
	}

	drive := func(m *Mapping) []chip.OutputSpike {
		ch := chip.New(m.Chip)
		var out []chip.OutputSpike
		for t := 0; t < 40; t++ {
			for line := 0; line < 4; line++ {
				at := ch.Now() + int64(m.InputDelay[line])
				for _, tgt := range m.InputTargets[line] {
					_ = ch.Inject(tgt.Core, int(tgt.Axon), at)
				}
			}
			out = append(out, ch.Tick()...)
		}
		return out
	}
	a, b := drive(orig), drive(loaded)
	if len(a) != len(b) {
		t.Fatalf("original emitted %d spikes, loaded %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spike %d differs", i)
		}
	}
}

func TestReadMappingRejectsGarbage(t *testing.T) {
	if _, err := ReadMapping(bytes.NewReader([]byte("junk junk junk junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadMapping(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadMappingRejectsTruncated(t *testing.T) {
	orig, err := Compile(ffnet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadMapping(bytes.NewReader(data[:len(data)-9])); err == nil {
		t.Fatal("truncated mapping accepted")
	}
}

// TestMappingRoundTripTiledStats pins the v2 serialization of the
// boundary-aware tiling stats (fixed-point encoded, so fractions
// round-trip to 1e-9).
func TestMappingRoundTripTiledStats(t *testing.T) {
	orig, err := Compile(bigNet(), Options{Placer: PlacerAnneal, Seed: 3,
		Width: 4, Height: 4, ChipCoresX: 2, ChipCoresY: 2, BoundaryWeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMapping(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.ChipCoresX != 2 || got.Stats.ChipCoresY != 2 {
		t.Fatalf("tiling lost: %+v", got.Stats)
	}
	if d := got.Stats.BoundaryCost - orig.Stats.BoundaryCost; d > 1e-6 || d < -1e-6 {
		t.Fatalf("boundary cost %g vs %g", got.Stats.BoundaryCost, orig.Stats.BoundaryCost)
	}
	f1, f2 := got.Stats.PredictedInterChipFraction, orig.Stats.PredictedInterChipFraction
	if d := f1 - f2; d > 1e-8 || d < -1e-8 {
		t.Fatalf("predicted fraction %g vs %g", f1, f2)
	}
}

// TestMappingRoundTripV3Stats pins the v3 serialization of the
// determinism census: MappedNeurons and DeterministicNeurons survive
// the round trip exactly, and DeterministicFraction is recomputed from
// them on load (it is derived, not stored). The registry lazy-loads
// mappings through this path, so a drift here would silently change
// what a reloaded model reports.
func TestMappingRoundTripV3Stats(t *testing.T) {
	orig, err := Compile(bigNet(), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if orig.Stats.MappedNeurons == 0 {
		t.Fatal("compiler recorded no mapped neurons")
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMapping(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.MappedNeurons != orig.Stats.MappedNeurons {
		t.Fatalf("MappedNeurons %d, want %d", got.Stats.MappedNeurons, orig.Stats.MappedNeurons)
	}
	if got.Stats.DeterministicNeurons != orig.Stats.DeterministicNeurons {
		t.Fatalf("DeterministicNeurons %d, want %d",
			got.Stats.DeterministicNeurons, orig.Stats.DeterministicNeurons)
	}
	want := float64(orig.Stats.DeterministicNeurons) / float64(orig.Stats.MappedNeurons)
	if got.Stats.DeterministicFraction != want {
		t.Fatalf("DeterministicFraction %g, want %g", got.Stats.DeterministicFraction, want)
	}
}

// TestMappingReadsV2Stream pins forward compatibility for v2 artifacts:
// the v3 determinism words are appended after the v2 tiling block, so a
// v2 stream (16 fewer trailing bytes, version word 2) must load with
// zero determinism stats while everything earlier — tiling stats
// included — survives intact.
func TestMappingReadsV2Stream(t *testing.T) {
	orig, err := Compile(bigNet(), Options{Placer: PlacerAnneal, Seed: 3,
		Width: 4, Height: 4, ChipCoresX: 2, ChipCoresY: 2, BoundaryWeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	v2 := buf.Bytes()
	v2 = v2[:len(v2)-16] // drop the two appended v3 determinism words
	binary.LittleEndian.PutUint64(v2[8:16], 2)
	got, err := ReadMapping(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("v2 stream rejected: %v", err)
	}
	if got.Stats.MappedNeurons != 0 || got.Stats.DeterministicNeurons != 0 ||
		got.Stats.DeterministicFraction != 0 {
		t.Fatalf("v2 stream loaded determinism stats: %+v", got.Stats)
	}
	if got.Stats.ChipCoresX != 2 || got.Stats.ChipCoresY != 2 {
		t.Fatalf("v2 tiling stats lost: %+v", got.Stats)
	}
	if got.Stats.PlacementCost != orig.Stats.PlacementCost {
		t.Fatalf("placement cost %g, want %g", got.Stats.PlacementCost, orig.Stats.PlacementCost)
	}
	for i := range orig.NeuronLoc {
		if got.NeuronLoc[i] != orig.NeuronLoc[i] {
			t.Fatalf("NeuronLoc[%d] differs", i)
		}
	}
}

// TestMappingRoundTripV4Window pins the v4 serialization of the
// minimum boundary-crossing delay: the exchange-window bound a
// distributed driver reads off the artifact must survive the round
// trip exactly and agree with a recompute from the decoded chip image.
func TestMappingRoundTripV4Window(t *testing.T) {
	orig, err := Compile(bigNet(), Options{Placer: PlacerAnneal, Seed: 3,
		Width: 4, Height: 4, ChipCoresX: 2, ChipCoresY: 2, BoundaryWeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if orig.Stats.MinBoundaryDelay == 0 {
		t.Fatal("tiled compile recorded no boundary-delay bound; the fixture no longer crosses a chip boundary")
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMapping(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.MinBoundaryDelay != orig.Stats.MinBoundaryDelay {
		t.Fatalf("MinBoundaryDelay %d, want %d", got.Stats.MinBoundaryDelay, orig.Stats.MinBoundaryDelay)
	}
	if d := MinBoundaryDelay(got.Chip, got.Stats.ChipCoresX, got.Stats.ChipCoresY); d != got.Stats.MinBoundaryDelay {
		t.Fatalf("stored bound %d disagrees with recompute %d", got.Stats.MinBoundaryDelay, d)
	}
}

// TestMappingReadsV3Stream pins forward compatibility for v3 artifacts:
// the v4 boundary-delay word is appended last, so a v3 stream (8 fewer
// trailing bytes, version word 3) must load — and because pre-v4
// deployments still need to serve windowed, the bound is recomputed
// from the decoded chip image rather than defaulting to lockstep zero.
func TestMappingReadsV3Stream(t *testing.T) {
	orig, err := Compile(bigNet(), Options{Placer: PlacerAnneal, Seed: 3,
		Width: 4, Height: 4, ChipCoresX: 2, ChipCoresY: 2, BoundaryWeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	v3 := buf.Bytes()
	v3 = v3[:len(v3)-8] // drop the appended v4 boundary-delay word
	binary.LittleEndian.PutUint64(v3[8:16], 3)
	got, err := ReadMapping(bytes.NewReader(v3))
	if err != nil {
		t.Fatalf("v3 stream rejected: %v", err)
	}
	if got.Stats.MinBoundaryDelay != orig.Stats.MinBoundaryDelay {
		t.Fatalf("v3 stream recomputed MinBoundaryDelay %d, want %d",
			got.Stats.MinBoundaryDelay, orig.Stats.MinBoundaryDelay)
	}
	if got.Stats.MappedNeurons != orig.Stats.MappedNeurons {
		t.Fatalf("v3 determinism stats lost: %+v", got.Stats)
	}
}

// TestMappingReadsV1Stream pins backward compatibility: the v2 tiling
// stats are appended at the end of the stream, so a v1 artifact (no
// trailing 32 stat bytes, version word 1) must load with the untiled
// zero values.
func TestMappingReadsV1Stream(t *testing.T) {
	orig, err := Compile(bigNet(), Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	v1 := buf.Bytes()
	v1 = v1[:len(v1)-32] // drop the four appended v2 stat words
	binary.LittleEndian.PutUint64(v1[8:16], 1)
	got, err := ReadMapping(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	if got.Stats.ChipCoresX != 0 || got.Stats.ChipCoresY != 0 ||
		got.Stats.BoundaryCost != 0 || got.Stats.PredictedInterChipFraction != 0 {
		t.Fatalf("v1 stream loaded tiling stats: %+v", got.Stats)
	}
	if got.Stats.PlacementCost != orig.Stats.PlacementCost {
		t.Fatalf("placement cost %g, want %g", got.Stats.PlacementCost, orig.Stats.PlacementCost)
	}
	for i := range orig.NeuronLoc {
		if got.NeuronLoc[i] != orig.NeuronLoc[i] {
			t.Fatalf("NeuronLoc[%d] differs", i)
		}
	}
}
