package neurogo

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"github.com/neurogo/neurogo/internal/remote"
	"github.com/neurogo/neurogo/internal/sim"
)

// The distributed acceptance tests re-exec this test binary as real
// shard server processes: TestMain checks the serve sentinel before
// running any tests, so a child invocation turns into an nshard-style
// server and never touches the test framework.
const (
	shardServeEnv   = "NEUROGO_SHARD_SERVE"
	shardMappingEnv = "NEUROGO_SHARD_MAPPING"
	shardCountEnv   = "NEUROGO_SHARD_COUNT"
	shardIndexEnv   = "NEUROGO_SHARD_INDEX"
	shardListenEnv  = "NEUROGO_SHARD_LISTEN"
)

func TestMain(m *testing.M) {
	if os.Getenv(shardServeEnv) == "1" {
		if err := serveShardFromEnv(); err != nil {
			fmt.Fprintln(os.Stderr, "shard child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	code := m.Run()
	writeBenchJSON() // BENCH_e5.json emission, gated on NEUROGO_BENCH_JSON
	os.Exit(code)
}

// serveShardFromEnv is the child-process body: load the exported
// mapping and serve one shard on a unix socket until killed — exactly
// what cmd/nshard does, minus the flag parsing.
func serveShardFromEnv() error {
	f, err := os.Open(os.Getenv(shardMappingEnv))
	if err != nil {
		return err
	}
	mp, err := LoadMapping(f)
	f.Close()
	if err != nil {
		return err
	}
	shards, err := strconv.Atoi(os.Getenv(shardCountEnv))
	if err != nil {
		return err
	}
	shard, err := strconv.Atoi(os.Getenv(shardIndexEnv))
	if err != nil {
		return err
	}
	srv, err := NewShardServer(mp, shards, shard)
	if err != nil {
		return err
	}
	return srv.ListenAndServe("unix", os.Getenv(shardListenEnv))
}

// spawnShardProcs exports m to disk, launches one shard server OS
// process per partition slot (a re-exec of this test binary), waits
// until every socket accepts, and returns the addresses in partition
// order. Children are killed and reaped via tb.Cleanup.
func spawnShardProcs(tb testing.TB, m *Mapping, shards int) []string {
	tb.Helper()
	dir := tb.TempDir()
	mpPath := filepath.Join(dir, "model.nmap")
	f, err := os.Create(mpPath)
	if err != nil {
		tb.Fatal(err)
	}
	if err := SaveMapping(f, m); err != nil {
		f.Close()
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
	exe, err := os.Executable()
	if err != nil {
		tb.Fatal(err)
	}
	addrs := make([]string, shards)
	for i := range addrs {
		addrs[i] = filepath.Join(dir, fmt.Sprintf("s%d.sock", i))
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			shardServeEnv+"=1",
			shardMappingEnv+"="+mpPath,
			shardCountEnv+"="+strconv.Itoa(shards),
			shardIndexEnv+"="+strconv.Itoa(i),
			shardListenEnv+"="+addrs[i],
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, addr := range addrs {
		for {
			conn, err := net.Dial("unix", addr)
			if err == nil {
				conn.Close()
				break
			}
			if time.Now().After(deadline) {
				tb.Fatalf("shard at %s never came up: %v", addr, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return addrs
}

// driveStack presents digit images to the conv stack exactly as the
// serving pipeline's binary encoder does — each on-pixel's twin lines
// injected on every tick of the hold window, then a drain — and
// returns the full output event stream.
func driveStack(t *testing.T, r *Runner, images [][]float64) []Event {
	t.Helper()
	var events []Event
	for _, img := range images {
		var lines []int32
		for p, v := range img {
			if v > 0.5 {
				pos, neg := boundaryRig.conv.LinesFor(p)
				lines = append(lines, pos, neg)
			}
		}
		for tick := 0; tick < boundaryWindow; tick++ {
			for _, line := range lines {
				if err := r.InjectLine(line); err != nil {
					t.Fatal(err)
				}
			}
			events = append(events, r.Step()...)
		}
		events = append(events, r.Drain(12)...)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestDistributedConvStack is the tentpole acceptance test: the routed
// conv/pool/read-out stack on the 2x2 chip tile, served across two
// real shard server processes over unix sockets, emits byte-identical
// output spikes and identical boundary accounting — totals, link
// matrix and inter-chip fraction — to the in-process System backend.
func TestDistributedConvStack(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns shard processes")
	}
	if err := boundarySetup(); err != nil {
		t.Fatal(err)
	}
	mp := boundaryRig.aware
	cfg := SystemConfig{ChipCoresX: boundaryRig.chipX, ChipCoresY: boundaryRig.chipY}

	sysR, err := NewSystemRunner(mp, cfg, EngineEvent, 1)
	if err != nil {
		t.Fatal(err)
	}
	images := boundaryRig.x[:3]
	want := driveStack(t, sysR, images)
	if len(want) == 0 {
		t.Fatal("conv stack emitted nothing; test is vacuous")
	}
	sysIntra, sysInter := sysR.BoundarySpikes()
	if sysInter == 0 {
		t.Fatal("conv stack crossed no chip boundary; test is vacuous")
	}

	addrs := spawnShardProcs(t, mp, 2)
	shd, err := remote.DialSharded(mp, cfg, addrs, remote.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	remR := sim.NewTiledRunner(mp, shd, sim.EngineEvent, 1)
	got := driveStack(t, remR, images)

	if len(got) != len(want) {
		t.Fatalf("distributed stack: %d events, in-process %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, in-process %+v", i, got[i], want[i])
		}
	}
	intra, inter := remR.BoundarySpikes()
	if intra != sysIntra || inter != sysInter {
		t.Fatalf("distributed boundary (%d,%d), in-process (%d,%d)", intra, inter, sysIntra, sysInter)
	}
	gotFrac := float64(inter) / float64(intra+inter)
	wantFrac := float64(sysInter) / float64(sysIntra+sysInter)
	if gotFrac != wantFrac {
		t.Fatalf("inter-chip fraction %v, in-process %v", gotFrac, wantFrac)
	}
	sysLink, link := sysR.BoundaryLinks(), remR.BoundaryLinks()
	for i := range sysLink {
		for j := range sysLink[i] {
			if link[i][j] != sysLink[i][j] {
				t.Fatalf("link[%d][%d] = %d, in-process %d", i, j, link[i][j], sysLink[i][j])
			}
		}
	}
	if gc, wc := remR.Counters(), sysR.Counters(); gc != wc {
		t.Fatalf("distributed counters %+v, in-process %+v", gc, wc)
	}
}
