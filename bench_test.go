package neurogo

// One benchmark per reconstructed table and figure (see DESIGN.md §3 and
// EXPERIMENTS.md). Each bench executes its experiment end to end and
// reports the experiment's headline metrics through b.ReportMetric, so
// `go test -bench=.` regenerates the whole evaluation:
//
//	go test -bench=BenchmarkT3 -benchmem   # one experiment
//	go test -bench=. -benchmem             # all of them
//
// Benches run the quick configurations; cmd/npaper runs the full ones.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/neurogo/neurogo/internal/experiments"
)

// benchJSONEnv names the file BenchmarkSystemThroughput's conv legs
// append their headline rows to (BENCH_e5.json in CI); unset means no
// emission. Rows accumulate across sub-benchmarks and are written once
// after the run by writeBenchJSON (hooked into TestMain).
const benchJSONEnv = "NEUROGO_BENCH_JSON"

// benchE5Row is one conv-leg measurement in the emitted JSON.
type benchE5Row struct {
	Leg               string  `json:"leg"`
	Batch             int     `json:"batch"`
	ClassPerSec       float64 `json:"class_per_sec"`
	InterChipFraction float64 `json:"interchip_frac"`
	ExchangeWindow    int     `json:"exchange_window"` // 1 = lockstep; 0 = in-process (no exchange RPC)
}

var benchE5 struct {
	mu   sync.Mutex
	rows []benchE5Row
}

func benchE5Record(row benchE5Row) {
	if os.Getenv(benchJSONEnv) == "" {
		return
	}
	benchE5.mu.Lock()
	benchE5.rows = append(benchE5.rows, row)
	benchE5.mu.Unlock()
}

// writeBenchJSON dumps the collected rows to $NEUROGO_BENCH_JSON. Called
// from TestMain after the run so a single `go test -bench` invocation
// yields one complete file.
func writeBenchJSON() {
	path := os.Getenv(benchJSONEnv)
	if path == "" || len(benchE5.rows) == 0 {
		return
	}
	data, err := json.MarshalIndent(benchE5.rows, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench json:", err)
	}
}

// benchExperiment runs one experiment per iteration and republishes its
// metrics.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, true)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for k, v := range last.Metrics {
		b.ReportMetric(v, k)
	}
}

// BenchmarkT1Capacity regenerates the capacity/memory table (T1).
func BenchmarkT1Capacity(b *testing.B) { benchExperiment(b, "T1") }

// BenchmarkF1Behaviors regenerates the neuron behaviour gallery (F1).
func BenchmarkF1Behaviors(b *testing.B) { benchExperiment(b, "F1") }

// BenchmarkT2Energy regenerates the chip power / pJ-per-event table (T2).
func BenchmarkT2Energy(b *testing.B) { benchExperiment(b, "T2") }

// BenchmarkF2PowerSweep regenerates power vs firing rate (F2).
func BenchmarkF2PowerSweep(b *testing.B) { benchExperiment(b, "F2") }

// BenchmarkF3NoCLatency regenerates NoC latency vs injection rate (F3).
func BenchmarkF3NoCLatency(b *testing.B) { benchExperiment(b, "F3") }

// BenchmarkF4Locality regenerates the placement hop-distribution figure (F4).
func BenchmarkF4Locality(b *testing.B) { benchExperiment(b, "F4") }

// BenchmarkT3Classification regenerates the application accuracy/energy
// table (T3).
func BenchmarkT3Classification(b *testing.B) { benchExperiment(b, "T3") }

// BenchmarkF5Window regenerates the latency-accuracy trade-off (F5).
func BenchmarkF5Window(b *testing.B) { benchExperiment(b, "F5") }

// BenchmarkT4Engines regenerates the engine-throughput comparison (T4).
func BenchmarkT4Engines(b *testing.B) { benchExperiment(b, "T4") }

// BenchmarkF6Scaling regenerates throughput vs core count (F6).
func BenchmarkF6Scaling(b *testing.B) { benchExperiment(b, "F6") }

// BenchmarkT5Placement regenerates the placement ablation table (T5).
func BenchmarkT5Placement(b *testing.B) { benchExperiment(b, "T5") }

// BenchmarkF7Detector regenerates the detector precision/recall sweep (F7).
func BenchmarkF7Detector(b *testing.B) { benchExperiment(b, "F7") }

// BenchmarkE1Conv regenerates the conv-stack extension comparison (E1).
func BenchmarkE1Conv(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2System regenerates the multi-chip boundary-traffic
// extension (E2).
func BenchmarkE2System(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3Boundary regenerates the boundary-aware placement
// ablation (E3): the λ sweep tracing inter-chip fraction vs hop cost.
func BenchmarkE3Boundary(b *testing.B) { benchExperiment(b, "E3") }

// throughputRig caches one compiled digit classifier across the
// pipeline throughput sub-benchmarks.
var throughputRig struct {
	once    sync.Once
	cls     *Classifier
	mapping *Mapping
	// sysMapping is the same network on an even grid, so it tiles
	// exactly into the multi-chip benchmarks' 2x2 tile.
	sysMapping *Mapping
	x          [][]float64
	err        error
}

func throughputSetup() error {
	throughputRig.once.Do(func() {
		gen := NewDigitGenerator(16, 0.03, 1, 42)
		xtr, ytr := gen.Batch(600)
		m, err := TrainLinear(xtr, ytr, NumDigitClasses, TrainOptions{Epochs: 8, Seed: 7})
		if err != nil {
			throughputRig.err = err
			return
		}
		net := NewNetwork()
		throughputRig.cls = BuildClassifier(net, m.Ternarize(1.3), "digits", DefaultClassifierParams())
		throughputRig.mapping, throughputRig.err = Compile(net, CompileOptions{Seed: 1})
		if throughputRig.err != nil {
			return
		}
		st := throughputRig.mapping.Stats
		throughputRig.sysMapping, throughputRig.err = Compile(net, CompileOptions{
			Seed: 1, Width: st.GridWidth + st.GridWidth%2, Height: st.GridHeight + st.GridHeight%2,
		})
		throughputRig.x, _ = gen.Batch(64)
	})
	return throughputRig.err
}

// BenchmarkPipelineThroughput measures served classifications/sec
// through Pipeline.ClassifyBatch at batch sizes 1, 8 and 64 — the
// serving-layer perf baseline for future scaling PRs. On a multi-core
// host batch-64 must beat batch-1: larger batches keep the whole
// session pool busy.
func BenchmarkPipelineThroughput(b *testing.B) {
	if err := throughputSetup(); err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) {
			p, err := throughputPipeline()
			if err != nil {
				b.Fatal(err)
			}
			inputs := throughputRig.x[:size]
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.ClassifyBatch(ctx, inputs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "class/s")
		})
	}
}

// throughputPipeline builds the digit-serving pipeline the throughput
// benchmarks share.
func throughputPipeline() (*Pipeline, error) {
	return NewPipeline(throughputRig.mapping,
		WithEncoder(NewBernoulliEncoder(0.5, 99)),
		WithDecoder(NewCounterDecoder(NumDigitClasses)),
		WithLineMapper(TwinLines(throughputRig.cls.LinesFor)),
		WithClassMapper(throughputRig.cls.ClassOf),
		WithWindow(16),
		WithDrain(10))
}

// BenchmarkSystemThroughput measures served classifications/sec when
// one logical model spans a multi-chip tile, at the same batch sizes
// as BenchmarkPipelineThroughput, for a 1x1 tile (single chip through
// the system backend) and a 2x2 tile. Each run also reports the
// inter-chip spike fraction — the boundary-traffic metric the tiled
// deployments of the paper are won or lost on — seeding the perf
// trajectory for boundary-aware placement and sharding work.
//
// The flat digit classifier has no core-to-core edges (fraction 0 on
// any tiling), so the boundary-aware legs serve a conv/pool/read-out
// stack — a workload with real internal routing — compiled for the
// same 2x2 tile twice: tiling-blind (λ=0) and boundary-aware (λ=4).
// The aware leg must report a lower interchip-frac at equal class/s:
// placement changes accounting, never routing work.
func BenchmarkSystemThroughput(b *testing.B) {
	if err := throughputSetup(); err != nil {
		b.Fatal(err)
	}
	st := throughputRig.sysMapping.Stats
	for _, tile := range []struct{ x, y int }{{1, 1}, {2, 2}} {
		for _, size := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("tile-%dx%d/batch-%d", tile.x, tile.y, size), func(b *testing.B) {
				p, err := NewPipeline(throughputRig.sysMapping,
					WithEncoder(NewBernoulliEncoder(0.5, 99)),
					WithDecoder(NewCounterDecoder(NumDigitClasses)),
					WithLineMapper(TwinLines(throughputRig.cls.LinesFor)),
					WithClassMapper(throughputRig.cls.ClassOf),
					WithWindow(16),
					WithDrain(10),
					WithSystem(st.GridWidth/tile.x, st.GridHeight/tile.y))
				if err != nil {
					b.Fatal(err)
				}
				inputs := throughputRig.x[:size]
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := p.ClassifyBatch(ctx, inputs); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "class/s")
				b.ReportMetric(PipelineTrafficOf(p).InterChipFraction, "interchip-frac")
			})
		}
	}
	if err := boundarySetup(); err != nil {
		b.Fatal(err)
	}
	for _, leg := range []struct {
		name string
		mp   *Mapping
	}{
		{"blind", boundaryRig.blind},
		{"aware", boundaryRig.aware},
	} {
		for _, size := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("conv-2x2-%s/batch-%d", leg.name, size), func(b *testing.B) {
				p, err := NewPipeline(leg.mp,
					WithEncoder(NewBinaryEncoder(0.5, boundaryWindow)),
					WithDecoder(NewCounterDecoder(NumDigitClasses)),
					WithLineMapper(TwinLines(boundaryRig.conv.LinesFor)),
					WithClassMapper(boundaryRig.fc.ClassOf),
					WithWindow(boundaryWindow),
					WithDrain(12),
					WithSystem(boundaryRig.chipX, boundaryRig.chipY))
				if err != nil {
					b.Fatal(err)
				}
				inputs := boundaryRig.x[:size]
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := p.ClassifyBatch(ctx, inputs); err != nil {
						b.Fatal(err)
					}
				}
				bt := PipelineTrafficOf(p)
				rate := float64(b.N*size) / b.Elapsed().Seconds()
				b.ReportMetric(rate, "class/s")
				b.ReportMetric(bt.InterChipFraction, "interchip-frac")
				b.ReportMetric(bt.PredictedInterChipFraction, "predicted-frac")
				benchE5Record(benchE5Row{Leg: "conv-2x2-" + leg.name, Batch: size,
					ClassPerSec: rate, InterChipFraction: bt.InterChipFraction})
			})
		}
	}
	// Distributed legs: the conv stack served across two real shard
	// server processes (re-execs of this test binary over unix sockets;
	// see spawnShardProcs in remote_test.go). The lockstep leg pays one
	// RPC round-trip per tick per shard on the boundary-aware mapping;
	// the windowed leg serves the delay-padded twin mapping at the
	// widest exchange window its delay structure proves exact,
	// amortizing that round-trip over the whole window. Both are
	// bit-identical to the in-process backend on their own mapping.
	for _, leg := range []struct {
		name     string
		mp       *Mapping
		exchange int // WithExchangeWindow argument; 0 selects the proven max
	}{
		{"remote", boundaryRig.aware, 1},
		{"remote-windowed", boundaryRig.windowed, 0},
	} {
		window := leg.exchange
		if window == 0 {
			window = MaxExchangeWindow(leg.mp)
		}
		for _, size := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("conv-2x2-%s/batch-%d", leg.name, size), func(b *testing.B) {
				addrs := spawnShardProcs(b, leg.mp, 2)
				p, err := NewPipeline(leg.mp,
					WithEncoder(NewBinaryEncoder(0.5, boundaryWindow)),
					WithDecoder(NewCounterDecoder(NumDigitClasses)),
					WithLineMapper(TwinLines(boundaryRig.conv.LinesFor)),
					WithClassMapper(boundaryRig.fc.ClassOf),
					WithWindow(boundaryWindow),
					WithDrain(12),
					WithRemoteSystem(addrs...),
					WithExchangeWindow(leg.exchange))
				if err != nil {
					b.Fatal(err)
				}
				defer p.Close()
				inputs := boundaryRig.x[:size]
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := p.ClassifyBatch(ctx, inputs); err != nil {
						b.Fatal(err)
					}
				}
				bt := PipelineTrafficOf(p)
				rate := float64(b.N*size) / b.Elapsed().Seconds()
				b.ReportMetric(rate, "class/s")
				b.ReportMetric(bt.InterChipFraction, "interchip-frac")
				b.ReportMetric(float64(bt.InterChip)/float64(b.N), "inter-spikes/op")
				b.ReportMetric(float64(window), "xchg-window")
				benchE5Record(benchE5Row{Leg: "conv-2x2-" + leg.name, Batch: size,
					ClassPerSec: rate, InterChipFraction: bt.InterChipFraction,
					ExchangeWindow: window})
			})
		}
	}
}

// boundaryWindow is the held-binary presentation length of the conv
// legs (coincidence-thresholded conv features need the whole patch
// present each tick, as E1 deploys).
const boundaryWindow = 8

// boundaryRig caches the routed conv/pool/read-out workload compiled
// for a 2x2 chip tile three ways: tiling-blind (λ=0, bit-identical to
// an untiled compile), boundary-aware (λ=4), and windowed (λ=4 plus a
// delay penalty that prices delay-1 chip crossings out of the
// placement, unlocking multi-tick exchange windows for the remote
// legs).
var boundaryRig struct {
	once                   sync.Once
	conv                   *Conv2D
	fc                     *FeatureClassifier
	blind, aware, windowed *Mapping
	chipX, chipY           int
	x                      [][]float64
	err                    error
}

func boundarySetup() error {
	boundaryRig.once.Do(func() {
		fail := func(err error) { boundaryRig.err = err }
		const (
			imgSize = 16
			stride  = 1
			convThr = 2
			poolWin = 2
		)
		gen := NewDigitGenerator(imgSize, 0.02, 2, 42)
		xtr, ytr := gen.Batch(400)
		kernels := OrientedKernels()
		convW := (imgSize-kernels[0].Size)/stride + 1
		feat := make([][]float64, len(xtr))
		for i, img := range xtr {
			f := ConvFeatures(img, imgSize, kernels, stride, convThr)
			feat[i] = FloatPool(f, len(kernels), convW, convW, poolWin)
		}
		m, err := TrainLinear(feat, ytr, NumDigitClasses, TrainOptions{Epochs: 8, Seed: 7})
		if err != nil {
			fail(err)
			return
		}
		net := NewNetwork()
		conv, err := BuildConv2D(net, "conv", imgSize, imgSize, kernels, stride, convThr)
		if err != nil {
			fail(err)
			return
		}
		pool, err := BuildPool2D(net, conv, "pool", poolWin)
		if err != nil {
			fail(err)
			return
		}
		fc, err := BuildFeatureClassifier(net, m.Ternarize(1.3), pool, "out", DefaultClassifierParams())
		if err != nil {
			fail(err)
			return
		}
		boundaryRig.conv, boundaryRig.fc = conv, fc
		// Probe compile to learn the grid, then force an even grid that
		// splits into a 2x2 chip tile and compile both placements for it.
		probe, err := Compile(net, CompileOptions{Seed: 1})
		if err != nil {
			fail(err)
			return
		}
		st := probe.Stats
		w, h := st.GridWidth+st.GridWidth%2, st.GridHeight+st.GridHeight%2
		boundaryRig.chipX, boundaryRig.chipY = w/2, h/2
		// Anneal both placements: the annealer optimises the combined
		// objective directly, so the λ legs differ only in λ.
		tiled := CompileOptions{Placer: PlacerAnneal, AnnealIters: 30000,
			Seed: 1, Width: w, Height: h,
			ChipCoresX: boundaryRig.chipX, ChipCoresY: boundaryRig.chipY}
		boundaryRig.blind, err = Compile(net, tiled)
		if err != nil {
			fail(err)
			return
		}
		tiled.BoundaryWeight = 4
		boundaryRig.aware, err = Compile(net, tiled)
		if err != nil {
			fail(err)
			return
		}
		// Windowed variant: same corelets on a twin network with delays
		// padded to 5 ticks (neuron ids are identical, so the blind/aware
		// line and class mappers apply unchanged), compiled delay-aware.
		// Padding plus splitter re-homing leaves no boundary edge under 5
		// ticks of slack minus the relay leg — MinBoundaryDelay 4, so the
		// distributed driver may run 4-tick exchange windows.
		wnet := NewNetwork()
		wconv, err := BuildConv2D(wnet, "conv", imgSize, imgSize, kernels, stride, convThr)
		if err != nil {
			fail(err)
			return
		}
		wpool, err := BuildPool2D(wnet, wconv, "pool", poolWin)
		if err != nil {
			fail(err)
			return
		}
		if _, err := BuildFeatureClassifier(wnet, m.Ternarize(1.3), wpool, "out", DefaultClassifierParams()); err != nil {
			fail(err)
			return
		}
		wnet.PadNeuronDelays(5)
		wtiled := tiled
		wtiled.Seed = 2
		wtiled.DelayPenalty = 8
		boundaryRig.windowed, err = Compile(wnet, wtiled)
		if err != nil {
			fail(err)
			return
		}
		boundaryRig.x, _ = gen.Batch(64)
	})
	return boundaryRig.err
}

// BenchmarkAsyncThroughput measures served classifications/sec through
// the channel-based AsyncPipeline at the same batch sizes as
// BenchmarkPipelineThroughput, so the two report directly comparable
// class/s figures: each iteration submits `size` requests and waits for
// all completions via the per-request channels.
func BenchmarkAsyncThroughput(b *testing.B) {
	if err := throughputSetup(); err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) {
			p, err := throughputPipeline()
			if err != nil {
				b.Fatal(err)
			}
			ap, err := p.Async(WithQueueDepth(2 * size))
			if err != nil {
				b.Fatal(err)
			}
			defer ap.Close()
			inputs := throughputRig.x[:size]
			ctx := context.Background()
			chans := make([]<-chan AsyncResult, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, img := range inputs {
					chans[j] = ap.Submit(ctx, img)
				}
				for _, ch := range chans {
					if r := <-ch; r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "class/s")
		})
	}
}

// saturationBase caches the sequential service rate (class/s on one
// session) that every offered-load level is derived from.
var saturationBase struct {
	once   sync.Once
	perSec float64
	err    error
}

func saturationCapacity() (float64, error) {
	saturationBase.once.Do(func() {
		p, err := throughputPipeline()
		if err != nil {
			saturationBase.err = err
			return
		}
		defer p.Close()
		ctx := context.Background()
		const n = 64
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := p.Classify(ctx, throughputRig.x[i%len(throughputRig.x)]); err != nil {
				saturationBase.err = err
				return
			}
		}
		saturationBase.perSec = float64(n) / time.Since(start).Seconds()
	})
	return saturationBase.perSec, saturationBase.err
}

// saturationLevel offers n requests at `rate` per second (paced in 1 ms
// bursts, open loop until backpressure closes it) through a fresh async
// front-end and returns the delivered rate plus the metrics snapshot.
func saturationLevel(b *testing.B, opts []AsyncOption, rate float64, n int) (float64, ServingMetrics) {
	b.Helper()
	p, err := throughputPipeline()
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	ap, err := p.Async(opts...)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	inputs := throughputRig.x
	chans := make([]<-chan AsyncResult, n)
	interval := float64(time.Second) / rate
	start := time.Now()
	for i := 0; i < n; i++ {
		if target := time.Duration(float64(i) * interval); target > time.Since(start) {
			time.Sleep(target - time.Since(start))
		}
		chans[i] = ap.Submit(ctx, inputs[i%len(inputs)])
	}
	for _, ch := range chans {
		if r := <-ch; r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	delivered := float64(n) / time.Since(start).Seconds()
	m := ap.Metrics()
	ap.Close()
	return delivered, m
}

// BenchmarkSaturation is the SLO-serving headline (EXPERIMENTS.md E6):
// it ramps offered load through the async front-end and reports the
// best delivered class/s whose end-to-end p99 stays inside a fixed
// 10 ms SLO — batch-1 serving vs the adaptive micro-batcher (greedy
// and windowed), same worker pool and queue either way. Run it with
// -benchtime 1x (CI does); the ladder inside one iteration is the
// whole experiment.
func BenchmarkSaturation(b *testing.B) {
	if err := throughputSetup(); err != nil {
		b.Fatal(err)
	}
	base, err := saturationCapacity()
	if err != nil {
		b.Fatal(err)
	}
	const (
		sloP99   = 10 * time.Millisecond
		perLevel = 512
		trials   = 3 // median-of-3 p99 rides out scheduler jitter
		workers  = 4
		queue    = 256
	)
	shared := []AsyncOption{WithAsyncWorkers(workers), WithQueueDepth(queue)}
	// The batch-window sweep E6 documents: the 200 µs window is the
	// adaptive sweet spot on this workload — long enough to coalesce a
	// backlog into chunked fan-outs (amortised handoffs), short next to
	// the 10 ms SLO. Window 0 (greedy) never waits but barely coalesces;
	// 1 ms batches harder at a visible latency cost.
	modes := []struct {
		name string
		opts []AsyncOption
	}{
		{"batch-1", shared},
		{"adaptive", append([]AsyncOption{WithMaxBatch(64), WithBatchWindow(200 * time.Microsecond)}, shared...)},
		{"adaptive-greedy", append([]AsyncOption{WithMaxBatch(64)}, shared...)},
		{"adaptive-w1ms", append([]AsyncOption{WithMaxBatch(64), WithBatchWindow(time.Millisecond)}, shared...)},
	}
	ladder := []float64{0.75, 0.85, 0.92, 0.97, 1.01}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			var bestRate, bestBatch float64
			var bestP99 time.Duration
			for i := 0; i < b.N; i++ {
				bestRate, bestBatch, bestP99 = 0, 0, 0
				for _, mult := range ladder {
					offered := base * mult
					// Median trial by p99: one descheduling hiccup on a
					// shared box otherwise decides the whole level.
					type trial struct {
						delivered float64
						m         ServingMetrics
					}
					ts := make([]trial, trials)
					for k := range ts {
						runtime.GC()
						ts[k].delivered, ts[k].m = saturationLevel(b, mode.opts, offered, perLevel)
					}
					sort.Slice(ts, func(i, j int) bool { return ts[i].m.EndToEnd.P99 < ts[j].m.EndToEnd.P99 })
					delivered, m := ts[trials/2].delivered, ts[trials/2].m
					p99 := m.EndToEnd.P99
					if testing.Verbose() {
						b.Logf("offered %.0f/s: delivered %.0f/s, p99 %v, mean batch %.1f",
							offered, delivered, p99, m.MeanBatch)
					}
					if p99 <= sloP99 && delivered > bestRate {
						bestRate, bestP99, bestBatch = delivered, p99, m.MeanBatch
					}
				}
			}
			if bestRate == 0 {
				// Report zero rather than failing: the sweep legs are
				// informational, and a descheduling storm on a shared
				// box can push every level past the SLO.
				b.Logf("no load level met the %v p99 SLO", sloP99)
			}
			b.ReportMetric(bestRate, "class/s@p99")
			b.ReportMetric(float64(bestP99.Microseconds())/1000, "p99-ms")
			if bestBatch > 0 {
				b.ReportMetric(bestBatch, "mean-batch")
			}
		})
	}
}

// streamingPipeline builds a digit pipeline with a sliding-window
// decoder over the cached throughput mapping — the rig the streaming
// legs share.
func streamingPipeline(window int) (*Pipeline, error) {
	return NewPipeline(throughputRig.mapping,
		WithEncoder(NewBernoulliEncoder(0.5, 99)),
		WithDecoder(NewSlidingCounterDecoder(NumDigitClasses, window)),
		WithLineMapper(TwinLines(throughputRig.cls.LinesFor)),
		WithClassMapper(throughputRig.cls.ClassOf),
		WithWindow(window),
		WithDrain(10))
}

// BenchmarkStreamingThroughput is the streaming-serving headline
// (EXPERIMENTS.md E7): continuous decisions over open-ended streams.
// The kept-full legs sweep the sliding decision window over one
// always-on stream — images presented back to back, chip state never
// reset, gated decisions drained from the Decisions channel — and the
// reset leg serves the same images present-reset-present (a fresh
// stream per image, the bounded-presentation idiom), so the cost of
// session turnover is the gap between them. The keyword leg runs the
// pattern-detector spotting workload end to end and reports detection
// latency in ticks from each embedding's ground-truth end.
func BenchmarkStreamingThroughput(b *testing.B) {
	if err := throughputSetup(); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	for _, w := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("kept-full/window-%d", w), func(b *testing.B) {
			p, err := streamingPipeline(w)
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			st := p.NewSession().Stream(ctx)
			decCh := st.Decisions()
			var decisions int64
			done := make(chan struct{})
			go func() {
				for range decCh {
					decisions++
				}
				close(done)
			}()
			inputs := throughputRig.x
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.Present(inputs[i%len(inputs)], w); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := st.Drain(); err != nil {
				b.Fatal(err)
			}
			<-done
			b.ReportMetric(float64(b.N*w)/b.Elapsed().Seconds(), "ticks/s")
			b.ReportMetric(float64(decisions)/b.Elapsed().Seconds(), "dec/s")
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "img/s")
		})
	}

	// The bounded-presentation idiom on the same workload and decoder:
	// a fresh stream per image (reset to power-on state), decisions
	// consumed per presentation, and a full drain before the next image
	// can start — the drain ticks and session turnover the kept-full
	// stream never pays.
	b.Run("reset/window-16", func(b *testing.B) {
		const w, drain = 16, 10 // mirrors streamingPipeline's WithDrain
		p, err := streamingPipeline(w)
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		sess := p.NewSession()
		inputs := throughputRig.x
		var decisions int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st := sess.Stream(ctx) // reset to power-on state per image
			decCh := st.Decisions()
			if _, err := st.Present(inputs[i%len(inputs)], w); err != nil {
				b.Fatal(err)
			}
			if _, err := st.Drain(); err != nil {
				b.Fatal(err)
			}
			for range decCh {
				decisions++
			}
		}
		b.ReportMetric(float64(b.N*(w+drain))/b.Elapsed().Seconds(), "ticks/s")
		b.ReportMetric(float64(decisions)/b.Elapsed().Seconds(), "dec/s")
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "img/s")
	})

	b.Run("keyword-latency", func(b *testing.B) {
		pat := NewPattern(16, 10, 5, 99)
		net := NewNetwork()
		pd, err := BuildPatternDetector(net, pat, 5)
		if err != nil {
			b.Fatal(err)
		}
		mapping, err := Compile(net, CompileOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		dec := NewSlidingCounterDecoder(1, 2)
		dec.MinCount = 1
		p, err := NewPipeline(mapping,
			WithDecoder(dec),
			WithClassMapper(func(id NeuronID) int {
				if id == pd.Out.First {
					return 0
				}
				return -1
			}))
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		motifs := NewMotifStream(pat, 0.02, 20, 60, 7)
		st := p.NewSession().Stream(ctx)
		decCh := st.Decisions()
		var decTicks []int64
		done := make(chan struct{})
		go func() {
			for d := range decCh {
				decTicks = append(decTicks, d.Tick)
			}
			close(done)
		}()
		var ends []int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ { // one iteration = one stream tick
			spikes, motifEnd := motifs.Tick()
			for _, line := range spikes {
				if err := st.Inject(pd.In.First + int32(line)); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := st.Tick(); err != nil {
				b.Fatal(err)
			}
			if motifEnd {
				ends = append(ends, int64(i))
			}
		}
		if _, err := st.Drain(); err != nil {
			b.Fatal(err)
		}
		<-done
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ticks/s")
		b.ReportMetric(float64(len(decTicks))/b.Elapsed().Seconds(), "dec/s")
		// First gated decision at or after each embedding's end tick.
		matched, latencySum := 0, int64(0)
		di := 0
		for _, end := range ends {
			for di < len(decTicks) && decTicks[di] < end {
				di++
			}
			if di < len(decTicks) && decTicks[di] <= end+int64(pat.Span) {
				matched++
				latencySum += decTicks[di] - end
			}
		}
		if matched > 0 {
			b.ReportMetric(float64(latencySum)/float64(matched), "latency-ticks")
		}
	})
}
