module github.com/neurogo/neurogo

go 1.24
