package neurogo

import (
	"context"
	"testing"
)

// equivRig compiles a small spiking digit classifier through the public
// API, plus test images.
type equivRig struct {
	cls     *Classifier
	mapping *Mapping
	// sysMapping is the same network compiled onto an even grid, so it
	// tiles exactly into 2x2 physical chips for the multi-chip tests.
	sysMapping *Mapping
	x          [][]float64
	y          []int
}

func buildEquivRig(t *testing.T) *equivRig {
	t.Helper()
	gen := NewDigitGenerator(8, 0.02, 0, 3)
	xtr, ytr := gen.Batch(300)
	m, err := TrainLinear(xtr, ytr, NumDigitClasses, TrainOptions{Epochs: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork()
	cls := BuildClassifier(net, m.Ternarize(1.3), "d", ClassifierParams{Threshold: 4, Decay: 1})
	mapping, err := Compile(net, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gw, gh := mapping.Stats.GridWidth+mapping.Stats.GridWidth%2, mapping.Stats.GridHeight+mapping.Stats.GridHeight%2
	sysMapping, err := Compile(net, CompileOptions{Width: gw, Height: gh})
	if err != nil {
		t.Fatal(err)
	}
	x, y := gen.Batch(16)
	return &equivRig{cls: cls, mapping: mapping, sysMapping: sysMapping, x: x, y: y}
}

// handWired classifies one image with the pre-pipeline idiom: a fresh
// runner, an encoder restarted from its seed, and a manual
// encode/inject/step/decode loop.
func (rg *equivRig) handWired(img []float64, engine Engine, workers, window, drain int) int {
	r := NewRunner(rg.mapping, engine, workers)
	enc := NewBernoulliEncoder(0.5, 7)
	counter := NewCounterDecoder(NumDigitClasses)
	observe := func(evs []Event) {
		for _, e := range evs {
			if c := rg.cls.ClassOf(e.Neuron); c >= 0 {
				counter.Observe(c)
			}
		}
	}
	for t := 0; t < window; t++ {
		enc.Tick(img, func(line int) {
			pos, neg := rg.cls.LinesFor(line)
			_ = r.InjectLine(pos)
			_ = r.InjectLine(neg)
		})
		observe(r.Step())
	}
	observe(r.Drain(drain))
	return counter.Argmax()
}

// TestPipelineMatchesHandWiredLoop asserts Pipeline.Classify is
// bit-identical to the hand-wired encoder/runner/decoder loop across
// all three engines, and that a session stays bit-identical across
// repeated Reset reuse.
func TestPipelineMatchesHandWiredLoop(t *testing.T) {
	const window, drain = 16, 10
	rg := buildEquivRig(t)
	cases := []struct {
		name    string
		engine  Engine
		workers int
	}{
		{"event", EngineEvent, 1},
		{"dense", EngineDense, 1},
		{"parallel", EngineParallel, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewPipeline(rg.mapping,
				WithEngine(tc.engine),
				WithEngineWorkers(tc.workers),
				WithEncoder(NewBernoulliEncoder(0.5, 7)),
				WithDecoder(NewCounterDecoder(NumDigitClasses)),
				WithLineMapper(TwinLines(rg.cls.LinesFor)),
				WithClassMapper(rg.cls.ClassOf),
				WithWindow(window),
				WithDrain(drain))
			if err != nil {
				t.Fatal(err)
			}
			s := p.NewSession()
			for pass := 0; pass < 2; pass++ { // pass 1 re-uses the session via Reset
				for i, img := range rg.x {
					got, err := s.Classify(context.Background(), img)
					if err != nil {
						t.Fatal(err)
					}
					want := rg.handWired(img, tc.engine, tc.workers, window, drain)
					if got != want {
						t.Fatalf("pass %d image %d: pipeline %d, hand-wired %d", pass, i, got, want)
					}
				}
			}
		})
	}
}

// TestClassifyBatchBitIdentical asserts the acceptance criterion:
// fanning a batch across >= 8 concurrent sessions returns exactly the
// sequential single-session results.
func TestClassifyBatchBitIdentical(t *testing.T) {
	rg := buildEquivRig(t)
	ctx := context.Background()
	mk := func(workers int) *Pipeline {
		p, err := NewPipeline(rg.mapping,
			WithWorkers(workers),
			WithEncoder(NewBernoulliEncoder(0.5, 7)),
			WithDecoder(NewCounterDecoder(NumDigitClasses)),
			WithLineMapper(TwinLines(rg.cls.LinesFor)),
			WithClassMapper(rg.cls.ClassOf),
			WithWindow(16),
			WithDrain(10))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	want, err := mk(1).ClassifyBatch(ctx, rg.x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mk(8).ClassifyBatch(ctx, rg.x)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image %d: pooled %d, sequential %d", i, got[i], want[i])
		}
		if got[i] == rg.y[i] {
			hits++
		}
	}
	if hits < len(rg.x)*2/3 {
		t.Fatalf("classifier got %d/%d on easy digits; pipeline is mis-wired", hits, len(rg.x))
	}
}

// TestSystemBackedEquivalence asserts the multi-chip acceptance
// criterion through the public API: a pipeline served across a 2x2
// chip tile returns predictions bit-identical to the single-chip
// backend for Classify, ClassifyBatch and Async, under all three
// engines — tiling changes accounting, never routing semantics.
func TestSystemBackedEquivalence(t *testing.T) {
	rg := buildEquivRig(t)
	ctx := context.Background()
	gw, gh := rg.sysMapping.Stats.GridWidth, rg.sysMapping.Stats.GridHeight
	mk := func(opts ...PipelineOption) *Pipeline {
		base := []PipelineOption{
			WithEncoder(NewBernoulliEncoder(0.5, 7)),
			WithDecoder(NewCounterDecoder(NumDigitClasses)),
			WithLineMapper(TwinLines(rg.cls.LinesFor)),
			WithClassMapper(rg.cls.ClassOf),
			WithWindow(16),
			WithDrain(10),
		}
		p, err := NewPipeline(rg.sysMapping, append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, tc := range []struct {
		name    string
		engine  Engine
		workers int
	}{
		{"event", EngineEvent, 1},
		{"dense", EngineDense, 1},
		{"parallel", EngineParallel, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := []PipelineOption{WithEngine(tc.engine), WithEngineWorkers(tc.workers)}
			want, err := mk(eng...).ClassifyBatch(ctx, rg.x)
			if err != nil {
				t.Fatal(err)
			}
			sysP := mk(append(eng, WithSystem(gw/2, gh/2))...)
			got, err := sysP.ClassifyBatch(ctx, rg.x)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("batch image %d: system %d, chip %d", i, got[i], want[i])
				}
			}
			if bt := PipelineTrafficOf(sysP); bt.Chips != 4 {
				t.Fatalf("tile has %d chips, want 4", bt.Chips)
			}

			// Shared-session Classify.
			sysC := mk(append(eng, WithSystem(gw/2, gh/2))...)
			for i, img := range rg.x {
				c, err := sysC.Classify(ctx, img)
				if err != nil {
					t.Fatal(err)
				}
				if c != want[i] {
					t.Fatalf("image %d: system Classify %d, chip %d", i, c, want[i])
				}
			}

			// Async over the tile, re-ordered by Seq.
			ap, err := mk(append(eng, WithSystem(gw/2, gh/2))...).Async(WithAsyncWorkers(4))
			if err != nil {
				t.Fatal(err)
			}
			results := ap.Results()
			for _, img := range rg.x {
				ap.Submit(ctx, img)
			}
			ap.Close()
			for r := range results {
				if r.Err != nil {
					t.Fatalf("seq %d: %v", r.Seq, r.Err)
				}
				if r.Class != want[r.Seq] {
					t.Fatalf("async input %d: system %d, chip %d", r.Seq, r.Class, want[r.Seq])
				}
			}
		})
	}
}

// TestOneByOneTileHasNoBoundaryTraffic pins the degenerate tiling: a
// 1x1 tile (the whole grid on one physical chip) classifies routed
// spikes but never records a crossing.
func TestOneByOneTileHasNoBoundaryTraffic(t *testing.T) {
	rg := buildEquivRig(t)
	gw, gh := rg.sysMapping.Stats.GridWidth, rg.sysMapping.Stats.GridHeight
	p, err := NewPipeline(rg.sysMapping,
		WithEncoder(NewBernoulliEncoder(0.5, 7)),
		WithDecoder(NewCounterDecoder(NumDigitClasses)),
		WithLineMapper(TwinLines(rg.cls.LinesFor)),
		WithClassMapper(rg.cls.ClassOf),
		WithSystem(gw, gh))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ClassifyBatch(context.Background(), rg.x); err != nil {
		t.Fatal(err)
	}
	bt := PipelineTrafficOf(p)
	if bt.Chips != 1 {
		t.Fatalf("1x1 tile has %d chips", bt.Chips)
	}
	if bt.InterChip != 0 || bt.InterChipFraction != 0 || bt.BusiestLink != 0 {
		t.Fatalf("1x1 tile recorded boundary traffic: %+v", bt)
	}
	if u := PipelineUsageOf(p, false); u.InterChipSpikes != 0 || u.InterChipFraction() != 0 {
		t.Fatalf("1x1 tile usage carries inter-chip spikes: %+v", u)
	}
}

// TestAsyncBitIdentical asserts the async acceptance criterion through
// the public API: results collected from the AsyncPipeline stream and
// re-ordered by sequence number are bit-identical to sequential
// Classify on the same inputs.
func TestAsyncBitIdentical(t *testing.T) {
	rg := buildEquivRig(t)
	ctx := context.Background()
	mk := func() *Pipeline {
		p, err := NewPipeline(rg.mapping,
			WithEncoder(NewBernoulliEncoder(0.5, 7)),
			WithDecoder(NewCounterDecoder(NumDigitClasses)),
			WithLineMapper(TwinLines(rg.cls.LinesFor)),
			WithClassMapper(rg.cls.ClassOf),
			WithWindow(16),
			WithDrain(10))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	seq := mk()
	want := make([]int, len(rg.x))
	for i, img := range rg.x {
		c, err := seq.Classify(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = c
	}

	ap, err := mk().Async(WithAsyncWorkers(8), WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	results := ap.Results()
	for _, img := range rg.x {
		ap.Submit(ctx, img)
	}
	ap.Close()
	got := make([]int, len(rg.x))
	n := 0
	for r := range results {
		if r.Err != nil {
			t.Fatalf("seq %d: %v", r.Seq, r.Err)
		}
		got[r.Seq] = r.Class
		n++
	}
	if n != len(rg.x) {
		t.Fatalf("async stream delivered %d results, want %d", n, len(rg.x))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("input %d: async %d, sequential %d", i, got[i], want[i])
		}
	}
}
