// Server: the async serving backend end to end — train and compile the
// digit classifier (as in examples/digits), then serve the test set
// through an AsyncPipeline: concurrent clients submit images into a
// bounded queue, a pool of sessions classifies them as workers free up,
// and each client correlates its own completions through the
// per-request channels while the shared Results stream feeds a
// monitoring goroutine. The async front-end runs the full SLO-aware
// configuration: adaptive micro-batching, priority admission (a
// low-priority flood is shed with ErrShed while interactive traffic
// is untouched), serving metrics on an expvar /debug/vars endpoint,
// and a graceful SIGINT shutdown that drains every admitted request.
// The same inputs are also served through ClassifyBatch so the two
// serving modes' throughput and (bit-identical) predictions can be
// compared.
//
// The same model is then served across a 2x2 multi-chip tile
// (WithSystem): predictions stay bit-identical — tiling changes
// accounting, not routing — while Pipeline.Traffic exposes the
// chip-to-chip boundary spikes that tiled deployments are won or
// lost on. The tile is then split across two ShardServers on unix
// sockets (the wire protocol cmd/nshard serves across machines) and
// driven through WithRemoteSystem in lockstep, one RPC round-trip per
// tick per shard — still bit-identical.
//
// Finally two models — the flat digit classifier and a routed
// conv→pool→read-out stack — are served through one Registry: the
// multi-model front-end cold-starts each on first request, reports
// per-model hits, cold-start latency and live sessions, demotes the
// LRU model under a warm cap, and hot-swaps a recompiled mapping with
// zero downtime. Registry-served predictions are verified bit-identical
// to direct Pipeline serving throughout.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log"
	netpkg "net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/neurogo/neurogo"
)

func main() {
	const (
		trainN  = 1200
		testN   = 256
		window  = 16
		clients = 4 // concurrent submitters
	)

	// 1. Train, quantise, compile — the standard digit rig.
	gen := neurogo.NewDigitGenerator(16, 0.03, 1, 42)
	xtr, ytr := gen.Batch(trainN)
	xte, yte := gen.Batch(testN)
	model, err := neurogo.TrainLinear(xtr, ytr, neurogo.NumDigitClasses,
		neurogo.TrainOptions{Epochs: 10, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	net := neurogo.NewNetwork()
	cls := neurogo.BuildClassifier(net, model.Ternarize(1.3), "digits",
		neurogo.DefaultClassifierParams())
	mapping, err := neurogo.Compile(net, neurogo.CompileOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	mkPipeline := func(m *neurogo.Mapping, extra ...neurogo.PipelineOption) *neurogo.Pipeline {
		opts := []neurogo.PipelineOption{
			neurogo.WithEncoder(neurogo.NewBernoulliEncoder(0.5, 99)),
			neurogo.WithDecoder(neurogo.NewCounterDecoder(neurogo.NumDigitClasses)),
			neurogo.WithLineMapper(neurogo.TwinLines(cls.LinesFor)),
			neurogo.WithClassMapper(cls.ClassOf),
			neurogo.WithWindow(window),
			neurogo.WithDrain(10),
		}
		p, err := neurogo.NewPipeline(m, append(opts, extra...)...)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	pipeline := func() *neurogo.Pipeline { return mkPipeline(mapping) }

	ctx := context.Background()

	// 2. Baseline: the synchronous batched path.
	batchP := pipeline()
	start := time.Now()
	batchPreds, err := batchP.ClassifyBatch(ctx, xte)
	if err != nil {
		log.Fatal(err)
	}
	batchDur := time.Since(start)

	// 3. The async path, now the full SLO-aware front-end: adaptive
	// micro-batching (up to 16 requests per dispatch, 200µs window),
	// priority admission with an SLO budget that sheds low-priority
	// work under pressure, and the serving metrics published at a
	// /debug/vars endpoint. The Results stream plays the serving-side
	// monitor (subscribe before the first Submit); each client keeps its
	// per-request channels, so completions correlate with inputs no
	// matter how submissions interleave across clients.
	asyncP := pipeline()
	workers := runtime.NumCPU()
	ap, err := asyncP.Async(
		neurogo.WithAsyncWorkers(workers),
		neurogo.WithQueueDepth(4*workers),
		neurogo.WithMaxBatch(16),
		neurogo.WithBatchWindow(200*time.Microsecond),
		neurogo.WithSLOBudget(50*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}

	// Tail-latency observability: expvar publishes the live metrics
	// snapshot, net/http/pprof-style, on a loopback /debug/vars.
	expvar.Publish("serving", expvar.Func(func() any { return ap.Metrics() }))
	// The same snapshot in Prometheus text format on /metrics — serving
	// counters, gauges and latency summaries, plus the registry's
	// per-model block once the multi-model leg installs one.
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		ap.Metrics().WritePrometheus(w)
		if r := promRegistry.Load(); r != nil {
			r.Stats().WritePrometheus(w)
		}
	})
	lis, err := netpkg.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: http.DefaultServeMux}
	go httpSrv.Serve(lis)
	defer httpSrv.Close()

	// Graceful shutdown: SIGINT stops admission and drains the pool.
	// The example raises the signal itself once every request is in
	// flight; a real deployment gets it from the operator.
	sigCtx, stopSignals := signal.NotifyContext(ctx, os.Interrupt)
	defer stopSignals()

	results := ap.Results() // subscribe before the first Submit
	monitored := make(chan int, 1)
	go func() {
		served := 0
		for range results {
			served++
		}
		monitored <- served // stream closed: pool fully drained
	}()

	asyncPreds := make([]int, testN)
	start = time.Now()
	var wg sync.WaitGroup
	per := testN / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			// Interactive traffic: alternate high/normal priority.
			class := neurogo.PriorityNormal
			if c%2 == 0 {
				class = neurogo.PriorityHigh
			}
			chans := make([]<-chan neurogo.AsyncResult, hi-lo)
			for i, img := range xte[lo:hi] {
				// Blocks only when the queue is full.
				chans[i] = ap.SubmitPriority(ctx, class, img)
			}
			for i, ch := range chans {
				r := <-ch
				if r.Err != nil {
					log.Fatalf("image %d: %v", lo+i, r.Err)
				}
				asyncPreds[lo+i] = r.Class
			}
		}(c, c*per, (c+1)*per)
	}
	wg.Wait()
	asyncDur := time.Since(start)

	// Best-effort background flood: low-priority submissions are shed
	// with ErrShed — instead of queueing — once the queue fills or the
	// estimated wait crosses the SLO budget. High/normal traffic above
	// was never shed.
	const flood = 256
	shed, floodServed := 0, 0
	floodChans := make([]<-chan neurogo.AsyncResult, 0, flood)
	for i := 0; i < flood; i++ {
		floodChans = append(floodChans, ap.SubmitPriority(ctx, neurogo.PriorityLow, xte[i%testN]))
	}
	for _, ch := range floodChans {
		if r := <-ch; errors.Is(r.Err, neurogo.ErrShed) {
			shed++
		} else if r.Err == nil {
			floodServed++
		}
	}

	// Scrape both endpoints while the pool is still live: the JSON
	// expvar snapshot and its Prometheus twin.
	vars := scrapeServingVars(fmt.Sprintf("http://%s/debug/vars", lis.Addr()))
	metricsURL := fmt.Sprintf("http://%s/metrics", lis.Addr())
	prom := scrapeMetrics(metricsURL, "neurogo_serving_")

	// Drain on SIGINT: every admitted request completes, none dropped.
	syscall.Kill(os.Getpid(), syscall.SIGINT)
	<-sigCtx.Done()
	ap.Close() // graceful: drains in-flight work, then Results closes
	served := <-monitored
	met := ap.Metrics()

	identical := true
	for i := range batchPreds {
		if asyncPreds[i] != batchPreds[i] {
			identical = false
			break
		}
	}
	score := func(preds []int) float64 {
		hits := 0
		for i, p := range preds {
			if p == yte[i] {
				hits++
			}
		}
		return float64(hits) / float64(testN) * 100
	}

	fmt.Printf("compiled onto %d cores; serving %d images, window %d ticks\n",
		mapping.Stats.UsedCores, testN, window)
	fmt.Printf("batched ClassifyBatch: %6.1f img/s  (accuracy %.1f%%)\n",
		float64(testN)/batchDur.Seconds(), score(batchPreds))
	fmt.Printf("async AsyncPipeline:   %6.1f img/s  (accuracy %.1f%%, %d clients, %d workers)\n",
		float64(testN)/asyncDur.Seconds(), score(asyncPreds), clients, workers)
	fmt.Printf("async == batched predictions: %v\n", identical)
	fmt.Printf("micro-batching: %d dispatches, mean batch %.1f (max %d, window %v)\n",
		met.Batches, met.MeanBatch, met.MaxBatch, met.BatchWindow)
	fmt.Printf("latency: queue-wait p50 %v p99 %v, end-to-end p50 %v p99 %v\n",
		met.QueueWait.P50.Round(time.Microsecond), met.QueueWait.P99.Round(time.Microsecond),
		met.EndToEnd.P50.Round(time.Microsecond), met.EndToEnd.P99.Round(time.Microsecond))
	fmt.Printf("low-priority flood: %d submitted, %d served, %d shed (ErrShed; high/normal never shed)\n",
		flood, floodServed, shed)
	fmt.Println(vars)
	fmt.Println(prom)
	dropped := int(met.Submitted) - served
	fmt.Printf("graceful shutdown: SIGINT received, pool drained — %d admitted, %d dropped\n",
		served, dropped)

	usage := neurogo.PipelineUsageOf(asyncP, true)
	report := neurogo.DefaultEnergyCoefficients().Evaluate(usage)
	fmt.Printf("energy per classification: %.1f nJ (async pool, time-multiplexed pricing)\n",
		report.TotalPJ/float64(testN)*1e-3)

	// 4. One logical model across a 2x2 multi-chip tile. The network is
	// recompiled onto an even grid so it tiles exactly; the serving code
	// is unchanged — the backend seam is below the pipeline.
	st := mapping.Stats
	sysMapping, err := neurogo.Compile(net, neurogo.CompileOptions{
		Seed: 1, Width: st.GridWidth + st.GridWidth%2, Height: st.GridHeight + st.GridHeight%2,
	})
	if err != nil {
		log.Fatal(err)
	}
	sysSt := sysMapping.Stats
	sysP := mkPipeline(sysMapping, neurogo.WithSystem(sysSt.GridWidth/2, sysSt.GridHeight/2))
	// The recompiled grid can place differently, so compare against a
	// single-chip pipeline over the same mapping, not against batchPreds.
	refP := mkPipeline(sysMapping)
	start = time.Now()
	sysPreds, err := sysP.ClassifyBatch(ctx, xte)
	if err != nil {
		log.Fatal(err)
	}
	sysDur := time.Since(start)
	refPreds, err := refP.ClassifyBatch(ctx, xte)
	if err != nil {
		log.Fatal(err)
	}
	tiled := true
	for i := range sysPreds {
		if sysPreds[i] != refPreds[i] {
			tiled = false
			break
		}
	}
	bt := neurogo.PipelineTrafficOf(sysP)
	fmt.Printf("multi-chip 2x2 tile:   %6.1f img/s  (accuracy %.1f%%, %d chips)\n",
		float64(testN)/sysDur.Seconds(), score(sysPreds), bt.Chips)
	fmt.Printf("tiled == single-chip predictions: %v\n", tiled)
	fmt.Printf("boundary traffic: %d intra-chip, %d inter-chip spikes (%.1f%% inter), busiest link %d",
		bt.IntraChip, bt.InterChip, bt.InterChipFraction*100, bt.BusiestLink)
	if bt.BusiestSrc >= 0 {
		fmt.Printf(" (chip %d -> %d)", bt.BusiestSrc, bt.BusiestDst)
	}
	fmt.Println()
	if bt.IntraChip+bt.InterChip == 0 {
		fmt.Println("(the flat classifier has no core-to-core edges — it tiles for free;")
		fmt.Println(" conv stacks and relay chains are where boundary traffic appears)")
	}
	sysUsage := neurogo.PipelineUsageOf(sysP, true)
	sysReport := neurogo.DefaultEnergyCoefficients().Evaluate(sysUsage)
	fmt.Printf("tiled energy per classification: %.1f nJ (%.1f nJ of it chip-to-chip links)\n",
		sysReport.TotalPJ/float64(testN)*1e-3, sysReport.InterChipPJ/float64(testN)*1e-3)

	// 5. The same tile split across shard servers: the grid recompiled
	// with the chip tiling recorded (λ=0, so placement is unchanged),
	// each half hosted by a ShardServer on a unix socket — the exact
	// wire protocol cmd/nshard serves across machines — and the pipeline
	// pointed at the sockets instead of an in-process backend.
	remMapping, err := neurogo.Compile(net, neurogo.CompileOptions{
		Seed: 1, Width: sysSt.GridWidth, Height: sysSt.GridHeight,
		ChipCoresX: sysSt.GridWidth / 2, ChipCoresY: sysSt.GridHeight / 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	sockDir, err := os.MkdirTemp("", "neurogo-shards")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(sockDir)
	const shards = 2
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		srv, err := neurogo.NewShardServer(remMapping, shards, i)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addrs[i] = filepath.Join(sockDir, fmt.Sprintf("shard%d.sock", i))
		go srv.ListenAndServe("unix", addrs[i])
	}
	for _, addr := range addrs { // wait until both shards accept
		for {
			conn, err := netpkg.Dial("unix", addr)
			if err == nil {
				conn.Close()
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	remP := mkPipeline(remMapping, neurogo.WithRemoteSystem(addrs...))
	defer remP.Close()
	remRefP := mkPipeline(remMapping, neurogo.WithSystem(sysSt.GridWidth/2, sysSt.GridHeight/2))
	start = time.Now()
	remPreds, err := remP.ClassifyBatch(ctx, xte)
	if err != nil {
		log.Fatal(err)
	}
	remDur := time.Since(start)
	remRefPreds, err := remRefP.ClassifyBatch(ctx, xte)
	if err != nil {
		log.Fatal(err)
	}
	distributed := true
	for i := range remPreds {
		if remPreds[i] != remRefPreds[i] {
			distributed = false
			break
		}
	}
	rbt := neurogo.PipelineTrafficOf(remP)
	fmt.Printf("distributed %d shards: %6.1f img/s  (accuracy %.1f%%, one RPC round-trip per tick per shard)\n",
		shards, float64(testN)/remDur.Seconds(), score(remPreds))
	fmt.Printf("distributed == in-process tile predictions: %v\n", distributed)
	fmt.Printf("distributed boundary traffic: %d intra-chip, %d inter-chip spikes (%.1f%% inter)\n",
		rbt.IntraChip, rbt.InterChip, rbt.InterChipFraction*100)

	// 6. The multi-model front-end: the flat classifier and a routed
	// conv stack behind one Registry.
	serveRegistry(ctx, mapping, cls, xte, batchPreds, metricsURL)
}

// promRegistry is the registry the /metrics handler appends per-model
// families for, once the multi-model leg has created one.
var promRegistry atomic.Pointer[neurogo.Registry]

// scrapeServingVars GETs the expvar endpoint and condenses the
// published "serving" metrics into one report line — the same JSON a
// dashboard would poll.
func scrapeServingVars(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Sprintf("expvar scrape failed: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Sprintf("expvar scrape failed: %v", err)
	}
	var vars struct {
		Serving struct {
			Submitted uint64
			Completed uint64
			Shed      uint64
			MeanBatch float64
			EndToEnd  struct{ P99 time.Duration }
		} `json:"serving"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		return fmt.Sprintf("expvar decode failed: %v", err)
	}
	s := vars.Serving
	return fmt.Sprintf("expvar %s: submitted %d, completed %d, shed %d, mean batch %.1f, e2e p99 %v",
		url, s.Submitted, s.Completed, s.Shed, s.MeanBatch, s.EndToEnd.P99.Round(time.Microsecond))
}

// scrapeMetrics GETs the Prometheus endpoint and condenses the
// families matching prefix into one report line — the same text
// format 0.0.4 payload a Prometheus server would poll.
func scrapeMetrics(url, prefix string) string {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Sprintf("prometheus scrape failed: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Sprintf("prometheus scrape failed: %v", err)
	}
	families, samples := 0, 0
	headline := ""
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "+prefix):
			families++
		case strings.HasPrefix(line, "#") || line == "":
		case strings.HasPrefix(line, prefix):
			samples++
			if headline == "" && strings.Contains(line, "_total") {
				headline = line
			}
		}
	}
	return fmt.Sprintf("prometheus %s: %d %s* families, %d samples (e.g. %s)",
		url, families, prefix, samples, headline)
}

// serveRegistry runs the multi-model leg: two models of very different
// shapes — the flat digit classifier (no core-to-core edges) and a
// conv→pool→read-out stack (relay-routed, deep) — registered in one
// Registry and served through a single front-end, with per-model stats,
// a warm-cap eviction demo and a zero-downtime hot swap. Every
// registry-served prediction set is checked bit-for-bit against the
// reference: flatPreds for the flat model (computed by the batched leg)
// and a directly-constructed Pipeline for the conv model.
func serveRegistry(ctx context.Context, flatMapping *neurogo.Mapping,
	cls *neurogo.Classifier, xte [][]float64, flatPreds []int, metricsURL string) {

	// Build the second model: conv → OR-pool → feature read-out, the
	// routed stack from examples/conv, trained on the matching
	// float-side features.
	const (
		imgSize    = 16
		stride     = 1
		convThr    = 2
		poolWin    = 2
		convWindow = 8
		convTestN  = 64
	)
	gen := neurogo.NewDigitGenerator(imgSize, 0.02, 2, 42)
	xtr, ytr := gen.Batch(400)
	kernels := neurogo.OrientedKernels()
	convW := (imgSize-kernels[0].Size)/stride + 1
	feat := make([][]float64, len(xtr))
	for i, img := range xtr {
		f := neurogo.ConvFeatures(img, imgSize, kernels, stride, convThr)
		feat[i] = neurogo.FloatPool(f, len(kernels), convW, convW, poolWin)
	}
	fm, err := neurogo.TrainLinear(feat, ytr, neurogo.NumDigitClasses,
		neurogo.TrainOptions{Epochs: 8, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	convNet := neurogo.NewNetwork()
	conv, err := neurogo.BuildConv2D(convNet, "conv", imgSize, imgSize, kernels, stride, convThr)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := neurogo.BuildPool2D(convNet, conv, "pool", poolWin)
	if err != nil {
		log.Fatal(err)
	}
	fc, err := neurogo.BuildFeatureClassifier(convNet, fm.Ternarize(1.3), pool, "out",
		neurogo.DefaultClassifierParams())
	if err != nil {
		log.Fatal(err)
	}
	convMapping, err := neurogo.Compile(convNet, neurogo.CompileOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	convX, _ := gen.Batch(convTestN)

	flatOpts := []neurogo.PipelineOption{
		neurogo.WithEncoder(neurogo.NewBernoulliEncoder(0.5, 99)),
		neurogo.WithDecoder(neurogo.NewCounterDecoder(neurogo.NumDigitClasses)),
		neurogo.WithLineMapper(neurogo.TwinLines(cls.LinesFor)),
		neurogo.WithClassMapper(cls.ClassOf),
		neurogo.WithWindow(16),
		neurogo.WithDrain(10),
	}
	convOpts := []neurogo.PipelineOption{
		neurogo.WithEncoder(neurogo.NewBinaryEncoder(0.5, convWindow)),
		neurogo.WithDecoder(neurogo.NewCounterDecoder(neurogo.NumDigitClasses)),
		neurogo.WithLineMapper(neurogo.TwinLines(conv.LinesFor)),
		neurogo.WithClassMapper(fc.ClassOf),
		neurogo.WithWindow(convWindow),
		neurogo.WithDrain(12),
	}

	// The conv reference: direct Pipeline serving on the same mapping.
	refConvP, err := neurogo.NewPipeline(convMapping, convOpts...)
	if err != nil {
		log.Fatal(err)
	}
	convRef, err := refConvP.ClassifyBatch(ctx, convX)
	if err != nil {
		log.Fatal(err)
	}
	refConvP.Close()

	identical := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	// One front-end, MaxWarm 1: the two models contend for a single
	// warm slot, so serving them alternately exercises the LRU path.
	r := neurogo.NewRegistry(neurogo.RegistryConfig{MaxWarm: 1})
	defer r.Close()
	promRegistry.Store(r) // /metrics now appends the per-model block
	if err := r.Register("digits-flat", flatMapping, flatOpts...); err != nil {
		log.Fatal(err)
	}
	if err := r.Register("conv-routed", convMapping, convOpts...); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n-- model registry: %d models behind one front-end (MaxWarm 1) --\n",
		len(r.Names()))

	// Cold start each model; the second warm-up evicts the first.
	regFlat, err := r.ClassifyBatch(ctx, "digits-flat", xte)
	if err != nil {
		log.Fatal(err)
	}
	regConv, err := r.ClassifyBatch(ctx, "conv-routed", convX)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registry == direct predictions: flat %v, conv %v\n",
		identical(regFlat, flatPreds), identical(regConv, convRef))

	// Serving the flat model again re-warms it from the registered
	// mapping (and evicts the conv pool in turn) — still bit-identical.
	reFlat, err := r.ClassifyBatch(ctx, "digits-flat", xte)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-evict reload bit-identical: %v\n", identical(reFlat, flatPreds))

	// Zero-downtime hot swap: recompile the conv network (a stand-in
	// for a retrained model) and cut the serving front-end over to it.
	// Requests keep flowing while the old pool drains.
	swapped, err := neurogo.Compile(convNet, neurogo.CompileOptions{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Swap("conv-routed", swapped, convOpts...); err != nil {
		log.Fatal(err)
	}
	postSwap, err := r.ClassifyBatch(ctx, "conv-routed", convX)
	if err != nil {
		log.Fatal(err)
	}
	// A different placement, same logical network: the swap changes the
	// chip image, not the function it computes.
	fmt.Printf("post-swap bit-identical to direct serving: %v\n", identical(postSwap, convRef))

	st := r.Stats()
	fmt.Printf("%-12s %5s %5s %5s %6s %5s %8s %12s %10s\n",
		"model", "reqs", "hits", "cold", "evict", "swaps", "sessions", "cold-start", "p99")
	for _, m := range st.Models {
		fmt.Printf("%-12s %5d %5d %5d %6d %5d %8d %12s %10s\n",
			m.Name, m.Requests, m.Hits, m.ColdStarts, m.Evictions, m.Swaps,
			m.LiveSessions, m.LastColdStart.Round(time.Microsecond),
			m.Latency.P99.Round(time.Microsecond))
	}
	fmt.Printf("registry: %d registered, %d warm, %d live sessions, %d evictions\n",
		st.Registered, st.Warm, st.LiveSessions, st.Evictions)
	fmt.Println(scrapeMetrics(metricsURL, "neurogo_model_"))
}
