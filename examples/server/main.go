// Server: the async serving backend end to end — train and compile the
// digit classifier (as in examples/digits), then serve the test set
// through an AsyncPipeline: concurrent clients submit images into a
// bounded queue, a pool of sessions classifies them as workers free up,
// and each client correlates its own completions through the
// per-request channels while the shared Results stream feeds a
// monitoring goroutine. The same inputs are also served through
// ClassifyBatch so the two serving modes' throughput and
// (bit-identical) predictions can be compared.
//
// Finally the same model is served across a 2x2 multi-chip tile
// (WithSystem): predictions stay bit-identical — tiling changes
// accounting, not routing — while Pipeline.Traffic exposes the
// chip-to-chip boundary spikes that tiled deployments are won or
// lost on.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"github.com/neurogo/neurogo"
)

func main() {
	const (
		trainN  = 1200
		testN   = 256
		window  = 16
		clients = 4 // concurrent submitters
	)

	// 1. Train, quantise, compile — the standard digit rig.
	gen := neurogo.NewDigitGenerator(16, 0.03, 1, 42)
	xtr, ytr := gen.Batch(trainN)
	xte, yte := gen.Batch(testN)
	model, err := neurogo.TrainLinear(xtr, ytr, neurogo.NumDigitClasses,
		neurogo.TrainOptions{Epochs: 10, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	net := neurogo.NewNetwork()
	cls := neurogo.BuildClassifier(net, model.Ternarize(1.3), "digits",
		neurogo.DefaultClassifierParams())
	mapping, err := neurogo.Compile(net, neurogo.CompileOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	mkPipeline := func(m *neurogo.Mapping, extra ...neurogo.PipelineOption) *neurogo.Pipeline {
		opts := []neurogo.PipelineOption{
			neurogo.WithEncoder(neurogo.NewBernoulliEncoder(0.5, 99)),
			neurogo.WithDecoder(neurogo.NewCounterDecoder(neurogo.NumDigitClasses)),
			neurogo.WithLineMapper(neurogo.TwinLines(cls.LinesFor)),
			neurogo.WithClassMapper(cls.ClassOf),
			neurogo.WithWindow(window),
			neurogo.WithDrain(10),
		}
		p, err := neurogo.NewPipeline(m, append(opts, extra...)...)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	pipeline := func() *neurogo.Pipeline { return mkPipeline(mapping) }

	ctx := context.Background()

	// 2. Baseline: the synchronous batched path.
	batchP := pipeline()
	start := time.Now()
	batchPreds, err := batchP.ClassifyBatch(ctx, xte)
	if err != nil {
		log.Fatal(err)
	}
	batchDur := time.Since(start)

	// 3. The async path. The Results stream plays the serving-side
	// monitor (subscribe before the first Submit); each client keeps its
	// per-request channels, so completions correlate with inputs no
	// matter how submissions interleave across clients.
	asyncP := pipeline()
	workers := runtime.NumCPU()
	ap := asyncP.Async(
		neurogo.WithAsyncWorkers(workers),
		neurogo.WithQueueDepth(2*workers))

	results := ap.Results() // subscribe before the first Submit
	monitored := make(chan int, 1)
	go func() {
		served := 0
		for range results {
			served++
		}
		monitored <- served // stream closed: pool fully drained
	}()

	asyncPreds := make([]int, testN)
	start = time.Now()
	var wg sync.WaitGroup
	per := testN / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			chans := make([]<-chan neurogo.AsyncResult, hi-lo)
			for i, img := range xte[lo:hi] {
				chans[i] = ap.Submit(ctx, img) // blocks only when the queue is full
			}
			for i, ch := range chans {
				r := <-ch
				if r.Err != nil {
					log.Fatalf("image %d: %v", lo+i, r.Err)
				}
				asyncPreds[lo+i] = r.Class
			}
		}(c*per, (c+1)*per)
	}
	wg.Wait()
	ap.Close() // graceful: drains in-flight work, then Results closes
	served := <-monitored
	asyncDur := time.Since(start)

	identical := true
	for i := range batchPreds {
		if asyncPreds[i] != batchPreds[i] {
			identical = false
			break
		}
	}
	score := func(preds []int) float64 {
		hits := 0
		for i, p := range preds {
			if p == yte[i] {
				hits++
			}
		}
		return float64(hits) / float64(testN) * 100
	}

	fmt.Printf("compiled onto %d cores; serving %d images, window %d ticks\n",
		mapping.Stats.UsedCores, testN, window)
	fmt.Printf("batched ClassifyBatch: %6.1f img/s  (accuracy %.1f%%)\n",
		float64(testN)/batchDur.Seconds(), score(batchPreds))
	fmt.Printf("async AsyncPipeline:   %6.1f img/s  (accuracy %.1f%%, %d clients, %d workers, %d monitored)\n",
		float64(testN)/asyncDur.Seconds(), score(asyncPreds), clients, workers, served)
	fmt.Printf("async == batched predictions: %v\n", identical)

	usage := neurogo.PipelineUsageOf(asyncP, true)
	report := neurogo.DefaultEnergyCoefficients().Evaluate(usage)
	fmt.Printf("energy per classification: %.1f nJ (async pool, time-multiplexed pricing)\n",
		report.TotalPJ/float64(testN)*1e-3)

	// 4. One logical model across a 2x2 multi-chip tile. The network is
	// recompiled onto an even grid so it tiles exactly; the serving code
	// is unchanged — the backend seam is below the pipeline.
	st := mapping.Stats
	sysMapping, err := neurogo.Compile(net, neurogo.CompileOptions{
		Seed: 1, Width: st.GridWidth + st.GridWidth%2, Height: st.GridHeight + st.GridHeight%2,
	})
	if err != nil {
		log.Fatal(err)
	}
	sysSt := sysMapping.Stats
	sysP := mkPipeline(sysMapping, neurogo.WithSystem(sysSt.GridWidth/2, sysSt.GridHeight/2))
	// The recompiled grid can place differently, so compare against a
	// single-chip pipeline over the same mapping, not against batchPreds.
	refP := mkPipeline(sysMapping)
	start = time.Now()
	sysPreds, err := sysP.ClassifyBatch(ctx, xte)
	if err != nil {
		log.Fatal(err)
	}
	sysDur := time.Since(start)
	refPreds, err := refP.ClassifyBatch(ctx, xte)
	if err != nil {
		log.Fatal(err)
	}
	tiled := true
	for i := range sysPreds {
		if sysPreds[i] != refPreds[i] {
			tiled = false
			break
		}
	}
	bt := neurogo.PipelineTrafficOf(sysP)
	fmt.Printf("multi-chip 2x2 tile:   %6.1f img/s  (accuracy %.1f%%, %d chips)\n",
		float64(testN)/sysDur.Seconds(), score(sysPreds), bt.Chips)
	fmt.Printf("tiled == single-chip predictions: %v\n", tiled)
	fmt.Printf("boundary traffic: %d intra-chip, %d inter-chip spikes (%.1f%% inter), busiest link %d",
		bt.IntraChip, bt.InterChip, bt.InterChipFraction*100, bt.BusiestLink)
	if bt.BusiestSrc >= 0 {
		fmt.Printf(" (chip %d -> %d)", bt.BusiestSrc, bt.BusiestDst)
	}
	fmt.Println()
	if bt.IntraChip+bt.InterChip == 0 {
		fmt.Println("(the flat classifier has no core-to-core edges — it tiles for free;")
		fmt.Println(" conv stacks and relay chains are where boundary traffic appears)")
	}
	sysUsage := neurogo.PipelineUsageOf(sysP, true)
	sysReport := neurogo.DefaultEnergyCoefficients().Evaluate(sysUsage)
	fmt.Printf("tiled energy per classification: %.1f nJ (%.1f nJ of it chip-to-chip links)\n",
		sysReport.TotalPJ/float64(testN)*1e-3, sysReport.InterChipPJ/float64(testN)*1e-3)
}
