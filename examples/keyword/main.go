// Keyword: always-on keyword spotting over an open-ended spike stream.
// A pattern detector (per-line axonal delays aligning a spatio-temporal
// template into one coincidence tick) listens to an endless MotifStream
// — Poisson distractor traffic with the template embedded at random
// gaps — through a pipeline Stream. A SlidingCounter windowed decoder
// turns the detector's spikes into continuous gated decisions on the
// Decisions channel, and each decision tick minus the embedding's
// ground-truth end tick is the detection latency, measured in ticks.
// This is the serving shape the architecture targets: the chip never
// stops, input never ends, and decisions surface the moment evidence
// clears the gate.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/neurogo/neurogo"
)

func main() {
	const (
		lines, span, events = 16, 10, 5
		noiseRate           = 0.02 // distractor spikes per line per tick
		minGap, maxGap      = 20, 60
		ticks               = 4000
		decWindow           = 2 // sliding decision window in ticks
	)

	// The template and its detector: fires only when all five events
	// arrive with the right relative timing.
	pat := neurogo.NewPattern(lines, span, events, 99)
	net := neurogo.NewNetwork()
	pd, err := neurogo.BuildPatternDetector(net, pat, events)
	if err != nil {
		log.Fatal(err)
	}
	mapping, err := neurogo.Compile(net, neurogo.CompileOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// One keyword class; the gate passes as soon as one detector spike
	// is inside the window, and abstains the rest of the time.
	dec := neurogo.NewSlidingCounterDecoder(1, decWindow)
	dec.MinCount = 1
	p, err := neurogo.NewPipeline(mapping,
		neurogo.WithDecoder(dec),
		neurogo.WithClassMapper(func(id neurogo.NeuronID) int {
			if id == pd.Out.First {
				return 0
			}
			return -1
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	fmt.Printf("keyword spotter: %d-line template, %d events over %d ticks, on %d cores\n",
		lines, events, span, mapping.Stats.UsedCores)
	fmt.Printf("stream: distractor rate %.2f/line/tick, embedding gaps in [%d, %d] ticks\n\n",
		noiseRate, minGap, maxGap)

	// The always-on loop: raw spikes in via Inject (bypassing the
	// encoder), one chip tick per stream tick, decisions out on the
	// channel as the observation frontier passes them.
	motifs := neurogo.NewMotifStream(pat, noiseRate, minGap, maxGap, 7)
	st := p.NewSession().Stream(context.Background())
	decCh := st.Decisions() // subscribe before the first tick

	var ends []int64 // ground truth: last tick of each embedding
	start := time.Now()
	for t := int64(0); t < ticks; t++ {
		spikes, motifEnd := motifs.Tick()
		for _, line := range spikes {
			if err := st.Inject(pd.In.First + int32(line)); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := st.Tick(); err != nil {
			log.Fatal(err)
		}
		if motifEnd {
			ends = append(ends, t)
		}
	}
	if _, err := st.Drain(); err != nil {
		log.Fatal(err)
	}
	dur := time.Since(start)

	// Collapse the per-tick decisions into detections: a spike stays in
	// the window for decWindow ticks, so consecutive decision ticks
	// belong to one detection.
	var detections []int64
	decisions := 0
	for d := range decCh {
		decisions++
		if len(detections) == 0 || d.Tick > detections[len(detections)-1]+decWindow {
			detections = append(detections, d.Tick)
		}
	}

	// Match detections to embeddings in tick order. A detection is a hit
	// if it lands within span ticks of an embedding's end (the detector
	// needs the full template plus the input delay before it can fire).
	hits, falseAlarms := 0, 0
	var latencySum, latencyMin, latencyMax int64
	latencyMin = 1 << 62
	di := 0
	for _, end := range ends {
		matched := false
		for di < len(detections) && detections[di] <= end+span {
			if lat := detections[di] - end; lat >= 0 && !matched {
				matched = true
				hits++
				latencySum += lat
				if lat < latencyMin {
					latencyMin = lat
				}
				if lat > latencyMax {
					latencyMax = lat
				}
			} else {
				falseAlarms++
			}
			di++
		}
	}
	falseAlarms += len(detections) - di

	fmt.Printf("served %d ticks in %v (%.0f ticks/s), %d gated decisions\n",
		ticks, dur.Round(time.Millisecond), float64(ticks)/dur.Seconds(), decisions)
	fmt.Printf("embeddings %d, detected %d, missed %d, false alarms %d\n",
		len(ends), hits, len(ends)-hits, falseAlarms)
	if hits > 0 {
		fmt.Printf("detection latency: mean %.1f ticks (min %d, max %d) after the embedding completes\n",
			float64(latencySum)/float64(hits), latencyMin, latencyMax)
	}
	fmt.Printf("abstention: decoder stayed silent on %d of %d ticks (gate: >=1 spike in a %d-tick window)\n",
		int64(ticks)-int64(decisions), int64(ticks), decWindow)
}
