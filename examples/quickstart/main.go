// Quickstart: build a three-neuron network, compile it onto cores, and
// watch spikes come out through an inference pipeline session — the
// minimal end-to-end workflow.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/neurogo/neurogo"
)

func main() {
	// A logical network: one input line feeding a 3-stage relay chain.
	net := neurogo.NewNetwork()
	in := net.AddInputBank("in", 1, neurogo.SourceProps{Type: 0, Delay: 1})
	chain := net.AddPopulation("chain", 3, neurogo.DefaultNeuron())

	net.Connect(in.Line(0), chain.ID(0))
	net.Connect(neurogo.NeuronNode(chain.ID(0)), chain.ID(1))
	net.Connect(neurogo.NeuronNode(chain.ID(1)), chain.ID(2))
	net.MarkOutput(chain.ID(2))

	// Give the middle stage a longer axonal delay, just to show it.
	net.SourceProps(chain.ID(1)).Delay = 5

	// Compile onto a chip (placement, crossbars, routing).
	mapping, err := neurogo.Compile(net, neurogo.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	st := mapping.Stats
	fmt.Printf("compiled onto %d core(s), grid %dx%d\n", st.UsedCores, st.GridWidth, st.GridHeight)

	// Serve it through a pipeline session: open a stream, inject a
	// spike, tick the chip and watch output labels emerge.
	p, err := neurogo.NewPipeline(mapping, neurogo.WithDrain(2))
	if err != nil {
		log.Fatal(err)
	}
	session := p.NewSession()
	stream := session.Stream(context.Background())
	if err := stream.Inject(0); err != nil {
		log.Fatal(err)
	}
	for t := 0; t < 16; t++ {
		labels, err := stream.Tick()
		if err != nil {
			log.Fatal(err)
		}
		for _, l := range labels {
			fmt.Printf("output neuron %d fired at tick %d\n", l.Neuron, l.Tick)
		}
	}
	labels, err := stream.Drain()
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range labels {
		fmt.Printf("output neuron %d fired at tick %d\n", l.Neuron, l.Tick)
	}
	// Inject at t=0: stage 0 fires at t=1, stage 1 at t=2 (emitting with
	// delay 5), stage 2 fires at t=7.

	// Energy accounting for the session.
	usage := neurogo.SessionUsageOf(session, true)
	rep := neurogo.DefaultEnergyCoefficients().Evaluate(usage)
	fmt.Printf("synaptic events: %d, spikes: %d, energy: %.1f pJ\n",
		usage.SynapticEvents, usage.Spikes, rep.TotalPJ)
}
